// Batching ablation (extension): the paper's evaluation serves one request
// per pass; INFless's native capability is batch-aware serving. This bench
// turns batching on for every system to check that FluidFaaS's advantage is
// orthogonal to batching rather than an artifact of its absence. The
// tier × system × batch cells execute through the parallel engine.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Ablation — batched serving on/off for every system",
                "INFless capability (extension beyond the paper)");
  const trace::WorkloadTier tiers[] = {trace::WorkloadTier::kMedium,
                                       trace::WorkloadTier::kHeavy};
  const harness::SystemKind systems[] = {harness::SystemKind::kInfless,
                                         harness::SystemKind::kEsg,
                                         harness::SystemKind::kFluidFaas};
  std::vector<harness::ExperimentConfig> cells;
  for (auto tier : tiers) {
    for (auto kind : systems) {
      auto cfg = bench::PaperConfig(tier);
      cfg.system = kind;
      cells.push_back(cfg);  // batch=1
      cfg.platform.max_batch = 4;
      cells.push_back(cfg);  // batch=4
    }
  }
  const auto results = bench::RunAll(cells);

  std::size_t i = 0;
  for (auto tier : tiers) {
    metrics::Table table({"System", "batch=1 thr", "batch=4 thr",
                          "batch=1 SLO", "batch=4 SLO"});
    for (std::size_t s = 0; s < 3; ++s) {
      const auto& plain = results[i++];
      const auto& batched = results[i++];
      table.AddRow({plain.system, metrics::Fmt(plain.throughput_rps, 1),
                    metrics::Fmt(batched.throughput_rps, 1),
                    metrics::FmtPercent(plain.slo_hit_rate),
                    metrics::FmtPercent(batched.slo_hit_rate)});
    }
    std::cout << "--- " << trace::Name(tier) << " workload ---\n";
    table.Print();
    std::cout << "\n";
  }
  std::cout << "Batching lifts every system; the fragmentation gap between\n"
               "FluidFaaS and the monolithic baselines persists because the\n"
               "idle slices are unusable at any batch size.\n";
  return 0;
}
