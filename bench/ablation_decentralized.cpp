// Decentralization ablation (extension): the centralized FluidFaaS
// scheduler vs the paper's explicit two-level controller/invoker structure
// (§5.2.2), on the standard workloads. The tier × system grid executes as
// one parallel sweep.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner(
      "Ablation — centralized scheduler vs per-node invokers (Fig. 2/6)",
      "§5.2.2 (extension beyond the paper)");
  harness::SweepSpec spec;
  spec.base = bench::PaperConfig(trace::WorkloadTier::kLight);
  spec.tiers = {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium,
                trace::WorkloadTier::kHeavy};
  spec.systems = {harness::SystemKind::kFluidFaas,
                  harness::SystemKind::kFluidFaasDistributed};
  const harness::SweepOutcome sweep = harness::RunSweep(spec);

  metrics::Table table({"Workload", "System", "thr (rps)", "SLO hit",
                        "pipelines", "evictions"});
  for (const harness::SweepCell& cell : sweep.cells) {
    const auto& r = cell.result;
    table.AddRow({trace::Name(cell.point.tier), r.system,
                  metrics::Fmt(r.throughput_rps, 1),
                  metrics::FmtPercent(r.slo_hit_rate),
                  std::to_string(r.pipelines_launched),
                  std::to_string(r.evictions)});
  }
  table.Print();
  std::cout << "\nPer-invoker scheduling keeps decisions node-local (no\n"
               "central coordination on the data path) at a modest cost in\n"
               "placement quality when one node's fragments could have\n"
               "served another node's overflow.\n";
  return 0;
}
