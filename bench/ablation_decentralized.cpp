// Decentralization ablation (extension): the centralized FluidFaaS
// scheduler vs the paper's explicit two-level controller/invoker structure
// (§5.2.2), on the standard workloads.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner(
      "Ablation — centralized scheduler vs per-node invokers (Fig. 2/6)",
      "§5.2.2 (extension beyond the paper)");
  metrics::Table table({"Workload", "System", "thr (rps)", "SLO hit",
                        "pipelines", "evictions"});
  for (auto tier : {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium,
                    trace::WorkloadTier::kHeavy}) {
    for (auto kind : {harness::SystemKind::kFluidFaas,
                      harness::SystemKind::kFluidFaasDistributed}) {
      auto cfg = bench::PaperConfig(tier);
      cfg.system = kind;
      auto r = harness::RunExperiment(cfg);
      table.AddRow({trace::Name(tier), r.system,
                    metrics::Fmt(r.throughput_rps, 1),
                    metrics::FmtPercent(r.slo_hit_rate),
                    std::to_string(r.pipelines_launched),
                    std::to_string(r.evictions)});
    }
  }
  table.Print();
  std::cout << "\nPer-invoker scheduling keeps decisions node-local (no\n"
               "central coordination on the data path) at a modest cost in\n"
               "placement quality when one node's fragments could have\n"
               "served another node's overflow.\n";
  return 0;
}
