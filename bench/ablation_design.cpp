// Ablations of FluidFaaS's design decisions (DESIGN.md §4): pipelines,
// eviction-based time sharing, pipeline migration, and the CV ranking
// policy, each toggled in isolation on the medium and heavy workloads.
// All tier × toggle cells execute through the parallel engine.
#include "bench/bench_util.h"

using namespace fluidfaas;

namespace {

harness::ExperimentConfig Make(trace::WorkloadTier tier,
                               void (*mutate)(platform::PlatformConfig&)) {
  auto cfg = bench::PaperConfig(tier);
  cfg.system = harness::SystemKind::kFluidFaas;
  if (mutate) mutate(cfg.platform);
  return cfg;
}

void Report(metrics::Table& table, const char* name,
            const harness::ExperimentResult& r,
            const harness::ExperimentResult& base) {
  table.AddRow(
      {name, metrics::Fmt(r.throughput_rps, 1),
       metrics::FmtPercent(r.slo_hit_rate),
       metrics::Fmt(100.0 * (r.throughput_rps / base.throughput_rps - 1.0),
                    1) +
           "%",
       std::to_string(r.pipelines_launched), std::to_string(r.evictions),
       std::to_string(r.migrations)});
}

}  // namespace

int main() {
  bench::Banner("Ablation — FluidFaaS design features toggled in isolation",
                "DESIGN.md §4 (extension beyond the paper)");
  const struct {
    const char* name;
    void (*mutate)(platform::PlatformConfig&);
  } toggles[] = {
      {"full FluidFaaS", nullptr},
      {"- pipelines",
       [](platform::PlatformConfig& c) { c.enable_pipelines = false; }},
      {"- time sharing",
       [](platform::PlatformConfig& c) { c.enable_time_sharing = false; }},
      {"- migration",
       [](platform::PlatformConfig& c) { c.enable_migration = false; }},
      {"max 2 stages",
       [](platform::PlatformConfig& c) { c.max_stages = 2; }},
  };
  const trace::WorkloadTier tiers[] = {trace::WorkloadTier::kMedium,
                                       trace::WorkloadTier::kHeavy};
  std::vector<harness::ExperimentConfig> cells;
  for (auto tier : tiers) {
    for (const auto& t : toggles) cells.push_back(Make(tier, t.mutate));
  }
  const auto results = bench::RunAll(cells);

  const std::size_t kToggles = sizeof(toggles) / sizeof(toggles[0]);
  for (std::size_t ti = 0; ti < 2; ++ti) {
    metrics::Table table({"configuration", "thr (rps)", "SLO hit",
                          "thr vs full", "pipes", "evictions", "migrations"});
    const auto& full = results[ti * kToggles];
    for (std::size_t i = 0; i < kToggles; ++i) {
      Report(table, toggles[i].name, results[ti * kToggles + i], full);
    }
    std::cout << "--- " << trace::Name(tiers[ti]) << " workload ---\n";
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
