// Ablations of FluidFaaS's design decisions (DESIGN.md §4): pipelines,
// eviction-based time sharing, pipeline migration, and the CV ranking
// policy, each toggled in isolation on the medium and heavy workloads.
#include "bench/bench_util.h"

using namespace fluidfaas;

namespace {

harness::ExperimentResult Run(trace::WorkloadTier tier,
                              void (*mutate)(platform::PlatformConfig&)) {
  auto cfg = bench::PaperConfig(tier);
  cfg.system = harness::SystemKind::kFluidFaas;
  if (mutate) mutate(cfg.platform);
  return harness::RunExperiment(cfg);
}

void Report(metrics::Table& table, const char* name,
            const harness::ExperimentResult& r,
            const harness::ExperimentResult& base) {
  table.AddRow(
      {name, metrics::Fmt(r.throughput_rps, 1),
       metrics::FmtPercent(r.slo_hit_rate),
       metrics::Fmt(100.0 * (r.throughput_rps / base.throughput_rps - 1.0),
                    1) +
           "%",
       std::to_string(r.pipelines_launched), std::to_string(r.evictions),
       std::to_string(r.migrations)});
}

}  // namespace

int main() {
  bench::Banner("Ablation — FluidFaaS design features toggled in isolation",
                "DESIGN.md §4 (extension beyond the paper)");
  for (auto tier :
       {trace::WorkloadTier::kMedium, trace::WorkloadTier::kHeavy}) {
    metrics::Table table({"configuration", "thr (rps)", "SLO hit",
                          "thr vs full", "pipes", "evictions", "migrations"});
    auto full = Run(tier, nullptr);
    Report(table, "full FluidFaaS", full, full);
    auto no_pipe = Run(tier, [](platform::PlatformConfig& c) {
      c.enable_pipelines = false;
    });
    Report(table, "- pipelines", no_pipe, full);
    auto no_ts = Run(tier, [](platform::PlatformConfig& c) {
      c.enable_time_sharing = false;
    });
    Report(table, "- time sharing", no_ts, full);
    auto no_mig = Run(tier, [](platform::PlatformConfig& c) {
      c.enable_migration = false;
    });
    Report(table, "- migration", no_mig, full);
    auto shallow = Run(tier, [](platform::PlatformConfig& c) {
      c.max_stages = 2;
    });
    Report(table, "max 2 stages", shallow, full);

    std::cout << "--- " << trace::Name(tier) << " workload ---\n";
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
