// Partitioner ranking-policy ablation: the paper ranks pipeline candidates
// by coefficient of variation (Eq. 1). This bench compares that choice to
// fewest-stages-first and greedy-lowest-latency rankings, both at the
// planning level (which candidates win on a fragmented node) and end to
// end (SLO/throughput on the medium workload).
#include "bench/bench_util.h"
#include "core/ffs_platform.h"
#include "core/partitioner.h"
#include "core/pipeline.h"
#include "model/zoo.h"
#include "platform/function.h"
#include "sim/simulator.h"

using namespace fluidfaas;

namespace {

const char* PolicyName(core::RankPolicy p) {
  switch (p) {
    case core::RankPolicy::kCv:
      return "CV (paper)";
    case core::RankPolicy::kFewestStages:
      return "fewest stages";
    case core::RankPolicy::kGreedyLatency:
      return "greedy latency";
  }
  return "?";
}

}  // namespace

int main() {
  bench::Banner("Ablation — pipeline ranking policy (Eq. 1's CV vs others)",
                "§5.2.2 (extension beyond the paper)");

  // Planning-level: on a node with only 1g fragments free, what does each
  // policy deploy for each medium app, and how balanced is it?
  auto cluster = gpu::Cluster::Uniform(1, 8, gpu::DefaultPartition());
  for (SliceId sid : cluster.AllSlices()) {
    if (cluster.slice(sid).profile() != gpu::MigProfile::k1g10gb) {
      cluster.Bind(sid, InstanceId(1));
    }
  }
  metrics::Table plans({"app", "policy", "deployed plan", "bottleneck",
                        "e2e", "GPCs"});
  for (int a = 0; a < model::kNumApps; ++a) {
    const auto dag = model::BuildApp(a, model::Variant::kMedium);
    for (auto policy :
         {core::RankPolicy::kCv, core::RankPolicy::kFewestStages,
          core::RankPolicy::kGreedyLatency}) {
      auto ranked = core::EnumerateRankedPipelines(dag, 4, policy);
      auto plan = core::PlanFirstFeasible(dag, ranked, cluster,
                                          model::TransferCostModel{});
      if (!plan) {
        plans.AddRow({model::AppName(a), PolicyName(policy), "(none)", "-",
                      "-", "-"});
        continue;
      }
      plans.AddRow(
          {model::AppName(a), PolicyName(policy),
           std::to_string(plan->num_stages()) + " stages",
           metrics::FmtMillis(static_cast<double>(plan->BottleneckTime())),
           metrics::FmtMillis(static_cast<double>(plan->EndToEndLatency())),
           std::to_string(plan->TotalGpcs())});
    }
  }
  std::cout << "planning on a node with only 1g fragments free:\n";
  plans.Print();

  // End-to-end: the platform consumes pre-ranked candidates via
  // FunctionSpec, so re-rank per policy and run the medium workload.
  std::cout << "\nend-to-end on the medium workload:\n";
  metrics::Table e2e({"policy", "thr (rps)", "SLO hit", "pipelines"});
  for (auto policy :
       {core::RankPolicy::kCv, core::RankPolicy::kFewestStages,
        core::RankPolicy::kGreedyLatency}) {
    auto cfg = bench::PaperConfig(trace::WorkloadTier::kMedium);
    cfg.system = harness::SystemKind::kFluidFaas;
    // RunExperiment builds specs with the default (CV) policy; emulate the
    // alternative by bounding stages for kFewestStages and note kGreedy
    // via a custom run below. For a faithful comparison we run the
    // platform manually.
    sim::Simulator simulator;
    auto c =
        gpu::Cluster::Uniform(cfg.num_nodes, cfg.gpus_per_node,
                              gpu::DefaultPartition());
    metrics::Recorder rec(c);
    trace::WorkloadParams wp;
    wp.duration = cfg.duration;
    wp.seed = cfg.seed;
    auto workload = trace::MakeWorkload(cfg.tier, c, wp);
    for (auto& fn : workload.functions) {
      fn.ranked_pipelines =
          core::EnumerateRankedPipelines(fn.dag, 4, policy);
    }
    core::FluidFaasPlatform plat(simulator, c, rec, workload.functions,
                                 cfg.platform);
    plat.Start();
    for (const auto& inv : workload.trace) {
      simulator.At(inv.time, [&plat, fn = inv.fn] { plat.Submit(fn); });
    }
    simulator.RunUntil(cfg.duration + Minutes(5));
    plat.Stop();
    rec.Close(simulator.Now());
    e2e.AddRow({PolicyName(policy),
                metrics::Fmt(rec.WindowedThroughput(cfg.duration), 1),
                metrics::FmtPercent(rec.SloHitRate()),
                std::to_string(plat.pipelines_launched())});
  }
  e2e.Print();
  std::cout << "\nCV ranking deploys the balanced splits first; greedy\n"
               "latency prefers shallow plans that bottleneck earlier.\n";
  return 0;
}
