// Reconfiguration vs pipelining (extension): the paper dismisses runtime
// MIG repartitioning because it takes minutes (§2.2); this bench races the
// Repartition baseline against FluidFaaS on the heavy workload so the cost
// of that road-not-taken is a number, not an assertion. The tier × system
// grid executes as one parallel sweep.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner(
      "Ablation — runtime repartitioning vs pipeline construction",
      "§2.2's rigidity argument (extension beyond the paper)");
  harness::SweepSpec spec;
  spec.base = bench::PaperConfig(trace::WorkloadTier::kMedium);
  spec.tiers = {trace::WorkloadTier::kMedium, trace::WorkloadTier::kHeavy};
  spec.systems = {harness::SystemKind::kEsg,
                  harness::SystemKind::kRepartition,
                  harness::SystemKind::kFluidFaas};
  const harness::SweepOutcome sweep = harness::RunSweep(spec);

  metrics::Table table({"Workload", "System", "thr (rps)", "SLO hit",
                        "P95", "reconfigs", "blackout"});
  for (const harness::SweepCell& cell : sweep.cells) {
    const auto& r = cell.result;
    auto lats = r.recorder->LatenciesSeconds();
    const double p95 = lats.empty() ? 0.0 : Percentile(lats, 0.95);
    table.AddRow({trace::Name(cell.point.tier), r.system,
                  metrics::Fmt(r.throughput_rps, 1),
                  metrics::FmtPercent(r.slo_hit_rate),
                  metrics::Fmt(p95, 1) + "s",
                  std::to_string(r.reconfigurations),
                  metrics::Fmt(ToSeconds(r.reconfiguration_blackout), 0) +
                      "s"});
  }
  table.Print();
  std::cout << "\nEvery repartition rights the slice mix at the cost of a\n"
               "multi-minute GPU blackout; FluidFaaS gets the same capacity\n"
               "from the existing fragments with zero blackout.\n";
  return 0;
}
