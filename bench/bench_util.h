// Shared configuration and printing helpers for the figure/table benches.
//
// Every bench binary reproduces one table or figure of the paper (see
// DESIGN.md §3) at the paper's cluster scale: 2 nodes × 8 A100s, default
// partition 4g.40gb+2g.20gb+1g.10gb per GPU. Durations are simulated time;
// override with FFS_BENCH_DURATION_S for quicker smoke runs.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "metrics/report.h"

namespace fluidfaas::bench {

inline SimDuration BenchDuration(double default_seconds = 150.0) {
  if (const char* env = std::getenv("FFS_BENCH_DURATION_S")) {
    const double s = std::atof(env);
    if (s > 0) return Seconds(s);
  }
  return Seconds(default_seconds);
}

inline harness::ExperimentConfig PaperConfig(trace::WorkloadTier tier) {
  harness::ExperimentConfig cfg;
  cfg.tier = tier;
  cfg.num_nodes = 2;
  cfg.gpus_per_node = 8;
  cfg.duration = BenchDuration();
  cfg.seed = 1234;
  return cfg;
}

inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "(reproduces " << paper_ref << "; simulated A100 cluster — "
            << "compare shapes, not absolute numbers; see EXPERIMENTS.md)\n\n";
}

}  // namespace fluidfaas::bench
