// Shared configuration and printing helpers for the figure/table benches.
//
// Every bench binary reproduces one table or figure of the paper (see
// DESIGN.md §3) at the paper's cluster scale: 2 nodes × 8 A100s, default
// partition 4g.40gb+2g.20gb+1g.10gb per GPU. Durations are simulated time;
// override with FFS_BENCH_DURATION_S for quicker smoke runs.
//
// Since the sweep-engine refactor the benches execute their whole run grid
// through harness::RunSweep / harness::RunConfigs: cells run concurrently
// (FFS_JOBS workers, default = hardware threads) and land by grid index,
// so stdout is byte-identical at any job count.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "harness/experiment.h"
#include "harness/sweep.h"
#include "metrics/report.h"

namespace fluidfaas::bench {

namespace detail {

/// Parse FFS_BENCH_DURATION_S exactly once (immutable after init). A
/// malformed, non-positive or non-finite value aborts the bench with a
/// clear message instead of silently falling back — std::atof used to
/// return 0 for garbage, which quietly restored the default duration.
inline std::optional<double> DurationOverrideSeconds() {
  static const std::optional<double> cached =
      []() -> std::optional<double> {
    const char* env = std::getenv("FFS_BENCH_DURATION_S");
    if (env == nullptr || *env == '\0') return std::nullopt;
    char* end = nullptr;
    errno = 0;
    const double s = std::strtod(env, &end);
    if (errno != 0 || end == env || *end != '\0' || !(s > 0.0) ||
        s > 1e9) {
      std::fprintf(stderr,
                   "FFS_BENCH_DURATION_S must be a positive number of "
                   "seconds (<= 1e9), got: \"%s\"\n",
                   env);
      std::exit(2);
    }
    return s;
  }();
  return cached;
}

}  // namespace detail

inline SimDuration BenchDuration(double default_seconds = 150.0) {
  if (const auto s = detail::DurationOverrideSeconds()) return Seconds(*s);
  return Seconds(default_seconds);
}

inline harness::ExperimentConfig PaperConfig(trace::WorkloadTier tier) {
  harness::ExperimentConfig cfg;
  cfg.tier = tier;
  cfg.num_nodes = 2;
  cfg.gpus_per_node = 8;
  cfg.duration = BenchDuration();
  cfg.seed = 1234;
  return cfg;
}

/// Run a set of bench cells through the parallel engine; results come back
/// in input order. Thin alias so every bench reads the same way.
inline std::vector<harness::ExperimentResult> RunAll(
    const std::vector<harness::ExperimentConfig>& configs) {
  return harness::RunConfigs(configs);
}

/// Write the BENCH_sweep.json artifact (FFS_SWEEP_OUT overrides the path)
/// and print where it went plus the wall-clock/speedup summary.
inline void ReportSweepArtifact(const harness::SweepOutcome& outcome,
                                const std::string& fallback =
                                    "BENCH_sweep.json") {
  const std::string path = harness::SweepOutPath(fallback);
  if (harness::WriteSweepJsonFile(outcome, path)) {
    std::cout << "sweep artifact: " << path << " (" << outcome.cells.size()
              << " cells, jobs=" << outcome.jobs << ", wall "
              << metrics::Fmt(outcome.wall_seconds, 2) << "s, speedup "
              << metrics::Fmt(outcome.Speedup(), 2) << "x)\n";
  }
}

inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "(reproduces " << paper_ref << "; simulated A100 cluster — "
            << "compare shapes, not absolute numbers; see EXPERIMENTS.md)\n\n";
}

}  // namespace fluidfaas::bench
