// LLM serving extension (paper §5.2.3): feasibility and service quality of
// 7B/13B/34B decoder models as FluidFaaS functions on the default
// partition, versus monolithic placement.
#include "bench/bench_util.h"
#include "core/ffs_platform.h"
#include "core/partitioner.h"
#include "model/llm.h"

using namespace fluidfaas;

namespace {

struct ServiceResult {
  std::size_t completed = 0;
  double slo = 0.0;
  double p95 = 0.0;
  std::size_t pipelines = 0;
};

ServiceResult Serve(model::LlmSize size, double rps, SimDuration duration) {
  sim::Simulator sim;
  auto cluster = gpu::Cluster::Uniform(1, 8, gpu::DefaultPartition());
  metrics::Recorder recorder(cluster);
  std::vector<platform::FunctionSpec> fns;
  fns.push_back(platform::MakeFunctionSpec(
      FunctionId(0), 100, model::Variant::kLarge, model::BuildLlmApp(size),
      2.0, /*max_stages=*/6));
  platform::PlatformConfig config;
  config.max_stages = 6;
  core::FluidFaasPlatform plat(sim, cluster, recorder, std::move(fns),
                               config);
  plat.Start();
  const auto gap = static_cast<SimDuration>(1e6 / rps);
  for (SimTime t = 0; t < duration; t += gap) {
    sim.At(t, [&] { plat.Submit(FunctionId(0)); });
  }
  sim.RunUntil(duration + Minutes(3));
  plat.Stop();
  recorder.Close(sim.Now());
  ServiceResult r;
  r.completed = recorder.completed_requests();
  r.slo = recorder.SloHitRate();
  auto lats = recorder.LatenciesSeconds();
  r.p95 = lats.empty() ? 0.0 : Percentile(lats, 0.95);
  r.pipelines = plat.pipelines_launched();
  return r;
}

}  // namespace

int main() {
  bench::Banner("Extension — LLM inference as FluidFaaS functions",
                "§5.2.3");
  metrics::Table feas({"model", "total mem", "monolithic min",
                       "pipelined min"});
  for (auto size :
       {model::LlmSize::k7B, model::LlmSize::k13B, model::LlmSize::k34B}) {
    const auto dag = model::BuildLlmApp(size);
    const auto mono = core::MinMonolithicProfile(dag);
    const auto piped = core::MinPipelinedProfile(dag, 6);
    feas.AddRow(
        {model::Name(size),
         metrics::Fmt(static_cast<double>(dag.TotalMemory()) / kGiB, 1) +
             " GB",
         mono ? gpu::Name(*mono) : "NONE", piped ? gpu::Name(*piped) : "NONE"});
  }
  feas.Print();

  const SimDuration dur = bench::BenchDuration(120.0);
  metrics::Table svc({"model", "offered rps", "completed", "SLO hit", "P95",
                      "pipelines"});
  const double rates[] = {6.0, 3.0, 1.5};
  int i = 0;
  for (auto size :
       {model::LlmSize::k7B, model::LlmSize::k13B, model::LlmSize::k34B}) {
    const double rps = rates[i++];
    auto r = Serve(size, rps, dur);
    svc.AddRow({model::Name(size), metrics::Fmt(rps, 1),
                std::to_string(r.completed), metrics::FmtPercent(r.slo),
                metrics::Fmt(r.p95, 2) + "s", std::to_string(r.pipelines)});
  }
  std::cout << "\nFluidFaaS serving each model on 8 default-partitioned "
               "A100s:\n";
  svc.Print();
  std::cout << "\nThe 34B model has NO feasible monolithic placement — the\n"
               "baselines cannot host it at all; FluidFaaS serves it from\n"
               "2g fragments.\n";
  return 0;
}
