// Fault sweep (robustness extension): how gracefully does each scheduler
// degrade as deterministic fault injection ramps up? At rate 0 this is the
// exact fault-free simulation; each higher rate adds instance crashes,
// slice failures, doomed cold starts and slow-start stragglers (see
// DESIGN.md "Failure model"). Goodput counts SLO-hit completions that were
// not disqualified by the enforcement timeout, so a scheduler that retries
// well keeps goodput close to its fault-free throughput.
//
// The rate × system grid executes as one parallel sweep (fault rate is a
// first-class sweep axis); rows and the JSON report follow grid order, so
// output is byte-identical at any FFS_JOBS.
#include <fstream>

#include "bench/bench_util.h"
#include "common/json.h"
#include "harness/json_report.h"

using namespace fluidfaas;

namespace {

constexpr double kRates[] = {0.0, 0.01, 0.03, 0.1};

constexpr harness::SystemKind kSystems[] = {
    harness::SystemKind::kInfless,    harness::SystemKind::kEsg,
    harness::SystemKind::kRepartition,
    harness::SystemKind::kFluidFaasDistributed,
    harness::SystemKind::kFluidFaas,
};

constexpr std::size_t kNumSystems = sizeof(kSystems) / sizeof(kSystems[0]);

}  // namespace

int main() {
  bench::Banner("Fault sweep — goodput & SLO degradation under injection",
                "robustness extension beyond the paper");

  harness::SweepSpec spec;
  spec.base = bench::PaperConfig(trace::WorkloadTier::kMedium);
  spec.base.faults.mttr = Seconds(30.0);
  spec.base.faults.timeout_scale = 3.0;
  spec.fault_rates.assign(std::begin(kRates), std::end(kRates));
  spec.systems.assign(std::begin(kSystems), std::end(kSystems));
  const harness::SweepOutcome sweep = harness::RunSweep(spec);

  metrics::Table table({"rate (/s)", "System", "goodput", "SLO hit",
                        "vs rate 0", "inst fail", "slice fail", "retries",
                        "recovered", "abandoned", "plans", "aborted"});

  JsonWriter w;
  w.BeginArray();
  // Fault-free goodput per system, the baseline of the degradation column.
  // The rate-0 cells are the grid's first row (fault rate is the outer
  // axis), so they are always populated before higher rates consult them.
  double baseline[kNumSystems] = {};

  for (const harness::SweepCell& cell : sweep.cells) {
    const std::size_t s = cell.point.index % kNumSystems;
    const double rate = cell.point.fault_rate;
    const auto& r = cell.result;
    if (rate == 0.0) baseline[s] = r.goodput_rps;
    const double rel =
        baseline[s] > 0.0 ? r.goodput_rps / baseline[s] : 1.0;
    table.AddRow({metrics::Fmt(rate, 2), r.system,
                  metrics::Fmt(r.goodput_rps, 1) + " rps",
                  metrics::FmtPercent(r.slo_hit_rate),
                  metrics::FmtPercent(rel),
                  std::to_string(r.instances_failed),
                  std::to_string(r.slices_failed),
                  std::to_string(r.retries),
                  std::to_string(r.recovered),
                  std::to_string(r.abandoned),
                  std::to_string(r.plans_committed + r.plans_aborted),
                  std::to_string(r.plans_aborted)});
    w.BeginObject();
    w.Key("fault_rate").Value(rate);
    w.Key("system").Value(r.system);
    w.Key("goodput_rps").Value(r.goodput_rps);
    w.Key("goodput_vs_baseline").Value(rel);
    w.Key("throughput_rps").Value(r.throughput_rps);
    w.Key("slo_hit_rate").Value(r.slo_hit_rate);
    w.Key("instances_failed").Value(r.instances_failed);
    w.Key("slices_failed").Value(r.slices_failed);
    w.Key("timeouts").Value(r.timeouts);
    w.Key("retries").Value(r.retries);
    w.Key("recovered").Value(r.recovered);
    w.Key("abandoned").Value(r.abandoned);
    w.Key("plans_committed").Value(r.plans_committed);
    w.Key("plans_aborted").Value(r.plans_aborted);
    w.Key("plan_conflict_rate").Value(r.plan_conflict_rate);
    w.Key("plan_aborts_by_cause").BeginObject();
    for (int c = 1; c < sim::kNumPlanAbortCauses; ++c) {
      w.Key(sim::Name(static_cast<sim::PlanAbortCause>(c)))
          .Value(r.plan_aborts_by_cause[static_cast<std::size_t>(c)]);
    }
    w.EndObject();
    // Admission rejections (zero with the default fifo/none queue policy;
    // JSON-only so the stdout table is unchanged by the QoS subsystem).
    w.Key("rejected").Value(r.rejected);
    w.Key("rejects_by_cause").BeginObject();
    for (int c = 1; c < sim::kNumRejectCauses; ++c) {
      w.Key(sim::Name(static_cast<sim::RejectCause>(c)))
          .Value(r.rejects_by_cause[static_cast<std::size_t>(c)]);
    }
    w.EndObject();
    w.EndObject();
  }
  table.Print();
  w.EndArray();

  const char* env = std::getenv("FFS_FAULT_SWEEP_OUT");
  const std::string path = env != nullptr ? env : "fault_sweep.json";
  std::ofstream out(path);
  FFS_CHECK_MSG(out.good(), "cannot write " + path);
  out << w.Take() << "\n";
  std::cout << "\nJSON report written to " << path << "\n"
            << "Failures stay contained to single MIG slices (strong\n"
               "isolation); the degradation column shows how much of each\n"
               "scheduler's fault-free goodput survives the injection.\n";
  return 0;
}
