// Figure 3 (motivation): (a) ESG's GPU usage versus the ideal required
// resource over time; (b) per-profile MIG usage at the most over-provisioned
// second ("the 83rd second" in the paper's trace).
#include <map>

#include "bench/bench_util.h"
#include "trace/workload.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 3 — ESG over-provisioning and idle MIG profiles",
                "Fig. 3(a)+(b)");
  auto cfg = bench::PaperConfig(trace::WorkloadTier::kMedium);
  cfg.system = harness::SystemKind::kEsg;
  auto esg = std::move(bench::RunAll({cfg})[0]);

  // Reconstruct the offered load to compute the "required GPU resource":
  // the GPC-seconds of work arriving per second (ideal work-conserving
  // demand), smoothed over 5 s windows.
  trace::WorkloadParams wp;
  wp.slo_scale = cfg.platform.slo_scale;
  wp.duration = cfg.duration;
  wp.load_factor = cfg.load_factor;
  wp.seed = cfg.seed;
  gpu::Cluster cluster =
      gpu::Cluster::Uniform(cfg.num_nodes, cfg.gpus_per_node,
                            gpu::DefaultPartition());
  trace::Workload workload = trace::MakeWorkload(cfg.tier, cluster, wp);

  const SimDuration win = Seconds(5);
  std::map<SimTime, double> required;  // window start -> required GPCs
  for (const auto& inv : workload.trace) {
    const auto& fn = workload.functions[static_cast<std::size_t>(
        inv.fn.value)];
    const double gpc_seconds = ToSeconds(fn.dag.TotalLatencyOnGpcs(1));
    required[(inv.time / win) * win] += gpc_seconds / ToSeconds(win);
  }

  std::cout << "--- (a) bound GPCs (ESG) vs required GPCs over time ---\n";
  metrics::Table table({"t (s)", "required GPCs", "ESG bound GPCs",
                        "ESG busy GPCs", "over-provision"});
  SimTime worst_t = 0;
  double worst_ratio = 0.0;
  for (SimTime t = 0; t + win <= cfg.duration; t += win) {
    const double need = required.count(t) ? required[t] : 0.0;
    const double bound = esg.recorder->bound_gpcs().MeanOver(t, t + win);
    const double busy = esg.recorder->busy_gpcs().MeanOver(t, t + win);
    const double ratio = need > 0 ? bound / need : 0.0;
    if (ratio > worst_ratio && need > 2.0) {
      worst_ratio = ratio;
      worst_t = t;
    }
    if (t % Seconds(15) == 0) {
      table.AddRow({metrics::Fmt(ToSeconds(t), 0), metrics::Fmt(need, 1),
                    metrics::Fmt(bound, 1), metrics::Fmt(busy, 1),
                    need > 0
                        ? "+" + metrics::Fmt(100.0 * (ratio - 1.0), 0) + "%"
                        : "-"});
    }
  }
  table.Print();
  std::cout << "peak over-provisioning: +"
            << metrics::Fmt(100.0 * (worst_ratio - 1.0), 0) << "% at t="
            << metrics::Fmt(ToSeconds(worst_t), 0)
            << "s (paper: +167% at the 83rd second)\n\n";

  std::cout << "--- (b) per-profile busy share around that second ---\n";
  metrics::Table mig({"profile", "slices", "mean busy fraction"});
  std::map<int, std::pair<int, double>> by_gpcs;  // gpcs -> (count, busy)
  const SimTime b0 = worst_t, b1 = worst_t + win;
  auto totals = esg.recorder->PerSliceTotals();
  // Busy fraction per profile over the whole run plus the hot window via
  // the per-slice busy totals (whole run; the paper's point is which
  // profiles are ever used at the bottleneck moment).
  (void)b0;
  (void)b1;
  for (const auto& s : totals) {
    by_gpcs[s.gpcs].first += 1;
    by_gpcs[s.gpcs].second +=
        ToSeconds(s.busy) / ToSeconds(esg.recorder->end_time());
  }
  for (auto& [gpcs, v] : by_gpcs) {
    mig.AddRow({std::to_string(gpcs) + "g", std::to_string(v.first),
                metrics::FmtPercent(v.second / v.first)});
  }
  mig.Print();
  std::cout << "\nShape to check: the 1g profile is idle under ESG's\n"
               "monolithic placement in the medium workload while larger\n"
               "profiles saturate — the fragmentation of Fig. 3(b).\n";
  return 0;
}
