// Figure 4: the resource-fragmentation illustration, executed. A function
// that needs a 4g.40gb monolithically cannot be placed on a cluster whose
// large slices are taken — but FluidFaaS's planner deploys it as a 3g+1g or
// 2g+2g pipeline on the fragments.
#include "bench/bench_util.h"
#include "core/partitioner.h"
#include "core/pipeline.h"
#include "model/zoo.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 4 — fragmentation and pipeline-based placement",
                "Fig. 4");
  // GPU 1: 4g+2g+1g with the 4g and the 1g occupied (Fig. 4(a) left).
  // GPU 2: 3g+2g+2g with the 3g occupied.
  std::vector<std::vector<gpu::MigPartition>> parts = {
      {gpu::MigPartition::Parse("4g.40gb+2g.20gb+1g.10gb"),
       gpu::MigPartition::Parse("3g.40gb+2g.20gb+2g.20gb")}};
  gpu::Cluster cluster(std::move(parts));
  for (SliceId sid : cluster.AllSlices()) {
    const auto& s = cluster.slice(sid);
    const bool occupy =
        (s.gpu == GpuId(0) && s.profile() != gpu::MigProfile::k2g20gb) ||
        (s.gpu == GpuId(1) && s.profile() == gpu::MigProfile::k3g40gb);
    if (occupy) cluster.Bind(sid, InstanceId(99));
  }
  std::cout << cluster.Describe() << "free slices: ";
  for (SliceId sid : cluster.FreeSlices()) {
    std::cout << gpu::Name(cluster.slice(sid).profile()) << " ";
  }
  std::cout << "\n\n";

  // The new instance: app 0, large variant — monolithic minimum 3g.40gb.
  const auto dag = model::BuildApp(0, model::Variant::kLarge);
  std::cout << "arriving instance: " << dag.name() << ", "
            << metrics::Fmt(static_cast<double>(dag.TotalMemory()) / kGiB, 1)
            << " GB total, monolithic minimum "
            << gpu::Name(*core::MinMonolithicProfile(dag)) << "\n";

  auto mono_slice = cluster.SmallestFreeSliceWithMemory(dag.TotalMemory());
  std::cout << "monolithic placement on free slices: "
            << (mono_slice ? "POSSIBLE (unexpected!)" : "IMPOSSIBLE — the "
               "idle capacity is fragmented across small slices")
            << "\n";

  auto ranked = core::EnumerateRankedPipelines(dag, 4);
  std::cout << "\nCV-ranked pipeline candidates (Eq. 1):\n";
  for (std::size_t i = 0; i < ranked.size() && i < 6; ++i) {
    std::cout << "  " << i << ": " << core::ToString(ranked[i]) << "\n";
  }
  auto plan = core::PlanFirstFeasible(dag, ranked, cluster,
                                      model::TransferCostModel{});
  if (plan) {
    std::cout << "\ndeployed pipeline (Fig. 4(c)/(d) outcome): "
              << plan->ToString() << "\n"
              << "  bottleneck " << metrics::FmtMillis(static_cast<double>(
                     plan->BottleneckTime()))
              << ", end-to-end "
              << metrics::FmtMillis(
                     static_cast<double>(plan->EndToEndLatency()))
              << ", " << plan->TotalGpcs() << " GPCs\n";
  } else {
    std::cout << "no pipeline found (unexpected)\n";
  }
  return 0;
}
