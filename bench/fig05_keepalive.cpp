// Figure 5: occupied vs actively-used MIG percentage per GPU under the
// exclusive keep-alive policy (ESG baseline, 10-minute keep-alive, long
// sparse trace). The paper reports 16.1% average active share and MIGs
// below 35% activity for 90% of the time.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 5 — occupied vs actively used GPU percentage",
                "Fig. 5");
  auto cfg = bench::PaperConfig(trace::WorkloadTier::kLight);
  cfg.system = harness::SystemKind::kEsg;
  cfg.duration = bench::BenchDuration(600.0);  // longer, sparse trace
  cfg.load_factor = 0.06;
  cfg.platform.exclusive_keepalive = Minutes(10);  // the paper's policy

  // Both systems' runs are independent cells; run them concurrently and
  // print ESG first, exactly as before.
  auto fluid_cfg = cfg;
  fluid_cfg.system = harness::SystemKind::kFluidFaas;
  auto results = bench::RunAll({cfg, fluid_cfg});
  const auto& esg = results[0];

  metrics::Table table({"GPU", "occupied", "actively used"});
  auto occ = esg.recorder->PerGpuOccupancy();
  double mean_active = 0.0;
  double mean_occupied = 0.0;
  for (std::size_t g = 0; g < occ.size(); ++g) {
    table.AddRow({std::to_string(g + 1), metrics::FmtPercent(occ[g].occupied),
                  metrics::FmtPercent(occ[g].active)});
    mean_active += occ[g].active;
    mean_occupied += occ[g].occupied;
  }
  mean_active /= static_cast<double>(occ.size());
  mean_occupied /= static_cast<double>(occ.size());
  table.Print();

  const double below35 = esg.recorder->busy_gpcs().FractionAtOrBelow(
      0.35 * esg.total_gpcs, 0, cfg.duration);
  std::cout << "\naverage occupied " << metrics::FmtPercent(mean_occupied)
            << ", average actively used " << metrics::FmtPercent(mean_active)
            << " (paper: 16.1% active)\n"
            << "fraction of time cluster activity <= 35%: "
            << metrics::FmtPercent(below35)
            << " (paper: < 35% for 90% of the time)\n"
            << "\nFor comparison, FluidFaaS on the same trace:\n";

  const auto& fluid = results[1];
  auto focc = fluid.recorder->PerGpuOccupancy();
  double f_active = 0.0, f_occ = 0.0;
  for (const auto& g : focc) {
    f_active += g.active;
    f_occ += g.occupied;
  }
  std::cout << "average occupied "
            << metrics::FmtPercent(f_occ / focc.size())
            << ", average actively used "
            << metrics::FmtPercent(f_active / focc.size())
            << " — eviction-based time sharing narrows the occupied/active "
               "gap\n";
  return 0;
}
