// Figure 9: SLO hit rate per application under light / medium / heavy
// workloads for INFless, ESG and FluidFaaS.
//
// The 3×3 grid (tier × system) executes as one parallel sweep; the
// per-cell metrics plus wall-clock/speedup land in BENCH_sweep.json
// (FFS_SWEEP_OUT overrides the path).
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 9 — SLO hit rate per application and workload",
                "Fig. 9");
  harness::SweepSpec spec;
  spec.base = bench::PaperConfig(trace::WorkloadTier::kLight);
  spec.tiers = {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium,
                trace::WorkloadTier::kHeavy};
  spec.systems = {harness::SystemKind::kInfless, harness::SystemKind::kEsg,
                  harness::SystemKind::kFluidFaas};
  const harness::SweepOutcome sweep = harness::RunSweep(spec);

  for (std::size_t t = 0; t < spec.tiers.size(); ++t) {
    // Row-major grid: cells [3t, 3t+3) are this tier's INFless/ESG/Fluid.
    const harness::ExperimentResult* results[3] = {
        &sweep.cells[3 * t + 0].result, &sweep.cells[3 * t + 1].result,
        &sweep.cells[3 * t + 2].result};
    metrics::Table table({"Application", "INFless", "ESG", "FluidFaaS"});
    const auto& names = results[0]->function_names;
    for (std::size_t f = 0; f < names.size(); ++f) {
      std::vector<std::string> row = {names[f]};
      for (const auto* r : results) {
        row.push_back(metrics::FmtPercent(
            r->recorder->SloHitRate(FunctionId(static_cast<std::int32_t>(f)))));
      }
      table.AddRow(row);
    }
    std::vector<std::string> overall = {"ALL"};
    for (const auto* r : results) {
      overall.push_back(metrics::FmtPercent(r->slo_hit_rate));
    }
    table.AddRow(overall);

    std::cout << "--- " << trace::Name(spec.tiers[t]) << " workload (offered "
              << metrics::Fmt(results[0]->offered_rps, 1) << " rps) ---\n";
    table.Print();
    const double esg = results[1]->slo_hit_rate;
    const double fluid = results[2]->slo_hit_rate;
    if (esg > 0) {
      std::cout << "FluidFaaS vs ESG: "
                << metrics::Fmt(100.0 * (fluid / esg - 1.0), 1)
                << "% relative SLO hit-rate change (paper: up to +90% medium,"
                << " +61% heavy)\n\n";
    }
  }
  bench::ReportSweepArtifact(sweep);
  return 0;
}
