// Figure 10: system throughput under light / medium / heavy workloads, and
// the completion ("finish all tasks") times behind §7.2's 10% / 17% claim.
// The 3×3 grid (tier × system) executes as one parallel sweep.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 10 — system throughput per workload", "Fig. 10");
  harness::SweepSpec spec;
  spec.base = bench::PaperConfig(trace::WorkloadTier::kLight);
  spec.tiers = {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium,
                trace::WorkloadTier::kHeavy};
  spec.systems = {harness::SystemKind::kInfless, harness::SystemKind::kEsg,
                  harness::SystemKind::kFluidFaas};
  const harness::SweepOutcome sweep = harness::RunSweep(spec);

  metrics::Table table({"Workload", "Offered rps", "INFless rps", "ESG rps",
                        "FluidFaaS rps", "Fluid vs ESG", "Fluid makespan",
                        "ESG makespan"});
  for (std::size_t t = 0; t < spec.tiers.size(); ++t) {
    const auto& inf = sweep.cells[3 * t + 0].result;
    const auto& esg = sweep.cells[3 * t + 1].result;
    const auto& fluid = sweep.cells[3 * t + 2].result;
    table.AddRow(
        {trace::Name(spec.tiers[t]), metrics::Fmt(inf.offered_rps, 1),
         metrics::Fmt(inf.throughput_rps, 1),
         metrics::Fmt(esg.throughput_rps, 1),
         metrics::Fmt(fluid.throughput_rps, 1),
         "+" + metrics::Fmt(
                   100.0 * (fluid.throughput_rps / esg.throughput_rps - 1.0),
                   1) +
             "%",
         metrics::Fmt(ToSeconds(fluid.makespan), 1) + "s",
         metrics::Fmt(ToSeconds(esg.makespan), 1) + "s"});
  }
  table.Print();
  std::cout << "\nPaper shape: similar in light, +25% medium, +75% heavy;\n"
               "FluidFaaS finishes all tasks earlier in medium/heavy.\n";
  return 0;
}
