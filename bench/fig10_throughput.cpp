// Figure 10: system throughput under light / medium / heavy workloads, and
// the completion ("finish all tasks") times behind §7.2's 10% / 17% claim.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 10 — system throughput per workload", "Fig. 10");
  metrics::Table table({"Workload", "Offered rps", "INFless rps", "ESG rps",
                        "FluidFaaS rps", "Fluid vs ESG", "Fluid makespan",
                        "ESG makespan"});
  for (auto tier : {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium,
                    trace::WorkloadTier::kHeavy}) {
    auto results = harness::RunComparison(bench::PaperConfig(tier));
    const auto& inf = results[0];
    const auto& esg = results[1];
    const auto& fluid = results[2];
    table.AddRow(
        {trace::Name(tier), metrics::Fmt(inf.offered_rps, 1),
         metrics::Fmt(inf.throughput_rps, 1),
         metrics::Fmt(esg.throughput_rps, 1),
         metrics::Fmt(fluid.throughput_rps, 1),
         "+" + metrics::Fmt(
                   100.0 * (fluid.throughput_rps / esg.throughput_rps - 1.0),
                   1) +
             "%",
         metrics::Fmt(ToSeconds(fluid.makespan), 1) + "s",
         metrics::Fmt(ToSeconds(esg.makespan), 1) + "s"});
  }
  table.Print();
  std::cout << "\nPaper shape: similar in light, +25% medium, +75% heavy;\n"
               "FluidFaaS finishes all tasks earlier in medium/heavy.\n";
  return 0;
}
