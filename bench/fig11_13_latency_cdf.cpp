// Figures 11-13: end-to-end latency CDFs per application for heavy (11),
// medium (12) and light (13) workloads. Pass "heavy", "medium" or "light"
// to restrict to one tier; default runs all three. The tier × system grid
// executes as one parallel sweep; printing follows grid order.
#include <cstring>

#include "bench/bench_util.h"
#include "common/stats.h"

using namespace fluidfaas;

namespace {

void PrintTier(trace::WorkloadTier tier,
               const harness::ExperimentResult* results[3]) {
  const auto& names = results[0]->function_names;

  std::cout << "--- " << trace::Name(tier) << " workload ---\n";
  const std::vector<double> qs = {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99};
  for (std::size_t f = 0; f < names.size(); ++f) {
    metrics::Table table({"system", "p10", "p25", "p50", "p75", "p90", "p95",
                          "p99"});
    for (std::size_t s = 0; s < 3; ++s) {
      const auto& r = *results[s];
      auto lats = r.recorder->LatenciesSeconds(
          FunctionId(static_cast<std::int32_t>(f)));
      if (lats.empty()) continue;
      auto ps = Percentiles(lats, qs);
      std::vector<std::string> row = {r.system};
      for (double p : ps) row.push_back(metrics::Fmt(p, 3) + "s");
      table.AddRow(row);
    }
    std::cout << names[f] << ":\n";
    table.Print();
  }
  // The paper's headline: P95 tail-latency reduction vs ESG.
  auto p95 = [&](const harness::ExperimentResult& r) {
    auto lats = r.recorder->LatenciesSeconds();
    return lats.empty() ? 0.0 : Percentile(lats, 0.95);
  };
  const double esg95 = p95(*results[1]);
  const double fluid95 = p95(*results[2]);
  if (esg95 > 0) {
    std::cout << "P95 (all apps): ESG " << metrics::Fmt(esg95, 3)
              << "s, FluidFaaS " << metrics::Fmt(fluid95, 3) << "s ("
              << metrics::Fmt(100.0 * (1.0 - fluid95 / esg95), 1)
              << "% reduction; paper: up to 81% heavy / 70% medium)\n\n";
  }
}

void RunTiers(const std::vector<trace::WorkloadTier>& tiers) {
  harness::SweepSpec spec;
  spec.base = bench::PaperConfig(tiers.front());
  spec.tiers = tiers;
  spec.systems = {harness::SystemKind::kInfless, harness::SystemKind::kEsg,
                  harness::SystemKind::kFluidFaas};
  const harness::SweepOutcome sweep = harness::RunSweep(spec);
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    const harness::ExperimentResult* results[3] = {
        &sweep.cells[3 * t + 0].result, &sweep.cells[3 * t + 1].result,
        &sweep.cells[3 * t + 2].result};
    PrintTier(tiers[t], results);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("Figures 11-13 — end-to-end latency distributions",
                "Figs. 11, 12, 13");
  if (argc > 1) {
    if (!std::strcmp(argv[1], "heavy")) {
      RunTiers({trace::WorkloadTier::kHeavy});
    } else if (!std::strcmp(argv[1], "medium")) {
      RunTiers({trace::WorkloadTier::kMedium});
    } else {
      RunTiers({trace::WorkloadTier::kLight});
    }
    return 0;
  }
  RunTiers({trace::WorkloadTier::kHeavy, trace::WorkloadTier::kMedium,
            trace::WorkloadTier::kLight});
  return 0;
}
