// Figure 14: end-to-end latency breakdown (queueing / loading / execution /
// data transfer) per application, ESG vs FluidFaaS, per workload. The
// tier × {ESG, FluidFaaS} grid executes as one parallel sweep.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 14 — latency breakdown (left ESG, right FluidFaaS)",
                "Fig. 14");
  harness::SweepSpec spec;
  spec.base = bench::PaperConfig(trace::WorkloadTier::kLight);
  spec.tiers = {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium,
                trace::WorkloadTier::kHeavy};
  spec.systems = {harness::SystemKind::kEsg, harness::SystemKind::kFluidFaas};
  const harness::SweepOutcome sweep = harness::RunSweep(spec);

  for (std::size_t t = 0; t < spec.tiers.size(); ++t) {
    const auto& esg = sweep.cells[2 * t + 0].result;
    const auto& fluid = sweep.cells[2 * t + 1].result;

    metrics::Table table({"Application", "System", "queue", "load", "exec",
                          "transfer", "total"});
    const auto& names = esg.function_names;
    for (std::size_t f = 0; f < names.size(); ++f) {
      const FunctionId fn(static_cast<std::int32_t>(f));
      for (const auto* r : {&esg, &fluid}) {
        const auto bd = r->recorder->MeanBreakdown(fn);
        table.AddRow({names[f], r->system, metrics::FmtMillis(bd.queue),
                      metrics::FmtMillis(bd.load), metrics::FmtMillis(bd.exec),
                      metrics::FmtMillis(bd.transfer),
                      metrics::FmtMillis(bd.queue + bd.load + bd.exec +
                                         bd.transfer)});
      }
    }
    std::cout << "--- " << trace::Name(spec.tiers[t]) << " workload ---\n";
    table.Print();
    const auto e = esg.recorder->MeanBreakdown();
    const auto q = fluid.recorder->MeanBreakdown();
    std::cout << "transfer overhead: ESG " << metrics::FmtMillis(e.transfer)
              << " vs FluidFaaS " << metrics::FmtMillis(q.transfer)
              << " (paper: 1-5ms vs 10-40ms per pipelined request); "
              << "queueing: ESG " << metrics::FmtMillis(e.queue)
              << " vs FluidFaaS " << metrics::FmtMillis(q.queue) << "\n\n";
  }
  return 0;
}
