// Figure 14: end-to-end latency breakdown (queueing / loading / execution /
// data transfer) per application, ESG vs FluidFaaS, per workload.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 14 — latency breakdown (left ESG, right FluidFaaS)",
                "Fig. 14");
  for (auto tier : {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium,
                    trace::WorkloadTier::kHeavy}) {
    auto cfg = bench::PaperConfig(tier);
    cfg.system = harness::SystemKind::kEsg;
    auto esg = harness::RunExperiment(cfg);
    cfg.system = harness::SystemKind::kFluidFaas;
    auto fluid = harness::RunExperiment(cfg);

    metrics::Table table({"Application", "System", "queue", "load", "exec",
                          "transfer", "total"});
    const auto& names = esg.function_names;
    for (std::size_t f = 0; f < names.size(); ++f) {
      const FunctionId fn(static_cast<std::int32_t>(f));
      for (const auto* r : {&esg, &fluid}) {
        const auto bd = r->recorder->MeanBreakdown(fn);
        table.AddRow({names[f], r->system, metrics::FmtMillis(bd.queue),
                      metrics::FmtMillis(bd.load), metrics::FmtMillis(bd.exec),
                      metrics::FmtMillis(bd.transfer),
                      metrics::FmtMillis(bd.queue + bd.load + bd.exec +
                                         bd.transfer)});
      }
    }
    std::cout << "--- " << trace::Name(tier) << " workload ---\n";
    table.Print();
    const auto e = esg.recorder->MeanBreakdown();
    const auto q = fluid.recorder->MeanBreakdown();
    std::cout << "transfer overhead: ESG " << metrics::FmtMillis(e.transfer)
              << " vs FluidFaaS " << metrics::FmtMillis(q.transfer)
              << " (paper: 1-5ms vs 10-40ms per pipelined request); "
              << "queueing: ESG " << metrics::FmtMillis(e.queue)
              << " vs FluidFaaS " << metrics::FmtMillis(q.queue) << "\n\n";
  }
  return 0;
}
