// Figure 15 (+ Table 7): throughput under different MIG partitioning
// schemes — Hybrid, P1 and P2 — in the heavy workload. The scheme × system
// grid runs through the parallel engine (partitions vary beyond the
// standard sweep axes, so the cells are built explicitly).
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 15 — throughput under Table 7 partitions", "Fig. 15");
  struct Scheme {
    const char* name;
    std::vector<gpu::MigPartition> per_gpu;
    const char* paper_gain;
  };
  const std::vector<Scheme> schemes = {
      {"Hybrid", gpu::PartitionSchemeHybrid(), "+70%"},
      {"P1", gpu::PartitionSchemeP1(8), "+75%"},
      {"P2", gpu::PartitionSchemeP2(8), "+78%"},
  };
  const harness::SystemKind systems[] = {harness::SystemKind::kInfless,
                                         harness::SystemKind::kEsg,
                                         harness::SystemKind::kFluidFaas};
  std::vector<harness::ExperimentConfig> cells;
  for (const Scheme& s : schemes) {
    for (auto kind : systems) {
      auto cfg = bench::PaperConfig(trace::WorkloadTier::kHeavy);
      cfg.partitions = {s.per_gpu, s.per_gpu};  // both nodes
      cfg.system = kind;
      cells.push_back(cfg);
    }
  }
  const auto results = bench::RunAll(cells);

  metrics::Table table({"Partition", "INFless rps", "ESG rps",
                        "FluidFaaS rps", "Fluid vs ESG", "Paper"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const auto& inf = results[3 * i + 0];
    const double esg = results[3 * i + 1].throughput_rps;
    const double fluid = results[3 * i + 2].throughput_rps;
    table.AddRow({schemes[i].name, metrics::Fmt(inf.throughput_rps, 1),
                  metrics::Fmt(esg, 1), metrics::Fmt(fluid, 1),
                  "+" + metrics::Fmt(100.0 * (fluid / esg - 1.0), 1) + "%",
                  schemes[i].paper_gain});
  }
  table.Print();
  std::cout << "\nShape to check: FluidFaaS leads on every scheme; the gap\n"
               "grows with the share of small fragmented slices.\n";
  return 0;
}
