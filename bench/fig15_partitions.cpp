// Figure 15 (+ Table 7): throughput under different MIG partitioning
// schemes — Hybrid, P1 and P2 — in the heavy workload.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 15 — throughput under Table 7 partitions", "Fig. 15");
  struct Scheme {
    const char* name;
    std::vector<gpu::MigPartition> per_gpu;
    const char* paper_gain;
  };
  const std::vector<Scheme> schemes = {
      {"Hybrid", gpu::PartitionSchemeHybrid(), "+70%"},
      {"P1", gpu::PartitionSchemeP1(8), "+75%"},
      {"P2", gpu::PartitionSchemeP2(8), "+78%"},
  };
  metrics::Table table({"Partition", "INFless rps", "ESG rps",
                        "FluidFaaS rps", "Fluid vs ESG", "Paper"});
  for (const Scheme& s : schemes) {
    auto cfg = bench::PaperConfig(trace::WorkloadTier::kHeavy);
    cfg.partitions = {s.per_gpu, s.per_gpu};  // both nodes
    auto results = harness::RunComparison(cfg);
    const double esg = results[1].throughput_rps;
    const double fluid = results[2].throughput_rps;
    table.AddRow({s.name, metrics::Fmt(results[0].throughput_rps, 1),
                  metrics::Fmt(esg, 1), metrics::Fmt(fluid, 1),
                  "+" + metrics::Fmt(100.0 * (fluid / esg - 1.0), 1) + "%",
                  s.paper_gain});
  }
  table.Print();
  std::cout << "\nShape to check: FluidFaaS leads on every scheme; the gap\n"
               "grows with the share of small fragmented slices.\n";
  return 0;
}
