// Figure 16: GPU utilization over time (busy GPCs / total GPCs) per
// workload, ESG vs FluidFaaS vs INFless. The tier × system grid executes
// as one parallel sweep.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 16 — GPU utilization over time", "Fig. 16");
  harness::SweepSpec spec;
  spec.base = bench::PaperConfig(trace::WorkloadTier::kLight);
  spec.tiers = {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium,
                trace::WorkloadTier::kHeavy};
  spec.systems = {harness::SystemKind::kInfless, harness::SystemKind::kEsg,
                  harness::SystemKind::kFluidFaas};
  const harness::SweepOutcome sweep = harness::RunSweep(spec);
  const SimDuration duration = spec.base.duration;

  for (std::size_t t = 0; t < spec.tiers.size(); ++t) {
    const harness::ExperimentResult* results[3] = {
        &sweep.cells[3 * t + 0].result, &sweep.cells[3 * t + 1].result,
        &sweep.cells[3 * t + 2].result};

    std::cout << "--- " << trace::Name(spec.tiers[t])
              << " workload: utilization sampled every 10 s ---\n";
    metrics::Table table({"t (s)", "INFless", "ESG", "FluidFaaS"});
    for (SimTime tm = Seconds(10); tm <= duration; tm += Seconds(10)) {
      std::vector<std::string> row = {metrics::Fmt(ToSeconds(tm), 0)};
      for (const auto* r : results) {
        // 10-second window mean ending at tm.
        const double u =
            r->recorder->busy_gpcs().MeanOver(tm - Seconds(10), tm) /
            static_cast<double>(r->total_gpcs);
        row.push_back(metrics::FmtPercent(u));
      }
      table.AddRow(row);
    }
    table.Print();
    std::cout << "run mean: ";
    for (const auto* r : results) {
      const double u = r->recorder->busy_gpcs().MeanOver(0, duration) /
                       static_cast<double>(r->total_gpcs);
      std::cout << r->system << " " << metrics::FmtPercent(u) << "  ";
    }
    std::cout << "\n(paper §7.2: FluidFaaS utilization up to +75% over ESG "
                 "during heavy bursts)\n\n";
  }
  return 0;
}
