// Figure 16: GPU utilization over time (busy GPCs / total GPCs) per
// workload, ESG vs FluidFaaS vs INFless.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Figure 16 — GPU utilization over time", "Fig. 16");
  for (auto tier : {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium,
                    trace::WorkloadTier::kHeavy}) {
    auto cfg = bench::PaperConfig(tier);
    auto results = harness::RunComparison(cfg);

    std::cout << "--- " << trace::Name(tier)
              << " workload: utilization sampled every 10 s ---\n";
    metrics::Table table({"t (s)", "INFless", "ESG", "FluidFaaS"});
    for (SimTime t = Seconds(10); t <= cfg.duration; t += Seconds(10)) {
      std::vector<std::string> row = {metrics::Fmt(ToSeconds(t), 0)};
      for (const auto& r : results) {
        // 10-second window mean ending at t.
        const double u =
            r.recorder->busy_gpcs().MeanOver(t - Seconds(10), t) /
            static_cast<double>(r.total_gpcs);
        row.push_back(metrics::FmtPercent(u));
      }
      table.AddRow(row);
    }
    table.Print();
    std::vector<std::string> mean_row;
    std::cout << "run mean: ";
    for (const auto& r : results) {
      const double u = r.recorder->busy_gpcs().MeanOver(0, cfg.duration) /
                       static_cast<double>(r.total_gpcs);
      std::cout << r.system << " " << metrics::FmtPercent(u) << "  ";
    }
    std::cout << "\n(paper §7.2: FluidFaaS utilization up to +75% over ESG "
                 "during heavy bursts)\n\n";
  }
  return 0;
}
