// google-benchmark microbenches for the hot algorithmic paths: the DES
// event queue, the CV partition enumerator, pipeline planning against a
// cluster, the ESG A* search, and the SPSC runtime channel.
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "baselines/esg_search.h"
#include "common/rng.h"
#include "core/partitioner.h"
#include "core/pipeline.h"
#include "gpu/cluster_view.h"
#include "model/synthetic.h"
#include "model/zoo.h"
#include "platform/placement.h"
#include "platform/platform.h"
#include "platform/policy.h"
#include "qos/queue_discipline.h"
#include "runtime/spsc_ring.h"
#include "sim/simulator.h"

namespace fluidfaas {
namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.Schedule(rng.UniformInt(0, 1'000'000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.Pop().time);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_SimulatorEventCascade(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = n;
    std::function<void()> next = [&] {
      if (--remaining > 0) sim.After(1, next);
    };
    sim.After(0, next);
    sim.Run();
    benchmark::DoNotOptimize(sim.Now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorEventCascade)->Arg(10000);

void BM_PartitionEnumeration(benchmark::State& state) {
  const auto dag = model::BuildApp(3, model::Variant::kMedium);  // 5 nodes
  for (auto _ : state) {
    auto cands = core::EnumerateRankedPipelines(dag, 4);
    benchmark::DoNotOptimize(cands.size());
  }
}
BENCHMARK(BM_PartitionEnumeration);

void BM_PipelinePlanOnFragmentedCluster(benchmark::State& state) {
  auto cluster = gpu::Cluster::Uniform(2, 8, gpu::DefaultPartition());
  // Fragment: occupy all 4g slices.
  for (SliceId sid : cluster.AllSlices()) {
    if (cluster.slice(sid).profile() == gpu::MigProfile::k4g40gb) {
      cluster.Bind(sid, InstanceId(1));
    }
  }
  const auto dag = model::BuildApp(0, model::Variant::kMedium);
  const auto ranked = core::EnumerateRankedPipelines(dag, 4);
  model::TransferCostModel transfer;
  for (auto _ : state) {
    auto plan = core::PlanFirstFeasible(dag, ranked, cluster, transfer);
    benchmark::DoNotOptimize(plan.has_value());
  }
}
BENCHMARK(BM_PipelinePlanOnFragmentedCluster);

void BM_PartitionEnumerationScalability(benchmark::State& state) {
  // Beyond the paper's k <= 5: synthetic chains stress the exhaustive
  // 2^(k-1) enumeration + CV ranking.
  const int k = static_cast<int>(state.range(0));
  model::SyntheticAppParams p;
  p.components = k;
  p.min_memory = GiB(1);
  p.max_memory = GiB(4);
  Rng rng(7);
  const auto dag = model::SyntheticApp(p, rng);
  for (auto _ : state) {
    auto cands = core::EnumerateRankedPipelines(dag, k);
    benchmark::DoNotOptimize(cands.size());
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_PartitionEnumerationScalability)->Arg(6)->Arg(10)->Arg(14);

void BM_EsgAStarSearch(benchmark::State& state) {
  const auto dag = model::BuildApp(1, model::Variant::kMedium);
  const std::vector<int> free = {14, 6, 0, 2, 0};
  const SimDuration slo = 2 * dag.TotalLatencyOnGpcs(1);
  const double demand = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto res = baselines::EsgSearch(dag, free, slo, demand);
    benchmark::DoNotOptimize(res.has_value());
  }
}
BENCHMARK(BM_EsgAStarSearch)->Arg(5)->Arg(20)->Arg(60);

void BM_MaximalPartitionEnumeration(benchmark::State& state) {
  for (auto _ : state) {
    auto parts = gpu::EnumerateMaximalPartitions();
    benchmark::DoNotOptimize(parts.size());
  }
}
BENCHMARK(BM_MaximalPartitionEnumeration);

void BM_SpscRingThroughput(benchmark::State& state) {
  const std::size_t frame = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(frame);
  for (auto _ : state) {
    state.PauseTiming();
    runtime::SpscByteRing ring(1 << 22);
    constexpr int kFrames = 4096;
    state.ResumeTiming();
    std::thread consumer([&] {
      int n = 0;
      while (n < kFrames) {
        if (ring.Pop()) ++n;
      }
    });
    for (int i = 0; i < kFrames; ++i) {
      ring.Push(payload.data(), static_cast<std::uint32_t>(payload.size()));
    }
    consumer.join();
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<std::int64_t>(kFrames) *
                                static_cast<std::int64_t>(frame));
  }
}
BENCHMARK(BM_SpscRingThroughput)->Arg(256)->Arg(4096)->Arg(65536);

// --- Placement transactions (DESIGN.md §8) ----------------------------------

platform::PolicyBundle InertBundle() {
  struct Reject final : platform::RoutingPolicy {
    bool Route(platform::PlatformCore&, RequestId, FunctionId) override {
      return false;
    }
  };
  struct Noop final : platform::ScalingPolicy {
    void Tick(platform::PlatformCore&) override {}
  };
  platform::PolicyBundle b;
  b.name = "micro-bench";
  b.routing = std::make_unique<Reject>();
  b.scaling = std::make_unique<Noop>();
  return b;
}

std::vector<platform::FunctionSpec> BenchFunctions() {
  std::vector<platform::FunctionSpec> fns;
  int id = 0;
  for (auto& dag : model::BuildStudyApps(model::Variant::kSmall)) {
    const int app = id;
    fns.push_back(platform::MakeFunctionSpec(FunctionId(id++), app,
                                             model::Variant::kSmall, dag,
                                             1.5));
  }
  return fns;
}

// Planner throughput: view snapshot -> plan -> Commit -> retire, the full
// placement-transaction round trip a scheduler performs per decision.
void BM_PlacementPlanCommit(benchmark::State& state) {
  sim::Simulator sim;
  auto cluster = gpu::Cluster::Uniform(2, 8, gpu::DefaultPartition());
  platform::PlatformCore plat(sim, cluster, BenchFunctions(),
                              platform::PlatformConfig{}, InertBundle());
  const auto& dag = plat.function(FunctionId(0)).dag;
  for (auto _ : state) {
    gpu::ClusterView view(cluster);
    auto plan = core::MonolithicPlanOnSmallestSlice(dag, view);
    auto result = plat.Commit(
        platform::SpawnPlan(FunctionId(0), std::move(*plan), true));
    benchmark::DoNotOptimize(result.spawned.front());
    sim.Run();  // drain the load so the instance is retirable
    plat.RetireInstance(result.spawned.front());
  }
  state.SetItemsProcessed(state.iterations());  // plans/sec
}
BENCHMARK(BM_PlacementPlanCommit);

// Commit throughput with live-state drift between plan and commit: the
// planned slice fails with probability range(0)% so a matching fraction of
// commits must detect the conflict and abort cleanly. conflict_rate reports
// the observed abort fraction.
void BM_PlacementCommitUnderFaults(benchmark::State& state) {
  const double fault_rate = static_cast<double>(state.range(0)) / 100.0;
  sim::Simulator sim;
  auto cluster = gpu::Cluster::Uniform(1, 4, gpu::DefaultPartition());
  platform::PlatformCore plat(sim, cluster, BenchFunctions(),
                              platform::PlatformConfig{}, InertBundle());
  const auto& dag = plat.function(FunctionId(0)).dag;
  Rng rng(42);
  std::int64_t attempts = 0;
  std::int64_t aborted = 0;
  for (auto _ : state) {
    gpu::ClusterView view(cluster);
    auto plan = core::MonolithicPlanOnSmallestSlice(dag, view);
    const SliceId target = plan->stages.front().slice;
    const bool faulted = rng.Chance(fault_rate);
    if (faulted) cluster.MarkFailed(target);
    ++attempts;
    auto result = plat.Commit(
        platform::SpawnPlan(FunctionId(0), std::move(*plan), true));
    if (result.ok()) {
      sim.Run();
      plat.RetireInstance(result.spawned.front());
    } else {
      ++aborted;
    }
    if (faulted) cluster.Repair(target);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["conflict_rate"] =
      attempts == 0 ? 0.0
                    : static_cast<double>(aborted) /
                          static_cast<double>(attempts);
}
BENCHMARK(BM_PlacementCommitUnderFaults)->Arg(0)->Arg(10)->Arg(30);

// QoS queue disciplines (DESIGN.md §9): enqueue n requests across 16
// functions with varied deadlines/estimates, then drain everything. Items
// processed counts one enqueue+dequeue pair per request, so ops/s compares
// the per-request bookkeeping cost of fifo vs fair vs edf directly.
void QueueDisciplineRound(qos::QueueDiscipline& q, int n,
                          benchmark::State& state) {
  Rng rng(7);
  for (int i = 0; i < n; ++i) {
    qos::QueueItem item;
    item.rid = RequestId(i);
    item.fn = FunctionId(static_cast<std::int32_t>(rng.UniformInt(0, 15)));
    item.deadline = rng.UniformInt(1, 1'000'000);
    item.priority = item.deadline;
    item.service_estimate = rng.UniformInt(1, 10'000);
    q.Enqueue(item);
  }
  std::int64_t dispatched = 0;
  q.Drain([&dispatched](const qos::QueueItem&) {
    ++dispatched;
    return qos::DrainVerdict::kDispatch;
  });
  benchmark::DoNotOptimize(dispatched);
  if (dispatched != n) state.SkipWithError("drain lost items");
}

template <typename MakeQueue>
void QueueDisciplineBench(benchmark::State& state, MakeQueue make) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto q = make();
    QueueDisciplineRound(*q, n, state);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_QueueDiscipline_Fifo(benchmark::State& state) {
  QueueDisciplineBench(state,
                       [] { return std::make_unique<qos::FifoQueue>(); });
}
BENCHMARK(BM_QueueDiscipline_Fifo)->Arg(1024);

void BM_QueueDiscipline_Fair(benchmark::State& state) {
  QueueDisciplineBench(
      state, [] { return std::make_unique<qos::FairQueue>(4); });
}
BENCHMARK(BM_QueueDiscipline_Fair)->Arg(1024);

void BM_QueueDiscipline_Edf(benchmark::State& state) {
  QueueDisciplineBench(state,
                       [] { return std::make_unique<qos::EdfQueue>(); });
}
BENCHMARK(BM_QueueDiscipline_Edf)->Arg(1024);

}  // namespace
}  // namespace fluidfaas

BENCHMARK_MAIN();
