// Overload sweep (QoS extension, DESIGN.md §9): how do the queueing
// disciplines and admission control change behaviour as offered load climbs
// past capacity? Each scheduler runs under four queue policies —
//   fifo/none  the legacy adjusted-deadline FIFO, no admission control
//   fair/none  per-function virtual-time fair queueing (MQFQ-style)
//   edf/none   earliest-deadline-first
//   fifo/shed  FIFO plus deadline-infeasible shedding at dispatch
// at 1x / 1.5x / 2x the tier's default load factor. Fair queueing targets
// the starved-tenant tail (worst-function p99, Jain index); shedding
// targets goodput — dropping doomed work early frees slices for requests
// that can still hit their SLO.
//
// Every cell is replicated across kSeeds trace seeds and the table reports
// per-cell means: the tail metrics under hard overload are seed-sensitive
// (which functions the synthesizer makes hot decides who starves), so a
// single seed can flip a small fairness delta either way. Three seeds are
// enough for the orderings this bench demonstrates to be stable.
//
// The whole grid executes through the parallel sweep engine (RunConfigs);
// rows and the JSON artifact land in grid order, so stdout is
// byte-identical at any FFS_JOBS.
#include <array>
#include <cstdlib>
#include <fstream>

#include "bench/bench_util.h"
#include "common/json.h"
#include "harness/json_report.h"

using namespace fluidfaas;

namespace {

constexpr double kLoadMultipliers[] = {1.0, 1.5, 2.0};
// Medium tier's default load factor (trace::DefaultLoadFactor).
constexpr double kBaseLoadFactor = 0.52;
constexpr uint64_t kSeeds[] = {1, 2, 3};

struct QosVariant {
  const char* label;
  const char* queue;
  const char* admission;
};

constexpr QosVariant kVariants[] = {
    {"fifo/none", "fifo", "none"},
    {"fair/none", "fair", "none"},
    {"edf/none", "edf", "none"},
    {"fifo/shed", "fifo", "shed"},
};

constexpr harness::SystemKind kSystems[] = {
    harness::SystemKind::kInfless,    harness::SystemKind::kEsg,
    harness::SystemKind::kRepartition,
    harness::SystemKind::kFluidFaasDistributed,
    harness::SystemKind::kFluidFaas,
};

}  // namespace

int main() {
  bench::Banner("Overload sweep — queue disciplines & admission control",
                "QoS extension beyond the paper");

  std::vector<harness::ExperimentConfig> configs;
  for (const double mult : kLoadMultipliers) {
    for (const QosVariant& v : kVariants) {
      for (const harness::SystemKind sys : kSystems) {
        for (const uint64_t seed : kSeeds) {
          harness::ExperimentConfig cfg =
              bench::PaperConfig(trace::WorkloadTier::kMedium);
          cfg.duration = bench::BenchDuration(60.0);
          cfg.system = sys;
          cfg.seed = seed;
          cfg.load_factor = kBaseLoadFactor * mult;
          cfg.platform.qos.queue = v.queue;
          cfg.platform.qos.admission = v.admission;
          configs.push_back(cfg);
        }
      }
    }
  }
  const std::vector<harness::ExperimentResult> results =
      bench::RunAll(configs);

  constexpr std::size_t kReps = std::size(kSeeds);
  metrics::Table table({"load", "policy", "system", "goodput", "SLO hit",
                        "worst-fn p99", "jain", "rejected", "top cause"});
  JsonWriter w;
  w.BeginArray();
  std::size_t i = 0;
  for (const double mult : kLoadMultipliers) {
    for (const QosVariant& v : kVariants) {
      for (std::size_t s = 0; s < std::size(kSystems); ++s) {
        // Mean over the seed replicas; rejection causes summed so the
        // dominant cause reflects the whole replica set.
        double goodput = 0, slo = 0, p99 = 0, jain = 0, rejected = 0;
        std::array<std::size_t, sim::kNumRejectCauses> by_cause{};
        for (std::size_t k = 0; k < kReps; ++k) {
          const harness::ExperimentResult& r = results[i + k];
          goodput += r.goodput_rps;
          slo += r.slo_hit_rate;
          p99 += r.worst_fn_p99_s;
          jain += r.jain_fairness;
          rejected += static_cast<double>(r.rejected);
          for (int c = 0; c < sim::kNumRejectCauses; ++c) {
            by_cause[static_cast<std::size_t>(c)] +=
                r.rejects_by_cause[static_cast<std::size_t>(c)];
          }
        }
        goodput /= kReps;
        slo /= kReps;
        p99 /= kReps;
        jain /= kReps;
        rejected /= kReps;
        std::size_t worst = 0;
        const char* worst_name = "-";
        for (int c = 1; c < sim::kNumRejectCauses; ++c) {
          const std::size_t n = by_cause[static_cast<std::size_t>(c)];
          if (n > worst) {
            worst = n;
            worst_name = sim::Name(static_cast<sim::RejectCause>(c));
          }
        }
        table.AddRow({metrics::Fmt(mult, 1) + "x", v.label,
                      results[i].system,
                      metrics::Fmt(goodput, 1) + " rps",
                      metrics::FmtPercent(slo),
                      metrics::Fmt(p99, 2) + "s", metrics::Fmt(jain, 3),
                      metrics::Fmt(rejected, 0), worst_name});
        w.BeginObject();
        w.Key("load_multiplier").Value(mult);
        w.Key("queue").Value(v.queue);
        w.Key("admission").Value(v.admission);
        w.Key("mean").BeginObject();
        w.Key("goodput_rps").Value(goodput);
        w.Key("slo_hit_rate").Value(slo);
        w.Key("worst_fn_p99_s").Value(p99);
        w.Key("jain_fairness").Value(jain);
        w.Key("rejected").Value(rejected);
        w.EndObject();
        w.Key("seeds").BeginArray();
        for (std::size_t k = 0; k < kReps; ++k) {
          w.Raw(harness::ResultToJson(results[i + k]));
        }
        w.EndArray();
        w.EndObject();
        i += kReps;
      }
    }
  }
  table.Print();
  w.EndArray();

  const char* env = std::getenv("FFS_OVERLOAD_SWEEP_OUT");
  const std::string path = env != nullptr ? env : "overload_sweep.json";
  std::ofstream out(path);
  FFS_CHECK_MSG(out.good(), "cannot write " + path);
  out << w.Take() << "\n";
  std::cout << "\nJSON report written to " << path << " (means over "
            << kReps << " seeds per cell)\n"
            << "At 2x load, fair queueing trades a little aggregate\n"
               "throughput for a flatter per-function profile (higher Jain,\n"
               "lower worst-function p99); shedding drops work that cannot\n"
               "meet its deadline, lifting goodput over admit-everything.\n";
  return 0;
}
