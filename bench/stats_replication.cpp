// Seed-replication study (extension): the headline medium/heavy comparisons
// re-run across independent trace seeds, reported as mean ± std — evidence
// that the figures are not one lucky draw. The replicas of each summary
// execute concurrently through the sweep engine (harness::RunReplicated
// fans its seed sequence out to harness::RunConfigs).
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Replication — headline metrics across 5 trace seeds",
                "statistical robustness (extension beyond the paper)");
  const int replicas = 5;
  for (auto tier :
       {trace::WorkloadTier::kMedium, trace::WorkloadTier::kHeavy}) {
    metrics::Table table({"System", "thr mean", "thr std", "SLO mean",
                          "SLO std", "P95 mean"});
    double esg_thr = 0.0, fluid_thr = 0.0;
    for (auto kind : {harness::SystemKind::kEsg,
                      harness::SystemKind::kFluidFaas}) {
      auto cfg = bench::PaperConfig(tier);
      cfg.duration = bench::BenchDuration(100.0);
      cfg.system = kind;
      auto s = harness::RunReplicated(cfg, replicas);
      table.AddRow({harness::Name(kind),
                    metrics::Fmt(s.throughput_rps.mean(), 1),
                    metrics::Fmt(s.throughput_rps.stddev(), 1),
                    metrics::FmtPercent(s.slo_hit_rate.mean()),
                    metrics::FmtPercent(s.slo_hit_rate.stddev()),
                    metrics::Fmt(s.p95_latency_s.mean(), 1) + "s"});
      (kind == harness::SystemKind::kEsg ? esg_thr : fluid_thr) =
          s.throughput_rps.mean();
    }
    std::cout << "--- " << trace::Name(tier) << " workload (" << replicas
              << " seeds) ---\n";
    table.Print();
    std::cout << "FluidFaaS vs ESG mean throughput: +"
              << metrics::Fmt(100.0 * (fluid_thr / esg_thr - 1.0), 1)
              << "%\n\n";
  }
  return 0;
}
