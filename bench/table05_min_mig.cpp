// Table 5: minimum MIG slice required to run each application variant —
// monolithically (the baselines) and with FluidFaaS pipelining.
#include "bench/bench_util.h"
#include "core/partitioner.h"
#include "model/zoo.h"

using namespace fluidfaas;

namespace {

std::string ProfileCell(std::optional<gpu::MigProfile> p) {
  return p ? std::string(">= ") + gpu::Name(*p) : "NULL";
}

}  // namespace

int main() {
  bench::Banner("Table 5 — application variants and MIG slices to run",
                "Table 5");
  metrics::Table table({"Application", "Variant", "MIG to run (Baseline)",
                        "MIG to run (FluidFaaS)", "Paper (Baseline)",
                        "Paper (FluidFaaS)"});
  const char* paper_baseline[4][3] = {
      {">= 1g.10gb", ">= 2g.20gb", ">= 3g.40gb"},
      {">= 1g.10gb", ">= 2g.20gb", ">= 3g.40gb"},
      {">= 1g.10gb", ">= 2g.20gb", ">= 3g.40gb"},
      {">= 2g.20gb", ">= 4g.40gb", "NULL"},
  };
  const char* paper_fluid[4][3] = {
      {">= 1g.10gb", ">= 1g.10gb", ">= 2g.20gb"},
      {">= 1g.10gb", ">= 1g.10gb", ">= 2g.20gb"},
      {">= 1g.10gb", ">= 1g.10gb", ">= 2g.20gb"},
      {">= 1g.10gb", ">= 1g.10gb", "NULL"},
  };
  for (int a = 0; a < model::kNumApps; ++a) {
    for (model::Variant v : model::kAllVariants) {
      const auto dag = model::BuildApp(a, v);
      std::string fluid_cell;
      if (!model::IncludedInStudy(a, v)) {
        fluid_cell = "NULL (excluded)";
      } else {
        fluid_cell = ProfileCell(core::MinPipelinedProfile(dag, 4));
      }
      table.AddRow({model::AppName(a), model::Name(v),
                    ProfileCell(core::MinMonolithicProfile(dag)), fluid_cell,
                    paper_baseline[a][static_cast<int>(v)],
                    paper_fluid[a][static_cast<int>(v)]});
    }
  }
  table.Print();
  std::cout
      << "\nNote: app 3 / medium reports >= 3g.40gb by pure memory fit; the\n"
         "paper prints >= 4g.40gb (its default partition offers no 3g).\n";
  return 0;
}
