// Table 6: resource cost comparison — MIG time and GPU time per workload,
// normalized so FluidFaaS = 1 (lower is better). The tier × system grid
// executes as one parallel sweep.
#include "bench/bench_util.h"

using namespace fluidfaas;

int main() {
  bench::Banner("Table 6 — normalized MIG time and GPU time", "Table 6");
  harness::SweepSpec spec;
  spec.base = bench::PaperConfig(trace::WorkloadTier::kLight);
  spec.tiers = {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium,
                trace::WorkloadTier::kHeavy};
  spec.systems = {harness::SystemKind::kInfless, harness::SystemKind::kEsg,
                  harness::SystemKind::kFluidFaas};
  const harness::SweepOutcome sweep = harness::RunSweep(spec);

  metrics::Table table({"Workload", "Metric", "INFless", "ESG", "FluidFaaS",
                        "Paper (INF/ESG)"});
  const char* paper_mig[3] = {"0.95 / 0.96", "0.93 / 0.99", "0.94 / 0.97"};
  const char* paper_gpu[3] = {"1.08 / 1.07", "1.06 / 1.05", "1.17 / 0.99"};
  for (std::size_t t = 0; t < spec.tiers.size(); ++t) {
    const harness::ExperimentResult* results[3] = {
        &sweep.cells[3 * t + 0].result, &sweep.cells[3 * t + 1].result,
        &sweep.cells[3 * t + 2].result};
    // Normalize per completed request so saturated baselines that complete
    // less work are not flattered (the paper's systems complete the same
    // request set within the measurement window).
    auto per_req = [](const harness::ExperimentResult& r, SimDuration v) {
      const auto n = r.recorder->completed_requests();
      return n ? static_cast<double>(v) / static_cast<double>(n) : 0.0;
    };
    const double f_mig = per_req(*results[2], results[2]->mig_time);
    const double f_gpu = per_req(*results[2], results[2]->gpu_time);
    std::vector<std::string> mig_row = {trace::Name(spec.tiers[t]),
                                        "MIG time"};
    std::vector<std::string> gpu_row = {trace::Name(spec.tiers[t]),
                                        "GPU time"};
    for (const auto* r : results) {
      mig_row.push_back(metrics::Fmt(per_req(*r, r->mig_time) / f_mig, 2));
      gpu_row.push_back(metrics::Fmt(per_req(*r, r->gpu_time) / f_gpu, 2));
    }
    mig_row.push_back(paper_mig[t]);
    gpu_row.push_back(paper_gpu[t]);
    table.AddRow(mig_row);
    table.AddRow(gpu_row);
  }
  table.Print();
  std::cout << "\nValues are per completed request, normalized to\n"
               "FluidFaaS = 1. Shape to check: MIG time within a few percent\n"
               "across systems; baseline GPU time >= FluidFaaS (they spread\n"
               "less work over more GPU-seconds).\n";
  return 0;
}
