file(REMOVE_RECURSE
  "CMakeFiles/ablation_decentralized.dir/ablation_decentralized.cpp.o"
  "CMakeFiles/ablation_decentralized.dir/ablation_decentralized.cpp.o.d"
  "ablation_decentralized"
  "ablation_decentralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decentralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
