# Empty dependencies file for ablation_decentralized.
# This may be replaced when dependencies are built.
