file(REMOVE_RECURSE
  "CMakeFiles/ablation_partitioner.dir/ablation_partitioner.cpp.o"
  "CMakeFiles/ablation_partitioner.dir/ablation_partitioner.cpp.o.d"
  "ablation_partitioner"
  "ablation_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
