# Empty dependencies file for ablation_partitioner.
# This may be replaced when dependencies are built.
