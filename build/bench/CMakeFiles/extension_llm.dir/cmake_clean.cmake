file(REMOVE_RECURSE
  "CMakeFiles/extension_llm.dir/extension_llm.cpp.o"
  "CMakeFiles/extension_llm.dir/extension_llm.cpp.o.d"
  "extension_llm"
  "extension_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
