# Empty dependencies file for extension_llm.
# This may be replaced when dependencies are built.
