file(REMOVE_RECURSE
  "CMakeFiles/fig04_fragmentation.dir/fig04_fragmentation.cpp.o"
  "CMakeFiles/fig04_fragmentation.dir/fig04_fragmentation.cpp.o.d"
  "fig04_fragmentation"
  "fig04_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
