# Empty compiler generated dependencies file for fig04_fragmentation.
# This may be replaced when dependencies are built.
