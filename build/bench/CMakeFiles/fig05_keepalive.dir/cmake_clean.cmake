file(REMOVE_RECURSE
  "CMakeFiles/fig05_keepalive.dir/fig05_keepalive.cpp.o"
  "CMakeFiles/fig05_keepalive.dir/fig05_keepalive.cpp.o.d"
  "fig05_keepalive"
  "fig05_keepalive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_keepalive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
