# Empty compiler generated dependencies file for fig05_keepalive.
# This may be replaced when dependencies are built.
