file(REMOVE_RECURSE
  "CMakeFiles/fig09_slo_hit_rate.dir/fig09_slo_hit_rate.cpp.o"
  "CMakeFiles/fig09_slo_hit_rate.dir/fig09_slo_hit_rate.cpp.o.d"
  "fig09_slo_hit_rate"
  "fig09_slo_hit_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_slo_hit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
