# Empty dependencies file for fig09_slo_hit_rate.
# This may be replaced when dependencies are built.
