# Empty dependencies file for fig11_13_latency_cdf.
# This may be replaced when dependencies are built.
