file(REMOVE_RECURSE
  "CMakeFiles/fig14_breakdown.dir/fig14_breakdown.cpp.o"
  "CMakeFiles/fig14_breakdown.dir/fig14_breakdown.cpp.o.d"
  "fig14_breakdown"
  "fig14_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
