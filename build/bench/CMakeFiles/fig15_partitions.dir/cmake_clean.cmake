file(REMOVE_RECURSE
  "CMakeFiles/fig15_partitions.dir/fig15_partitions.cpp.o"
  "CMakeFiles/fig15_partitions.dir/fig15_partitions.cpp.o.d"
  "fig15_partitions"
  "fig15_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
