# Empty dependencies file for fig15_partitions.
# This may be replaced when dependencies are built.
