file(REMOVE_RECURSE
  "CMakeFiles/fig16_utilization.dir/fig16_utilization.cpp.o"
  "CMakeFiles/fig16_utilization.dir/fig16_utilization.cpp.o.d"
  "fig16_utilization"
  "fig16_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
