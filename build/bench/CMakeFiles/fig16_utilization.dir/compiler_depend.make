# Empty compiler generated dependencies file for fig16_utilization.
# This may be replaced when dependencies are built.
