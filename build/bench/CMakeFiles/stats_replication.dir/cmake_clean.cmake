file(REMOVE_RECURSE
  "CMakeFiles/stats_replication.dir/stats_replication.cpp.o"
  "CMakeFiles/stats_replication.dir/stats_replication.cpp.o.d"
  "stats_replication"
  "stats_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
