# Empty dependencies file for stats_replication.
# This may be replaced when dependencies are built.
