file(REMOVE_RECURSE
  "CMakeFiles/table05_min_mig.dir/table05_min_mig.cpp.o"
  "CMakeFiles/table05_min_mig.dir/table05_min_mig.cpp.o.d"
  "table05_min_mig"
  "table05_min_mig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_min_mig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
