# Empty dependencies file for table05_min_mig.
# This may be replaced when dependencies are built.
