file(REMOVE_RECURSE
  "CMakeFiles/table06_resource_cost.dir/table06_resource_cost.cpp.o"
  "CMakeFiles/table06_resource_cost.dir/table06_resource_cost.cpp.o.d"
  "table06_resource_cost"
  "table06_resource_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_resource_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
