# Empty compiler generated dependencies file for table06_resource_cost.
# This may be replaced when dependencies are built.
