file(REMOVE_RECURSE
  "CMakeFiles/llm_service.dir/llm_service.cpp.o"
  "CMakeFiles/llm_service.dir/llm_service.cpp.o.d"
  "llm_service"
  "llm_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
