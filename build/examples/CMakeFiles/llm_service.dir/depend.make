# Empty dependencies file for llm_service.
# This may be replaced when dependencies are built.
