# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("gpu")
subdirs("model")
subdirs("metrics")
subdirs("core")
subdirs("platform")
subdirs("trace")
subdirs("baselines")
subdirs("harness")
subdirs("runtime")
