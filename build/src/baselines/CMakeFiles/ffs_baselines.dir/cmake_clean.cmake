file(REMOVE_RECURSE
  "CMakeFiles/ffs_baselines.dir/esg_platform.cpp.o"
  "CMakeFiles/ffs_baselines.dir/esg_platform.cpp.o.d"
  "CMakeFiles/ffs_baselines.dir/esg_search.cpp.o"
  "CMakeFiles/ffs_baselines.dir/esg_search.cpp.o.d"
  "CMakeFiles/ffs_baselines.dir/repartition_platform.cpp.o"
  "CMakeFiles/ffs_baselines.dir/repartition_platform.cpp.o.d"
  "libffs_baselines.a"
  "libffs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
