file(REMOVE_RECURSE
  "libffs_baselines.a"
)
