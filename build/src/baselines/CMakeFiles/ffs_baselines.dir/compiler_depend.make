# Empty compiler generated dependencies file for ffs_baselines.
# This may be replaced when dependencies are built.
