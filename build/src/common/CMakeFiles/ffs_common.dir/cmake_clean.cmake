file(REMOVE_RECURSE
  "CMakeFiles/ffs_common.dir/logging.cpp.o"
  "CMakeFiles/ffs_common.dir/logging.cpp.o.d"
  "CMakeFiles/ffs_common.dir/rng.cpp.o"
  "CMakeFiles/ffs_common.dir/rng.cpp.o.d"
  "CMakeFiles/ffs_common.dir/stats.cpp.o"
  "CMakeFiles/ffs_common.dir/stats.cpp.o.d"
  "libffs_common.a"
  "libffs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
