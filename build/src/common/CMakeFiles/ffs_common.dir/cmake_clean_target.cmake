file(REMOVE_RECURSE
  "libffs_common.a"
)
