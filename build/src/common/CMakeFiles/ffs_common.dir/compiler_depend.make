# Empty compiler generated dependencies file for ffs_common.
# This may be replaced when dependencies are built.
