file(REMOVE_RECURSE
  "CMakeFiles/ffs_core.dir/ffs_distributed.cpp.o"
  "CMakeFiles/ffs_core.dir/ffs_distributed.cpp.o.d"
  "CMakeFiles/ffs_core.dir/ffs_function.cpp.o"
  "CMakeFiles/ffs_core.dir/ffs_function.cpp.o.d"
  "CMakeFiles/ffs_core.dir/ffs_platform.cpp.o"
  "CMakeFiles/ffs_core.dir/ffs_platform.cpp.o.d"
  "CMakeFiles/ffs_core.dir/partitioner.cpp.o"
  "CMakeFiles/ffs_core.dir/partitioner.cpp.o.d"
  "CMakeFiles/ffs_core.dir/pipeline.cpp.o"
  "CMakeFiles/ffs_core.dir/pipeline.cpp.o.d"
  "libffs_core.a"
  "libffs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
