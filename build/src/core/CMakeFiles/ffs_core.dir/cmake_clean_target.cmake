file(REMOVE_RECURSE
  "libffs_core.a"
)
