# Empty compiler generated dependencies file for ffs_core.
# This may be replaced when dependencies are built.
