
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cluster.cpp" "src/gpu/CMakeFiles/ffs_gpu.dir/cluster.cpp.o" "gcc" "src/gpu/CMakeFiles/ffs_gpu.dir/cluster.cpp.o.d"
  "/root/repo/src/gpu/mig_partition.cpp" "src/gpu/CMakeFiles/ffs_gpu.dir/mig_partition.cpp.o" "gcc" "src/gpu/CMakeFiles/ffs_gpu.dir/mig_partition.cpp.o.d"
  "/root/repo/src/gpu/mig_profile.cpp" "src/gpu/CMakeFiles/ffs_gpu.dir/mig_profile.cpp.o" "gcc" "src/gpu/CMakeFiles/ffs_gpu.dir/mig_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ffs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
