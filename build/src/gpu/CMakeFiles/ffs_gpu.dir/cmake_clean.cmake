file(REMOVE_RECURSE
  "CMakeFiles/ffs_gpu.dir/cluster.cpp.o"
  "CMakeFiles/ffs_gpu.dir/cluster.cpp.o.d"
  "CMakeFiles/ffs_gpu.dir/mig_partition.cpp.o"
  "CMakeFiles/ffs_gpu.dir/mig_partition.cpp.o.d"
  "CMakeFiles/ffs_gpu.dir/mig_profile.cpp.o"
  "CMakeFiles/ffs_gpu.dir/mig_profile.cpp.o.d"
  "libffs_gpu.a"
  "libffs_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
