file(REMOVE_RECURSE
  "libffs_gpu.a"
)
