# Empty compiler generated dependencies file for ffs_gpu.
# This may be replaced when dependencies are built.
