file(REMOVE_RECURSE
  "CMakeFiles/ffs_harness.dir/experiment.cpp.o"
  "CMakeFiles/ffs_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/ffs_harness.dir/json_report.cpp.o"
  "CMakeFiles/ffs_harness.dir/json_report.cpp.o.d"
  "libffs_harness.a"
  "libffs_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
