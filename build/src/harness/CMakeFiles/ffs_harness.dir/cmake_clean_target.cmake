file(REMOVE_RECURSE
  "libffs_harness.a"
)
