# Empty compiler generated dependencies file for ffs_harness.
# This may be replaced when dependencies are built.
