
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/recorder.cpp" "src/metrics/CMakeFiles/ffs_metrics.dir/recorder.cpp.o" "gcc" "src/metrics/CMakeFiles/ffs_metrics.dir/recorder.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/metrics/CMakeFiles/ffs_metrics.dir/report.cpp.o" "gcc" "src/metrics/CMakeFiles/ffs_metrics.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ffs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ffs_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
