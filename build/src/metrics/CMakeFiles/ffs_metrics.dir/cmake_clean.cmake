file(REMOVE_RECURSE
  "CMakeFiles/ffs_metrics.dir/recorder.cpp.o"
  "CMakeFiles/ffs_metrics.dir/recorder.cpp.o.d"
  "CMakeFiles/ffs_metrics.dir/report.cpp.o"
  "CMakeFiles/ffs_metrics.dir/report.cpp.o.d"
  "libffs_metrics.a"
  "libffs_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
