file(REMOVE_RECURSE
  "libffs_metrics.a"
)
