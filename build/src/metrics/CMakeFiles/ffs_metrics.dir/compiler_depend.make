# Empty compiler generated dependencies file for ffs_metrics.
# This may be replaced when dependencies are built.
