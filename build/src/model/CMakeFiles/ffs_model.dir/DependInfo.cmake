
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/app.cpp" "src/model/CMakeFiles/ffs_model.dir/app.cpp.o" "gcc" "src/model/CMakeFiles/ffs_model.dir/app.cpp.o.d"
  "/root/repo/src/model/component.cpp" "src/model/CMakeFiles/ffs_model.dir/component.cpp.o" "gcc" "src/model/CMakeFiles/ffs_model.dir/component.cpp.o.d"
  "/root/repo/src/model/llm.cpp" "src/model/CMakeFiles/ffs_model.dir/llm.cpp.o" "gcc" "src/model/CMakeFiles/ffs_model.dir/llm.cpp.o.d"
  "/root/repo/src/model/synthetic.cpp" "src/model/CMakeFiles/ffs_model.dir/synthetic.cpp.o" "gcc" "src/model/CMakeFiles/ffs_model.dir/synthetic.cpp.o.d"
  "/root/repo/src/model/zoo.cpp" "src/model/CMakeFiles/ffs_model.dir/zoo.cpp.o" "gcc" "src/model/CMakeFiles/ffs_model.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ffs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
