file(REMOVE_RECURSE
  "CMakeFiles/ffs_model.dir/app.cpp.o"
  "CMakeFiles/ffs_model.dir/app.cpp.o.d"
  "CMakeFiles/ffs_model.dir/component.cpp.o"
  "CMakeFiles/ffs_model.dir/component.cpp.o.d"
  "CMakeFiles/ffs_model.dir/llm.cpp.o"
  "CMakeFiles/ffs_model.dir/llm.cpp.o.d"
  "CMakeFiles/ffs_model.dir/synthetic.cpp.o"
  "CMakeFiles/ffs_model.dir/synthetic.cpp.o.d"
  "CMakeFiles/ffs_model.dir/zoo.cpp.o"
  "CMakeFiles/ffs_model.dir/zoo.cpp.o.d"
  "libffs_model.a"
  "libffs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
