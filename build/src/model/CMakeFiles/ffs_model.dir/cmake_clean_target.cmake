file(REMOVE_RECURSE
  "libffs_model.a"
)
