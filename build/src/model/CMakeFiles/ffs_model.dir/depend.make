# Empty dependencies file for ffs_model.
# This may be replaced when dependencies are built.
