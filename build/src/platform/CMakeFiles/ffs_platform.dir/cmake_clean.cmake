file(REMOVE_RECURSE
  "CMakeFiles/ffs_platform.dir/function.cpp.o"
  "CMakeFiles/ffs_platform.dir/function.cpp.o.d"
  "CMakeFiles/ffs_platform.dir/instance.cpp.o"
  "CMakeFiles/ffs_platform.dir/instance.cpp.o.d"
  "CMakeFiles/ffs_platform.dir/platform.cpp.o"
  "CMakeFiles/ffs_platform.dir/platform.cpp.o.d"
  "libffs_platform.a"
  "libffs_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
