file(REMOVE_RECURSE
  "libffs_platform.a"
)
