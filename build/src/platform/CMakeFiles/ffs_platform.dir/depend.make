# Empty dependencies file for ffs_platform.
# This may be replaced when dependencies are built.
