file(REMOVE_RECURSE
  "CMakeFiles/ffs_runtime.dir/pipeline_runtime.cpp.o"
  "CMakeFiles/ffs_runtime.dir/pipeline_runtime.cpp.o.d"
  "CMakeFiles/ffs_runtime.dir/plan_executor.cpp.o"
  "CMakeFiles/ffs_runtime.dir/plan_executor.cpp.o.d"
  "CMakeFiles/ffs_runtime.dir/spsc_ring.cpp.o"
  "CMakeFiles/ffs_runtime.dir/spsc_ring.cpp.o.d"
  "libffs_runtime.a"
  "libffs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
