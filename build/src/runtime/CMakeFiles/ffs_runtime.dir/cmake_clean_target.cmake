file(REMOVE_RECURSE
  "libffs_runtime.a"
)
