# Empty compiler generated dependencies file for ffs_runtime.
# This may be replaced when dependencies are built.
