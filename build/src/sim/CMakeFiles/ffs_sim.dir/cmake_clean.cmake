file(REMOVE_RECURSE
  "CMakeFiles/ffs_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ffs_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ffs_sim.dir/simulator.cpp.o"
  "CMakeFiles/ffs_sim.dir/simulator.cpp.o.d"
  "libffs_sim.a"
  "libffs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
