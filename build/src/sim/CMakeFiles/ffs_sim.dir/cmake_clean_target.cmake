file(REMOVE_RECURSE
  "libffs_sim.a"
)
