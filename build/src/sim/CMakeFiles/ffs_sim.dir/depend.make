# Empty dependencies file for ffs_sim.
# This may be replaced when dependencies are built.
