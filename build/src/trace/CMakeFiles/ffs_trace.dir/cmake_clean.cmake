file(REMOVE_RECURSE
  "CMakeFiles/ffs_trace.dir/azure_loader.cpp.o"
  "CMakeFiles/ffs_trace.dir/azure_loader.cpp.o.d"
  "CMakeFiles/ffs_trace.dir/trace.cpp.o"
  "CMakeFiles/ffs_trace.dir/trace.cpp.o.d"
  "CMakeFiles/ffs_trace.dir/workload.cpp.o"
  "CMakeFiles/ffs_trace.dir/workload.cpp.o.d"
  "libffs_trace.a"
  "libffs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
