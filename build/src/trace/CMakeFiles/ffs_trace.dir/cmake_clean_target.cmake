file(REMOVE_RECURSE
  "libffs_trace.a"
)
