# Empty compiler generated dependencies file for ffs_trace.
# This may be replaced when dependencies are built.
