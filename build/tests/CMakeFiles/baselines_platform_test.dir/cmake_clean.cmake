file(REMOVE_RECURSE
  "CMakeFiles/baselines_platform_test.dir/baselines_platform_test.cc.o"
  "CMakeFiles/baselines_platform_test.dir/baselines_platform_test.cc.o.d"
  "baselines_platform_test"
  "baselines_platform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
