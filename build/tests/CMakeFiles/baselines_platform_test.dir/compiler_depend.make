# Empty compiler generated dependencies file for baselines_platform_test.
# This may be replaced when dependencies are built.
