file(REMOVE_RECURSE
  "CMakeFiles/baselines_repartition_test.dir/baselines_repartition_test.cc.o"
  "CMakeFiles/baselines_repartition_test.dir/baselines_repartition_test.cc.o.d"
  "baselines_repartition_test"
  "baselines_repartition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_repartition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
