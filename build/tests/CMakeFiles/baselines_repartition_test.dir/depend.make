# Empty dependencies file for baselines_repartition_test.
# This may be replaced when dependencies are built.
