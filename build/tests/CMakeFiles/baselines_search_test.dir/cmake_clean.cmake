file(REMOVE_RECURSE
  "CMakeFiles/baselines_search_test.dir/baselines_search_test.cc.o"
  "CMakeFiles/baselines_search_test.dir/baselines_search_test.cc.o.d"
  "baselines_search_test"
  "baselines_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
