# Empty compiler generated dependencies file for baselines_search_test.
# This may be replaced when dependencies are built.
