file(REMOVE_RECURSE
  "CMakeFiles/core_distributed_test.dir/core_distributed_test.cc.o"
  "CMakeFiles/core_distributed_test.dir/core_distributed_test.cc.o.d"
  "core_distributed_test"
  "core_distributed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
