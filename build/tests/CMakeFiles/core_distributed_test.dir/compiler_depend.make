# Empty compiler generated dependencies file for core_distributed_test.
# This may be replaced when dependencies are built.
