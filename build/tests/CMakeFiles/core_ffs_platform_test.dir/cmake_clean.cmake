file(REMOVE_RECURSE
  "CMakeFiles/core_ffs_platform_test.dir/core_ffs_platform_test.cc.o"
  "CMakeFiles/core_ffs_platform_test.dir/core_ffs_platform_test.cc.o.d"
  "core_ffs_platform_test"
  "core_ffs_platform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ffs_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
