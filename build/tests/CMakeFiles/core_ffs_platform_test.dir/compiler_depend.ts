# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_ffs_platform_test.
