# Empty dependencies file for core_ffs_platform_test.
# This may be replaced when dependencies are built.
