file(REMOVE_RECURSE
  "CMakeFiles/core_function_builder_test.dir/core_function_builder_test.cc.o"
  "CMakeFiles/core_function_builder_test.dir/core_function_builder_test.cc.o.d"
  "core_function_builder_test"
  "core_function_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_function_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
