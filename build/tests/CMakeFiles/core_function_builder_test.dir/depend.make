# Empty dependencies file for core_function_builder_test.
# This may be replaced when dependencies are built.
