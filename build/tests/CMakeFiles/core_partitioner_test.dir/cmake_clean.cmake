file(REMOVE_RECURSE
  "CMakeFiles/core_partitioner_test.dir/core_partitioner_test.cc.o"
  "CMakeFiles/core_partitioner_test.dir/core_partitioner_test.cc.o.d"
  "core_partitioner_test"
  "core_partitioner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
