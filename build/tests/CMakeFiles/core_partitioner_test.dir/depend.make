# Empty dependencies file for core_partitioner_test.
# This may be replaced when dependencies are built.
