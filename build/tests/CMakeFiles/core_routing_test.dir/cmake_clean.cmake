file(REMOVE_RECURSE
  "CMakeFiles/core_routing_test.dir/core_routing_test.cc.o"
  "CMakeFiles/core_routing_test.dir/core_routing_test.cc.o.d"
  "core_routing_test"
  "core_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
