# Empty compiler generated dependencies file for core_routing_test.
# This may be replaced when dependencies are built.
