file(REMOVE_RECURSE
  "CMakeFiles/fuzz_scenarios_test.dir/fuzz_scenarios_test.cc.o"
  "CMakeFiles/fuzz_scenarios_test.dir/fuzz_scenarios_test.cc.o.d"
  "fuzz_scenarios_test"
  "fuzz_scenarios_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
