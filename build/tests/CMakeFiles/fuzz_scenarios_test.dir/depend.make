# Empty dependencies file for fuzz_scenarios_test.
# This may be replaced when dependencies are built.
