file(REMOVE_RECURSE
  "CMakeFiles/gpu_cluster_test.dir/gpu_cluster_test.cc.o"
  "CMakeFiles/gpu_cluster_test.dir/gpu_cluster_test.cc.o.d"
  "gpu_cluster_test"
  "gpu_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
