# Empty dependencies file for gpu_cluster_test.
# This may be replaced when dependencies are built.
