file(REMOVE_RECURSE
  "CMakeFiles/gpu_partition_test.dir/gpu_partition_test.cc.o"
  "CMakeFiles/gpu_partition_test.dir/gpu_partition_test.cc.o.d"
  "gpu_partition_test"
  "gpu_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
