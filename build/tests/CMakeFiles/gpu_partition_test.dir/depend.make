# Empty dependencies file for gpu_partition_test.
# This may be replaced when dependencies are built.
