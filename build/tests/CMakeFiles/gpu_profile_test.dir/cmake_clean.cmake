file(REMOVE_RECURSE
  "CMakeFiles/gpu_profile_test.dir/gpu_profile_test.cc.o"
  "CMakeFiles/gpu_profile_test.dir/gpu_profile_test.cc.o.d"
  "gpu_profile_test"
  "gpu_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
