# Empty dependencies file for gpu_profile_test.
# This may be replaced when dependencies are built.
