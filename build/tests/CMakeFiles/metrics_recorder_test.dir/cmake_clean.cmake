file(REMOVE_RECURSE
  "CMakeFiles/metrics_recorder_test.dir/metrics_recorder_test.cc.o"
  "CMakeFiles/metrics_recorder_test.dir/metrics_recorder_test.cc.o.d"
  "metrics_recorder_test"
  "metrics_recorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_recorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
