# Empty compiler generated dependencies file for metrics_recorder_test.
# This may be replaced when dependencies are built.
