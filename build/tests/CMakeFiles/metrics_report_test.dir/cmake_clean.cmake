file(REMOVE_RECURSE
  "CMakeFiles/metrics_report_test.dir/metrics_report_test.cc.o"
  "CMakeFiles/metrics_report_test.dir/metrics_report_test.cc.o.d"
  "metrics_report_test"
  "metrics_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
