# Empty dependencies file for metrics_report_test.
# This may be replaced when dependencies are built.
