file(REMOVE_RECURSE
  "CMakeFiles/model_app_test.dir/model_app_test.cc.o"
  "CMakeFiles/model_app_test.dir/model_app_test.cc.o.d"
  "model_app_test"
  "model_app_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
