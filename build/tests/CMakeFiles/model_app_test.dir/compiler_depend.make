# Empty compiler generated dependencies file for model_app_test.
# This may be replaced when dependencies are built.
