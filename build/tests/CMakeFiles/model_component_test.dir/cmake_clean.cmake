file(REMOVE_RECURSE
  "CMakeFiles/model_component_test.dir/model_component_test.cc.o"
  "CMakeFiles/model_component_test.dir/model_component_test.cc.o.d"
  "model_component_test"
  "model_component_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_component_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
