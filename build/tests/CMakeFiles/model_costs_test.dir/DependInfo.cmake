
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model_costs_test.cc" "tests/CMakeFiles/model_costs_test.dir/model_costs_test.cc.o" "gcc" "tests/CMakeFiles/model_costs_test.dir/model_costs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ffs_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ffs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ffs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ffs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/ffs_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ffs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ffs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ffs_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ffs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ffs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ffs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
