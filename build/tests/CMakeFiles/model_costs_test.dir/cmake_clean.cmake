file(REMOVE_RECURSE
  "CMakeFiles/model_costs_test.dir/model_costs_test.cc.o"
  "CMakeFiles/model_costs_test.dir/model_costs_test.cc.o.d"
  "model_costs_test"
  "model_costs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_costs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
