file(REMOVE_RECURSE
  "CMakeFiles/model_llm_test.dir/model_llm_test.cc.o"
  "CMakeFiles/model_llm_test.dir/model_llm_test.cc.o.d"
  "model_llm_test"
  "model_llm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_llm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
