file(REMOVE_RECURSE
  "CMakeFiles/model_synthetic_test.dir/model_synthetic_test.cc.o"
  "CMakeFiles/model_synthetic_test.dir/model_synthetic_test.cc.o.d"
  "model_synthetic_test"
  "model_synthetic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
