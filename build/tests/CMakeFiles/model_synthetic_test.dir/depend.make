# Empty dependencies file for model_synthetic_test.
# This may be replaced when dependencies are built.
