file(REMOVE_RECURSE
  "CMakeFiles/platform_batching_test.dir/platform_batching_test.cc.o"
  "CMakeFiles/platform_batching_test.dir/platform_batching_test.cc.o.d"
  "platform_batching_test"
  "platform_batching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_batching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
