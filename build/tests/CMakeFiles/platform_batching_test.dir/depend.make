# Empty dependencies file for platform_batching_test.
# This may be replaced when dependencies are built.
