file(REMOVE_RECURSE
  "CMakeFiles/platform_function_test.dir/platform_function_test.cc.o"
  "CMakeFiles/platform_function_test.dir/platform_function_test.cc.o.d"
  "platform_function_test"
  "platform_function_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
