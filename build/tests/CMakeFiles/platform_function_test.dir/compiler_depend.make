# Empty compiler generated dependencies file for platform_function_test.
# This may be replaced when dependencies are built.
