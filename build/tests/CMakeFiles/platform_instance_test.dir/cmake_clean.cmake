file(REMOVE_RECURSE
  "CMakeFiles/platform_instance_test.dir/platform_instance_test.cc.o"
  "CMakeFiles/platform_instance_test.dir/platform_instance_test.cc.o.d"
  "platform_instance_test"
  "platform_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
