# Empty dependencies file for platform_instance_test.
# This may be replaced when dependencies are built.
