file(REMOVE_RECURSE
  "CMakeFiles/platform_platform_test.dir/platform_platform_test.cc.o"
  "CMakeFiles/platform_platform_test.dir/platform_platform_test.cc.o.d"
  "platform_platform_test"
  "platform_platform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
