file(REMOVE_RECURSE
  "CMakeFiles/property_invariants_test.dir/property_invariants_test.cc.o"
  "CMakeFiles/property_invariants_test.dir/property_invariants_test.cc.o.d"
  "property_invariants_test"
  "property_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
