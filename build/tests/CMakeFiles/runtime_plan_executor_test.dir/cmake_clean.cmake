file(REMOVE_RECURSE
  "CMakeFiles/runtime_plan_executor_test.dir/runtime_plan_executor_test.cc.o"
  "CMakeFiles/runtime_plan_executor_test.dir/runtime_plan_executor_test.cc.o.d"
  "runtime_plan_executor_test"
  "runtime_plan_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_plan_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
