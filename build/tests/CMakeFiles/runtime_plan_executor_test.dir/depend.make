# Empty dependencies file for runtime_plan_executor_test.
# This may be replaced when dependencies are built.
