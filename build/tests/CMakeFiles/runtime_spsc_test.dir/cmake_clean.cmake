file(REMOVE_RECURSE
  "CMakeFiles/runtime_spsc_test.dir/runtime_spsc_test.cc.o"
  "CMakeFiles/runtime_spsc_test.dir/runtime_spsc_test.cc.o.d"
  "runtime_spsc_test"
  "runtime_spsc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_spsc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
