# Empty dependencies file for runtime_spsc_test.
# This may be replaced when dependencies are built.
