file(REMOVE_RECURSE
  "CMakeFiles/trace_azure_loader_test.dir/trace_azure_loader_test.cc.o"
  "CMakeFiles/trace_azure_loader_test.dir/trace_azure_loader_test.cc.o.d"
  "trace_azure_loader_test"
  "trace_azure_loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_azure_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
