# Empty dependencies file for trace_azure_loader_test.
# This may be replaced when dependencies are built.
