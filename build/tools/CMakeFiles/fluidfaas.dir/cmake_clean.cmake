file(REMOVE_RECURSE
  "CMakeFiles/fluidfaas.dir/fluidfaas_cli.cpp.o"
  "CMakeFiles/fluidfaas.dir/fluidfaas_cli.cpp.o.d"
  "fluidfaas"
  "fluidfaas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluidfaas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
