# Empty compiler generated dependencies file for fluidfaas.
# This may be replaced when dependencies are built.
