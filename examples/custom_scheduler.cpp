// Extending the platform: write your own scheduler by subclassing
// platform::Platform — here, a deliberately naive random-placement policy —
// and race it against FluidFaaS on the same trace. This is the template for
// experimenting with new scheduling ideas on the simulator.
//
//   $ ./custom_scheduler
#include <iostream>

#include "common/rng.h"
#include "core/ffs_platform.h"
#include "core/pipeline.h"
#include "metrics/report.h"
#include "model/zoo.h"
#include "trace/workload.h"

using namespace fluidfaas;

namespace {

/// A strawman: place every new instance on a *random* free slice that fits
/// (monolithic only), route requests to a random admitting instance, never
/// scale down. Everything else — loading, keep-alive, accounting — comes
/// from the base class.
class RandomScheduler : public platform::Platform {
 public:
  RandomScheduler(sim::Simulator& sim, gpu::Cluster& cluster,
                  metrics::Recorder& recorder,
                  std::vector<platform::FunctionSpec> functions,
                  platform::PlatformConfig config)
      : Platform(sim, cluster, recorder, std::move(functions), config),
        rng_(7) {}

  std::string name() const override { return "RandomScheduler"; }

 protected:
  bool Route(RequestId rid, FunctionId fn) override {
    auto insts = InstancesOf(fn);
    std::erase_if(insts, [](platform::Instance* i) { return !i->CanAdmit(); });
    if (insts.empty()) {
      auto free = cluster().FreeSlices();
      std::erase_if(free, [&](SliceId sid) {
        return cluster().slice(sid).memory() < function(fn).total_memory;
      });
      if (free.empty()) return false;
      const SliceId pick = free[static_cast<std::size_t>(rng_.UniformInt(
          0, static_cast<std::int64_t>(free.size()) - 1))];
      auto plan = core::MonolithicPlanOnSlice(function(fn).dag, cluster(),
                                              pick);
      insts.push_back(LaunchInstance(function(fn), std::move(*plan),
                                     IsWarm(fn)));
    }
    auto* inst = insts[static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(insts.size()) - 1))];
    const auto& rec = recorder().record(rid);
    if (!inst->AdmitWithinBound(simulator().Now(), rec.deadline,
                                function(fn).slo)) {
      return false;
    }
    inst->Enqueue(rid, JitterOf(rid));
    return true;
  }

  void AutoscaleTick() override {
    // Scale up randomly when the pending set grows; never scale down.
    if (PendingCount() == 0) return;
    for (const auto& spec : functions()) {
      (void)spec;
    }
  }

 private:
  Rng rng_;
};

}  // namespace

int main() {
  std::cout << "Racing a custom scheduler against FluidFaaS on one trace\n\n";
  metrics::Table table(
      {"scheduler", "completed", "SLO hit", "mean queue (ms)"});

  for (int which = 0; which < 2; ++which) {
    sim::Simulator sim;
    auto cluster = gpu::Cluster::Uniform(1, 4, gpu::DefaultPartition());
    metrics::Recorder recorder(cluster);
    trace::WorkloadParams wp;
    wp.duration = Seconds(90);
    wp.load_factor = 0.3;
    trace::Workload workload =
        trace::MakeWorkload(trace::WorkloadTier::kLight, cluster, wp);

    std::unique_ptr<platform::Platform> plat;
    if (which == 0) {
      plat = std::make_unique<RandomScheduler>(
          sim, cluster, recorder, workload.functions,
          platform::PlatformConfig{});
    } else {
      plat = std::make_unique<core::FluidFaasPlatform>(
          sim, cluster, recorder, workload.functions,
          platform::PlatformConfig{});
    }
    plat->Start();
    for (const auto& inv : workload.trace) {
      sim.At(inv.time, [&plat, fn = inv.fn] { plat->Submit(fn); });
    }
    sim.RunUntil(Seconds(90) + Minutes(5));
    plat->Stop();
    recorder.Close(sim.Now());

    const auto bd = recorder.MeanBreakdown();
    table.AddRow({plat->name(),
                  std::to_string(recorder.completed_requests()) + "/" +
                      std::to_string(recorder.total_requests()),
                  metrics::FmtPercent(recorder.SloHitRate()),
                  metrics::Fmt(bd.queue / 1000.0, 1)});
  }
  table.Print();
  std::cout << "\nplatform::Platform supplies instances, loading, warm\n"
               "tracking and accounting; a scheduler only implements Route()"
               "\nand AutoscaleTick(). See src/core/ffs_platform.cpp for the"
               "\nfull FluidFaaS policy.\n";
  return 0;
}
