// Extending the platform: write your own scheduler as a pair of policies —
// here, a deliberately naive random-placement policy — register it, and
// race it against FluidFaaS on the same trace. This is the template for
// experimenting with new scheduling ideas on the simulator.
//
// A scheduler is a platform::PolicyBundle: a RoutingPolicy (where does this
// request go?), a ScalingPolicy (what changes at each autoscale tick?), and
// optionally a KeepAlivePolicy. platform::PlatformCore supplies everything
// else — instances, loading, warm tracking, the pending set — and publishes
// every observable step on the simulator's EventBus, where the
// metrics::Recorder picks it up.
//
//   $ ./custom_scheduler
#include <iostream>
#include <memory>

#include "common/rng.h"
#include "core/ffs_platform.h"
#include "core/pipeline.h"
#include "metrics/report.h"
#include "model/zoo.h"
#include "platform/placement.h"
#include "platform/registry.h"
#include "trace/workload.h"

using namespace fluidfaas;

namespace {

/// A strawman router: place every new instance on a *random* free slice
/// that fits (monolithic only), route requests to a random admitting
/// instance.
class RandomRouting final : public platform::RoutingPolicy {
 public:
  RandomRouting() : rng_(7) {}

  bool Route(platform::PlatformCore& core, RequestId rid,
             FunctionId fn) override {
    auto insts = core.InstancesOf(fn);
    std::erase_if(insts, [](platform::Instance* i) { return !i->CanAdmit(); });
    if (insts.empty()) {
      auto free = core.cluster().FreeSlices();
      std::erase_if(free, [&](SliceId sid) {
        return core.cluster().slice(sid).memory() <
               core.function(fn).total_memory;
      });
      if (free.empty()) return false;
      const SliceId pick = free[static_cast<std::size_t>(rng_.UniformInt(
          0, static_cast<std::int64_t>(free.size()) - 1))];
      auto plan = core::MonolithicPlanOnSlice(core.function(fn).dag,
                                              core.cluster(), pick);
      const platform::CommitResult result = core.Commit(
          platform::SpawnPlan(fn, std::move(*plan), core.IsWarm(fn)));
      if (!result.ok()) return false;
      insts.push_back(result.spawned.front());
    }
    auto* inst = insts[static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(insts.size()) - 1))];
    if (!inst->AdmitWithinBound(core.simulator().Now(), core.DeadlineOf(rid),
                                core.function(fn).slo)) {
      return false;
    }
    inst->Enqueue(rid, core.JitterOf(rid));
    return true;
  }

 private:
  Rng rng_;
};

/// Never scales: whatever RandomRouting launched is all there is.
class NoScaling final : public platform::ScalingPolicy {
 public:
  void Tick(platform::PlatformCore&) override {}
};

}  // namespace

int main() {
  std::cout << "Racing a custom scheduler against FluidFaaS on one trace\n\n";

  // Register the custom bundle next to the built-ins, exactly the way the
  // harness resolves schedulers.
  core::RegisterFluidFaasSchedulers();
  platform::RegisterScheduler("RandomScheduler", [] {
    platform::PolicyBundle b;
    b.routing = std::make_unique<RandomRouting>();
    b.scaling = std::make_unique<NoScaling>();
    return b;
  });

  metrics::Table table(
      {"scheduler", "completed", "SLO hit", "mean queue (ms)"});

  for (const char* name : {"RandomScheduler", "FluidFaaS"}) {
    sim::Simulator sim;
    auto cluster = gpu::Cluster::Uniform(1, 4, gpu::DefaultPartition());
    metrics::Recorder recorder(cluster);
    recorder.SubscribeTo(sim.bus());
    trace::WorkloadParams wp;
    wp.duration = Seconds(90);
    wp.load_factor = 0.3;
    trace::Workload workload =
        trace::MakeWorkload(trace::WorkloadTier::kLight, cluster, wp);

    platform::PlatformCore plat(sim, cluster, workload.functions,
                                platform::PlatformConfig{},
                                platform::MakeSchedulerBundle(name));
    plat.Start();
    for (const auto& inv : workload.trace) {
      sim.At(inv.time, [&plat, fn = inv.fn] { plat.Submit(fn); });
    }
    sim.RunUntil(Seconds(90) + Minutes(5));
    plat.Stop();
    recorder.Close(sim.Now());

    const auto bd = recorder.MeanBreakdown();
    table.AddRow({plat.name(),
                  std::to_string(recorder.completed_requests()) + "/" +
                      std::to_string(recorder.total_requests()),
                  metrics::FmtPercent(recorder.SloHitRate()),
                  metrics::Fmt(bd.queue / 1000.0, 1)});
  }
  table.Print();
  std::cout << "\nplatform::PlatformCore supplies instances, loading, warm\n"
               "tracking and event publication; a scheduler is just a\n"
               "RoutingPolicy + ScalingPolicy bundle in the registry. See\n"
               "src/core/ffs_platform.cpp for the full FluidFaaS policy.\n";
  return 0;
}
