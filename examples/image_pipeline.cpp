// Scenario example: the paper's Fig. 1 situation, end to end. A fragmented
// cluster has no slice large enough for a new image-classification
// instance; a monolithic platform must queue, while FluidFaaS builds a
// pipeline across the fragments and serves the burst.
//
//   $ ./image_pipeline
#include <iostream>

#include "baselines/esg_platform.h"
#include "core/ffs_platform.h"
#include "metrics/report.h"
#include "model/zoo.h"

using namespace fluidfaas;

namespace {

struct Outcome {
  std::string name;
  std::size_t completed = 0;
  double slo_hit = 0.0;
  double p95_s = 0.0;
};

template <typename PlatformT>
Outcome Run(const char* name) {
  sim::Simulator sim;
  // One node, two GPUs, default partition (Fig. 1's layout class).
  auto cluster = gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition());
  metrics::Recorder recorder(cluster);

  // Large image-classification variant: needs a 3g/4g monolithically.
  std::vector<platform::FunctionSpec> fns;
  fns.push_back(platform::MakeFunctionSpec(
      FunctionId(0), 0, model::Variant::kLarge,
      model::BuildApp(0, model::Variant::kLarge), 1.5));

  platform::PlatformConfig config;
  PlatformT platform(sim, cluster, recorder, std::move(fns), config);

  // Fragment the cluster first: both 4g slices are held by other tenants
  // ("instance A/B/C" of Fig. 1). Only 2g and 1g fragments remain.
  for (SliceId sid : cluster.AllSlices()) {
    if (cluster.slice(sid).profile() == gpu::MigProfile::k4g40gb) {
      cluster.Bind(sid, InstanceId(999));
      recorder.SliceBound(sid, 0);
    }
  }

  platform.Start();
  // 100 seconds of traffic at ~1.2 rps — "instance D"'s load, below what
  // one pipeline over the fragments can sustain.
  for (int i = 0; i < 120; ++i) {
    sim.At(Millis(833) * i, [&] { platform.Submit(FunctionId(0)); });
  }
  sim.RunUntil(Seconds(240));
  platform.Stop();
  recorder.Close(sim.Now());

  Outcome o;
  o.name = name;
  o.completed = recorder.completed_requests();
  o.slo_hit = recorder.SloHitRate();
  auto lats = recorder.LatenciesSeconds();
  o.p95_s = lats.empty() ? 0.0 : Percentile(lats, 0.95);
  return o;
}

}  // namespace

int main() {
  std::cout
      << "Fig. 1 scenario: both 4g.40gb slices are taken by other tenants;\n"
         "a large image-classification function (monolithic minimum "
         "3g.40gb)\nmust be served from the 2g/1g fragments.\n\n";
  const Outcome esg = Run<baselines::EsgPlatform>("ESG (monolithic)");
  const Outcome fluid = Run<core::FluidFaasPlatform>("FluidFaaS");

  metrics::Table table(
      {"platform", "completed", "SLO hit rate", "P95 latency"});
  for (const Outcome& o : {esg, fluid}) {
    table.AddRow({o.name, std::to_string(o.completed),
                  metrics::FmtPercent(o.slo_hit),
                  o.completed ? metrics::Fmt(o.p95_s, 2) + "s" : "-"});
  }
  table.Print();
  std::cout << "\nThe monolithic baseline can only wait for a large slice;\n"
               "FluidFaaS pipelines across the idle fragments.\n";
  return 0;
}
