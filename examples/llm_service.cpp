// LLM serving on MIG fragments (paper §5.2.3's extension): a 34B-parameter
// model (~80 GB at fp16 with KV cache) does not fit ANY MIG profile as a
// monolith — yet FluidFaaS serves it on a default-partitioned cluster by
// mapping its transformer layer groups onto 2g.20gb fragments.
//
//   $ ./llm_service
#include <iostream>

#include "core/ffs_platform.h"
#include "core/partitioner.h"
#include "metrics/report.h"
#include "model/llm.h"

using namespace fluidfaas;

namespace {

void Describe(model::LlmSize size) {
  const auto dag = model::BuildLlmApp(size);
  const auto mono = core::MinMonolithicProfile(dag);
  const auto piped = core::MinPipelinedProfile(dag, 8);
  std::cout << "  " << model::Name(size) << ": "
            << metrics::Fmt(static_cast<double>(dag.TotalMemory()) / kGiB, 1)
            << " GB across " << dag.size() << " components; monolithic min "
            << (mono ? gpu::Name(*mono) : "NONE (exceeds 7g.80gb)")
            << ", pipelined min " << (piped ? gpu::Name(*piped) : "NONE")
            << "\n";
}

}  // namespace

int main() {
  std::cout << "LLM services as FluidFaaS functions:\n";
  for (auto size :
       {model::LlmSize::k7B, model::LlmSize::k13B, model::LlmSize::k34B}) {
    Describe(size);
  }

  // Serve the 34B model on one node of default-partitioned GPUs.
  sim::Simulator sim;
  auto cluster = gpu::Cluster::Uniform(1, 4, gpu::DefaultPartition());
  metrics::Recorder recorder(cluster);
  std::vector<platform::FunctionSpec> fns;
  fns.push_back(platform::MakeFunctionSpec(
      FunctionId(0), /*app_index=*/100, model::Variant::kLarge,
      model::BuildLlmApp(model::LlmSize::k34B), /*slo_scale=*/2.0,
      /*max_stages=*/6));
  const auto& spec = fns[0];
  std::cout << "\nSLO for " << spec.name << ": "
            << metrics::Fmt(ToSeconds(spec.slo), 2) << "s (2x solo time on "
            << "its minimum slice class)\n";

  platform::PlatformConfig config;
  config.max_stages = 6;
  core::FluidFaasPlatform platform(sim, cluster, recorder, std::move(fns),
                                   config);
  platform.Start();
  for (int i = 0; i < 120; ++i) {
    sim.At(Millis(400) * i, [&] { platform.Submit(FunctionId(0)); });
  }
  sim.RunUntil(Seconds(180));
  platform.Stop();
  recorder.Close(sim.Now());

  std::cout << "served " << recorder.completed_requests() << "/"
            << recorder.total_requests() << " generations, SLO hit rate "
            << metrics::FmtPercent(recorder.SloHitRate()) << ", pipelines "
            << platform.pipelines_launched() << "\n";
  auto lats = recorder.LatenciesSeconds();
  if (!lats.empty()) {
    std::cout << "latency p50 " << metrics::Fmt(Percentile(lats, 0.5), 2)
              << "s, p95 " << metrics::Fmt(Percentile(lats, 0.95), 2)
              << "s\n";
  }
  std::cout << "\nA monolithic MIG scheduler cannot host this model at all —"
            << "\nno profile has "
            << metrics::Fmt(static_cast<double>(
                                model::BuildLlmApp(model::LlmSize::k34B)
                                    .TotalMemory()) /
                                kGiB,
                            0)
            << " GB. Pipelined stages on fragments make it a serverless "
               "function.\n";
  return 0;
}
