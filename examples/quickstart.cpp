// Quickstart: define a FluidFaaS function with the programming API (the
// C++ analog of the paper's Fig. 7), let the planner rank its pipeline
// candidates, and run it on a simulated MIG cluster.
//
//   $ ./quickstart
#include <iostream>

#include "core/ffs_function.h"
#include "core/ffs_platform.h"
#include "core/partitioner.h"
#include "metrics/report.h"
#include "model/zoo.h"
#include "platform/function.h"

using namespace fluidfaas;

int main() {
  // --- 1. Write the serverless function (paper Fig. 7) -------------------
  // Wrap each DNN component in an FfsModule and register the dataflow.
  // Component profiles normally come from BUILDDAG-mode profiling; here we
  // take them from the bundled model zoo.
  const auto scale = model::ScaleFor(/*app=*/0, model::Variant::kMedium);
  core::FfsModule super_res(model::MakeComponent(
      model::ComponentClass::kSuperResolution, scale, 0));
  core::FfsModule segmentation(model::MakeComponent(
      model::ComponentClass::kSegmentation, scale, 1));
  core::FfsModule classifier(model::MakeComponent(
      model::ComponentClass::kClassification, scale, 2));

  core::FfsFunctionBuilder builder("my_image_service");
  auto x1 = super_res.reg(builder, {core::FfsFunctionBuilder::kInput});
  auto x2 = segmentation.reg(builder, {x1});
  classifier.reg(builder, {x2});
  model::AppDag dag = std::move(builder).Build();

  std::cout << "function '" << dag.name() << "': " << dag.size()
            << " components, "
            << metrics::Fmt(static_cast<double>(dag.TotalMemory()) / kGiB, 1)
            << " GB GPU memory\n\n";

  // --- 2. Offline planning: CV-ranked pipeline candidates (Eq. 1) --------
  auto candidates = core::EnumerateRankedPipelines(dag, /*max_stages=*/3);
  std::cout << "pipeline candidates, best-balanced first:\n";
  for (const auto& c : candidates) {
    std::cout << "  " << core::ToString(c) << "\n";
  }

  // --- 3. Run it on a simulated cluster ----------------------------------
  sim::Simulator sim;
  auto cluster = gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition());
  metrics::Recorder recorder(cluster);
  std::vector<platform::FunctionSpec> fns;
  fns.push_back(platform::MakeFunctionSpec(
      FunctionId(0), 0, model::Variant::kMedium, dag, /*slo_scale=*/1.5));
  const SimDuration slo = fns[0].slo;

  core::FluidFaasPlatform platform(sim, cluster, recorder, std::move(fns),
                                   platform::PlatformConfig{});
  platform.Start();

  // 10 requests per second for 90 seconds — under what the two GPUs can
  // sustain, long enough to amortize the cold starts.
  for (int i = 0; i < 900; ++i) {
    sim.At(Millis(100) * i, [&] { platform.Submit(FunctionId(0)); });
  }
  sim.RunUntil(Seconds(120));
  platform.Stop();
  recorder.Close(sim.Now());

  // --- 4. Results ----------------------------------------------------------
  std::cout << "\ncompleted " << recorder.completed_requests() << "/"
            << recorder.total_requests() << " requests; SLO ("
            << metrics::FmtMillis(static_cast<double>(slo)) << "): "
            << metrics::FmtPercent(recorder.SloHitRate()) << " hit rate\n"
            << "pipelines launched: " << platform.pipelines_launched()
            << ", promotions: " << platform.promotions()
            << ", evictions: " << platform.evictions() << "\n";
  const auto bd = recorder.MeanBreakdown();
  std::cout << "mean breakdown: queue " << metrics::FmtMillis(bd.queue)
            << ", load " << metrics::FmtMillis(bd.load) << ", exec "
            << metrics::FmtMillis(bd.exec) << ", transfer "
            << metrics::FmtMillis(bd.transfer) << "\n";
  return 0;
}
