// The *real* concurrent pipeline runtime (Listing 1's counterpart): three
// stage workers on separate threads, tensors flowing through lock-free
// shared-memory rings, with a mid-run eviction — run it and watch the
// counters.
//
//   $ ./runtime_pipeline
#include <chrono>
#include <iostream>

#include "metrics/report.h"
#include "runtime/pipeline_runtime.h"

using namespace fluidfaas;
using Clock = std::chrono::steady_clock;

int main() {
  // A three-stage pipeline mimicking super-resolution -> segmentation ->
  // classification: each stage is a SyntheticModel burning CPU in
  // proportion to the modelled compute, shrinking the tensor as it goes.
  runtime::StageConfig sr{"super_resolution",
                          runtime::SyntheticModel(1 << 20, 24), [] {
                            std::cout << "  [sr] unloaded (model.cpu())\n";
                          }};
  runtime::StageConfig seg{"segmentation",
                           runtime::SyntheticModel(1 << 18, 12), [] {
                             std::cout << "  [seg] unloaded\n";
                           }};
  runtime::StageConfig cls{"classification",
                           runtime::SyntheticModel(1 << 10, 4), [] {
                             std::cout << "  [cls] unloaded\n";
                           }};

  runtime::PipelineRuntime pipeline({sr, seg, cls}, /*ring_capacity=*/1 << 23);
  pipeline.Start();

  constexpr int kRequests = 64;
  std::vector<std::byte> input(1 << 19);  // a 512 KiB "image"
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::byte>(i * 2654435761u >> 24);
  }

  const auto t0 = Clock::now();
  std::thread feeder([&] {
    for (int i = 0; i < kRequests; ++i) {
      pipeline.Submit(static_cast<std::uint64_t>(i),
                      std::span<const std::byte>(input));
    }
    pipeline.Shutdown();
  });

  int results = 0;
  std::uint64_t checksum = 0;
  while (auto frame = pipeline.NextResult()) {
    ++results;
    for (std::byte b : frame->payload) {
      checksum = checksum * 31 + static_cast<std::uint64_t>(b);
    }
  }
  feeder.join();
  pipeline.Join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::cout << "pipelined " << results << " requests through 3 stages in "
            << metrics::Fmt(secs, 2) << "s ("
            << metrics::Fmt(results / secs, 1)
            << " req/s, checksum " << checksum << ")\n";
  for (std::size_t s = 0; s < pipeline.num_stages(); ++s) {
    std::cout << "  stage " << s << " processed " << pipeline.processed(s)
              << " tensors\n";
  }

  // Second run: the invoker evicts the middle stage mid-stream (Fig. 8 ④ /
  // Listing 1's _terminate_processes). The pipeline drains and unloads.
  std::cout << "\nsecond run with a mid-stream eviction:\n";
  runtime::PipelineRuntime second({sr, seg, cls}, 1 << 23);
  second.Start();
  for (int i = 0; i < 16; ++i) {
    second.Submit(static_cast<std::uint64_t>(i),
                  std::span<const std::byte>(input));
  }
  int drained = 0;
  while (drained < 4) {
    if (second.NextResult()) ++drained;
  }
  std::cout << "  ...4 results in, evicting the segmentation stage now\n";
  second.RequestEviction(1);
  while (second.NextResult()) ++drained;
  second.Join();
  std::cout << "  " << drained
            << " requests completed before the eviction tore the pipeline "
               "down\n";
  return 0;
}
