// Replay an invocation trace through all three platforms and print a
// side-by-side comparison — the workhorse workflow for experimenting with
// the simulator.
//
//   $ ./trace_replay [medium] [load_factor] [trace.csv]
//
// With a CSV argument ("time_us,function_id" rows, e.g. exported from the
// Azure Functions dataset), the file drives the arrival process; otherwise
// an Azure-like trace is synthesized for the chosen tier and load factor.
#include <cstring>
#include <fstream>
#include <iostream>

#include "harness/experiment.h"
#include "metrics/report.h"
#include "trace/trace.h"

using namespace fluidfaas;

int main(int argc, char** argv) {
  trace::WorkloadTier tier = trace::WorkloadTier::kMedium;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "light")) tier = trace::WorkloadTier::kLight;
    if (!std::strcmp(argv[1], "heavy")) tier = trace::WorkloadTier::kHeavy;
  }
  harness::ExperimentConfig cfg;
  cfg.tier = tier;
  cfg.num_nodes = 2;
  cfg.gpus_per_node = 8;
  cfg.duration = Seconds(120);
  if (argc > 2) cfg.load_factor = std::atof(argv[2]);

  if (argc > 3) {
    std::ifstream in(argv[3]);
    if (!in) {
      std::cerr << "cannot open trace file " << argv[3] << "\n";
      return 1;
    }
    const trace::Trace t = trace::LoadCsv(in);
    std::cout << "loaded " << t.size() << " invocations from " << argv[3]
              << " (mean " << metrics::Fmt(MeanRps(t, cfg.duration), 1)
              << " rps)\n"
              << "note: the harness synthesizes per-tier traces; a custom "
                 "CSV is illustrated here via trace::LoadCsv and can be fed "
                 "to Platform::Submit directly.\n\n";
  }

  std::cout << "replaying a " << trace::Name(tier)
            << " workload on 2 nodes x 8 A100s (partition "
            << gpu::DefaultPartition().ToString() << ")\n\n";

  auto results = harness::RunComparison(cfg);
  metrics::Table table({"system", "completed", "throughput", "SLO hit",
                        "P95 latency", "MIG time", "GPU time", "pipelines",
                        "evictions"});
  for (const auto& r : results) {
    auto lats = r.recorder->LatenciesSeconds();
    const double p95 = lats.empty() ? 0.0 : Percentile(lats, 0.95);
    table.AddRow({r.system,
                  std::to_string(r.recorder->completed_requests()) + "/" +
                      std::to_string(r.recorder->total_requests()),
                  metrics::Fmt(r.throughput_rps, 1) + " rps",
                  metrics::FmtPercent(r.slo_hit_rate),
                  metrics::Fmt(p95, 2) + "s",
                  metrics::Fmt(ToSeconds(r.mig_time), 0) + "s",
                  metrics::Fmt(ToSeconds(r.gpu_time), 0) + "s",
                  std::to_string(r.pipelines_launched),
                  std::to_string(r.evictions)});
  }
  table.Print();
  return 0;
}
