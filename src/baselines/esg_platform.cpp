#include "baselines/esg_platform.h"

#include <algorithm>
#include <utility>

#include "baselines/esg_search.h"
#include "baselines/repartition_platform.h"
#include "common/logging.h"
#include "core/pipeline.h"
#include "gpu/cluster_view.h"
#include "platform/placement.h"
#include "platform/registry.h"

namespace fluidfaas::baselines {

using platform::Instance;
using platform::InstanceState;

namespace {

/// Least-estimated-completion admitting instance of `insts`.
Instance* LeastLoaded(const std::vector<Instance*>& insts, SimTime now) {
  Instance* best = nullptr;
  SimTime best_est = kTimeInfinity;
  for (Instance* inst : insts) {
    if (!inst->CanAdmit()) continue;
    const SimTime est = inst->EstimateCompletion(now);
    if (est < best_est) {
      best_est = est;
      best = inst;
    }
  }
  return best;
}

/// Admission shared by both monolithic baselines; see
/// Instance::AdmitWithinBound for the policy.
bool AdmitBounded(Instance* inst, RequestId rid, double jitter, SimTime now,
                  SimTime deadline, SimDuration slo) {
  if (inst == nullptr) return false;
  if (!inst->AdmitWithinBound(now, deadline, slo)) return false;
  inst->Enqueue(rid, jitter, deadline);
  return true;
}

}  // namespace

std::vector<int> EsgState::FreeCounts(
    const platform::PlatformCore& core) const {
  std::vector<int> counts(gpu::kAllProfiles.size(), 0);
  for (SliceId sid : core.cluster().AllSlices()) {
    const gpu::MigSlice& s = core.cluster().slice(sid);
    if (s.allocatable()) counts[static_cast<std::size_t>(s.profile())] += 1;
  }
  return counts;
}

int EsgState::ScaleUp(platform::PlatformCore& core,
                      const platform::FunctionSpec& spec, double demand_rps) {
  ++searches;
  auto result = EsgSearch(spec.dag, FreeCounts(core), spec.slo, demand_rps);
  if (!result) {
    // Even the full free inventory cannot cover the demand; deploy the
    // single cheapest feasible instance as best effort.
    auto options = MakeSliceOptions(spec.dag, FreeCounts(core), spec.slo);
    if (options.empty()) return 0;
    auto best = std::min_element(
        options.begin(), options.end(),
        [](const SliceOption& a, const SliceOption& b) {
          return gpu::Gpcs(a.profile) < gpu::Gpcs(b.profile);
        });
    EsgSearchResult fallback;
    fallback.chosen.push_back(best->profile);
    result = fallback;
  }
  // One transaction for the whole deployment: each AddSpawn reserves its
  // slice in the shared view, so later profiles in `chosen` plan against
  // what this very scale-up already claimed — no post-hoc "raced with
  // another function" re-check needed.
  gpu::ClusterView view(core.cluster());
  platform::PlacementPlan txn;
  for (gpu::MigProfile p : result->chosen) {
    const auto free = view.FreeSlices(p);
    if (free.empty()) continue;  // inventory exhausted by earlier spawns
    auto plan = core::MonolithicPlanOnSlice(spec.dag, view, free.front());
    if (!plan) continue;
    platform::AddSpawn(txn, view, spec.id, std::move(*plan),
                       core.IsWarm(spec.id));
  }
  if (txn.empty()) return 0;
  const platform::CommitResult result_commit = core.Commit(txn);
  return result_commit.ok() ? txn.NumSpawns() : 0;
}

bool EsgRouting::Route(platform::PlatformCore& core, RequestId rid,
                       FunctionId fn) {
  const platform::FunctionSpec& spec = core.function(fn);
  const SimTime now = core.simulator().Now();
  const SimTime deadline = core.DeadlineOf(rid);
  std::vector<Instance*> insts = core.InstancesOf(fn);

  if (insts.empty()) {
    // Cold path: synchronous scale-up for the first request.
    if (st_->ScaleUp(core, spec, core.ArrivalRate(fn)) == 0) return false;
    insts = core.InstancesOf(fn);
  }
  return AdmitBounded(LeastLoaded(insts, now), rid, core.JitterOf(rid), now,
                      deadline, spec.slo);
}

void EsgScaling::Tick(platform::PlatformCore& core) {
  for (const platform::FunctionSpec& spec : core.functions()) {
    const double rate = core.ArrivalRate(spec.id);
    double capacity = 0.0;
    for (Instance* inst : core.InstancesOf(spec.id)) {
      if (inst->CanAdmit()) capacity += inst->CapacityRps();
    }
    if (rate > core.config().scaleup_load_factor * capacity) {
      const double deficit =
          rate / core.config().scaleup_load_factor - capacity;
      st_->ScaleUp(core, spec, deficit);
    }
  }
  // Exclusive keep-alive (idle instances hold their slices for the window)
  // is the bundle's FixedIdleKeepAlive policy, which runs right after this.
}

bool InflessRouting::Route(platform::PlatformCore& core, RequestId rid,
                           FunctionId fn) {
  const platform::FunctionSpec& spec = core.function(fn);
  const SimTime now = core.simulator().Now();
  const SimTime deadline = core.DeadlineOf(rid);
  std::vector<Instance*> insts = core.InstancesOf(fn);

  if (insts.empty()) {
    auto plan =
        core::MonolithicPlanOnSmallestSlice(spec.dag, core.cluster());
    if (!plan) return false;
    const platform::CommitResult result = core.Commit(
        platform::SpawnPlan(fn, std::move(*plan), core.IsWarm(fn)));
    if (!result.ok()) return false;
    insts.push_back(result.spawned.front());
  }

  // Least outstanding work, no SLO-awareness in the pick.
  Instance* best = nullptr;
  for (Instance* inst : insts) {
    if (!inst->CanAdmit()) continue;
    if (best == nullptr || inst->outstanding() < best->outstanding()) {
      best = inst;
    }
  }
  return AdmitBounded(best, rid, core.JitterOf(rid), now, deadline, spec.slo);
}

void InflessScaling::Tick(platform::PlatformCore& core) {
  for (const platform::FunctionSpec& spec : core.functions()) {
    const double rate = core.ArrivalRate(spec.id);
    double capacity = 0.0;
    for (Instance* inst : core.InstancesOf(spec.id)) {
      if (inst->CanAdmit()) capacity += inst->CapacityRps();
    }
    int guard = 0;
    while (rate > core.config().scaleup_load_factor * capacity &&
           guard++ < 8) {
      auto plan =
          core::MonolithicPlanOnSmallestSlice(spec.dag, core.cluster());
      if (!plan) break;
      const platform::CommitResult result = core.Commit(platform::SpawnPlan(
          spec.id, std::move(*plan), core.IsWarm(spec.id)));
      if (!result.ok()) break;
      capacity += result.spawned.front()->CapacityRps();
    }
  }
}

platform::PolicyBundle MakeEsgBundle(std::shared_ptr<EsgState> state) {
  if (!state) state = std::make_shared<EsgState>();
  platform::PolicyBundle bundle;
  bundle.name = "ESG";
  bundle.routing = std::make_unique<EsgRouting>(state);
  bundle.scaling = std::make_unique<EsgScaling>(state);
  bundle.keepalive = std::make_unique<platform::FixedIdleKeepAlive>();
  return bundle;
}

platform::PolicyBundle MakeInflessBundle() {
  platform::PolicyBundle bundle;
  bundle.name = "INFless";
  bundle.routing = std::make_unique<InflessRouting>();
  bundle.scaling = std::make_unique<InflessScaling>();
  bundle.keepalive = std::make_unique<platform::FixedIdleKeepAlive>();
  return bundle;
}

void RegisterBaselineSchedulers() {
  platform::RegisterScheduler("ESG", [] { return MakeEsgBundle(); });
  platform::RegisterScheduler("INFless", [] { return MakeInflessBundle(); });
  platform::RegisterScheduler("Repartition",
                              [] { return MakeRepartitionBundle(); });
}

EsgPlatform::EsgPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                         metrics::Recorder& recorder,
                         std::vector<platform::FunctionSpec> functions,
                         platform::PlatformConfig config)
    : EsgPlatform(sim, cluster, recorder, std::move(functions), config,
                  std::make_shared<EsgState>()) {}

EsgPlatform::EsgPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                         metrics::Recorder& recorder,
                         std::vector<platform::FunctionSpec> functions,
                         platform::PlatformConfig config,
                         std::shared_ptr<EsgState> state)
    : PlatformCore(sim, cluster, std::move(functions), config,
                   MakeEsgBundle(state)),
      state_(std::move(state)) {
  recorder.SubscribeTo(sim.bus());
}

InflessPlatform::InflessPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                                 metrics::Recorder& recorder,
                                 std::vector<platform::FunctionSpec> functions,
                                 platform::PlatformConfig config)
    : PlatformCore(sim, cluster, std::move(functions), config,
                   MakeInflessBundle()) {
  recorder.SubscribeTo(sim.bus());
}

}  // namespace fluidfaas::baselines
