#include "baselines/esg_platform.h"

#include <algorithm>

#include "baselines/esg_search.h"
#include "common/logging.h"
#include "core/pipeline.h"

namespace fluidfaas::baselines {

using platform::Instance;
using platform::InstanceState;

namespace {

/// Least-estimated-completion admitting instance of `insts`.
Instance* LeastLoaded(const std::vector<Instance*>& insts, SimTime now) {
  Instance* best = nullptr;
  SimTime best_est = kTimeInfinity;
  for (Instance* inst : insts) {
    if (!inst->CanAdmit()) continue;
    const SimTime est = inst->EstimateCompletion(now);
    if (est < best_est) {
      best_est = est;
      best = inst;
    }
  }
  return best;
}

/// Admission shared by both monolithic baselines; see
/// Instance::AdmitWithinBound for the policy.
bool AdmitBounded(Instance* inst, RequestId rid, double jitter, SimTime now,
                  SimTime deadline, SimDuration slo) {
  if (inst == nullptr) return false;
  if (!inst->AdmitWithinBound(now, deadline, slo)) return false;
  inst->Enqueue(rid, jitter);
  return true;
}

}  // namespace

EsgPlatform::EsgPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                         metrics::Recorder& recorder,
                         std::vector<platform::FunctionSpec> functions,
                         platform::PlatformConfig config)
    : Platform(sim, cluster, recorder, std::move(functions), config) {}

std::vector<int> EsgPlatform::FreeCounts() const {
  std::vector<int> counts(gpu::kAllProfiles.size(), 0);
  for (SliceId sid : cluster().AllSlices()) {
    const gpu::MigSlice& s = cluster().slice(sid);
    if (s.free()) counts[static_cast<std::size_t>(s.profile())] += 1;
  }
  return counts;
}

int EsgPlatform::ScaleUp(const platform::FunctionSpec& spec,
                         double demand_rps) {
  ++searches_;
  auto result = EsgSearch(spec.dag, FreeCounts(), spec.slo, demand_rps);
  if (!result) {
    // Even the full free inventory cannot cover the demand; deploy the
    // single cheapest feasible instance as best effort.
    auto options = MakeSliceOptions(spec.dag, FreeCounts(), spec.slo);
    if (options.empty()) return 0;
    auto best = std::min_element(
        options.begin(), options.end(),
        [](const SliceOption& a, const SliceOption& b) {
          return gpu::Gpcs(a.profile) < gpu::Gpcs(b.profile);
        });
    EsgSearchResult fallback;
    fallback.chosen.push_back(best->profile);
    result = fallback;
  }
  int launched = 0;
  for (gpu::MigProfile p : result->chosen) {
    const auto free = cluster().FreeSlices(p);
    if (free.empty()) continue;  // raced with another function this tick
    auto plan = core::MonolithicPlanOnSlice(spec.dag, cluster(),
                                            free.front());
    if (!plan) continue;
    LaunchInstance(spec, std::move(*plan), IsWarm(spec.id));
    ++launched;
  }
  return launched;
}

bool EsgPlatform::Route(RequestId rid, FunctionId fn) {
  const platform::FunctionSpec& spec = function(fn);
  const SimTime now = simulator().Now();
  const SimTime deadline = recorder().record(rid).deadline;
  std::vector<Instance*> insts = InstancesOf(fn);

  if (insts.empty()) {
    // Cold path: synchronous scale-up for the first request.
    if (ScaleUp(spec, ArrivalRate(fn)) == 0) return false;
    insts = InstancesOf(fn);
  }
  return AdmitBounded(LeastLoaded(insts, now), rid, JitterOf(rid), now,
                      deadline, spec.slo);
}

void EsgPlatform::AutoscaleTick() {
  for (const platform::FunctionSpec& spec : functions()) {
    const double rate = ArrivalRate(spec.id);
    double capacity = 0.0;
    for (Instance* inst : InstancesOf(spec.id)) {
      if (inst->CanAdmit()) capacity += inst->CapacityRps();
    }
    if (rate > config().scaleup_load_factor * capacity) {
      const double deficit = rate / config().scaleup_load_factor - capacity;
      ScaleUp(spec, deficit);
    }
  }
  // Exclusive keep-alive: idle instances hold their slices for the window.
  ExpireIdleInstances(config().exclusive_keepalive);
}

InflessPlatform::InflessPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                                 metrics::Recorder& recorder,
                                 std::vector<platform::FunctionSpec> functions,
                                 platform::PlatformConfig config)
    : Platform(sim, cluster, recorder, std::move(functions), config) {}

bool InflessPlatform::Route(RequestId rid, FunctionId fn) {
  const platform::FunctionSpec& spec = function(fn);
  const SimTime now = simulator().Now();
  const SimTime deadline = recorder().record(rid).deadline;
  std::vector<Instance*> insts = InstancesOf(fn);

  if (insts.empty()) {
    auto sid = cluster().SmallestFreeSliceWithMemory(spec.total_memory);
    if (!sid) return false;
    auto plan = core::MonolithicPlanOnSlice(spec.dag, cluster(), *sid);
    if (!plan) return false;
    insts.push_back(LaunchInstance(spec, std::move(*plan), IsWarm(fn)));
  }

  // Least outstanding work, no SLO-awareness in the pick.
  Instance* best = nullptr;
  for (Instance* inst : insts) {
    if (!inst->CanAdmit()) continue;
    if (best == nullptr || inst->outstanding() < best->outstanding()) {
      best = inst;
    }
  }
  return AdmitBounded(best, rid, JitterOf(rid), now, deadline, spec.slo);
}

void InflessPlatform::AutoscaleTick() {
  for (const platform::FunctionSpec& spec : functions()) {
    const double rate = ArrivalRate(spec.id);
    double capacity = 0.0;
    for (Instance* inst : InstancesOf(spec.id)) {
      if (inst->CanAdmit()) capacity += inst->CapacityRps();
    }
    int guard = 0;
    while (rate > config().scaleup_load_factor * capacity && guard++ < 8) {
      auto sid = cluster().SmallestFreeSliceWithMemory(spec.total_memory);
      if (!sid) break;
      auto plan = core::MonolithicPlanOnSlice(spec.dag, cluster(), *sid);
      if (!plan) break;
      Instance* inst = LaunchInstance(spec, std::move(*plan), IsWarm(spec.id));
      capacity += inst->CapacityRps();
    }
  }
  ExpireIdleInstances(config().exclusive_keepalive);
}

}  // namespace fluidfaas::baselines
