// ESG baseline (Hui et al., HPDC '24): the state-of-the-art monolithic MIG
// scheduler this paper compares against, as a policy bundle over
// platform::PlatformCore.
//
// Structural properties reproduced from the paper's description:
//   * a serverless function is a single unit — every instance occupies one
//     MIG slice whose memory must hold the whole function (no pipelining);
//   * scale-up chooses slice sets by A* search with dual-blade pruning,
//     picking the most resource-efficient configuration that meets the SLO;
//   * exclusive keep-alive — an idle instance holds its slice for the full
//     keep-alive window, blocking other functions (the Fig. 5 behaviour) —
//     expressed as platform::FixedIdleKeepAlive;
//   * deadline-aware routing to the least-loaded instance.
//
// This header also hosts the INFless baseline (same keep-alive, simpler
// placement); both register through RegisterBaselineSchedulers().
#pragma once

#include <memory>
#include <vector>

#include "metrics/recorder.h"
#include "platform/platform.h"
#include "platform/policy.h"

namespace fluidfaas::baselines {

/// Shared state of the ESG routing/scaling pair: the A* search counter and
/// the scale-up machinery both sides invoke (routing scales up on the cold
/// path, scaling on deficit).
class EsgState {
 public:
  /// Free-slice counts per profile, cluster-wide.
  std::vector<int> FreeCounts(const platform::PlatformCore& core) const;

  /// Launch monolithic instances per the A* result; returns #launched.
  int ScaleUp(platform::PlatformCore& core,
              const platform::FunctionSpec& spec, double demand_rps);

  std::size_t searches = 0;
};

class EsgRouting final : public platform::RoutingPolicy {
 public:
  explicit EsgRouting(std::shared_ptr<EsgState> st) : st_(std::move(st)) {}
  bool Route(platform::PlatformCore& core, RequestId rid,
             FunctionId fn) override;

 private:
  std::shared_ptr<EsgState> st_;
};

class EsgScaling final : public platform::ScalingPolicy {
 public:
  explicit EsgScaling(std::shared_ptr<EsgState> st) : st_(std::move(st)) {}
  void Tick(platform::PlatformCore& core) override;

 private:
  std::shared_ptr<EsgState> st_;
};

/// INFless with MIG support (§6): the second monolithic baseline. Same
/// exclusive keep-alive; placement is simple best-fit by memory (no
/// SLO-aware search), routing is least-outstanding. Both policies are
/// stateless.
class InflessRouting final : public platform::RoutingPolicy {
 public:
  bool Route(platform::PlatformCore& core, RequestId rid,
             FunctionId fn) override;
};

class InflessScaling final : public platform::ScalingPolicy {
 public:
  void Tick(platform::PlatformCore& core) override;
};

platform::PolicyBundle MakeEsgBundle(std::shared_ptr<EsgState> state = nullptr);
platform::PolicyBundle MakeInflessBundle();

/// Register "ESG", "INFless" and "Repartition" in the platform::registry
/// factory. Idempotent.
void RegisterBaselineSchedulers();

/// Convenience platforms pre-wired with their bundle; each subscribes
/// `recorder` to the simulator's bus.
class EsgPlatform : public platform::PlatformCore {
 public:
  EsgPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
              metrics::Recorder& recorder,
              std::vector<platform::FunctionSpec> functions,
              platform::PlatformConfig config);

  std::size_t searches() const { return state_->searches; }

 private:
  EsgPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
              metrics::Recorder& recorder,
              std::vector<platform::FunctionSpec> functions,
              platform::PlatformConfig config, std::shared_ptr<EsgState> state);

  std::shared_ptr<EsgState> state_;
};

class InflessPlatform : public platform::PlatformCore {
 public:
  InflessPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                  metrics::Recorder& recorder,
                  std::vector<platform::FunctionSpec> functions,
                  platform::PlatformConfig config);
};

}  // namespace fluidfaas::baselines
