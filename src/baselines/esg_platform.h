// ESG baseline platform (Hui et al., HPDC '24): the state-of-the-art
// monolithic MIG scheduler this paper compares against.
//
// Structural properties reproduced from the paper's description:
//   * a serverless function is a single unit — every instance occupies one
//     MIG slice whose memory must hold the whole function (no pipelining);
//   * scale-up chooses slice sets by A* search with dual-blade pruning,
//     picking the most resource-efficient configuration that meets the SLO;
//   * exclusive keep-alive — an idle instance holds its slice for the full
//     keep-alive window, blocking other functions (the Fig. 5 behaviour);
//   * deadline-aware routing to the least-loaded instance.
#pragma once

#include <vector>

#include "platform/platform.h"

namespace fluidfaas::baselines {

class EsgPlatform : public platform::Platform {
 public:
  EsgPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
              metrics::Recorder& recorder,
              std::vector<platform::FunctionSpec> functions,
              platform::PlatformConfig config);

  std::string name() const override { return "ESG"; }

  std::size_t searches() const { return searches_; }

 protected:
  bool Route(RequestId rid, FunctionId fn) override;
  void AutoscaleTick() override;

 private:
  /// Free-slice counts per profile, cluster-wide.
  std::vector<int> FreeCounts() const;

  /// Launch monolithic instances per the A* result; returns #launched.
  int ScaleUp(const platform::FunctionSpec& spec, double demand_rps);

  std::size_t searches_ = 0;
};

/// INFless with MIG support (§6): the second monolithic baseline. Same
/// exclusive keep-alive; placement is simple best-fit by memory (no
/// SLO-aware search), routing is least-outstanding.
class InflessPlatform : public platform::Platform {
 public:
  InflessPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                  metrics::Recorder& recorder,
                  std::vector<platform::FunctionSpec> functions,
                  platform::PlatformConfig config);

  std::string name() const override { return "INFless"; }

 protected:
  bool Route(RequestId rid, FunctionId fn) override;
  void AutoscaleTick() override;
};

}  // namespace fluidfaas::baselines
