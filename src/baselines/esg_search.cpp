#include "baselines/esg_search.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "common/error.h"

namespace fluidfaas::baselines {

std::vector<SliceOption> MakeSliceOptions(
    const model::AppDag& dag, const std::vector<int>& free_per_profile,
    SimDuration slo) {
  FFS_CHECK(free_per_profile.size() == gpu::kAllProfiles.size());
  const Bytes need = dag.TotalMemory();
  std::vector<SliceOption> options;
  for (std::size_t i = 0; i < gpu::kAllProfiles.size(); ++i) {
    const gpu::MigProfile p = gpu::kAllProfiles[i];
    if (free_per_profile[i] <= 0) continue;
    if (gpu::MemBytes(p) < need) continue;  // OOM
    SliceOption opt;
    opt.profile = p;
    opt.available = free_per_profile[i];
    opt.exec_time = dag.TotalLatencyOnGpcs(gpu::Gpcs(p));
    if (opt.exec_time > slo) continue;  // latency blade
    options.push_back(opt);
  }
  return options;
}

namespace {

struct Node {
  std::vector<int> counts;  // instances chosen per option index
  int gpcs = 0;
  double capacity = 0.0;
  double f = 0.0;  // gpcs + heuristic
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.f != b.f) return a.f > b.f;  // min-heap on f
    return a.capacity < b.capacity;    // tie-break: more capacity first
  }
};

}  // namespace

std::optional<EsgSearchResult> EsgSearch(
    const model::AppDag& dag, const std::vector<int>& free_per_profile,
    SimDuration slo, double demand_rps) {
  EsgSearchResult result;

  std::vector<SliceOption> options = MakeSliceOptions(dag, free_per_profile,
                                                      slo);
  {
    // Latency-blade accounting: memory-feasible types rejected on latency.
    const Bytes need = dag.TotalMemory();
    for (std::size_t i = 0; i < gpu::kAllProfiles.size(); ++i) {
      const gpu::MigProfile p = gpu::kAllProfiles[i];
      if (free_per_profile[i] <= 0 || gpu::MemBytes(p) < need) continue;
      if (dag.TotalLatencyOnGpcs(gpu::Gpcs(p)) > slo) {
        ++result.pruned_latency;
      }
    }
  }
  if (options.empty()) return std::nullopt;
  if (demand_rps <= 0.0) {
    // Degenerate demand: one instance on the cheapest feasible type.
    std::size_t best = 0;
    for (std::size_t i = 1; i < options.size(); ++i) {
      if (gpu::Gpcs(options[i].profile) < gpu::Gpcs(options[best].profile)) {
        best = i;
      }
    }
    result.chosen.push_back(options[best].profile);
    result.total_gpcs = gpu::Gpcs(options[best].profile);
    result.capacity_rps = options[best].capacity_rps();
    return result;
  }

  // Admissible heuristic: remaining demand at the best capacity-per-GPC
  // rate achievable with any remaining option.
  double best_rps_per_gpc = 0.0;
  double max_total_capacity = 0.0;
  for (const SliceOption& o : options) {
    best_rps_per_gpc = std::max(
        best_rps_per_gpc,
        o.capacity_rps() / static_cast<double>(gpu::Gpcs(o.profile)));
    max_total_capacity += o.capacity_rps() * o.available;
  }
  if (max_total_capacity < demand_rps) return std::nullopt;

  auto heuristic = [&](double capacity) {
    const double remaining = std::max(0.0, demand_rps - capacity);
    return remaining / best_rps_per_gpc;
  };

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  Node root;
  root.counts.assign(options.size(), 0);
  root.f = heuristic(0.0);
  open.push(root);

  // Dominance blade: Pareto front of expanded (gpcs, capacity) pairs.
  // A node is pruned when some expanded node had <= gpcs and >= capacity.
  std::vector<std::pair<int, double>> frontier;
  auto dominated = [&](int gpcs, double capacity) {
    for (const auto& [fg, fc] : frontier) {
      if (fg <= gpcs && fc >= capacity) return true;
    }
    return false;
  };

  while (!open.empty()) {
    Node node = open.top();
    open.pop();
    if (node.capacity >= demand_rps) {
      for (std::size_t i = 0; i < options.size(); ++i) {
        for (int k = 0; k < node.counts[i]; ++k) {
          result.chosen.push_back(options[i].profile);
        }
      }
      result.total_gpcs = node.gpcs;
      result.capacity_rps = node.capacity;
      return result;
    }
    if (dominated(node.gpcs, node.capacity)) {
      ++result.pruned_dominance;
      continue;
    }
    frontier.emplace_back(node.gpcs, node.capacity);
    ++result.expanded;

    for (std::size_t i = 0; i < options.size(); ++i) {
      if (node.counts[i] >= options[i].available) continue;
      Node next = node;
      next.counts[i] += 1;
      next.gpcs += gpu::Gpcs(options[i].profile);
      next.capacity += options[i].capacity_rps();
      if (dominated(next.gpcs, next.capacity)) {
        ++result.pruned_dominance;
        continue;
      }
      next.f = static_cast<double>(next.gpcs) + heuristic(next.capacity);
      open.push(next);
    }
  }
  return std::nullopt;
}

}  // namespace fluidfaas::baselines
