// ESG's scheduling core, reimplemented from its published description
// (Hui et al., HPDC '24, as summarized in this paper's §3): an A* search
// over MIG resource configurations with "dual-blade" pruning.
//
// The search answers the controller's scale-up question: which set of MIG
// slices should host new (monolithic) instances of a function so that the
// deployed capacity covers the demand, at minimum GPC cost, while every
// chosen slice type can serve a request within its SLO.
//
// The two pruning blades:
//   * latency blade  — slice types whose solo execution latency exceeds the
//     SLO are removed from the action set up front (they can never satisfy
//     a request even unqueued);
//   * dominance blade — a partial configuration is discarded when an
//     already-expanded configuration offers at least the capacity at no
//     greater GPC cost (Pareto dominance on (capacity, cost)).
//
// With an admissible heuristic (remaining demand divided by the best
// capacity-per-GPC among remaining slice types), the first goal popped is a
// minimum-cost configuration.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "gpu/mig_profile.h"
#include "model/app.h"

namespace fluidfaas::baselines {

/// One usable slice type for the function under search.
struct SliceOption {
  gpu::MigProfile profile;
  int available = 0;          // free slices of this profile cluster-wide
  SimDuration exec_time = 0;  // monolithic execution latency on it
  double capacity_rps() const {
    return exec_time > 0 ? 1e6 / static_cast<double>(exec_time) : 0.0;
  }
};

struct EsgSearchResult {
  /// Profiles to instantiate (one instance per entry).
  std::vector<gpu::MigProfile> chosen;
  int total_gpcs = 0;
  double capacity_rps = 0.0;
  /// Search-effort counters (exercised by tests and the micro bench).
  std::size_t expanded = 0;
  std::size_t pruned_dominance = 0;
  std::size_t pruned_latency = 0;
};

/// Build the option list for `dag` from free slices in the counts map
/// (profile -> free count), applying the latency blade against `slo` and
/// the memory-fit requirement. Counter for pruned types is reported via
/// `pruned_latency` on the result of EsgSearch.
std::vector<SliceOption> MakeSliceOptions(
    const model::AppDag& dag, const std::vector<int>& free_per_profile,
    SimDuration slo);

/// Find the minimum-GPC set of instances with capacity >= demand_rps.
/// Returns nullopt when even using every available slice falls short —
/// the caller then deploys the best effort (all feasible slices) or waits.
std::optional<EsgSearchResult> EsgSearch(
    const model::AppDag& dag, const std::vector<int>& free_per_profile,
    SimDuration slo, double demand_rps);

}  // namespace fluidfaas::baselines
