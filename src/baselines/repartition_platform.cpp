#include "baselines/repartition_platform.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/pipeline.h"
#include "platform/placement.h"
#include "sim/events.h"

namespace fluidfaas::baselines {

using platform::Instance;

namespace {

/// Sentinel occupant that blocks a GPU's slices during reconfiguration.
InstanceId ReconfigSentinel(GpuId gpu) {
  return InstanceId(1'000'000 + gpu.value);
}

}  // namespace

gpu::MigPartition BestRepartitionFor(Bytes needed_memory) {
  const auto all = gpu::EnumerateMaximalPartitions();
  const gpu::MigPartition* best = nullptr;
  int best_fits = -1;
  int best_gpcs = -1;
  for (const gpu::MigPartition& p : all) {
    int fits = 0;
    for (const gpu::Placement& pl : p.placements()) {
      if (gpu::MemBytes(pl.profile) >= needed_memory) ++fits;
    }
    if (fits > best_fits ||
        (fits == best_fits && p.total_gpcs() > best_gpcs)) {
      best = &p;
      best_fits = fits;
      best_gpcs = p.total_gpcs();
    }
  }
  FFS_CHECK(best != nullptr);
  return *best;
}

Instance* RepartitionState::TryLaunch(platform::PlatformCore& core,
                                      const platform::FunctionSpec& spec) {
  auto plan = core::MonolithicPlanOnSmallestSlice(spec.dag, core.cluster());
  if (!plan) return nullptr;
  const platform::CommitResult result = core.Commit(
      platform::SpawnPlan(spec.id, std::move(*plan), core.IsWarm(spec.id)));
  return result.ok() ? result.spawned.front() : nullptr;
}

void RepartitionState::ExecuteReconfig(platform::PlatformCore& core,
                                       GpuId gpu_id, Bytes needed_memory) {
  const gpu::MigPartition target = BestRepartitionFor(needed_memory);
  const SimDuration cost = reconfig.Cost(/*checkpointed_state=*/0);
  const InstanceId sentinel = ReconfigSentinel(gpu_id);
  // The whole swap — retire the old slice ids, mint the new layout, and
  // sentinel-bind the fresh slices for the blackout — is one transaction;
  // Commit aborts it with kGpuNotIdle if anything landed on the GPU since
  // the caller saw it idle.
  platform::PlacementPlan txn;
  txn.actions.push_back(
      platform::RepartitionAction{gpu_id, target, cost, sentinel});
  const platform::CommitResult result = core.Commit(txn);
  if (!result.ok()) return;  // GPU no longer idle; a later tick retries
  blackout_total += cost;
  ++reconfigurations;
  reconfiguring.insert(gpu_id.value);
  FFS_LOG_INFO("repartition")
      << "GPU " << gpu_id.value << " -> " << target.ToString()
      << ", blackout " << ToSeconds(cost) << "s";
  core.simulator().After(cost, [&core, self = shared_from_this(), gpu_id,
                                fresh = result.fresh_slices, sentinel] {
    core.FinishRepartition(fresh, sentinel);
    self->reconfiguring.erase(gpu_id.value);
    core.DispatchPending();
  });
}

bool RepartitionState::TryReconfigure(platform::PlatformCore& core,
                                      const platform::FunctionSpec& spec) {
  const gpu::MigPartition target = BestRepartitionFor(spec.total_memory);

  // Preferred path: a fully idle GPU swaps immediately.
  for (const gpu::Gpu& g : core.cluster().gpus()) {
    if (reconfiguring.count(g.id().value)) continue;
    if (!g.AllSlicesFree()) continue;
    if (target.Profiles() == g.partition().Profiles()) continue;
    ExecuteReconfig(core, g.id(), spec.total_memory);
    return true;
  }

  // Otherwise drain one busy GPU and reconfigure it once it empties —
  // sacrificing its current capacity on top of the blackout to come.
  if (drain_targets.size() + reconfiguring.size() >= 2) return false;
  for (const gpu::Gpu& g : core.cluster().gpus()) {
    if (reconfiguring.count(g.id().value)) continue;
    if (target.Profiles() == g.partition().Profiles()) continue;
    bool already_target = false;
    for (const DrainTarget& t : drain_targets) {
      if (t.gpu == g.id()) already_target = true;
    }
    if (already_target) continue;
    // Every occupant must be one of our (drainable) instances.
    bool drainable = true;
    for (const gpu::MigSlice& s : g.slices()) {
      if (!s.free() && s.occupant.value >= 1'000'000) drainable = false;
    }
    if (!drainable) continue;

    for (const platform::FunctionSpec& fn : core.functions()) {
      for (Instance* inst : core.InstancesOf(fn.id)) {
        bool on_gpu = false;
        for (const core::StageBinding& b : inst->plan().stages) {
          if (core.cluster().slice(b.slice).gpu == g.id()) on_gpu = true;
        }
        if (on_gpu) core.DrainOrRetire(inst);
      }
    }
    drain_targets.push_back(DrainTarget{g.id(), spec.total_memory});
    FFS_LOG_INFO("repartition")
        << "draining GPU " << g.id().value << " for reconfiguration";
    return true;
  }
  return false;
}

platform::SchedulerCounters RepartitionState::counters() const {
  platform::SchedulerCounters c;
  c.reconfigurations = reconfigurations;
  c.reconfiguration_blackout = blackout_total;
  return c;
}

bool RepartitionRouting::Route(platform::PlatformCore& core, RequestId rid,
                               FunctionId fn) {
  const platform::FunctionSpec& spec = core.function(fn);
  const SimTime now = core.simulator().Now();
  const SimTime deadline = core.DeadlineOf(rid);

  std::vector<Instance*> insts = core.InstancesOf(fn);
  if (insts.empty()) {
    Instance* inst = st_->TryLaunch(core, spec);
    if (inst == nullptr) return false;  // tick may reconfigure
    insts.push_back(inst);
  }
  Instance* best = nullptr;
  SimTime best_est = kTimeInfinity;
  for (Instance* inst : insts) {
    if (!inst->CanAdmit()) continue;
    const SimTime est = inst->EstimateCompletion(now);
    if (est < best_est) {
      best_est = est;
      best = inst;
    }
  }
  if (best == nullptr || !best->AdmitWithinBound(now, deadline, spec.slo)) {
    return false;
  }
  best->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
  return true;
}

void RepartitionScaling::Tick(platform::PlatformCore& core) {
  // Retire drained instances, then execute reconfigurations whose GPU has
  // finally emptied.
  for (const platform::FunctionSpec& spec : core.functions()) {
    for (Instance* inst : core.InstancesOf(spec.id)) {
      if (inst->state() == platform::InstanceState::kDraining &&
          inst->Idle()) {
        core.RetireInstance(inst);
      }
    }
  }
  for (auto it = st_->drain_targets.begin();
       it != st_->drain_targets.end();) {
    const gpu::Gpu& g = core.cluster().gpu(it->gpu);
    if (g.AllSlicesFree()) {
      st_->ExecuteReconfig(core, it->gpu, it->needed_memory);
      it = st_->drain_targets.erase(it);
    } else {
      ++it;
    }
  }

  for (const platform::FunctionSpec& spec : core.functions()) {
    const double rate = core.ArrivalRate(spec.id);
    double capacity = 0.0;
    for (Instance* inst : core.InstancesOf(spec.id)) {
      if (inst->CanAdmit()) capacity += inst->CapacityRps();
    }
    int guard = 0;
    while (rate > core.config().scaleup_load_factor * capacity &&
           guard++ < 8) {
      Instance* inst = st_->TryLaunch(core, spec);
      if (inst == nullptr) {
        // Fragmented out: try to right the partition mix instead.
        st_->TryReconfigure(core, spec);
        break;
      }
      capacity += inst->CapacityRps();
    }
  }
  // Exclusive keep-alive runs as the bundle's FixedIdleKeepAlive right after.
}

platform::PolicyBundle MakeRepartitionBundle(
    std::shared_ptr<RepartitionState> state) {
  if (!state) state = std::make_shared<RepartitionState>();
  platform::PolicyBundle bundle;
  bundle.name = "Repartition";
  bundle.routing = std::make_unique<RepartitionRouting>(state);
  bundle.scaling = std::make_unique<RepartitionScaling>(state);
  bundle.keepalive = std::make_unique<platform::FixedIdleKeepAlive>();
  bundle.counters = [state] { return state->counters(); };
  return bundle;
}

RepartitionPlatform::RepartitionPlatform(
    sim::Simulator& sim, gpu::Cluster& cluster, metrics::Recorder& recorder,
    std::vector<platform::FunctionSpec> functions,
    platform::PlatformConfig config)
    : RepartitionPlatform(sim, cluster, recorder, std::move(functions), config,
                          std::make_shared<RepartitionState>()) {}

RepartitionPlatform::RepartitionPlatform(
    sim::Simulator& sim, gpu::Cluster& cluster, metrics::Recorder& recorder,
    std::vector<platform::FunctionSpec> functions,
    platform::PlatformConfig config, std::shared_ptr<RepartitionState> state)
    : PlatformCore(sim, cluster, std::move(functions), config,
                   MakeRepartitionBundle(state)),
      state_(std::move(state)) {
  recorder.SubscribeTo(sim.bus());
}

gpu::MigPartition RepartitionPlatform::BestPartitionFor(Bytes needed_memory) {
  return BestRepartitionFor(needed_memory);
}

}  // namespace fluidfaas::baselines
