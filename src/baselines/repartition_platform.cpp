#include "baselines/repartition_platform.h"

#include <algorithm>

#include "common/logging.h"
#include "core/pipeline.h"

namespace fluidfaas::baselines {

using platform::Instance;

namespace {

/// Sentinel occupant that blocks a GPU's slices during reconfiguration.
InstanceId ReconfigSentinel(GpuId gpu) {
  return InstanceId(1'000'000 + gpu.value);
}

}  // namespace

RepartitionPlatform::RepartitionPlatform(
    sim::Simulator& sim, gpu::Cluster& cluster, metrics::Recorder& recorder,
    std::vector<platform::FunctionSpec> functions,
    platform::PlatformConfig config)
    : Platform(sim, cluster, recorder, std::move(functions), config) {}

gpu::MigPartition RepartitionPlatform::BestPartitionFor(Bytes needed_memory) {
  const auto all = gpu::EnumerateMaximalPartitions();
  const gpu::MigPartition* best = nullptr;
  int best_fits = -1;
  int best_gpcs = -1;
  for (const gpu::MigPartition& p : all) {
    int fits = 0;
    for (const gpu::Placement& pl : p.placements()) {
      if (gpu::MemBytes(pl.profile) >= needed_memory) ++fits;
    }
    if (fits > best_fits ||
        (fits == best_fits && p.total_gpcs() > best_gpcs)) {
      best = &p;
      best_fits = fits;
      best_gpcs = p.total_gpcs();
    }
  }
  FFS_CHECK(best != nullptr);
  return *best;
}

platform::Instance* RepartitionPlatform::TryLaunch(
    const platform::FunctionSpec& spec) {
  auto sid = cluster().SmallestFreeSliceWithMemory(spec.total_memory);
  if (!sid) return nullptr;
  auto plan = core::MonolithicPlanOnSlice(spec.dag, cluster(), *sid);
  if (!plan) return nullptr;
  return LaunchInstance(spec, std::move(*plan), IsWarm(spec.id));
}

void RepartitionPlatform::ExecuteReconfig(GpuId gpu_id,
                                          Bytes needed_memory) {
  const gpu::MigPartition target = BestPartitionFor(needed_memory);
  const std::vector<SliceId> fresh = cluster().RepartitionGpu(gpu_id, target);
  recorder().SyncSlices(cluster());
  // Block the fresh slices for the checkpoint/repartition/resume window.
  const SimTime now = simulator().Now();
  for (SliceId sid : fresh) {
    cluster().Bind(sid, ReconfigSentinel(gpu_id));
    recorder().SliceBound(sid, now);
  }
  const SimDuration cost = reconfig_.Cost(/*checkpointed_state=*/0);
  blackout_total_ += cost;
  ++reconfigurations_;
  reconfiguring_.insert(gpu_id.value);
  FFS_LOG_INFO("repartition")
      << "GPU " << gpu_id.value << " -> " << target.ToString()
      << ", blackout " << ToSeconds(cost) << "s";
  simulator().After(cost, [this, gpu_id, fresh] {
    const SimTime t = simulator().Now();
    for (SliceId sid : fresh) {
      cluster().Release(sid, ReconfigSentinel(gpu_id));
      recorder().SliceReleased(sid, t);
    }
    reconfiguring_.erase(gpu_id.value);
    DispatchPending();
  });
}

bool RepartitionPlatform::TryReconfigure(const platform::FunctionSpec& spec) {
  const gpu::MigPartition target = BestPartitionFor(spec.total_memory);

  // Preferred path: a fully idle GPU swaps immediately.
  for (const gpu::Gpu& g : cluster().gpus()) {
    if (reconfiguring_.count(g.id().value)) continue;
    if (!g.AllSlicesFree()) continue;
    if (target.Profiles() == g.partition().Profiles()) continue;
    ExecuteReconfig(g.id(), spec.total_memory);
    return true;
  }

  // Otherwise drain one busy GPU and reconfigure it once it empties —
  // sacrificing its current capacity on top of the blackout to come.
  if (drain_targets_.size() + reconfiguring_.size() >= 2) return false;
  for (const gpu::Gpu& g : cluster().gpus()) {
    if (reconfiguring_.count(g.id().value)) continue;
    if (target.Profiles() == g.partition().Profiles()) continue;
    bool already_target = false;
    for (const DrainTarget& t : drain_targets_) {
      if (t.gpu == g.id()) already_target = true;
    }
    if (already_target) continue;
    // Every occupant must be one of our (drainable) instances.
    bool drainable = true;
    for (const gpu::MigSlice& s : g.slices()) {
      if (!s.free() && s.occupant.value >= 1'000'000) drainable = false;
    }
    if (!drainable) continue;

    for (const platform::FunctionSpec& fn : functions()) {
      for (platform::Instance* inst : InstancesOf(fn.id)) {
        bool on_gpu = false;
        for (const core::StageBinding& b : inst->plan().stages) {
          if (cluster().slice(b.slice).gpu == g.id()) on_gpu = true;
        }
        if (on_gpu) DrainOrRetire(inst);
      }
    }
    drain_targets_.push_back(DrainTarget{g.id(), spec.total_memory});
    FFS_LOG_INFO("repartition")
        << "draining GPU " << g.id().value << " for reconfiguration";
    return true;
  }
  return false;
}

bool RepartitionPlatform::Route(RequestId rid, FunctionId fn) {
  const platform::FunctionSpec& spec = function(fn);
  const SimTime now = simulator().Now();
  const SimTime deadline = recorder().record(rid).deadline;

  std::vector<Instance*> insts = InstancesOf(fn);
  if (insts.empty()) {
    Instance* inst = TryLaunch(spec);
    if (inst == nullptr) return false;  // tick may reconfigure
    insts.push_back(inst);
  }
  Instance* best = nullptr;
  SimTime best_est = kTimeInfinity;
  for (Instance* inst : insts) {
    if (!inst->CanAdmit()) continue;
    const SimTime est = inst->EstimateCompletion(now);
    if (est < best_est) {
      best_est = est;
      best = inst;
    }
  }
  if (best == nullptr || !best->AdmitWithinBound(now, deadline, spec.slo)) {
    return false;
  }
  best->Enqueue(rid, JitterOf(rid));
  return true;
}

void RepartitionPlatform::AutoscaleTick() {
  // Retire drained instances, then execute reconfigurations whose GPU has
  // finally emptied.
  for (const platform::FunctionSpec& spec : functions()) {
    for (platform::Instance* inst : InstancesOf(spec.id)) {
      if (inst->state() == platform::InstanceState::kDraining &&
          inst->Idle()) {
        RetireInstance(inst);
      }
    }
  }
  for (auto it = drain_targets_.begin(); it != drain_targets_.end();) {
    const gpu::Gpu& g = cluster().gpu(it->gpu);
    if (g.AllSlicesFree()) {
      ExecuteReconfig(it->gpu, it->needed_memory);
      it = drain_targets_.erase(it);
    } else {
      ++it;
    }
  }

  for (const platform::FunctionSpec& spec : functions()) {
    const double rate = ArrivalRate(spec.id);
    double capacity = 0.0;
    for (Instance* inst : InstancesOf(spec.id)) {
      if (inst->CanAdmit()) capacity += inst->CapacityRps();
    }
    int guard = 0;
    while (rate > config().scaleup_load_factor * capacity && guard++ < 8) {
      Instance* inst = TryLaunch(spec);
      if (inst == nullptr) {
        // Fragmented out: try to right the partition mix instead.
        TryReconfigure(spec);
        break;
      }
      capacity += inst->CapacityRps();
    }
  }
  ExpireIdleInstances(config().exclusive_keepalive);
}

}  // namespace fluidfaas::baselines
