// The road-not-taken baseline: solve fragmentation by *repartitioning* GPUs
// at runtime instead of pipelining around the fixed partition.
//
// The paper dismisses dynamic MIG reconfiguration because it takes minutes
// (§2.2, citing Miso); this bundle implements it anyway so the trade-off
// is measurable. It schedules monolithically (best-fit, like INFless-MIG),
// and when a function cannot be placed on any free slice while a fully idle
// GPU exists, it reconfigures that GPU to the partition that best serves the
// stranded demand — paying the ReconfigCostModel blackout, during which the
// GPU's fresh slices are held by a sentinel binding. Each swap is published
// as sim::PartitionReconfigured (the Recorder syncs its slice table off it).
//
// bench/ablation_reconfig.cpp races it against FluidFaaS: reconfiguration
// eventually rights the partition mix, but every correction costs minutes of
// capacity, which is exactly why FluidFaaS pipelines instead.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "metrics/recorder.h"
#include "platform/platform.h"
#include "platform/policy.h"

namespace fluidfaas::baselines {

/// Pick the maximal A100 partition that best hosts a monolithic demand of
/// `needed_memory`: most slices that fit it, then most total GPCs.
gpu::MigPartition BestRepartitionFor(Bytes needed_memory);

/// Reconfiguration state shared by the Repartition routing/scaling pair.
/// Must be heap-held by shared_ptr (the blackout-release callback keeps it
/// alive past the policies), hence enable_shared_from_this.
class RepartitionState
    : public std::enable_shared_from_this<RepartitionState> {
 public:
  /// Launch one best-fit monolithic instance if possible.
  platform::Instance* TryLaunch(platform::PlatformCore& core,
                                const platform::FunctionSpec& spec);

  /// Begin reconfiguring for `spec`'s demand: use a fully idle GPU when one
  /// exists, otherwise pick a GPU whose instances can be drained and
  /// reconfigure it once it empties. Returns false when nothing can even be
  /// scheduled.
  bool TryReconfigure(platform::PlatformCore& core,
                      const platform::FunctionSpec& spec);

  /// Execute the partition swap on an already-free GPU (blackout included).
  void ExecuteReconfig(platform::PlatformCore& core, GpuId gpu,
                       Bytes needed_memory);

  platform::SchedulerCounters counters() const;

  gpu::ReconfigCostModel reconfig;
  std::unordered_set<std::int32_t> reconfiguring;  // GpuId values
  struct DrainTarget {
    GpuId gpu;
    Bytes needed_memory;
  };
  std::vector<DrainTarget> drain_targets;
  std::size_t reconfigurations = 0;
  SimDuration blackout_total = 0;
};

class RepartitionRouting final : public platform::RoutingPolicy {
 public:
  explicit RepartitionRouting(std::shared_ptr<RepartitionState> st)
      : st_(std::move(st)) {}
  bool Route(platform::PlatformCore& core, RequestId rid,
             FunctionId fn) override;

 private:
  std::shared_ptr<RepartitionState> st_;
};

class RepartitionScaling final : public platform::ScalingPolicy {
 public:
  explicit RepartitionScaling(std::shared_ptr<RepartitionState> st)
      : st_(std::move(st)) {}
  void Tick(platform::PlatformCore& core) override;

 private:
  std::shared_ptr<RepartitionState> st_;
};

platform::PolicyBundle MakeRepartitionBundle(
    std::shared_ptr<RepartitionState> state = nullptr);

/// Convenience platform pre-wired with the Repartition bundle; subscribes
/// `recorder` to the simulator's bus.
class RepartitionPlatform : public platform::PlatformCore {
 public:
  RepartitionPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                      metrics::Recorder& recorder,
                      std::vector<platform::FunctionSpec> functions,
                      platform::PlatformConfig config);

  std::size_t reconfigurations() const { return state_->reconfigurations; }
  SimDuration reconfiguration_blackout() const {
    return state_->blackout_total;
  }

  /// Exposed for tests; see BestRepartitionFor.
  static gpu::MigPartition BestPartitionFor(Bytes needed_memory);

 private:
  RepartitionPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                      metrics::Recorder& recorder,
                      std::vector<platform::FunctionSpec> functions,
                      platform::PlatformConfig config,
                      std::shared_ptr<RepartitionState> state);

  std::shared_ptr<RepartitionState> state_;
};

}  // namespace fluidfaas::baselines
