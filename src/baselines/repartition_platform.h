// The road-not-taken baseline: solve fragmentation by *repartitioning* GPUs
// at runtime instead of pipelining around the fixed partition.
//
// The paper dismisses dynamic MIG reconfiguration because it takes minutes
// (§2.2, citing Miso); this platform implements it anyway so the trade-off
// is measurable. It schedules monolithically (best-fit, like INFless-MIG),
// and when a function cannot be placed on any free slice while a fully idle
// GPU exists, it reconfigures that GPU to the partition that best serves the
// stranded demand — paying the ReconfigCostModel blackout, during which the
// GPU's fresh slices are held by a sentinel binding.
//
// bench/ablation_reconfig.cpp races it against FluidFaaS: reconfiguration
// eventually rights the partition mix, but every correction costs minutes of
// capacity, which is exactly why FluidFaaS pipelines instead.
#pragma once

#include <unordered_set>
#include <vector>

#include "platform/platform.h"

namespace fluidfaas::baselines {

class RepartitionPlatform : public platform::Platform {
 public:
  RepartitionPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                      metrics::Recorder& recorder,
                      std::vector<platform::FunctionSpec> functions,
                      platform::PlatformConfig config);

  std::string name() const override { return "Repartition"; }

  std::size_t reconfigurations() const { return reconfigurations_; }
  SimDuration reconfiguration_blackout() const { return blackout_total_; }

  /// Pick the maximal A100 partition that best hosts a monolithic demand of
  /// `needed_memory`: most slices that fit it, then most total GPCs.
  /// Exposed for tests.
  static gpu::MigPartition BestPartitionFor(Bytes needed_memory);

 protected:
  bool Route(RequestId rid, FunctionId fn) override;
  void AutoscaleTick() override;

 private:
  /// Launch one best-fit monolithic instance if possible.
  platform::Instance* TryLaunch(const platform::FunctionSpec& spec);

  /// Begin reconfiguring for `spec`'s demand: use a fully idle GPU when one
  /// exists, otherwise pick a GPU whose instances can be drained and
  /// reconfigure it once it empties. Returns false when nothing can even be
  /// scheduled.
  bool TryReconfigure(const platform::FunctionSpec& spec);

  /// Execute the partition swap on an already-free GPU (blackout included).
  void ExecuteReconfig(GpuId gpu, Bytes needed_memory);

  gpu::ReconfigCostModel reconfig_;
  std::unordered_set<std::int32_t> reconfiguring_;  // GpuId values
  struct DrainTarget {
    GpuId gpu;
    Bytes needed_memory;
  };
  std::vector<DrainTarget> drain_targets_;
  std::size_t reconfigurations_ = 0;
  SimDuration blackout_total_ = 0;
};

}  // namespace fluidfaas::baselines
