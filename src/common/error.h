// Error handling helpers: checked assertions that survive release builds at
// subsystem boundaries, and an exception type carrying formatted context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fluidfaas {

/// Thrown on violated preconditions / invariants in library code. Simulation
/// code prefers throwing over aborting so tests can assert on failures.
class FfsError : public std::runtime_error {
 public:
  explicit FfsError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void RaiseCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "FFS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw FfsError(os.str());
}
}  // namespace detail

}  // namespace fluidfaas

/// Always-on invariant check (throws FfsError). Use at module boundaries and
/// for invariants whose violation would silently corrupt results.
#define FFS_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::fluidfaas::detail::RaiseCheckFailure(#expr, __FILE__, __LINE__, ""); \
    }                                                                  \
  } while (0)

#define FFS_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::fluidfaas::detail::RaiseCheckFailure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (0)
