// Error handling helpers: checked assertions that survive release builds at
// subsystem boundaries, and an exception type carrying formatted context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fluidfaas {

/// Machine-readable classification of a failure. Most checks raise the
/// generic code; subsystem boundaries that callers are expected to handle
/// programmatically (gpu::Cluster occupancy, placement commits) attach a
/// specific one so tests and recovery paths can dispatch on it instead of
/// parsing message strings.
enum class ErrorCode {
  kGeneric = 0,
  kSliceOccupied,   // Bind on a slice that already has an occupant
  kSliceFailed,     // Bind on a faulted slice before Repair
  kSliceRetired,    // slice id retired by a repartition
  kNotOccupant,     // Release by an instance that does not hold the slice
  kMalformedTrace,  // unparseable trace/dataset input (trace::AzureLoader)
};

/// Thrown on violated preconditions / invariants in library code. Simulation
/// code prefers throwing over aborting so tests can assert on failures.
class FfsError : public std::runtime_error {
 public:
  explicit FfsError(const std::string& what,
                    ErrorCode code = ErrorCode::kGeneric)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

inline const char* Name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric:       return "generic";
    case ErrorCode::kSliceOccupied: return "slice_occupied";
    case ErrorCode::kSliceFailed:   return "slice_failed";
    case ErrorCode::kSliceRetired:  return "slice_retired";
    case ErrorCode::kNotOccupant:   return "not_occupant";
    case ErrorCode::kMalformedTrace: return "malformed_trace";
  }
  return "unknown";
}

namespace detail {
[[noreturn]] inline void RaiseCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "FFS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw FfsError(os.str());
}
}  // namespace detail

/// Raise a typed FfsError with a formatted message.
[[noreturn]] inline void RaiseError(ErrorCode code, const std::string& msg) {
  throw FfsError(std::string(Name(code)) + ": " + msg, code);
}

}  // namespace fluidfaas

/// Always-on invariant check (throws FfsError). Use at module boundaries and
/// for invariants whose violation would silently corrupt results.
#define FFS_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::fluidfaas::detail::RaiseCheckFailure(#expr, __FILE__, __LINE__, ""); \
    }                                                                  \
  } while (0)

#define FFS_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::fluidfaas::detail::RaiseCheckFailure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (0)
