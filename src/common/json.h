// Minimal JSON emission (no parsing): a streaming writer with correct
// string escaping and structural validation via FFS_CHECK. Used by the
// harness's JSON report and the CLI's --json output.
#pragma once

#include <string>
#include <vector>

#include "common/error.h"

namespace fluidfaas {

class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Prefix();
    out_ += '{';
    stack_.push_back(Frame::kObject);
    first_.push_back(true);
    return *this;
  }
  JsonWriter& EndObject() {
    FFS_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "EndObject without matching BeginObject");
    FFS_CHECK_MSG(!key_pending_, "dangling key");
    out_ += '}';
    Pop();
    return *this;
  }
  JsonWriter& BeginArray() {
    Prefix();
    out_ += '[';
    stack_.push_back(Frame::kArray);
    first_.push_back(true);
    return *this;
  }
  JsonWriter& EndArray() {
    FFS_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kArray,
                  "EndArray without matching BeginArray");
    out_ += ']';
    Pop();
    return *this;
  }

  JsonWriter& Key(const std::string& k) {
    FFS_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                  "Key outside an object");
    FFS_CHECK_MSG(!key_pending_, "two keys in a row");
    Comma();
    AppendString(k);
    out_ += ':';
    key_pending_ = true;
    return *this;
  }

  JsonWriter& Value(const std::string& v) {
    Prefix();
    AppendString(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  JsonWriter& Value(double v) {
    Prefix();
    // JSON has no NaN/Inf; clamp to null.
    if (v != v || v > 1e308 || v < -1e308) {
      out_ += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.10g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& Value(std::int64_t v) {
    Prefix();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(std::size_t v) {
    return Value(static_cast<std::int64_t>(v));
  }
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(bool v) {
    Prefix();
    out_ += v ? "true" : "false";
    return *this;
  }
  /// Splice a pre-rendered JSON value verbatim (e.g. a nested document
  /// produced by another writer). The caller guarantees it is valid JSON.
  JsonWriter& Raw(const std::string& json) {
    Prefix();
    out_ += json;
    return *this;
  }

  /// Finish and return the document; the writer must be balanced.
  std::string Take() {
    FFS_CHECK_MSG(stack_.empty(), "unterminated object/array");
    return std::move(out_);
  }

 private:
  enum class Frame { kObject, kArray };

  void Comma() {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
  void Prefix() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (!stack_.empty()) {
      FFS_CHECK_MSG(stack_.back() == Frame::kArray,
                    "object member needs a Key()");
      Comma();
    }
  }
  void Pop() {
    stack_.pop_back();
    first_.pop_back();
  }
  void AppendString(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;
  bool key_pending_ = false;
};

}  // namespace fluidfaas
