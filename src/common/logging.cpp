#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace fluidfaas {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes the final write of each completed line; formatting happens
// outside the lock in each LogLine's own buffer.
std::mutex& SinkMutex() {
  static std::mutex m;
  return m;
}

thread_local const std::string* t_run_tag = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?    ";
  }
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

ScopedRunTag::ScopedRunTag(std::string label)
    : label_(std::move(label)), prev_(t_run_tag) {
  t_run_tag = &label_;
}

ScopedRunTag::~ScopedRunTag() { t_run_tag = prev_; }

const std::string* CurrentRunTag() { return t_run_tag; }

namespace detail {

LogLine::LogLine(LogLevel level, const char* tag) {
  const LogLevel threshold = GetLogLevel();
  enabled_ = level >= threshold && threshold != LogLevel::kOff;
  if (enabled_) {
    os_ << "[" << LevelName(level) << "]";
    if (t_run_tag != nullptr) os_ << "{" << *t_run_tag << "}";
    os_ << "[" << tag << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    os_ << '\n';
    const std::string line = os_.str();
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::cerr << line;
  }
}

}  // namespace detail
}  // namespace fluidfaas
