#include "common/logging.h"

namespace fluidfaas {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?    ";
  }
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace detail {

LogLine::LogLine(LogLevel level, const char* tag)
    : enabled_(level >= g_level && g_level != LogLevel::kOff) {
  if (enabled_) {
    os_ << "[" << LevelName(level) << "][" << tag << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    os_ << '\n';
    std::cerr << os_.str();
  }
}

}  // namespace detail
}  // namespace fluidfaas
