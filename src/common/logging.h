// Minimal leveled logger. Simulation components log placement / eviction /
// migration decisions at Debug level; benches run at Warn to keep output
// parseable.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace fluidfaas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold. Not thread-safe to mutate while worker
/// threads are logging; set it once at startup.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace fluidfaas

#define FFS_LOG_DEBUG(tag) ::fluidfaas::detail::LogLine(::fluidfaas::LogLevel::kDebug, tag)
#define FFS_LOG_INFO(tag) ::fluidfaas::detail::LogLine(::fluidfaas::LogLevel::kInfo, tag)
#define FFS_LOG_WARN(tag) ::fluidfaas::detail::LogLine(::fluidfaas::LogLevel::kWarn, tag)
#define FFS_LOG_ERROR(tag) ::fluidfaas::detail::LogLine(::fluidfaas::LogLevel::kError, tag)
