// Minimal leveled logger. Simulation components log placement / eviction /
// migration decisions at Debug level; benches run at Warn to keep output
// parseable.
//
// Concurrency: the level is atomic and every finished line is written to
// the sink under a mutex, so concurrent experiment runs (harness sweeps)
// never interleave mid-line. A run installs a thread-local run tag
// (ScopedRunTag) so lines from parallel runs stay attributable.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace fluidfaas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold. Atomic: safe to read from worker threads,
/// though the conventional pattern is still to set it once at startup.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// RAII: prefix every log line emitted by the current thread with
/// `{label}` until destruction. harness::RunContext installs one per run,
/// so a parallel sweep's interleaved lines remain attributable to their
/// grid cell. Nests; the innermost label wins.
class ScopedRunTag {
 public:
  explicit ScopedRunTag(std::string label);
  ~ScopedRunTag();
  ScopedRunTag(const ScopedRunTag&) = delete;
  ScopedRunTag& operator=(const ScopedRunTag&) = delete;

 private:
  std::string label_;
  const std::string* prev_;
};

/// The current thread's run tag, or nullptr outside any run.
const std::string* CurrentRunTag();

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace fluidfaas

#define FFS_LOG_DEBUG(tag) ::fluidfaas::detail::LogLine(::fluidfaas::LogLevel::kDebug, tag)
#define FFS_LOG_INFO(tag) ::fluidfaas::detail::LogLine(::fluidfaas::LogLevel::kInfo, tag)
#define FFS_LOG_WARN(tag) ::fluidfaas::detail::LogLine(::fluidfaas::LogLevel::kWarn, tag)
#define FFS_LOG_ERROR(tag) ::fluidfaas::detail::LogLine(::fluidfaas::LogLevel::kError, tag)
