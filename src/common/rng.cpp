#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace fluidfaas {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(Next()); }

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  FFS_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  FFS_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ull / span) * span;
  std::uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::Exponential(double rate) {
  FFS_CHECK(rate > 0.0);
  // 1 - U in (0, 1] so log() never sees zero.
  return -std::log(1.0 - NextDouble()) / rate;
}

double Rng::Normal(double mean, double stddev) {
  // Box–Muller; draw both uniforms every call (no cached spare) so the
  // consumed stream length is deterministic per call site.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Pareto(double xm, double alpha) {
  FFS_CHECK(xm > 0.0 && alpha > 0.0);
  double u = 1.0 - NextDouble();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

}  // namespace fluidfaas
