// Deterministic pseudo-random number generation.
//
// Reproducibility is a hard requirement (every figure in EXPERIMENTS.md must
// regenerate bit-identically), so all stochastic behaviour flows through
// explicitly seeded generators rather than std::random_device.
//
// Rng implements xoshiro256** (Blackman & Vigna) seeded via splitmix64. It
// satisfies the UniformRandomBitGenerator concept, but the distribution
// helpers below are hand-rolled so that results do not depend on the standard
// library's (implementation-defined) distribution algorithms.
#pragma once

#include <array>
#include <cstdint>

namespace fluidfaas {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t SplitMix64(std::uint64_t& state);

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return Next(); }
  std::uint64_t Next();

  /// Derive an independent child stream; used to give each simulated
  /// function / arrival process its own stream so adding one does not
  /// perturb the others.
  Rng Fork();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given rate (events per unit); mean = 1/rate.
  double Exponential(double rate);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double Normal(double mean, double stddev);

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double LogNormal(double mu, double sigma);

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed rates).
  double Pareto(double xm, double alpha);

  /// Bernoulli trial.
  bool Chance(double p);

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace fluidfaas
