#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fluidfaas {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  if (count_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

double CoefficientOfVariation(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.Add(x);
  return s.cv();
}

double Percentile(std::vector<double> xs, double q) {
  FFS_CHECK(!xs.empty());
  FFS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double rank = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

std::vector<double> Percentiles(std::vector<double> xs,
                                const std::vector<double>& qs) {
  FFS_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    FFS_CHECK(q >= 0.0 && q <= 1.0);
    const double rank = q * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    out.push_back(xs[lo] + frac * (xs[hi] - xs[lo]));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  FFS_CHECK(hi > lo);
  FFS_CHECK(bins > 0);
}

void Histogram::Add(double x) {
  double idx = (x - lo_) / width_;
  std::size_t bin;
  if (idx < 0) {
    bin = 0;
  } else if (idx >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>(idx);
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::vector<double> Histogram::Cdf() const {
  std::vector<double> cdf(counts_.size(), 0.0);
  std::size_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    cdf[i] = total_ ? static_cast<double>(cum) / static_cast<double>(total_)
                    : 0.0;
  }
  return cdf;
}

void TimeWeightedSignal::Record(SimTime t, double value) {
  FFS_CHECK_MSG(points_.empty() || t >= points_.back().first,
                "TimeWeightedSignal records must be time-ordered");
  if (!points_.empty() && points_.back().first == t) {
    points_.back().second = value;  // last write at an instant wins
    return;
  }
  if (!points_.empty() && points_.back().second == value) {
    return;  // no change; keep the series compact
  }
  points_.emplace_back(t, value);
}

void TimeWeightedSignal::Close(SimTime end) {
  if (points_.empty()) {
    points_.emplace_back(end, 0.0);
    return;
  }
  FFS_CHECK(end >= points_.back().first);
  if (points_.back().first != end) {
    points_.emplace_back(end, points_.back().second);
  }
}

double TimeWeightedSignal::ValueAt(SimTime t) const {
  if (points_.empty() || t < points_.front().first) return 0.0;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime lhs, const auto& p) { return lhs < p.first; });
  return std::prev(it)->second;
}

double TimeWeightedSignal::MeanOver(SimTime begin, SimTime end) const {
  if (end <= begin || points_.empty()) return 0.0;
  double integral = 0.0;
  SimTime cursor = begin;
  double value = ValueAt(begin);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), begin,
      [](SimTime lhs, const auto& p) { return lhs < p.first; });
  for (; it != points_.end() && it->first < end; ++it) {
    integral += value * static_cast<double>(it->first - cursor);
    cursor = it->first;
    value = it->second;
  }
  integral += value * static_cast<double>(end - cursor);
  return integral / static_cast<double>(end - begin);
}

double TimeWeightedSignal::FractionAtOrBelow(double threshold, SimTime begin,
                                             SimTime end) const {
  if (end <= begin) return 0.0;
  SimDuration below = 0;
  SimTime cursor = begin;
  double value = ValueAt(begin);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), begin,
      [](SimTime lhs, const auto& p) { return lhs < p.first; });
  for (; it != points_.end() && it->first < end; ++it) {
    if (value <= threshold) below += it->first - cursor;
    cursor = it->first;
    value = it->second;
  }
  if (value <= threshold) below += end - cursor;
  return static_cast<double>(below) / static_cast<double>(end - begin);
}

std::vector<std::pair<SimTime, double>> TimeWeightedSignal::Sample(
    SimTime begin, SimTime end, SimDuration period) const {
  FFS_CHECK(period > 0);
  std::vector<std::pair<SimTime, double>> out;
  for (SimTime t = begin; t <= end; t += period) {
    out.emplace_back(t, ValueAt(t));
  }
  return out;
}

}  // namespace fluidfaas
