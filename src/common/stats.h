// Summary-statistics utilities used throughout the metrics pipeline:
//  * RunningStats    — streaming mean/variance (Welford), min/max, CV.
//  * Percentiles     — exact quantiles over a stored sample vector.
//  * Histogram       — fixed-width bins for latency distributions.
//  * TimeWeightedMean— integral of a piecewise-constant signal over time,
//                      used for utilization timelines.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace fluidfaas {

/// Streaming mean / variance / extremes via Welford's algorithm.
/// Numerically stable; O(1) per observation.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Coefficient of variation: stddev / mean (Eq. 1 of the paper).
  /// Returns 0 for empty or zero-mean series.
  double cv() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Coefficient of variation of a sample (population stddev / mean).
double CoefficientOfVariation(const std::vector<double>& xs);

/// Exact quantile with linear interpolation between closest ranks.
/// `q` in [0, 1]. The input is copied and sorted; O(n log n).
double Percentile(std::vector<double> xs, double q);

/// Several quantiles of the same sample, sorting only once.
std::vector<double> Percentiles(std::vector<double> xs,
                                const std::vector<double>& qs);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first / last bin so mass is never lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& counts() const { return counts_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Empirical CDF evaluated at each bin upper edge.
  std::vector<double> Cdf() const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Integrates a piecewise-constant, right-continuous signal over simulated
/// time. Record(t, v) says "the value becomes v at time t"; the mean over
/// [t0, t_last] and the fraction of time spent at/below thresholds are then
/// exact.
class TimeWeightedSignal {
 public:
  void Record(SimTime t, double value);

  /// Finalize at `end`, extending the last value to that point.
  void Close(SimTime end);

  double MeanOver(SimTime begin, SimTime end) const;

  /// Fraction of [begin, end] during which the value was <= threshold.
  double FractionAtOrBelow(double threshold, SimTime begin, SimTime end) const;

  /// Value of the signal at time t (last recorded value at or before t).
  double ValueAt(SimTime t) const;

  /// Sampled series (t, value) at fixed period over [begin, end]; used by
  /// benches that print utilization timelines.
  std::vector<std::pair<SimTime, double>> Sample(SimTime begin, SimTime end,
                                                 SimDuration period) const;

  const std::vector<std::pair<SimTime, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<SimTime, double>> points_;  // (time, value), sorted
};

}  // namespace fluidfaas
