// Core scalar types shared by every FluidFaaS subsystem.
//
// All simulation timekeeping uses integral microseconds (`SimTime`) so that
// event ordering is exact and runs are bit-reproducible; floating point is
// reserved for derived metrics (rates, utilization fractions).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace fluidfaas {

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time in microseconds. Same representation as SimTime;
/// kept as a separate alias to document intent at interfaces.
using SimDuration = std::int64_t;

inline constexpr SimTime kTimeZero = 0;
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::max();

/// Convenience literal-style constructors.
constexpr SimDuration Micros(std::int64_t us) { return us; }
constexpr SimDuration Millis(double ms) {
  return static_cast<SimDuration>(ms * 1'000.0);
}
constexpr SimDuration Seconds(double s) {
  return static_cast<SimDuration>(s * 1'000'000.0);
}
constexpr SimDuration Minutes(double m) { return Seconds(m * 60.0); }

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / 1'000'000.0;
}
constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / 1'000.0;
}

/// Strongly-typed integer identifiers. The tag parameter prevents, e.g.,
/// passing a GPU id where a slice id is expected.
template <typename Tag>
struct Id {
  std::int32_t value = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int32_t v) : value(v) {}

  constexpr bool valid() const { return value >= 0; }
  constexpr auto operator<=>(const Id&) const = default;
};

struct GpuTag {};
struct NodeTag {};
struct SliceTag {};
struct FunctionTag {};
struct InstanceTag {};
struct RequestTag {};
struct ComponentTag {};

using GpuId = Id<GpuTag>;
using NodeId = Id<NodeTag>;
using SliceId = Id<SliceTag>;
using FunctionId = Id<FunctionTag>;
using InstanceId = Id<InstanceTag>;
using RequestId = Id<RequestTag>;
using ComponentId = Id<ComponentTag>;

template <typename Tag>
std::string ToString(Id<Tag> id) {
  return std::to_string(id.value);
}

/// Bytes, used for model weights, activation tensors, and MIG memory.
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes MiB(double m) { return static_cast<Bytes>(m * kMiB); }
constexpr Bytes GiB(double g) { return static_cast<Bytes>(g * kGiB); }

}  // namespace fluidfaas

// Hash support so Id types can key unordered containers.
namespace std {
template <typename Tag>
struct hash<fluidfaas::Id<Tag>> {
  size_t operator()(const fluidfaas::Id<Tag>& id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};
}  // namespace std
