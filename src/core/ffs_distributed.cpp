#include "core/ffs_distributed.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "core/partitioner.h"
#include "core/pipeline.h"
#include "gpu/cluster_view.h"
#include "platform/placement.h"
#include "sim/events.h"

namespace fluidfaas::core {

using platform::Instance;
using platform::InstanceState;

void DistState::EnsureSized(const platform::PlatformCore& core) {
  if (!invokers.empty()) return;
  const gpu::Cluster& cluster = core.cluster();
  invokers.resize(static_cast<std::size_t>(cluster.num_nodes()));
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    invokers[static_cast<std::size_t>(n)].node = NodeId(n);
    invokers[static_cast<std::size_t>(n)].per_fn.resize(
        core.functions().size());
  }
}

DistState::FnState& DistState::state(Invoker& inv, FunctionId fn) {
  FFS_CHECK(fn.valid() &&
            static_cast<std::size_t>(fn.value) < inv.per_fn.size());
  return inv.per_fn[static_cast<std::size_t>(fn.value)];
}

void DistState::PruneDead(FnState& st) {
  std::erase_if(st.eh, [](Instance* i) {
    return i->state() == InstanceState::kRetired ||
           i->state() == InstanceState::kDraining;
  });
  if (st.ts != nullptr && st.ts->state() == InstanceState::kRetired) {
    st.ts = nullptr;
  }
}

platform::SchedulerCounters DistState::counters() const {
  platform::SchedulerCounters c;
  c.evictions = evictions;
  c.pipelines_launched = pipelines_launched;
  return c;
}

int DistState::ChooseInvoker(platform::PlatformCore& core, FunctionId fn,
                             SimTime now) {
  // Prefer the invoker whose live instances of `fn` promise the earliest
  // completion (request affinity keeps models warm); break ties — and the
  // no-instances case — with the invoker holding the most free GPCs.
  int best = -1;
  SimTime best_est = kTimeInfinity;
  for (std::size_t i = 0; i < invokers.size(); ++i) {
    FnState& st = state(invokers[i], fn);
    PruneDead(st);
    for (Instance* inst : st.eh) {
      if (inst->CanAdmit()) {
        best_est = std::min(best_est, inst->EstimateCompletion(now));
        if (best_est == inst->EstimateCompletion(now)) {
          best = static_cast<int>(i);
        }
      }
    }
    if (st.ts != nullptr && st.ts->CanAdmit() &&
        st.ts->EstimateCompletion(now) < best_est) {
      best_est = st.ts->EstimateCompletion(now);
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) return best;

  int most_free = 0;
  int free_gpcs = -1;
  for (std::size_t i = 0; i < invokers.size(); ++i) {
    int g = 0;
    for (SliceId sid : core.cluster().FreeSlicesOnNode(invokers[i].node)) {
      g += core.cluster().slice(sid).gpcs();
    }
    if (g > free_gpcs) {
      free_gpcs = g;
      most_free = static_cast<int>(i);
    }
  }
  return most_free;
}

platform::Instance* DistState::LaunchExclusiveOn(
    platform::PlatformCore& core, Invoker& inv,
    const platform::FunctionSpec& spec) {
  // Optimistic concurrency: plan on a snapshot, commit, and on a conflict
  // abort (another invoker took the slice between snapshot and commit)
  // re-plan from fresh state instead of pre-locking anything.
  for (int attempt = 0; attempt < 2; ++attempt) {
    gpu::ClusterView view(core.cluster());
    std::optional<PipelinePlan> plan;
    if (core.config().enable_pipelines) {
      for (const PipelineCandidate& cand : spec.ranked_pipelines) {
        plan = TryPlanOnNode(spec.dag, cand, view, inv.node,
                             core.config().transfer);
        if (plan) break;
      }
    } else {
      for (SliceId sid : view.FreeSlicesOnNode(inv.node)) {
        if (view.slice(sid).memory() < spec.total_memory) continue;
        plan = MonolithicPlanOnSlice(spec.dag, view, sid);
        if (plan) break;
      }
    }
    if (!plan) return nullptr;
    const bool pipelined = plan->num_stages() > 1;
    const platform::CommitResult result = core.Commit(
        platform::SpawnPlan(spec.id, std::move(*plan), core.IsWarm(spec.id)));
    if (!result.ok()) continue;  // lost the race; take a fresh snapshot
    if (pipelined) ++pipelines_launched;
    Instance* inst = result.spawned.front();
    state(inv, spec.id).eh.push_back(inst);
    return inst;
  }
  return nullptr;
}

platform::Instance* DistState::EnsureTsResidentOn(platform::PlatformCore& core,
                                                  Invoker& inv,
                                                  FunctionId fn) {
  FnState& st = state(inv, fn);
  FFS_CHECK(st.ts == nullptr);
  const platform::FunctionSpec& spec = core.function(fn);

  for (int attempt = 0; attempt < 2; ++attempt) {
    gpu::ClusterView view(core.cluster());
    platform::PlacementPlan txn;

    // Smallest free slice on this node.
    std::optional<SliceId> sid;
    for (SliceId cand : view.FreeSlicesOnNode(inv.node)) {
      const auto& s = view.slice(cand);
      if (s.memory() < spec.total_memory) continue;
      if (!sid || view.slice(*sid).gpcs() > s.gpcs()) sid = cand;
    }
    SimDuration evict_cost = 0;
    FunctionId victim;
    InstanceId victim_iid;
    if (!sid) {
      // LRU idle resident TS instance on THIS invoker.
      SimTime oldest = kTimeInfinity;
      for (std::size_t f = 0; f < inv.per_fn.size(); ++f) {
        FnState& other = inv.per_fn[f];
        if (other.ts == nullptr || !other.ts->Idle()) continue;
        if (FunctionId(static_cast<std::int32_t>(f)) == fn) continue;
        const auto& b = other.ts->plan().stages.front();
        if (view.slice(b.slice).memory() < spec.total_memory) continue;
        if (other.ts->last_used() < oldest) {
          oldest = other.ts->last_used();
          victim = FunctionId(static_cast<std::int32_t>(f));
        }
      }
      if (!victim.valid()) return nullptr;
      FnState& vic = state(inv, victim);
      const SliceId freed = vic.ts->plan().stages.front().slice;
      victim_iid = vic.ts->id();
      evict_cost = core.config().load.Evict(vic.ts->plan().TotalWeights());
      platform::AddEvict(txn, view, victim_iid, vic.ts->plan());
      sid = freed;
    }
    auto plan = MonolithicPlanOnSlice(spec.dag, view, *sid);
    if (!plan) return nullptr;
    platform::AddSpawn(txn, view, fn, std::move(*plan), core.IsWarm(fn),
                       evict_cost);
    const platform::CommitResult result = core.Commit(txn);
    if (!result.ok()) continue;  // conflict: re-plan from live state

    if (victim.valid()) {
      state(inv, victim).ts = nullptr;
      ++evictions;
      core.bus().Publish(sim::SchedulerTransition{
          sim::TransitionKind::kEviction, victim, victim_iid,
          core.simulator().Now()});
    }
    Instance* inst = result.spawned.front();
    st.ts = inst;
    st.has_ts = true;
    st.ts_last_used = core.simulator().Now();
    return inst;
  }
  return nullptr;
}

bool DistState::RouteOn(platform::PlatformCore& core, Invoker& inv,
                        RequestId rid, FunctionId fn) {
  FnState& st = state(inv, fn);
  PruneDead(st);
  const platform::FunctionSpec& spec = core.function(fn);
  const SimTime now = core.simulator().Now();
  const SimTime deadline = core.DeadlineOf(rid);

  std::vector<Instance*> hot;
  for (Instance* inst : st.eh) {
    if (inst->CanAdmit()) hot.push_back(inst);
  }
  std::sort(hot.begin(), hot.end(), [](Instance* a, Instance* b) {
    if (a->ServiceLatency() != b->ServiceLatency())
      return a->ServiceLatency() < b->ServiceLatency();
    return a->id() < b->id();
  });
  for (Instance* inst : hot) {
    if (inst->EstimateCompletion(now) <= deadline) {
      inst->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
      st.ts_last_used = now;
      return true;
    }
  }
  if (core.config().enable_time_sharing) {
    if (st.ts != nullptr && st.ts->CanAdmit()) {
      if (st.ts->EstimateCompletion(now) <= deadline || hot.empty()) {
        st.ts->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
        st.ts_last_used = now;
        return true;
      }
    } else if (st.ts == nullptr) {
      Instance* inst = EnsureTsResidentOn(core, inv, fn);
      if (inst != nullptr) {
        inst->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
        st.ts_last_used = now;
        return true;
      }
    }
  } else if (hot.empty()) {
    Instance* inst = LaunchExclusiveOn(core, inv, spec);
    if (inst != nullptr) {
      inst->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
      return true;
    }
  }
  Instance* best = nullptr;
  SimTime best_est = kTimeInfinity;
  for (Instance* inst : st.eh) {
    if (!inst->CanAdmit()) continue;
    const SimTime est = inst->EstimateCompletion(now);
    if (est < best_est) {
      best_est = est;
      best = inst;
    }
  }
  if (st.ts != nullptr && st.ts->CanAdmit() &&
      st.ts->EstimateCompletion(now) < best_est) {
    best = st.ts;
  }
  if (best != nullptr && best->AdmitWithinBound(now, deadline, spec.slo)) {
    best->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
    st.ts_last_used = now;
    return true;
  }
  return false;
}

void DistRouting::Attach(platform::PlatformCore& core) {
  st_->EnsureSized(core);
}

bool DistRouting::Route(platform::PlatformCore& core, RequestId rid,
                        FunctionId fn) {
  const SimTime now = core.simulator().Now();
  const int chosen = st_->ChooseInvoker(core, fn, now);
  DistState::Invoker& inv = st_->invoker(chosen);
  st_->state(inv, fn).arrivals_this_tick += 1;
  if (st_->RouteOn(core, inv, rid, fn)) {
    inv.routed += 1;
    return true;
  }
  // Spillover: any other invoker that will take it.
  for (std::size_t i = 0; i < st_->invokers.size(); ++i) {
    if (static_cast<int>(i) == chosen) continue;
    if (st_->RouteOn(core, st_->invokers[i], rid, fn)) {
      st_->invokers[i].routed += 1;
      return true;
    }
  }
  return false;
}

void DistScaling::Attach(platform::PlatformCore& core) {
  st_->EnsureSized(core);
}

void DistScaling::OnCompleted(platform::PlatformCore& core, RequestId,
                              FunctionId fn) {
  const SimTime now = core.simulator().Now();
  for (DistState::Invoker& inv : st_->invokers) {
    st_->state(inv, fn).ts_last_used =
        std::max(st_->state(inv, fn).ts_last_used, now);
    for (Instance* inst : core.InstancesOf(fn)) {
      if (inst->state() == InstanceState::kDraining && inst->Idle()) {
        core.RetireInstance(inst);
      }
    }
  }
}

void DistScaling::Tick(platform::PlatformCore& core) {
  const SimTime now = core.simulator().Now();
  const double period_s = ToSeconds(core.config().autoscale_period);

  for (DistState::Invoker& inv : st_->invokers) {
    for (std::size_t f = 0; f < inv.per_fn.size(); ++f) {
      const FunctionId fn(static_cast<std::int32_t>(f));
      DistState::FnState& st = inv.per_fn[f];
      st_->PruneDead(st);
      const platform::FunctionSpec& spec = core.function(fn);

      // Invoker-local arrival estimate.
      st.arrival_ewma =
          0.5 * st.arrival_ewma + 0.5 * (st.arrivals_this_tick / period_s);
      if (st.arrival_ewma < 1e-6) st.arrival_ewma = 0.0;
      st.arrivals_this_tick = 0;

      // Promotion (re-branding, as in the centralized scheduler).
      if (st.ts != nullptr &&
          core.UtilizationOf(st.ts) > core.config().hot_threshold) {
        const InstanceId iid = st.ts->id();
        st.eh.push_back(st.ts);
        st.ts = nullptr;
        st.has_ts = false;
        core.bus().Publish(sim::SchedulerTransition{
            sim::TransitionKind::kPromotion, fn, iid, now});
      }

      // Local scale-up.
      double capacity = 0.0;
      for (Instance* inst : st.eh) {
        if (inst->CanAdmit()) capacity += inst->CapacityRps();
      }
      int guard = 0;
      while (st.arrival_ewma >
                 core.config().scaleup_load_factor * capacity &&
             guard++ < 8) {
        Instance* inst = st_->LaunchExclusiveOn(core, inv, spec);
        if (inst == nullptr) break;
        capacity += inst->CapacityRps();
      }

      // Scale-down / demotion.
      for (Instance* inst : std::vector<Instance*>(st.eh)) {
        if (inst->state() != InstanceState::kReady || !inst->Idle()) continue;
        if (now - inst->last_used() < core.config().util_window) continue;
        if (core.UtilizationOf(inst) >= core.config().hot_threshold) continue;
        if (core.config().enable_time_sharing && !st.has_ts &&
            st.eh.size() == 1 && !inst->IsPipelined()) {
          std::erase(st.eh, inst);
          st.ts = inst;
          st.has_ts = true;
          st.ts_last_used = inst->last_used();
          core.bus().Publish(sim::SchedulerTransition{
              sim::TransitionKind::kDemotion, fn, inst->id(), now});
        } else if (st.eh.size() > 1 ||
                   (core.config().enable_time_sharing && st.has_ts) ||
                   inst->IsPipelined()) {
          std::erase(st.eh, inst);
          core.RetireInstance(inst);
          if (core.config().enable_time_sharing && !st.has_ts &&
              st.eh.empty()) {
            st.has_ts = true;  // warm entry
            st.ts_last_used = inst->last_used();
          }
        } else if (!core.config().enable_time_sharing &&
                   now - inst->last_used() >=
                       core.config().exclusive_keepalive) {
          std::erase(st.eh, inst);
          core.RetireInstance(inst);
        }
      }

      // Cold transition.
      if (st.has_ts && now - st.ts_last_used > core.config().warm_timeout) {
        if (st.ts != nullptr && st.ts->Idle()) {
          core.RetireInstance(st.ts);
          st.ts = nullptr;
        }
        if (st.ts == nullptr) st.has_ts = false;
      }
    }
  }
}

platform::PolicyBundle MakeDistributedBundle(std::shared_ptr<DistState> state) {
  if (!state) state = std::make_shared<DistState>();
  platform::PolicyBundle bundle;
  bundle.name = "FluidFaaS-dist";
  bundle.routing = std::make_unique<DistRouting>(state);
  bundle.scaling = std::make_unique<DistScaling>(state);
  bundle.counters = [state] { return state->counters(); };
  return bundle;
}

DistributedFluidFaas::DistributedFluidFaas(
    sim::Simulator& sim, gpu::Cluster& cluster, metrics::Recorder& recorder,
    std::vector<platform::FunctionSpec> functions,
    platform::PlatformConfig config)
    : DistributedFluidFaas(sim, cluster, recorder, std::move(functions),
                           config, std::make_shared<DistState>()) {}

DistributedFluidFaas::DistributedFluidFaas(
    sim::Simulator& sim, gpu::Cluster& cluster, metrics::Recorder& recorder,
    std::vector<platform::FunctionSpec> functions,
    platform::PlatformConfig config, std::shared_ptr<DistState> state)
    : PlatformCore(sim, cluster, std::move(functions), config,
                   MakeDistributedBundle(state)),
      state_(std::move(state)) {
  recorder.SubscribeTo(sim.bus());
}

std::vector<std::size_t> DistributedFluidFaas::RoutedPerInvoker() const {
  std::vector<std::size_t> out;
  for (const DistState::Invoker& inv : state_->invokers) {
    out.push_back(inv.routed);
  }
  return out;
}

}  // namespace fluidfaas::core
