#include "core/ffs_distributed.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"
#include "core/partitioner.h"
#include "core/pipeline.h"

namespace fluidfaas::core {

using platform::Instance;
using platform::InstanceState;

DistributedFluidFaas::DistributedFluidFaas(
    sim::Simulator& sim, gpu::Cluster& cluster, metrics::Recorder& recorder,
    std::vector<platform::FunctionSpec> functions,
    platform::PlatformConfig config)
    : Platform(sim, cluster, recorder, std::move(functions), config) {
  invokers_.resize(static_cast<std::size_t>(cluster.num_nodes()));
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    invokers_[static_cast<std::size_t>(n)].node = NodeId(n);
    invokers_[static_cast<std::size_t>(n)].per_fn.resize(
        this->functions().size());
  }
}

DistributedFluidFaas::FnState& DistributedFluidFaas::state(Invoker& inv,
                                                           FunctionId fn) {
  FFS_CHECK(fn.valid() &&
            static_cast<std::size_t>(fn.value) < inv.per_fn.size());
  return inv.per_fn[static_cast<std::size_t>(fn.value)];
}

void DistributedFluidFaas::PruneDead(FnState& st) {
  std::erase_if(st.eh, [](Instance* i) {
    return i->state() == InstanceState::kRetired ||
           i->state() == InstanceState::kDraining;
  });
  if (st.ts != nullptr && st.ts->state() == InstanceState::kRetired) {
    st.ts = nullptr;
  }
}

std::vector<std::size_t> DistributedFluidFaas::RoutedPerInvoker() const {
  std::vector<std::size_t> out;
  for (const Invoker& inv : invokers_) out.push_back(inv.routed);
  return out;
}

int DistributedFluidFaas::ChooseInvoker(FunctionId fn, SimTime now) {
  // Prefer the invoker whose live instances of `fn` promise the earliest
  // completion (request affinity keeps models warm); break ties — and the
  // no-instances case — with the invoker holding the most free GPCs.
  int best = -1;
  SimTime best_est = kTimeInfinity;
  for (std::size_t i = 0; i < invokers_.size(); ++i) {
    FnState& st = state(invokers_[i], fn);
    PruneDead(st);
    for (Instance* inst : st.eh) {
      if (inst->CanAdmit()) {
        best_est = std::min(best_est, inst->EstimateCompletion(now));
        if (best_est == inst->EstimateCompletion(now)) {
          best = static_cast<int>(i);
        }
      }
    }
    if (st.ts != nullptr && st.ts->CanAdmit() &&
        st.ts->EstimateCompletion(now) < best_est) {
      best_est = st.ts->EstimateCompletion(now);
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) return best;

  int most_free = 0;
  int free_gpcs = -1;
  for (std::size_t i = 0; i < invokers_.size(); ++i) {
    int g = 0;
    for (SliceId sid : cluster().FreeSlicesOnNode(invokers_[i].node)) {
      g += cluster().slice(sid).gpcs();
    }
    if (g > free_gpcs) {
      free_gpcs = g;
      most_free = static_cast<int>(i);
    }
  }
  return most_free;
}

platform::Instance* DistributedFluidFaas::LaunchExclusiveOn(
    Invoker& inv, const platform::FunctionSpec& spec) {
  std::optional<PipelinePlan> plan;
  if (config().enable_pipelines) {
    for (const PipelineCandidate& cand : spec.ranked_pipelines) {
      plan = TryPlanOnNode(spec.dag, cand, cluster(), inv.node,
                           config().transfer);
      if (plan) break;
    }
  } else {
    for (SliceId sid : cluster().FreeSlicesOnNode(inv.node)) {
      if (cluster().slice(sid).memory() < spec.total_memory) continue;
      plan = MonolithicPlanOnSlice(spec.dag, cluster(), sid);
      if (plan) break;
    }
  }
  if (!plan) return nullptr;
  if (plan->num_stages() > 1) ++pipelines_launched_;
  Instance* inst = LaunchInstance(spec, std::move(*plan), IsWarm(spec.id));
  state(inv, spec.id).eh.push_back(inst);
  return inst;
}

platform::Instance* DistributedFluidFaas::EnsureTsResidentOn(Invoker& inv,
                                                             FunctionId fn) {
  FnState& st = state(inv, fn);
  FFS_CHECK(st.ts == nullptr);
  const platform::FunctionSpec& spec = function(fn);

  // Smallest free slice on this node.
  std::optional<SliceId> sid;
  for (SliceId cand : cluster().FreeSlicesOnNode(inv.node)) {
    const auto& s = cluster().slice(cand);
    if (s.memory() < spec.total_memory) continue;
    if (!sid || cluster().slice(*sid).gpcs() > s.gpcs()) sid = cand;
  }
  SimDuration evict_cost = 0;
  if (!sid) {
    // LRU idle resident TS instance on THIS invoker.
    FunctionId victim;
    SimTime oldest = kTimeInfinity;
    for (std::size_t f = 0; f < inv.per_fn.size(); ++f) {
      FnState& other = inv.per_fn[f];
      if (other.ts == nullptr || !other.ts->Idle()) continue;
      if (FunctionId(static_cast<std::int32_t>(f)) == fn) continue;
      const auto& b = other.ts->plan().stages.front();
      if (cluster().slice(b.slice).memory() < spec.total_memory) continue;
      if (other.ts->last_used() < oldest) {
        oldest = other.ts->last_used();
        victim = FunctionId(static_cast<std::int32_t>(f));
      }
    }
    if (!victim.valid()) return nullptr;
    FnState& vic = state(inv, victim);
    const SliceId freed = vic.ts->plan().stages.front().slice;
    evict_cost = config().load.Evict(vic.ts->plan().TotalWeights());
    RetireInstance(vic.ts);
    vic.ts = nullptr;
    ++evictions_;
    sid = freed;
  }
  auto plan = MonolithicPlanOnSlice(spec.dag, cluster(), *sid);
  if (!plan) return nullptr;
  Instance* inst =
      LaunchInstance(spec, std::move(*plan), IsWarm(fn), evict_cost);
  st.ts = inst;
  st.has_ts = true;
  st.ts_last_used = simulator().Now();
  return inst;
}

bool DistributedFluidFaas::RouteOn(Invoker& inv, RequestId rid,
                                   FunctionId fn) {
  FnState& st = state(inv, fn);
  PruneDead(st);
  const platform::FunctionSpec& spec = function(fn);
  const SimTime now = simulator().Now();
  const SimTime deadline = recorder().record(rid).deadline;

  std::vector<Instance*> hot;
  for (Instance* inst : st.eh) {
    if (inst->CanAdmit()) hot.push_back(inst);
  }
  std::sort(hot.begin(), hot.end(), [](Instance* a, Instance* b) {
    if (a->ServiceLatency() != b->ServiceLatency())
      return a->ServiceLatency() < b->ServiceLatency();
    return a->id() < b->id();
  });
  for (Instance* inst : hot) {
    if (inst->EstimateCompletion(now) <= deadline) {
      inst->Enqueue(rid, JitterOf(rid));
      st.ts_last_used = now;
      return true;
    }
  }
  if (config().enable_time_sharing) {
    if (st.ts != nullptr && st.ts->CanAdmit()) {
      if (st.ts->EstimateCompletion(now) <= deadline || hot.empty()) {
        st.ts->Enqueue(rid, JitterOf(rid));
        st.ts_last_used = now;
        return true;
      }
    } else if (st.ts == nullptr) {
      Instance* inst = EnsureTsResidentOn(inv, fn);
      if (inst != nullptr) {
        inst->Enqueue(rid, JitterOf(rid));
        st.ts_last_used = now;
        return true;
      }
    }
  } else if (hot.empty()) {
    Instance* inst = LaunchExclusiveOn(inv, spec);
    if (inst != nullptr) {
      inst->Enqueue(rid, JitterOf(rid));
      return true;
    }
  }
  Instance* best = nullptr;
  SimTime best_est = kTimeInfinity;
  for (Instance* inst : st.eh) {
    if (!inst->CanAdmit()) continue;
    const SimTime est = inst->EstimateCompletion(now);
    if (est < best_est) {
      best_est = est;
      best = inst;
    }
  }
  if (st.ts != nullptr && st.ts->CanAdmit() &&
      st.ts->EstimateCompletion(now) < best_est) {
    best = st.ts;
  }
  if (best != nullptr && best->AdmitWithinBound(now, deadline, spec.slo)) {
    best->Enqueue(rid, JitterOf(rid));
    st.ts_last_used = now;
    return true;
  }
  return false;
}

bool DistributedFluidFaas::Route(RequestId rid, FunctionId fn) {
  const SimTime now = simulator().Now();
  const int chosen = ChooseInvoker(fn, now);
  Invoker& inv = invoker(chosen);
  state(inv, fn).arrivals_this_tick += 1;
  if (RouteOn(inv, rid, fn)) {
    inv.routed += 1;
    return true;
  }
  // Spillover: any other invoker that will take it.
  for (std::size_t i = 0; i < invokers_.size(); ++i) {
    if (static_cast<int>(i) == chosen) continue;
    if (RouteOn(invokers_[i], rid, fn)) {
      invokers_[i].routed += 1;
      return true;
    }
  }
  return false;
}

void DistributedFluidFaas::OnCompleted(RequestId, FunctionId fn) {
  const SimTime now = simulator().Now();
  for (Invoker& inv : invokers_) {
    state(inv, fn).ts_last_used =
        std::max(state(inv, fn).ts_last_used, now);
    for (Instance* inst : InstancesOf(fn)) {
      if (inst->state() == InstanceState::kDraining && inst->Idle()) {
        RetireInstance(inst);
      }
    }
  }
}

void DistributedFluidFaas::AutoscaleTick() {
  const SimTime now = simulator().Now();
  const double period_s = ToSeconds(config().autoscale_period);

  for (Invoker& inv : invokers_) {
    for (std::size_t f = 0; f < inv.per_fn.size(); ++f) {
      const FunctionId fn(static_cast<std::int32_t>(f));
      FnState& st = inv.per_fn[f];
      PruneDead(st);
      const platform::FunctionSpec& spec = function(fn);

      // Invoker-local arrival estimate.
      st.arrival_ewma =
          0.5 * st.arrival_ewma + 0.5 * (st.arrivals_this_tick / period_s);
      if (st.arrival_ewma < 1e-6) st.arrival_ewma = 0.0;
      st.arrivals_this_tick = 0;

      // Promotion (re-branding, as in the centralized scheduler).
      if (st.ts != nullptr &&
          UtilizationOf(st.ts) > config().hot_threshold) {
        st.eh.push_back(st.ts);
        st.ts = nullptr;
        st.has_ts = false;
      }

      // Local scale-up.
      double capacity = 0.0;
      for (Instance* inst : st.eh) {
        if (inst->CanAdmit()) capacity += inst->CapacityRps();
      }
      int guard = 0;
      while (st.arrival_ewma > config().scaleup_load_factor * capacity &&
             guard++ < 8) {
        Instance* inst = LaunchExclusiveOn(inv, spec);
        if (inst == nullptr) break;
        capacity += inst->CapacityRps();
      }

      // Scale-down / demotion.
      for (Instance* inst : std::vector<Instance*>(st.eh)) {
        if (inst->state() != InstanceState::kReady || !inst->Idle()) continue;
        if (now - inst->last_used() < config().util_window) continue;
        if (UtilizationOf(inst) >= config().hot_threshold) continue;
        if (config().enable_time_sharing && !st.has_ts &&
            st.eh.size() == 1 && !inst->IsPipelined()) {
          std::erase(st.eh, inst);
          st.ts = inst;
          st.has_ts = true;
          st.ts_last_used = inst->last_used();
        } else if (st.eh.size() > 1 ||
                   (config().enable_time_sharing && st.has_ts) ||
                   inst->IsPipelined()) {
          std::erase(st.eh, inst);
          RetireInstance(inst);
          if (config().enable_time_sharing && !st.has_ts &&
              st.eh.empty()) {
            st.has_ts = true;  // warm entry
            st.ts_last_used = inst->last_used();
          }
        } else if (!config().enable_time_sharing &&
                   now - inst->last_used() >=
                       config().exclusive_keepalive) {
          std::erase(st.eh, inst);
          RetireInstance(inst);
        }
      }

      // Cold transition.
      if (st.has_ts && now - st.ts_last_used > config().warm_timeout) {
        if (st.ts != nullptr && st.ts->Idle()) {
          RetireInstance(st.ts);
          st.ts = nullptr;
        }
        if (st.ts == nullptr) st.has_ts = false;
      }
    }
  }
}

}  // namespace fluidfaas::core
