// Decentralized FluidFaaS: the paper's two-level architecture (Figs. 2/6).
//
// §5.2.2 places the pipeline-construction runtime *on each invoker*, "where
// it functions as a local scheduler ... This decentralized approach allows
// the scheduler to efficiently build pipelines and allocate resources,
// adapting to the invoker's current conditions", with the central
// controller left unmodified. The centralized FluidFaaS bundle models that
// logically (its planner already confines a pipeline to one node); this
// bundle models it *structurally*: one invoker per node, each owning only
// its node's instances and free slices, with a front load balancer that
// picks an invoker per request and per-invoker autoscaling driven by each
// invoker's own observed arrivals.
//
// The bench `ablation_decentralized` compares the two: they should deliver
// similar quality on balanced clusters, with the decentralized form paying
// a small penalty when one node's fragments could have served another
// node's overflow.
#pragma once

#include <memory>
#include <vector>

#include "metrics/recorder.h"
#include "platform/platform.h"
#include "platform/policy.h"

namespace fluidfaas::core {

/// Per-invoker scheduler state shared by DistRouting and DistScaling.
class DistState {
 public:
  struct FnState {
    std::vector<platform::Instance*> eh;
    platform::Instance* ts = nullptr;
    bool has_ts = false;
    SimTime ts_last_used = 0;
    double arrival_ewma = 0.0;  // invoker-local rate estimate (req/s)
    int arrivals_this_tick = 0;
  };
  struct Invoker {
    NodeId node;
    std::vector<FnState> per_fn;
    std::size_t routed = 0;
  };

  void EnsureSized(const platform::PlatformCore& core);

  Invoker& invoker(int idx) {
    return invokers[static_cast<std::size_t>(idx)];
  }
  FnState& state(Invoker& inv, FunctionId fn);

  /// The FFS load balancer: pick the invoker for a request — the one whose
  /// instances of `fn` promise the earliest completion, else the one with
  /// the most free capacity.
  int ChooseInvoker(platform::PlatformCore& core, FunctionId fn, SimTime now);

  /// Local (per-invoker) versions of the centralized scheduler's moves.
  platform::Instance* LaunchExclusiveOn(platform::PlatformCore& core,
                                        Invoker& inv,
                                        const platform::FunctionSpec& spec);
  platform::Instance* EnsureTsResidentOn(platform::PlatformCore& core,
                                         Invoker& inv, FunctionId fn);
  bool RouteOn(platform::PlatformCore& core, Invoker& inv, RequestId rid,
               FunctionId fn);
  void PruneDead(FnState& st);

  platform::SchedulerCounters counters() const;

  std::vector<Invoker> invokers;
  std::size_t pipelines_launched = 0;
  std::size_t evictions = 0;
};

class DistRouting final : public platform::RoutingPolicy {
 public:
  explicit DistRouting(std::shared_ptr<DistState> st) : st_(std::move(st)) {}
  void Attach(platform::PlatformCore& core) override;
  bool Route(platform::PlatformCore& core, RequestId rid,
             FunctionId fn) override;

 private:
  std::shared_ptr<DistState> st_;
};

class DistScaling final : public platform::ScalingPolicy {
 public:
  explicit DistScaling(std::shared_ptr<DistState> st) : st_(std::move(st)) {}
  void Attach(platform::PlatformCore& core) override;
  void Tick(platform::PlatformCore& core) override;
  void OnCompleted(platform::PlatformCore& core, RequestId rid,
                   FunctionId fn) override;

 private:
  std::shared_ptr<DistState> st_;
};

/// The decentralized FluidFaaS bundle ("FluidFaaS-dist").
platform::PolicyBundle MakeDistributedBundle(
    std::shared_ptr<DistState> state = nullptr);

/// Convenience platform pre-wired with the distributed bundle; subscribes
/// `recorder` to the simulator's bus.
class DistributedFluidFaas : public platform::PlatformCore {
 public:
  DistributedFluidFaas(sim::Simulator& sim, gpu::Cluster& cluster,
                       metrics::Recorder& recorder,
                       std::vector<platform::FunctionSpec> functions,
                       platform::PlatformConfig config);

  int num_invokers() const {
    return static_cast<int>(state_->invokers.size());
  }
  std::size_t pipelines_launched() const { return state_->pipelines_launched; }
  std::size_t evictions() const { return state_->evictions; }
  /// Requests the load balancer sent to each invoker.
  std::vector<std::size_t> RoutedPerInvoker() const;

 private:
  DistributedFluidFaas(sim::Simulator& sim, gpu::Cluster& cluster,
                       metrics::Recorder& recorder,
                       std::vector<platform::FunctionSpec> functions,
                       platform::PlatformConfig config,
                       std::shared_ptr<DistState> state);

  std::shared_ptr<DistState> state_;
};

}  // namespace fluidfaas::core
