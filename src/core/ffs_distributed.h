// Decentralized FluidFaaS: the paper's two-level architecture (Figs. 2/6).
//
// §5.2.2 places the pipeline-construction runtime *on each invoker*, "where
// it functions as a local scheduler ... This decentralized approach allows
// the scheduler to efficiently build pipelines and allocate resources,
// adapting to the invoker's current conditions", with the central
// controller left unmodified. FluidFaasPlatform models that logically (its
// planner already confines a pipeline to one node); this class models it
// *structurally*: one invoker per node, each owning only its node's
// instances and free slices, with a front load balancer that picks an
// invoker per request and per-invoker autoscaling driven by each invoker's
// own observed arrivals.
//
// The bench `ablation_decentralized` compares the two: they should deliver
// similar quality on balanced clusters, with the decentralized form paying
// a small penalty when one node's fragments could have served another
// node's overflow.
#pragma once

#include <vector>

#include "platform/platform.h"

namespace fluidfaas::core {

class DistributedFluidFaas : public platform::Platform {
 public:
  DistributedFluidFaas(sim::Simulator& sim, gpu::Cluster& cluster,
                       metrics::Recorder& recorder,
                       std::vector<platform::FunctionSpec> functions,
                       platform::PlatformConfig config);

  std::string name() const override { return "FluidFaaS-dist"; }

  int num_invokers() const { return static_cast<int>(invokers_.size()); }
  std::size_t pipelines_launched() const { return pipelines_launched_; }
  std::size_t evictions() const { return evictions_; }
  /// Requests the load balancer sent to each invoker.
  std::vector<std::size_t> RoutedPerInvoker() const;

 protected:
  bool Route(RequestId rid, FunctionId fn) override;
  void AutoscaleTick() override;
  void OnCompleted(RequestId rid, FunctionId fn) override;

 private:
  struct FnState {
    std::vector<platform::Instance*> eh;
    platform::Instance* ts = nullptr;
    bool has_ts = false;
    SimTime ts_last_used = 0;
    double arrival_ewma = 0.0;  // invoker-local rate estimate (req/s)
    int arrivals_this_tick = 0;
  };
  struct Invoker {
    NodeId node;
    std::vector<FnState> per_fn;
    std::size_t routed = 0;
  };

  Invoker& invoker(int idx) { return invokers_[static_cast<std::size_t>(idx)]; }
  FnState& state(Invoker& inv, FunctionId fn);

  /// The FFS load balancer: pick the invoker for a request — the one whose
  /// instances of `fn` promise the earliest completion, else the one with
  /// the most free capacity.
  int ChooseInvoker(FunctionId fn, SimTime now);

  /// Local (per-invoker) versions of the centralized scheduler's moves.
  platform::Instance* LaunchExclusiveOn(Invoker& inv,
                                        const platform::FunctionSpec& spec);
  platform::Instance* EnsureTsResidentOn(Invoker& inv, FunctionId fn);
  bool RouteOn(Invoker& inv, RequestId rid, FunctionId fn);
  void PruneDead(FnState& st);

  std::vector<Invoker> invokers_;
  std::size_t pipelines_launched_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace fluidfaas::core
