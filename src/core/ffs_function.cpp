#include "core/ffs_function.h"

#include "common/error.h"

namespace fluidfaas::core {

const FfsValue FfsFunctionBuilder::kInput{-1};

FfsValue FfsModule::reg(FfsFunctionBuilder& builder,
                        const std::vector<FfsValue>& inputs,
                        double exec_probability) const {
  model::ComponentSpec spec = spec_;
  spec.exec_probability = exec_probability;
  return builder.Register(std::move(spec), inputs);
}

FfsValue FfsFunctionBuilder::Register(model::ComponentSpec spec,
                                      const std::vector<FfsValue>& inputs) {
  FFS_CHECK_MSG(!inputs.empty(),
                "module must consume the function input or another module");
  const int idx = static_cast<int>(components_.size());
  for (const FfsValue& v : inputs) {
    FFS_CHECK_MSG(v.node >= -1 && v.node < idx,
                  "input handle does not refer to an earlier registration");
    edges_.push_back(model::DagEdge{v.node, idx});
  }
  spec.id = ComponentId(idx);
  components_.push_back(std::move(spec));
  return FfsValue{idx};
}

model::AppDag FfsFunctionBuilder::Build() && {
  return model::AppDag(std::move(name_), std::move(components_),
                       std::move(edges_));
}

}  // namespace fluidfaas::core
