// The FluidFaaS programming model (paper §5.2, Fig. 7) in C++.
//
// In the paper, a developer wraps each DNN model in FluidFaaS.Module and
// registers models + dataflow in defDAG(); BUILDDAG mode then profiles each
// component per MIG size. Here the same roles exist:
//
//   FfsModule           — wraps one component (the nn.Module analog);
//                         reg() wires it into the DAG being built.
//   FfsFunctionBuilder  — the BUILDDAG-mode FFaaS object: collects
//                         registered modules and dataflow, and produces the
//                         immutable AppDag the invoker plans against.
//
// Example (examples/quickstart.cpp uses exactly this shape):
//
//   FfsFunctionBuilder b("my_fn");
//   auto x1 = preprocess.reg(b, {FfsFunctionBuilder::kInput});
//   auto x2 = backbone.reg(b, {x1});
//   auto x3 = head.reg(b, {x2});
//   AppDag dag = std::move(b).Build();
#pragma once

#include <string>
#include <vector>

#include "model/app.h"
#include "model/component.h"

namespace fluidfaas::core {

class FfsFunctionBuilder;

/// Handle to a registered module's output within the DAG being built.
struct FfsValue {
  int node = -1;
};

/// Wraps one DNN component. The performance numbers normally come from
/// BUILDDAG-mode profiling; in this reproduction they come from the model
/// zoo or from user-supplied specs.
class FfsModule {
 public:
  explicit FfsModule(model::ComponentSpec spec) : spec_(std::move(spec)) {}

  const model::ComponentSpec& spec() const { return spec_; }

  /// Register this module in `builder`, consuming the given inputs.
  /// Mirrors FluidFaaS.Module.reg() — returns the value handle fed to
  /// downstream modules.
  FfsValue reg(FfsFunctionBuilder& builder,
               const std::vector<FfsValue>& inputs,
               double exec_probability = 1.0) const;

 private:
  model::ComponentSpec spec_;
};

/// BUILDDAG-mode function object: accumulates registrations, emits the DAG.
class FfsFunctionBuilder {
 public:
  /// Sentinel value handle denoting the serverless function's own input.
  static const FfsValue kInput;

  explicit FfsFunctionBuilder(std::string name) : name_(std::move(name)) {}

  /// Low-level registration; FfsModule::reg is the ergonomic entry point.
  FfsValue Register(model::ComponentSpec spec,
                    const std::vector<FfsValue>& inputs);

  int num_registered() const { return static_cast<int>(components_.size()); }

  /// Finalize. The builder is consumed (registration order must be
  /// topological, which reg()'s value-handle flow guarantees by
  /// construction: a handle can only exist after its producer).
  model::AppDag Build() &&;

 private:
  std::string name_;
  std::vector<model::ComponentSpec> components_;
  std::vector<model::DagEdge> edges_;
};

}  // namespace fluidfaas::core
