#include "core/ffs_platform.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"
#include "core/pipeline.h"

namespace fluidfaas::core {

using platform::Instance;
using platform::InstanceState;

FluidFaasPlatform::FluidFaasPlatform(
    sim::Simulator& sim, gpu::Cluster& cluster, metrics::Recorder& recorder,
    std::vector<platform::FunctionSpec> functions,
    platform::PlatformConfig config)
    : Platform(sim, cluster, recorder, std::move(functions), config) {
  fn_state_.resize(this->functions().size());
}

FluidFaasPlatform::FnState& FluidFaasPlatform::state(FunctionId fn) {
  FFS_CHECK(fn.valid() &&
            static_cast<std::size_t>(fn.value) < fn_state_.size());
  return fn_state_[static_cast<std::size_t>(fn.value)];
}

int FluidFaasPlatform::NumExclusiveHot(FunctionId fn) const {
  return static_cast<int>(
      const_cast<FluidFaasPlatform*>(this)->state(fn).eh.size());
}

bool FluidFaasPlatform::HasTimeSharingInstance(FunctionId fn) const {
  return const_cast<FluidFaasPlatform*>(this)->state(fn).has_ts;
}

bool FluidFaasPlatform::TimeSharingResident(FunctionId fn) const {
  return const_cast<FluidFaasPlatform*>(this)->state(fn).ts != nullptr;
}

void FluidFaasPlatform::PruneDead(FnState& st) {
  std::erase_if(st.eh, [](Instance* i) {
    return i->state() == InstanceState::kRetired ||
           i->state() == InstanceState::kDraining;
  });
  if (st.ts != nullptr && st.ts->state() == InstanceState::kRetired) {
    st.ts = nullptr;
  }
}

double FluidFaasPlatform::EhCapacity(const FnState& st) const {
  double c = 0.0;
  for (Instance* inst : st.eh) {
    if (inst->CanAdmit()) c += inst->CapacityRps();
  }
  return c;
}

platform::Instance* FluidFaasPlatform::EnsureTsResident(FunctionId fn) {
  FnState& st = state(fn);
  FFS_CHECK(st.ts == nullptr);
  const platform::FunctionSpec& spec = function(fn);

  auto sid = cluster().SmallestFreeSliceWithMemory(spec.total_memory);
  SimDuration evict_cost = 0;

  if (!sid) {
    // Evict the least-recently-used idle resident time-sharing instance of
    // another function whose slice is large enough (§5.3).
    FunctionId victim_fn;
    SimTime oldest = kTimeInfinity;
    for (std::size_t i = 0; i < fn_state_.size(); ++i) {
      FnState& other = fn_state_[i];
      if (other.ts == nullptr || !other.ts->Idle()) continue;
      if (FunctionId(static_cast<std::int32_t>(i)) == fn) continue;
      const core::StageBinding& b = other.ts->plan().stages.front();
      if (cluster().slice(b.slice).memory() < spec.total_memory) continue;
      if (other.ts->last_used() < oldest) {
        oldest = other.ts->last_used();
        victim_fn = FunctionId(static_cast<std::int32_t>(i));
      }
    }
    if (!victim_fn.valid()) return nullptr;

    FnState& vic = state(victim_fn);
    const SliceId freed = vic.ts->plan().stages.front().slice;
    evict_cost = config().load.Evict(vic.ts->plan().TotalWeights());
    RetireInstance(vic.ts);  // idle by construction; frees the slice
    vic.ts = nullptr;        // entry stays warm (TouchWarm in retire)
    ++evictions_;
    FFS_LOG_DEBUG("ffs") << "evicted TS instance of fn " << victim_fn.value
                         << " from slice " << freed.value << " for fn "
                         << fn.value;
    sid = freed;
  }

  auto plan = MonolithicPlanOnSlice(function(fn).dag, cluster(), *sid);
  if (!plan) return nullptr;  // cannot happen given the memory checks
  Instance* inst = LaunchInstance(spec, std::move(*plan), IsWarm(fn),
                                  evict_cost);
  st.ts = inst;
  st.has_ts = true;
  st.ts_last_used = simulator().Now();
  return inst;
}

platform::Instance* FluidFaasPlatform::LaunchExclusive(
    const platform::FunctionSpec& spec) {
  std::optional<PipelinePlan> plan;
  if (config().enable_pipelines) {
    plan = PlanFirstFeasible(spec.dag, spec.ranked_pipelines, cluster(),
                             config().transfer);
  } else {
    // Ablation: monolithic-only placement.
    auto sid = cluster().SmallestFreeSliceWithMemory(spec.total_memory);
    if (sid) plan = MonolithicPlanOnSlice(spec.dag, cluster(), *sid);
  }
  if (!plan) return nullptr;
  if (plan->num_stages() > 1) ++pipelines_launched_;
  Instance* inst = LaunchInstance(spec, std::move(*plan), IsWarm(spec.id));
  state(spec.id).eh.push_back(inst);
  return inst;
}

bool FluidFaasPlatform::Route(RequestId rid, FunctionId fn) {
  FnState& st = state(fn);
  PruneDead(st);
  const platform::FunctionSpec& spec = function(fn);
  const SimTime now = simulator().Now();
  const SimTime deadline = recorder().record(rid).deadline;

  // 1. Exclusive-hot instances, lowest service latency first, while their
  //    backlog still meets the deadline (§5.3 request routing).
  std::vector<Instance*> hot;
  for (Instance* inst : st.eh) {
    if (inst->CanAdmit()) hot.push_back(inst);
  }
  std::sort(hot.begin(), hot.end(), [](Instance* a, Instance* b) {
    if (a->ServiceLatency() != b->ServiceLatency())
      return a->ServiceLatency() < b->ServiceLatency();
    return a->id() < b->id();
  });
  for (Instance* inst : hot) {
    if (inst->EstimateCompletion(now) <= deadline) {
      inst->Enqueue(rid, JitterOf(rid));
      st.ts_last_used = now;
      return true;
    }
  }

  // 2. The time-sharing instance (§5.3: "the remaining requests are routed
  //    to the time sharing state instance").
  if (config().enable_time_sharing) {
    if (st.ts != nullptr && st.ts->CanAdmit()) {
      if (st.ts->EstimateCompletion(now) <= deadline || hot.empty()) {
        st.ts->Enqueue(rid, JitterOf(rid));
        st.ts_last_used = now;
        return true;
      }
    } else if (st.ts == nullptr) {
      Instance* inst = EnsureTsResident(fn);
      if (inst != nullptr) {
        inst->Enqueue(rid, JitterOf(rid));
        st.ts_last_used = now;
        return true;
      }
    }
  } else if (hot.empty()) {
    // Ablation path without time sharing: first request must still create
    // an instance; use an exclusive one.
    Instance* inst = LaunchExclusive(spec);
    if (inst != nullptr) {
      inst->Enqueue(rid, JitterOf(rid));
      return true;
    }
  }

  // 3. Fallback: the least-loaded admitting instance (request will likely
  //    miss its SLO, but progress beats starvation).
  Instance* best = nullptr;
  SimTime best_est = kTimeInfinity;
  for (Instance* inst : st.eh) {
    if (!inst->CanAdmit()) continue;
    const SimTime est = inst->EstimateCompletion(now);
    if (est < best_est) {
      best_est = est;
      best = inst;
    }
  }
  if (st.ts != nullptr && st.ts->CanAdmit() &&
      st.ts->EstimateCompletion(now) < best_est) {
    best = st.ts;
  }
  // Bound per-instance backlog (see Instance::AdmitWithinBound) so overload
  // stays in the EDF-ordered pending set instead of FIFO queues.
  if (best != nullptr && best->AdmitWithinBound(now, deadline, spec.slo)) {
    best->Enqueue(rid, JitterOf(rid));
    st.ts_last_used = now;
    return true;
  }
  return false;
}

void FluidFaasPlatform::RetireDrainedIdle() {
  for (FunctionId fn(0); static_cast<std::size_t>(fn.value) < fn_state_.size();
       fn = FunctionId(fn.value + 1)) {
    for (Instance* inst : InstancesOf(fn)) {
      if (inst->state() == InstanceState::kDraining && inst->Idle()) {
        RetireInstance(inst);
      }
    }
  }
}

void FluidFaasPlatform::OnCompleted(RequestId, FunctionId fn) {
  FnState& st = state(fn);
  st.ts_last_used = simulator().Now();
  RetireDrainedIdle();
}

void FluidFaasPlatform::AutoscaleTick() {
  const SimTime now = simulator().Now();
  RetireDrainedIdle();

  for (std::size_t i = 0; i < fn_state_.size(); ++i) {
    const FunctionId fn(static_cast<std::int32_t>(i));
    FnState& st = state(fn);
    PruneDead(st);
    const platform::FunctionSpec& spec = function(fn);
    const double rate = ArrivalRate(fn);

    // --- promotion: time-sharing -> exclusive-hot (Fig. 8 ②) -------------
    // The resident instance changes *state*, not placement: it already has
    // the slice to itself, promotion just makes it non-evictable.
    if (st.ts != nullptr) {
      const double util = UtilizationOf(st.ts);
      if (util > config().hot_threshold) {
        st.eh.push_back(st.ts);
        st.ts = nullptr;
        st.has_ts = false;
        ++promotions_;
        FFS_LOG_DEBUG("ffs") << "promoted fn " << fn.value
                             << " to exclusive-hot (util " << util << ")";
      }
    }

    // --- scale-up: add exclusive capacity while overloaded ---------------
    double capacity = EhCapacity(st);
    int guard = 0;
    while (rate > config().scaleup_load_factor * capacity && guard++ < 8) {
      Instance* eh = LaunchExclusive(spec);
      if (eh == nullptr) break;
      capacity += eh->CapacityRps();
    }

    // --- scale-down: exclusive-hot -> time sharing (Fig. 8 ③) ------------
    // Consider only Ready+idle instances that have been quiet for a window.
    for (Instance* inst : std::vector<Instance*>(st.eh)) {
      if (inst->state() != InstanceState::kReady || !inst->Idle()) continue;
      if (now - inst->last_used() < config().util_window) continue;
      const double util = UtilizationOf(inst);
      if (util >= config().hot_threshold) continue;
      if (config().enable_time_sharing && !st.has_ts && st.eh.size() == 1) {
        // Demote the last exclusive instance into the time-sharing state:
        // it keeps serving from its slice but becomes evictable. Pipelined
        // instances cannot be time-shared; retire them to warm instead.
        std::erase(st.eh, inst);
        if (!inst->IsPipelined()) {
          st.ts = inst;
          st.has_ts = true;
          st.ts_last_used = inst->last_used();
        } else {
          RetireInstance(inst);
          st.has_ts = true;  // warm entry, resident on next request
          st.ts = nullptr;
          st.ts_last_used = inst->last_used();
        }
        ++demotions_;
      } else if (st.eh.size() > 1 ||
                 (config().enable_time_sharing && st.has_ts)) {
        // Surplus exclusive capacity: the remaining instances (or the
        // time-sharing entry) cover the residual load; release the slices.
        std::erase(st.eh, inst);
        RetireInstance(inst);
      } else if (!config().enable_time_sharing &&
                 now - inst->last_used() >= config().exclusive_keepalive) {
        std::erase(st.eh, inst);
        RetireInstance(inst);
      }
    }

    // --- time-sharing -> cold (Fig. 8 ⑤) ---------------------------------
    if (st.has_ts && now - st.ts_last_used > config().warm_timeout) {
      if (st.ts != nullptr && st.ts->Idle()) {
        RetireInstance(st.ts);
        st.ts = nullptr;
      }
      if (st.ts == nullptr) st.has_ts = false;
    }

    // --- pipeline migration (§5.3) ---------------------------------------
    // Cooldown one utilization window per function so a drained pipeline's
    // freed slices are not immediately rebuilt into a new pipeline and
    // migrated again.
    if (config().enable_migration &&
        now - st.last_migration >= config().util_window) {
      for (Instance* inst : std::vector<Instance*>(st.eh)) {
        if (!inst->IsPipelined() ||
            inst->state() != InstanceState::kReady) {
          continue;
        }
        auto sid = cluster().SmallestFreeSliceWithMemory(spec.total_memory);
        if (!sid) break;
        auto plan = MonolithicPlanOnSlice(spec.dag, cluster(), *sid);
        if (!plan) break;
        Instance* mono = LaunchInstance(spec, std::move(*plan), IsWarm(fn));
        st.eh.push_back(mono);
        std::erase(st.eh, inst);
        DrainOrRetire(inst);
        ++migrations_;
        st.last_migration = now;
        FFS_LOG_DEBUG("ffs") << "migrated fn " << fn.value
                             << " pipeline -> slice " << sid->value;
        break;  // at most one migration per function per tick
      }
    }
  }
}

}  // namespace fluidfaas::core
