#include "core/ffs_platform.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "core/ffs_distributed.h"
#include "core/pipeline.h"
#include "sim/events.h"

namespace fluidfaas::core {

using platform::Instance;
using platform::InstanceState;

FfsState::FnState& FfsState::state(FunctionId fn) {
  FFS_CHECK(fn.valid() &&
            static_cast<std::size_t>(fn.value) < fn_state.size());
  return fn_state[static_cast<std::size_t>(fn.value)];
}

const FfsState::FnState& FfsState::state(FunctionId fn) const {
  return const_cast<FfsState*>(this)->state(fn);
}

void FfsState::EnsureSized(const platform::PlatformCore& core) {
  if (fn_state.size() < core.functions().size()) {
    fn_state.resize(core.functions().size());
  }
}

void FfsState::PruneDead(FnState& st) {
  std::erase_if(st.eh, [](Instance* i) {
    return i->state() == InstanceState::kRetired ||
           i->state() == InstanceState::kDraining;
  });
  if (st.ts != nullptr && st.ts->state() == InstanceState::kRetired) {
    st.ts = nullptr;
  }
}

double FfsState::EhCapacity(const FnState& st) const {
  double c = 0.0;
  for (Instance* inst : st.eh) {
    if (inst->CanAdmit()) c += inst->CapacityRps();
  }
  return c;
}

platform::SchedulerCounters FfsState::counters() const {
  platform::SchedulerCounters c;
  c.evictions = evictions;
  c.promotions = promotions;
  c.demotions = demotions;
  c.migrations = migrations;
  c.pipelines_launched = pipelines_launched;
  return c;
}

platform::Instance* FfsState::EnsureTsResident(platform::PlatformCore& core,
                                               FunctionId fn) {
  FnState& st = state(fn);
  FFS_CHECK(st.ts == nullptr);
  const platform::FunctionSpec& spec = core.function(fn);

  // Plan on a view, commit atomically: the eviction (when needed) and the
  // spawn onto the freed slice are one placement transaction.
  gpu::ClusterView view(core.cluster());
  platform::PlacementPlan txn;
  auto sid = view.SmallestFreeSliceWithMemory(spec.total_memory);
  SimDuration evict_cost = 0;
  FunctionId victim_fn;
  InstanceId victim_iid;

  if (!sid) {
    // Evict the least-recently-used idle resident time-sharing instance of
    // another function whose slice is large enough (§5.3).
    SimTime oldest = kTimeInfinity;
    for (std::size_t i = 0; i < fn_state.size(); ++i) {
      FnState& other = fn_state[i];
      if (other.ts == nullptr || !other.ts->Idle()) continue;
      if (FunctionId(static_cast<std::int32_t>(i)) == fn) continue;
      const core::StageBinding& b = other.ts->plan().stages.front();
      if (core.cluster().slice(b.slice).memory() < spec.total_memory) continue;
      if (other.ts->last_used() < oldest) {
        oldest = other.ts->last_used();
        victim_fn = FunctionId(static_cast<std::int32_t>(i));
      }
    }
    if (!victim_fn.valid()) return nullptr;

    FnState& vic = state(victim_fn);
    const SliceId freed = vic.ts->plan().stages.front().slice;
    victim_iid = vic.ts->id();
    evict_cost = core.config().load.Evict(vic.ts->plan().TotalWeights());
    platform::AddEvict(txn, view, victim_iid, vic.ts->plan());
    sid = freed;
  }

  auto plan = MonolithicPlanOnSlice(spec.dag, view, *sid);
  if (!plan) return nullptr;  // cannot happen given the memory checks
  platform::AddSpawn(txn, view, fn, std::move(*plan), core.IsWarm(fn),
                     evict_cost);
  const platform::CommitResult result = core.Commit(txn);
  if (!result.ok()) return nullptr;

  if (victim_fn.valid()) {
    state(victim_fn).ts = nullptr;  // entry stays warm (TouchWarm in retire)
    ++evictions;
    core.bus().Publish(sim::SchedulerTransition{sim::TransitionKind::kEviction,
                                                victim_fn, victim_iid,
                                                core.simulator().Now()});
    FFS_LOG_DEBUG("ffs") << "evicted TS instance of fn " << victim_fn.value
                         << " from slice " << sid->value << " for fn "
                         << fn.value;
  }
  Instance* inst = result.spawned.front();
  st.ts = inst;
  st.has_ts = true;
  st.ts_last_used = core.simulator().Now();
  return inst;
}

platform::Instance* FfsState::LaunchExclusive(
    platform::PlatformCore& core, const platform::FunctionSpec& spec) {
  std::optional<PipelinePlan> plan;
  if (core.config().enable_pipelines) {
    plan = PlanFirstFeasible(spec.dag, spec.ranked_pipelines, core.cluster(),
                             core.config().transfer);
  } else {
    // Ablation: monolithic-only placement.
    plan = MonolithicPlanOnSmallestSlice(spec.dag, core.cluster());
  }
  if (!plan) return nullptr;
  const bool pipelined = plan->num_stages() > 1;
  const platform::CommitResult result = core.Commit(
      platform::SpawnPlan(spec.id, std::move(*plan), core.IsWarm(spec.id)));
  if (!result.ok()) return nullptr;
  if (pipelined) ++pipelines_launched;
  Instance* inst = result.spawned.front();
  state(spec.id).eh.push_back(inst);
  return inst;
}

void FfsState::RetireDrainedIdle(platform::PlatformCore& core) {
  for (FunctionId fn(0); static_cast<std::size_t>(fn.value) < fn_state.size();
       fn = FunctionId(fn.value + 1)) {
    for (Instance* inst : core.InstancesOf(fn)) {
      if (inst->state() == InstanceState::kDraining && inst->Idle()) {
        core.RetireInstance(inst);
      }
    }
  }
}

void FfsRouting::Attach(platform::PlatformCore& core) {
  st_->EnsureSized(core);
}

bool FfsRouting::Route(platform::PlatformCore& core, RequestId rid,
                       FunctionId fn) {
  FfsState::FnState& st = st_->state(fn);
  st_->PruneDead(st);
  const platform::FunctionSpec& spec = core.function(fn);
  const SimTime now = core.simulator().Now();
  const SimTime deadline = core.DeadlineOf(rid);

  // 1. Exclusive-hot instances, lowest service latency first, while their
  //    backlog still meets the deadline (§5.3 request routing).
  std::vector<Instance*> hot;
  for (Instance* inst : st.eh) {
    if (inst->CanAdmit()) hot.push_back(inst);
  }
  std::sort(hot.begin(), hot.end(), [](Instance* a, Instance* b) {
    if (a->ServiceLatency() != b->ServiceLatency())
      return a->ServiceLatency() < b->ServiceLatency();
    return a->id() < b->id();
  });
  for (Instance* inst : hot) {
    if (inst->EstimateCompletion(now) <= deadline) {
      inst->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
      st.ts_last_used = now;
      return true;
    }
  }

  // 2. The time-sharing instance (§5.3: "the remaining requests are routed
  //    to the time sharing state instance").
  if (core.config().enable_time_sharing) {
    if (st.ts != nullptr && st.ts->CanAdmit()) {
      if (st.ts->EstimateCompletion(now) <= deadline || hot.empty()) {
        st.ts->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
        st.ts_last_used = now;
        return true;
      }
    } else if (st.ts == nullptr) {
      Instance* inst = st_->EnsureTsResident(core, fn);
      if (inst != nullptr) {
        inst->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
        st.ts_last_used = now;
        return true;
      }
    }
  } else if (hot.empty()) {
    // Ablation path without time sharing: first request must still create
    // an instance; use an exclusive one.
    Instance* inst = st_->LaunchExclusive(core, spec);
    if (inst != nullptr) {
      inst->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
      return true;
    }
  }

  // 3. Fallback: the least-loaded admitting instance (request will likely
  //    miss its SLO, but progress beats starvation).
  Instance* best = nullptr;
  SimTime best_est = kTimeInfinity;
  for (Instance* inst : st.eh) {
    if (!inst->CanAdmit()) continue;
    const SimTime est = inst->EstimateCompletion(now);
    if (est < best_est) {
      best_est = est;
      best = inst;
    }
  }
  if (st.ts != nullptr && st.ts->CanAdmit() &&
      st.ts->EstimateCompletion(now) < best_est) {
    best = st.ts;
  }
  // Bound per-instance backlog (see Instance::AdmitWithinBound) so overload
  // stays in the EDF-ordered pending set instead of FIFO queues.
  if (best != nullptr && best->AdmitWithinBound(now, deadline, spec.slo)) {
    best->Enqueue(rid, core.JitterOf(rid), core.DeadlineOf(rid));
    st.ts_last_used = now;
    return true;
  }
  return false;
}

void FfsScaling::Attach(platform::PlatformCore& core) {
  st_->EnsureSized(core);
}

void FfsScaling::OnCompleted(platform::PlatformCore& core, RequestId,
                             FunctionId fn) {
  FfsState::FnState& st = st_->state(fn);
  st.ts_last_used = core.simulator().Now();
  st_->RetireDrainedIdle(core);
}

void FfsScaling::Tick(platform::PlatformCore& core) {
  const SimTime now = core.simulator().Now();
  st_->RetireDrainedIdle(core);

  for (std::size_t i = 0; i < st_->fn_state.size(); ++i) {
    const FunctionId fn(static_cast<std::int32_t>(i));
    FfsState::FnState& st = st_->state(fn);
    st_->PruneDead(st);
    const platform::FunctionSpec& spec = core.function(fn);
    const double rate = core.ArrivalRate(fn);

    // --- promotion: time-sharing -> exclusive-hot (Fig. 8 ②) -------------
    // The resident instance changes *state*, not placement: it already has
    // the slice to itself, promotion just makes it non-evictable.
    if (st.ts != nullptr) {
      const double util = core.UtilizationOf(st.ts);
      if (util > core.config().hot_threshold) {
        const InstanceId iid = st.ts->id();
        st.eh.push_back(st.ts);
        st.ts = nullptr;
        st.has_ts = false;
        ++st_->promotions;
        core.bus().Publish(sim::SchedulerTransition{
            sim::TransitionKind::kPromotion, fn, iid, now});
        FFS_LOG_DEBUG("ffs") << "promoted fn " << fn.value
                             << " to exclusive-hot (util " << util << ")";
      }
    }

    // --- scale-up: add exclusive capacity while overloaded ---------------
    double capacity = st_->EhCapacity(st);
    int guard = 0;
    while (rate > core.config().scaleup_load_factor * capacity &&
           guard++ < 8) {
      Instance* eh = st_->LaunchExclusive(core, spec);
      if (eh == nullptr) break;
      capacity += eh->CapacityRps();
    }

    // --- scale-down: exclusive-hot -> time sharing (Fig. 8 ③) ------------
    // Consider only Ready+idle instances that have been quiet for a window.
    for (Instance* inst : std::vector<Instance*>(st.eh)) {
      if (inst->state() != InstanceState::kReady || !inst->Idle()) continue;
      if (now - inst->last_used() < core.config().util_window) continue;
      const double util = core.UtilizationOf(inst);
      if (util >= core.config().hot_threshold) continue;
      if (core.config().enable_time_sharing && !st.has_ts &&
          st.eh.size() == 1) {
        // Demote the last exclusive instance into the time-sharing state:
        // it keeps serving from its slice but becomes evictable. Pipelined
        // instances cannot be time-shared; retire them to warm instead.
        std::erase(st.eh, inst);
        if (!inst->IsPipelined()) {
          st.ts = inst;
          st.has_ts = true;
          st.ts_last_used = inst->last_used();
        } else {
          core.RetireInstance(inst);
          st.has_ts = true;  // warm entry, resident on next request
          st.ts = nullptr;
          st.ts_last_used = inst->last_used();
        }
        ++st_->demotions;
        core.bus().Publish(sim::SchedulerTransition{
            sim::TransitionKind::kDemotion, fn, inst->id(), now});
      } else if (st.eh.size() > 1 ||
                 (core.config().enable_time_sharing && st.has_ts)) {
        // Surplus exclusive capacity: the remaining instances (or the
        // time-sharing entry) cover the residual load; release the slices.
        std::erase(st.eh, inst);
        core.RetireInstance(inst);
      } else if (!core.config().enable_time_sharing &&
                 now - inst->last_used() >= core.config().exclusive_keepalive) {
        std::erase(st.eh, inst);
        core.RetireInstance(inst);
      }
    }

    // --- time-sharing -> cold (Fig. 8 ⑤) ---------------------------------
    if (st.has_ts && now - st.ts_last_used > core.config().warm_timeout) {
      if (st.ts != nullptr && st.ts->Idle()) {
        core.RetireInstance(st.ts);
        st.ts = nullptr;
      }
      if (st.ts == nullptr) {
        st.has_ts = false;
        core.bus().Publish(sim::SchedulerTransition{
            sim::TransitionKind::kColdDrop, fn, InstanceId(), now});
      }
    }

    // --- pipeline migration (§5.3) ---------------------------------------
    // Cooldown one utilization window per function so a drained pipeline's
    // freed slices are not immediately rebuilt into a new pipeline and
    // migrated again.
    if (core.config().enable_migration &&
        now - st.last_migration >= core.config().util_window) {
      for (Instance* inst : std::vector<Instance*>(st.eh)) {
        if (!inst->IsPipelined() ||
            inst->state() != InstanceState::kReady) {
          continue;
        }
        auto plan = MonolithicPlanOnSmallestSlice(spec.dag, core.cluster());
        if (!plan) break;
        const SliceId target = plan->stages.front().slice;
        // One transaction: spawn the monolithic replacement, then drain the
        // pipeline it supersedes (warm status fixed at plan time, before the
        // drain's retire path can refresh it).
        platform::PlacementPlan txn =
            platform::SpawnPlan(fn, std::move(*plan), core.IsWarm(fn));
        txn.actions.push_back(platform::DrainAction{inst->id()});
        const platform::CommitResult result = core.Commit(txn);
        if (!result.ok()) break;
        st.eh.push_back(result.spawned.front());
        std::erase(st.eh, inst);
        ++st_->migrations;
        core.bus().Publish(sim::SchedulerTransition{
            sim::TransitionKind::kMigration, fn, inst->id(), now});
        st.last_migration = now;
        FFS_LOG_DEBUG("ffs") << "migrated fn " << fn.value
                             << " pipeline -> slice " << target.value;
        break;  // at most one migration per function per tick
      }
    }
  }
}

platform::PolicyBundle MakeFluidFaasBundle(std::shared_ptr<FfsState> state) {
  if (!state) state = std::make_shared<FfsState>();
  platform::PolicyBundle bundle;
  bundle.name = "FluidFaaS";
  bundle.routing = std::make_unique<FfsRouting>(state);
  bundle.scaling = std::make_unique<FfsScaling>(state);
  bundle.counters = [state] { return state->counters(); };
  return bundle;
}

void RegisterFluidFaasSchedulers() {
  platform::RegisterScheduler("FluidFaaS",
                              [] { return MakeFluidFaasBundle(); });
  platform::RegisterScheduler("FluidFaaS-dist",
                              [] { return MakeDistributedBundle(); });
}

FluidFaasPlatform::FluidFaasPlatform(
    sim::Simulator& sim, gpu::Cluster& cluster, metrics::Recorder& recorder,
    std::vector<platform::FunctionSpec> functions,
    platform::PlatformConfig config)
    : FluidFaasPlatform(sim, cluster, recorder, std::move(functions), config,
                        std::make_shared<FfsState>()) {}

FluidFaasPlatform::FluidFaasPlatform(
    sim::Simulator& sim, gpu::Cluster& cluster, metrics::Recorder& recorder,
    std::vector<platform::FunctionSpec> functions,
    platform::PlatformConfig config, std::shared_ptr<FfsState> state)
    : PlatformCore(sim, cluster, std::move(functions), config,
                   MakeFluidFaasBundle(state)),
      state_(std::move(state)) {
  recorder.SubscribeTo(sim.bus());
}

int FluidFaasPlatform::NumExclusiveHot(FunctionId fn) const {
  return static_cast<int>(state_->state(fn).eh.size());
}

bool FluidFaasPlatform::HasTimeSharingInstance(FunctionId fn) const {
  return state_->state(fn).has_ts;
}

bool FluidFaasPlatform::TimeSharingResident(FunctionId fn) const {
  return state_->state(fn).ts != nullptr;
}

}  // namespace fluidfaas::core
