// The FluidFaaS platform: dynamic pipeline construction on fragmented MIG
// slices (§5.2) plus hotness-aware eviction-based time sharing (§5.3).
//
// Instance states follow Fig. 8:
//   * The first request for a function creates a TIME-SHARING instance (①).
//   * Utilization above the hot threshold promotes it to EXCLUSIVE-HOT —
//     deployed through the CV-ranked pipeline planner, so a promotion can
//     land on fragmented slices as a pipeline (②).
//   * Falling utilization demotes back to time sharing (③).
//   * A time-sharing instance may be evicted to CPU memory = WARM (④), and
//     is terminated after ten idle minutes = COLD (⑤).
//
// Exclusive-hot instances are never evicted; all pipeline instances are
// exclusive-hot (paper: "to simplify scheduling"). At most one time-sharing
// instance exists per function; time-sharing instances are monolithic and
// share slices through LRU eviction.
//
// Request routing is heterogeneity-aware (§5.3): pending requests are
// ordered by adjusted deadline; exclusive-hot instances are tried lowest
// latency first up to capacity, then the time-sharing instance, then the
// least-loaded fallback.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "platform/platform.h"

namespace fluidfaas::core {

class FluidFaasPlatform : public platform::Platform {
 public:
  FluidFaasPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                    metrics::Recorder& recorder,
                    std::vector<platform::FunctionSpec> functions,
                    platform::PlatformConfig config);

  std::string name() const override { return "FluidFaaS"; }

  /// Introspection for tests.
  int NumExclusiveHot(FunctionId fn) const;
  bool HasTimeSharingInstance(FunctionId fn) const;
  bool TimeSharingResident(FunctionId fn) const;
  std::size_t evictions() const { return evictions_; }
  std::size_t promotions() const { return promotions_; }
  std::size_t demotions() const { return demotions_; }
  std::size_t migrations() const { return migrations_; }
  std::size_t pipelines_launched() const { return pipelines_launched_; }

 protected:
  bool Route(RequestId rid, FunctionId fn) override;
  void AutoscaleTick() override;
  void OnCompleted(RequestId rid, FunctionId fn) override;

 private:
  struct FnState {
    std::vector<platform::Instance*> eh;  // exclusive-hot instances
    bool has_ts = false;                  // a time-sharing entry exists
    platform::Instance* ts = nullptr;     // resident TS instance (or null)
    SimTime ts_last_used = 0;
    SimTime last_migration = 0;
  };

  FnState& state(FunctionId fn);

  /// Make fn's time-sharing instance resident: free slice if available,
  /// otherwise evict the LRU idle resident TS instance whose slice fits.
  /// Returns the (loading) instance or nullptr.
  platform::Instance* EnsureTsResident(FunctionId fn);

  /// Launch a new exclusive-hot instance via the ranked pipeline planner.
  platform::Instance* LaunchExclusive(const platform::FunctionSpec& spec);

  void PruneDead(FnState& st);
  void RetireDrainedIdle();

  double EhCapacity(const FnState& st) const;

  std::vector<FnState> fn_state_;

  std::size_t evictions_ = 0;
  std::size_t promotions_ = 0;
  std::size_t demotions_ = 0;
  std::size_t migrations_ = 0;
  std::size_t pipelines_launched_ = 0;
};

}  // namespace fluidfaas::core
