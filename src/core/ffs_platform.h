// The FluidFaaS scheduler: dynamic pipeline construction on fragmented MIG
// slices (§5.2) plus hotness-aware eviction-based time sharing (§5.3),
// expressed as a routing + scaling policy pair over platform::PlatformCore.
//
// Instance states follow Fig. 8:
//   * The first request for a function creates a TIME-SHARING instance (①).
//   * Utilization above the hot threshold promotes it to EXCLUSIVE-HOT —
//     deployed through the CV-ranked pipeline planner, so a promotion can
//     land on fragmented slices as a pipeline (②).
//   * Falling utilization demotes back to time sharing (③).
//   * A time-sharing instance may be evicted to CPU memory = WARM (④), and
//     is terminated after ten idle minutes = COLD (⑤).
//
// Exclusive-hot instances are never evicted; all pipeline instances are
// exclusive-hot (paper: "to simplify scheduling"). At most one time-sharing
// instance exists per function; time-sharing instances are monolithic and
// share slices through LRU eviction.
//
// Request routing is heterogeneity-aware (§5.3): pending requests are
// ordered by adjusted deadline; exclusive-hot instances are tried lowest
// latency first up to capacity, then the time-sharing instance, then the
// least-loaded fallback.
//
// The two policies share one FfsState (Fig. 8 bookkeeping + counters); each
// Fig. 8 transition is also published as sim::SchedulerTransition on the
// core's EventBus. FluidFaaS needs no keep-alive policy — instance lifetime
// is entirely governed by the state machine above.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "metrics/recorder.h"
#include "platform/platform.h"
#include "platform/policy.h"
#include "platform/registry.h"

namespace fluidfaas::core {

/// Fig. 8 bookkeeping shared by FfsRouting and FfsScaling, plus the
/// mechanism helpers both need (TS residency, exclusive launches).
class FfsState {
 public:
  struct FnState {
    std::vector<platform::Instance*> eh;  // exclusive-hot instances
    bool has_ts = false;                  // a time-sharing entry exists
    platform::Instance* ts = nullptr;     // resident TS instance (or null)
    SimTime ts_last_used = 0;
    SimTime last_migration = 0;
  };

  FnState& state(FunctionId fn);
  const FnState& state(FunctionId fn) const;
  void EnsureSized(const platform::PlatformCore& core);

  /// Make fn's time-sharing instance resident: free slice if available,
  /// otherwise evict the LRU idle resident TS instance whose slice fits.
  /// Returns the (loading) instance or nullptr.
  platform::Instance* EnsureTsResident(platform::PlatformCore& core,
                                       FunctionId fn);

  /// Launch a new exclusive-hot instance via the ranked pipeline planner.
  platform::Instance* LaunchExclusive(platform::PlatformCore& core,
                                      const platform::FunctionSpec& spec);

  void PruneDead(FnState& st);
  void RetireDrainedIdle(platform::PlatformCore& core);

  double EhCapacity(const FnState& st) const;

  platform::SchedulerCounters counters() const;

  std::vector<FnState> fn_state;

  std::size_t evictions = 0;
  std::size_t promotions = 0;
  std::size_t demotions = 0;
  std::size_t migrations = 0;
  std::size_t pipelines_launched = 0;
};

class FfsRouting final : public platform::RoutingPolicy {
 public:
  explicit FfsRouting(std::shared_ptr<FfsState> st) : st_(std::move(st)) {}
  void Attach(platform::PlatformCore& core) override;
  bool Route(platform::PlatformCore& core, RequestId rid,
             FunctionId fn) override;

 private:
  std::shared_ptr<FfsState> st_;
};

class FfsScaling final : public platform::ScalingPolicy {
 public:
  explicit FfsScaling(std::shared_ptr<FfsState> st) : st_(std::move(st)) {}
  void Attach(platform::PlatformCore& core) override;
  void Tick(platform::PlatformCore& core) override;
  void OnCompleted(platform::PlatformCore& core, RequestId rid,
                   FunctionId fn) override;

 private:
  std::shared_ptr<FfsState> st_;
};

/// The FluidFaaS policy bundle. Pass a state to share it with the caller
/// (introspection); defaults to a fresh one.
platform::PolicyBundle MakeFluidFaasBundle(
    std::shared_ptr<FfsState> state = nullptr);

/// Register the FluidFaaS schedulers ("FluidFaaS", "FluidFaaS-dist") in the
/// platform::registry factory. Idempotent.
void RegisterFluidFaasSchedulers();

/// Convenience platform: a PlatformCore pre-wired with the FluidFaaS bundle
/// and the recorder subscribed to the simulator's bus, plus introspection
/// over the shared FfsState for tests and benches.
class FluidFaasPlatform : public platform::PlatformCore {
 public:
  FluidFaasPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                    metrics::Recorder& recorder,
                    std::vector<platform::FunctionSpec> functions,
                    platform::PlatformConfig config);

  /// Introspection for tests.
  int NumExclusiveHot(FunctionId fn) const;
  bool HasTimeSharingInstance(FunctionId fn) const;
  bool TimeSharingResident(FunctionId fn) const;
  std::size_t evictions() const { return state_->evictions; }
  std::size_t promotions() const { return state_->promotions; }
  std::size_t demotions() const { return state_->demotions; }
  std::size_t migrations() const { return state_->migrations; }
  std::size_t pipelines_launched() const { return state_->pipelines_launched; }

 private:
  FluidFaasPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
                    metrics::Recorder& recorder,
                    std::vector<platform::FunctionSpec> functions,
                    platform::PlatformConfig config,
                    std::shared_ptr<FfsState> state);

  std::shared_ptr<FfsState> state_;
};

}  // namespace fluidfaas::core
