#include "core/partitioner.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/stats.h"

namespace fluidfaas::core {

SimDuration StageLatencyOnGpcs(const model::AppDag& dag, int begin, int end,
                               int gpcs) {
  SimDuration t = 0;
  for (int i = begin; i < end; ++i) {
    t += dag.component(i).ExpectedLatencyOnGpcs(gpcs);
  }
  return t;
}

Bytes StageMemory(const model::AppDag& dag, int begin, int end) {
  Bytes b = 0;
  for (int i = begin; i < end; ++i) b += dag.component(i).MemoryRequired();
  return b;
}

Bytes StageWeights(const model::AppDag& dag, int begin, int end) {
  Bytes b = 0;
  for (int i = begin; i < end; ++i) b += dag.component(i).weights;
  return b;
}

std::optional<StagePlan> MakeStagePlan(const model::AppDag& dag, int begin,
                                       int end) {
  FFS_CHECK(begin >= 0 && begin < end && end <= dag.size());
  StagePlan s;
  s.begin = begin;
  s.end = end;
  s.memory = StageMemory(dag, begin, end);
  s.weights = StageWeights(dag, begin, end);
  gpu::MigProfile p;
  if (!gpu::SmallestProfileForMemory(s.memory, p)) return std::nullopt;
  s.min_profile = p;
  s.time_on_min_profile = StageLatencyOnGpcs(dag, begin, end, gpu::Gpcs(p));
  return s;
}

namespace {

double CandidateCv(const PipelineCandidate& c) {
  std::vector<double> times;
  times.reserve(c.stages.size());
  for (const StagePlan& s : c.stages) {
    times.push_back(static_cast<double>(s.time_on_min_profile));
  }
  return CoefficientOfVariation(times);
}

SimDuration CandidateLatency(const PipelineCandidate& c) {
  SimDuration t = 0;
  for (const StagePlan& s : c.stages) t += s.time_on_min_profile;
  return t;
}

std::vector<int> CutPattern(const PipelineCandidate& c) {
  std::vector<int> cuts;
  for (const StagePlan& s : c.stages) cuts.push_back(s.begin);
  return cuts;
}

}  // namespace

std::vector<PipelineCandidate> EnumerateRankedPipelines(
    const model::AppDag& dag, int max_stages, RankPolicy policy) {
  FFS_CHECK(max_stages >= 1);
  const int k = dag.size();
  std::vector<PipelineCandidate> out;

  // Each subset of the k-1 cut positions is one candidate; iterate via a
  // bitmask (k <= ~20 easily tractable; the paper's apps have k <= 5).
  FFS_CHECK_MSG(k <= 20, "DAG too large for exhaustive partition enumeration");
  const unsigned num_masks = 1u << (k - 1);
  for (unsigned mask = 0; mask < num_masks; ++mask) {
    PipelineCandidate cand;
    bool feasible = true;
    int begin = 0;
    for (int cut = 1; cut <= k; ++cut) {
      const bool boundary = (cut == k) || (mask & (1u << (cut - 1)));
      if (!boundary) continue;
      auto stage = MakeStagePlan(dag, begin, cut);
      if (!stage) {
        feasible = false;
        break;
      }
      cand.stages.push_back(*stage);
      begin = cut;
    }
    if (!feasible) continue;
    if (cand.num_stages() > max_stages) continue;
    cand.cv = CandidateCv(cand);
    out.push_back(std::move(cand));
  }

  auto by_cv = [](const PipelineCandidate& a, const PipelineCandidate& b) {
    if (a.cv != b.cv) return a.cv < b.cv;
    if (a.num_stages() != b.num_stages())
      return a.num_stages() < b.num_stages();
    return CutPattern(a) < CutPattern(b);
  };
  auto by_stages = [&](const PipelineCandidate& a,
                       const PipelineCandidate& b) {
    if (a.num_stages() != b.num_stages())
      return a.num_stages() < b.num_stages();
    return by_cv(a, b);
  };
  auto by_latency = [&](const PipelineCandidate& a,
                        const PipelineCandidate& b) {
    const SimDuration la = CandidateLatency(a);
    const SimDuration lb = CandidateLatency(b);
    if (la != lb) return la < lb;
    return by_cv(a, b);
  };

  switch (policy) {
    case RankPolicy::kCv:
      std::sort(out.begin(), out.end(), by_cv);
      break;
    case RankPolicy::kFewestStages:
      std::sort(out.begin(), out.end(), by_stages);
      break;
    case RankPolicy::kGreedyLatency:
      std::sort(out.begin(), out.end(), by_latency);
      break;
  }
  return out;
}

std::optional<gpu::MigProfile> MinMonolithicProfile(const model::AppDag& dag) {
  gpu::MigProfile p;
  if (!gpu::SmallestProfileForMemory(dag.TotalMemory(), p)) {
    return std::nullopt;
  }
  return p;
}

std::optional<gpu::MigProfile> MinPipelinedProfile(const model::AppDag& dag,
                                                   int max_stages) {
  auto candidates = EnumerateRankedPipelines(dag, max_stages);
  std::optional<gpu::MigProfile> best;
  for (const PipelineCandidate& c : candidates) {
    gpu::MigProfile widest = c.stages.front().min_profile;
    for (const StagePlan& s : c.stages) {
      if (gpu::Gpcs(s.min_profile) > gpu::Gpcs(widest)) {
        widest = s.min_profile;
      }
    }
    if (!best || gpu::Gpcs(widest) < gpu::Gpcs(*best)) best = widest;
  }
  return best;
}

std::string ToString(const PipelineCandidate& c) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < c.stages.size(); ++i) {
    const StagePlan& s = c.stages[i];
    if (i) os << " | ";
    os << "[" << s.begin << "," << s.end << ")@" << gpu::Name(s.min_profile)
       << " " << ToMillis(s.time_on_min_profile) << "ms";
  }
  os << "} cv=" << c.cv;
  return os.str();
}

}  // namespace fluidfaas::core
