// CV-based pipeline partitioning (paper §5.2.2, Eq. 1).
//
// The linearized FFS DAG with k components admits 2^(k-1) consecutive
// partitions into stages. For each candidate the partitioner computes the
// coefficient of variation of the stage execution times — lower CV means a
// better-balanced pipeline — and ranks candidates ascending. This ranking is
// computed once per application ("offline"); at launch time the invoker
// walks the ranked list and deploys the first candidate the currently free
// MIG slices can support.
//
// Stage execution time for ranking uses each stage's *minimum feasible*
// profile (smallest profile whose memory holds the stage) — the deployment
// the invoker will most often make on fragmented slices. The trivial
// single-stage candidate has CV = 0 and therefore always ranks first, which
// yields the paper's "avoid pipelines if unnecessary" behaviour for free.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gpu/mig_profile.h"
#include "model/app.h"
#include "model/costs.h"

namespace fluidfaas::core {

/// One stage: the consecutive component range [begin, end) of the
/// linearized DAG, with derived planning data.
struct StagePlan {
  int begin = 0;
  int end = 0;
  Bytes memory = 0;                  // resident memory of the stage
  Bytes weights = 0;                 // reloadable weight bytes
  gpu::MigProfile min_profile;       // smallest profile holding `memory`
  SimDuration time_on_min_profile = 0;

  int size() const { return end - begin; }
};

/// A ranked pipeline candidate.
struct PipelineCandidate {
  std::vector<StagePlan> stages;
  double cv = 0.0;

  int num_stages() const { return static_cast<int>(stages.size()); }
  bool IsMonolithic() const { return stages.size() == 1; }
};

/// Expected execution time of components [begin, end) on `gpcs` GPCs.
SimDuration StageLatencyOnGpcs(const model::AppDag& dag, int begin, int end,
                               int gpcs);

/// Resident memory / weights of components [begin, end).
Bytes StageMemory(const model::AppDag& dag, int begin, int end);
Bytes StageWeights(const model::AppDag& dag, int begin, int end);

/// Build a StagePlan; returns nullopt when no profile can hold the stage.
std::optional<StagePlan> MakeStagePlan(const model::AppDag& dag, int begin,
                                       int end);

/// Ranking policies; kCv is the paper's design, the others exist for the
/// ablation bench (bench/ablation_partitioner.cpp).
enum class RankPolicy {
  kCv,            // ascending CV, ties: fewer stages, then lexicographic
  kFewestStages,  // ascending stage count, ties: CV
  kGreedyLatency, // ascending end-to-end latency on min profiles
};

/// Enumerate all feasible consecutive partitions into 1..max_stages stages,
/// ranked by `policy`. Candidates with any infeasible stage are dropped.
std::vector<PipelineCandidate> EnumerateRankedPipelines(
    const model::AppDag& dag, int max_stages,
    RankPolicy policy = RankPolicy::kCv);

/// Minimum profile that can host the whole function monolithically, if any.
std::optional<gpu::MigProfile> MinMonolithicProfile(const model::AppDag& dag);

/// Minimum over ranked multi-or-single-stage candidates of the *largest*
/// min_profile any stage needs — the "MIG to run (FluidFaaS)" column of
/// Table 5: the smallest slice class that suffices when pipelining is
/// allowed.
std::optional<gpu::MigProfile> MinPipelinedProfile(const model::AppDag& dag,
                                                   int max_stages);

std::string ToString(const PipelineCandidate& c);

}  // namespace fluidfaas::core
