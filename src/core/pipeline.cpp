#include "core/pipeline.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace fluidfaas::core {

SimDuration PipelinePlan::BottleneckTime() const {
  SimDuration worst = 0;
  for (const StageBinding& s : stages) {
    worst = std::max(worst, s.exec_time + s.hop_out);
  }
  return worst;
}

SimDuration PipelinePlan::EndToEndLatency() const {
  SimDuration t = 0;
  for (const StageBinding& s : stages) t += s.exec_time + s.hop_out;
  return t;
}

Bytes PipelinePlan::TotalWeights() const {
  Bytes b = 0;
  for (const StageBinding& s : stages) b += s.plan.weights;
  return b;
}

int PipelinePlan::TotalGpcs() const {
  int g = 0;
  for (const StageBinding& s : stages) g += gpu::Gpcs(s.profile);
  return g;
}

std::string PipelinePlan::ToString() const {
  std::ostringstream os;
  os << "node " << node.value << " {";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageBinding& s = stages[i];
    if (i) os << " -> ";
    os << "[" << s.plan.begin << "," << s.plan.end << ")@slice"
       << s.slice.value << "(" << gpu::Name(s.profile) << ")";
  }
  os << "}";
  return os.str();
}

std::optional<PipelinePlan> TryPlanOnNode(
    const model::AppDag& dag, const PipelineCandidate& candidate,
    const gpu::ClusterView& view, NodeId node,
    const model::TransferCostModel& transfer) {
  const std::vector<SliceId> free = view.FreeSlicesOnNode(node);
  if (free.size() < candidate.stages.size()) return std::nullopt;

  // Per-stage feasible slice lists (memory fit).
  std::vector<std::vector<SliceId>> feasible(candidate.stages.size());
  for (std::size_t i = 0; i < candidate.stages.size(); ++i) {
    for (SliceId sid : free) {
      if (view.slice(sid).memory() >= candidate.stages[i].memory) {
        feasible[i].push_back(sid);
      }
    }
    if (feasible[i].empty()) return std::nullopt;
  }

  // Exhaustive backtracking over distinct-slice assignments, keeping the
  // cheapest (fewest GPCs, then lowest ids). Stage counts are <= 5-6 and
  // nodes expose <= a few dozen slices, so this is microseconds of work.
  std::vector<SliceId> current(candidate.stages.size());
  std::vector<SliceId> best;
  int best_gpcs = std::numeric_limits<int>::max();
  std::vector<bool> used(view.num_slices(), false);

  std::function<void(std::size_t, int)> search = [&](std::size_t stage,
                                                     int gpcs) {
    if (gpcs >= best_gpcs) return;  // cannot improve
    if (stage == candidate.stages.size()) {
      std::vector<SliceId> ids = current;
      if (gpcs < best_gpcs ||
          (gpcs == best_gpcs &&
           (best.empty() || ids < best))) {
        best = ids;
        best_gpcs = gpcs;
      }
      return;
    }
    for (SliceId sid : feasible[stage]) {
      const std::size_t idx = static_cast<std::size_t>(sid.value);
      if (used[idx]) continue;
      used[idx] = true;
      current[stage] = sid;
      search(stage + 1, gpcs + view.slice(sid).gpcs());
      used[idx] = false;
    }
  };
  search(0, 0);
  if (best.empty()) return std::nullopt;

  PipelinePlan plan;
  plan.node = node;
  plan.stages.reserve(candidate.stages.size());
  for (std::size_t i = 0; i < candidate.stages.size(); ++i) {
    StageBinding b;
    b.plan = candidate.stages[i];
    b.slice = best[i];
    b.profile = view.slice(best[i]).profile();
    b.exec_time =
        StageLatencyOnGpcs(dag, b.plan.begin, b.plan.end, gpu::Gpcs(b.profile));
    if (i + 1 < candidate.stages.size()) {
      b.hop_out = transfer.HopCost(dag.CutBytes(b.plan.end));
    }
    plan.stages.push_back(b);
  }
  return plan;
}

std::optional<PipelinePlan> MonolithicPlanOnSlice(const model::AppDag& dag,
                                                  const gpu::ClusterView& view,
                                                  SliceId slice) {
  const gpu::MigSlice& s = view.slice(slice);
  if (s.memory() < dag.TotalMemory()) return std::nullopt;
  auto stage = MakeStagePlan(dag, 0, dag.size());
  if (!stage) return std::nullopt;

  PipelinePlan plan;
  plan.node = s.node;
  StageBinding b;
  b.plan = *stage;
  b.slice = slice;
  b.profile = s.profile();
  b.exec_time = StageLatencyOnGpcs(dag, 0, dag.size(), s.gpcs());
  b.hop_out = 0;
  plan.stages.push_back(b);
  return plan;
}

std::optional<PipelinePlan> MonolithicPlanOnSmallestSlice(
    const model::AppDag& dag, const gpu::ClusterView& view) {
  const auto sid = view.SmallestFreeSliceWithMemory(dag.TotalMemory());
  if (!sid) return std::nullopt;
  return MonolithicPlanOnSlice(dag, view, *sid);
}

std::optional<PipelinePlan> PlanFirstFeasible(
    const model::AppDag& dag,
    const std::vector<PipelineCandidate>& candidates,
    const gpu::ClusterView& view, const model::TransferCostModel& transfer) {
  for (const PipelineCandidate& cand : candidates) {
    for (int n = 0; n < view.num_nodes(); ++n) {
      auto plan = TryPlanOnNode(dag, cand, view, NodeId(n), transfer);
      if (plan) return plan;
    }
  }
  return std::nullopt;
}

}  // namespace fluidfaas::core
