// Pipeline deployment: mapping a ranked PipelineCandidate onto concrete free
// MIG slices of one node (paper §5.2.2, the invoker's local scheduling).
//
// All stages of one instance must live on the same node because inter-stage
// tensors travel through that node's host shared memory; slices may come
// from different GPUs on the node (host memory is equally reachable), which
// is exactly how fragmented slices across GPUs become usable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/partitioner.h"
#include "gpu/cluster_view.h"
#include "model/app.h"
#include "model/costs.h"

namespace fluidfaas::core {

/// One stage bound to a concrete slice.
struct StageBinding {
  StagePlan plan;
  SliceId slice;
  gpu::MigProfile profile;      // profile of `slice`
  SimDuration exec_time = 0;    // stage latency on this profile
  SimDuration hop_out = 0;      // transfer into the next stage (0 for last)
};

/// A fully planned (but not yet launched) pipeline deployment.
struct PipelinePlan {
  std::vector<StageBinding> stages;
  NodeId node;

  bool IsMonolithic() const { return stages.size() == 1; }
  int num_stages() const { return static_cast<int>(stages.size()); }

  /// Steady-state cycle time: the slowest stage (exec + outbound hop)
  /// bounds throughput (paper §5.2: "use the maximum execution time among
  /// them as the stage's execution time").
  SimDuration BottleneckTime() const;

  /// End-to-end service latency of one request through an idle pipeline.
  SimDuration EndToEndLatency() const;

  /// Total weight bytes (reload cost accounting).
  Bytes TotalWeights() const;

  /// GPCs bound by this plan.
  int TotalGpcs() const;

  std::string ToString() const;
};

/// Try to bind `candidate`'s stages to free slices on node `node` as seen
/// through `view` (a bare Cluster converts to an overlay-free view). Uses
/// exhaustive backtracking over per-stage feasible slices (stage counts are
/// tiny); among feasible bindings prefers the one using the fewest total
/// GPCs, then lowest slice ids — i.e. leave big slices free for functions
/// that need them. Does NOT bind or reserve the slices; callers stage the
/// plan into a platform::PlacementPlan and commit.
std::optional<PipelinePlan> TryPlanOnNode(
    const model::AppDag& dag, const PipelineCandidate& candidate,
    const gpu::ClusterView& view, NodeId node,
    const model::TransferCostModel& transfer);

/// Single-stage plan hosting the whole DAG on one specific slice; nullopt
/// when the slice's memory cannot hold the function.
std::optional<PipelinePlan> MonolithicPlanOnSlice(
    const model::AppDag& dag, const gpu::ClusterView& view, SliceId slice);

/// Single-stage plan on the smallest free slice (through the view) that
/// fits the whole DAG — the shared "spawn from the smallest slice" step of
/// the FluidFaaS time-sharing path, INFless, and the repartition baseline.
std::optional<PipelinePlan> MonolithicPlanOnSmallestSlice(
    const model::AppDag& dag, const gpu::ClusterView& view);

/// Walk `candidates` in ranked order across all nodes (lowest node id
/// first) and return the first deployable plan — the paper's launch
/// procedure ("evaluated in order ... until a suitable pipeline is found").
std::optional<PipelinePlan> PlanFirstFeasible(
    const model::AppDag& dag,
    const std::vector<PipelineCandidate>& candidates,
    const gpu::ClusterView& view, const model::TransferCostModel& transfer);

}  // namespace fluidfaas::core
