#include "gpu/cluster.h"

#include <algorithm>
#include <sstream>

namespace fluidfaas::gpu {

Gpu::Gpu(GpuId id, NodeId node, const MigPartition& partition,
         SliceId first_slice_id)
    : id_(id), node_(node) {
  Repartition(partition, first_slice_id);
}

bool Gpu::AllSlicesFree() const {
  return std::all_of(slices_.begin(), slices_.end(),
                     [](const MigSlice& s) { return s.free(); });
}

void Gpu::Repartition(const MigPartition& partition, SliceId first_slice_id) {
  FFS_CHECK_MSG(AllSlicesFree(), "cannot repartition a GPU with bound slices");
  partition_ = partition;
  slices_.clear();
  std::int32_t next = first_slice_id.value;
  for (const Placement& pl : partition_.placements()) {
    MigSlice s;
    s.id = SliceId(next++);
    s.node = node_;
    s.gpu = id_;
    s.placement = pl;
    s.occupant = InstanceId();
    slices_.push_back(s);
  }
}

Cluster::Cluster(std::vector<std::vector<MigPartition>> node_partitions) {
  std::int32_t gpu_id = 0;
  std::int32_t slice_id = 0;
  for (std::size_t n = 0; n < node_partitions.size(); ++n) {
    gpus_per_node_.push_back(static_cast<int>(node_partitions[n].size()));
    for (const MigPartition& part : node_partitions[n]) {
      gpus_.emplace_back(GpuId(gpu_id++), NodeId(static_cast<int>(n)), part,
                         SliceId(slice_id));
      slice_id += static_cast<std::int32_t>(part.slice_count());
    }
  }
  RebuildSliceIndex();
}

Cluster Cluster::Uniform(int num_nodes, int gpus_per_node,
                         const MigPartition& partition) {
  FFS_CHECK(num_nodes > 0 && gpus_per_node > 0);
  std::vector<std::vector<MigPartition>> parts(
      static_cast<std::size_t>(num_nodes),
      std::vector<MigPartition>(static_cast<std::size_t>(gpus_per_node),
                                partition));
  return Cluster(std::move(parts));
}

void Cluster::RebuildSliceIndex() {
  slices_.clear();
  for (auto& set : free_by_profile_) set.clear();
  free_all_.clear();
  for (std::size_t g = 0; g < gpus_.size(); ++g) {
    for (std::size_t l = 0; l < gpus_[g].slices().size(); ++l) {
      const MigSlice& s = gpus_[g].slices()[l];
      FFS_CHECK_MSG(static_cast<std::size_t>(s.id.value) == slices_.size(),
                    "slice ids must be dense and in order");
      slices_.push_back(SliceRef{static_cast<int>(g), static_cast<int>(l)});
      if (s.allocatable()) AddFree(s);
    }
  }
}

void Cluster::AddFree(const MigSlice& s) {
  free_by_profile_[static_cast<std::size_t>(s.profile())].insert(s.id.value);
  free_all_.insert(s.id.value);
}

void Cluster::RemoveFree(const MigSlice& s) {
  free_by_profile_[static_cast<std::size_t>(s.profile())].erase(s.id.value);
  free_all_.erase(s.id.value);
}

const Gpu& Cluster::gpu(GpuId id) const {
  FFS_CHECK(id.valid() &&
            static_cast<std::size_t>(id.value) < gpus_.size());
  return gpus_[static_cast<std::size_t>(id.value)];
}

const MigSlice& Cluster::slice(SliceId id) const {
  FFS_CHECK(id.valid() &&
            static_cast<std::size_t>(id.value) < slices_.size());
  const SliceRef& r = slices_[static_cast<std::size_t>(id.value)];
  if (r.gpu < 0) {
    RaiseError(ErrorCode::kSliceRetired,
               "slice " + ToString(id) + " was retired by a repartition");
  }
  return gpus_[static_cast<std::size_t>(r.gpu)]
      .slices_[static_cast<std::size_t>(r.local)];
}

MigSlice& Cluster::mutable_slice(SliceId id) {
  return const_cast<MigSlice&>(
      static_cast<const Cluster*>(this)->slice(id));
}

std::vector<SliceId> Cluster::AllSlices() const {
  std::vector<SliceId> out;
  out.reserve(slices_.size());
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    if (slices_[i].gpu < 0) continue;  // retired by a repartition
    out.push_back(SliceId(static_cast<std::int32_t>(i)));
  }
  return out;
}

bool Cluster::IsDead(SliceId id) const {
  FFS_CHECK(id.valid() &&
            static_cast<std::size_t>(id.value) < slices_.size());
  return slices_[static_cast<std::size_t>(id.value)].gpu < 0;
}

std::vector<SliceId> Cluster::RepartitionGpu(GpuId gpu_id,
                                             const MigPartition& partition) {
  FFS_CHECK(gpu_id.valid() &&
            static_cast<std::size_t>(gpu_id.value) < gpus_.size());
  Gpu& g = gpus_[static_cast<std::size_t>(gpu_id.value)];
  FFS_CHECK_MSG(g.AllSlicesFree(),
                "cannot repartition GPU " + ToString(gpu_id) +
                    " while slices are bound");
  // Retire the old ids (failed slices were never in the free indexes;
  // RemoveFree is a harmless no-op for them).
  for (const MigSlice& s : g.slices()) {
    RemoveFree(s);
    slices_[static_cast<std::size_t>(s.id.value)] = SliceRef{-1, -1};
  }
  // Renumber the GPU's slices at the end of the id space.
  const SliceId first(static_cast<std::int32_t>(slices_.size()));
  g.Repartition(partition, first);
  std::vector<SliceId> fresh;
  for (std::size_t l = 0; l < g.slices().size(); ++l) {
    slices_.push_back(SliceRef{gpu_id.value, static_cast<int>(l)});
    AddFree(g.slices()[l]);
    fresh.push_back(g.slices()[l].id);
  }
  return fresh;
}

std::vector<SliceId> Cluster::FreeSlices() const {
  std::vector<SliceId> out;
  out.reserve(free_all_.size());
  for (std::int32_t id : free_all_) out.push_back(SliceId(id));
  return out;
}

std::vector<SliceId> Cluster::FreeSlices(MigProfile profile) const {
  const auto& set = free_by_profile_[static_cast<std::size_t>(profile)];
  std::vector<SliceId> out;
  out.reserve(set.size());
  for (std::int32_t id : set) out.push_back(SliceId(id));
  return out;
}

std::vector<SliceId> Cluster::FreeSlicesOnNode(NodeId node) const {
  std::vector<SliceId> out;
  for (std::int32_t id : free_all_) {
    const SliceId sid(id);
    if (slice(sid).node == node) out.push_back(sid);
  }
  return out;
}

std::optional<SliceId> Cluster::SmallestFreeSliceWithMemory(
    Bytes min_memory) const {
  // Each profile's free set is id-ordered, so its begin() is that profile's
  // deterministic candidate; picking the fewest-GPC (then lowest-id)
  // candidate reproduces the historical full scan exactly.
  std::optional<SliceId> best;
  int best_gpcs = 0;
  for (MigProfile p : kAllProfiles) {
    if (MemBytes(p) < min_memory) continue;
    const auto& set = free_by_profile_[static_cast<std::size_t>(p)];
    if (set.empty()) continue;
    const SliceId candidate(*set.begin());
    const int gpcs = Gpcs(p);
    if (!best || gpcs < best_gpcs ||
        (gpcs == best_gpcs && candidate.value < best->value)) {
      best = candidate;
      best_gpcs = gpcs;
    }
  }
  return best;
}

void Cluster::Bind(SliceId sid, InstanceId instance) {
  MigSlice& s = mutable_slice(sid);
  if (!s.free()) {
    RaiseError(ErrorCode::kSliceOccupied,
               "strong-isolation violation: slice " + ToString(sid) +
                   " already bound to instance " + ToString(s.occupant));
  }
  if (s.failed) {
    RaiseError(ErrorCode::kSliceFailed,
               "binding failed slice " + ToString(sid) + " before repair");
  }
  FFS_CHECK(instance.valid());
  s.occupant = instance;
  RemoveFree(s);
}

void Cluster::MarkFailed(SliceId sid) {
  MigSlice& s = mutable_slice(sid);
  FFS_CHECK_MSG(s.free(),
                "MarkFailed on slice " + ToString(sid) +
                    " while still bound; crash the occupant first");
  FFS_CHECK_MSG(!s.failed, "slice " + ToString(sid) + " already failed");
  s.failed = true;
  RemoveFree(s);
}

void Cluster::Repair(SliceId sid) {
  FFS_CHECK(sid.valid() &&
            static_cast<std::size_t>(sid.value) < slices_.size());
  if (IsDead(sid)) return;  // a repartition already replaced this slice
  MigSlice& s = mutable_slice(sid);
  FFS_CHECK_MSG(s.failed, "Repair on healthy slice " + ToString(sid));
  s.failed = false;
  if (s.free()) AddFree(s);
}

bool Cluster::IsFailed(SliceId sid) const {
  FFS_CHECK(sid.valid() &&
            static_cast<std::size_t>(sid.value) < slices_.size());
  return !IsDead(sid) && slice(sid).failed;
}

std::vector<SliceId> Cluster::FailedSlices() const {
  std::vector<SliceId> out;
  for (SliceId id : AllSlices()) {
    if (slice(id).failed) out.push_back(id);
  }
  return out;
}

void Cluster::Release(SliceId sid, InstanceId instance) {
  MigSlice& s = mutable_slice(sid);
  if (s.occupant != instance) {
    RaiseError(ErrorCode::kNotOccupant,
               "release by non-occupant " + ToString(instance) +
                   " on slice " + ToString(sid) + " held by " +
                   ToString(s.occupant));
  }
  s.occupant = InstanceId();
  if (!s.failed) AddFree(s);
}

int Cluster::TotalGpcs() const {
  int g = 0;
  for (const Gpu& gpu : gpus_) g += gpu.partition().total_gpcs();
  return g;
}

int Cluster::BoundGpcs() const {
  int g = 0;
  for (SliceId id : AllSlices()) {
    const MigSlice& s = slice(id);
    if (!s.free()) g += s.gpcs();
  }
  return g;
}

bool Cluster::GpuHasBoundSlice(GpuId id) const {
  for (const MigSlice& s : gpu(id).slices()) {
    if (!s.free()) return true;
  }
  return false;
}

std::string Cluster::Describe() const {
  std::ostringstream os;
  os << num_nodes() << " node(s), " << num_gpus() << " GPU(s), "
     << num_slices() << " slice(s):\n";
  for (const Gpu& g : gpus_) {
    os << "  node " << g.node().value << " gpu " << g.id().value << ": "
       << g.partition().ToString() << "\n";
  }
  return os.str();
}

}  // namespace fluidfaas::gpu
