// Cluster model: nodes of A100 GPUs, each GPU carved into MIG slices.
//
// This layer owns slice identity and the *strong-isolation invariant*: a MIG
// slice is bound to at most one function instance at any instant (paper §4,
// "only one instance to access a MIG slice at any given time"). Binding and
// release go through Cluster so the invariant is enforced in one place.
//
// Reconfiguring a GPU's partition is modelled with the minutes-scale cost the
// paper cites (§2.2); schedulers treat it as prohibitive, which is precisely
// the rigidity FluidFaaS works around.
#pragma once

#include <array>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "gpu/mig_partition.h"

namespace fluidfaas::gpu {

/// One MIG slice as the platform sees it.
struct MigSlice {
  SliceId id;              // cluster-unique
  NodeId node;
  GpuId gpu;               // cluster-unique GPU index
  Placement placement;     // profile + memory-slot position
  InstanceId occupant;     // invalid() when free
  bool failed = false;     // hardware fault; unallocatable until repaired

  MigProfile profile() const { return placement.profile; }
  int gpcs() const { return Gpcs(placement.profile); }
  Bytes memory() const { return MemBytes(placement.profile); }
  bool free() const { return !occupant.valid(); }
  /// Free AND healthy — the only slices schedulers may bind.
  bool allocatable() const { return free() && !failed; }
};

/// A single GPU: its partition and the slices it exposes.
class Gpu {
 public:
  Gpu(GpuId id, NodeId node, const MigPartition& partition,
      SliceId first_slice_id);

  GpuId id() const { return id_; }
  NodeId node() const { return node_; }
  const MigPartition& partition() const { return partition_; }
  const std::vector<MigSlice>& slices() const { return slices_; }

  bool AllSlicesFree() const;

 private:
  // Occupancy and failure state may only change through Cluster's
  // Bind/Release/MarkFailed/Repair/RepartitionGpu, which keep the
  // strong-isolation invariant and the free-slice indexes coherent.
  friend class Cluster;

  /// Replace the partition (slice ids are renumbered starting at
  /// `first_slice_id`). Requires all slices free. The caller accounts for
  /// the reconfiguration delay via ReconfigCost().
  void Repartition(const MigPartition& partition, SliceId first_slice_id);

  GpuId id_;
  NodeId node_;
  MigPartition partition_;
  std::vector<MigSlice> slices_;
};

/// Cost model of a MIG reconfiguration (checkpoint + repartition + resume);
/// "several minutes" per the paper (§2.2) and Miso.
struct ReconfigCostModel {
  SimDuration fixed = Minutes(3.0);
  /// Extra cost per GiB of state checkpointed off the GPU.
  SimDuration per_gib_checkpoint = Millis(400);

  SimDuration Cost(Bytes checkpointed_state) const {
    return fixed + static_cast<SimDuration>(
                       ToSeconds(per_gib_checkpoint) * 1e6 *
                       (static_cast<double>(checkpointed_state) / kGiB));
  }
};

/// Whole-cluster topology and slice registry.
class Cluster {
 public:
  /// `node_partitions[n][g]` is the partition of GPU g on node n.
  explicit Cluster(std::vector<std::vector<MigPartition>> node_partitions);

  /// Convenience: `num_nodes` nodes × `gpus_per_node` GPUs, all with the
  /// same partition (the paper's default setup is 2 nodes × 8 GPUs).
  static Cluster Uniform(int num_nodes, int gpus_per_node,
                         const MigPartition& partition);

  int num_nodes() const { return static_cast<int>(gpus_per_node_.size()); }
  int num_gpus() const { return static_cast<int>(gpus_.size()); }
  std::size_t num_slices() const { return slices_.size(); }

  const Gpu& gpu(GpuId id) const;
  const std::vector<Gpu>& gpus() const { return gpus_; }

  const MigSlice& slice(SliceId id) const;

  /// All slices, cluster-wide, in id order.
  std::vector<SliceId> AllSlices() const;

  /// Allocatable (free and healthy) slices, optionally restricted to one
  /// profile / one node. Failed slices never appear here. Served from
  /// free-slice indexes maintained on Bind/Release/MarkFailed/Repair, so
  /// queries cost O(answer), not O(cluster).
  std::vector<SliceId> FreeSlices() const;
  std::vector<SliceId> FreeSlices(MigProfile profile) const;
  std::vector<SliceId> FreeSlicesOnNode(NodeId node) const;

  /// Smallest allocatable slice with at least `min_memory`; prefers fewer
  /// GPCs, then lower slice id (deterministic). nullopt when none qualifies.
  /// O(#profiles) via the per-profile free lists.
  std::optional<SliceId> SmallestFreeSliceWithMemory(Bytes min_memory) const;

  /// Bind / release enforce the strong-isolation invariant. Violations raise
  /// FfsError with a typed code: Bind on an occupied slice ->
  /// ErrorCode::kSliceOccupied, Bind on a faulted slice ->
  /// ErrorCode::kSliceFailed, Release by a non-occupant ->
  /// ErrorCode::kNotOccupant, any access to a repartitioned-away id ->
  /// ErrorCode::kSliceRetired.
  void Bind(SliceId sid, InstanceId instance);
  void Release(SliceId sid, InstanceId instance);

  /// Fault a slice: it must already be free (the platform crashes and
  /// releases the occupant first) and stays unallocatable until Repair().
  /// The paper's isolation claim is exactly that the failure stops here —
  /// sibling slices of the same GPU keep serving.
  void MarkFailed(SliceId sid);

  /// Bring a failed slice back. Ignores slices retired by a repartition in
  /// the meantime (repartitioning replaces broken slices with fresh ids).
  void Repair(SliceId sid);

  bool IsFailed(SliceId sid) const;

  /// Currently failed (and not repartitioned-away) slices, in id order.
  std::vector<SliceId> FailedSlices() const;

  /// Replace a GPU's MIG partition at runtime (all its slices must be
  /// free). The old slice ids die permanently; the new slices get fresh
  /// cluster-unique ids, returned in placement order. The caller accounts
  /// for the minutes-scale delay via ReconfigCostModel and must re-sync any
  /// per-slice observers (e.g. metrics::Recorder::SyncSlices).
  std::vector<SliceId> RepartitionGpu(GpuId gpu,
                                      const MigPartition& partition);

  /// True when `sid` refers to a slice retired by a repartition.
  bool IsDead(SliceId sid) const;

  /// GPC accounting (for utilization metrics).
  int TotalGpcs() const;
  int BoundGpcs() const;

  /// True if any slice of `gpu` is bound.
  bool GpuHasBoundSlice(GpuId gpu) const;

  std::string Describe() const;

 private:
  // ClusterView reads the free-slice indexes directly for its overlay-aware
  // queries; it never mutates.
  friend class ClusterView;

  // Slice index entries are (gpu index, index into that GPU's slice vector)
  // rather than raw pointers so Cluster stays freely movable/copyable.
  // gpu == -1 marks a slice id retired by RepartitionGpu.
  struct SliceRef {
    int gpu;
    int local;
  };

  // Mutable access is an implementation detail: all occupancy / failure
  // transitions go through the public Bind/Release/MarkFailed/Repair API so
  // the free-slice indexes below cannot drift from the slice state. (Named
  // distinctly from the const accessor so non-const callers still resolve
  // to the public read-only overload.)
  MigSlice& mutable_slice(SliceId id);

  void AddFree(const MigSlice& s);
  void RemoveFree(const MigSlice& s);

  std::vector<Gpu> gpus_;            // indexed by GpuId
  std::vector<SliceRef> slices_;     // indexed by SliceId
  std::vector<int> gpus_per_node_;   // node -> #GPUs

  // Allocatable slice ids, id-ordered: one set per profile plus the union.
  // Id order matters — planners iterate these and the deterministic
  // tie-breaks (lowest id first) are part of pinned bench output.
  std::array<std::set<std::int32_t>, kAllProfiles.size()> free_by_profile_;
  std::set<std::int32_t> free_all_;

  void RebuildSliceIndex();
};

}  // namespace fluidfaas::gpu
