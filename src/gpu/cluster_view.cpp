#include "gpu/cluster_view.h"

#include <algorithm>
#include <array>
#include <iterator>

namespace fluidfaas::gpu {

void ClusterView::Reserve(SliceId id) {
  FFS_CHECK_MSG(Allocatable(id),
                "Reserve on slice " + ToString(id) +
                    " that is not free in this view");
  reserved_.insert(id.value);
}

void ClusterView::MarkPlannedFree(SliceId id) {
  (void)cluster_->slice(id);  // must refer to a live (non-retired) slice
  planned_free_.insert(id.value);
}

std::vector<SliceId> ClusterView::Reserved() const {
  std::vector<SliceId> out;
  out.reserve(reserved_.size());
  for (std::int32_t id : reserved_) out.push_back(SliceId(id));
  return out;
}

bool ClusterView::Allocatable(SliceId id) const {
  if (reserved_.count(id.value) != 0) return false;
  const MigSlice& s = cluster_->slice(id);
  if (planned_free_.count(id.value) != 0) return !s.failed;
  return s.allocatable();
}

namespace {

// Union of the live free list and the planned-free overlay, both id-ordered.
std::vector<std::int32_t> MergeIds(const std::set<std::int32_t>& live,
                                   const std::set<std::int32_t>& planned) {
  std::vector<std::int32_t> ids;
  ids.reserve(live.size() + planned.size());
  std::merge(live.begin(), live.end(), planned.begin(), planned.end(),
             std::back_inserter(ids));
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

std::vector<SliceId> ClusterView::FreeSlices() const {
  std::vector<SliceId> out;
  for (std::int32_t id : MergeIds(cluster_->free_all_, planned_free_)) {
    const SliceId sid(id);
    if (Allocatable(sid)) out.push_back(sid);
  }
  return out;
}

std::vector<SliceId> ClusterView::FreeSlices(MigProfile profile) const {
  const auto& live = cluster_->free_by_profile_[static_cast<std::size_t>(
      profile)];
  std::vector<SliceId> out;
  for (std::int32_t id : MergeIds(live, planned_free_)) {
    const SliceId sid(id);
    if (Allocatable(sid) && cluster_->slice(sid).profile() == profile) {
      out.push_back(sid);
    }
  }
  return out;
}

std::vector<SliceId> ClusterView::FreeSlicesOnNode(NodeId node) const {
  std::vector<SliceId> out;
  for (std::int32_t id : MergeIds(cluster_->free_all_, planned_free_)) {
    const SliceId sid(id);
    if (Allocatable(sid) && cluster_->slice(sid).node == node) {
      out.push_back(sid);
    }
  }
  return out;
}

std::optional<SliceId> ClusterView::SmallestFreeSliceWithMemory(
    Bytes min_memory) const {
  // Lowest allocatable planned-free id per profile (the overlay is tiny).
  std::array<std::optional<SliceId>, kAllProfiles.size()> planned_min;
  for (std::int32_t id : planned_free_) {
    const SliceId sid(id);
    if (!Allocatable(sid)) continue;
    auto& slot = planned_min[static_cast<std::size_t>(
        cluster_->slice(sid).profile())];
    if (!slot) slot = sid;  // id-ordered set: first hit is the minimum
  }
  std::optional<SliceId> best;
  int best_gpcs = 0;
  for (MigProfile p : kAllProfiles) {
    if (MemBytes(p) < min_memory) continue;
    const std::size_t idx = static_cast<std::size_t>(p);
    std::optional<SliceId> cand = planned_min[idx];
    for (std::int32_t id : cluster_->free_by_profile_[idx]) {
      if (reserved_.count(id) != 0) continue;
      if (!cand || id < cand->value) cand = SliceId(id);
      break;  // first non-reserved live id is the live minimum
    }
    if (!cand) continue;
    const int gpcs = Gpcs(p);
    if (!best || gpcs < best_gpcs ||
        (gpcs == best_gpcs && cand->value < best->value)) {
      best = cand;
      best_gpcs = gpcs;
    }
  }
  return best;
}

}  // namespace fluidfaas::gpu
