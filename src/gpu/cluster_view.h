// ClusterView: a cheap read-only view of slice state with a reservation
// overlay, the planning half of the placement transaction (DESIGN.md §8).
//
// Planners search over a ClusterView instead of the live Cluster: Reserve()
// marks a slice tentatively occupied so a multi-slice pipeline search never
// picks the same slice twice, and MarkPlannedFree() exposes the slices of a
// planned eviction victim as candidates before the victim is actually
// retired. Nothing here mutates the Cluster — the reservations only become
// real when platform::PlatformCore::Commit() validates and applies the
// resulting PlacementPlan.
//
// Queries are served from the Cluster's per-profile free lists (maintained
// incrementally on Bind/Release), so a view costs O(overlay) to carry and
// free-slice lookups cost O(answer), not O(cluster).
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "gpu/cluster.h"

namespace fluidfaas::gpu {

class ClusterView {
 public:
  // Implicit on purpose: a bare Cluster is a view with an empty overlay, so
  // planner entry points taking `const ClusterView&` accept a Cluster
  // directly and planning-only call sites read naturally.
  ClusterView(const Cluster& cluster) : cluster_(&cluster) {}  // NOLINT

  const Cluster& cluster() const { return *cluster_; }

  int num_nodes() const { return cluster_->num_nodes(); }
  std::size_t num_slices() const { return cluster_->num_slices(); }
  const MigSlice& slice(SliceId id) const { return cluster_->slice(id); }

  /// Tentatively occupy a slice: it disappears from every free-slice query
  /// of this view. The slice must currently be visible as free here.
  void Reserve(SliceId id);

  /// Tentatively free a slice (a planned eviction of its occupant): it
  /// appears in this view's free-slice queries even though the live slice
  /// is still bound.
  void MarkPlannedFree(SliceId id);

  bool IsReserved(SliceId id) const {
    return reserved_.count(id.value) != 0;
  }

  /// Slice ids this view has reserved, in id order.
  std::vector<SliceId> Reserved() const;

  /// Free as seen through the overlay: (live allocatable or planned-free)
  /// and not reserved.
  bool Allocatable(SliceId id) const;

  /// Free-slice queries, mirroring gpu::Cluster's but overlay-aware. All
  /// results are in ascending id order (the determinism contract planners
  /// rely on).
  std::vector<SliceId> FreeSlices() const;
  std::vector<SliceId> FreeSlices(MigProfile profile) const;
  std::vector<SliceId> FreeSlicesOnNode(NodeId node) const;

  /// Smallest allocatable slice (through the overlay) with at least
  /// `min_memory`; fewest GPCs first, then lowest id — identical tie-breaks
  /// to Cluster::SmallestFreeSliceWithMemory.
  std::optional<SliceId> SmallestFreeSliceWithMemory(Bytes min_memory) const;

 private:
  const Cluster* cluster_;
  std::set<std::int32_t> reserved_;      // overlay: tentatively occupied
  std::set<std::int32_t> planned_free_;  // overlay: tentatively released
};

}  // namespace fluidfaas::gpu
