#include "gpu/mig_partition.h"

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <sstream>

#include "common/error.h"

namespace fluidfaas::gpu {
namespace {

bool StartAllowed(MigProfile p, int start) {
  const auto& starts = AllowedStartSlots(p);
  return std::find(starts.begin(), starts.end(), start) != starts.end();
}

/// Occupancy bitmask over the 8 memory slots.
using SlotMask = unsigned;

SlotMask MaskOf(const Placement& pl) {
  SlotMask m = 0;
  for (int s = pl.start_slot; s < pl.end_slot(); ++s) m |= 1u << s;
  return m;
}

}  // namespace

std::optional<std::string> ValidatePlacements(
    const std::vector<Placement>& placements) {
  SlotMask used = 0;
  int gpcs = 0;
  std::map<MigProfile, int> counts;
  for (const auto& pl : placements) {
    if (!StartAllowed(pl.profile, pl.start_slot)) {
      return std::string("profile ") + Name(pl.profile) +
             " cannot start at memory slot " + std::to_string(pl.start_slot);
    }
    if (pl.end_slot() > kMemSlotsPerGpu) {
      return std::string("placement of ") + Name(pl.profile) +
             " overflows the 8 memory slots";
    }
    const SlotMask m = MaskOf(pl);
    if (used & m) {
      return std::string("placement of ") + Name(pl.profile) + " at slot " +
             std::to_string(pl.start_slot) + " overlaps another slice";
    }
    used |= m;
    gpcs += Gpcs(pl.profile);
    if (++counts[pl.profile] > Info(pl.profile).max_count) {
      return std::string("more than ") +
             std::to_string(Info(pl.profile).max_count) + " instances of " +
             Name(pl.profile);
    }
  }
  if (gpcs > kGpcsPerGpu) {
    return "total GPC count " + std::to_string(gpcs) + " exceeds " +
           std::to_string(kGpcsPerGpu);
  }
  return std::nullopt;
}

MigPartition::MigPartition(std::vector<Placement> placements)
    : placements_(std::move(placements)) {
  std::sort(placements_.begin(), placements_.end(),
            [](const Placement& a, const Placement& b) {
              return a.start_slot < b.start_slot;
            });
  if (auto err = ValidatePlacements(placements_)) {
    throw FfsError("invalid MIG partition: " + *err);
  }
}

std::optional<MigPartition> MigPartition::FromProfiles(
    std::vector<MigProfile> profiles) {
  // Place largest-first; for the A100 rule set greedy lowest-slot placement
  // of a sorted multiset succeeds whenever any placement does, because every
  // profile's legal start set is a prefix-aligned, nested structure.
  // A backtracking search is still used for robustness.
  std::sort(profiles.begin(), profiles.end(), [](MigProfile a, MigProfile b) {
    return Info(a).mem_slots > Info(b).mem_slots;
  });
  std::vector<Placement> chosen;
  std::function<bool(std::size_t, SlotMask)> place = [&](std::size_t i,
                                                         SlotMask used) {
    if (i == profiles.size()) return true;
    const MigProfile p = profiles[i];
    for (int start : AllowedStartSlots(p)) {
      Placement pl{p, start};
      if (pl.end_slot() > kMemSlotsPerGpu) continue;
      const SlotMask m = MaskOf(pl);
      if (used & m) continue;
      chosen.push_back(pl);
      if (place(i + 1, used | m)) return true;
      chosen.pop_back();
    }
    return false;
  };
  if (!place(0, 0)) return std::nullopt;
  // Validate counts / GPC totals through the constructor.
  try {
    return MigPartition(chosen);
  } catch (const FfsError&) {
    return std::nullopt;
  }
}

MigPartition MigPartition::Parse(const std::string& spec) {
  std::vector<MigProfile> profiles;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, '+')) {
    // Trim surrounding spaces.
    const auto b = tok.find_first_not_of(" \t");
    const auto e = tok.find_last_not_of(" \t");
    FFS_CHECK_MSG(b != std::string::npos, "empty profile token in: " + spec);
    profiles.push_back(ProfileFromName(tok.substr(b, e - b + 1)));
  }
  auto part = FromProfiles(std::move(profiles));
  FFS_CHECK_MSG(part.has_value(), "unplaceable partition spec: " + spec);
  return *part;
}

int MigPartition::total_gpcs() const {
  int g = 0;
  for (const auto& pl : placements_) g += Gpcs(pl.profile);
  return g;
}

Bytes MigPartition::total_memory() const {
  Bytes b = 0;
  for (const auto& pl : placements_) b += MemBytes(pl.profile);
  return b;
}

bool MigPartition::IsMaximal() const {
  SlotMask used = 0;
  int gpcs = 0;
  for (const auto& pl : placements_) {
    used |= MaskOf(pl);
    gpcs += Gpcs(pl.profile);
  }
  for (MigProfile p : kAllProfiles) {
    if (gpcs + Gpcs(p) > kGpcsPerGpu) continue;
    for (int start : AllowedStartSlots(p)) {
      Placement pl{p, start};
      if (pl.end_slot() > kMemSlotsPerGpu) continue;
      if (used & MaskOf(pl)) continue;
      // Check per-profile count limit as well.
      int count = 0;
      for (const auto& existing : placements_) {
        if (existing.profile == p) ++count;
      }
      if (count + 1 <= Info(p).max_count) return false;
    }
  }
  return true;
}

std::vector<MigProfile> MigPartition::Profiles() const {
  std::vector<MigProfile> ps;
  ps.reserve(placements_.size());
  for (const auto& pl : placements_) ps.push_back(pl.profile);
  std::sort(ps.begin(), ps.end());
  return ps;
}

std::string MigPartition::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (i) out += "+";
    out += Name(placements_[i].profile);
  }
  return out.empty() ? "(empty)" : out;
}

std::vector<MigPartition> EnumerateMaximalPartitions() {
  // Depth-first over placements in canonical (slot, profile) order so each
  // placement *set* is generated exactly once.
  std::vector<Placement> all;
  for (MigProfile p : kAllProfiles) {
    for (int s : AllowedStartSlots(p)) {
      Placement pl{p, s};
      if (pl.end_slot() <= kMemSlotsPerGpu) all.push_back(pl);
    }
  }
  std::sort(all.begin(), all.end(), [](const Placement& a, const Placement& b) {
    if (a.start_slot != b.start_slot) return a.start_slot < b.start_slot;
    return Info(a.profile).mem_slots < Info(b.profile).mem_slots;
  });

  std::vector<MigPartition> result;
  std::vector<Placement> current;
  std::function<void(std::size_t, SlotMask, int)> dfs =
      [&](std::size_t from, SlotMask used, int gpcs) {
        bool extended = false;
        for (std::size_t i = from; i < all.size(); ++i) {
          const Placement& pl = all[i];
          if (gpcs + Gpcs(pl.profile) > kGpcsPerGpu) continue;
          const SlotMask m = MaskOf(pl);
          if (used & m) continue;
          int count = 0;
          for (const auto& c : current) {
            if (c.profile == pl.profile) ++count;
          }
          if (count + 1 > Info(pl.profile).max_count) continue;
          extended = true;
          current.push_back(pl);
          dfs(i + 1, used | m, gpcs + Gpcs(pl.profile));
          current.pop_back();
        }
        if (extended || current.empty()) return;
        // No extension from `from`, but a placement earlier in canonical
        // order might still fit; only record truly maximal sets.
        MigPartition part(current);
        if (part.IsMaximal()) result.push_back(std::move(part));
      };
  dfs(0, 0, 0);

  std::sort(result.begin(), result.end(),
            [](const MigPartition& a, const MigPartition& b) {
              return a.placements() < b.placements();
            });
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<std::vector<MigProfile>> EnumerateMaximalShapes() {
  std::vector<std::vector<MigProfile>> shapes;
  for (const auto& part : EnumerateMaximalPartitions()) {
    shapes.push_back(part.Profiles());
  }
  std::sort(shapes.begin(), shapes.end());
  shapes.erase(std::unique(shapes.begin(), shapes.end()), shapes.end());
  return shapes;
}

MigPartition DefaultPartition() {
  return MigPartition::Parse("4g.40gb+2g.20gb+1g.10gb");
}

std::vector<MigPartition> PartitionSchemeP1(int num_gpus) {
  return std::vector<MigPartition>(static_cast<std::size_t>(num_gpus),
                                   DefaultPartition());
}

std::vector<MigPartition> PartitionSchemeP2(int num_gpus) {
  return std::vector<MigPartition>(
      static_cast<std::size_t>(num_gpus),
      MigPartition::Parse("3g.40gb+2g.20gb+2g.20gb"));
}

std::vector<MigPartition> PartitionSchemeHybrid() {
  std::vector<MigPartition> parts;
  parts.push_back(MigPartition::Parse(
      "1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb"));
  for (int i = 0; i < 2; ++i) {
    parts.push_back(
        MigPartition::Parse("2g.20gb+2g.20gb+2g.20gb+1g.10gb"));
  }
  for (int i = 0; i < 4; ++i) {
    parts.push_back(MigPartition::Parse("3g.40gb+4g.40gb"));
  }
  parts.push_back(DefaultPartition());
  FFS_CHECK(parts.size() == 8);
  return parts;
}

}  // namespace fluidfaas::gpu
