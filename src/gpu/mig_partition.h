// A MigPartition is a concrete, placement-validated configuration of one
// A100 into MIG slices.
//
// Validity is decided by the hardware placement rules in mig_profile.h, not
// by totals alone: e.g. (3g.40gb, 3g.40gb, 1g.10gb) sums to 7 GPCs but is
// invalid because the two 3g instances consume all eight memory slots.
// The paper's §2.2 notes only a fixed set of configurations is possible on
// an A100; EnumerateMaximalPartitions() derives that set from the rules.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gpu/mig_profile.h"

namespace fluidfaas::gpu {

/// One placed slice inside a partition.
struct Placement {
  MigProfile profile;
  int start_slot;  // first memory slot occupied

  int end_slot() const { return start_slot + Info(profile).mem_slots; }
  auto operator<=>(const Placement&) const = default;
};

class MigPartition {
 public:
  MigPartition() = default;

  /// Build from explicit placements; throws FfsError if they violate the
  /// placement rules (overlap, illegal start, GPC overflow, profile count).
  explicit MigPartition(std::vector<Placement> placements);

  /// Build from a profile multiset, choosing placements greedily (largest
  /// profile first, lowest legal slot first). Returns nullopt if no legal
  /// placement of the multiset exists.
  static std::optional<MigPartition> FromProfiles(
      std::vector<MigProfile> profiles);

  /// Parse "4g.40gb+2g.20gb+1g.10gb" into a partition via FromProfiles.
  static MigPartition Parse(const std::string& spec);

  const std::vector<Placement>& placements() const { return placements_; }
  std::size_t slice_count() const { return placements_.size(); }
  int total_gpcs() const;
  Bytes total_memory() const;

  /// True when no further slice of any profile can legally be added.
  bool IsMaximal() const;

  /// Profile multiset (sorted ascending) — the partition's "shape".
  std::vector<MigProfile> Profiles() const;

  std::string ToString() const;

  bool operator==(const MigPartition& other) const {
    return placements_ == other.placements_;
  }

 private:
  std::vector<Placement> placements_;  // kept sorted by start_slot
};

/// Check a placement list against the rules without constructing; returns a
/// human-readable reason on failure.
std::optional<std::string> ValidatePlacements(
    const std::vector<Placement>& placements);

/// All maximal valid partitions of one A100, deduplicated by placement.
/// Deterministic order (lexicographic by placements).
std::vector<MigPartition> EnumerateMaximalPartitions();

/// Same, deduplicated by profile multiset ("shape"). This is the set of
/// distinct configurations in the Table-2 profile universe.
std::vector<std::vector<MigProfile>> EnumerateMaximalShapes();

// ---------------------------------------------------------------------------
// Named partitions used in the paper's evaluation (§6, Table 7).
// ---------------------------------------------------------------------------

/// Default per-GPU partition: 4g.40gb + 2g.20gb + 1g.10gb.
MigPartition DefaultPartition();

/// P1 (Table 7): every GPU = 4g.40gb + 2g.20gb + 1g.10gb.
std::vector<MigPartition> PartitionSchemeP1(int num_gpus);

/// P2 (Table 7): every GPU = 3g.40gb + 2g.20gb + 2g.20gb.
std::vector<MigPartition> PartitionSchemeP2(int num_gpus);

/// Hybrid (Table 7), defined for 8 GPUs:
///   1 × [1g.10gb ×7],  2 × [2g.20gb ×3 + 1g.10gb],
///   4 × [3g.40gb + 4g.40gb],  1 × [4g.40gb + 2g.20gb + 1g.10gb].
std::vector<MigPartition> PartitionSchemeHybrid();

}  // namespace fluidfaas::gpu
