#include "gpu/mig_profile.h"

#include <algorithm>

#include "common/error.h"

namespace fluidfaas::gpu {
namespace {

constexpr std::array<ProfileInfo, 5> kProfileTable = {{
    {MigProfile::k1g10gb, 1, 1, 7, "1g.10gb"},
    {MigProfile::k2g20gb, 2, 2, 3, "2g.20gb"},
    {MigProfile::k3g40gb, 3, 4, 2, "3g.40gb"},
    {MigProfile::k4g40gb, 4, 4, 1, "4g.40gb"},
    {MigProfile::k7g80gb, 7, 8, 1, "7g.80gb"},
}};

const std::vector<int> kStarts1g = {0, 1, 2, 3, 4, 5, 6};
const std::vector<int> kStarts2g = {0, 2, 4};
const std::vector<int> kStarts3g = {0, 4};
const std::vector<int> kStartsTop = {0};

}  // namespace

const ProfileInfo& Info(MigProfile p) {
  const auto idx = static_cast<std::size_t>(p);
  FFS_CHECK(idx < kProfileTable.size());
  return kProfileTable[idx];
}

MigProfile ProfileFromName(const std::string& name) {
  for (const auto& info : kProfileTable) {
    if (name == info.name) return info.profile;
  }
  throw FfsError("unknown MIG profile: " + name);
}

bool SmallestProfileForMemory(Bytes bytes, MigProfile& out) {
  for (MigProfile p : ProfilesAscending()) {
    if (MemBytes(p) >= bytes) {
      out = p;
      return true;
    }
  }
  return false;
}

std::vector<MigProfile> ProfilesAscending() {
  std::vector<MigProfile> ps(kAllProfiles.begin(), kAllProfiles.end());
  std::sort(ps.begin(), ps.end(), [](MigProfile a, MigProfile b) {
    if (Gpcs(a) != Gpcs(b)) return Gpcs(a) < Gpcs(b);
    return MemBytes(a) < MemBytes(b);
  });
  return ps;
}

const std::vector<int>& AllowedStartSlots(MigProfile p) {
  switch (p) {
    case MigProfile::k1g10gb:
      return kStarts1g;
    case MigProfile::k2g20gb:
      return kStarts2g;
    case MigProfile::k3g40gb:
      return kStarts3g;
    case MigProfile::k4g40gb:
    case MigProfile::k7g80gb:
      return kStartsTop;
  }
  throw FfsError("invalid MigProfile");
}

}  // namespace fluidfaas::gpu
