// MIG slice profiles of the NVIDIA A100-80GB, per Table 2 of the paper.
//
// An A100's compute is organized as 7 graphics processing clusters (GPCs);
// its 80 GB of HBM is carved into 8 memory slices of 10 GB. A MIG profile
// names how many GPCs and memory slices an instance owns, and hardware
// placement rules constrain where each profile may sit — these rules, not
// totals, are what make MIG partitioning rigid and fragmentation-prone.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace fluidfaas::gpu {

/// Number of GPCs on an A100 (paper §2.2: 1 GPC == 1 vGPU).
inline constexpr int kGpcsPerGpu = 7;
/// Number of 10 GB memory slices on an A100-80GB.
inline constexpr int kMemSlotsPerGpu = 8;
/// Capacity of one memory slice.
inline constexpr Bytes kMemPerSlot = 10ll * kGiB;

/// The five A100 MIG profiles the paper uses (Table 2).
enum class MigProfile : std::uint8_t {
  k1g10gb = 0,
  k2g20gb = 1,
  k3g40gb = 2,
  k4g40gb = 3,
  k7g80gb = 4,
};

inline constexpr std::array<MigProfile, 5> kAllProfiles = {
    MigProfile::k1g10gb, MigProfile::k2g20gb, MigProfile::k3g40gb,
    MigProfile::k4g40gb, MigProfile::k7g80gb};

/// Static attributes of a profile.
struct ProfileInfo {
  MigProfile profile;
  int gpcs;            // compute share ("Ng" in the profile name)
  int mem_slots;       // memory slices of 10 GB each
  int max_count;       // max instances of this profile on one GPU (Table 2)
  const char* name;    // canonical "Ng.MMgb" spelling
};

const ProfileInfo& Info(MigProfile p);

inline int Gpcs(MigProfile p) { return Info(p).gpcs; }
inline Bytes MemBytes(MigProfile p) { return Info(p).mem_slots * kMemPerSlot; }
inline const char* Name(MigProfile p) { return Info(p).name; }

/// Parse "1g.10gb" etc.; throws FfsError on unknown spellings.
MigProfile ProfileFromName(const std::string& name);

/// Smallest profile whose memory capacity is >= `bytes`, or nullopt-like
/// sentinel: returns true and sets `out` when one exists.
bool SmallestProfileForMemory(Bytes bytes, MigProfile& out);

/// Profiles ordered by ascending GPC count (ties broken by memory).
std::vector<MigProfile> ProfilesAscending();

/// Hardware placement rule: the memory-slot start positions at which a
/// profile may be placed on an A100 (MIG user guide):
///   1g.10gb: slots 0..6        2g.20gb: slots {0, 2, 4}
///   3g.40gb: slots {0, 4}      4g.40gb: slot {0}
///   7g.80gb: slot {0}
const std::vector<int>& AllowedStartSlots(MigProfile p);

}  // namespace fluidfaas::gpu
