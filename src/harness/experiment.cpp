#include "harness/experiment.h"

#include "common/error.h"
#include "harness/run_context.h"
#include "harness/sweep.h"

namespace fluidfaas::harness {

const char* Name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kFluidFaas:
      return "FluidFaaS";
    case SystemKind::kEsg:
      return "ESG";
    case SystemKind::kInfless:
      return "INFless";
    case SystemKind::kRepartition:
      return "Repartition";
    case SystemKind::kFluidFaasDistributed:
      return "FluidFaaS-dist";
  }
  return "?";
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  RunContext ctx(config);
  return ctx.Run();
}

ReplicatedSummary RunReplicated(ExperimentConfig config, int replicas) {
  FFS_CHECK(replicas >= 1);
  // The replica seeds form a deterministic sequence off the base seed, so
  // the replicas are independent cells a pool can run concurrently.
  std::vector<ExperimentConfig> cells;
  cells.reserve(static_cast<std::size_t>(replicas));
  for (int i = 0; i < replicas; ++i) {
    config.seed = config.seed * 7919 + 17;  // distinct, deterministic seeds
    cells.push_back(config);
  }
  ReplicatedSummary s;
  s.replicas = replicas;
  for (ExperimentResult& r : RunConfigs(cells)) {
    s.throughput_rps.Add(r.throughput_rps);
    s.slo_hit_rate.Add(r.slo_hit_rate);
    auto lats = r.recorder->LatenciesSeconds();
    if (!lats.empty()) s.p95_latency_s.Add(Percentile(lats, 0.95));
  }
  return s;
}

std::vector<ExperimentResult> RunComparison(ExperimentConfig config,
                                            int jobs) {
  std::vector<ExperimentConfig> cells;
  for (SystemKind kind :
       {SystemKind::kInfless, SystemKind::kEsg, SystemKind::kFluidFaas}) {
    config.system = kind;
    cells.push_back(config);
  }
  return RunConfigs(cells, jobs);
}

}  // namespace fluidfaas::harness
