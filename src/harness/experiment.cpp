#include "harness/experiment.h"

#include <algorithm>
#include <memory>

#include "baselines/esg_platform.h"
#include "common/error.h"
#include "core/ffs_platform.h"
#include "metrics/trace_exporter.h"
#include "platform/platform.h"
#include "platform/registry.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"

namespace fluidfaas::harness {

namespace {

/// Make sure the built-in scheduler bundles are in the platform registry.
/// Explicit (rather than static initializers in the scheduler TUs) so that
/// static-library linking cannot silently drop a registration.
void EnsureSchedulersRegistered() {
  static const bool done = [] {
    core::RegisterFluidFaasSchedulers();
    baselines::RegisterBaselineSchedulers();
    return true;
  }();
  (void)done;
}

}  // namespace

const char* Name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kFluidFaas:
      return "FluidFaaS";
    case SystemKind::kEsg:
      return "ESG";
    case SystemKind::kInfless:
      return "INFless";
    case SystemKind::kRepartition:
      return "Repartition";
    case SystemKind::kFluidFaasDistributed:
      return "FluidFaaS-dist";
  }
  return "?";
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  // --- cluster -------------------------------------------------------------
  std::vector<std::vector<gpu::MigPartition>> parts = config.partitions;
  if (parts.empty()) {
    parts.assign(static_cast<std::size_t>(config.num_nodes),
                 gpu::PartitionSchemeP1(config.gpus_per_node));
  }
  gpu::Cluster cluster(std::move(parts));

  // --- workload ------------------------------------------------------------
  trace::WorkloadParams wp;
  wp.slo_scale = config.platform.slo_scale;
  wp.duration = config.duration;
  wp.load_factor = config.load_factor;
  wp.seed = config.seed;
  wp.max_stages = config.platform.max_stages;
  trace::Workload workload =
      trace::MakeWorkload(config.tier, cluster, wp);
  if (!config.custom_trace.empty()) {
    workload.trace.clear();
    for (const trace::Invocation& inv : config.custom_trace) {
      FFS_CHECK_MSG(inv.fn.valid() &&
                        static_cast<std::size_t>(inv.fn.value) <
                            workload.functions.size(),
                    "custom trace references unknown function id " +
                        ToString(inv.fn));
      if (inv.time < config.duration) workload.trace.push_back(inv);
    }
    trace::SortTrace(workload.trace);
    workload.offered_rps =
        trace::MeanRps(workload.trace, config.duration);
  }

  // --- platform ------------------------------------------------------------
  EnsureSchedulersRegistered();
  sim::Simulator sim;
  auto recorder = std::make_unique<metrics::Recorder>(cluster);
  // The recorder is the first bus subscriber, so its view of every event
  // precedes any observer attached afterwards.
  recorder->SubscribeTo(sim.bus());
  std::unique_ptr<metrics::TraceExporter> exporter;
  if (!config.trace_out.empty()) {
    exporter = std::make_unique<metrics::TraceExporter>();
    std::vector<std::string> names;
    for (const platform::FunctionSpec& f : workload.functions) {
      names.push_back(f.name);
    }
    exporter->SetFunctionNames(std::move(names));
    exporter->SubscribeTo(sim.bus());
  }
  platform::PlatformConfig pconfig = config.platform;
  if (config.faults.timeout_scale > 0.0) {
    pconfig.request_timeout_scale = config.faults.timeout_scale;
  }
  auto plat = std::make_unique<platform::PlatformCore>(
      sim, cluster, workload.functions, pconfig,
      platform::MakeSchedulerBundle(Name(config.system)));

  // --- fault injection -----------------------------------------------------
  std::unique_ptr<sim::FaultInjector> injector;
  if (config.faults.rate > 0.0) {
    sim::FaultPlan fp;
    fp.rate = config.faults.rate;
    fp.seed = config.faults.seed != 0 ? config.faults.seed
                                      : config.seed ^ 0x9e3779b97f4a7c15ULL;
    fp.mttr = config.faults.mttr;
    fp.horizon = config.duration;
    fp.num_slices = static_cast<int>(cluster.num_slices());
    injector = std::make_unique<sim::FaultInjector>(sim, fp);
    injector->Start();
  }

  // --- replay --------------------------------------------------------------
  plat->Start();
  for (const trace::Invocation& inv : workload.trace) {
    sim.At(inv.time, [&plat, fn = inv.fn] { plat->Submit(fn); });
  }
  sim.RunUntil(config.duration);

  // Drain the backlog: keep the platform's periodic machinery alive until
  // every request reached a terminal state (completed, timed out mid-queue,
  // or abandoned) or the drain cap is reached.
  const SimTime cap = config.duration + config.drain_cap;
  while (recorder->finished_requests() < recorder->total_requests() &&
         sim.Now() < cap) {
    sim.RunUntil(sim.Now() + Seconds(1.0));
  }
  if (injector) injector->Stop();
  plat->Stop();

  // --- metrics -------------------------------------------------------------
  SimTime last_completion = config.duration;
  for (const metrics::RequestRecord& r : recorder->records()) {
    if (r.done()) last_completion = std::max(last_completion, r.completion);
  }
  recorder->Close(std::max(last_completion, sim.Now()));

  ExperimentResult res;
  res.system = Name(config.system);
  res.tier = trace::Name(config.tier);
  res.makespan = last_completion;
  res.offered_rps = workload.offered_rps;
  res.ideal_rps = workload.ideal_rps;
  res.total_gpcs = cluster.TotalGpcs();
  for (const platform::FunctionSpec& f : workload.functions) {
    res.function_names.push_back(f.name);
    res.function_slos.push_back(f.slo);
  }
  res.slo_hit_rate = recorder->SloHitRate();
  res.throughput_rps = recorder->WindowedThroughput(config.duration);
  res.goodput_rps = recorder->WindowedGoodput(config.duration);
  res.timeouts = recorder->timeouts();
  res.retries = recorder->retries_total();
  res.abandoned = recorder->abandoned_requests();
  res.recovered = recorder->RecoveredRequests();
  res.instances_failed = recorder->instances_failed();
  res.slices_failed = recorder->slices_failed();
  res.mig_time = recorder->MigTime();
  res.gpu_time = recorder->GpuTime();
  const platform::SchedulerCounters sc = plat->scheduler_counters();
  res.evictions = sc.evictions;
  res.promotions = sc.promotions;
  res.demotions = sc.demotions;
  res.migrations = sc.migrations;
  res.pipelines_launched = sc.pipelines_launched;
  res.reconfigurations = sc.reconfigurations;
  res.reconfiguration_blackout = sc.reconfiguration_blackout;
  res.recorder = std::move(recorder);
  if (exporter) exporter->WriteFile(config.trace_out);
  return res;
}

ReplicatedSummary RunReplicated(ExperimentConfig config, int replicas) {
  FFS_CHECK(replicas >= 1);
  ReplicatedSummary s;
  s.replicas = replicas;
  for (int i = 0; i < replicas; ++i) {
    config.seed = config.seed * 7919 + 17;  // distinct, deterministic seeds
    auto r = RunExperiment(config);
    s.throughput_rps.Add(r.throughput_rps);
    s.slo_hit_rate.Add(r.slo_hit_rate);
    auto lats = r.recorder->LatenciesSeconds();
    if (!lats.empty()) s.p95_latency_s.Add(Percentile(lats, 0.95));
  }
  return s;
}

std::vector<ExperimentResult> RunComparison(ExperimentConfig config) {
  std::vector<ExperimentResult> out;
  for (SystemKind kind :
       {SystemKind::kInfless, SystemKind::kEsg, SystemKind::kFluidFaas}) {
    config.system = kind;
    out.push_back(RunExperiment(config));
  }
  return out;
}

}  // namespace fluidfaas::harness
