#include "harness/experiment.h"

#include <algorithm>

#include "baselines/esg_platform.h"
#include "baselines/repartition_platform.h"
#include "common/error.h"
#include "core/ffs_distributed.h"
#include "core/ffs_platform.h"
#include "sim/simulator.h"

namespace fluidfaas::harness {

const char* Name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kFluidFaas:
      return "FluidFaaS";
    case SystemKind::kEsg:
      return "ESG";
    case SystemKind::kInfless:
      return "INFless";
    case SystemKind::kRepartition:
      return "Repartition";
    case SystemKind::kFluidFaasDistributed:
      return "FluidFaaS-dist";
  }
  return "?";
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  // --- cluster -------------------------------------------------------------
  std::vector<std::vector<gpu::MigPartition>> parts = config.partitions;
  if (parts.empty()) {
    parts.assign(static_cast<std::size_t>(config.num_nodes),
                 gpu::PartitionSchemeP1(config.gpus_per_node));
  }
  gpu::Cluster cluster(std::move(parts));

  // --- workload ------------------------------------------------------------
  trace::WorkloadParams wp;
  wp.slo_scale = config.platform.slo_scale;
  wp.duration = config.duration;
  wp.load_factor = config.load_factor;
  wp.seed = config.seed;
  wp.max_stages = config.platform.max_stages;
  trace::Workload workload =
      trace::MakeWorkload(config.tier, cluster, wp);
  if (!config.custom_trace.empty()) {
    workload.trace.clear();
    for (const trace::Invocation& inv : config.custom_trace) {
      FFS_CHECK_MSG(inv.fn.valid() &&
                        static_cast<std::size_t>(inv.fn.value) <
                            workload.functions.size(),
                    "custom trace references unknown function id " +
                        ToString(inv.fn));
      if (inv.time < config.duration) workload.trace.push_back(inv);
    }
    trace::SortTrace(workload.trace);
    workload.offered_rps =
        trace::MeanRps(workload.trace, config.duration);
  }

  // --- platform ------------------------------------------------------------
  sim::Simulator sim;
  auto recorder = std::make_unique<metrics::Recorder>(cluster);
  std::unique_ptr<platform::Platform> plat;
  switch (config.system) {
    case SystemKind::kFluidFaas:
      plat = std::make_unique<core::FluidFaasPlatform>(
          sim, cluster, *recorder, workload.functions, config.platform);
      break;
    case SystemKind::kEsg:
      plat = std::make_unique<baselines::EsgPlatform>(
          sim, cluster, *recorder, workload.functions, config.platform);
      break;
    case SystemKind::kInfless:
      plat = std::make_unique<baselines::InflessPlatform>(
          sim, cluster, *recorder, workload.functions, config.platform);
      break;
    case SystemKind::kRepartition:
      plat = std::make_unique<baselines::RepartitionPlatform>(
          sim, cluster, *recorder, workload.functions, config.platform);
      break;
    case SystemKind::kFluidFaasDistributed:
      plat = std::make_unique<core::DistributedFluidFaas>(
          sim, cluster, *recorder, workload.functions, config.platform);
      break;
  }

  // --- replay --------------------------------------------------------------
  plat->Start();
  for (const trace::Invocation& inv : workload.trace) {
    sim.At(inv.time, [&plat, fn = inv.fn] { plat->Submit(fn); });
  }
  sim.RunUntil(config.duration);

  // Drain the backlog: keep the platform's periodic machinery alive until
  // every request completed or the drain cap is reached.
  const SimTime cap = config.duration + config.drain_cap;
  while (recorder->completed_requests() < recorder->total_requests() &&
         sim.Now() < cap) {
    sim.RunUntil(sim.Now() + Seconds(1.0));
  }
  plat->Stop();

  // --- metrics -------------------------------------------------------------
  SimTime last_completion = config.duration;
  for (const metrics::RequestRecord& r : recorder->records()) {
    if (r.done()) last_completion = std::max(last_completion, r.completion);
  }
  recorder->Close(std::max(last_completion, sim.Now()));

  ExperimentResult res;
  res.system = Name(config.system);
  res.tier = trace::Name(config.tier);
  res.makespan = last_completion;
  res.offered_rps = workload.offered_rps;
  res.ideal_rps = workload.ideal_rps;
  res.total_gpcs = cluster.TotalGpcs();
  for (const platform::FunctionSpec& f : workload.functions) {
    res.function_names.push_back(f.name);
    res.function_slos.push_back(f.slo);
  }
  res.slo_hit_rate = recorder->SloHitRate();
  res.throughput_rps = recorder->WindowedThroughput(config.duration);
  res.mig_time = recorder->MigTime();
  res.gpu_time = recorder->GpuTime();
  if (auto* ffs_plat =
          dynamic_cast<core::FluidFaasPlatform*>(plat.get())) {
    res.evictions = ffs_plat->evictions();
    res.promotions = ffs_plat->promotions();
    res.demotions = ffs_plat->demotions();
    res.migrations = ffs_plat->migrations();
    res.pipelines_launched = ffs_plat->pipelines_launched();
  }
  if (auto* dist = dynamic_cast<core::DistributedFluidFaas*>(plat.get())) {
    res.evictions = dist->evictions();
    res.pipelines_launched = dist->pipelines_launched();
  }
  if (auto* rep =
          dynamic_cast<baselines::RepartitionPlatform*>(plat.get())) {
    res.reconfigurations = rep->reconfigurations();
    res.reconfiguration_blackout = rep->reconfiguration_blackout();
  }
  res.recorder = std::move(recorder);
  return res;
}

ReplicatedSummary RunReplicated(ExperimentConfig config, int replicas) {
  FFS_CHECK(replicas >= 1);
  ReplicatedSummary s;
  s.replicas = replicas;
  for (int i = 0; i < replicas; ++i) {
    config.seed = config.seed * 7919 + 17;  // distinct, deterministic seeds
    auto r = RunExperiment(config);
    s.throughput_rps.Add(r.throughput_rps);
    s.slo_hit_rate.Add(r.slo_hit_rate);
    auto lats = r.recorder->LatenciesSeconds();
    if (!lats.empty()) s.p95_latency_s.Add(Percentile(lats, 0.95));
  }
  return s;
}

std::vector<ExperimentResult> RunComparison(ExperimentConfig config) {
  std::vector<ExperimentResult> out;
  for (SystemKind kind :
       {SystemKind::kInfless, SystemKind::kEsg, SystemKind::kFluidFaas}) {
    config.system = kind;
    out.push_back(RunExperiment(config));
  }
  return out;
}

}  // namespace fluidfaas::harness
