// Experiment harness: one call builds a cluster, a workload, and a platform
// (a platform::PlatformCore carrying the scheduler bundle that SystemKind
// resolves to via the platform registry), replays the trace, lets in-flight
// work drain, and returns the metrics bundle the bench binaries print.
//
// Trace generation is seeded independently of the system under test, so the
// three platforms in one comparison see byte-identical arrivals.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "gpu/mig_partition.h"
#include "metrics/recorder.h"
#include "platform/config.h"
#include "trace/workload.h"

namespace fluidfaas::harness {

enum class SystemKind {
  kFluidFaas = 0,
  kEsg = 1,
  kInfless = 2,
  /// Extension baseline (not in the paper's eval): monolithic scheduling
  /// plus minutes-scale GPU repartitioning when fragmented out.
  kRepartition = 3,
  /// FluidFaaS with the paper's two-level controller/invoker structure
  /// made explicit (per-node invokers + front load balancer).
  kFluidFaasDistributed = 4,
};

const char* Name(SystemKind kind);

struct ExperimentConfig {
  SystemKind system = SystemKind::kFluidFaas;
  trace::WorkloadTier tier = trace::WorkloadTier::kMedium;

  int num_nodes = 2;
  int gpus_per_node = 8;
  /// Per-node GPU partitions; empty = default P1 on every GPU.
  std::vector<std::vector<gpu::MigPartition>> partitions;

  SimDuration duration = Seconds(300);
  /// Cap on post-trace draining of the backlog (longer than the exclusive
  /// keep-alive so blocked functions eventually get slices and finish).
  SimDuration drain_cap = Minutes(15);
  double load_factor = 0.0;  // 0 = tier default
  std::uint64_t seed = 1234;

  /// When non-empty, replay this trace instead of synthesizing one (e.g.
  /// loaded via trace::LoadCsv or trace::ExpandAzureDataset). Function ids
  /// must be < the tier's function count; invocations past `duration` are
  /// dropped.
  trace::Trace custom_trace;

  /// When non-empty, attach a metrics::TraceExporter to the run and write a
  /// Chrome-trace JSON (chrome://tracing, https://ui.perfetto.dev) here.
  /// Attaching the exporter never changes the simulation.
  std::string trace_out;

  /// Deterministic fault injection (sim::FaultInjector). rate 0 — the
  /// default — constructs no injector and schedules no timers, so
  /// fault-free runs stay byte-identical to builds without this feature.
  struct FaultConfig {
    double rate = 0.0;        // mean faults per second of simulated time
    std::uint64_t seed = 0;   // 0 = derive from the experiment seed
    SimDuration mttr = Seconds(30.0);  // mean slice repair time
    /// Per-request enforcement timeout scale (× SLO); copied into
    /// platform.request_timeout_scale when > 0.
    double timeout_scale = 0.0;
  };
  FaultConfig faults;

  platform::PlatformConfig platform;
};

struct ExperimentResult {
  std::string system;
  std::string tier;

  std::unique_ptr<metrics::Recorder> recorder;
  std::vector<std::string> function_names;
  std::vector<SimDuration> function_slos;
  double offered_rps = 0.0;
  double ideal_rps = 0.0;
  SimTime makespan = 0;  // last completion (or trace end if greater)
  int total_gpcs = 0;

  // Headline summary (derived from `recorder`, using the makespan horizon).
  double slo_hit_rate = 0.0;
  double throughput_rps = 0.0;
  SimDuration mig_time = 0;
  SimDuration gpu_time = 0;

  // Availability under faults (all zero in fault-free runs).
  double goodput_rps = 0.0;  // SLO-hit, non-timed-out completions per second
  std::size_t timeouts = 0;
  std::size_t retries = 0;
  std::size_t abandoned = 0;
  std::size_t recovered = 0;  // completions that survived >=1 failure
  std::size_t instances_failed = 0;
  std::size_t slices_failed = 0;

  // Placement transactions (DESIGN.md §8). Aborts stay zero in fault-free
  // runs: every scheduler commits in the same synchronous decision that
  // planned, so live state cannot drift from the ClusterView.
  std::size_t plans_committed = 0;
  std::size_t plans_aborted = 0;
  std::size_t spawns_committed = 0;
  std::array<std::size_t, sim::kNumPlanAbortCauses> plan_aborts_by_cause{};
  double plan_conflict_rate = 0.0;  // aborted / all commit attempts

  // QoS (DESIGN.md §9). With the default fifo/none queue policy rejected
  // stays zero and jain/worst-p99 summarize the run's fairness profile.
  std::size_t rejected = 0;
  std::array<std::size_t, sim::kNumRejectCauses> rejects_by_cause{};
  double mean_queue_depth = 0.0;
  double jain_fairness = 0.0;
  double worst_fn_p99_s = 0.0;

  // Scheduler-behaviour counters (FluidFaaS only; zero otherwise).
  std::size_t evictions = 0;
  std::size_t promotions = 0;
  std::size_t demotions = 0;
  std::size_t migrations = 0;
  std::size_t pipelines_launched = 0;

  // Repartition-baseline counters (kRepartition only; zero otherwise).
  std::size_t reconfigurations = 0;
  SimDuration reconfiguration_blackout = 0;
};

/// Run one experiment to completion (trace + drain) and collect metrics.
/// Thin wrapper over harness::RunContext (run_context.h), the
/// shared-nothing unit that parallel sweeps (sweep.h) execute per cell.
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// Convenience: run all three systems on the same workload (INFless, ESG,
/// FluidFaaS, in that order). The three runs execute through the parallel
/// sweep engine; results are ordered by system, never by completion.
/// `jobs` <= 0 defers to FFS_JOBS / the hardware default (sweep.h).
std::vector<ExperimentResult> RunComparison(ExperimentConfig config,
                                            int jobs = 0);

/// Seed-replication summary: the same configuration run across `replicas`
/// trace seeds, aggregated so benches can report mean ± std instead of a
/// single draw.
struct ReplicatedSummary {
  int replicas = 0;
  RunningStats throughput_rps;
  RunningStats slo_hit_rate;
  RunningStats p95_latency_s;
};

ReplicatedSummary RunReplicated(ExperimentConfig config, int replicas);

}  // namespace fluidfaas::harness
