#include "harness/json_report.h"

#include "common/json.h"
#include "common/stats.h"

namespace fluidfaas::harness {
namespace {

void WriteResult(JsonWriter& w, const ExperimentResult& r) {
  w.BeginObject();
  w.Key("system").Value(r.system);
  w.Key("tier").Value(r.tier);
  w.Key("offered_rps").Value(r.offered_rps);
  w.Key("ideal_rps").Value(r.ideal_rps);
  w.Key("throughput_rps").Value(r.throughput_rps);
  w.Key("slo_hit_rate").Value(r.slo_hit_rate);
  w.Key("makespan_s").Value(ToSeconds(r.makespan));
  w.Key("mig_time_s").Value(ToSeconds(r.mig_time));
  w.Key("gpu_time_s").Value(ToSeconds(r.gpu_time));
  w.Key("total_gpcs").Value(r.total_gpcs);
  if (r.recorder) {
    w.Key("total_requests").Value(r.recorder->total_requests());
    w.Key("completed_requests").Value(r.recorder->completed_requests());
    auto lats = r.recorder->LatenciesSeconds();
    if (!lats.empty()) {
      auto ps = Percentiles(lats, {0.5, 0.95, 0.99});
      w.Key("latency_p50_s").Value(ps[0]);
      w.Key("latency_p95_s").Value(ps[1]);
      w.Key("latency_p99_s").Value(ps[2]);
    }
    w.Key("per_function").BeginArray();
    for (std::size_t f = 0; f < r.function_names.size(); ++f) {
      const FunctionId fn(static_cast<std::int32_t>(f));
      w.BeginObject();
      w.Key("name").Value(r.function_names[f]);
      w.Key("slo_s").Value(ToSeconds(r.function_slos[f]));
      w.Key("slo_hit_rate").Value(r.recorder->SloHitRate(fn));
      w.EndObject();
    }
    w.EndArray();
  }
  w.Key("availability").BeginObject();
  w.Key("goodput_rps").Value(r.goodput_rps);
  w.Key("timeouts").Value(r.timeouts);
  w.Key("retries").Value(r.retries);
  w.Key("abandoned").Value(r.abandoned);
  w.Key("recovered").Value(r.recovered);
  w.Key("instances_failed").Value(r.instances_failed);
  w.Key("slices_failed").Value(r.slices_failed);
  w.EndObject();
  w.Key("placement").BeginObject();
  w.Key("plans_committed").Value(r.plans_committed);
  w.Key("plans_aborted").Value(r.plans_aborted);
  w.Key("spawns_committed").Value(r.spawns_committed);
  w.Key("conflict_rate").Value(r.plan_conflict_rate);
  w.Key("aborts_by_cause").BeginObject();
  // kNone never aborts a plan; start at the first real cause.
  for (int c = 1; c < sim::kNumPlanAbortCauses; ++c) {
    const auto cause = static_cast<sim::PlanAbortCause>(c);
    w.Key(sim::Name(cause)).Value(
        r.plan_aborts_by_cause[static_cast<std::size_t>(c)]);
  }
  w.EndObject();
  w.EndObject();
  w.Key("qos").BeginObject();
  w.Key("rejected").Value(r.rejected);
  w.Key("rejects_by_cause").BeginObject();
  // kNone never rejects a request; start at the first real cause.
  for (int c = 1; c < sim::kNumRejectCauses; ++c) {
    const auto cause = static_cast<sim::RejectCause>(c);
    w.Key(sim::Name(cause)).Value(
        r.rejects_by_cause[static_cast<std::size_t>(c)]);
  }
  w.EndObject();
  w.Key("mean_queue_depth").Value(r.mean_queue_depth);
  w.Key("jain_fairness").Value(r.jain_fairness);
  w.Key("worst_fn_p99_s").Value(r.worst_fn_p99_s);
  w.EndObject();
  w.Key("scheduler").BeginObject();
  w.Key("pipelines_launched").Value(r.pipelines_launched);
  w.Key("evictions").Value(r.evictions);
  w.Key("promotions").Value(r.promotions);
  w.Key("demotions").Value(r.demotions);
  w.Key("migrations").Value(r.migrations);
  w.Key("reconfigurations").Value(r.reconfigurations);
  w.Key("reconfiguration_blackout_s")
      .Value(ToSeconds(r.reconfiguration_blackout));
  w.EndObject();
  w.EndObject();
}

}  // namespace

std::string ResultToJson(const ExperimentResult& result) {
  JsonWriter w;
  WriteResult(w, result);
  return w.Take();
}

std::string ResultsToJson(const std::vector<ExperimentResult>& results) {
  JsonWriter w;
  w.BeginArray();
  for (const auto& r : results) WriteResult(w, r);
  w.EndArray();
  return w.Take();
}

}  // namespace fluidfaas::harness
