// JSON serialization of experiment results, for dashboards and scripted
// post-processing (`fluidfaas run --json out.json`).
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace fluidfaas::harness {

/// One result as a JSON object string (system, workload, headline metrics,
/// per-function SLO hit rates, and scheduler counters).
std::string ResultToJson(const ExperimentResult& result);

/// Several results as a JSON array.
std::string ResultsToJson(const std::vector<ExperimentResult>& results);

}  // namespace fluidfaas::harness
