#include "harness/run_context.h"

#include <algorithm>
#include <utility>

#include "baselines/esg_platform.h"
#include "common/error.h"
#include "common/logging.h"
#include "core/ffs_platform.h"
#include "platform/registry.h"

namespace fluidfaas::harness {

namespace {

std::vector<std::vector<gpu::MigPartition>> PartitionsFor(
    const ExperimentConfig& config) {
  if (!config.partitions.empty()) return config.partitions;
  return std::vector<std::vector<gpu::MigPartition>>(
      static_cast<std::size_t>(config.num_nodes),
      gpu::PartitionSchemeP1(config.gpus_per_node));
}

trace::Workload BuildWorkload(const ExperimentConfig& config,
                              const gpu::Cluster& cluster) {
  trace::WorkloadParams wp;
  wp.slo_scale = config.platform.slo_scale;
  wp.duration = config.duration;
  wp.load_factor = config.load_factor;
  wp.seed = config.seed;
  wp.max_stages = config.platform.max_stages;
  trace::Workload workload = trace::MakeWorkload(config.tier, cluster, wp);
  if (!config.custom_trace.empty()) {
    workload.trace.clear();
    for (const trace::Invocation& inv : config.custom_trace) {
      FFS_CHECK_MSG(inv.fn.valid() &&
                        static_cast<std::size_t>(inv.fn.value) <
                            workload.functions.size(),
                    "custom trace references unknown function id " +
                        ToString(inv.fn));
      if (inv.time < config.duration) workload.trace.push_back(inv);
    }
    trace::SortTrace(workload.trace);
    workload.offered_rps =
        trace::MeanRps(workload.trace, config.duration);
  }
  return workload;
}

}  // namespace

void EnsureBuiltinSchedulersRegistered() {
  // The magic static serializes first use; registration itself is also
  // mutex-guarded inside the registry.
  static const bool done = [] {
    core::RegisterFluidFaasSchedulers();
    baselines::RegisterBaselineSchedulers();
    return true;
  }();
  (void)done;
}

RunContext::RunContext(ExperimentConfig config)
    : config_(std::move(config)),
      label_(std::string(Name(config_.system)) + "/" +
             trace::Name(config_.tier) + "/s" +
             std::to_string(config_.seed)),
      cluster_(PartitionsFor(config_)),
      workload_(BuildWorkload(config_, cluster_)) {
  EnsureBuiltinSchedulersRegistered();
  const ScopedRunTag tag(label_);

  recorder_ = std::make_unique<metrics::Recorder>(cluster_);
  // The recorder is the first bus subscriber, so its view of every event
  // precedes any observer attached afterwards.
  recorder_->SubscribeTo(sim_.bus());
  if (!config_.trace_out.empty()) {
    exporter_ = std::make_unique<metrics::TraceExporter>();
    std::vector<std::string> names;
    for (const platform::FunctionSpec& f : workload_.functions) {
      names.push_back(f.name);
    }
    exporter_->SetFunctionNames(std::move(names));
    exporter_->SubscribeTo(sim_.bus());
  }

  platform::PlatformConfig pconfig = config_.platform;
  if (config_.faults.timeout_scale > 0.0) {
    pconfig.request_timeout_scale = config_.faults.timeout_scale;
  }
  platform_ = std::make_unique<platform::PlatformCore>(
      sim_, cluster_, workload_.functions, pconfig,
      platform::MakeSchedulerBundle(Name(config_.system)));

  if (config_.faults.rate > 0.0) {
    sim::FaultPlan fp;
    fp.rate = config_.faults.rate;
    fp.seed = config_.faults.seed != 0
                  ? config_.faults.seed
                  : config_.seed ^ 0x9e3779b97f4a7c15ULL;
    fp.mttr = config_.faults.mttr;
    fp.horizon = config_.duration;
    fp.num_slices = static_cast<int>(cluster_.num_slices());
    injector_ = std::make_unique<sim::FaultInjector>(sim_, fp);
  }
}

RunContext::~RunContext() = default;

ExperimentResult RunContext::Run() {
  FFS_CHECK_MSG(!ran_, "RunContext::Run() is one-shot");
  ran_ = true;
  const ScopedRunTag tag(label_);

  if (injector_) injector_->Start();
  platform_->Start();
  for (const trace::Invocation& inv : workload_.trace) {
    sim_.At(inv.time, [this, fn = inv.fn] { platform_->Submit(fn); });
  }
  sim_.RunUntil(config_.duration);

  // Drain the backlog: keep the platform's periodic machinery alive until
  // every request reached a terminal state (completed, timed out mid-queue,
  // or abandoned) or the drain cap is reached.
  const SimTime cap = config_.duration + config_.drain_cap;
  while (recorder_->finished_requests() < recorder_->total_requests() &&
         sim_.Now() < cap) {
    sim_.RunUntil(sim_.Now() + Seconds(1.0));
  }
  if (injector_) injector_->Stop();
  platform_->Stop();

  SimTime last_completion = config_.duration;
  for (const metrics::RequestRecord& r : recorder_->records()) {
    if (r.done()) last_completion = std::max(last_completion, r.completion);
  }
  recorder_->Close(std::max(last_completion, sim_.Now()));

  ExperimentResult res;
  res.system = Name(config_.system);
  res.tier = trace::Name(config_.tier);
  res.makespan = last_completion;
  res.offered_rps = workload_.offered_rps;
  res.ideal_rps = workload_.ideal_rps;
  res.total_gpcs = cluster_.TotalGpcs();
  for (const platform::FunctionSpec& f : workload_.functions) {
    res.function_names.push_back(f.name);
    res.function_slos.push_back(f.slo);
  }
  res.slo_hit_rate = recorder_->SloHitRate();
  res.throughput_rps = recorder_->WindowedThroughput(config_.duration);
  res.goodput_rps = recorder_->WindowedGoodput(config_.duration);
  res.timeouts = recorder_->timeouts();
  res.retries = recorder_->retries_total();
  res.abandoned = recorder_->abandoned_requests();
  res.recovered = recorder_->RecoveredRequests();
  res.instances_failed = recorder_->instances_failed();
  res.slices_failed = recorder_->slices_failed();
  res.plans_committed = recorder_->plans_committed();
  res.plans_aborted = recorder_->plans_aborted();
  res.spawns_committed = recorder_->spawns_committed();
  for (int c = 0; c < sim::kNumPlanAbortCauses; ++c) {
    res.plan_aborts_by_cause[static_cast<std::size_t>(c)] =
        recorder_->plans_aborted_by(static_cast<sim::PlanAbortCause>(c));
  }
  res.plan_conflict_rate = recorder_->PlanConflictRate();
  res.rejected = recorder_->rejected_requests();
  for (int c = 0; c < sim::kNumRejectCauses; ++c) {
    res.rejects_by_cause[static_cast<std::size_t>(c)] =
        recorder_->rejected_by(static_cast<sim::RejectCause>(c));
  }
  res.mean_queue_depth = recorder_->MeanQueueDepth();
  res.jain_fairness = recorder_->JainFairnessIndex();
  res.worst_fn_p99_s = recorder_->WorstFunctionP99();
  res.mig_time = recorder_->MigTime();
  res.gpu_time = recorder_->GpuTime();
  const platform::SchedulerCounters sc = platform_->scheduler_counters();
  res.evictions = sc.evictions;
  res.promotions = sc.promotions;
  res.demotions = sc.demotions;
  res.migrations = sc.migrations;
  res.pipelines_launched = sc.pipelines_launched;
  res.reconfigurations = sc.reconfigurations;
  res.reconfiguration_blackout = sc.reconfiguration_blackout;
  res.recorder = std::move(recorder_);
  if (exporter_) exporter_->WriteFile(config_.trace_out);
  return res;
}

}  // namespace fluidfaas::harness
