// One experiment as a fully encapsulated, shared-nothing value.
//
// A RunContext owns every piece of mutable state a simulation run touches —
// cluster, workload, simulator (clock + event queue + bus), recorder,
// optional trace exporter, platform, optional fault injector — and reads no
// process-global mutable state while running. Two RunContexts therefore
// never observe each other: a thread pool can execute any number of them
// concurrently (harness::RunSweep) without perturbing a single byte of any
// run's output relative to sequential execution.
//
// The only process-wide structures a run consults are the scheduler
// registry (mutex-guarded, effectively immutable after
// EnsureBuiltinSchedulersRegistered) and the logging sink (mutex-guarded;
// each run installs a ScopedRunTag so interleaved lines stay attributable).
#pragma once

#include <memory>
#include <string>

#include "gpu/cluster.h"
#include "harness/experiment.h"
#include "metrics/recorder.h"
#include "metrics/trace_exporter.h"
#include "platform/platform.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "trace/workload.h"

namespace fluidfaas::harness {

/// Idempotent, thread-safe registration of the builtin scheduler bundles
/// (FluidFaaS, FluidFaaS-dist, ESG, INFless, Repartition). RunContext calls
/// it on construction; parallel drivers may call it once up front so no
/// worker pays for (or races on) first-use initialization.
void EnsureBuiltinSchedulersRegistered();

class RunContext {
 public:
  /// Builds the whole run: cluster, workload (or the config's custom
  /// trace), recorder, optional exporter, platform and fault injector.
  /// Construction performs no simulation; Run() does.
  explicit RunContext(ExperimentConfig config);
  ~RunContext();
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Replay the trace, drain the backlog, close the recorder and collect
  /// the metrics bundle. One-shot: a RunContext runs exactly once.
  ExperimentResult Run();

  const ExperimentConfig& config() const { return config_; }
  const trace::Workload& workload() const { return workload_; }
  sim::Simulator& sim() { return sim_; }
  gpu::Cluster& cluster() { return cluster_; }
  platform::PlatformCore& platform() { return *platform_; }
  metrics::Recorder& recorder() { return *recorder_; }

  /// "System/tier/s<seed>" — the label this run logs under.
  const std::string& label() const { return label_; }

 private:
  ExperimentConfig config_;
  std::string label_;
  gpu::Cluster cluster_;
  trace::Workload workload_;
  sim::Simulator sim_;
  std::unique_ptr<metrics::Recorder> recorder_;
  std::unique_ptr<metrics::TraceExporter> exporter_;
  std::unique_ptr<platform::PlatformCore> platform_;
  std::unique_ptr<sim::FaultInjector> injector_;
  bool ran_ = false;
};

}  // namespace fluidfaas::harness
