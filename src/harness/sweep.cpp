#include "harness/sweep.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <ostream>
#include <thread>

#include "common/error.h"
#include "common/json.h"
#include "common/logging.h"
#include "harness/json_report.h"
#include "harness/run_context.h"

namespace fluidfaas::harness {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Run fn(0..n-1) on `jobs` workers pulling indices from a shared counter.
/// Rethrows the first exception any worker raised, after all join.
void ParallelFor(std::size_t n, int jobs,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  const int spawn = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n));
  pool.reserve(static_cast<std::size_t>(spawn));
  for (int t = 0; t < spawn; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

int ClampJobs(int jobs, std::size_t cells) {
  if (jobs <= 0) jobs = DefaultJobs();
  if (cells > 0 && static_cast<std::size_t>(jobs) > cells) {
    jobs = static_cast<int>(cells);
  }
  return jobs < 1 ? 1 : jobs;
}

}  // namespace

int DefaultJobs() {
  if (const char* env = std::getenv("FFS_JOBS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    if (errno != 0 || end == env || *end != '\0' || v < 1 ||
        v > 4096) {
      throw FfsError(std::string("FFS_JOBS must be a positive integer "
                                 "(1..4096), got: \"") +
                     env + "\"");
    }
    return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::size_t SweepSpec::size() const {
  auto dim = [](std::size_t n) { return n == 0 ? std::size_t{1} : n; };
  return dim(tiers.size()) * dim(load_factors.size()) *
         dim(fault_rates.size()) * dim(seeds.size()) * dim(systems.size());
}

std::vector<SweepPoint> SweepSpec::Points() const {
  const std::vector<trace::WorkloadTier> ts =
      tiers.empty() ? std::vector<trace::WorkloadTier>{base.tier} : tiers;
  const std::vector<double> ls =
      load_factors.empty() ? std::vector<double>{base.load_factor}
                           : load_factors;
  const std::vector<double> fs =
      fault_rates.empty() ? std::vector<double>{base.faults.rate}
                          : fault_rates;
  const std::vector<std::uint64_t> ss =
      seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;
  const std::vector<SystemKind> ks =
      systems.empty() ? std::vector<SystemKind>{base.system} : systems;

  std::vector<SweepPoint> points;
  points.reserve(ts.size() * ls.size() * fs.size() * ss.size() * ks.size());
  std::size_t index = 0;
  for (trace::WorkloadTier tier : ts) {
    for (double load : ls) {
      for (double rate : fs) {
        for (std::uint64_t seed : ss) {
          for (SystemKind system : ks) {
            SweepPoint p;
            p.index = index++;
            p.system = system;
            p.tier = tier;
            p.seed = seed;
            p.load_factor = load;
            p.fault_rate = rate;
            points.push_back(p);
          }
        }
      }
    }
  }
  return points;
}

ExperimentConfig SweepSpec::MakeConfig(const SweepPoint& point) const {
  ExperimentConfig cfg = base;
  cfg.system = point.system;
  cfg.tier = point.tier;
  cfg.seed = point.seed;
  cfg.load_factor = point.load_factor;
  cfg.faults.rate = point.fault_rate;
  if (tweak) tweak(cfg, point);
  return cfg;
}

SweepOutcome RunSweep(const SweepSpec& spec, int jobs) {
  const std::vector<SweepPoint> points = spec.Points();
  SweepOutcome out;
  out.jobs = ClampJobs(jobs, points.size());
  out.cells.resize(points.size());

  // Register once up front so no worker races on (or pays for) first-use
  // initialization of the scheduler registry.
  EnsureBuiltinSchedulersRegistered();

  const auto t0 = Clock::now();
  ParallelFor(points.size(), out.jobs, [&](std::size_t i) {
    const auto c0 = Clock::now();
    SweepCell& cell = out.cells[i];  // by grid index, not completion order
    cell.point = points[i];
    RunContext ctx(spec.MakeConfig(points[i]));
    cell.result = ctx.Run();
    cell.seconds = SecondsSince(c0);
  });
  out.wall_seconds = SecondsSince(t0);
  for (const SweepCell& c : out.cells) out.cell_seconds_total += c.seconds;
  return out;
}

std::vector<ExperimentResult> RunConfigs(
    const std::vector<ExperimentConfig>& configs, int jobs) {
  EnsureBuiltinSchedulersRegistered();
  std::vector<ExperimentResult> results(configs.size());
  ParallelFor(configs.size(), ClampJobs(jobs, configs.size()),
              [&](std::size_t i) {
                RunContext ctx(configs[i]);
                results[i] = ctx.Run();
              });
  return results;
}

void WriteSweepJson(const SweepOutcome& outcome, std::ostream& os,
                    bool include_timing) {
  os << "{\n\"schema\": \"fluidfaas.sweep.v1\",\n\"cells\": [";
  for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
    const SweepCell& c = outcome.cells[i];
    JsonWriter w;
    w.BeginObject();
    w.Key("index").Value(c.point.index);
    w.Key("system").Value(Name(c.point.system));
    w.Key("tier").Value(trace::Name(c.point.tier));
    w.Key("seed").Value(static_cast<std::int64_t>(c.point.seed));
    w.Key("load_factor").Value(c.point.load_factor);
    w.Key("fault_rate").Value(c.point.fault_rate);
    w.EndObject();
    std::string head = w.Take();
    // Splice the per-cell metrics into the point object: drop the point's
    // closing brace and append `,"result": {...}`.
    head.pop_back();
    os << (i == 0 ? "\n" : ",\n") << head
       << ",\"result\":" << ResultToJson(c.result) << "}";
  }
  os << "\n]";
  if (include_timing) {
    JsonWriter w;
    w.BeginObject();
    w.Key("jobs").Value(outcome.jobs);
    w.Key("wall_seconds").Value(outcome.wall_seconds);
    w.Key("cell_seconds_total").Value(outcome.cell_seconds_total);
    w.Key("speedup").Value(outcome.Speedup());
    w.Key("cell_seconds").BeginArray();
    for (const SweepCell& c : outcome.cells) w.Value(c.seconds);
    w.EndArray();
    w.EndObject();
    os << ",\n\"timing\": " << w.Take();
  }
  os << "\n}\n";
}

bool WriteSweepJsonFile(const SweepOutcome& outcome, const std::string& path,
                        bool include_timing) {
  std::ofstream out(path);
  if (!out.good()) {
    FFS_LOG_ERROR("sweep") << "cannot write sweep artifact: " << path;
    return false;
  }
  WriteSweepJson(outcome, out, include_timing);
  return out.good();
}

std::string SweepOutPath(const std::string& fallback) {
  if (const char* env = std::getenv("FFS_SWEEP_OUT")) {
    if (*env != '\0') return env;
  }
  return fallback;
}

}  // namespace fluidfaas::harness
