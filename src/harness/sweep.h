// Declarative, parallel, deterministic experiment sweeps.
//
// A SweepSpec describes a grid of runs (system × tier × seed × load factor
// × fault rate) over a base ExperimentConfig. RunSweep executes the grid on
// an std::thread pool (--jobs / FFS_JOBS) where every cell is an
// independent, shared-nothing harness::RunContext; results land by grid
// index, not completion order, so the outcome — tables printed from it and
// the BENCH_sweep.json artifact — is byte-identical at any job count.
// Wall-clock and the aggregate speedup (sum of per-cell seconds divided by
// wall seconds) are recorded alongside, clearly separated from the
// deterministic payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace fluidfaas::harness {

/// One cell of the grid: the axis values plus its row-major index.
/// Axis nesting, outermost first: tier, load factor, fault rate, seed,
/// system — so a "compare systems per tier" sweep prints naturally.
struct SweepPoint {
  std::size_t index = 0;
  SystemKind system = SystemKind::kFluidFaas;
  trace::WorkloadTier tier = trace::WorkloadTier::kMedium;
  std::uint64_t seed = 0;
  double load_factor = 0.0;
  double fault_rate = 0.0;
};

struct SweepSpec {
  /// Everything the axes don't override. An empty axis means "the base
  /// config's value", so a spec with all axes empty is a 1-cell sweep.
  ExperimentConfig base;

  std::vector<SystemKind> systems;
  std::vector<trace::WorkloadTier> tiers;
  std::vector<std::uint64_t> seeds;
  std::vector<double> load_factors;
  std::vector<double> fault_rates;

  /// Optional per-cell hook applied after the axis values (ablation knobs,
  /// per-scheme partitions, ...). Runs on worker threads: it must be
  /// deterministic in `point` and touch nothing but `config`.
  std::function<void(ExperimentConfig&, const SweepPoint&)> tweak;

  std::size_t size() const;
  std::vector<SweepPoint> Points() const;
  ExperimentConfig MakeConfig(const SweepPoint& point) const;
};

struct SweepCell {
  SweepPoint point;
  ExperimentResult result;
  /// Wall seconds this cell spent on its worker (nondeterministic; kept
  /// out of the deterministic JSON payload).
  double seconds = 0.0;
};

struct SweepOutcome {
  std::vector<SweepCell> cells;  // ordered by point.index
  int jobs = 1;
  double wall_seconds = 0.0;
  double cell_seconds_total = 0.0;
  /// Aggregate parallel speedup: total per-cell compute over wall-clock.
  /// ~1 at jobs=1; approaches min(jobs, cells) on unloaded multi-core
  /// hosts.
  double Speedup() const {
    return wall_seconds > 0.0 ? cell_seconds_total / wall_seconds : 0.0;
  }
};

/// Worker count: FFS_JOBS when set (strictly validated: a positive
/// integer, nothing else), otherwise std::thread::hardware_concurrency().
/// Throws FfsError on a malformed FFS_JOBS.
int DefaultJobs();

/// Execute the grid. jobs <= 0 means DefaultJobs(); the pool never exceeds
/// the cell count. Results are ordered by grid index regardless of
/// completion order. The first exception thrown by any cell is rethrown
/// after all workers join.
SweepOutcome RunSweep(const SweepSpec& spec, int jobs = 0);

/// Lower-level engine for benches whose cells differ beyond the standard
/// axes: run arbitrary configs in parallel, results in input order.
std::vector<ExperimentResult> RunConfigs(
    const std::vector<ExperimentConfig>& configs, int jobs = 0);

/// Serialize an outcome as the BENCH_sweep.json document. The "cells"
/// array is fully deterministic; the trailing "timing" object (jobs, wall
/// clock, per-cell seconds, speedup) is the only nondeterministic part and
/// is omitted when `include_timing` is false, making the document
/// byte-identical across job counts and repeated runs.
void WriteSweepJson(const SweepOutcome& outcome, std::ostream& os,
                    bool include_timing = true);

/// WriteSweepJson to `path`; returns false (after logging) on I/O failure.
bool WriteSweepJsonFile(const SweepOutcome& outcome, const std::string& path,
                        bool include_timing = true);

/// Artifact path: $FFS_SWEEP_OUT when set, else `fallback`.
std::string SweepOutPath(const std::string& fallback = "BENCH_sweep.json");

}  // namespace fluidfaas::harness
