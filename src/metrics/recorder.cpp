#include "metrics/recorder.h"

#include <algorithm>

#include "common/error.h"
#include "sim/event_bus.h"
#include "sim/events.h"

namespace fluidfaas::metrics {

Recorder::Recorder(const gpu::Cluster& cluster) : cluster_(&cluster) {
  per_gpu_.resize(static_cast<std::size_t>(cluster.num_gpus()));
  slices_.reserve(cluster.num_slices());
  for (SliceId sid : cluster.AllSlices()) {
    const gpu::MigSlice& s = cluster.slice(sid);
    SliceInfo info;
    info.gpu = s.gpu;
    info.gpcs = s.gpcs();
    slices_.push_back(info);
    per_gpu_[static_cast<std::size_t>(s.gpu.value)].gpcs += s.gpcs();
  }
  total_gpcs_ = cluster.TotalGpcs();
}

void Recorder::SubscribeTo(sim::EventBus& bus) {
  if (bus_ == &bus) return;
  FFS_CHECK_MSG(bus_ == nullptr, "Recorder already subscribed to a bus");
  bus_ = &bus;
  bus.Subscribe<sim::RequestSubmitted>([this](const sim::RequestSubmitted& e) {
    const RequestId rid = NewRequest(e.fn, e.at, e.deadline);
    FFS_CHECK_MSG(rid == e.rid,
                  "recorder request ids out of sync with the platform");
  });
  bus.Subscribe<sim::RequestPhaseAccrued>(
      [this](const sim::RequestPhaseAccrued& e) {
        RequestRecord& r = record(e.rid);
        switch (e.phase) {
          case sim::RequestPhase::kQueue:
            r.queue_time += e.amount;
            break;
          case sim::RequestPhase::kLoad:
            r.load_time += e.amount;
            break;
          case sim::RequestPhase::kExec:
            r.exec_time += e.amount;
            break;
          case sim::RequestPhase::kTransfer:
            r.transfer_time += e.amount;
            break;
        }
      });
  bus.Subscribe<sim::RequestCompleted>([this](const sim::RequestCompleted& e) {
    Complete(e.rid, e.at);
  });
  bus.Subscribe<sim::SliceBound>(
      [this](const sim::SliceBound& e) { SliceBound(e.slice, e.at); });
  bus.Subscribe<sim::SliceReleased>(
      [this](const sim::SliceReleased& e) { SliceReleased(e.slice, e.at); });
  bus.Subscribe<sim::SliceBusyBegin>(
      [this](const sim::SliceBusyBegin& e) { SliceBusy(e.slice, e.at); });
  bus.Subscribe<sim::SliceBusyEnd>(
      [this](const sim::SliceBusyEnd& e) { SliceIdle(e.slice, e.at); });
  bus.Subscribe<sim::PartitionReconfigured>(
      [this](const sim::PartitionReconfigured&) { SyncSlices(*cluster_); });
  bus.Subscribe<sim::RequestTimedOut>([this](const sim::RequestTimedOut& e) {
    RequestRecord& r = record(e.rid);
    r.timed_out = true;
    ++timeouts_;
    // Mid-queue expiry cancels the request outright; it never completes.
    if (!e.mid_execution && !r.aborted) {
      r.aborted = true;
      ++aborted_;
    }
  });
  bus.Subscribe<sim::RequestRetried>([this](const sim::RequestRetried& e) {
    ++record(e.rid).retries;
    ++retries_total_;
  });
  bus.Subscribe<sim::RequestAbandoned>(
      [this](const sim::RequestAbandoned& e) {
        ++abandoned_;
        RequestRecord& r = record(e.rid);
        if (!r.aborted) {
          r.aborted = true;
          ++aborted_;
        }
      });
  bus.Subscribe<sim::RequestRejected>([this](const sim::RequestRejected& e) {
    RequestRecord& r = record(e.rid);
    r.rejected = true;
    r.reject_cause = e.cause;
    ++rejected_;
    ++rejects_by_cause_[static_cast<std::size_t>(e.cause)];
    // A rejection is terminal: the request will never complete, so it
    // counts toward finished_requests() or the harness drain would spin.
    if (!r.aborted) {
      r.aborted = true;
      ++aborted_;
    }
  });
  bus.Subscribe<sim::PendingDepthChanged>(
      [this](const sim::PendingDepthChanged& e) {
        queue_depth_.Record(e.at, static_cast<double>(e.depth));
      });
  bus.Subscribe<sim::PlacementCommitted>(
      [this](const sim::PlacementCommitted& e) {
        ++plans_committed_;
        spawns_committed_ += static_cast<std::size_t>(e.spawns);
      });
  bus.Subscribe<sim::PlacementAborted>([this](const sim::PlacementAborted& e) {
    ++plans_aborted_;
    ++aborts_by_cause_[static_cast<std::size_t>(e.cause)];
  });
  bus.Subscribe<sim::InstanceFailed>(
      [this](const sim::InstanceFailed&) { ++instances_failed_; });
  bus.Subscribe<sim::SliceFailed>(
      [this](const sim::SliceFailed&) { ++slices_failed_; });
  bus.Subscribe<sim::SliceRepaired>(
      [this](const sim::SliceRepaired&) { ++slices_repaired_; });
}

RequestId Recorder::NewRequest(FunctionId fn, SimTime arrival,
                               SimTime deadline) {
  RequestRecord r;
  r.id = RequestId(static_cast<std::int32_t>(records_.size()));
  r.fn = fn;
  r.arrival = arrival;
  r.deadline = deadline;
  records_.push_back(r);
  return r.id;
}

RequestRecord& Recorder::record(RequestId id) {
  FFS_CHECK(id.valid() && static_cast<std::size_t>(id.value) < records_.size());
  return records_[static_cast<std::size_t>(id.value)];
}

const RequestRecord& Recorder::record(RequestId id) const {
  return const_cast<Recorder*>(this)->record(id);
}

void Recorder::Complete(RequestId id, SimTime now) {
  RequestRecord& r = record(id);
  FFS_CHECK_MSG(!r.done(), "request completed twice");
  r.completion = now;
  ++completed_;
}

void Recorder::SliceBound(SliceId s, SimTime now) {
  SliceInfo& info = slices_[static_cast<std::size_t>(s.value)];
  FFS_CHECK(!info.bound);
  info.bound = true;
  info.bound_since = now;
  GpuInfo& g = per_gpu_[static_cast<std::size_t>(info.gpu.value)];
  g.bound_slices += 1;
  bound_gpc_count_ += info.gpcs;
  bound_gpcs_.Record(now, bound_gpc_count_);
  g.occupied_gpcs.Record(now, g.occupied_gpcs.ValueAt(now) + info.gpcs);
}

void Recorder::SliceReleased(SliceId s, SimTime now) {
  SliceInfo& info = slices_[static_cast<std::size_t>(s.value)];
  FFS_CHECK(info.bound);
  FFS_CHECK_MSG(!info.busy, "releasing a busy slice");
  info.bound = false;
  info.bound_total += now - info.bound_since;
  GpuInfo& g = per_gpu_[static_cast<std::size_t>(info.gpu.value)];
  g.bound_slices -= 1;
  bound_gpc_count_ -= info.gpcs;
  bound_gpcs_.Record(now, bound_gpc_count_);
  g.occupied_gpcs.Record(now, g.occupied_gpcs.ValueAt(now) - info.gpcs);
}

void Recorder::SliceBusy(SliceId s, SimTime now) {
  SliceInfo& info = slices_[static_cast<std::size_t>(s.value)];
  FFS_CHECK_MSG(info.bound, "busy on an unbound slice");
  FFS_CHECK(!info.busy);
  info.busy = true;
  info.busy_since = now;
  GpuInfo& g = per_gpu_[static_cast<std::size_t>(info.gpu.value)];
  if (g.busy_slices == 0) {
    g.busy_since = now;
    ++busy_gpu_count_;
    busy_gpus_.Record(now, busy_gpu_count_);
  }
  g.busy_slices += 1;
  busy_gpc_count_ += info.gpcs;
  busy_gpcs_.Record(now, busy_gpc_count_);
  g.active_gpcs.Record(now, g.active_gpcs.ValueAt(now) + info.gpcs);
}

void Recorder::SliceIdle(SliceId s, SimTime now) {
  SliceInfo& info = slices_[static_cast<std::size_t>(s.value)];
  FFS_CHECK(info.busy);
  info.busy = false;
  info.busy_total += now - info.busy_since;
  GpuInfo& g = per_gpu_[static_cast<std::size_t>(info.gpu.value)];
  g.busy_slices -= 1;
  if (g.busy_slices == 0) {
    g.busy_total += now - g.busy_since;
    --busy_gpu_count_;
    busy_gpus_.Record(now, busy_gpu_count_);
  }
  busy_gpc_count_ -= info.gpcs;
  busy_gpcs_.Record(now, busy_gpc_count_);
  g.active_gpcs.Record(now, g.active_gpcs.ValueAt(now) - info.gpcs);
}

void Recorder::SyncSlices(const gpu::Cluster& cluster) {
  for (SliceId sid : cluster.AllSlices()) {
    if (static_cast<std::size_t>(sid.value) < slices_.size()) continue;
    FFS_CHECK_MSG(static_cast<std::size_t>(sid.value) == slices_.size(),
                  "fresh slice ids must be appended densely");
    const gpu::MigSlice& s = cluster.slice(sid);
    SliceInfo info;
    info.gpu = s.gpu;
    info.gpcs = s.gpcs();
    slices_.push_back(info);
  }
  // Refresh per-GPU GPC weights from the live topology.
  for (GpuInfo& g : per_gpu_) g.gpcs = 0;
  for (SliceId sid : cluster.AllSlices()) {
    const gpu::MigSlice& s = cluster.slice(sid);
    per_gpu_[static_cast<std::size_t>(s.gpu.value)].gpcs += s.gpcs();
  }
  total_gpcs_ = cluster.TotalGpcs();
}

void Recorder::Close(SimTime end) {
  FFS_CHECK_MSG(!closed_, "Recorder closed twice");
  closed_ = true;
  end_ = end;
  for (SliceInfo& info : slices_) {
    if (info.busy) {
      info.busy_total += end - info.busy_since;
      info.busy = false;
    }
    if (info.bound) {
      info.bound_total += end - info.bound_since;
      info.bound = false;
    }
  }
  for (GpuInfo& g : per_gpu_) {
    if (g.busy_slices > 0) g.busy_total += end - g.busy_since;
    g.occupied_gpcs.Close(end);
    g.active_gpcs.Close(end);
  }
  busy_gpcs_.Close(end);
  bound_gpcs_.Close(end);
  busy_gpus_.Close(end);
  queue_depth_.Close(end);
}

double Recorder::MeanQueueDepth() const {
  FFS_CHECK_MSG(closed_, "Close() the recorder first");
  return end_ > 0 ? queue_depth_.MeanOver(0, end_) : 0.0;
}

double Recorder::JainFairnessIndex() const {
  // Per-function SLO hit rates over the functions that saw traffic.
  std::unordered_map<std::int32_t, std::pair<std::size_t, std::size_t>> per;
  for (const RequestRecord& r : records_) {
    auto& [denom, hits] = per[r.fn.value];
    ++denom;
    if (r.SloHit()) ++hits;
  }
  if (per.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& [fnv, counts] : per) {
    const double x = static_cast<double>(counts.second) /
                     static_cast<double>(counts.first);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  const auto n = static_cast<double>(per.size());
  return (sum * sum) / (n * sum_sq);
}

double Recorder::WorstFunctionP99(FunctionId* which) const {
  std::unordered_map<std::int32_t, std::vector<double>> lats;
  for (const RequestRecord& r : records_) {
    if (r.done()) lats[r.fn.value].push_back(ToSeconds(r.Latency()));
  }
  double worst = 0.0;
  std::int32_t worst_fn = -1;
  for (auto& [fnv, v] : lats) {
    const double p99 = Percentile(v, 0.99);
    // Strict > with the lowest-id tie-break keeps the answer independent
    // of unordered_map iteration order.
    if (p99 > worst || (p99 == worst && worst_fn >= 0 && fnv < worst_fn)) {
      worst = p99;
      worst_fn = fnv;
    }
  }
  if (which != nullptr) *which = FunctionId(worst_fn);
  return worst;
}

double Recorder::SloHitRate(bool count_outstanding) const {
  std::size_t hits = 0;
  std::size_t denom = 0;
  for (const RequestRecord& r : records_) {
    if (!r.done() && !count_outstanding) continue;
    ++denom;
    if (r.SloHit()) ++hits;
  }
  return denom ? static_cast<double>(hits) / static_cast<double>(denom) : 1.0;
}

double Recorder::SloHitRate(FunctionId fn, bool count_outstanding) const {
  std::size_t hits = 0;
  std::size_t denom = 0;
  for (const RequestRecord& r : records_) {
    if (r.fn != fn) continue;
    if (!r.done() && !count_outstanding) continue;
    ++denom;
    if (r.SloHit()) ++hits;
  }
  return denom ? static_cast<double>(hits) / static_cast<double>(denom) : 1.0;
}

double Recorder::Throughput() const {
  FFS_CHECK_MSG(closed_, "Close() the recorder first");
  return ThroughputOver(end_);
}

double Recorder::ThroughputOver(SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  return static_cast<double>(completed_) / ToSeconds(horizon);
}

std::size_t Recorder::CompletedBy(SimTime t) const {
  std::size_t n = 0;
  for (const RequestRecord& r : records_) {
    if (r.done() && r.completion <= t) ++n;
  }
  return n;
}

double Recorder::WindowedThroughput(SimTime window) const {
  if (window <= 0) return 0.0;
  return static_cast<double>(CompletedBy(window)) / ToSeconds(window);
}

std::size_t Recorder::RecoveredRequests() const {
  std::size_t n = 0;
  for (const RequestRecord& r : records_) {
    if (r.done() && r.retries > 0) ++n;
  }
  return n;
}

double Recorder::PlanConflictRate() const {
  const std::size_t attempts = plans_committed_ + plans_aborted_;
  return attempts ? static_cast<double>(plans_aborted_) /
                        static_cast<double>(attempts)
                  : 0.0;
}

double Recorder::WindowedGoodput(SimTime window) const {
  if (window <= 0) return 0.0;
  std::size_t n = 0;
  for (const RequestRecord& r : records_) {
    if (r.Goodput() && r.completion <= window) ++n;
  }
  return static_cast<double>(n) / ToSeconds(window);
}

SimDuration Recorder::MigTime() const {
  SimDuration t = 0;
  for (const SliceInfo& s : slices_) t += s.busy_total;
  return t;
}

SimDuration Recorder::GpuTime() const {
  SimDuration t = 0;
  for (const GpuInfo& g : per_gpu_) t += g.busy_total;
  return t;
}

SimDuration Recorder::OccupiedMigTime() const {
  SimDuration t = 0;
  for (const SliceInfo& s : slices_) t += s.bound_total;
  return t;
}

std::vector<Recorder::GpuOccupancy> Recorder::PerGpuOccupancy() const {
  FFS_CHECK_MSG(closed_, "Close() the recorder first");
  std::vector<GpuOccupancy> out;
  for (const GpuInfo& g : per_gpu_) {
    GpuOccupancy o;
    const double denom = static_cast<double>(g.gpcs);
    o.occupied = denom ? g.occupied_gpcs.MeanOver(0, end_) / denom : 0.0;
    o.active = denom ? g.active_gpcs.MeanOver(0, end_) / denom : 0.0;
    out.push_back(o);
  }
  return out;
}

std::vector<Recorder::SliceTotals> Recorder::PerSliceTotals() const {
  std::vector<SliceTotals> out;
  out.reserve(slices_.size());
  for (const SliceInfo& s : slices_) {
    out.push_back(SliceTotals{s.gpu, s.gpcs, s.busy_total, s.bound_total});
  }
  return out;
}

std::vector<double> Recorder::LatenciesSeconds(FunctionId fn) const {
  std::vector<double> out;
  for (const RequestRecord& r : records_) {
    if (!r.done()) continue;
    if (fn.valid() && r.fn != fn) continue;
    out.push_back(ToSeconds(r.Latency()));
  }
  return out;
}

Recorder::Breakdown Recorder::MeanBreakdown(FunctionId fn) const {
  Breakdown b{0, 0, 0, 0};
  std::size_t n = 0;
  for (const RequestRecord& r : records_) {
    if (!r.done()) continue;
    if (fn.valid() && r.fn != fn) continue;
    ++n;
    b.queue += static_cast<double>(r.queue_time);
    b.load += static_cast<double>(r.load_time);
    b.exec += static_cast<double>(r.exec_time);
    b.transfer += static_cast<double>(r.transfer_time);
  }
  if (n) {
    b.queue /= static_cast<double>(n);
    b.load /= static_cast<double>(n);
    b.exec /= static_cast<double>(n);
    b.transfer /= static_cast<double>(n);
  }
  return b;
}

}  // namespace fluidfaas::metrics
