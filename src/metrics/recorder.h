// Metrics collection for simulation runs.
//
// The recorder is the single sink for (i) per-request lifecycle records —
// queueing, loading, execution, transfer, completion — and (ii) cluster
// occupancy signals — per-slice bound/busy intervals, from which GPU time,
// MIG time, utilization timelines and the keep-alive occupancy study
// (Figs. 3, 5, 16; Table 6) are derived.
//
// Terminology (paper §6):
//   bound   — a slice is allocated to an instance (occupied), regardless of
//             whether it is computing. Drives the "occupied" series of
//             Fig. 5 and the fragmentation analysis.
//   busy    — a slice is actively executing a stage. Drives "actively
//             used", MIG time (Σ busy time over slices) and GPU time
//             (Σ time each GPU has ≥1 busy slice).
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "gpu/cluster.h"
#include "sim/events.h"

namespace fluidfaas::sim {
class EventBus;
}

namespace fluidfaas::metrics {

struct RequestRecord {
  RequestId id;
  FunctionId fn;
  SimTime arrival = 0;
  SimTime deadline = 0;
  SimTime completion = -1;  // -1 while outstanding

  SimDuration queue_time = 0;     // waiting for dispatch + stage queues
  SimDuration load_time = 0;      // cold/warm model loading on its path
  SimDuration exec_time = 0;      // on-slice compute
  SimDuration transfer_time = 0;  // inter-stage hops

  int retries = 0;        // instance failures this request survived
  bool timed_out = false;  // enforcement timeout fired (either flavour)
  bool aborted = false;    // will never complete (timeout/abandonment)
  bool rejected = false;   // refused by admission control
  sim::RejectCause reject_cause = sim::RejectCause::kNone;

  bool done() const { return completion >= 0; }
  SimDuration Latency() const { return done() ? completion - arrival : -1; }
  bool SloHit() const { return done() && completion <= deadline; }
  /// Completed within SLO and not disqualified by a timeout — the unit of
  /// the availability story under faults.
  bool Goodput() const { return SloHit() && !timed_out; }
};

class Recorder {
 public:
  explicit Recorder(const gpu::Cluster& cluster);

  /// Feed the recorder from a simulation's EventBus: request lifecycle and
  /// phase attribution, slice bound/busy intervals, and partition
  /// reconfigurations (which trigger SyncSlices) all arrive as sim/events.h
  /// publications. This is how platform runs drive the recorder — nothing
  /// in the platform layer holds a Recorder reference. Idempotent for the
  /// same bus; subscribing one recorder to two buses is an error.
  void SubscribeTo(sim::EventBus& bus);

  // --- request lifecycle -------------------------------------------------
  RequestId NewRequest(FunctionId fn, SimTime arrival, SimTime deadline);
  RequestRecord& record(RequestId id);
  const RequestRecord& record(RequestId id) const;
  void Complete(RequestId id, SimTime now);

  std::size_t total_requests() const { return records_.size(); }
  std::size_t completed_requests() const { return completed_; }
  /// Requests that reached a terminal state: completed plus aborted
  /// (timed out mid-queue or abandoned by the retry policy). The harness
  /// drains on this — identical to completed_requests() without faults.
  std::size_t finished_requests() const { return completed_ + aborted_; }
  const std::vector<RequestRecord>& records() const { return records_; }

  // --- availability under faults ------------------------------------------
  std::size_t timeouts() const { return timeouts_; }
  std::size_t retries_total() const { return retries_total_; }
  std::size_t abandoned_requests() const { return abandoned_; }
  std::size_t aborted_requests() const { return aborted_; }
  std::size_t instances_failed() const { return instances_failed_; }
  std::size_t slices_failed() const { return slices_failed_; }
  std::size_t slices_repaired() const { return slices_repaired_; }
  /// Completed requests that survived at least one instance failure.
  std::size_t RecoveredRequests() const;
  /// Goodput (SLO-hit, non-timed-out completions) per second of [0, window].
  double WindowedGoodput(SimTime window) const;

  // --- QoS: admission & queueing (DESIGN.md §9) ----------------------------
  std::size_t rejected_requests() const { return rejected_; }
  std::size_t rejected_by(sim::RejectCause cause) const {
    return rejects_by_cause_[static_cast<std::size_t>(cause)];
  }
  /// Central pending-queue depth over time (fed by PendingDepthChanged).
  const TimeWeightedSignal& queue_depth() const { return queue_depth_; }
  /// Time-averaged pending depth over [0, end]; valid after Close().
  double MeanQueueDepth() const;
  /// Jain fairness index over per-function SLO hit rates, functions with
  /// >= 1 request only: (Σx)² / (n·Σx²) ∈ (0, 1], 1 = perfectly even.
  /// 1.0 when no function saw traffic (or all hit rates are zero).
  double JainFairnessIndex() const;
  /// Largest per-function p99 latency (seconds) over functions with >= 1
  /// completion — the starved-tenant tail the fair discipline targets.
  /// 0 with no completions; `which` (optional) receives the function.
  double WorstFunctionP99(FunctionId* which = nullptr) const;

  // --- placement transactions (DESIGN.md §8) -------------------------------
  std::size_t plans_committed() const { return plans_committed_; }
  std::size_t plans_aborted() const { return plans_aborted_; }
  std::size_t plans_aborted_by(sim::PlanAbortCause cause) const {
    return aborts_by_cause_[static_cast<std::size_t>(cause)];
  }
  std::size_t spawns_committed() const { return spawns_committed_; }
  /// Aborted fraction of all commit attempts — the reservation-conflict
  /// rate schedulers pay for optimistic planning. 0 with no attempts.
  double PlanConflictRate() const;

  // --- slice occupancy ---------------------------------------------------
  void SliceBound(SliceId s, SimTime now);
  void SliceReleased(SliceId s, SimTime now);
  void SliceBusy(SliceId s, SimTime now);
  void SliceIdle(SliceId s, SimTime now);

  /// Register slices created by a runtime repartition
  /// (gpu::Cluster::RepartitionGpu). Retired ids keep their accumulated
  /// totals; fresh ids start clean. Also refreshes per-GPU GPC weights.
  void SyncSlices(const gpu::Cluster& cluster);

  /// Finalize all signals at `end`; call once after the run.
  void Close(SimTime end);

  // --- derived metrics (valid after Close) --------------------------------
  /// Fraction of completed requests within their deadline; counts
  /// never-completed requests as misses when `count_outstanding`.
  double SloHitRate(bool count_outstanding = true) const;

  /// Completed requests per second over [0, end].
  double Throughput() const;

  /// Completed requests per second over [0, horizon] — benches pass the
  /// makespan (last completion), which excludes idle drain time.
  double ThroughputOver(SimTime horizon) const;

  /// Requests whose completion lies in [0, t].
  std::size_t CompletedBy(SimTime t) const;

  /// System throughput as the paper reports it: requests completed within
  /// the trace window, per second of that window.
  double WindowedThroughput(SimTime window) const;

  /// Σ over slices of busy time (µs) — "MIG time".
  SimDuration MigTime() const;
  /// Σ over GPUs of time with >= 1 busy slice — "GPU time".
  SimDuration GpuTime() const;
  /// Σ over slices of bound (occupied) time.
  SimDuration OccupiedMigTime() const;

  /// Busy-GPC totals over time (for utilization = value / total GPCs).
  const TimeWeightedSignal& busy_gpcs() const { return busy_gpcs_; }
  const TimeWeightedSignal& bound_gpcs() const { return bound_gpcs_; }
  /// Number of GPUs with >= 1 busy slice over time.
  const TimeWeightedSignal& busy_gpus() const { return busy_gpus_; }

  /// Per-GPU occupancy fractions over [0, end] (Fig. 5):
  /// {occupied fraction, active fraction} per GPU, where fractions weight
  /// slices by GPC count.
  struct GpuOccupancy {
    double occupied;
    double active;
  };
  std::vector<GpuOccupancy> PerGpuOccupancy() const;

  /// Completed-request latencies (seconds), optionally one function only.
  std::vector<double> LatenciesSeconds(FunctionId fn = FunctionId()) const;

  /// Mean per-request breakdown over completed requests of `fn`
  /// (or all when invalid id), in µs: {queue, load, exec, transfer}.
  struct Breakdown {
    double queue, load, exec, transfer;
  };
  Breakdown MeanBreakdown(FunctionId fn = FunctionId()) const;

  /// Per-function SLO hit rate.
  double SloHitRate(FunctionId fn, bool count_outstanding = true) const;

  /// Per-slice busy/bound totals (µs), indexed by SliceId; valid after
  /// Close(). Used by the Fig. 3(b) slice-usage bench and diagnostics.
  struct SliceTotals {
    GpuId gpu;
    int gpcs;
    SimDuration busy;
    SimDuration bound;
  };
  std::vector<SliceTotals> PerSliceTotals() const;

  SimTime end_time() const { return end_; }
  int total_gpcs() const { return total_gpcs_; }
  int num_gpus() const { return static_cast<int>(per_gpu_.size()); }

 private:
  struct SliceInfo {
    GpuId gpu;
    int gpcs;
    bool bound = false;
    bool busy = false;
    SimTime bound_since = 0;
    SimTime busy_since = 0;
    SimDuration bound_total = 0;
    SimDuration busy_total = 0;
  };
  struct GpuInfo {
    int busy_slices = 0;
    int bound_slices = 0;
    SimTime busy_since = 0;
    SimDuration busy_total = 0;  // time with >=1 busy slice
    int gpcs = 0;
    // GPC-weighted occupancy signals for Fig. 5.
    TimeWeightedSignal occupied_gpcs;
    TimeWeightedSignal active_gpcs;
  };

  std::vector<RequestRecord> records_;
  std::size_t completed_ = 0;
  std::size_t timeouts_ = 0;
  std::size_t retries_total_ = 0;
  std::size_t abandoned_ = 0;
  std::size_t aborted_ = 0;
  std::size_t instances_failed_ = 0;
  std::size_t slices_failed_ = 0;
  std::size_t slices_repaired_ = 0;

  std::size_t plans_committed_ = 0;
  std::size_t plans_aborted_ = 0;
  std::size_t spawns_committed_ = 0;
  std::array<std::size_t, sim::kNumPlanAbortCauses> aborts_by_cause_{};

  std::size_t rejected_ = 0;
  std::array<std::size_t, sim::kNumRejectCauses> rejects_by_cause_{};
  TimeWeightedSignal queue_depth_;

  const gpu::Cluster* cluster_ = nullptr;
  sim::EventBus* bus_ = nullptr;

  std::vector<SliceInfo> slices_;
  std::vector<GpuInfo> per_gpu_;
  int total_gpcs_ = 0;

  int busy_gpc_count_ = 0;
  int bound_gpc_count_ = 0;
  TimeWeightedSignal busy_gpcs_;
  TimeWeightedSignal bound_gpcs_;
  TimeWeightedSignal busy_gpus_;
  int busy_gpu_count_ = 0;

  SimTime end_ = -1;
  bool closed_ = false;
};

}  // namespace fluidfaas::metrics
