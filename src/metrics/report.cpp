#include "metrics/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace fluidfaas::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  FFS_CHECK_MSG(cells.size() == header_.size(),
                "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << "+" << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " ";
    }
    os << "|\n";
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Fmt(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string FmtPercent(double fraction, int decimals) {
  return Fmt(fraction * 100.0, decimals) + "%";
}

std::string FmtMillis(double us, int decimals) {
  return Fmt(us / 1000.0, decimals) + "ms";
}

}  // namespace fluidfaas::metrics
