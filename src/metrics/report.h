// Plain-text table and CSV emission helpers shared by the bench binaries,
// so every figure/table prints in a consistent, diff-friendly format.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace fluidfaas::metrics {

/// Fixed-width ASCII table. Columns are sized to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os = std::cout) const;

  /// Emit as CSV (no alignment, comma-separated, header first).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
std::string Fmt(double v, int decimals = 2);
std::string FmtPercent(double fraction, int decimals = 1);
std::string FmtMillis(double us, int decimals = 1);

}  // namespace fluidfaas::metrics
