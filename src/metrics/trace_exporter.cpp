#include "metrics/trace_exporter.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

#include "common/error.h"
#include "sim/event_bus.h"
#include "sim/events.h"

namespace fluidfaas::metrics {

namespace {

constexpr int kPidRequests = 1;
constexpr int kPidInstances = 2;
constexpr int kPidSlices = 3;
constexpr int kPidGpus = 4;
constexpr int kPidPlanner = 5;
constexpr int kPidQueue = 6;

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string TraceExporter::FunctionLabel(FunctionId fn) const {
  const auto idx = static_cast<std::size_t>(fn.value);
  if (fn.valid() && idx < function_names_.size()) return function_names_[idx];
  return "fn" + std::to_string(fn.value);
}

void TraceExporter::SetFunctionNames(std::vector<std::string> names) {
  function_names_ = std::move(names);
}

void TraceExporter::Emit(TraceEvent ev) {
  last_ts_ = std::max(last_ts_, ev.ts + std::max<SimDuration>(ev.dur, 0));
  events_.push_back(std::move(ev));
}

void TraceExporter::SubscribeTo(sim::EventBus& bus) {
  if (bus_ == &bus) return;
  FFS_CHECK_MSG(bus_ == nullptr, "TraceExporter already subscribed to a bus");
  bus_ = &bus;

  bus.Subscribe<sim::RequestSubmitted>([this](const sim::RequestSubmitted& e) {
    open_requests_[e.rid] = OpenSpan{e.at, ""};
    request_fn_[e.rid] = e.fn;
    last_ts_ = std::max(last_ts_, e.at);
  });
  bus.Subscribe<sim::RequestCompleted>([this](const sim::RequestCompleted& e) {
    auto it = open_requests_.find(e.rid);
    if (it == open_requests_.end()) return;
    Emit(TraceEvent{FunctionLabel(e.fn), "request", 'X', it->second.since,
                    e.at - it->second.since, kPidRequests, e.fn.value,
                    "{\"rid\":" + std::to_string(e.rid.value) + "}"});
    open_requests_.erase(it);
    request_fn_.erase(e.rid);
  });

  bus.Subscribe<sim::InstanceStateChanged>(
      [this](const sim::InstanceStateChanged& e) {
        auto it = open_instance_states_.find(e.iid);
        if (it != open_instance_states_.end()) {
          Emit(TraceEvent{it->second.name, "instance", 'X', it->second.since,
                          e.at - it->second.since, kPidInstances, e.iid.value,
                          "{\"fn\":" + std::to_string(e.fn.value) + "}"});
        }
        if (e.to == sim::InstancePhase::kRetired ||
            e.to == sim::InstancePhase::kFailed) {
          open_instance_states_.erase(e.iid);
        } else {
          open_instance_states_[e.iid] = OpenSpan{e.at, Name(e.to)};
        }
      });
  bus.Subscribe<sim::SchedulerTransition>(
      [this](const sim::SchedulerTransition& e) {
        Emit(TraceEvent{Name(e.kind), "transition", 'i', e.at, 0,
                        kPidInstances, e.iid.valid() ? e.iid.value : -1,
                        "{\"fn\":" + std::to_string(e.fn.value) + "}"});
      });

  bus.Subscribe<sim::SliceBound>([this](const sim::SliceBound& e) {
    open_bound_[e.slice] =
        OpenSpan{e.at, "bound i" + std::to_string(e.iid.value)};
    last_ts_ = std::max(last_ts_, e.at);
  });
  bus.Subscribe<sim::SliceReleased>([this](const sim::SliceReleased& e) {
    auto it = open_bound_.find(e.slice);
    if (it == open_bound_.end()) return;
    Emit(TraceEvent{it->second.name, "slice", 'X', it->second.since,
                    e.at - it->second.since, kPidSlices, e.slice.value, ""});
    open_bound_.erase(it);
  });
  bus.Subscribe<sim::SliceBusyBegin>([this](const sim::SliceBusyBegin& e) {
    open_busy_[e.slice] = OpenSpan{e.at, "busy"};
    last_ts_ = std::max(last_ts_, e.at);
  });
  bus.Subscribe<sim::SliceBusyEnd>([this](const sim::SliceBusyEnd& e) {
    auto it = open_busy_.find(e.slice);
    if (it == open_busy_.end()) return;
    Emit(TraceEvent{it->second.name, "slice", 'X', it->second.since,
                    e.at - it->second.since, kPidSlices, e.slice.value, ""});
    open_busy_.erase(it);
  });

  bus.Subscribe<sim::PartitionReconfigured>(
      [this](const sim::PartitionReconfigured& e) {
        Emit(TraceEvent{"repartition " + e.partition, "gpu", 'X', e.at,
                        e.blackout, kPidGpus, e.gpu.value, ""});
      });

  // Placement transactions (DESIGN.md §8): one instant marker per commit
  // attempt on the planner track, committed and aborted on separate rows.
  bus.Subscribe<sim::PlacementCommitted>(
      [this](const sim::PlacementCommitted& e) {
        Emit(TraceEvent{"commit", "plan", 'i', e.at, 0, kPidPlanner, 0,
                        "{\"actions\":" + std::to_string(e.actions) +
                            ",\"spawns\":" + std::to_string(e.spawns) + "}"});
      });
  bus.Subscribe<sim::PlacementAborted>([this](const sim::PlacementAborted& e) {
    Emit(TraceEvent{std::string("abort: ") + Name(e.cause), "plan", 'i',
                    e.at, 0, kPidPlanner, 1,
                    "{\"actions\":" + std::to_string(e.actions) + "}"});
  });

  // Fault & recovery markers.
  bus.Subscribe<sim::InstanceFailed>([this](const sim::InstanceFailed& e) {
    Emit(TraceEvent{std::string("failed: ") + Name(e.cause), "fault", 'i',
                    e.at, 0, kPidInstances, e.iid.value,
                    "{\"fn\":" + std::to_string(e.fn.value) + "}"});
  });
  bus.Subscribe<sim::SliceFailed>([this](const sim::SliceFailed& e) {
    Emit(TraceEvent{"slice failed", "fault", 'X', e.at, e.repair, kPidSlices,
                    e.slice.value, ""});
  });
  bus.Subscribe<sim::SliceRepaired>([this](const sim::SliceRepaired& e) {
    Emit(TraceEvent{"repaired", "fault", 'i', e.at, 0, kPidSlices,
                    e.slice.value, ""});
  });
  bus.Subscribe<sim::RequestRetried>([this](const sim::RequestRetried& e) {
    Emit(TraceEvent{e.resume ? "retry (resume)" : "retry", "fault", 'i',
                    e.at, 0, kPidRequests, e.fn.value,
                    "{\"rid\":" + std::to_string(e.rid.value) +
                        ",\"attempt\":" + std::to_string(e.attempt) + "}"});
  });
  // Terminal request outcomes close the request span like a completion.
  bus.Subscribe<sim::RequestTimedOut>([this](const sim::RequestTimedOut& e) {
    if (e.mid_execution) return;  // span closes at its real completion
    auto it = open_requests_.find(e.rid);
    if (it == open_requests_.end()) return;
    Emit(TraceEvent{FunctionLabel(e.fn) + " (timeout)", "request", 'X',
                    it->second.since, e.at - it->second.since, kPidRequests,
                    e.fn.value,
                    "{\"rid\":" + std::to_string(e.rid.value) + "}"});
    open_requests_.erase(it);
    request_fn_.erase(e.rid);
  });
  bus.Subscribe<sim::RequestAbandoned>(
      [this](const sim::RequestAbandoned& e) {
        auto it = open_requests_.find(e.rid);
        if (it == open_requests_.end()) return;
        Emit(TraceEvent{FunctionLabel(e.fn) + " (abandoned)", "request", 'X',
                        it->second.since, e.at - it->second.since,
                        kPidRequests, e.fn.value,
                        "{\"rid\":" + std::to_string(e.rid.value) +
                            ",\"attempts\":" + std::to_string(e.attempts) +
                            "}"});
        open_requests_.erase(it);
        request_fn_.erase(e.rid);
      });

  // QoS (DESIGN.md §9): admission rejections close the request span and
  // drop an instant marker; pending-queue depth renders as a counter track.
  bus.Subscribe<sim::RequestRejected>([this](const sim::RequestRejected& e) {
    Emit(TraceEvent{std::string("reject: ") + Name(e.cause), "qos", 'i',
                    e.at, 0, kPidQueue, 1,
                    "{\"rid\":" + std::to_string(e.rid.value) +
                        ",\"fn\":" + std::to_string(e.fn.value) + "}"});
    auto it = open_requests_.find(e.rid);
    if (it == open_requests_.end()) return;
    Emit(TraceEvent{FunctionLabel(e.fn) + " (rejected)", "request", 'X',
                    it->second.since, e.at - it->second.since, kPidRequests,
                    e.fn.value,
                    "{\"rid\":" + std::to_string(e.rid.value) +
                        ",\"cause\":\"" + Name(e.cause) + "\"}"});
    open_requests_.erase(it);
    request_fn_.erase(e.rid);
  });
  bus.Subscribe<sim::PendingDepthChanged>(
      [this](const sim::PendingDepthChanged& e) {
        Emit(TraceEvent{"pending depth", "qos", 'C', e.at, 0, kPidQueue, 0,
                        "{\"depth\":" + std::to_string(e.depth) + "}"});
      });
}

void TraceExporter::WriteJson(std::ostream& os) const {
  auto write_event = [&os](const TraceEvent& ev, bool first) {
    if (!first) os << ",\n";
    os << "{\"name\":\"" << EscapeJson(ev.name) << "\",\"cat\":\"" << ev.cat
       << "\",\"ph\":\"" << ev.ph << "\",\"ts\":" << ev.ts;
    if (ev.ph == 'X') os << ",\"dur\":" << ev.dur;
    if (ev.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
    if (!ev.args.empty()) os << ",\"args\":" << ev.args;
    os << "}";
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  // Metadata: name the processes so the viewer's track groups read well.
  const std::pair<int, const char*> procs[] = {{kPidRequests, "requests"},
                                               {kPidInstances, "instances"},
                                               {kPidSlices, "slices"},
                                               {kPidGpus, "gpus"},
                                               {kPidPlanner, "planner"},
                                               {kPidQueue, "queue"}};
  for (const auto& [pid, label] : procs) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":\"" << label << "\"}}";
  }
  for (const TraceEvent& ev : events_) {
    write_event(ev, first);
    first = false;
  }
  // Close spans still open at export time at the last observed timestamp,
  // so a truncated run still renders every live entity.
  for (const auto& [rid, span] : open_requests_) {
    auto fn_it = request_fn_.find(rid);
    const FunctionId fn =
        fn_it == request_fn_.end() ? FunctionId() : fn_it->second;
    write_event(TraceEvent{FunctionLabel(fn), "request", 'X', span.since,
                           std::max<SimDuration>(0, last_ts_ - span.since),
                           kPidRequests, fn.value,
                           "{\"rid\":" + std::to_string(rid.value) +
                               ",\"open\":true}"},
                first);
    first = false;
  }
  for (const auto& [iid, span] : open_instance_states_) {
    write_event(TraceEvent{span.name, "instance", 'X', span.since,
                           std::max<SimDuration>(0, last_ts_ - span.since),
                           kPidInstances, iid.value, ""},
                first);
    first = false;
  }
  for (const auto& [sid, span] : open_bound_) {
    write_event(TraceEvent{span.name, "slice", 'X', span.since,
                           std::max<SimDuration>(0, last_ts_ - span.since),
                           kPidSlices, sid.value, ""},
                first);
    first = false;
  }
  for (const auto& [sid, span] : open_busy_) {
    write_event(TraceEvent{span.name, "slice", 'X', span.since,
                           std::max<SimDuration>(0, last_ts_ - span.since),
                           kPidSlices, sid.value, ""},
                first);
    first = false;
  }
  os << "\n]}\n";
}

void TraceExporter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw FfsError("cannot open trace output file: " + path);
  WriteJson(out);
}

}  // namespace fluidfaas::metrics
