// Chrome-trace (chrome://tracing / Perfetto) exporter.
//
// A second, independent EventBus subscriber: it turns the structured
// simulation events into the Trace Event JSON format
// ({"traceEvents": [...]}, `ph` X/i/M, timestamps in µs — which SimTime
// already is). Load the written file in chrome://tracing or
// https://ui.perfetto.dev to see, per run:
//
//   process "requests"  — one track per function; a complete-event span per
//                         finished request from arrival to completion.
//   process "instances" — one track per instance; spans for each lifecycle
//                         state (loading/ready/draining) plus instant
//                         markers for scheduler transitions (Fig. 8).
//   process "slices"    — one track per MIG slice; "bound" spans with
//                         nested "busy" spans, so fragmentation (bound but
//                         idle) is visible at a glance.
//   process "gpus"      — repartition blackout spans (Repartition baseline).
//
// Subscribing the exporter never perturbs the run (the bus is synchronous
// and side-effect free); tests/harness_determinism_test.cc pins that.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace fluidfaas::sim {
class EventBus;
}

namespace fluidfaas::metrics {

class TraceExporter {
 public:
  TraceExporter() = default;

  /// Start observing a simulation. Idempotent for the same bus; attaching
  /// one exporter to two buses is an error.
  void SubscribeTo(sim::EventBus& bus);

  /// Optional: label request tracks with function names (index = fn id)
  /// instead of "fn<id>".
  void SetFunctionNames(std::vector<std::string> names);

  /// Emit the trace collected so far as Chrome Trace Event JSON. Spans
  /// still open (e.g. instances alive at the end of the run) are closed at
  /// the latest observed timestamp.
  void WriteJson(std::ostream& os) const;

  /// WriteJson to `path`; throws FfsError when the file cannot be opened.
  void WriteFile(const std::string& path) const;

  std::size_t num_events() const { return events_.size(); }

 private:
  struct TraceEvent {
    std::string name;
    std::string cat;
    char ph = 'X';  // X = complete span, i = instant
    SimTime ts = 0;
    SimDuration dur = 0;      // X only
    int pid = 0;
    std::int64_t tid = 0;
    std::string args;  // pre-rendered JSON object, may be empty
  };

  struct OpenSpan {
    SimTime since = 0;
    std::string name;
  };

  std::string FunctionLabel(FunctionId fn) const;
  void Emit(TraceEvent ev);

  sim::EventBus* bus_ = nullptr;
  std::vector<std::string> function_names_;
  std::vector<TraceEvent> events_;
  SimTime last_ts_ = 0;

  // Open spans keyed by the owning entity.
  std::unordered_map<RequestId, OpenSpan> open_requests_;
  std::unordered_map<InstanceId, OpenSpan> open_instance_states_;
  std::unordered_map<SliceId, OpenSpan> open_bound_;
  std::unordered_map<SliceId, OpenSpan> open_busy_;
  std::unordered_map<RequestId, FunctionId> request_fn_;
};

}  // namespace fluidfaas::metrics
