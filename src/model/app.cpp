#include "model/app.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fluidfaas::model {

const char* Name(Variant v) {
  switch (v) {
    case Variant::kSmall:
      return "small";
    case Variant::kMedium:
      return "medium";
    case Variant::kLarge:
      return "large";
  }
  return "?";
}

AppDag::AppDag(std::string name, std::vector<ComponentSpec> components,
               std::vector<DagEdge> edges)
    : name_(std::move(name)),
      components_(std::move(components)),
      edges_(std::move(edges)) {
  Validate();
}

const ComponentSpec& AppDag::component(int idx) const {
  FFS_CHECK(idx >= 0 && idx < size());
  return components_[static_cast<std::size_t>(idx)];
}

Bytes AppDag::TotalMemory() const {
  Bytes total = 0;
  for (const auto& c : components_) total += c.MemoryRequired();
  return total;
}

SimDuration AppDag::TotalLatencyOnGpcs(int gpcs) const {
  SimDuration total = 0;
  for (const auto& c : components_) total += c.ExpectedLatencyOnGpcs(gpcs);
  return total;
}

Bytes AppDag::CutBytes(int k) const {
  FFS_CHECK(k >= 1 && k < size());
  Bytes bytes = 0;
  for (const DagEdge& e : edges_) {
    if (e.from >= 0 && e.from < k && e.to >= k) {
      bytes += components_[static_cast<std::size_t>(e.from)].output.bytes();
    }
  }
  // The function input itself may also be consumed past the cut (e.g. a
  // skip edge); charge nothing extra for it — it is staged once at launch.
  return bytes;
}

std::vector<int> AppDag::Successors(int idx) const {
  std::vector<int> out;
  for (const DagEdge& e : edges_) {
    if (e.from == idx) out.push_back(e.to);
  }
  return out;
}

std::vector<int> AppDag::Predecessors(int idx) const {
  std::vector<int> out;
  for (const DagEdge& e : edges_) {
    if (e.to == idx) out.push_back(e.from);
  }
  return out;
}

void AppDag::Validate() const {
  FFS_CHECK_MSG(!components_.empty(), "empty DAG");
  for (const DagEdge& e : edges_) {
    FFS_CHECK_MSG(e.to >= 0 && e.to < size(), "edge target out of range");
    FFS_CHECK_MSG(e.from >= -1 && e.from < size(), "edge source out of range");
    FFS_CHECK_MSG(e.from < e.to,
                  "stored component order must be topological (edge " +
                      std::to_string(e.from) + "->" + std::to_string(e.to) +
                      ")");
  }
  for (const auto& c : components_) {
    FFS_CHECK_MSG(c.MemoryRequired() > 0, "component with no memory demand");
    FFS_CHECK_MSG(c.latency_1gpc > 0, "component with no latency profile");
    FFS_CHECK(c.exec_probability > 0.0 && c.exec_probability <= 1.0);
    FFS_CHECK(c.serial_fraction >= 0.0 && c.serial_fraction <= 1.0);
  }
}

}  // namespace fluidfaas::model
