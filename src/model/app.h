// Application DAGs (paper Table 4): a serverless ML function composed of DNN
// components with dataflow edges. This is the FFS DAG the programming layer
// registers (§5.2) — it describes computation *within* one serverless
// function, not relations among functions.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.h"
#include "model/component.h"

namespace fluidfaas::model {

/// Variant of an application — memory and batch scale (paper Table 5).
enum class Variant { kSmall = 0, kMedium = 1, kLarge = 2 };

const char* Name(Variant v);
inline constexpr std::array<Variant, 3> kAllVariants = {
    Variant::kSmall, Variant::kMedium, Variant::kLarge};

struct DagEdge {
  int from;  // component index; -1 denotes the function input
  int to;    // component index
};

/// The internal DAG of one application variant. Components are stored in a
/// topological order fixed at construction ("linearized order"); the
/// pipeline partitioner cuts this order into consecutive stages, mirroring
/// the dominator-based grouping of ESG that the paper extends (§5.2.2).
class AppDag {
 public:
  /// Empty DAG for deferred initialization (e.g. inside FunctionSpec);
  /// unusable until assigned from a real DAG.
  AppDag() = default;

  AppDag(std::string name, std::vector<ComponentSpec> components,
         std::vector<DagEdge> edges);

  const std::string& name() const { return name_; }
  const std::vector<ComponentSpec>& components() const { return components_; }
  const std::vector<DagEdge>& edges() const { return edges_; }
  int size() const { return static_cast<int>(components_.size()); }

  const ComponentSpec& component(int idx) const;

  /// Sum of per-component memory — what a monolithic (non-pipelined)
  /// deployment must fit on a single MIG slice.
  Bytes TotalMemory() const;

  /// Expected end-to-end compute latency when every component runs on a
  /// slice with `gpcs` GPCs (no inter-stage transfers).
  SimDuration TotalLatencyOnGpcs(int gpcs) const;

  /// Bytes flowing across the cut between linearized positions k-1 and k
  /// (i.e. from stage ending at k-1 into stage starting at k): the summed
  /// output tensors of components before the cut consumed at/after it.
  Bytes CutBytes(int k) const;

  /// Direct successors / predecessors by component index.
  std::vector<int> Successors(int idx) const;
  std::vector<int> Predecessors(int idx) const;

  /// Validates the stored order is topological; throws FfsError otherwise.
  void Validate() const;

 private:
  std::string name_;
  std::vector<ComponentSpec> components_;
  std::vector<DagEdge> edges_;
};

}  // namespace fluidfaas::model
