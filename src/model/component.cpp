#include "model/component.h"

#include <cmath>

#include "common/error.h"

namespace fluidfaas::model {

const char* Name(ComponentClass c) {
  switch (c) {
    case ComponentClass::kSuperResolution:
      return "super_resolution";
    case ComponentClass::kSegmentation:
      return "segmentation";
    case ComponentClass::kClassification:
      return "classification";
    case ComponentClass::kDeblur:
      return "deblur";
    case ComponentClass::kDepthEstimation:
      return "depth_estimation";
    case ComponentClass::kBackgroundRemoval:
      return "background_removal";
    case ComponentClass::kTokenizer:
      return "tokenizer";
    case ComponentClass::kTransformerLayers:
      return "transformer_layers";
    case ComponentClass::kDetokenizer:
      return "detokenizer";
  }
  return "?";
}

SimDuration ComponentSpec::LatencyOnGpcs(int gpcs) const {
  FFS_CHECK(gpcs >= 1);
  const double t1 = static_cast<double>(latency_1gpc);
  const double scale =
      serial_fraction + (1.0 - serial_fraction) / static_cast<double>(gpcs);
  return static_cast<SimDuration>(std::llround(t1 * scale));
}

SimDuration ComponentSpec::ExpectedLatencyOnGpcs(int gpcs) const {
  return static_cast<SimDuration>(
      std::llround(static_cast<double>(LatencyOnGpcs(gpcs)) *
                   exec_probability));
}

}  // namespace fluidfaas::model
