// A DNN component: one node of a FluidFaaS function's internal DAG.
//
// FluidFaaS never inspects a component's kernels — it consumes the profile
// produced by BUILDDAG mode: memory footprint and execution latency on each
// MIG size (paper §5.2). ComponentSpec is exactly that profile, with the
// latency-vs-GPC relation expressed as an Amdahl-style scaling law:
//
//     t(g) = t(1) * (serial_fraction + (1 - serial_fraction) / g)
//
// which captures the empirical sub-linear speedup of inference kernels on
// larger MIG slices.
#pragma once

#include <string>

#include "common/types.h"
#include "model/tensor.h"

namespace fluidfaas::model {

/// The six component classes of the paper's applications (Table 4), plus
/// the LLM-serving stages of §5.2.3's extension (tokenization, transformer
/// layer groups, response generation).
enum class ComponentClass {
  kSuperResolution,    // SRGAN
  kSegmentation,       // DeepLabV3
  kClassification,     // ResNet50
  kDeblur,             // DeblurGAN
  kDepthEstimation,    // MiDaS
  kBackgroundRemoval,  // U2-Net
  kTokenizer,          // LLM: prompt tokenization + embedding
  kTransformerLayers,  // LLM: a contiguous group of transformer blocks
  kDetokenizer,        // LLM: sampling + detokenization ("response gen.")
};

const char* Name(ComponentClass c);

struct ComponentSpec {
  ComponentId id;
  std::string name;
  ComponentClass cls;

  /// Model weights; this is what gets checkpointed to CPU memory on
  /// eviction and reloaded on a warm start.
  Bytes weights = 0;
  /// Working memory (activations, workspace) at this variant's batch size.
  Bytes activations = 0;

  /// Latency on a single GPC at this variant's batch size.
  SimDuration latency_1gpc = 0;
  /// Serial (non-parallelizable) fraction of that latency.
  double serial_fraction = 0.1;

  /// Probability the component actually executes per request (1.0 for
  /// unconditional nodes; <1 for branch arms like App 3's conditional
  /// super-resolution step).
  double exec_probability = 1.0;

  /// Output tensor handed to successors.
  TensorSpec output;

  /// Total resident memory this component needs on its MIG slice.
  Bytes MemoryRequired() const { return weights + activations; }

  /// Execution latency on a slice with `gpcs` GPCs (unconditional; callers
  /// weight by exec_probability where expectation is wanted).
  SimDuration LatencyOnGpcs(int gpcs) const;

  /// exec_probability-weighted latency, used for pipeline balancing.
  SimDuration ExpectedLatencyOnGpcs(int gpcs) const;
};

}  // namespace fluidfaas::model
