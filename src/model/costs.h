// Data-movement and model-loading cost models.
//
// MIG's strong isolation means two pipeline stages on different slices
// cannot exchange tensors in GPU memory: the producer copies device→host
// into shared memory and the consumer copies host→device (paper §5.2,
// overhead measured at 10–40 ms per hop in §7.3). Model (re)loading costs
// depend on where the weights live: MIG memory (hot), CPU memory (warm), or
// remote storage (cold) — the three keep-alive tiers of §5.3.
#pragma once

#include <cmath>

#include "common/types.h"

namespace fluidfaas::model {

/// Cost of moving a tensor between two pipeline stages on distinct MIG
/// slices, via host shared memory.
struct TransferCostModel {
  /// Fixed per-hop overhead: queue hand-off, process wake-up, pinned-buffer
  /// bookkeeping.
  SimDuration fixed = Millis(6);
  /// Effective PCIe bandwidth for one direction (GB/s). The tensor crosses
  /// the bus twice (D2H then H2D).
  double pcie_gbps = 20.0;

  SimDuration HopCost(Bytes tensor_bytes) const {
    const double secs =
        2.0 * static_cast<double>(tensor_bytes) / (pcie_gbps * 1e9);
    return fixed + static_cast<SimDuration>(std::llround(secs * 1e6));
  }

  /// Same-slice hand-off (consecutive components inside one stage): only
  /// a negligible framework cost, counted as zero in the simulation.
  SimDuration IntraStageCost() const { return 0; }
};

/// Cost of instantiating model weights on a MIG slice.
struct LoadCostModel {
  /// CUDA context/runtime initialization when a process first touches the
  /// slice (paid on cold start and on re-binding after full eviction).
  SimDuration runtime_init = Millis(250);
  /// Host-to-device weight copy bandwidth (GB/s) — warm start path.
  double h2d_gbps = 16.0;
  /// Remote-storage fetch bandwidth (GB/s) — cold start path.
  double remote_gbps = 1.2;
  /// Container / sandbox startup for a cold function instance.
  SimDuration container_start = Seconds(4.0);

  /// Warm start: weights already in CPU memory, copy to the slice.
  SimDuration WarmLoad(Bytes weights) const {
    const double secs = static_cast<double>(weights) / (h2d_gbps * 1e9);
    return runtime_init + static_cast<SimDuration>(std::llround(secs * 1e6));
  }

  /// Cold start: start the container, fetch weights remotely, then load.
  SimDuration ColdLoad(Bytes weights) const {
    const double fetch_secs =
        static_cast<double>(weights) / (remote_gbps * 1e9);
    return container_start +
           static_cast<SimDuration>(std::llround(fetch_secs * 1e6)) +
           WarmLoad(weights);
  }

  /// Eviction: device-to-host copy of the weights (checkpoint to CPU).
  SimDuration Evict(Bytes weights) const {
    const double secs = static_cast<double>(weights) / (h2d_gbps * 1e9);
    return static_cast<SimDuration>(std::llround(secs * 1e6));
  }
};

}  // namespace fluidfaas::model
