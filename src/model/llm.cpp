#include "model/llm.h"

#include "common/error.h"

namespace fluidfaas::model {
namespace {

// fp16 weights (2 bytes/param) split evenly over the layer groups, plus a
// KV-cache/activation budget per group sized for a modest serving batch.
// Group latencies aggregate a full generation (prompt + ~128 tokens) and
// scale well with GPCs (transformer GEMMs parallelize; small serial
// fraction).
const LlmSpec kSpecs[] = {
    {LlmSize::k7B, 7.0, 2, Millis(420), GiB(7.0), GiB(1.4)},
    {LlmSize::k13B, 13.0, 2, Millis(760), GiB(13.0), GiB(2.2)},
    // 34B: 4 x 19.85 GB groups (plus endpoints) exceed even 7g.80gb as a
    // monolith, yet each group fits a 2g.20gb fragment.
    {LlmSize::k34B, 34.0, 4, Millis(510), GiB(17.0), GiB(2.85)},
};

ComponentSpec Endpoint(ComponentClass cls, int index, SimDuration latency,
                       Bytes mem, Bytes out_bytes) {
  ComponentSpec c;
  c.id = ComponentId(index);
  c.name = Name(cls);
  c.cls = cls;
  c.weights = mem / 4;
  c.activations = mem - mem / 4;
  c.latency_1gpc = latency;
  c.serial_fraction = 0.6;  // token-level work, poorly parallelizable
  c.output = TensorSpec({out_bytes}, 1);
  return c;
}

}  // namespace

const char* Name(LlmSize size) {
  switch (size) {
    case LlmSize::k7B:
      return "llm_7b";
    case LlmSize::k13B:
      return "llm_13b";
    case LlmSize::k34B:
      return "llm_34b";
  }
  return "?";
}

const LlmSpec& SpecFor(LlmSize size) {
  for (const LlmSpec& s : kSpecs) {
    if (s.size == size) return s;
  }
  throw FfsError("unknown LlmSize");
}

AppDag BuildLlmApp(LlmSize size) {
  const LlmSpec& spec = SpecFor(size);
  std::vector<ComponentSpec> comps;
  std::vector<DagEdge> edges;

  int idx = 0;
  comps.push_back(Endpoint(ComponentClass::kTokenizer, idx, Millis(6),
                           MiB(600), MiB(2)));
  edges.push_back({-1, idx});
  ++idx;

  for (int g = 0; g < spec.layer_groups; ++g) {
    ComponentSpec c;
    c.id = ComponentId(idx);
    c.name = std::string("transformer_layers_") + std::to_string(g);
    c.cls = ComponentClass::kTransformerLayers;
    c.weights = spec.group_weights;
    c.activations = spec.group_activations;
    c.latency_1gpc = spec.group_latency_1gpc;
    c.serial_fraction = 0.12;
    // Hidden-state hand-off between groups: batch x seq x hidden at fp16,
    // tens of MB — well inside the shared-memory transfer budget.
    c.output = TensorSpec({MiB(24)}, 1);
    edges.push_back({idx - 1, idx});
    comps.push_back(std::move(c));
    ++idx;
  }

  comps.push_back(Endpoint(ComponentClass::kDetokenizer, idx, Millis(9),
                           MiB(400), MiB(1)));
  edges.push_back({idx - 1, idx});

  return AppDag(std::string(Name(size)), std::move(comps), std::move(edges));
}

}  // namespace fluidfaas::model
