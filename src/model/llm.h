// LLM inference as a FluidFaaS function (paper §5.2.3).
//
// The paper states that FluidFaaS "seamlessly maps" LLM serving stages —
// tokenization, model execution, response generation — onto MIG resources.
// This extension models a decoder-only transformer whose layer stack is
// split into contiguous groups, each an independent FFS DAG component:
//
//   tokenizer -> layer-group 1 -> ... -> layer-group G -> detokenizer
//
// Pipeline-parallel layer groups are exactly the structure FluidFaaS's
// partitioner consumes, and they unlock the headline capability: a model
// whose weights exceed every MIG profile (34B at fp16 ≈ 68 GB > 40 GB) can
// still be served on a default-partitioned cluster, because each group fits
// a fragment. The monolithic baselines cannot host it at all.
//
// Memory = weights (2 bytes/param) + KV-cache + activations at the modelled
// batch; latency = per-token cost × generation length, aggregated into a
// per-request service time.
#pragma once

#include "model/app.h"

namespace fluidfaas::model {

enum class LlmSize {
  k7B,   // 2 layer groups, fits 2g.20gb monolithically
  k13B,  // 2 layer groups, needs 3g/4g monolithically
  k34B,  // 4 layer groups, exceeds every profile monolithically on the
         // default partition (weights alone ~68 GB)
};

const char* Name(LlmSize size);

struct LlmSpec {
  LlmSize size;
  double params_billion;
  int layer_groups;
  /// Per-request generation cost on 1 GPC for one layer group.
  SimDuration group_latency_1gpc;
  Bytes group_weights;
  Bytes group_activations;  // KV cache + activations per group
};

const LlmSpec& SpecFor(LlmSize size);

/// Build the FFS DAG for one LLM service.
AppDag BuildLlmApp(LlmSize size);

}  // namespace fluidfaas::model
