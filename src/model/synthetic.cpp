#include "model/synthetic.h"

#include "common/error.h"

namespace fluidfaas::model {

AppDag SyntheticApp(const SyntheticAppParams& p, Rng& rng) {
  FFS_CHECK(p.components >= 1);
  FFS_CHECK(p.min_memory > 0 && p.min_memory <= p.max_memory);
  FFS_CHECK(p.min_latency > 0 && p.min_latency <= p.max_latency);

  std::vector<ComponentSpec> comps;
  std::vector<DagEdge> edges;
  for (int i = 0; i < p.components; ++i) {
    ComponentSpec c;
    c.id = ComponentId(i);
    c.name = "synthetic_" + std::to_string(i);
    c.cls = ComponentClass::kClassification;
    const Bytes mem = rng.UniformInt(p.min_memory, p.max_memory);
    c.weights = mem / 2;
    c.activations = mem - mem / 2;
    c.latency_1gpc = rng.UniformInt(p.min_latency, p.max_latency);
    c.serial_fraction = rng.Uniform(0.02, 0.25);
    if (i > 0 && rng.Chance(p.branch_probability)) {
      c.exec_probability = 0.5;
    }
    c.output = TensorSpec({rng.UniformInt(MiB(1), MiB(64))}, 1);
    comps.push_back(std::move(c));
    edges.push_back({i - 1, i});
  }
  // Optional forward skip edges (keep the stored order topological).
  for (int i = 0; i < p.components; ++i) {
    for (int j = i + 2; j < p.components; ++j) {
      if (rng.Chance(p.skip_edge_probability)) edges.push_back({i, j});
    }
  }
  return AppDag("synthetic", std::move(comps), std::move(edges));
}

}  // namespace fluidfaas::model
