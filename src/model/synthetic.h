// Synthetic application generator: random chains and DAGs with controlled
// size/latency distributions, for property tests and for exercising the
// partitioner beyond the paper's k <= 5 applications (scalability bench).
#pragma once

#include "common/rng.h"
#include "model/app.h"

namespace fluidfaas::model {

struct SyntheticAppParams {
  int components = 6;
  /// Per-component resident memory range.
  Bytes min_memory = GiB(1);
  Bytes max_memory = GiB(12);
  /// Per-component single-GPC latency range.
  SimDuration min_latency = Millis(20);
  SimDuration max_latency = Millis(600);
  /// Probability of an extra skip edge i -> j (j > i+1) per candidate pair.
  double skip_edge_probability = 0.1;
  /// Probability a non-first component is a conditional arm (p = 0.5).
  double branch_probability = 0.1;
};

/// Build a random (but seeded, hence reproducible) application DAG: a chain
/// through all components plus optional skip edges, topological by
/// construction.
AppDag SyntheticApp(const SyntheticAppParams& params, Rng& rng);

}  // namespace fluidfaas::model
