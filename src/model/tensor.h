// Tensor shape/size description. The scheduler and transfer-cost model only
// ever need byte counts, but keeping dims explicit makes example programs and
// the pipeline runtime (which frames real buffers) read naturally.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "common/types.h"

namespace fluidfaas::model {

struct TensorSpec {
  std::vector<std::int64_t> dims;
  int dtype_bytes = 4;  // fp32 by default

  TensorSpec() = default;
  TensorSpec(std::initializer_list<std::int64_t> d, int dtype = 4)
      : dims(d), dtype_bytes(dtype) {}

  Bytes bytes() const {
    if (dims.empty()) return 0;
    std::int64_t n = std::accumulate(dims.begin(), dims.end(),
                                     std::int64_t{1},
                                     std::multiplies<std::int64_t>());
    return n * dtype_bytes;
  }

  std::string ToString() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims.size(); ++i) {
      if (i) s += "x";
      s += std::to_string(dims[i]);
    }
    s += "]x" + std::to_string(dtype_bytes) + "B";
    return s;
  }
};

}  // namespace fluidfaas::model
