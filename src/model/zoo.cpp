#include "model/zoo.h"

#include <array>
#include <cmath>

#include "common/error.h"

namespace fluidfaas::model {
namespace {

// Base profiles at the small variant. Memory figures are GPU-resident
// totals (weights + activations at the small batch size); latencies are
// single-GPC numbers in the range published for these models on datacenter
// GPUs. See zoo.h for the calibration contract.
const std::array<ComponentBase, 6> kBases = {{
    {ComponentClass::kSuperResolution, GiB(1.1), GiB(1.9), Millis(180), 0.08,
     MiB(48)},
    {ComponentClass::kSegmentation, GiB(0.9), GiB(1.6), Millis(95), 0.10,
     MiB(16)},
    {ComponentClass::kClassification, GiB(0.6), GiB(0.9), Millis(28), 0.15,
     MiB(0.25)},
    {ComponentClass::kDeblur, GiB(1.2), GiB(2.0), Millis(140), 0.08, MiB(24)},
    {ComponentClass::kDepthEstimation, GiB(0.9), GiB(1.3), Millis(85), 0.12,
     MiB(8)},
    {ComponentClass::kBackgroundRemoval, GiB(1.0), GiB(1.6), Millis(120),
     0.10, MiB(24)},
}};

// Per-app variant scaling, tuned so monolithic totals and per-component
// maxima land in the Table 5 memory brackets (asserted in tests):
//   apps 0-2: small<=10GB, medium in (10,20], large in (20,40] monolithic;
//             per-component max <=10GB (medium), (10,20] (large).
//   app 3:    small in (10,20], medium in (20,40] monolithic with all
//             components <=10GB; large exceeds every profile -> excluded.
constexpr VariantScale kScales[kNumApps][3] = {
    /* App 0 */ {{1.0, 1.0}, {2.3, 2.4}, {4.6, 6.0}},
    /* App 1 */ {{1.0, 1.0}, {2.2, 2.4}, {4.4, 6.0}},
    /* App 2 */ {{1.0, 1.0}, {2.1, 2.3}, {4.2, 5.8}},
    /* App 3 */ {{1.0, 1.0}, {2.5, 2.6}, {6.3, 8.0}},
};

Bytes ScaleBytes(Bytes b, double s) {
  return static_cast<Bytes>(std::llround(static_cast<double>(b) * s));
}

}  // namespace

const char* AppName(int app_index) {
  switch (app_index) {
    case 0:
      return "image_classification";
    case 1:
      return "depth_recognition";
    case 2:
      return "background_elimination";
    case 3:
      return "expanded_image_classification";
    default:
      throw FfsError("app index out of range: " + std::to_string(app_index));
  }
}

const ComponentBase& BaseProfile(ComponentClass cls) {
  for (const auto& b : kBases) {
    if (b.cls == cls) return b;
  }
  throw FfsError("unknown component class");
}

VariantScale ScaleFor(int app_index, Variant v) {
  FFS_CHECK(app_index >= 0 && app_index < kNumApps);
  return kScales[app_index][static_cast<int>(v)];
}

ComponentSpec MakeComponent(ComponentClass cls, const VariantScale& scale,
                            int index, double exec_probability) {
  const ComponentBase& base = BaseProfile(cls);
  ComponentSpec c;
  c.id = ComponentId(index);
  c.name = Name(cls);
  c.cls = cls;
  c.weights = ScaleBytes(base.weights, scale.memory);
  c.activations = ScaleBytes(base.activations, scale.memory);
  c.latency_1gpc = static_cast<SimDuration>(
      std::llround(static_cast<double>(base.latency_1gpc) * scale.latency));
  c.serial_fraction = base.serial_fraction;
  c.exec_probability = exec_probability;
  // Output framed as a flat byte tensor of the scaled size.
  c.output = TensorSpec({ScaleBytes(base.output_bytes, scale.memory)}, 1);
  return c;
}

AppDag BuildApp(int app_index, Variant v) {
  const VariantScale s = ScaleFor(app_index, v);
  const std::string dag_name =
      std::string(AppName(app_index)) + "/" + Name(v);
  using CC = ComponentClass;
  switch (app_index) {
    case 0:
      return AppDag(dag_name,
                    {MakeComponent(CC::kSuperResolution, s, 0),
                     MakeComponent(CC::kSegmentation, s, 1),
                     MakeComponent(CC::kClassification, s, 2)},
                    {{-1, 0}, {0, 1}, {1, 2}});
    case 1:
      return AppDag(dag_name,
                    {MakeComponent(CC::kDeblur, s, 0),
                     MakeComponent(CC::kSuperResolution, s, 1),
                     MakeComponent(CC::kDepthEstimation, s, 2)},
                    {{-1, 0}, {0, 1}, {1, 2}});
    case 2:
      return AppDag(dag_name,
                    {MakeComponent(CC::kSuperResolution, s, 0),
                     MakeComponent(CC::kDeblur, s, 1),
                     MakeComponent(CC::kBackgroundRemoval, s, 2)},
                    {{-1, 0}, {0, 1}, {1, 2}});
    case 3:
      // Deblur -> (low resolution? SuperResolution : pass) -> BGRemoval ->
      // Segmentation -> Classification. The conditional arm executes for
      // half the requests; the bypass is the 0->2 edge.
      return AppDag(
          dag_name,
          {MakeComponent(CC::kDeblur, s, 0),
           MakeComponent(CC::kSuperResolution, s, 1,
                         /*exec_probability=*/0.5),
           MakeComponent(CC::kBackgroundRemoval, s, 2),
           MakeComponent(CC::kSegmentation, s, 3),
           MakeComponent(CC::kClassification, s, 4)},
          {{-1, 0}, {0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
    default:
      throw FfsError("app index out of range");
  }
}

bool IncludedInStudy(int app_index, Variant v) {
  return !(app_index == 3 && v == Variant::kLarge);
}

std::vector<AppDag> BuildStudyApps(Variant v) {
  std::vector<AppDag> apps;
  for (int a = 0; a < kNumApps; ++a) {
    if (IncludedInStudy(a, v)) apps.push_back(BuildApp(a, v));
  }
  return apps;
}

}  // namespace fluidfaas::model
