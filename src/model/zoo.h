// The model zoo: builders for the six DNN components and the four
// applications of the paper's evaluation (Tables 4 and 5).
//
// Absolute numbers are calibrated, not measured (no A100 here — see
// DESIGN.md §1): per-component memory and latency are chosen to be plausible
// for the cited models *and* to reproduce Table 5's feasibility matrix
// exactly — which monolithic variant fits which MIG profile, and which
// per-stage split FluidFaaS can use. tests/model_zoo_test.cc asserts that
// matrix, so any recalibration that would change scheduler-visible structure
// fails loudly.
#pragma once

#include <string>
#include <vector>

#include "model/app.h"
#include "model/component.h"

namespace fluidfaas::model {

inline constexpr int kNumApps = 4;

/// Paper names: App 0..3.
const char* AppName(int app_index);

/// Base (small-variant) profile of one component class.
struct ComponentBase {
  ComponentClass cls;
  Bytes weights;
  Bytes activations;
  SimDuration latency_1gpc;
  double serial_fraction;
  Bytes output_bytes;
};

const ComponentBase& BaseProfile(ComponentClass cls);

/// Per-app, per-variant scale factors applied to the base profiles.
struct VariantScale {
  double memory;   // multiplies weights, activations, and tensor sizes
  double latency;  // multiplies latency_1gpc
};

VariantScale ScaleFor(int app_index, Variant v);

/// Instantiate one component at a given scale. `index` becomes the
/// ComponentId within its DAG.
ComponentSpec MakeComponent(ComponentClass cls, const VariantScale& scale,
                            int index, double exec_probability = 1.0);

/// Build the full DAG of application `app_index` (0..3) at variant `v`:
///   App 0  image classification      SR -> Seg -> Cls
///   App 1  depth recognition         Deblur -> SR -> Depth
///   App 2  background elimination    SR -> Deblur -> BGRemoval
///   App 3  expanded image class.     Deblur -> (low-res? SR : pass)
///                                      -> BGRemoval -> Seg -> Cls
AppDag BuildApp(int app_index, Variant v);

/// Whether the paper's evaluation includes this (app, variant) cell.
/// App 3 large is excluded (§6: no profile in the testbed can host it).
bool IncludedInStudy(int app_index, Variant v);

/// All apps at one variant, skipping excluded cells.
std::vector<AppDag> BuildStudyApps(Variant v);

}  // namespace fluidfaas::model
