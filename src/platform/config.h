// Tunable constants of the serverless platforms. Defaults encode the
// paper's numbers where it states them (30% time-sharing utilization
// threshold, 10-minute cold timeout, SLO scale 1.5) and conventional values
// elsewhere; every ablation bench overrides exactly one of these.
#pragma once

#include "common/types.h"
#include "model/costs.h"
#include "qos/qos_config.h"

namespace fluidfaas::platform {

struct PlatformConfig {
  /// SLO latency = slo_scale × solo latency on minimum MIG (§6).
  double slo_scale = 1.5;

  /// Autoscaler / state-transition scan period.
  SimDuration autoscale_period = Millis(500);

  /// Instance-utilization threshold separating the exclusive-hot and
  /// time-sharing states (§5.3: "not actively busy (below 30%)").
  double hot_threshold = 0.30;

  /// Window over which instance utilization and arrival rates are averaged.
  SimDuration util_window = Seconds(10.0);

  /// Keep-alive before a warm (CPU-resident) function turns cold (§5.3:
  /// "no requests for 10 minutes").
  SimDuration warm_timeout = Minutes(10.0);

  /// Exclusive keep-alive of the baselines: an idle instance holds its MIG
  /// slice this long after its last request (the policy behind Fig. 5).
  /// The paper's platforms use 10 minutes against hour-scale traces; the
  /// default here is scaled to the minutes-long simulated runs so one early
  /// placement does not starve a function for an entire experiment. The
  /// Fig. 5 bench restores the 10-minute window on a long trace.
  SimDuration exclusive_keepalive = Seconds(120.0);

  /// Target headroom for scale-up: add capacity when the recent arrival
  /// rate exceeds this fraction of deployed capacity (i.e. deploy toward
  /// rate / factor). Bursty arrivals need substantial headroom to keep
  /// queueing within the slim SLO slack.
  double scaleup_load_factor = 0.60;

  /// Maximum pipeline depth considered by the partitioner.
  int max_stages = 4;

  /// Enable hotness-aware eviction-based time sharing (FluidFaaS §5.3).
  bool enable_time_sharing = true;

  /// Enable pipeline construction (FluidFaaS §5.2); when false FluidFaaS
  /// degrades to monolithic-only placement (ablation).
  bool enable_pipelines = true;

  /// Enable pipeline → non-pipeline migration (§5.3).
  bool enable_migration = true;

  /// Batched serving (INFless-style): a stage pulls up to max_batch queued
  /// requests per pass; each extra item adds batch_marginal_cost of the
  /// single-request time. 1 = no batching (the paper's evaluation setting).
  int max_batch = 1;
  double batch_marginal_cost = 0.35;

  /// Log-normal coefficient of variation applied to per-request service
  /// times (kernel-level variability); 0 disables jitter.
  double service_jitter_cv = 0.05;

  /// RNG seed for platform-side randomness (jitter).
  std::uint64_t seed = 42;

  /// Default retry behaviour when the bundle supplies no RetryPolicy:
  /// bounded retries with exponential backoff.
  struct RetryConfig {
    int max_retries = 2;
    SimDuration base_backoff = Millis(50);
    double backoff_multiplier = 2.0;
  };
  RetryConfig retry;

  /// Per-request enforcement timeout = request_timeout_scale × SLO, armed
  /// at submission. 0 disables enforcement (the default — timers would
  /// otherwise perturb the event order of fault-free runs).
  double request_timeout_scale = 0.0;

  /// After an instance crash, relaunch a replacement on free slices of the
  /// same node with the same stage profiles (best effort).
  bool respawn_on_failure = true;

  /// QoS: central-queue discipline and admission control (DESIGN.md §9).
  /// The "fifo"/"none" defaults reproduce pre-QoS behaviour exactly.
  qos::QosConfig qos;

  model::TransferCostModel transfer;
  model::LoadCostModel load;
};

}  // namespace fluidfaas::platform
