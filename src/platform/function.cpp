#include "platform/function.h"

#include <cmath>

#include "common/error.h"

namespace fluidfaas::platform {

FunctionSpec MakeFunctionSpec(FunctionId id, int app_index, model::Variant v,
                              model::AppDag dag, double slo_scale,
                              int max_stages) {
  FFS_CHECK(slo_scale >= 1.0);
  FunctionSpec f;
  f.id = id;
  f.app_index = app_index;
  f.variant = v;
  f.name = dag.name();
  f.total_memory = dag.TotalMemory();
  f.min_monolithic = core::MinMonolithicProfile(dag);
  f.ranked_pipelines = core::EnumerateRankedPipelines(dag, max_stages);
  FFS_CHECK_MSG(!f.ranked_pipelines.empty(),
                "no feasible pipeline for " + f.name);

  // "t": solo time with the minimum MIG instances of Table 5 (§6). The
  // table's minimum is the *pipelined* minimum — the smallest slice class
  // on which the variant can run at all — so t is the end-to-end compute
  // latency with every component on that slice class. One t (and hence one
  // SLO) per function, shared by all compared systems.
  auto min_piped = core::MinPipelinedProfile(dag, max_stages);
  const gpu::MigProfile t_profile =
      min_piped ? *min_piped
                : f.min_monolithic.value_or(gpu::MigProfile::k7g80gb);
  f.base_latency = dag.TotalLatencyOnGpcs(gpu::Gpcs(t_profile));
  f.slo = static_cast<SimDuration>(
      std::llround(static_cast<double>(f.base_latency) * slo_scale));
  f.dag = std::move(dag);
  return f;
}

}  // namespace fluidfaas::platform
