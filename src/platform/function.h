// Registered serverless functions: the unit users invoke.
//
// A FunctionSpec bundles the application DAG with everything the schedulers
// derive offline: the SLO latency (slo_scale × t, where t is the solo run
// time on the minimum monolithic MIG — paper §6), the monolithic memory
// demand, and the CV-ranked pipeline candidates (computed "once and offline
// for each application", §5.2.2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/partitioner.h"
#include "gpu/mig_profile.h"
#include "model/app.h"

namespace fluidfaas::platform {

struct FunctionSpec {
  FunctionId id;
  std::string name;
  int app_index = -1;
  model::Variant variant = model::Variant::kSmall;
  model::AppDag dag;

  /// Solo end-to-end time on the minimum monolithic profile ("t" in §6).
  SimDuration base_latency = 0;
  /// SLO latency = slo_scale * base_latency.
  SimDuration slo = 0;

  Bytes total_memory = 0;
  std::optional<gpu::MigProfile> min_monolithic;

  /// CV-ranked pipeline candidates (offline). candidates[0] is the
  /// monolithic (single-stage) plan when it is feasible.
  std::vector<core::PipelineCandidate> ranked_pipelines;
};

/// Derive a FunctionSpec from an application DAG.
/// `max_stages` bounds pipeline depth (default matches the deepest DAG).
FunctionSpec MakeFunctionSpec(FunctionId id, int app_index, model::Variant v,
                              model::AppDag dag, double slo_scale,
                              int max_stages = 4);

}  // namespace fluidfaas::platform
