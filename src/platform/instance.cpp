#include "platform/instance.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "sim/events.h"

namespace fluidfaas::platform {

namespace {

sim::InstancePhase Phase(InstanceState s) {
  switch (s) {
    case InstanceState::kLoading:
      return sim::InstancePhase::kLoading;
    case InstanceState::kReady:
      return sim::InstancePhase::kReady;
    case InstanceState::kDraining:
      return sim::InstancePhase::kDraining;
    case InstanceState::kRetired:
      return sim::InstancePhase::kRetired;
    case InstanceState::kFailed:
      return sim::InstancePhase::kFailed;
  }
  return sim::InstancePhase::kRetired;
}

}  // namespace

const char* Name(InstanceState s) {
  switch (s) {
    case InstanceState::kLoading:
      return "loading";
    case InstanceState::kReady:
      return "ready";
    case InstanceState::kDraining:
      return "draining";
    case InstanceState::kRetired:
      return "retired";
    case InstanceState::kFailed:
      return "failed";
  }
  return "?";
}

Instance::Instance(InstanceId id, FunctionId fn, const model::AppDag& dag,
                   core::PipelinePlan plan, sim::Simulator& sim,
                   CompletionFn on_complete)
    : id_(id),
      fn_(fn),
      dag_(dag),
      plan_(std::move(plan)),
      sim_(sim),
      on_complete_(std::move(on_complete)) {
  FFS_CHECK(!plan_.stages.empty());
  stages_.reserve(plan_.stages.size());
  for (const core::StageBinding& b : plan_.stages) {
    Stage s;
    s.binding = b;
    stages_.push_back(std::move(s));
  }
  last_used_ = sim_.Now();
}

void Instance::SetState(InstanceState next) {
  if (state_ == next) return;
  sim_.bus().Publish(sim::InstanceStateChanged{id_, fn_, Phase(state_),
                                               Phase(next), sim_.Now()});
  state_ = next;
}

void Instance::Launch(SimDuration load_time) {
  FFS_CHECK(state_ == InstanceState::kLoading);
  ready_at_ = sim_.Now() + load_time;
  if (load_time == 0) {
    SetState(InstanceState::kReady);
    return;
  }
  sim_.At(ready_at_, [this] {
    if (state_ == InstanceState::kRetired ||
        state_ == InstanceState::kFailed) {
      return;
    }
    if (state_ == InstanceState::kLoading) SetState(InstanceState::kReady);
    // Also kick stages when draining: requests admitted before the drain
    // must still be served.
    for (std::size_t i = 0; i < stages_.size(); ++i) TryStart(i);
  });
}

void Instance::NoteActiveTransition(bool active_now) {
  if (active_now) {
    active_since_ = sim_.Now();
  } else {
    active_total_ += sim_.Now() - active_since_;
  }
}

void Instance::Enqueue(RequestId rid, double jitter, SimTime deadline) {
  EnqueueAt(0, rid, jitter, deadline);
}

void Instance::EnqueueAt(std::size_t stage_idx, RequestId rid, double jitter,
                         SimTime deadline) {
  FFS_CHECK_MSG(CanAdmit(), "enqueue on non-admitting instance");
  FFS_CHECK(jitter > 0.0);
  FFS_CHECK(stage_idx < stages_.size());
  ++outstanding_;
  last_used_ = sim_.Now();
  PushItem(stages_[stage_idx],
           PendingItem{rid, jitter, sim_.Now(), deadline, next_item_seq_++});
  TryStart(stage_idx);
}

void Instance::PushItem(Stage& stage, PendingItem item) {
  if (stage_order_ == qos::StageOrder::kArrival) {
    stage.queue.push_back(item);
    return;
  }
  // kDeadline: keep the queue sorted by (deadline, seq). seq makes the
  // order a total one — equal deadlines serve in admission order, never in
  // an incidental one.
  const auto pos = std::upper_bound(
      stage.queue.begin(), stage.queue.end(), item,
      [](const PendingItem& a, const PendingItem& b) {
        if (a.deadline != b.deadline) return a.deadline < b.deadline;
        return a.seq < b.seq;
      });
  stage.queue.insert(pos, item);
}

std::vector<Instance::FailedWork> Instance::Fail() {
  FFS_CHECK_MSG(state_ != InstanceState::kRetired &&
                    state_ != InstanceState::kFailed,
                "Fail() on an already-dead instance");
  const SimTime now = sim_.Now();
  std::vector<FailedWork> victims;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    Stage& st = stages_[i];
    for (const PendingItem& item : st.in_service) {
      victims.push_back(FailedWork{item.rid, item.jitter,
                                   static_cast<int>(i)});
    }
    st.in_service.clear();
    for (const PendingItem& item : st.queue) {
      victims.push_back(FailedWork{item.rid, item.jitter,
                                   static_cast<int>(i)});
    }
    st.queue.clear();
    if (st.busy) {
      st.busy = false;
      sim_.bus().Publish(sim::SliceBusyEnd{st.binding.slice, id_, now});
    }
  }
  // A mid-hop request completed the previous stage; it resumes at the next.
  for (const TransferItem& t : in_transfer_) {
    victims.push_back(FailedWork{t.item.rid, t.item.jitter,
                                 static_cast<int>(t.next_stage)});
  }
  in_transfer_.clear();
  if (busy_stages_ > 0) {
    busy_stages_ = 0;
    NoteActiveTransition(false);
  }
  outstanding_ = 0;
  SetState(InstanceState::kFailed);
  return victims;
}

bool Instance::Abort(RequestId rid) {
  if (state_ == InstanceState::kRetired || state_ == InstanceState::kFailed) {
    return false;
  }
  for (Stage& st : stages_) {
    for (auto it = st.queue.begin(); it != st.queue.end(); ++it) {
      if (it->rid == rid) {
        st.queue.erase(it);
        FFS_CHECK(outstanding_ > 0);
        --outstanding_;
        return true;
      }
    }
  }
  return false;  // executing or mid-transfer: past the point of no return
}

void Instance::BeginDrain() {
  if (state_ == InstanceState::kLoading || state_ == InstanceState::kReady) {
    SetState(InstanceState::kDraining);
  }
}

void Instance::MarkRetired() {
  FFS_CHECK_MSG(Idle(), "retiring an instance with in-flight requests");
  SetState(InstanceState::kRetired);
}

double Instance::CapacityRps() const {
  const SimDuration b = plan_.BottleneckTime();
  return b > 0 ? 1e6 / static_cast<double>(b) : 0.0;
}

SimTime Instance::EstimateCompletion(SimTime now) const {
  const SimTime start = std::max(now, ready_at_);
  return start +
         static_cast<SimDuration>(outstanding_) * plan_.BottleneckTime() +
         ServiceLatency();
}

bool Instance::AdmitWithinBound(SimTime now, SimTime deadline,
                                SimDuration slo) const {
  const SimDuration allowance = std::max(slo, 2 * ServiceLatency());
  return EstimateCompletion(now) <= std::max(deadline, now) + allowance;
}

SimDuration Instance::ActiveTotal(SimTime now) const {
  SimDuration t = active_total_;
  if (busy_stages_ > 0) t += now - active_since_;
  return t;
}

void Instance::SetBatching(int max_batch, double marginal_cost) {
  FFS_CHECK(max_batch >= 1);
  FFS_CHECK(marginal_cost >= 0.0 && marginal_cost <= 1.0);
  max_batch_ = max_batch;
  batch_marginal_ = marginal_cost;
}

void Instance::TryStart(std::size_t stage_idx) {
  Stage& st = stages_[stage_idx];
  if (st.busy || st.queue.empty()) return;
  if (sim_.Now() < ready_at_) return;  // weights still loading
  if (state_ == InstanceState::kRetired || state_ == InstanceState::kFailed) {
    return;
  }
  if (max_batch_ <= 1) {
    StartPass(stage_idx);
    return;
  }
  // Batched: defer one event-queue turn so same-instant arrivals join.
  if (st.pass_scheduled) return;
  st.pass_scheduled = true;
  sim_.After(0, [this, stage_idx] {
    if (state_ == InstanceState::kRetired ||
        state_ == InstanceState::kFailed) {
      return;
    }
    stages_[stage_idx].pass_scheduled = false;
    Stage& s = stages_[stage_idx];
    if (s.busy || s.queue.empty()) return;
    if (sim_.Now() < ready_at_) return;
    StartPass(stage_idx);
  });
}

void Instance::StartPass(std::size_t stage_idx) {
  Stage& st = stages_[stage_idx];
  const SimTime now = sim_.Now();
  std::vector<PendingItem> batch;
  double jitter_sum = 0.0;
  while (!st.queue.empty() &&
         batch.size() < static_cast<std::size_t>(max_batch_)) {
    PendingItem item = st.queue.front();
    st.queue.pop_front();

    // Attribute the wait in this stage's queue: stage-0 waits that overlap
    // the loading interval are load time, everything else is queueing.
    SimDuration wait = now - item.enqueued;
    if (stage_idx == 0 && ready_at_ > item.enqueued) {
      const SimDuration load_part = std::min(now, ready_at_) - item.enqueued;
      if (load_part != 0) {
        sim_.bus().Publish(sim::RequestPhaseAccrued{
            item.rid, sim::RequestPhase::kLoad, load_part, now});
      }
      wait -= load_part;
    }
    if (wait != 0) {
      sim_.bus().Publish(sim::RequestPhaseAccrued{
          item.rid, sim::RequestPhase::kQueue, wait, now});
    }
    jitter_sum += item.jitter;
    batch.push_back(item);
  }
  const auto n = static_cast<double>(batch.size());
  const double batch_factor = 1.0 + (n - 1.0) * batch_marginal_;
  const SimDuration service = static_cast<SimDuration>(std::llround(
      static_cast<double>(st.binding.exec_time) * (jitter_sum / n) *
      batch_factor));
  // Execution time is attributed per request as its share of the pass.
  const SimDuration per_item = static_cast<SimDuration>(
      std::llround(static_cast<double>(service) / n));
  for (const PendingItem& item : batch) {
    if (per_item != 0) {
      sim_.bus().Publish(sim::RequestPhaseAccrued{
          item.rid, sim::RequestPhase::kExec, per_item, now});
    }
  }

  st.busy = true;
  st.in_service = batch;
  if (busy_stages_++ == 0) NoteActiveTransition(true);
  sim_.bus().Publish(sim::SliceBusyBegin{st.binding.slice, id_, now});
  sim_.After(service, [this, stage_idx, batch = std::move(batch)] {
    // A crash mid-pass already harvested this batch as failed work.
    if (state_ == InstanceState::kFailed) return;
    Stage& s = stages_[stage_idx];
    sim_.bus().Publish(sim::SliceBusyEnd{s.binding.slice, id_, sim_.Now()});
    s.busy = false;
    s.in_service.clear();
    if (--busy_stages_ == 0) NoteActiveTransition(false);
    OnStageDone(stage_idx, batch);
    TryStart(stage_idx);
  });
}

void Instance::OnStageDone(std::size_t stage_idx,
                           const std::vector<PendingItem>& batch) {
  const SimTime now = sim_.Now();
  if (stage_idx + 1 == stages_.size()) {
    for (const PendingItem& item : batch) {
      FFS_CHECK(outstanding_ > 0);
      --outstanding_;
      last_used_ = now;
      on_complete_(item.rid);
    }
    return;
  }
  // The whole batch crosses the hop in one transfer; charge each request
  // its share.
  const SimDuration hop = stages_[stage_idx].binding.hop_out;
  const SimDuration per_item = static_cast<SimDuration>(std::llround(
      static_cast<double>(hop) / static_cast<double>(batch.size())));
  for (const PendingItem& item : batch) {
    if (per_item != 0) {
      sim_.bus().Publish(sim::RequestPhaseAccrued{
          item.rid, sim::RequestPhase::kTransfer, per_item, now});
    }
  }
  const std::size_t next = stage_idx + 1;
  for (const PendingItem& item : batch) {
    in_transfer_.push_back(TransferItem{item, next});
  }
  sim_.After(hop, [this, next, batch] {
    // A crash mid-hop already harvested these items from in_transfer_.
    if (state_ == InstanceState::kFailed ||
        state_ == InstanceState::kRetired) {
      return;
    }
    for (const PendingItem& item : batch) {
      for (auto it = in_transfer_.begin(); it != in_transfer_.end(); ++it) {
        if (it->item.rid == item.rid && it->next_stage == next) {
          in_transfer_.erase(it);
          break;
        }
      }
      PushItem(stages_[next], PendingItem{item.rid, item.jitter, sim_.Now(),
                                          item.deadline, item.seq});
    }
    TryStart(next);
  });
}

std::string Instance::Describe() const {
  std::ostringstream os;
  os << "instance " << id_.value << " fn " << fn_.value << " ["
     << Name(state_) << "] " << plan_.ToString() << " outstanding "
     << outstanding_;
  return os.str();
}

}  // namespace fluidfaas::platform
