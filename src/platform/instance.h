// A running function instance: one or more pipeline stages, each bound to a
// MIG slice and modelled as a single-server FIFO queue.
//
// This is the simulation counterpart of Listing 1's runtime — one process
// per stage pinned to its slice, tensors handed to the next stage through
// host shared memory (the hop_out delay), eviction/termination signalled by
// the invoker. Requests flow stage by stage; a stage starts its next request
// as soon as it finishes the current one, so pipeline overlap emerges
// naturally from the event order.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/pipeline.h"
#include "qos/queue_discipline.h"
#include "sim/simulator.h"

namespace fluidfaas::platform {

enum class InstanceState {
  kLoading,   // weights in flight to the slice(s)
  kReady,     // serving
  kDraining,  // finishing in-flight requests; no new admissions
  kRetired,   // slices released
  kFailed,    // crashed; in-flight work was lost (terminal, like kRetired)
};

const char* Name(InstanceState s);

class Instance {
 public:
  /// Invoked when a request leaves the last stage.
  using CompletionFn = std::function<void(RequestId)>;

  /// Lifecycle, per-slice occupancy and per-request phase attribution are
  /// published on `sim.bus()` (sim/events.h) rather than written to any
  /// observer directly.
  Instance(InstanceId id, FunctionId fn, const model::AppDag& dag,
           core::PipelinePlan plan, sim::Simulator& sim,
           CompletionFn on_complete);

  InstanceId id() const { return id_; }
  FunctionId function() const { return fn_; }
  const core::PipelinePlan& plan() const { return plan_; }
  InstanceState state() const { return state_; }
  bool IsPipelined() const { return plan_.num_stages() > 1; }

  /// Begin serving after `load_time` (model loading). Requests may be
  /// enqueued immediately; they wait and their records charge the wait to
  /// load time.
  void Launch(SimDuration load_time);

  /// Enable batched serving: a stage pulls up to `max_batch` queued
  /// requests per pass; the pass costs
  ///   exec_time x (1 + (batch-1) x marginal_cost),
  /// i.e. each extra item adds only the marginal fraction (INFless-style
  /// batching). Default is max_batch = 1 (no batching).
  void SetBatching(int max_batch, double marginal_cost);
  int max_batch() const { return max_batch_; }

  /// Admit a request. `jitter` scales this request's service times
  /// (sampled by the platform; 1.0 = nominal). `deadline` is its absolute
  /// SLO deadline, consulted only under StageOrder::kDeadline (0 is fine
  /// otherwise). Only valid in kLoading / kReady states.
  void Enqueue(RequestId rid, double jitter, SimTime deadline = 0);

  /// Admit a request directly into stage `stage_idx`'s queue — the
  /// recovery path for a request whose earlier stages already completed on
  /// an instance that then failed: the survivor re-runs only the failed
  /// stage onward instead of replaying the whole pipeline. Requires an
  /// identically-shaped plan (same stage count); the caller checks.
  void EnqueueAt(std::size_t stage_idx, RequestId rid, double jitter,
                 SimTime deadline = 0);

  /// Stage-queue ordering. kArrival (default) appends — the legacy FIFO —
  /// while kDeadline keeps every stage queue sorted by (deadline, arrival
  /// seq), so an EDF platform discipline carries through the pipeline.
  /// Set once at launch, before any Enqueue.
  void SetStageOrder(qos::StageOrder order) { stage_order_ = order; }
  qos::StageOrder stage_order() const { return stage_order_; }

  /// Stop admitting; the owner retires the instance once Idle().
  void BeginDrain();

  /// Mark retired (owner releases the slices).
  void MarkRetired();

  /// Work lost when an instance crashes: the request, its jitter, and the
  /// pipeline stage it had reached (completed stages stay completed).
  struct FailedWork {
    RequestId rid;
    double jitter = 1.0;
    int stage = 0;
  };

  /// Crash the instance: every queued, in-service, and in-transfer request
  /// is lost and returned for the owner to retry or abandon; busy slices
  /// publish their SliceBusyEnd at the crash instant; the state machine
  /// moves to the terminal kFailed. Callbacks already scheduled by this
  /// instance become no-ops. The owner releases the slices afterwards.
  std::vector<FailedWork> Fail();

  /// Cancel a request that is still queued (any stage) and not yet
  /// executing or in transfer; false when it is past the point of no
  /// return (mid-execution) or unknown to this instance.
  bool Abort(RequestId rid);

  bool Idle() const { return outstanding_ == 0; }
  int outstanding() const { return outstanding_; }
  bool CanAdmit() const {
    return state_ == InstanceState::kLoading || state_ == InstanceState::kReady;
  }

  /// Steady-state service rate bound (requests/s).
  double CapacityRps() const;

  /// Estimated completion time of a request admitted now.
  SimTime EstimateCompletion(SimTime now) const;

  /// Shared admission policy: accept while the estimate stays within one
  /// `slo` (or twice the idle service latency, whichever is larger) past
  /// the deadline — past `now` for already-late requests. The service-
  /// latency floor is what lets a pipelined instance keep several requests
  /// in flight (stage overlap); a pure SLO bound would cap pipelines at one
  /// request whenever the SLO slack is below the bottleneck time. Overload
  /// beyond the bound belongs in the platform's EDF-ordered pending set,
  /// not in FIFO instance queues.
  bool AdmitWithinBound(SimTime now, SimTime deadline, SimDuration slo) const;

  /// Idle-pipeline end-to-end latency (for lowest-latency-first routing).
  SimDuration ServiceLatency() const { return plan_.EndToEndLatency(); }

  SimTime last_used() const { return last_used_; }
  SimTime ready_at() const { return ready_at_; }

  /// Cumulative time with at least one stage computing, up to `now` —
  /// loading and queue waits do not count as utilization. The autoscaler
  /// differentiates successive snapshots to get windowed utilization.
  SimDuration ActiveTotal(SimTime now) const;

  std::string Describe() const;

 private:
  struct PendingItem {
    RequestId rid;
    double jitter;
    SimTime enqueued;       // when it entered this stage's queue
    SimTime deadline = 0;   // absolute SLO deadline (kDeadline ordering)
    std::uint64_t seq = 0;  // admission order; the deterministic tie-break
  };
  struct Stage {
    core::StageBinding binding;
    std::deque<PendingItem> queue;
    std::vector<PendingItem> in_service;  // the batch currently executing
    bool busy = false;
    bool pass_scheduled = false;  // batching: a pass-start event is queued
  };
  struct TransferItem {
    PendingItem item;
    std::size_t next_stage;
  };

  /// Insert into a stage queue per stage_order_: append for kArrival,
  /// sorted by (deadline, seq) for kDeadline.
  void PushItem(Stage& stage, PendingItem item);

  /// Schedule a service pass. With batching enabled the pass starts one
  /// event-queue turn later so same-instant arrivals coalesce into one
  /// batch; without batching it starts inline.
  void TryStart(std::size_t stage_idx);
  void StartPass(std::size_t stage_idx);
  void OnStageDone(std::size_t stage_idx,
                   const std::vector<PendingItem>& batch);
  void NoteActiveTransition(bool active_now);
  void SetState(InstanceState next);

  InstanceId id_;
  FunctionId fn_;
  const model::AppDag& dag_;
  core::PipelinePlan plan_;
  sim::Simulator& sim_;
  CompletionFn on_complete_;

  InstanceState state_ = InstanceState::kLoading;
  SimTime ready_at_ = 0;
  SimTime last_used_ = 0;
  int outstanding_ = 0;
  int busy_stages_ = 0;
  int max_batch_ = 1;
  double batch_marginal_ = 0.35;
  qos::StageOrder stage_order_ = qos::StageOrder::kArrival;
  std::uint64_t next_item_seq_ = 0;

  // Active-time integrator for utilization windows.
  SimDuration active_total_ = 0;
  SimTime active_since_ = 0;

  std::vector<Stage> stages_;
  // Requests mid-hop between stages (lost on failure like queued work).
  std::vector<TransferItem> in_transfer_;
};

}  // namespace fluidfaas::platform
