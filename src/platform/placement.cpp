#include "platform/placement.h"

namespace fluidfaas::platform {

int PlacementPlan::NumSpawns() const {
  int n = 0;
  for (const PlacementAction& a : actions) {
    if (std::holds_alternative<SpawnAction>(a)) ++n;
  }
  return n;
}

void AddSpawn(PlacementPlan& plan, gpu::ClusterView& view, FunctionId fn,
              core::PipelinePlan pipeline, bool warm,
              SimDuration extra_load_delay) {
  for (const core::StageBinding& s : pipeline.stages) view.Reserve(s.slice);
  plan.actions.push_back(
      SpawnAction{fn, std::move(pipeline), warm, extra_load_delay});
}

void AddEvict(PlacementPlan& plan, gpu::ClusterView& view, InstanceId victim,
              const core::PipelinePlan& victim_plan) {
  for (const core::StageBinding& s : victim_plan.stages) {
    view.MarkPlannedFree(s.slice);
  }
  plan.actions.push_back(EvictAction{victim});
}

PlacementPlan SpawnPlan(FunctionId fn, core::PipelinePlan pipeline, bool warm,
                        SimDuration extra_load_delay) {
  PlacementPlan plan;
  plan.actions.push_back(
      SpawnAction{fn, std::move(pipeline), warm, extra_load_delay});
  return plan;
}

}  // namespace fluidfaas::platform
