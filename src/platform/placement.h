// Placement transactions: the explicit, atomically-committed output of every
// scheduler's placement decision (DESIGN.md §8).
//
// A planner builds a PlacementPlan against a gpu::ClusterView — reserving
// slices in the view as it goes, so a multi-slice pipeline search never
// double-books — and hands the plan to PlatformCore::Commit(). Commit
// re-validates every action against *live* state (slices may have failed,
// been repartitioned away, or been taken by a concurrent decentralized
// scheduler since the view was taken) and either applies the whole plan or
// aborts it with a typed sim::PlanAbortCause: nothing half-binds.
//
// Action order inside a plan is meaningful and preserved: an eviction frees
// its victim's slices for the spawns that follow it (the FluidFaaS
// time-sharing path), while a migration spawns the replacement before
// draining the pipeline it supersedes.
#pragma once

#include <variant>
#include <vector>

#include "core/pipeline.h"
#include "gpu/cluster_view.h"
#include "gpu/mig_partition.h"
#include "sim/events.h"

namespace fluidfaas::platform {

class Instance;

/// Bind a planned pipeline's slices and launch an instance for `fn`.
/// `warm` / `extra_load_delay` are fixed at plan time so the load-path
/// arithmetic is independent of what earlier actions in the plan do.
struct SpawnAction {
  FunctionId fn;
  core::PipelinePlan pipeline;
  bool warm = false;
  SimDuration extra_load_delay = 0;
};

/// Retire an idle instance now; its slices become available to subsequent
/// spawns in the same plan.
struct EvictAction {
  InstanceId victim;
};

/// Drain an instance (retire immediately when idle). Unlike EvictAction its
/// slices are NOT offered to later actions — the drain may take simulated
/// time to finish.
struct DrainAction {
  InstanceId victim;
};

/// Repartition a GPU to `target`. When `sentinel` is valid, the fresh
/// slices are immediately sentinel-bound for the reconfiguration blackout
/// (the Repartition baseline); release them via
/// PlatformCore::FinishRepartition once the blackout elapses.
struct RepartitionAction {
  GpuId gpu;
  gpu::MigPartition target;
  SimDuration blackout = 0;
  InstanceId sentinel;
};

using PlacementAction =
    std::variant<SpawnAction, EvictAction, DrainAction, RepartitionAction>;

struct PlacementPlan {
  std::vector<PlacementAction> actions;

  bool empty() const { return actions.empty(); }
  int NumActions() const { return static_cast<int>(actions.size()); }
  int NumSpawns() const;
};

/// Outcome of PlatformCore::Commit. On success `spawned` holds the launched
/// instances in action order and `fresh_slices` the ids minted by a
/// RepartitionAction; on abort nothing was applied and `cause` says why.
struct CommitResult {
  sim::PlanAbortCause cause = sim::PlanAbortCause::kNone;
  std::vector<Instance*> spawned;
  std::vector<SliceId> fresh_slices;

  bool ok() const { return cause == sim::PlanAbortCause::kNone; }
};

/// Append a spawn and reserve its stage slices in `view`, keeping the plan
/// and the planner's view of free capacity in lockstep.
void AddSpawn(PlacementPlan& plan, gpu::ClusterView& view, FunctionId fn,
              core::PipelinePlan pipeline, bool warm,
              SimDuration extra_load_delay = 0);

/// Append an eviction and mark the victim's slices planned-free in `view`
/// so the spawns planned after it can target them.
void AddEvict(PlacementPlan& plan, gpu::ClusterView& view, InstanceId victim,
              const core::PipelinePlan& victim_plan);

/// One-action convenience for the ubiquitous single-spawn decision.
PlacementPlan SpawnPlan(FunctionId fn, core::PipelinePlan pipeline, bool warm,
                        SimDuration extra_load_delay = 0);

}  // namespace fluidfaas::platform
