#include "platform/platform.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/logging.h"

namespace fluidfaas::platform {

Platform::Platform(sim::Simulator& sim, gpu::Cluster& cluster,
                   metrics::Recorder& recorder,
                   std::vector<FunctionSpec> functions, PlatformConfig config)
    : functions_(std::move(functions)),
      sim_(sim),
      cluster_(cluster),
      recorder_(recorder),
      config_(config),
      rng_(config.seed) {
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    FFS_CHECK_MSG(functions_[i].id ==
                      FunctionId(static_cast<std::int32_t>(i)),
                  "function ids must be dense and ordered");
  }
}

Platform::~Platform() = default;

void Platform::Start() {
  FFS_CHECK_MSG(autoscale_ == nullptr, "Start() called twice");
  last_tick_ = sim_.Now();
  autoscale_ = std::make_unique<sim::PeriodicTask>(
      sim_, config_.autoscale_period, [this] {
        // Update arrival-rate EWMAs before the subclass scan.
        const double period_s = ToSeconds(config_.autoscale_period);
        for (auto& [fn, st] : arrivals_) {
          const double inst_rate =
              static_cast<double>(st.count_this_tick) / period_s;
          st.rate = 0.5 * st.rate + 0.5 * inst_rate;
          // A geometric decay never reaches zero; clamp so a long-idle
          // function stops looking like residual demand to the scalers.
          if (st.rate < 1e-6) st.rate = 0.0;
          st.count_this_tick = 0;
        }
        // Refresh smoothed utilizations; the smoothing constant gives the
        // EWMA an effective memory of about one util_window.
        const double alpha =
            std::min(1.0, static_cast<double>(config_.autoscale_period) /
                              static_cast<double>(config_.util_window));
        for (const auto& inst : instances_) {
          if (inst->state() == InstanceState::kRetired) continue;
          double& ewma = util_ewma_[inst->id()];
          ewma = (1.0 - alpha) * ewma + alpha * TickUtilization(inst.get());
        }
        AutoscaleTick();
        DispatchPending();
        last_tick_ = sim_.Now();
      });
  autoscale_->Start(sim_.Now() + config_.autoscale_period);
}

void Platform::Stop() {
  if (autoscale_) autoscale_->Stop();
}

const FunctionSpec& Platform::function(FunctionId fn) const {
  FFS_CHECK(fn.valid() &&
            static_cast<std::size_t>(fn.value) < functions_.size());
  return functions_[static_cast<std::size_t>(fn.value)];
}

RequestId Platform::Submit(FunctionId fn) {
  const FunctionSpec& spec = function(fn);
  const SimTime now = sim_.Now();
  const RequestId rid = recorder_.NewRequest(fn, now, now + spec.slo);
  jitter_of_[rid] = SampleJitter();
  arrivals_[fn].count_this_tick += 1;
  if (!Route(rid, fn)) MakePending(rid, fn);
  return rid;
}

double Platform::JitterOf(RequestId rid) const {
  auto it = jitter_of_.find(rid);
  return it == jitter_of_.end() ? 1.0 : it->second;
}

double Platform::SampleJitter() {
  if (config_.service_jitter_cv <= 0.0) return 1.0;
  // Log-normal with unit mean: sigma^2 = ln(1 + cv^2), mu = -sigma^2/2.
  const double s2 = std::log(1.0 + config_.service_jitter_cv *
                                       config_.service_jitter_cv);
  return rng_.LogNormal(-0.5 * s2, std::sqrt(s2));
}

std::vector<Instance*> Platform::InstancesOf(FunctionId fn) const {
  std::vector<Instance*> out;
  auto it = by_function_.find(fn);
  if (it == by_function_.end()) return out;
  for (Instance* inst : it->second) {
    if (inst->state() != InstanceState::kRetired) out.push_back(inst);
  }
  return out;
}

std::size_t Platform::PendingCount() const { return pending_.size(); }

Instance* Platform::LaunchInstance(const FunctionSpec& fn,
                                   core::PipelinePlan plan, bool warm,
                                   SimDuration extra_load_delay) {
  const InstanceId iid(next_instance_id_++);
  const SimTime now = sim_.Now();

  // Stages load in parallel (one process per slice); the instance is ready
  // when the largest stage finishes loading.
  Bytes max_stage_weights = 0;
  for (const core::StageBinding& s : plan.stages) {
    max_stage_weights = std::max(max_stage_weights, s.plan.weights);
  }
  const SimDuration load =
      extra_load_delay + (warm ? config_.load.WarmLoad(max_stage_weights)
                               : config_.load.ColdLoad(max_stage_weights));

  for (const core::StageBinding& s : plan.stages) {
    cluster_.Bind(s.slice, iid);
    recorder_.SliceBound(s.slice, now);
  }

  auto inst = std::make_unique<Instance>(
      iid, fn.id, fn.dag, std::move(plan), sim_, recorder_,
      [this](RequestId rid) { HandleCompletion(rid); });
  Instance* raw = inst.get();
  instances_.push_back(std::move(inst));
  by_function_[fn.id].push_back(raw);
  raw->SetBatching(config_.max_batch, config_.batch_marginal_cost);
  raw->Launch(load);
  FFS_LOG_DEBUG("platform") << name() << " launch " << raw->Describe()
                            << (warm ? " (warm " : " (cold ")
                            << ToMillis(load) << "ms load)";
  return raw;
}

void Platform::RetireInstance(Instance* inst) {
  FFS_CHECK(inst->state() != InstanceState::kRetired);
  FFS_CHECK_MSG(inst->Idle(), "retiring a busy instance");
  const SimTime now = sim_.Now();
  for (const core::StageBinding& s : inst->plan().stages) {
    cluster_.Release(s.slice, inst->id());
    recorder_.SliceReleased(s.slice, now);
  }
  inst->MarkRetired();
  TouchWarm(inst->function());
  FFS_LOG_DEBUG("platform") << name() << " retire " << inst->Describe();
}

bool Platform::DrainOrRetire(Instance* inst) {
  if (inst->Idle()) {
    RetireInstance(inst);
    return true;
  }
  inst->BeginDrain();
  return false;
}

bool Platform::IsWarm(FunctionId fn) const {
  auto it = warm_.find(fn);
  return it != warm_.end() && it->second.warm &&
         it->second.expires > sim_.Now();
}

SimDuration Platform::LoadTime(FunctionId fn, Bytes weights) const {
  return IsWarm(fn) ? config_.load.WarmLoad(weights)
                    : config_.load.ColdLoad(weights);
}

void Platform::TouchWarm(FunctionId fn) {
  WarmState& w = warm_[fn];
  w.warm = true;
  w.expires = sim_.Now() + config_.warm_timeout;
}

double Platform::ArrivalRate(FunctionId fn) const {
  auto it = arrivals_.find(fn);
  return it == arrivals_.end() ? 0.0 : it->second.rate;
}

double Platform::TickUtilization(Instance* inst) {
  const SimTime now = sim_.Now();
  const SimDuration total = inst->ActiveTotal(now);
  SimDuration& prev = last_active_snapshot_[inst->id()];
  const SimDuration window = now - last_tick_;
  const SimDuration delta = total - prev;
  prev = total;
  if (window <= 0) return 0.0;
  return std::clamp(static_cast<double>(delta) / static_cast<double>(window),
                    0.0, 1.0);
}

double Platform::UtilizationOf(const Instance* inst) const {
  auto it = util_ewma_.find(inst->id());
  return it == util_ewma_.end() ? 0.0 : it->second;
}

void Platform::MakePending(RequestId rid, FunctionId fn) {
  const metrics::RequestRecord& rec = recorder_.record(rid);
  const FunctionSpec& spec = function(fn);
  // Adjusted deadline: deadline − estimated execution − load time (§5.3).
  const SimDuration est_exec = spec.base_latency;
  const SimDuration est_load =
      IsWarm(fn) ? config_.load.WarmLoad(spec.dag.TotalMemory() / 2) : 0;
  pending_.emplace(rec.deadline - est_exec - est_load,
                   std::make_pair(rid, fn));
}

void Platform::DispatchPending() {
  // Requests are tried in ascending adjusted-deadline order; the ones that
  // still cannot be placed stay pending.
  auto it = pending_.begin();
  while (it != pending_.end()) {
    const auto [rid, fn] = it->second;
    if (Route(rid, fn)) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void Platform::HandleCompletion(RequestId rid) {
  recorder_.Complete(rid, sim_.Now());
  const FunctionId fn = recorder_.record(rid).fn;
  jitter_of_.erase(rid);
  OnCompleted(rid, fn);
  DispatchPending();
}

void Platform::ExpireIdleInstances(SimDuration keepalive) {
  const SimTime now = sim_.Now();
  for (const auto& inst : instances_) {
    if (inst->state() != InstanceState::kReady) continue;
    if (!inst->Idle()) continue;
    if (now - inst->last_used() >= keepalive) RetireInstance(inst.get());
  }
}

}  // namespace fluidfaas::platform
