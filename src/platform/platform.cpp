#include "platform/platform.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <variant>

#include "common/error.h"
#include "common/logging.h"
#include "sim/events.h"

namespace fluidfaas::platform {

PlatformCore::PlatformCore(sim::Simulator& sim, gpu::Cluster& cluster,
                           std::vector<FunctionSpec> functions,
                           PlatformConfig config, PolicyBundle bundle)
    : functions_(std::move(functions)),
      sim_(sim),
      cluster_(cluster),
      config_(config),
      rng_(config.seed),
      name_(std::move(bundle.name)),
      routing_(std::move(bundle.routing)),
      scaling_(std::move(bundle.scaling)),
      keepalive_(std::move(bundle.keepalive)),
      retry_(std::move(bundle.retry)),
      counters_(std::move(bundle.counters)) {
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    FFS_CHECK_MSG(functions_[i].id ==
                      FunctionId(static_cast<std::int32_t>(i)),
                  "function ids must be dense and ordered");
  }
  FFS_CHECK_MSG(routing_ != nullptr, "bundle needs a RoutingPolicy");
  FFS_CHECK_MSG(scaling_ != nullptr, "bundle needs a ScalingPolicy");
  if (!keepalive_) keepalive_ = std::make_unique<NullKeepAlive>();
  {
    qos::QueuePolicy qp = bundle.queue ? bundle.queue(config_.qos)
                                       : qos::MakeQueuePolicy(config_.qos);
    FFS_CHECK_MSG(qp.discipline != nullptr && qp.admission != nullptr,
                  "queue policy must supply a discipline and an admission "
                  "controller");
    pending_q_ = std::move(qp.discipline);
    admission_ = std::move(qp.admission);
  }
  if (!retry_) {
    retry_ = std::make_unique<BoundedRetryPolicy>(
        config_.retry.max_retries, config_.retry.base_backoff,
        config_.retry.backoff_multiplier);
  }
  routing_->Attach(*this);
  scaling_->Attach(*this);
  keepalive_->Attach(*this);

  // Fault-command intake (sim/events.h). Without a FaultInjector these
  // subscriptions never fire; commands naming dead entities are dropped so
  // the injector's RNG stream stays independent of platform state.
  fault_subs_.push_back(bus().SubscribeScoped<sim::InstanceCrashRequested>(
      [this](const sim::InstanceCrashRequested& e) {
        if (Instance* inst = FindInstance(e.iid)) {
          FailInstance(inst, sim::FaultKind::kInstanceCrash);
        }
      }));
  fault_subs_.push_back(bus().SubscribeScoped<sim::SliceFailureRequested>(
      [this](const sim::SliceFailureRequested& e) {
        if (cluster_.IsDead(e.slice) || cluster_.IsFailed(e.slice)) return;
        const gpu::MigSlice& s = cluster_.slice(e.slice);
        if (s.free()) {
          FailSlice(e.slice, e.repair);
          return;
        }
        Instance* inst = FindInstance(s.occupant);
        // Sentinel occupants (repartition blackout) have no instance to
        // crash; the injection lands on the reconfiguring GPU and is lost.
        if (inst == nullptr) return;
        FailInstance(inst, sim::FaultKind::kSliceFailure, e.slice, e.repair);
      }));
  fault_subs_.push_back(bus().SubscribeScoped<sim::ColdStartFailureArmed>(
      [this](const sim::ColdStartFailureArmed&) {
        ++pending_cold_failures_;
      }));
  fault_subs_.push_back(bus().SubscribeScoped<sim::SlowStartArmed>(
      [this](const sim::SlowStartArmed& e) {
        pending_slow_factors_.push_back(e.factor);
      }));
}

PlatformCore::~PlatformCore() = default;

void PlatformCore::Start() {
  FFS_CHECK_MSG(autoscale_ == nullptr, "Start() called twice");
  last_tick_ = sim_.Now();
  autoscale_ = std::make_unique<sim::PeriodicTask>(
      sim_, config_.autoscale_period, [this] {
        // Update arrival-rate EWMAs before the policy scan.
        const double period_s = ToSeconds(config_.autoscale_period);
        for (auto& [fn, st] : arrivals_) {
          const double inst_rate =
              static_cast<double>(st.count_this_tick) / period_s;
          st.rate = 0.5 * st.rate + 0.5 * inst_rate;
          // A geometric decay never reaches zero; clamp so a long-idle
          // function stops looking like residual demand to the scalers.
          if (st.rate < 1e-6) st.rate = 0.0;
          st.count_this_tick = 0;
        }
        // Refresh smoothed utilizations; the smoothing constant gives the
        // EWMA an effective memory of about one util_window.
        const double alpha =
            std::min(1.0, static_cast<double>(config_.autoscale_period) /
                              static_cast<double>(config_.util_window));
        for (const auto& inst : instances_) {
          if (inst->state() == InstanceState::kRetired) continue;
          double& ewma = util_ewma_[inst->id()];
          ewma = (1.0 - alpha) * ewma + alpha * TickUtilization(inst.get());
        }
        scaling_->Tick(*this);
        keepalive_->Tick(*this);
        DispatchPending();
        last_tick_ = sim_.Now();
      });
  autoscale_->Start(sim_.Now() + config_.autoscale_period);
}

void PlatformCore::Stop() {
  if (autoscale_) autoscale_->Stop();
}

const FunctionSpec& PlatformCore::function(FunctionId fn) const {
  FFS_CHECK(fn.valid() &&
            static_cast<std::size_t>(fn.value) < functions_.size());
  return functions_[static_cast<std::size_t>(fn.value)];
}

SchedulerCounters PlatformCore::scheduler_counters() const {
  return counters_ ? counters_() : SchedulerCounters{};
}

RequestId PlatformCore::Submit(FunctionId fn) {
  const FunctionSpec& spec = function(fn);
  const SimTime now = sim_.Now();
  const RequestId rid(next_request_id_++);
  const SimTime deadline = now + spec.slo;
  bus().Publish(sim::RequestSubmitted{rid, fn, now, deadline});
  meta_.emplace(rid, ReqMeta{fn, deadline, SampleJitter()});
  arrivals_[fn].count_this_tick += 1;
  // Admission gate (rate limit / depth cap). NullAdmission — the default —
  // always admits, leaving the fault-free event stream untouched.
  const sim::RejectCause gate =
      admission_->AdmitAtSubmit(MakeQueueItem(rid, fn), now, *pending_q_);
  if (gate != sim::RejectCause::kNone) {
    RejectRequest(rid, fn, gate, /*at_submit=*/true);
    return rid;
  }
  if (config_.request_timeout_scale > 0.0) {
    const SimTime expire =
        now + static_cast<SimDuration>(
                  std::llround(config_.request_timeout_scale *
                               static_cast<double>(spec.slo)));
    sim_.At(expire, [this, rid] { ExpireRequest(rid); });
  }
  if (!routing_->Route(*this, rid, fn)) MakePending(rid, fn);
  return rid;
}

double PlatformCore::JitterOf(RequestId rid) const {
  auto it = meta_.find(rid);
  return it == meta_.end() ? 1.0 : it->second.jitter;
}

SimTime PlatformCore::DeadlineOf(RequestId rid) const {
  auto it = meta_.find(rid);
  FFS_CHECK_MSG(it != meta_.end(), "DeadlineOf on a non-outstanding request");
  return it->second.deadline;
}

double PlatformCore::SampleJitter() {
  if (config_.service_jitter_cv <= 0.0) return 1.0;
  // Log-normal with unit mean: sigma^2 = ln(1 + cv^2), mu = -sigma^2/2.
  const double s2 = std::log(1.0 + config_.service_jitter_cv *
                                       config_.service_jitter_cv);
  return rng_.LogNormal(-0.5 * s2, std::sqrt(s2));
}

std::vector<Instance*> PlatformCore::InstancesOf(FunctionId fn) const {
  std::vector<Instance*> out;
  auto it = by_function_.find(fn);
  if (it == by_function_.end()) return out;
  for (Instance* inst : it->second) {
    if (inst->state() != InstanceState::kRetired &&
        inst->state() != InstanceState::kFailed) {
      out.push_back(inst);
    }
  }
  return out;
}

std::vector<Instance*> PlatformCore::AllInstances() const {
  std::vector<Instance*> out;
  for (const auto& inst : instances_) {
    if (inst->state() != InstanceState::kRetired &&
        inst->state() != InstanceState::kFailed) {
      out.push_back(inst.get());
    }
  }
  return out;
}

std::size_t PlatformCore::PendingCount() const { return pending_q_->size(); }

std::size_t PlatformCore::PendingCountOf(FunctionId fn) const {
  return pending_q_->DepthOf(fn);
}

PlatformCore::Backpressure PlatformCore::CurrentBackpressure() const {
  Backpressure bp;
  bp.pending = pending_q_->size();
  bp.rejected = rejected_total_;
  bp.shedding = rejected_total_ > 0;
  return bp;
}

qos::QueueItem PlatformCore::MakeQueueItem(RequestId rid,
                                           FunctionId fn) const {
  const FunctionSpec& spec = function(fn);
  // Adjusted deadline: deadline − estimated execution − load time (§5.3).
  const SimDuration est_exec = spec.base_latency;
  const SimDuration est_load =
      IsWarm(fn) ? config_.load.WarmLoad(spec.dag.TotalMemory() / 2) : 0;
  qos::QueueItem item;
  item.rid = rid;
  item.fn = fn;
  item.deadline = DeadlineOf(rid);
  item.priority = item.deadline - est_exec - est_load;
  item.service_estimate = est_exec + est_load;
  return item;
}

void PlatformCore::PublishPendingDepth() {
  const std::size_t depth = pending_q_->size();
  if (depth == last_depth_published_) return;
  last_depth_published_ = depth;
  bus().Publish(sim::PendingDepthChanged{depth, sim_.Now()});
}

void PlatformCore::RejectRequest(RequestId rid, FunctionId fn,
                                 sim::RejectCause cause, bool at_submit) {
  ++rejected_total_;
  bus().Publish(sim::RequestRejected{rid, fn, cause, at_submit, sim_.Now()});
  FFS_LOG_DEBUG("platform") << name() << " reject request " << rid.value
                            << " fn " << fn.value << " ("
                            << sim::Name(cause) << ")";
  meta_.erase(rid);
}

sim::PlanAbortCause PlatformCore::ValidatePlan(const PlacementPlan& plan) {
  // Walk the actions in order, simulating slice availability: an eviction
  // frees its victim's slices for later spawns, a spawn claims its stage
  // slices against later actions. The first impossibility aborts the plan.
  std::set<std::int32_t> freed;  // released by an earlier EvictAction
  std::set<std::int32_t> taken;  // claimed by an earlier SpawnAction
  for (const PlacementAction& action : plan.actions) {
    if (const auto* spawn = std::get_if<SpawnAction>(&action)) {
      for (const core::StageBinding& s : spawn->pipeline.stages) {
        const SliceId sid = s.slice;
        if (!sid.valid() ||
            static_cast<std::size_t>(sid.value) >= cluster_.num_slices() ||
            cluster_.IsDead(sid)) {
          return sim::PlanAbortCause::kSliceRetired;
        }
        if (taken.count(sid.value) != 0) {
          return sim::PlanAbortCause::kSliceConflict;
        }
        const gpu::MigSlice& live = cluster_.slice(sid);
        if (live.failed) return sim::PlanAbortCause::kSliceFailed;
        if (!live.free() && freed.count(sid.value) == 0) {
          return sim::PlanAbortCause::kSliceConflict;
        }
        taken.insert(sid.value);
      }
    } else if (const auto* evict = std::get_if<EvictAction>(&action)) {
      Instance* victim = FindInstance(evict->victim);
      if (victim == nullptr) return sim::PlanAbortCause::kVictimGone;
      if (!victim->Idle()) return sim::PlanAbortCause::kVictimBusy;
      for (const core::StageBinding& s : victim->plan().stages) {
        freed.insert(s.slice.value);
      }
    } else if (const auto* drain = std::get_if<DrainAction>(&action)) {
      if (FindInstance(drain->victim) == nullptr) {
        return sim::PlanAbortCause::kVictimGone;
      }
    } else {
      const auto& rp = std::get<RepartitionAction>(action);
      for (const gpu::MigSlice& s : cluster_.gpu(rp.gpu).slices()) {
        if ((!s.free() && freed.count(s.id.value) == 0) ||
            taken.count(s.id.value) != 0) {
          return sim::PlanAbortCause::kGpuNotIdle;
        }
      }
    }
  }
  return sim::PlanAbortCause::kNone;
}

CommitResult PlatformCore::Commit(const PlacementPlan& plan) {
  CommitResult result;
  const SimTime now = sim_.Now();
  result.cause = ValidatePlan(plan);
  if (!result.ok()) {
    FFS_LOG_DEBUG("platform")
        << name() << " plan aborted (" << sim::Name(result.cause) << ", "
        << plan.NumActions() << " action(s))";
    bus().Publish(sim::PlacementAborted{result.cause, plan.NumActions(), now});
    return result;
  }
  for (const PlacementAction& action : plan.actions) {
    if (const auto* spawn = std::get_if<SpawnAction>(&action)) {
      result.spawned.push_back(LaunchInstance(function(spawn->fn),
                                              spawn->pipeline, spawn->warm,
                                              spawn->extra_load_delay));
    } else if (const auto* evict = std::get_if<EvictAction>(&action)) {
      RetireInstance(FindInstance(evict->victim));
    } else if (const auto* drain = std::get_if<DrainAction>(&action)) {
      DrainOrRetire(FindInstance(drain->victim));
    } else {
      const auto& rp = std::get<RepartitionAction>(action);
      result.fresh_slices = cluster_.RepartitionGpu(rp.gpu, rp.target);
      // PartitionReconfigured first: per-slice observers re-sync their id
      // space on it before the sentinel SliceBound announcements arrive.
      bus().Publish(sim::PartitionReconfigured{rp.gpu, now,
                                               rp.target.ToString(),
                                               rp.blackout});
      if (rp.sentinel.valid()) {
        for (SliceId sid : result.fresh_slices) {
          cluster_.Bind(sid, rp.sentinel);
          bus().Publish(sim::SliceBound{sid, rp.sentinel, now});
        }
      }
    }
  }
  bus().Publish(
      sim::PlacementCommitted{plan.NumActions(), plan.NumSpawns(), now});
  return result;
}

void PlatformCore::FinishRepartition(const std::vector<SliceId>& fresh,
                                     InstanceId sentinel) {
  const SimTime now = sim_.Now();
  for (SliceId sid : fresh) {
    if (cluster_.IsDead(sid)) continue;  // re-repartitioned meanwhile
    cluster_.Release(sid, sentinel);
    bus().Publish(sim::SliceReleased{sid, sentinel, now});
  }
}

Instance* PlatformCore::LaunchInstance(const FunctionSpec& fn,
                                       core::PipelinePlan plan, bool warm,
                                       SimDuration extra_load_delay) {
  const InstanceId iid(next_instance_id_++);
  const SimTime now = sim_.Now();

  // Stages load in parallel (one process per slice); the instance is ready
  // when the largest stage finishes loading.
  Bytes max_stage_weights = 0;
  for (const core::StageBinding& s : plan.stages) {
    max_stage_weights = std::max(max_stage_weights, s.plan.weights);
  }
  SimDuration weight_load = warm ? config_.load.WarmLoad(max_stage_weights)
                                 : config_.load.ColdLoad(max_stage_weights);
  if (!pending_slow_factors_.empty()) {
    // An armed slow-start straggler hits the next launch.
    const double factor = pending_slow_factors_.front();
    pending_slow_factors_.pop_front();
    weight_load = static_cast<SimDuration>(
        std::llround(factor * static_cast<double>(weight_load)));
  }
  const SimDuration load = extra_load_delay + weight_load;

  for (const core::StageBinding& s : plan.stages) {
    cluster_.Bind(s.slice, iid);
    bus().Publish(sim::SliceBound{s.slice, iid, now});
  }

  auto inst = std::make_unique<Instance>(
      iid, fn.id, fn.dag, std::move(plan), sim_,
      [this](RequestId rid) { HandleCompletion(rid); });
  Instance* raw = inst.get();
  instances_.push_back(std::move(inst));
  by_function_[fn.id].push_back(raw);
  raw->SetBatching(config_.max_batch, config_.batch_marginal_cost);
  raw->SetStageOrder(pending_q_->stage_order());
  raw->Launch(load);
  if (!warm && pending_cold_failures_ > 0 && load > 0) {
    // An armed cold-start failure dooms this launch: the instance crashes
    // the moment its load completes (the load time is wasted).
    --pending_cold_failures_;
    sim_.At(now + load, [this, iid] {
      if (Instance* doomed = FindInstance(iid)) {
        FailInstance(doomed, sim::FaultKind::kColdStartFailure);
      }
    });
  }
  FFS_LOG_DEBUG("platform") << name() << " launch " << raw->Describe()
                            << (warm ? " (warm " : " (cold ")
                            << ToMillis(load) << "ms load)";
  return raw;
}

void PlatformCore::RetireInstance(Instance* inst) {
  FFS_CHECK(inst->state() != InstanceState::kRetired);
  FFS_CHECK_MSG(inst->Idle(), "retiring a busy instance");
  const SimTime now = sim_.Now();
  for (const core::StageBinding& s : inst->plan().stages) {
    cluster_.Release(s.slice, inst->id());
    bus().Publish(sim::SliceReleased{s.slice, inst->id(), now});
  }
  inst->MarkRetired();
  TouchWarm(inst->function());
  FFS_LOG_DEBUG("platform") << name() << " retire " << inst->Describe();
}

bool PlatformCore::DrainOrRetire(Instance* inst) {
  if (inst->Idle()) {
    RetireInstance(inst);
    return true;
  }
  inst->BeginDrain();
  return false;
}

bool PlatformCore::IsWarm(FunctionId fn) const {
  auto it = warm_.find(fn);
  return it != warm_.end() && it->second.warm &&
         it->second.expires > sim_.Now();
}

SimDuration PlatformCore::LoadTime(FunctionId fn, Bytes weights) const {
  return IsWarm(fn) ? config_.load.WarmLoad(weights)
                    : config_.load.ColdLoad(weights);
}

void PlatformCore::TouchWarm(FunctionId fn) {
  WarmState& w = warm_[fn];
  w.warm = true;
  w.expires = sim_.Now() + config_.warm_timeout;
}

double PlatformCore::ArrivalRate(FunctionId fn) const {
  auto it = arrivals_.find(fn);
  return it == arrivals_.end() ? 0.0 : it->second.rate;
}

double PlatformCore::TickUtilization(Instance* inst) {
  const SimTime now = sim_.Now();
  const SimDuration total = inst->ActiveTotal(now);
  SimDuration& prev = last_active_snapshot_[inst->id()];
  const SimDuration window = now - last_tick_;
  const SimDuration delta = total - prev;
  prev = total;
  if (window <= 0) return 0.0;
  return std::clamp(static_cast<double>(delta) / static_cast<double>(window),
                    0.0, 1.0);
}

double PlatformCore::UtilizationOf(const Instance* inst) const {
  auto it = util_ewma_.find(inst->id());
  return it == util_ewma_.end() ? 0.0 : it->second;
}

void PlatformCore::MakePending(RequestId rid, FunctionId fn) {
  pending_q_->Enqueue(MakeQueueItem(rid, fn));
  PublishPendingDepth();
}

void PlatformCore::DispatchPending() {
  // Requests are offered in discipline order (the default FifoQueue:
  // ascending adjusted deadline); the ones that still cannot be placed
  // stay pending. The admission controller re-judges each request first —
  // work that can no longer meet its deadline is shed instead of routed.
  pending_q_->Drain([this](const qos::QueueItem& item) {
    const sim::RejectCause shed =
        admission_->ReviewAtDispatch(item, sim_.Now());
    if (shed != sim::RejectCause::kNone) {
      RejectRequest(item.rid, item.fn, shed, /*at_submit=*/false);
      return qos::DrainVerdict::kDrop;
    }
    return routing_->Route(*this, item.rid, item.fn)
               ? qos::DrainVerdict::kDispatch
               : qos::DrainVerdict::kKeep;
  });
  PublishPendingDepth();
}

void PlatformCore::HandleCompletion(RequestId rid) {
  auto it = meta_.find(rid);
  FFS_CHECK_MSG(it != meta_.end(), "completion for unknown request");
  const FunctionId fn = it->second.fn;
  bus().Publish(sim::RequestCompleted{rid, fn, sim_.Now()});
  meta_.erase(it);
  scaling_->OnCompleted(*this, rid, fn);
  DispatchPending();
}

Instance* PlatformCore::FindInstance(InstanceId iid) {
  if (!iid.valid()) return nullptr;
  const auto idx = static_cast<std::size_t>(iid.value);
  // Sentinel occupants (e.g. repartition blackout markers) fall outside the
  // dense id range and resolve to null.
  if (idx >= instances_.size()) return nullptr;
  Instance* inst = instances_[idx].get();
  FFS_CHECK(inst->id() == iid);
  if (inst->state() == InstanceState::kRetired ||
      inst->state() == InstanceState::kFailed) {
    return nullptr;
  }
  return inst;
}

void PlatformCore::FailInstance(Instance* inst, sim::FaultKind cause,
                                SliceId failed_slice, SimDuration repair) {
  if (inst->state() == InstanceState::kRetired ||
      inst->state() == InstanceState::kFailed) {
    return;
  }
  const SimTime now = sim_.Now();
  const FunctionSpec& spec = function(inst->function());
  // Copy the plan before the crash: respawn rebinds the same stage shapes.
  const core::PipelinePlan plan = inst->plan();
  const std::vector<Instance::FailedWork> victims = inst->Fail();
  bus().Publish(sim::InstanceFailed{inst->id(), inst->function(), cause, now});
  FFS_LOG_DEBUG("platform") << name() << " fail " << inst->Describe()
                            << " cause " << sim::Name(cause) << " ("
                            << victims.size() << " victim(s))";
  for (const core::StageBinding& s : plan.stages) {
    cluster_.Release(s.slice, inst->id());
    bus().Publish(sim::SliceReleased{s.slice, inst->id(), now});
  }
  // No TouchWarm: a crash says nothing about the CPU-resident weight copy,
  // and the retire path's refresh would make fault runs look warmer.
  if (failed_slice.valid()) FailSlice(failed_slice, repair);
  if (config_.respawn_on_failure &&
      cause != sim::FaultKind::kColdStartFailure) {
    TryRespawn(spec, plan);
  }
  for (const Instance::FailedWork& w : victims) {
    HandleFailedRequest(w.rid, w.stage, plan.num_stages());
  }
  DispatchPending();
}

void PlatformCore::FailSlice(SliceId sid, SimDuration repair) {
  cluster_.MarkFailed(sid);
  const SimTime now = sim_.Now();
  bus().Publish(sim::SliceFailed{sid, now, repair});
  sim_.After(std::max<SimDuration>(repair, Millis(1)), [this, sid] {
    if (cluster_.IsDead(sid)) return;  // repartitioned away meanwhile
    cluster_.Repair(sid);
    bus().Publish(sim::SliceRepaired{sid, sim_.Now()});
    DispatchPending();
  });
}

void PlatformCore::HandleFailedRequest(RequestId rid, int stage,
                                       int num_stages) {
  auto it = meta_.find(rid);
  if (it == meta_.end()) return;
  ReqMeta& m = it->second;
  const FunctionId fn = m.fn;
  if (m.timed_out) {
    // Already past its enforcement timeout; a retry could never be goodput.
    bus().Publish(sim::RequestAbandoned{rid, fn, m.attempts, sim_.Now()});
    meta_.erase(it);
    return;
  }
  m.attempts += 1;
  const RetryPolicy::Decision d = retry_->OnFailure(*this, rid, fn,
                                                    m.attempts);
  if (!d.retry) {
    bus().Publish(sim::RequestAbandoned{rid, fn, m.attempts, sim_.Now()});
    meta_.erase(it);
    return;
  }
  sim_.After(std::max<SimDuration>(d.backoff, 0),
             [this, rid, fn, stage, num_stages] {
               Resubmit(rid, fn, stage, num_stages);
             });
}

void PlatformCore::Resubmit(RequestId rid, FunctionId fn, int stage,
                            int num_stages) {
  auto it = meta_.find(rid);
  if (it == meta_.end()) return;  // expired during the backoff
  const SimTime now = sim_.Now();
  bool resumed = false;
  if (stage > 0) {
    // The request already completed stages [0, stage); a surviving instance
    // with the same pipeline shape can pick it up at the failed stage
    // instead of replaying the finished work.
    for (Instance* inst : InstancesOf(fn)) {
      if (!inst->CanAdmit()) continue;
      if (inst->plan().num_stages() != num_stages) continue;
      inst->EnqueueAt(static_cast<std::size_t>(stage), rid,
                      it->second.jitter, it->second.deadline);
      resumed = true;
      break;
    }
  }
  bus().Publish(sim::RequestRetried{rid, fn, it->second.attempts, resumed,
                                    now});
  if (resumed) return;
  if (!routing_->Route(*this, rid, fn)) MakePending(rid, fn);
}

void PlatformCore::TryRespawn(const FunctionSpec& spec,
                              const core::PipelinePlan& old) {
  const std::vector<SliceId> free = cluster_.FreeSlicesOnNode(old.node);
  std::vector<bool> taken(free.size(), false);
  core::PipelinePlan plan;
  plan.node = old.node;
  for (const core::StageBinding& s : old.stages) {
    bool bound = false;
    for (std::size_t i = 0; i < free.size(); ++i) {
      if (taken[i]) continue;
      if (cluster_.slice(free[i]).profile() != s.profile) continue;
      taken[i] = true;
      core::StageBinding nb = s;
      nb.slice = free[i];
      plan.stages.push_back(nb);
      bound = true;
      break;
    }
    if (!bound) return;  // node lacks a same-profile slice; policies rebuild
  }
  Commit(SpawnPlan(spec.id, std::move(plan), IsWarm(spec.id)));
}

void PlatformCore::ExpireRequest(RequestId rid) {
  auto it = meta_.find(rid);
  if (it == meta_.end()) return;  // completed or abandoned in time
  const FunctionId fn = it->second.fn;
  const SimTime now = sim_.Now();
  // Still in the pending set: cancel outright.
  if (pending_q_->Remove(rid)) {
    bus().Publish(sim::RequestTimedOut{rid, fn, false, now});
    meta_.erase(it);
    PublishPendingDepth();
    return;
  }
  // Queued on an instance but not yet executing: abort it there.
  for (Instance* inst : InstancesOf(fn)) {
    if (inst->Abort(rid)) {
      bus().Publish(sim::RequestTimedOut{rid, fn, false, now});
      meta_.erase(it);
      DispatchPending();
      return;
    }
  }
  // Mid-execution (or mid-transfer / mid-retry-backoff): the work finishes
  // but no longer counts as goodput.
  it->second.timed_out = true;
  bus().Publish(sim::RequestTimedOut{rid, fn, true, now});
}

RetryPolicy::Decision BoundedRetryPolicy::OnFailure(PlatformCore& core,
                                                    RequestId rid,
                                                    FunctionId fn,
                                                    int attempt) {
  (void)core;
  (void)rid;
  (void)fn;
  if (attempt > max_retries_) return Decision{};
  const double scale = std::pow(multiplier_, attempt - 1);
  return Decision{true, static_cast<SimDuration>(std::llround(
                            scale * static_cast<double>(base_backoff_)))};
}

void FixedIdleKeepAlive::Tick(PlatformCore& core) {
  const SimDuration keepalive = core.config().exclusive_keepalive;
  const SimTime now = core.simulator().Now();
  for (Instance* inst : core.AllInstances()) {
    if (inst->state() != InstanceState::kReady) continue;
    if (!inst->Idle()) continue;
    if (now - inst->last_used() >= keepalive) core.RetireInstance(inst);
  }
}

}  // namespace fluidfaas::platform
