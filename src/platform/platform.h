// PlatformCore: the mechanism layer of the serverless platform.
//
// The core owns everything schedulers share — function registry, request
// intake, instance lifecycle (slice binding through the Cluster so strong
// isolation is enforced), warm-weights tracking, the pending set (ordered
// by the pluggable qos::QueueDiscipline, gated by the installed
// qos::AdmissionController), and per-function arrival / per-instance
// utilization statistics —
// and publishes every observable state change on the simulator's EventBus
// (sim/events.h). It makes no scheduling decisions itself.
//
// All policy lives in the PolicyBundle (platform/policy.h) installed at
// construction: RoutingPolicy decides where requests go, ScalingPolicy
// runs the periodic scan and the Fig. 8 state transitions, KeepAlivePolicy
// decides instance lifetime after idling. Schedulers are composed, not
// subclassed; see platform/registry.h for how named bundles are resolved.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gpu/cluster.h"
#include "platform/config.h"
#include "platform/function.h"
#include "platform/instance.h"
#include "platform/placement.h"
#include "platform/policy.h"
#include "qos/admission.h"
#include "qos/queue_discipline.h"
#include "sim/events.h"
#include "sim/simulator.h"

namespace fluidfaas::platform {

class PlatformCore {
 public:
  PlatformCore(sim::Simulator& sim, gpu::Cluster& cluster,
               std::vector<FunctionSpec> functions, PlatformConfig config,
               PolicyBundle bundle);
  virtual ~PlatformCore();

  PlatformCore(const PlatformCore&) = delete;
  PlatformCore& operator=(const PlatformCore&) = delete;

  /// The installed bundle's scheduler name.
  const std::string& name() const { return name_; }

  /// Start the autoscale loop. Call once before the first Submit.
  void Start();

  /// Stop periodic work (lets the event queue drain at the end of a run).
  void Stop();

  /// Invoke function `fn` now. Returns the request id.
  RequestId Submit(FunctionId fn);

  const FunctionSpec& function(FunctionId fn) const;
  const std::vector<FunctionSpec>& functions() const { return functions_; }

  sim::Simulator& simulator() const { return sim_; }
  sim::EventBus& bus() const { return sim_.bus(); }
  gpu::Cluster& cluster() const { return cluster_; }
  const PlatformConfig& config() const { return config_; }

  /// Scheduler-specific counters from the bundle (all-zero when the bundle
  /// exposes none).
  SchedulerCounters scheduler_counters() const;

  /// Live (non-retired) instances of a function.
  std::vector<Instance*> InstancesOf(FunctionId fn) const;

  /// Every live (non-retired) instance, in creation order.
  std::vector<Instance*> AllInstances() const;

  /// Number of requests neither completed nor admitted to an instance.
  std::size_t PendingCount() const;

  /// Pending requests of one function — the per-function backpressure
  /// signal (scaling policies can weigh it against deployed capacity).
  std::size_t PendingCountOf(FunctionId fn) const;

  /// Aggregate backpressure: pending depth plus the running count of
  /// admission rejections. A scaling policy seeing `shedding` true knows
  /// the intake is already refusing work and capacity, not patience, is
  /// what is missing.
  struct Backpressure {
    std::size_t pending = 0;
    std::size_t rejected = 0;
    bool shedding = false;
  };
  Backpressure CurrentBackpressure() const;

  /// The installed queue discipline (never null after construction).
  const qos::QueueDiscipline& queue() const { return *pending_q_; }

  // -- mechanism operations, called by policies -----------------------------

  /// Validate `plan` against live cluster/instance state and apply it
  /// atomically (DESIGN.md §8). Slices are only ever bound here: every
  /// scheduler's placement decision — single spawn, evict-then-spawn,
  /// spawn-then-drain migration, multi-spawn scale-up, repartition — goes
  /// through one Commit. On any conflict the whole plan aborts with a typed
  /// cause and no state changes; publishes sim::PlacementCommitted /
  /// sim::PlacementAborted either way.
  CommitResult Commit(const PlacementPlan& plan);

  /// Release the sentinel bindings a RepartitionAction placed on `fresh`
  /// (the reconfiguration blackout is over). Ids already retired by a later
  /// repartition are skipped.
  void FinishRepartition(const std::vector<SliceId>& fresh,
                         InstanceId sentinel);

  /// Release slices and retire. The instance must be idle.
  void RetireInstance(Instance* inst);

  /// Drain, or retire immediately when idle. Returns true if retired now.
  bool DrainOrRetire(Instance* inst);

  /// True if the function's weights are warm in CPU memory.
  bool IsWarm(FunctionId fn) const;
  /// Load duration for `weights` bytes of fn, by its warm/cold status.
  SimDuration LoadTime(FunctionId fn, Bytes weights) const;
  /// Note that fn's weights are now in CPU memory (refreshes the 10-minute
  /// warm window).
  void TouchWarm(FunctionId fn);

  /// Recent arrival rate of fn (requests/s, EWMA over autoscale ticks).
  double ArrivalRate(FunctionId fn) const;

  /// Utilization of an instance since the previous tick (compute-busy
  /// fraction of the tick).
  double TickUtilization(Instance* inst);

  /// Smoothed utilization over roughly util_window: an EWMA of tick
  /// utilizations, refreshed for every live instance at the start of each
  /// autoscale tick. The hotness signal behind the Fig. 8 transitions —
  /// a single sparse request does not flip an instance exclusive-hot.
  double UtilizationOf(const Instance* inst) const;

  /// Add to the pending set. The installed queue discipline orders it; the
  /// default FifoQueue uses the §5.3 adjusted deadline
  /// (deadline − estimated execution − load), exactly the legacy order.
  void MakePending(RequestId rid, FunctionId fn);

  /// Re-offer pending requests in discipline order (admission may shed
  /// deadline-infeasible ones first). Called on completions and each tick;
  /// policies that free capacity out of band (e.g. after a repartition
  /// blackout) call it directly.
  void DispatchPending();

  /// Jitter factor assigned to an outstanding request at Submit().
  double JitterOf(RequestId rid) const;

  /// SLO deadline of an outstanding request.
  SimTime DeadlineOf(RequestId rid) const;

  // -- failure recovery ------------------------------------------------------
  //
  // The core subscribes to the sim::FaultInjector's command events
  // (InstanceCrashRequested, SliceFailureRequested, ColdStartFailureArmed,
  // SlowStartArmed) at construction; with no injector running the
  // subscriptions are inert and the fault path costs nothing.

  /// Crash an instance: harvest its in-flight work, release its slices,
  /// optionally fail `failed_slice` for `repair` of simulated time, respawn
  /// a replacement on the same node when configured, then run each victim
  /// request through the RetryPolicy.
  void FailInstance(Instance* inst, sim::FaultKind cause,
                    SliceId failed_slice = SliceId(), SimDuration repair = 0);

 protected:
  std::vector<FunctionSpec> functions_;

 private:
  struct ReqMeta {
    FunctionId fn;
    SimTime deadline = 0;
    double jitter = 1.0;
    int attempts = 0;     // instance failures survived so far
    bool timed_out = false;  // enforcement timeout fired mid-execution
  };

  void HandleCompletion(RequestId rid);

  /// Commit-internal: bind the plan's slices, create the instance, and
  /// start loading. `warm` selects the warm- vs cold-load path for the
  /// weight bytes; `extra_load_delay` serializes in front of the load
  /// (e.g. the D2H checkpoint of an instance just evicted from the target
  /// slice). Only Commit() and the crash-respawn path may call this —
  /// keeping every Bind inside the transaction boundary.
  Instance* LaunchInstance(const FunctionSpec& fn, core::PipelinePlan plan,
                           bool warm, SimDuration extra_load_delay = 0);

  /// Validation half of Commit: first cause that would make `plan`
  /// inapplicable against live state, or kNone.
  sim::PlanAbortCause ValidatePlan(const PlacementPlan& plan);

  /// Per-request service-time jitter factor.
  double SampleJitter();

  /// Assemble the discipline's view of a request: absolute deadline, the
  /// §5.3 adjusted-deadline priority, and the execution + load estimate
  /// the adjustment subtracted (fair queueing's virtual-time cost).
  qos::QueueItem MakeQueueItem(RequestId rid, FunctionId fn) const;

  /// Publish sim::PendingDepthChanged when the pending depth moved since
  /// the last publication.
  void PublishPendingDepth();

  /// Reject `rid` with a typed cause: publish sim::RequestRejected and
  /// forget the request (terminal — it will never complete).
  void RejectRequest(RequestId rid, FunctionId fn, sim::RejectCause cause,
                     bool at_submit);

  /// Instance by id, or null for retired/failed/sentinel ids.
  Instance* FindInstance(InstanceId iid);

  /// Run one crash victim through the retry policy.
  void HandleFailedRequest(RequestId rid, int stage, int num_stages);

  /// Re-admit a retried request after its backoff. `stage` > 0 resumes a
  /// pipeline at the failed stage when a same-shape instance can admit it.
  void Resubmit(RequestId rid, FunctionId fn, int stage, int num_stages);

  /// Best-effort replacement after a crash: same node, same stage profiles.
  void TryRespawn(const FunctionSpec& spec, const core::PipelinePlan& old);

  /// Mark `sid` failed now and schedule its repair.
  void FailSlice(SliceId sid, SimDuration repair);

  /// Enforcement-timeout expiry for `rid` (armed at Submit when
  /// config.request_timeout_scale > 0).
  void ExpireRequest(RequestId rid);

  sim::Simulator& sim_;
  gpu::Cluster& cluster_;
  PlatformConfig config_;
  Rng rng_;

  std::string name_;
  std::unique_ptr<RoutingPolicy> routing_;
  std::unique_ptr<ScalingPolicy> scaling_;
  std::unique_ptr<KeepAlivePolicy> keepalive_;
  std::unique_ptr<RetryPolicy> retry_;
  std::function<SchedulerCounters()> counters_;
  std::unique_ptr<qos::QueueDiscipline> pending_q_;
  std::unique_ptr<qos::AdmissionController> admission_;

  // Fault-command subscriptions (auto-unsubscribed at destruction).
  std::vector<sim::EventBus::Subscription> fault_subs_;
  int pending_cold_failures_ = 0;          // armed cold-start failures
  std::deque<double> pending_slow_factors_;  // armed slow-start multipliers

  std::unique_ptr<sim::PeriodicTask> autoscale_;

  // All instances ever created (stable storage; retired ones stay to keep
  // in-flight callbacks safe).
  std::vector<std::unique_ptr<Instance>> instances_;
  std::unordered_map<FunctionId, std::vector<Instance*>> by_function_;

  struct WarmState {
    bool warm = false;
    SimTime expires = 0;
  };
  std::unordered_map<FunctionId, WarmState> warm_;

  struct ArrivalStats {
    double rate = 0.0;  // EWMA requests/s
    int count_this_tick = 0;
  };
  std::unordered_map<FunctionId, ArrivalStats> arrivals_;

  std::unordered_map<InstanceId, SimDuration> last_active_snapshot_;
  std::unordered_map<InstanceId, double> util_ewma_;
  SimTime last_tick_ = 0;

  // Last published pending depth (dedup for PendingDepthChanged).
  std::size_t last_depth_published_ = 0;
  // Running admission-rejection count (backpressure signal).
  std::size_t rejected_total_ = 0;

  // Outstanding (submitted, not yet completed) requests.
  std::unordered_map<RequestId, ReqMeta> meta_;

  std::int64_t next_request_id_ = 0;
  std::int32_t next_instance_id_ = 0;
};

}  // namespace fluidfaas::platform
