// Serverless platform base: the shared machinery of FluidFaaS and the two
// baselines — function registry, request intake, instance lifecycle
// (slice binding through the Cluster so strong isolation is enforced),
// warm-weights tracking, and the periodic autoscale scan.
//
// Subclasses implement Route() (where a new request goes) and
// AutoscaleTick() (scaling and state transitions); everything else —
// launching instances from a PipelinePlan, retiring them, load-cost
// selection (cold vs warm), per-function arrival statistics — lives here.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "gpu/cluster.h"
#include "metrics/recorder.h"
#include "platform/config.h"
#include "platform/function.h"
#include "platform/instance.h"
#include "sim/simulator.h"

namespace fluidfaas::platform {

class Platform {
 public:
  Platform(sim::Simulator& sim, gpu::Cluster& cluster,
           metrics::Recorder& recorder, std::vector<FunctionSpec> functions,
           PlatformConfig config);
  virtual ~Platform();

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  virtual std::string name() const = 0;

  /// Start the autoscale loop. Call once before the first Submit.
  void Start();

  /// Stop periodic work (lets the event queue drain at the end of a run).
  void Stop();

  /// Invoke function `fn` now. Returns the request id.
  RequestId Submit(FunctionId fn);

  const FunctionSpec& function(FunctionId fn) const;
  const std::vector<FunctionSpec>& functions() const { return functions_; }

  sim::Simulator& simulator() const { return sim_; }
  gpu::Cluster& cluster() const { return cluster_; }
  metrics::Recorder& recorder() const { return recorder_; }
  const PlatformConfig& config() const { return config_; }

  /// Live (non-retired) instances of a function.
  std::vector<Instance*> InstancesOf(FunctionId fn) const;

  /// Number of requests neither completed nor admitted to an instance.
  std::size_t PendingCount() const;

 protected:
  /// Route a newly arrived (or re-dispatched) request; return true when it
  /// was admitted to an instance, false to leave it pending.
  virtual bool Route(RequestId rid, FunctionId fn) = 0;

  virtual void AutoscaleTick() = 0;

  /// Called after a request completes, before pending re-dispatch; lets
  /// subclasses update bookkeeping.
  virtual void OnCompleted(RequestId rid, FunctionId fn) { (void)rid; (void)fn; }

  // -- shared helpers -------------------------------------------------------

  /// Bind the plan's slices, create the instance, and start loading.
  /// `warm` selects the warm- vs cold-load path for the weight bytes;
  /// `extra_load_delay` serializes in front of the load (e.g. the D2H
  /// checkpoint of an instance just evicted from the target slice).
  Instance* LaunchInstance(const FunctionSpec& fn, core::PipelinePlan plan,
                           bool warm, SimDuration extra_load_delay = 0);

  /// Release slices and retire. The instance must be idle.
  void RetireInstance(Instance* inst);

  /// Drain, or retire immediately when idle. Returns true if retired now.
  bool DrainOrRetire(Instance* inst);

  /// True if the function's weights are warm in CPU memory.
  bool IsWarm(FunctionId fn) const;
  /// Load duration for `weights` bytes of fn, by its warm/cold status.
  SimDuration LoadTime(FunctionId fn, Bytes weights) const;
  /// Note that fn's weights are now in CPU memory (refreshes the 10-minute
  /// warm window).
  void TouchWarm(FunctionId fn);

  /// Recent arrival rate of fn (requests/s, EWMA over autoscale ticks).
  double ArrivalRate(FunctionId fn) const;

  /// Utilization of an instance since the previous tick (compute-busy
  /// fraction of the tick).
  double TickUtilization(Instance* inst);

  /// Smoothed utilization over roughly util_window: an EWMA of tick
  /// utilizations, refreshed for every live instance at the start of each
  /// autoscale tick. The hotness signal behind the Fig. 8 transitions —
  /// a single sparse request does not flip an instance exclusive-hot.
  double UtilizationOf(const Instance* inst) const;

  /// Add to the pending set ordered by adjusted deadline
  /// (deadline − estimated execution − load), per §5.3's request routing.
  void MakePending(RequestId rid, FunctionId fn);

  /// Re-dispatch pending requests in priority order. Called on completions
  /// and each tick.
  void DispatchPending();

  /// Per-request service-time jitter factor.
  double SampleJitter();

  /// Jitter factor assigned to an outstanding request at Submit().
  double JitterOf(RequestId rid) const;

  /// Retire instances that have been idle past the exclusive keep-alive
  /// (baseline policy; FluidFaaS overrides state transitions instead).
  void ExpireIdleInstances(SimDuration keepalive);

  std::vector<FunctionSpec> functions_;

 private:
  void HandleCompletion(RequestId rid);

  sim::Simulator& sim_;
  gpu::Cluster& cluster_;
  metrics::Recorder& recorder_;
  PlatformConfig config_;
  Rng rng_;

  std::unique_ptr<sim::PeriodicTask> autoscale_;

  // All instances ever created (stable storage; retired ones stay to keep
  // in-flight callbacks safe).
  std::vector<std::unique_ptr<Instance>> instances_;
  std::unordered_map<FunctionId, std::vector<Instance*>> by_function_;

  struct WarmState {
    bool warm = false;
    SimTime expires = 0;
  };
  std::unordered_map<FunctionId, WarmState> warm_;

  struct ArrivalStats {
    double rate = 0.0;  // EWMA requests/s
    int count_this_tick = 0;
  };
  std::unordered_map<FunctionId, ArrivalStats> arrivals_;

  std::unordered_map<InstanceId, SimDuration> last_active_snapshot_;
  std::unordered_map<InstanceId, double> util_ewma_;
  SimTime last_tick_ = 0;

  // Pending requests ordered by adjusted deadline.
  std::multimap<SimTime, std::pair<RequestId, FunctionId>> pending_;
  std::unordered_map<RequestId, double> jitter_of_;

  std::int32_t next_instance_id_ = 0;
};

}  // namespace fluidfaas::platform
