// The policy seam of the platform layer.
//
// PlatformCore (platform/platform.h) is pure mechanism: instances, slice
// binding, warm weights, the pending set, arrival/utilization statistics.
// Everything a scheduler *decides* is expressed through the three narrow
// interfaces below and packaged as a PolicyBundle:
//
//   RoutingPolicy   — where does a newly arrived (or re-dispatched) request
//                     go? Called from Submit() and DispatchPending().
//   ScalingPolicy   — the periodic scan: scale-up/down and the Fig. 8 state
//                     transitions. Called once per autoscale tick, plus a
//                     completion hook for per-request bookkeeping.
//   KeepAlivePolicy — instance lifetime after idling. Runs every tick
//                     directly after the ScalingPolicy.
//   RetryPolicy     — what happens to a request whose instance failed:
//                     retry (after a backoff) or abandon. Consulted by the
//                     core's failure-recovery path.
//
// Policies receive the core by reference on every call and must not assume
// exclusive ownership; a routing and a scaling policy of one scheduler
// typically share state via shared_ptr (see core::FfsState). Bundles are
// registered by name in platform/registry.h so the harness — and any
// out-of-tree experiment — resolves schedulers through one factory.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/types.h"
#include "qos/admission.h"

namespace fluidfaas::platform {

class PlatformCore;

/// Scheduler-specific event counts surfaced uniformly through
/// PlatformCore::scheduler_counters(); a bundle fills only the fields its
/// policies maintain.
struct SchedulerCounters {
  std::size_t evictions = 0;
  std::size_t promotions = 0;
  std::size_t demotions = 0;
  std::size_t migrations = 0;
  std::size_t pipelines_launched = 0;
  std::size_t reconfigurations = 0;
  SimDuration reconfiguration_blackout = 0;
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Called once when the bundle is installed on a core, before any traffic.
  virtual void Attach(PlatformCore& core) { (void)core; }

  /// Route a request; return true when it was admitted to an instance,
  /// false to leave it pending (the core re-offers pending requests on
  /// every completion and tick).
  virtual bool Route(PlatformCore& core, RequestId rid, FunctionId fn) = 0;
};

class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;

  virtual void Attach(PlatformCore& core) { (void)core; }

  /// The periodic scan: runs every autoscale_period after the core has
  /// refreshed arrival-rate and utilization EWMAs.
  virtual void Tick(PlatformCore& core) = 0;

  /// Called after a request completes, before pending re-dispatch.
  virtual void OnCompleted(PlatformCore& core, RequestId rid, FunctionId fn) {
    (void)core;
    (void)rid;
    (void)fn;
  }
};

class KeepAlivePolicy {
 public:
  virtual ~KeepAlivePolicy() = default;

  virtual void Attach(PlatformCore& core) { (void)core; }

  /// Runs every autoscale tick, directly after ScalingPolicy::Tick.
  virtual void Tick(PlatformCore& core) { (void)core; }
};

/// Keeps everything: instance lifetime is entirely the scaling policy's
/// business (FluidFaaS manages it via the Fig. 8 transitions).
class NullKeepAlive final : public KeepAlivePolicy {};

class RetryPolicy {
 public:
  struct Decision {
    bool retry = false;
    SimDuration backoff = 0;  // resubmit delay when retry is true
  };

  virtual ~RetryPolicy() = default;

  /// A request's instance failed; `attempt` counts failures so far
  /// (1 on the first failure). Requests already past their enforcement
  /// timeout are abandoned before the policy is consulted.
  virtual Decision OnFailure(PlatformCore& core, RequestId rid, FunctionId fn,
                             int attempt) = 0;
};

/// Retry up to `max_retries` times with exponential backoff
/// (base × multiplier^(attempt−1)).
class BoundedRetryPolicy final : public RetryPolicy {
 public:
  BoundedRetryPolicy(int max_retries, SimDuration base_backoff,
                     double multiplier)
      : max_retries_(max_retries),
        base_backoff_(base_backoff),
        multiplier_(multiplier) {}

  Decision OnFailure(PlatformCore& core, RequestId rid, FunctionId fn,
                     int attempt) override;

 private:
  int max_retries_;
  SimDuration base_backoff_;
  double multiplier_;
};

/// Fail fast: every failed request is abandoned immediately.
class NoRetryPolicy final : public RetryPolicy {
 public:
  Decision OnFailure(PlatformCore&, RequestId, FunctionId, int) override {
    return Decision{};
  }
};

/// The exclusive-baseline policy: retire any instance that has sat idle
/// for config().exclusive_keepalive (120 s default), scanning instances in
/// creation order.
class FixedIdleKeepAlive final : public KeepAlivePolicy {
 public:
  void Tick(PlatformCore& core) override;
};

/// A named scheduler: the policies plus optional introspection.
/// `keepalive` may be null (treated as NullKeepAlive); `retry` may be null
/// (the core installs a BoundedRetryPolicy from PlatformConfig::retry);
/// `counters` may be null (all-zero counters).
struct PolicyBundle {
  std::string name;
  std::unique_ptr<RoutingPolicy> routing;
  std::unique_ptr<ScalingPolicy> scaling;
  std::unique_ptr<KeepAlivePolicy> keepalive;
  std::unique_ptr<RetryPolicy> retry;
  std::function<SchedulerCounters()> counters;
  /// Optional QueuePolicy override. When null (every builtin scheduler) the
  /// core builds the pair qos::MakeQueuePolicy names from PlatformConfig::qos
  /// — i.e. what --queue / --admission selected.
  std::function<qos::QueuePolicy(const qos::QosConfig&)> queue;
};

}  // namespace fluidfaas::platform
