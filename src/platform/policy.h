// The policy seam of the platform layer.
//
// PlatformCore (platform/platform.h) is pure mechanism: instances, slice
// binding, warm weights, the pending set, arrival/utilization statistics.
// Everything a scheduler *decides* is expressed through the three narrow
// interfaces below and packaged as a PolicyBundle:
//
//   RoutingPolicy   — where does a newly arrived (or re-dispatched) request
//                     go? Called from Submit() and DispatchPending().
//   ScalingPolicy   — the periodic scan: scale-up/down and the Fig. 8 state
//                     transitions. Called once per autoscale tick, plus a
//                     completion hook for per-request bookkeeping.
//   KeepAlivePolicy — instance lifetime after idling. Runs every tick
//                     directly after the ScalingPolicy.
//
// Policies receive the core by reference on every call and must not assume
// exclusive ownership; a routing and a scaling policy of one scheduler
// typically share state via shared_ptr (see core::FfsState). Bundles are
// registered by name in platform/registry.h so the harness — and any
// out-of-tree experiment — resolves schedulers through one factory.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/types.h"

namespace fluidfaas::platform {

class PlatformCore;

/// Scheduler-specific event counts surfaced uniformly through
/// PlatformCore::scheduler_counters(); a bundle fills only the fields its
/// policies maintain.
struct SchedulerCounters {
  std::size_t evictions = 0;
  std::size_t promotions = 0;
  std::size_t demotions = 0;
  std::size_t migrations = 0;
  std::size_t pipelines_launched = 0;
  std::size_t reconfigurations = 0;
  SimDuration reconfiguration_blackout = 0;
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Called once when the bundle is installed on a core, before any traffic.
  virtual void Attach(PlatformCore& core) { (void)core; }

  /// Route a request; return true when it was admitted to an instance,
  /// false to leave it pending (the core re-offers pending requests on
  /// every completion and tick).
  virtual bool Route(PlatformCore& core, RequestId rid, FunctionId fn) = 0;
};

class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;

  virtual void Attach(PlatformCore& core) { (void)core; }

  /// The periodic scan: runs every autoscale_period after the core has
  /// refreshed arrival-rate and utilization EWMAs.
  virtual void Tick(PlatformCore& core) = 0;

  /// Called after a request completes, before pending re-dispatch.
  virtual void OnCompleted(PlatformCore& core, RequestId rid, FunctionId fn) {
    (void)core;
    (void)rid;
    (void)fn;
  }
};

class KeepAlivePolicy {
 public:
  virtual ~KeepAlivePolicy() = default;

  virtual void Attach(PlatformCore& core) { (void)core; }

  /// Runs every autoscale tick, directly after ScalingPolicy::Tick.
  virtual void Tick(PlatformCore& core) { (void)core; }
};

/// Keeps everything: instance lifetime is entirely the scaling policy's
/// business (FluidFaaS manages it via the Fig. 8 transitions).
class NullKeepAlive final : public KeepAlivePolicy {};

/// The exclusive-baseline policy: retire any instance that has sat idle
/// for config().exclusive_keepalive (120 s default), scanning instances in
/// creation order.
class FixedIdleKeepAlive final : public KeepAlivePolicy {
 public:
  void Tick(PlatformCore& core) override;
};

/// A named scheduler: the three policies plus optional introspection.
/// `keepalive` may be null (treated as NullKeepAlive); `counters` may be
/// null (all-zero counters).
struct PolicyBundle {
  std::string name;
  std::unique_ptr<RoutingPolicy> routing;
  std::unique_ptr<ScalingPolicy> scaling;
  std::unique_ptr<KeepAlivePolicy> keepalive;
  std::function<SchedulerCounters()> counters;
};

}  // namespace fluidfaas::platform
