#include "platform/registry.h"

#include <map>
#include <utility>

#include "common/error.h"

namespace fluidfaas::platform {

namespace {

// std::map keeps RegisteredSchedulers() deterministic; function-local so
// registration from any static-init context is safe.
std::map<std::string, PolicyBundleFactory>& Factories() {
  static std::map<std::string, PolicyBundleFactory> factories;
  return factories;
}

}  // namespace

void RegisterScheduler(const std::string& name, PolicyBundleFactory factory) {
  FFS_CHECK_MSG(!name.empty(), "scheduler name must be non-empty");
  FFS_CHECK_MSG(factory != nullptr, "scheduler factory must be callable");
  Factories()[name] = std::move(factory);
}

bool HasScheduler(const std::string& name) {
  return Factories().count(name) > 0;
}

PolicyBundle MakeSchedulerBundle(const std::string& name) {
  auto it = Factories().find(name);
  if (it == Factories().end()) {
    throw FfsError("unknown scheduler: " + name);
  }
  PolicyBundle bundle = it->second();
  FFS_CHECK_MSG(bundle.routing != nullptr && bundle.scaling != nullptr,
                "scheduler '" + name +
                    "' produced a bundle without routing/scaling policies");
  if (bundle.name.empty()) bundle.name = name;
  return bundle;
}

std::vector<std::string> RegisteredSchedulers() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : Factories()) names.push_back(name);
  return names;
}

}  // namespace fluidfaas::platform
