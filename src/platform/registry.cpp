#include "platform/registry.h"

#include <map>
#include <mutex>
#include <utility>

#include "common/error.h"

namespace fluidfaas::platform {

namespace {

// std::map keeps RegisteredSchedulers() deterministic; function-local so
// registration from any static-init context is safe. Guarded by
// RegistryMutex(): parallel sweep workers resolve bundles concurrently
// while late registrations (tests, out-of-tree schedulers) may still
// mutate the map.
std::map<std::string, PolicyBundleFactory>& Factories() {
  static std::map<std::string, PolicyBundleFactory> factories;
  return factories;
}

std::mutex& RegistryMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void RegisterScheduler(const std::string& name, PolicyBundleFactory factory) {
  FFS_CHECK_MSG(!name.empty(), "scheduler name must be non-empty");
  FFS_CHECK_MSG(factory != nullptr, "scheduler factory must be callable");
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Factories()[name] = std::move(factory);
}

bool HasScheduler(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return Factories().count(name) > 0;
}

PolicyBundle MakeSchedulerBundle(const std::string& name) {
  // Copy the factory out under the lock, but build the bundle outside it:
  // factories can be arbitrarily expensive and must not serialize parallel
  // sweep workers (nor deadlock a factory that itself consults the
  // registry).
  PolicyBundleFactory factory;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto it = Factories().find(name);
    if (it != Factories().end()) factory = it->second;
  }
  if (factory == nullptr) {
    throw FfsError("unknown scheduler: " + name);
  }
  PolicyBundle bundle = factory();
  FFS_CHECK_MSG(bundle.routing != nullptr && bundle.scaling != nullptr,
                "scheduler '" + name +
                    "' produced a bundle without routing/scaling policies");
  if (bundle.name.empty()) bundle.name = name;
  return bundle;
}

std::vector<std::string> RegisteredSchedulers() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> names;
  for (const auto& [name, factory] : Factories()) names.push_back(name);
  return names;
}

}  // namespace fluidfaas::platform
