// Name → PolicyBundle factory for schedulers.
//
// Every scheduler variant — the FluidFaaS core, the baselines, and any
// out-of-tree experiment — registers a bundle factory here;
// harness::RunExperiment resolves SystemKind names through this registry,
// so adding a scheduler is registration plus ~100 lines of policy, not a
// new platform subclass.
//
// Registration is explicit (harness calls the builtin Register* functions
// once) rather than via static initializers, which static-library linking
// would silently drop.
//
// Thread-safety: all four functions are safe to call concurrently — the
// factory map is mutex-guarded so parallel sweep workers can resolve
// bundles while registrations land. Factories themselves run outside the
// lock and must be independently thread-safe (the builtin ones are pure).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "platform/policy.h"

namespace fluidfaas::platform {

using PolicyBundleFactory = std::function<PolicyBundle()>;

/// Register (or replace) the factory for `name`.
void RegisterScheduler(const std::string& name, PolicyBundleFactory factory);

bool HasScheduler(const std::string& name);

/// Build a fresh bundle; throws FfsError for unknown names.
PolicyBundle MakeSchedulerBundle(const std::string& name);

/// Registered names, sorted.
std::vector<std::string> RegisteredSchedulers();

}  // namespace fluidfaas::platform
