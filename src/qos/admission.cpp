#include "qos/admission.h"

#include <algorithm>

#include "common/error.h"

namespace fluidfaas::qos {

ShedAdmission::ShedAdmission(const QosConfig& config)
    : rate_rps_(config.rate_rps),
      burst_(std::max(config.burst, 1.0)),
      max_depth_(config.max_queue_depth),
      shed_infeasible_(config.shed_infeasible),
      tokens_(std::max(config.burst, 1.0)) {}

sim::RejectCause ShedAdmission::AdmitAtSubmit(const QueueItem& item,
                                              SimTime now,
                                              const QueueDiscipline& queue) {
  (void)item;
  if (max_depth_ > 0 && queue.size() >= max_depth_) {
    return sim::RejectCause::kQueueFull;
  }
  if (rate_rps_ > 0.0) {
    tokens_ = std::min(
        burst_, tokens_ + ToSeconds(now - last_refill_) * rate_rps_);
    last_refill_ = now;
    if (tokens_ < 1.0) return sim::RejectCause::kRateLimited;
    tokens_ -= 1.0;
  }
  return sim::RejectCause::kNone;
}

sim::RejectCause ShedAdmission::ReviewAtDispatch(const QueueItem& item,
                                                 SimTime now) {
  // Even dispatched this instant onto an idle instance the request costs
  // at least its service estimate; past this point it can only miss.
  if (shed_infeasible_ && now + item.service_estimate > item.deadline) {
    return sim::RejectCause::kDeadlineInfeasible;
  }
  return sim::RejectCause::kNone;
}

std::unique_ptr<AdmissionController> MakeAdmissionController(
    const QosConfig& config) {
  if (config.admission == "none") return std::make_unique<NullAdmission>();
  if (config.admission == "shed") {
    return std::make_unique<ShedAdmission>(config);
  }
  throw FfsError("unknown admission controller: " + config.admission +
                 " (known: none, shed)");
}

QueuePolicy MakeQueuePolicy(const QosConfig& config) {
  QueuePolicy qp;
  qp.discipline = MakeQueueDiscipline(config);
  qp.admission = MakeAdmissionController(config);
  return qp;
}

}  // namespace fluidfaas::qos
