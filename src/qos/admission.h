// Admission control and overload shedding for the platform intake.
//
// Two checkpoints, both returning a typed sim::RejectCause:
//
//   AdmitAtSubmit   — at Submit(): token-bucket rate limiting and the
//                     pending-queue depth cap. At submission the deadline
//                     is always one full SLO away, so infeasibility cannot
//                     be judged here.
//   ReviewAtDispatch — when the pending set offers a queued request to the
//                      routing policy: shed it once even an immediate,
//                      unqueued execution could no longer meet the
//                      deadline. Dropping doomed work is what buys goodput
//                      back under overload — capacity stops being spent on
//                      requests that can only miss.
//
// NullAdmission (the default) admits everything and keeps the platform's
// fault-free event stream byte-identical to the pre-QoS build.
#pragma once

#include <memory>

#include "common/types.h"
#include "qos/qos_config.h"
#include "qos/queue_discipline.h"
#include "sim/events.h"

namespace fluidfaas::qos {

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  virtual const char* name() const = 0;

  /// Gate a new submission. `queue` is the central pending set (for depth
  /// caps); returns kNone to admit.
  virtual sim::RejectCause AdmitAtSubmit(const QueueItem& item, SimTime now,
                                         const QueueDiscipline& queue) = 0;

  /// Re-judge a queued request as the pending set offers it for dispatch;
  /// a non-kNone answer sheds it.
  virtual sim::RejectCause ReviewAtDispatch(const QueueItem& item,
                                            SimTime now) = 0;
};

/// Admit everything (the default; zero-cost and inert).
class NullAdmission final : public AdmissionController {
 public:
  const char* name() const override { return "none"; }
  sim::RejectCause AdmitAtSubmit(const QueueItem&, SimTime,
                                 const QueueDiscipline&) override {
    return sim::RejectCause::kNone;
  }
  sim::RejectCause ReviewAtDispatch(const QueueItem&, SimTime) override {
    return sim::RejectCause::kNone;
  }
};

/// Token bucket + depth cap + deadline-infeasible shedding, each enabled
/// by its QosConfig knob (rate_rps > 0, max_queue_depth > 0,
/// shed_infeasible). Refill is computed from simulated time, so the
/// controller is exactly as deterministic as the run driving it.
class ShedAdmission final : public AdmissionController {
 public:
  explicit ShedAdmission(const QosConfig& config);

  const char* name() const override { return "shed"; }
  sim::RejectCause AdmitAtSubmit(const QueueItem& item, SimTime now,
                                 const QueueDiscipline& queue) override;
  sim::RejectCause ReviewAtDispatch(const QueueItem& item,
                                    SimTime now) override;

 private:
  double rate_rps_;
  double burst_;
  std::size_t max_depth_;
  bool shed_infeasible_;

  double tokens_;
  SimTime last_refill_ = 0;
};

/// The discipline/controller pair the platform installs per run.
struct QueuePolicy {
  std::unique_ptr<QueueDiscipline> discipline;
  std::unique_ptr<AdmissionController> admission;
};

/// Build the controller `config.admission` names; throws FfsError on
/// unknown names.
std::unique_ptr<AdmissionController> MakeAdmissionController(
    const QosConfig& config);

/// Build the full pair from `config` ("fifo"/"none" default).
QueuePolicy MakeQueuePolicy(const QosConfig& config);

}  // namespace fluidfaas::qos
