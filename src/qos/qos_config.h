// Tunables of the QoS subsystem (queueing discipline + admission control).
//
// Lives in the qos layer (not platform/config.h) so the disciplines and
// admission controllers can be built and tested below the platform; the
// platform embeds a QosConfig in its PlatformConfig and the CLI maps
// --queue / --admission onto the two name fields. The defaults — "fifo"
// discipline, "none" admission — reproduce the pre-QoS platform behaviour
// exactly (test-pinned byte identity).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace fluidfaas::qos {

struct QosConfig {
  /// Queue discipline for the platform's central pending set:
  /// "fifo" (adjusted-deadline priority, the extracted legacy behaviour),
  /// "fair" (per-function start-time fair queueing with MQFQ-style
  /// stickiness), or "edf" (earliest absolute SLO deadline first).
  std::string queue = "fifo";

  /// Admission controller: "none" (admit everything) or "shed"
  /// (token-bucket rate limit + depth cap + deadline-infeasible shedding).
  std::string admission = "none";

  /// Fair queueing: consecutive dequeues granted to one function's backlog
  /// before the scheduler re-picks the minimum finish tag (MQFQ-Sticky);
  /// keeps a function's burst together so it lands on its warm instance.
  int sticky_batch = 4;

  /// Token bucket: sustained admits per second. 0 disables rate limiting.
  double rate_rps = 0.0;

  /// Token bucket burst size (full bucket). Only meaningful with
  /// rate_rps > 0; clamped to >= 1.
  double burst = 32.0;

  /// Reject new submissions once the central pending queue holds this many
  /// requests. 0 = unbounded.
  std::size_t max_queue_depth = 0;

  /// Shed a pending request at dispatch time once even an immediate,
  /// unqueued execution could no longer meet its deadline.
  bool shed_infeasible = true;
};

}  // namespace fluidfaas::qos
