#include "qos/queue_discipline.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace fluidfaas::qos {

// --- FifoQueue --------------------------------------------------------------

void FifoQueue::Enqueue(QueueItem item) {
  item.seq = NextSeq();
  items_.emplace(std::make_pair(item.priority, item.seq), item);
}

bool FifoQueue::Remove(RequestId rid) {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->second.rid == rid) {
      items_.erase(it);
      return true;
    }
  }
  return false;
}

void FifoQueue::Drain(const DrainFn& fn) {
  auto it = items_.begin();
  while (it != items_.end()) {
    const DrainVerdict v = fn(it->second);
    if (v == DrainVerdict::kKeep) {
      ++it;
    } else {
      it = items_.erase(it);
    }
  }
}

std::size_t FifoQueue::DepthOf(FunctionId fn) const {
  std::size_t n = 0;
  for (const auto& [key, item] : items_) {
    if (item.fn == fn) ++n;
  }
  return n;
}

std::vector<QueueItem> FifoQueue::Snapshot() const {
  std::vector<QueueItem> out;
  out.reserve(items_.size());
  for (const auto& [key, item] : items_) out.push_back(item);
  return out;
}

// --- EdfQueue ---------------------------------------------------------------

void EdfQueue::Enqueue(QueueItem item) {
  item.seq = NextSeq();
  items_.emplace(std::make_pair(item.deadline, item.seq), item);
}

bool EdfQueue::Remove(RequestId rid) {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->second.rid == rid) {
      items_.erase(it);
      return true;
    }
  }
  return false;
}

void EdfQueue::Drain(const DrainFn& fn) {
  auto it = items_.begin();
  while (it != items_.end()) {
    const DrainVerdict v = fn(it->second);
    if (v == DrainVerdict::kKeep) {
      ++it;
    } else {
      it = items_.erase(it);
    }
  }
}

std::size_t EdfQueue::DepthOf(FunctionId fn) const {
  std::size_t n = 0;
  for (const auto& [key, item] : items_) {
    if (item.fn == fn) ++n;
  }
  return n;
}

std::vector<QueueItem> EdfQueue::Snapshot() const {
  std::vector<QueueItem> out;
  out.reserve(items_.size());
  for (const auto& [key, item] : items_) out.push_back(item);
  return out;
}

// --- FairQueue --------------------------------------------------------------

void FairQueue::Enqueue(QueueItem item) {
  item.seq = NextSeq();
  Flow& flow = flows_[item.fn.value];
  Tagged t;
  t.item = item;
  // An idle flow restarts at the current virtual time; a backlogged flow
  // serializes behind its own previous item (per-flow FIFO).
  const std::uint64_t prev =
      flow.backlog.empty() ? flow.last_finish : flow.backlog.back().finish;
  t.start = std::max(vtime_, prev);
  const auto cost = static_cast<std::uint64_t>(
      std::max<SimDuration>(item.service_estimate, 1));
  t.finish = t.start + cost;
  flow.backlog.push_back(t);
  ++size_;
}

bool FairQueue::Remove(RequestId rid) {
  for (auto& [fn, flow] : flows_) {
    for (auto it = flow.backlog.begin(); it != flow.backlog.end(); ++it) {
      if (it->item.rid == rid) {
        // Later tags in the flow keep their values: removal may leave a
        // gap in virtual time but never reorders anything, so dequeue
        // order stays deterministic.
        flow.backlog.erase(it);
        --size_;
        return true;
      }
    }
  }
  return false;
}

std::map<std::int32_t, FairQueue::Flow>::iterator FairQueue::PickFlow(
    const std::vector<std::int32_t>& blocked) {
  auto best = flows_.end();
  std::uint64_t best_finish = std::numeric_limits<std::uint64_t>::max();
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    if (it->second.backlog.empty()) continue;
    if (std::find(blocked.begin(), blocked.end(), it->first) !=
        blocked.end()) {
      continue;
    }
    const Tagged& head = it->second.backlog.front();
    // Strict < with ascending map order makes ties resolve to the lowest
    // FunctionId; equal ids cannot collide (one flow per function).
    if (head.finish < best_finish) {
      best_finish = head.finish;
      best = it;
    }
  }
  return best;
}

void FairQueue::Drain(const DrainFn& fn) {
  // A kKeep answer blocks that whole flow for the rest of the pass:
  // per-function order must hold, so nothing behind the stuck head may
  // overtake it. Other flows keep draining.
  std::vector<std::int32_t> blocked;
  auto it = PickFlow(blocked);
  while (it != flows_.end()) {
    Flow& flow = it->second;
    int granted = 0;
    while (!flow.backlog.empty() && granted < sticky_batch_) {
      const Tagged head = flow.backlog.front();
      const DrainVerdict v = fn(head.item);
      if (v == DrainVerdict::kKeep) {
        blocked.push_back(it->first);
        break;
      }
      flow.backlog.pop_front();
      --size_;
      if (v == DrainVerdict::kDispatch) {
        // Advance virtual time to the dispatched start tag and remember
        // the flow's finish so a momentarily-idle flow cannot bank credit.
        vtime_ = std::max(vtime_, head.start);
        flow.last_finish = head.finish;
        ++granted;
      }
      // kDrop: shed work consumes no virtual time — the flow is not
      // charged for items the admission controller refused.
    }
    it = PickFlow(blocked);
  }
}

std::size_t FairQueue::DepthOf(FunctionId fn) const {
  auto it = flows_.find(fn.value);
  return it == flows_.end() ? 0 : it->second.backlog.size();
}

std::vector<QueueItem> FairQueue::Snapshot() const {
  // Dequeue order without side effects: repeatedly pick the minimum head
  // finish tag over copies of the flow backlogs.
  std::map<std::int32_t, std::deque<Tagged>> rest;
  for (const auto& [fnv, flow] : flows_) {
    if (!flow.backlog.empty()) rest[fnv] = flow.backlog;
  }
  std::vector<QueueItem> out;
  out.reserve(size_);
  while (!rest.empty()) {
    auto best = rest.end();
    std::uint64_t best_finish = std::numeric_limits<std::uint64_t>::max();
    for (auto it = rest.begin(); it != rest.end(); ++it) {
      if (it->second.front().finish < best_finish) {
        best_finish = it->second.front().finish;
        best = it;
      }
    }
    int granted = 0;
    while (!best->second.empty() && granted < sticky_batch_) {
      out.push_back(best->second.front().item);
      best->second.pop_front();
      ++granted;
    }
    if (best->second.empty()) rest.erase(best);
  }
  return out;
}

// --- factory ----------------------------------------------------------------

std::unique_ptr<QueueDiscipline> MakeQueueDiscipline(const QosConfig& config) {
  if (config.queue == "fifo") return std::make_unique<FifoQueue>();
  if (config.queue == "edf") return std::make_unique<EdfQueue>();
  if (config.queue == "fair") {
    return std::make_unique<FairQueue>(config.sticky_batch);
  }
  throw FfsError("unknown queue discipline: " + config.queue +
                 " (known: edf, fair, fifo)");
}

}  // namespace fluidfaas::qos
