// Pluggable queueing disciplines for the platform's central pending set.
//
// The platform used to keep pending requests in one hard-coded
// std::multimap ordered by adjusted deadline. That policy is now the
// FifoQueue below, and two alternatives ride the same seam:
//
//   FifoQueue — the extracted legacy order: ascending caller-supplied
//               priority (the §5.3 adjusted deadline), insertion order on
//               ties. Byte-identical to the old multimap.
//   FairQueue — per-function start-time fair queueing (SFQ): every item
//               gets virtual start/finish tags; dequeue picks the minimum
//               finish tag, so a bursty function cannot starve its
//               co-residents. MQFQ-style stickiness dequeues up to
//               sticky_batch consecutive items from the chosen function so
//               its backlog stays together (and lands on its warm
//               instance) before the scheduler re-picks.
//   EdfQueue  — earliest absolute SLO deadline first.
//
// Every discipline is strictly deterministic: ties break by the arrival
// sequence number stamped at Enqueue, never by pointer or hash order
// (test-pinned across parallel sweep job counts).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "qos/qos_config.h"

namespace fluidfaas::qos {

/// One pending request as the discipline sees it. `priority` is the
/// caller-computed adjusted deadline (deadline − estimated execution −
/// load, §5.3); `service_estimate` is that same estimated execution + load
/// time, which fair queueing uses as the virtual-time cost of the item.
struct QueueItem {
  RequestId rid;
  FunctionId fn;
  std::uint64_t seq = 0;  // arrival order, stamped by the discipline
  SimTime deadline = 0;
  SimTime priority = 0;
  SimDuration service_estimate = 0;
};

/// What the drain callback did with an offered item.
enum class DrainVerdict {
  kKeep,      // could not place it now; stays queued
  kDispatch,  // admitted to an instance; leaves the queue
  kDrop,      // shed by admission review; leaves the queue, and fair
              // queueing does not advance virtual time for it
};

/// How per-instance stage queues order their work under this discipline.
enum class StageOrder {
  kArrival,   // plain FIFO (fifo/fair)
  kDeadline,  // sorted by (deadline, seq) — edf
};

class QueueDiscipline {
 public:
  using DrainFn = std::function<DrainVerdict(const QueueItem&)>;

  virtual ~QueueDiscipline() = default;

  virtual const char* name() const = 0;

  /// Add an item. The discipline stamps item.seq from its own counter, so
  /// callers need not (and must not) manage sequence numbers.
  virtual void Enqueue(QueueItem item) = 0;

  /// Remove a queued request (timeout expiry mid-queue). False when the
  /// request is not queued here.
  virtual bool Remove(RequestId rid) = 0;

  /// Offer queued items to `fn` in discipline order. Items answered
  /// kDispatch or kDrop leave the queue; kKeep items stay (and, for fair
  /// queueing, block the rest of their function's backlog for this pass —
  /// per-function order is always preserved).
  virtual void Drain(const DrainFn& fn) = 0;

  virtual std::size_t size() const = 0;

  /// Queued items of one function (backpressure signal).
  virtual std::size_t DepthOf(FunctionId fn) const = 0;

  /// The full queue in dequeue order (tests and diagnostics only).
  virtual std::vector<QueueItem> Snapshot() const = 0;

  /// Stage-queue ordering that matches this discipline.
  virtual StageOrder stage_order() const { return StageOrder::kArrival; }

 protected:
  std::uint64_t NextSeq() { return next_seq_++; }

 private:
  std::uint64_t next_seq_ = 0;
};

/// The extracted legacy discipline: ascending (priority, seq). With
/// priority = adjusted deadline this reproduces the pre-QoS multimap —
/// including insertion-order ties — event for event.
class FifoQueue final : public QueueDiscipline {
 public:
  const char* name() const override { return "fifo"; }
  void Enqueue(QueueItem item) override;
  bool Remove(RequestId rid) override;
  void Drain(const DrainFn& fn) override;
  std::size_t size() const override { return items_.size(); }
  std::size_t DepthOf(FunctionId fn) const override;
  std::vector<QueueItem> Snapshot() const override;

 private:
  std::map<std::pair<SimTime, std::uint64_t>, QueueItem> items_;
};

/// Earliest-deadline-first on the absolute SLO deadline; ties by seq.
/// Per-instance stage queues sort the same way (StageOrder::kDeadline).
class EdfQueue final : public QueueDiscipline {
 public:
  const char* name() const override { return "edf"; }
  void Enqueue(QueueItem item) override;
  bool Remove(RequestId rid) override;
  void Drain(const DrainFn& fn) override;
  std::size_t size() const override { return items_.size(); }
  std::size_t DepthOf(FunctionId fn) const override;
  std::vector<QueueItem> Snapshot() const override;
  StageOrder stage_order() const override { return StageOrder::kDeadline; }

 private:
  std::map<std::pair<SimTime, std::uint64_t>, QueueItem> items_;
};

/// Start-time fair queueing over per-function flows with MQFQ-style
/// stickiness. Integer virtual time in µs; item tags are
///   S = max(V, finish tag of the flow's previous item)
///   F = S + max(1, service_estimate)
/// and dispatch advances V to the dispatched item's start tag. Flow
/// selection is min head-item F, ties by FunctionId value then seq —
/// deterministic by construction.
class FairQueue final : public QueueDiscipline {
 public:
  explicit FairQueue(int sticky_batch)
      : sticky_batch_(sticky_batch < 1 ? 1 : sticky_batch) {}

  const char* name() const override { return "fair"; }
  void Enqueue(QueueItem item) override;
  bool Remove(RequestId rid) override;
  void Drain(const DrainFn& fn) override;
  std::size_t size() const override { return size_; }
  std::size_t DepthOf(FunctionId fn) const override;
  std::vector<QueueItem> Snapshot() const override;

 private:
  struct Tagged {
    QueueItem item;
    std::uint64_t start = 0;
    std::uint64_t finish = 0;
  };
  struct Flow {
    std::deque<Tagged> backlog;
    std::uint64_t last_finish = 0;
  };

  /// Flow with the minimum head finish tag, skipping `blocked`; flows_.end()
  /// when everything is blocked or empty.
  std::map<std::int32_t, Flow>::iterator PickFlow(
      const std::vector<std::int32_t>& blocked);

  std::map<std::int32_t, Flow> flows_;  // key: FunctionId value (ordered)
  std::uint64_t vtime_ = 0;
  std::size_t size_ = 0;
  int sticky_batch_;
};

/// Build the discipline `config.queue` names; throws FfsError on unknown
/// names (listing the registered ones).
std::unique_ptr<QueueDiscipline> MakeQueueDiscipline(const QosConfig& config);

}  // namespace fluidfaas::qos
