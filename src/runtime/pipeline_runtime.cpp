#include "runtime/pipeline_runtime.h"

#include <cstring>

#include "common/error.h"

namespace fluidfaas::runtime {

PipelineRuntime::PipelineRuntime(std::vector<StageConfig> stages,
                                 std::size_t ring_capacity)
    : stages_(std::move(stages)) {
  FFS_CHECK_MSG(!stages_.empty(), "pipeline needs at least one stage");
  for (std::size_t i = 0; i <= stages_.size(); ++i) {
    channels_.push_back(std::make_unique<SpscByteRing>(ring_capacity));
  }
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    eviction_.push_back(std::make_unique<std::atomic<bool>>(false));
    processed_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

PipelineRuntime::~PipelineRuntime() {
  Shutdown();
  Join();
}

void PipelineRuntime::Start() {
  FFS_CHECK_MSG(!started_, "Start() called twice");
  started_ = true;
  workers_.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

std::vector<std::byte> PipelineRuntime::EncodeFrame(
    std::uint64_t rid, std::span<const std::byte> data) {
  std::vector<std::byte> frame(sizeof(rid) + data.size());
  std::memcpy(frame.data(), &rid, sizeof(rid));
  if (!data.empty()) {
    std::memcpy(frame.data() + sizeof(rid), data.data(), data.size());
  }
  return frame;
}

TensorFrame PipelineRuntime::DecodeFrame(std::vector<std::byte> bytes) {
  FFS_CHECK(bytes.size() >= sizeof(std::uint64_t));
  TensorFrame f;
  std::memcpy(&f.request_id, bytes.data(), sizeof(f.request_id));
  f.payload.assign(bytes.begin() + sizeof(f.request_id), bytes.end());
  return f;
}

bool PipelineRuntime::Submit(std::uint64_t request_id,
                             std::span<const std::byte> input) {
  FFS_CHECK_MSG(started_, "Start() the pipeline first");
  const std::vector<std::byte> frame = EncodeFrame(request_id, input);
  return channels_.front()->Push(frame.data(),
                                 static_cast<std::uint32_t>(frame.size()));
}

std::optional<TensorFrame> PipelineRuntime::NextResult() {
  auto bytes = channels_.back()->Pop();
  if (!bytes) return std::nullopt;
  return DecodeFrame(std::move(*bytes));
}

void PipelineRuntime::RequestEviction(std::size_t stage) {
  FFS_CHECK(stage < stages_.size());
  eviction_[stage]->store(true, std::memory_order_release);
  // Unblock the worker if it sleeps on an empty input ring.
  channels_[stage]->Close();
}

bool PipelineRuntime::EvictionRequested(std::size_t stage) const {
  FFS_CHECK(stage < stages_.size());
  return eviction_[stage]->load(std::memory_order_acquire);
}

void PipelineRuntime::Shutdown() { channels_.front()->Close(); }

void PipelineRuntime::Join() {
  if (joined_) return;
  joined_ = true;
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // No further producer exists for the result channel.
  channels_.back()->Close();
}

std::uint64_t PipelineRuntime::processed(std::size_t stage) const {
  FFS_CHECK(stage < stages_.size());
  return processed_[stage]->load(std::memory_order_relaxed);
}

void PipelineRuntime::WorkerLoop(std::size_t stage) {
  SpscByteRing& in = *channels_[stage];
  SpscByteRing& out = *channels_[stage + 1];
  while (true) {
    if (EvictionRequested(stage)) break;  // Listing 1: if self.eviction[s]
    auto bytes = in.Pop();
    if (!bytes) break;  // upstream closed and drained
    if (EvictionRequested(stage)) break;
    TensorFrame frame = DecodeFrame(std::move(*bytes));
    std::vector<std::byte> output =
        stages_[stage].run(frame.request_id, frame.payload);
    processed_[stage]->fetch_add(1, std::memory_order_relaxed);
    const std::vector<std::byte> encoded =
        EncodeFrame(frame.request_id, output);
    if (!out.Push(encoded.data(),
                  static_cast<std::uint32_t>(encoded.size()))) {
      break;  // downstream evicted
    }
  }
  if (stages_[stage].unload) stages_[stage].unload();
  // Propagate end-of-stream so downstream stages drain and exit.
  out.Close();
}

StageFn SyntheticModel(std::size_t output_bytes, int work_factor) {
  return [output_bytes, work_factor](std::uint64_t rid,
                                     std::span<const std::byte> input) {
    // FNV-1a over the input, repeated work_factor times — real CPU work
    // proportional to input size, immune to dead-code elimination because
    // the hash seeds the output bytes.
    std::uint64_t h = 1469598103934665603ull ^ rid;
    for (int iter = 0; iter < work_factor; ++iter) {
      for (std::byte b : input) {
        h ^= static_cast<std::uint64_t>(b);
        h *= 1099511628211ull;
      }
      h ^= static_cast<std::uint64_t>(iter);
    }
    std::vector<std::byte> out(output_bytes);
    std::uint64_t x = h ? h : 0x9E3779B97F4A7C15ull;
    for (std::size_t i = 0; i < out.size(); ++i) {
      // xorshift64 stream seeded by the hash.
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      out[i] = static_cast<std::byte>(x & 0xFF);
    }
    return out;
  };
}

}  // namespace fluidfaas::runtime
