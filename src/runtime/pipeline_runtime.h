// The concurrent pipeline runtime — the C++ counterpart of Listing 1.
//
// The paper's FFaaS.run() creates one process per MIG slice, wires them with
// shared memory + queues, executes `_run_inference` loops, and tears the
// processes down on eviction/termination signals. Here each stage is a
// worker thread (one per simulated slice), the shared-memory queues are
// SpscByteRing channels, and the GPU kernel is a caller-supplied StageFn
// (the examples use SyntheticModel, which burns real CPU proportional to
// the modelled latency).
//
// Dataflow: Submit() frames (request id, tensor) into stage 0's input ring;
// stage i pops, runs its StageFn, pushes into stage i+1's ring; the last
// stage pushes into the результат ring read by NextResult().
//
// Lifecycle mirrors `_terminate_processes`:
//   * RequestEviction(stage) sets the stage's eviction flag; the worker
//     finishes its current tensor, runs the unload hook ("model.cpu()"),
//     and exits — frames already queued upstream of it drain to the floor,
//     exactly like killing a stage process.
//   * Shutdown() closes the input ring; workers drain remaining frames and
//     exit cleanly; Join() waits for them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "runtime/spsc_ring.h"

namespace fluidfaas::runtime {

struct TensorFrame {
  std::uint64_t request_id = 0;
  std::vector<std::byte> payload;
};

/// A stage's "model": transforms an input tensor into an output tensor.
using StageFn = std::function<std::vector<std::byte>(
    std::uint64_t request_id, std::span<const std::byte> input)>;

struct StageConfig {
  std::string name;
  StageFn run;
  /// Invoked once when the stage evicts or shuts down ("model.cpu()").
  std::function<void()> unload;
};

class PipelineRuntime {
 public:
  PipelineRuntime(std::vector<StageConfig> stages,
                  std::size_t ring_capacity = 1 << 20);
  ~PipelineRuntime();

  PipelineRuntime(const PipelineRuntime&) = delete;
  PipelineRuntime& operator=(const PipelineRuntime&) = delete;

  /// Start one worker thread per stage (Listing 1's `_start_processes`).
  void Start();

  /// Feed one request into the pipeline. Blocks while stage 0's ring is
  /// full; returns false after Shutdown().
  bool Submit(std::uint64_t request_id, std::span<const std::byte> input);

  /// Blocking read of the next completed output; nullopt once the pipeline
  /// has shut down and all results were consumed.
  std::optional<TensorFrame> NextResult();

  /// Signal one stage to evict (it exits after its current tensor).
  void RequestEviction(std::size_t stage);
  bool EvictionRequested(std::size_t stage) const;

  /// Stop accepting inputs; workers drain and exit.
  void Shutdown();
  /// Wait for all worker threads to exit.
  void Join();

  std::size_t num_stages() const { return stages_.size(); }
  std::uint64_t processed(std::size_t stage) const;

 private:
  void WorkerLoop(std::size_t stage);

  static std::vector<std::byte> EncodeFrame(std::uint64_t rid,
                                            std::span<const std::byte> data);
  static TensorFrame DecodeFrame(std::vector<std::byte> bytes);

  std::vector<StageConfig> stages_;
  // channels_[i] feeds stage i; channels_[n] carries final results.
  std::vector<std::unique_ptr<SpscByteRing>> channels_;
  std::vector<std::unique_ptr<std::atomic<bool>>> eviction_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> processed_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool joined_ = false;
};

/// A deterministic synthetic "DNN": burns CPU by hashing the input
/// `work_factor` times and emits `output_bytes` derived bytes. Gives the
/// runtime real, measurable per-stage compute.
StageFn SyntheticModel(std::size_t output_bytes, int work_factor);

}  // namespace fluidfaas::runtime
