#include "runtime/plan_executor.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.h"

namespace fluidfaas::runtime {
namespace {

using Clock = std::chrono::steady_clock;

/// Estimate hash throughput once (bytes per second of the SyntheticModel
/// inner loop) so CalibratedStage can size its work deterministically-ish.
double MeasureHashBytesPerSec() {
  static const double cached = [] {
    std::vector<std::byte> buf(1 << 16);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::byte>(i);
    }
    auto fn = SyntheticModel(8, 1);
    const auto t0 = Clock::now();
    int iters = 0;
    while (Clock::now() - t0 < std::chrono::milliseconds(50)) {
      fn(static_cast<std::uint64_t>(iters), buf);
      ++iters;
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0)
                            .count();
    return static_cast<double>(iters) * static_cast<double>(buf.size()) /
           secs;
  }();
  return cached;
}

}  // namespace

StageFn CalibratedStage(double target_ms, double time_scale,
                        std::size_t output_bytes) {
  const double bytes_per_sec = MeasureHashBytesPerSec();
  const double budget_bytes =
      bytes_per_sec * (target_ms * time_scale / 1000.0);
  // Work factor over the (whatever-sized) input: hash it enough times to
  // burn the budget, assuming a 64 KiB reference input.
  const int work_factor = std::max(
      1, static_cast<int>(std::lround(budget_bytes / (1 << 16))));
  return SyntheticModel(output_bytes, work_factor);
}

PlanExecutor::PlanExecutor(const model::AppDag& dag,
                           const core::PipelinePlan& plan,
                           PlanExecutorOptions options)
    : options_(options),
      bottleneck_(plan.BottleneckTime()),
      e2e_(plan.EndToEndLatency()) {
  FFS_CHECK(!plan.stages.empty());
  std::vector<StageConfig> stages;
  for (const core::StageBinding& b : plan.stages) {
    StageConfig s;
    s.name = "stage[" + std::to_string(b.plan.begin) + "," +
             std::to_string(b.plan.end) + ")@" + gpu::Name(b.profile);
    const double ms = ToMillis(b.exec_time + b.hop_out);
    // Output tensor: the modelled inter-stage cut, scaled 1024:1 and capped
    // so rings never choke the measurement; the last stage emits a small
    // result.
    std::size_t out_bytes = 1024;
    if (b.plan.end < dag.size()) {
      out_bytes = std::min<std::size_t>(
          options_.ring_capacity / 8,
          std::max<std::size_t>(
              1024, static_cast<std::size_t>(dag.CutBytes(b.plan.end)) /
                        1024));
    }
    s.run = CalibratedStage(ms, options_.time_scale, out_bytes);
    stages.push_back(std::move(s));
  }
  runtime_ = std::make_unique<PipelineRuntime>(std::move(stages),
                                               options_.ring_capacity);
}

double PlanExecutor::MeasureSeconds(int requests) {
  FFS_CHECK(requests > 0);
  runtime_->Start();
  std::vector<std::byte> input(options_.input_bytes);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::byte>(i * 40503u >> 8);
  }
  const auto t0 = Clock::now();
  std::thread feeder([&] {
    for (int i = 0; i < requests; ++i) {
      runtime_->Submit(static_cast<std::uint64_t>(i), input);
    }
    runtime_->Shutdown();
  });
  int results = 0;
  while (runtime_->NextResult()) ++results;
  feeder.join();
  runtime_->Join();
  FFS_CHECK(results == requests);
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace fluidfaas::runtime
