// Bridge from planning to execution: materialize a core::PipelinePlan as a
// real PipelineRuntime.
//
// The simulator predicts a pipeline's bottleneck and end-to-end latency from
// profiles; this executor builds the same stage structure with live worker
// threads whose synthetic compute burns CPU in proportion to the modelled
// stage times (scaled by `time_scale`, since modelled GPU-milliseconds are
// not CPU-milliseconds). Examples and the micro bench use it to check that
// the *measured* steady-state throughput of the real pipeline matches the
// planner's 1/bottleneck prediction — the claim behind Eq. 1's balancing.
#pragma once

#include <memory>

#include "core/pipeline.h"
#include "model/app.h"
#include "runtime/pipeline_runtime.h"

namespace fluidfaas::runtime {

struct PlanExecutorOptions {
  /// Wall-clock milliseconds of CPU work per modelled millisecond.
  double time_scale = 0.05;
  /// Bytes of tensor fed into stage inputs (scaled copies of the modelled
  /// inter-stage tensors are used between stages).
  std::size_t input_bytes = 1 << 16;
  std::size_t ring_capacity = 1 << 22;
};

class PlanExecutor {
 public:
  PlanExecutor(const model::AppDag& dag, const core::PipelinePlan& plan,
               PlanExecutorOptions options = {});

  /// The underlying runtime (Start/Submit/NextResult/Shutdown).
  PipelineRuntime& runtime() { return *runtime_; }

  /// Planner predictions for cross-checking measurements.
  SimDuration predicted_bottleneck() const { return bottleneck_; }
  SimDuration predicted_e2e() const { return e2e_; }

  /// Run `requests` tensors through the pipeline and return the measured
  /// wall-clock seconds (Start must not have been called).
  double MeasureSeconds(int requests);

 private:
  std::unique_ptr<PipelineRuntime> runtime_;
  PlanExecutorOptions options_;
  SimDuration bottleneck_;
  SimDuration e2e_;
};

/// A stage function calibrated to take roughly `target_ms x time_scale`
/// milliseconds of wall-clock CPU per tensor (used by PlanExecutor; exposed
/// for tests).
StageFn CalibratedStage(double target_ms, double time_scale,
                        std::size_t output_bytes);

}  // namespace fluidfaas::runtime
