#include "runtime/spsc_ring.h"

#include <bit>

namespace fluidfaas::runtime {

namespace {
constexpr std::size_t kHeader = sizeof(std::uint32_t);
}

SpscByteRing::SpscByteRing(std::size_t capacity) {
  FFS_CHECK_MSG(capacity >= 64, "ring too small");
  buffer_.resize(std::bit_ceil(capacity));
  mask_ = buffer_.size() - 1;
}

std::size_t SpscByteRing::ReadableBytes() const {
  return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                  head_.load(std::memory_order_acquire));
}

std::size_t SpscByteRing::WritableBytes() const {
  return buffer_.size() - ReadableBytes();
}

void SpscByteRing::CopyIn(std::size_t pos, const void* src, std::size_t n) {
  const std::size_t first = std::min(n, buffer_.size() - pos);
  std::memcpy(buffer_.data() + pos, src, first);
  if (n > first) {
    std::memcpy(buffer_.data(),
                static_cast<const std::byte*>(src) + first, n - first);
  }
}

void SpscByteRing::CopyOut(std::size_t pos, void* dst, std::size_t n) const {
  const std::size_t first = std::min(n, buffer_.size() - pos);
  std::memcpy(dst, buffer_.data() + pos, first);
  if (n > first) {
    std::memcpy(static_cast<std::byte*>(dst) + first, buffer_.data(),
                n - first);
  }
}

void SpscByteRing::BumpVersion() {
  version_.fetch_add(1, std::memory_order_release);
  version_.notify_all();
}

bool SpscByteRing::TryPush(const void* data, std::uint32_t len) {
  const std::size_t need = kHeader + len;
  FFS_CHECK_MSG(need <= buffer_.size() / 2,
                "frame larger than half the ring capacity");
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (buffer_.size() - static_cast<std::size_t>(tail - head) < need) {
    return false;
  }
  CopyIn(static_cast<std::size_t>(tail) & mask_, &len, kHeader);
  CopyIn(static_cast<std::size_t>(tail + kHeader) & mask_, data, len);
  tail_.store(tail + need, std::memory_order_release);
  pushed_.fetch_add(1, std::memory_order_relaxed);
  BumpVersion();
  return true;
}

bool SpscByteRing::Push(const void* data, std::uint32_t len) {
  // Optimistic spin, then sleep on the version word until the consumer
  // frees space (or the ring closes).
  for (int i = 0; i < 64; ++i) {
    if (closed()) return false;
    if (TryPush(data, len)) return true;
  }
  while (true) {
    const std::uint64_t v = version_.load(std::memory_order_acquire);
    if (closed()) return false;
    if (TryPush(data, len)) return true;
    version_.wait(v, std::memory_order_acquire);
  }
}

std::optional<std::vector<std::byte>> SpscByteRing::TryPop() {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (tail - head < kHeader) return std::nullopt;
  std::uint32_t len = 0;
  CopyOut(static_cast<std::size_t>(head) & mask_, &len, kHeader);
  FFS_CHECK(tail - head >= kHeader + len);
  std::vector<std::byte> out(len);
  CopyOut(static_cast<std::size_t>(head + kHeader) & mask_, out.data(), len);
  head_.store(head + kHeader + len, std::memory_order_release);
  popped_.fetch_add(1, std::memory_order_relaxed);
  BumpVersion();
  return out;
}

std::optional<std::vector<std::byte>> SpscByteRing::Pop() {
  for (int i = 0; i < 64; ++i) {
    if (auto frame = TryPop()) return frame;
    if (closed() && ReadableBytes() == 0) return std::nullopt;
  }
  while (true) {
    const std::uint64_t v = version_.load(std::memory_order_acquire);
    if (auto frame = TryPop()) return frame;
    if (closed() && ReadableBytes() == 0) return std::nullopt;
    version_.wait(v, std::memory_order_acquire);
  }
}

void SpscByteRing::Close() {
  closed_.store(true, std::memory_order_release);
  BumpVersion();
}

}  // namespace fluidfaas::runtime
