// Lock-free single-producer / single-consumer byte ring.
//
// This is the host-shared-memory transport of the FluidFaaS runtime
// (Listing 1): each pipeline stage runs in its own execution context and
// hands tensors to its successor through one of these rings —
// `_write_to_shared_memory` / `_get_from_shared_memory` in the paper's
// pseudocode. Messages are length-prefixed byte frames.
//
// Concurrency design:
//   * exactly one producer thread calls TryPush/Push, exactly one consumer
//     thread calls TryPop/Pop;
//   * head_ and tail_ live on separate cache lines to avoid false sharing;
//   * release/acquire pairs order payload writes against index publication;
//   * blocking Push/Pop wait with C++20 atomic wait/notify — no spinning
//     beyond a short optimistic phase, no mutexes on the data path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <optional>
#include <vector>

#include "common/error.h"

namespace fluidfaas::runtime {

// A fixed 64-byte destructive-interference size: correct for every x86-64
// and most AArch64 parts, and — unlike std::hardware_destructive_
// interference_size — ABI-stable across translation units (GCC warns about
// exactly that instability under -Winterference-size).
inline constexpr std::size_t kCacheLine = 64;

class SpscByteRing {
 public:
  /// `capacity` is rounded up to a power of two; one frame must fit with
  /// its 4-byte header, so size frames below capacity/2.
  explicit SpscByteRing(std::size_t capacity);

  SpscByteRing(const SpscByteRing&) = delete;
  SpscByteRing& operator=(const SpscByteRing&) = delete;

  std::size_t capacity() const { return buffer_.size(); }

  /// Bytes currently readable / writable (racy snapshots, exact only from
  /// the respective owning thread).
  std::size_t ReadableBytes() const;
  std::size_t WritableBytes() const;

  /// Producer side. Frame = 4-byte little-endian length + payload.
  /// TryPush returns false when the frame does not fit right now.
  bool TryPush(const void* data, std::uint32_t len);
  /// Blocking push; waits for the consumer. Returns false if the ring was
  /// closed before the frame could be written.
  bool Push(const void* data, std::uint32_t len);

  /// Consumer side. TryPop returns nullopt when no complete frame is
  /// available.
  std::optional<std::vector<std::byte>> TryPop();
  /// Blocking pop; returns nullopt only after Close() once drained.
  std::optional<std::vector<std::byte>> Pop();

  /// Producer signals end-of-stream. Consumers drain remaining frames,
  /// then Pop returns nullopt.
  void Close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Frames pushed/popped (owned by the respective threads; read-only
  /// elsewhere).
  std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  std::uint64_t popped() const { return popped_.load(std::memory_order_relaxed); }

 private:
  void CopyIn(std::size_t pos, const void* src, std::size_t n);
  void CopyOut(std::size_t pos, void* dst, std::size_t n) const;
  void BumpVersion();

  std::vector<std::byte> buffer_;
  std::size_t mask_ = 0;

  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // consumer index
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // producer index
  alignas(kCacheLine) std::atomic<bool> closed_{false};
  /// Monotone word bumped on every push/pop/close; blocking paths wait on
  /// it so a notification can never be lost between condition check and
  /// atomic wait.
  alignas(kCacheLine) std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
};

}  // namespace fluidfaas::runtime
