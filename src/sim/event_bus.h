// Typed publish/subscribe bus for simulation events (see sim/events.h).
//
// Dispatch is synchronous and deterministic: Publish() invokes the handlers
// for the event's exact type, in subscription order, before returning. The
// bus does no buffering, so observers are zero-perturbation: a run with N
// subscribers executes the same simulated schedule as a run with none.
//
// Subscriptions are cancellable: Subscribe() returns a SubscriptionId that
// can be passed to Unsubscribe(), and SubscribeScoped() wraps that in an
// RAII handle so transient observers (fault injectors, trace exporters,
// per-run platform hooks) detach when they go out of scope. Unsubscribing
// is safe even from inside a handler of the event being dispatched: the
// entry is tombstoned during dispatch and compacted afterwards. Handlers
// subscribed during a dispatch of the same type do not see the in-flight
// event (the dispatch snapshot is taken at Publish time).
//
// The bus is intentionally closed-world-free: any struct type can be an
// event. Subscribers registered for type E only see events published as E.
#pragma once

#include <cstdint>
#include <functional>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fluidfaas::sim {

class EventBus {
 public:
  using SubscriptionId = std::uint64_t;

  /// RAII subscription handle: unsubscribes on destruction. Movable,
  /// non-copyable; Release() detaches early.
  class Subscription {
   public:
    Subscription() = default;
    Subscription(EventBus* bus, SubscriptionId id) : bus_(bus), id_(id) {}
    ~Subscription() { Release(); }
    Subscription(const Subscription&) = delete;
    Subscription& operator=(const Subscription&) = delete;
    Subscription(Subscription&& other) noexcept
        : bus_(other.bus_), id_(other.id_) {
      other.bus_ = nullptr;
    }
    Subscription& operator=(Subscription&& other) noexcept {
      if (this != &other) {
        Release();
        bus_ = other.bus_;
        id_ = other.id_;
        other.bus_ = nullptr;
      }
      return *this;
    }

    bool active() const { return bus_ != nullptr; }

    void Release() {
      if (bus_ != nullptr) bus_->Unsubscribe(id_);
      bus_ = nullptr;
    }

   private:
    EventBus* bus_ = nullptr;
    SubscriptionId id_ = 0;
  };

  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Register a handler for events of exactly type E. Handlers for one type
  /// run in subscription order. Returns an id for Unsubscribe().
  template <typename E>
  SubscriptionId Subscribe(std::function<void(const E&)> handler) {
    const SubscriptionId id = next_id_++;
    const std::type_index type(typeid(E));
    handlers_[type].push_back(
        Entry{id, [h = std::move(handler)](const void* ev) {
                h(*static_cast<const E*>(ev));
              }});
    by_id_.emplace(id, type);
    return id;
  }

  /// Subscribe with automatic detach when the returned handle dies.
  template <typename E>
  Subscription SubscribeScoped(std::function<void(const E&)> handler) {
    return Subscription(this, Subscribe<E>(std::move(handler)));
  }

  /// Remove a subscription; false if the id is unknown (already removed).
  /// Safe during dispatch: a handler may unsubscribe itself (or a peer) —
  /// the slot is tombstoned immediately and skipped for the rest of the
  /// dispatch, then reclaimed once the bus is quiescent.
  bool Unsubscribe(SubscriptionId id) {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) return false;
    const std::type_index type = it->second;
    auto& vec = handlers_[type];
    for (Entry& e : vec) {
      if (e.id == id) {
        e.fn = nullptr;  // tombstone; compacted outside dispatch
        break;
      }
    }
    by_id_.erase(it);
    if (dispatch_depth_ == 0) Compact(type);
    return true;
  }

  /// Deliver `ev` to every subscriber of type E, synchronously.
  template <typename E>
  void Publish(const E& ev) {
    ++published_;
    auto it = handlers_.find(std::type_index(typeid(E)));
    if (it == handlers_.end()) return;
    // Index-based loop over a size snapshot: handlers subscribed during
    // this dispatch (which may reallocate the vector) neither run for the
    // in-flight event nor invalidate the traversal, and tombstoned entries
    // are skipped. The old iterator-based loop dangled on both.
    auto& vec = it->second;
    const std::size_t n = vec.size();
    ++dispatch_depth_;
    for (std::size_t i = 0; i < n; ++i) {
      if (vec[i].fn) vec[i].fn(&ev);
    }
    if (--dispatch_depth_ == 0) Compact(it->first);
  }

  /// Total events published (delivered or not); handy in tests.
  std::uint64_t published() const { return published_; }

  /// Number of live handlers registered for type E.
  template <typename E>
  std::size_t subscribers() const {
    auto it = handlers_.find(std::type_index(typeid(E)));
    if (it == handlers_.end()) return 0;
    std::size_t n = 0;
    for (const Entry& e : it->second) {
      if (e.fn) ++n;
    }
    return n;
  }

 private:
  struct Entry {
    SubscriptionId id = 0;
    std::function<void(const void*)> fn;
  };

  void Compact(const std::type_index& type) {
    auto it = handlers_.find(type);
    if (it == handlers_.end()) return;
    auto& vec = it->second;
    std::size_t w = 0;
    for (std::size_t r = 0; r < vec.size(); ++r) {
      if (vec[r].fn) {
        if (w != r) vec[w] = std::move(vec[r]);
        ++w;
      }
    }
    vec.resize(w);
  }

  std::unordered_map<std::type_index, std::vector<Entry>> handlers_;
  std::unordered_map<SubscriptionId, std::type_index> by_id_;
  std::uint64_t published_ = 0;
  SubscriptionId next_id_ = 1;
  int dispatch_depth_ = 0;
};

}  // namespace fluidfaas::sim
