// Typed publish/subscribe bus for simulation events (see sim/events.h).
//
// Dispatch is synchronous and deterministic: Publish() invokes the handlers
// for the event's exact type, in subscription order, before returning. The
// bus does no buffering and allocates nothing per publish, so observers are
// zero-perturbation: a run with N subscribers executes the same simulated
// schedule as a run with none.
//
// The bus is intentionally closed-world-free: any struct type can be an
// event. Subscribers registered for type E only see events published as E.
#pragma once

#include <cstdint>
#include <functional>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fluidfaas::sim {

class EventBus {
 public:
  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Register a handler for events of exactly type E. Handlers for one type
  /// run in subscription order. Subscribing from inside a handler is not
  /// supported.
  template <typename E>
  void Subscribe(std::function<void(const E&)> handler) {
    handlers_[std::type_index(typeid(E))].push_back(
        [h = std::move(handler)](const void* ev) {
          h(*static_cast<const E*>(ev));
        });
  }

  /// Deliver `ev` to every subscriber of type E, synchronously.
  template <typename E>
  void Publish(const E& ev) {
    ++published_;
    auto it = handlers_.find(std::type_index(typeid(E)));
    if (it == handlers_.end()) return;
    for (const auto& h : it->second) h(&ev);
  }

  /// Total events published (delivered or not); handy in tests.
  std::uint64_t published() const { return published_; }

  /// Number of handlers registered for type E.
  template <typename E>
  std::size_t subscribers() const {
    auto it = handlers_.find(std::type_index(typeid(E)));
    return it == handlers_.end() ? 0 : it->second.size();
  }

 private:
  std::unordered_map<std::type_index,
                     std::vector<std::function<void(const void*)>>>
      handlers_;
  std::uint64_t published_ = 0;
};

}  // namespace fluidfaas::sim
