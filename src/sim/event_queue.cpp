#include "sim/event_queue.h"

#include <utility>

#include "common/error.h"

namespace fluidfaas::sim {

EventId EventQueue::Schedule(SimTime when, EventFn fn) {
  FFS_CHECK_MSG(when >= 0, "cannot schedule before simulation start");
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Only mark if plausibly still pending; double-cancel returns false.
  auto [it, inserted] = cancelled_.insert(id);
  (void)it;
  if (inserted && live_count_ > 0) {
    --live_count_;
    return true;
  }
  return false;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    auto found = cancelled_.find(heap_.top().id);
    if (found == cancelled_.end()) return;
    cancelled_.erase(found);
    heap_.pop();
  }
}

SimTime EventQueue::PeekTime() {
  SkipCancelled();
  return heap_.empty() ? kTimeInfinity : heap_.top().time;
}

EventQueue::Fired EventQueue::Pop() {
  SkipCancelled();
  FFS_CHECK_MSG(!heap_.empty(), "Pop() on empty event queue");
  // priority_queue::top() is const; the entry is copied out. The closure is
  // small (captures ids / pointers), so the copy is cheap relative to event
  // processing.
  Entry e = heap_.top();
  heap_.pop();
  --live_count_;
  return Fired{e.time, e.id, std::move(e.fn)};
}

}  // namespace fluidfaas::sim
