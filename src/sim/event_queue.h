// Pending-event set for the discrete-event simulator.
//
// A binary min-heap keyed on (time, sequence). The sequence number makes
// ordering of simultaneous events FIFO and therefore deterministic across
// runs and platforms — a requirement for reproducible figures.
// Cancellation is supported by tombstoning: O(1) cancel, lazily skipped at
// pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace fluidfaas::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedule `fn` to fire at absolute time `when`. Returns a handle that
  /// can be passed to Cancel().
  EventId Schedule(SimTime when, EventFn fn);

  /// Cancel a pending event. Returns false if the event already fired or
  /// was already cancelled. O(1) amortized.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the next live event; kTimeInfinity when empty.
  SimTime PeekTime();

  /// Pop and return the next live event. Requires !empty().
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Fired Pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  struct Later {
    // Min-heap: smaller (time, id) first. std::priority_queue is a max-heap,
    // so the comparator is reversed.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace fluidfaas::sim
