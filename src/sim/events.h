// The typed event vocabulary of the simulation, published on the EventBus.
//
// Every observable state change of a run — request lifecycle, instance
// lifecycle, per-slice occupancy, the Fig. 8 scheduler transitions, and
// runtime GPU repartitions — is announced as one of these structs. Event
// publication is synchronous and in simulated-time order, so subscribers
// (metrics::Recorder, metrics::TraceExporter, tests) observe exactly the
// sequence the platform executed, and attaching or detaching a subscriber
// can never perturb the simulation itself.
//
// The structs use only common/types vocabulary so any layer above sim can
// publish or subscribe without new dependencies.
#pragma once

#include <string>

#include "common/types.h"

namespace fluidfaas::sim {

// --- request lifecycle -----------------------------------------------------

/// Where a request's wall-clock went; mirrors metrics::RequestRecord fields.
enum class RequestPhase { kQueue, kLoad, kExec, kTransfer };

constexpr const char* Name(RequestPhase p) {
  switch (p) {
    case RequestPhase::kQueue:
      return "queue";
    case RequestPhase::kLoad:
      return "load";
    case RequestPhase::kExec:
      return "exec";
    case RequestPhase::kTransfer:
      return "transfer";
  }
  return "?";
}

/// A request entered the platform (deadline = arrival + SLO).
struct RequestSubmitted {
  RequestId rid;
  FunctionId fn;
  SimTime at = 0;
  SimTime deadline = 0;
};

/// A request spent `amount` more simulated time in `phase`.
struct RequestPhaseAccrued {
  RequestId rid;
  RequestPhase phase = RequestPhase::kQueue;
  SimDuration amount = 0;
  SimTime at = 0;
};

/// A request left the last pipeline stage.
struct RequestCompleted {
  RequestId rid;
  FunctionId fn;
  SimTime at = 0;
};

// --- instance lifecycle ----------------------------------------------------

/// Mirror of platform::InstanceState, kept here so subscribers below the
/// platform layer can name instance phases without depending on it.
enum class InstancePhase { kLoading, kReady, kDraining, kRetired };

constexpr const char* Name(InstancePhase p) {
  switch (p) {
    case InstancePhase::kLoading:
      return "loading";
    case InstancePhase::kReady:
      return "ready";
    case InstancePhase::kDraining:
      return "draining";
    case InstancePhase::kRetired:
      return "retired";
  }
  return "?";
}

struct InstanceStateChanged {
  InstanceId iid;
  FunctionId fn;
  InstancePhase from = InstancePhase::kLoading;
  InstancePhase to = InstancePhase::kLoading;
  SimTime at = 0;
};

// --- slice occupancy -------------------------------------------------------

/// A MIG slice was allocated to an instance ("bound"/occupied).
struct SliceBound {
  SliceId slice;
  InstanceId iid;
  SimTime at = 0;
};

struct SliceReleased {
  SliceId slice;
  InstanceId iid;
  SimTime at = 0;
};

/// A stage began computing on its slice ("busy"/actively used).
struct SliceBusyBegin {
  SliceId slice;
  InstanceId iid;
  SimTime at = 0;
};

struct SliceBusyEnd {
  SliceId slice;
  InstanceId iid;
  SimTime at = 0;
};

// --- scheduler state transitions (Fig. 8) ----------------------------------

/// The hotness-state moves of §5.3: ② promotion to exclusive-hot,
/// ③ demotion to time sharing, ④ eviction to CPU-warm, ⑤ cold drop, plus
/// the pipeline → monolithic migration.
enum class TransitionKind {
  kPromotion,
  kDemotion,
  kEviction,
  kMigration,
  kColdDrop,
};

constexpr const char* Name(TransitionKind k) {
  switch (k) {
    case TransitionKind::kPromotion:
      return "promotion";
    case TransitionKind::kDemotion:
      return "demotion";
    case TransitionKind::kEviction:
      return "eviction";
    case TransitionKind::kMigration:
      return "migration";
    case TransitionKind::kColdDrop:
      return "cold-drop";
  }
  return "?";
}

struct SchedulerTransition {
  TransitionKind kind = TransitionKind::kPromotion;
  FunctionId fn;
  InstanceId iid;  // invalid when the transition has no live instance
  SimTime at = 0;
};

// --- runtime repartitioning ------------------------------------------------

/// A GPU was repartitioned at runtime (Repartition baseline); `blackout`
/// is how long the fresh slices stay sentinel-bound.
struct PartitionReconfigured {
  GpuId gpu;
  SimTime at = 0;
  std::string partition;
  SimDuration blackout = 0;
};

}  // namespace fluidfaas::sim
