// The typed event vocabulary of the simulation, published on the EventBus.
//
// Every observable state change of a run — request lifecycle, instance
// lifecycle, per-slice occupancy, the Fig. 8 scheduler transitions, and
// runtime GPU repartitions — is announced as one of these structs. Event
// publication is synchronous and in simulated-time order, so subscribers
// (metrics::Recorder, metrics::TraceExporter, tests) observe exactly the
// sequence the platform executed, and attaching or detaching a subscriber
// can never perturb the simulation itself.
//
// The structs use only common/types vocabulary so any layer above sim can
// publish or subscribe without new dependencies.
#pragma once

#include <string>

#include "common/types.h"

namespace fluidfaas::sim {

// --- request lifecycle -----------------------------------------------------

/// Where a request's wall-clock went; mirrors metrics::RequestRecord fields.
enum class RequestPhase { kQueue, kLoad, kExec, kTransfer };

constexpr const char* Name(RequestPhase p) {
  switch (p) {
    case RequestPhase::kQueue:
      return "queue";
    case RequestPhase::kLoad:
      return "load";
    case RequestPhase::kExec:
      return "exec";
    case RequestPhase::kTransfer:
      return "transfer";
  }
  return "?";
}

/// A request entered the platform (deadline = arrival + SLO).
struct RequestSubmitted {
  RequestId rid;
  FunctionId fn;
  SimTime at = 0;
  SimTime deadline = 0;
};

/// A request spent `amount` more simulated time in `phase`.
struct RequestPhaseAccrued {
  RequestId rid;
  RequestPhase phase = RequestPhase::kQueue;
  SimDuration amount = 0;
  SimTime at = 0;
};

/// A request left the last pipeline stage.
struct RequestCompleted {
  RequestId rid;
  FunctionId fn;
  SimTime at = 0;
};

// --- instance lifecycle ----------------------------------------------------

/// Mirror of platform::InstanceState, kept here so subscribers below the
/// platform layer can name instance phases without depending on it.
enum class InstancePhase { kLoading, kReady, kDraining, kRetired, kFailed };

constexpr const char* Name(InstancePhase p) {
  switch (p) {
    case InstancePhase::kLoading:
      return "loading";
    case InstancePhase::kReady:
      return "ready";
    case InstancePhase::kDraining:
      return "draining";
    case InstancePhase::kRetired:
      return "retired";
    case InstancePhase::kFailed:
      return "failed";
  }
  return "?";
}

struct InstanceStateChanged {
  InstanceId iid;
  FunctionId fn;
  InstancePhase from = InstancePhase::kLoading;
  InstancePhase to = InstancePhase::kLoading;
  SimTime at = 0;
};

// --- slice occupancy -------------------------------------------------------

/// A MIG slice was allocated to an instance ("bound"/occupied).
struct SliceBound {
  SliceId slice;
  InstanceId iid;
  SimTime at = 0;
};

struct SliceReleased {
  SliceId slice;
  InstanceId iid;
  SimTime at = 0;
};

/// A stage began computing on its slice ("busy"/actively used).
struct SliceBusyBegin {
  SliceId slice;
  InstanceId iid;
  SimTime at = 0;
};

struct SliceBusyEnd {
  SliceId slice;
  InstanceId iid;
  SimTime at = 0;
};

// --- scheduler state transitions (Fig. 8) ----------------------------------

/// The hotness-state moves of §5.3: ② promotion to exclusive-hot,
/// ③ demotion to time sharing, ④ eviction to CPU-warm, ⑤ cold drop, plus
/// the pipeline → monolithic migration.
enum class TransitionKind {
  kPromotion,
  kDemotion,
  kEviction,
  kMigration,
  kColdDrop,
};

constexpr const char* Name(TransitionKind k) {
  switch (k) {
    case TransitionKind::kPromotion:
      return "promotion";
    case TransitionKind::kDemotion:
      return "demotion";
    case TransitionKind::kEviction:
      return "eviction";
    case TransitionKind::kMigration:
      return "migration";
    case TransitionKind::kColdDrop:
      return "cold-drop";
  }
  return "?";
}

struct SchedulerTransition {
  TransitionKind kind = TransitionKind::kPromotion;
  FunctionId fn;
  InstanceId iid;  // invalid when the transition has no live instance
  SimTime at = 0;
};

// --- fault injection & recovery --------------------------------------------

/// The fault taxonomy of the failure model (DESIGN.md "Failure model").
enum class FaultKind {
  kInstanceCrash,     // a running instance's process dies
  kSliceFailure,      // a MIG slice becomes unusable until repaired
  kColdStartFailure,  // the next cold start crashes at the end of loading
  kSlowStart,         // the next instance launch loads k× slower
};

constexpr const char* Name(FaultKind k) {
  switch (k) {
    case FaultKind::kInstanceCrash:
      return "instance-crash";
    case FaultKind::kSliceFailure:
      return "slice-failure";
    case FaultKind::kColdStartFailure:
      return "cold-start-failure";
    case FaultKind::kSlowStart:
      return "slow-start";
  }
  return "?";
}

// Fault *commands*, published by sim::FaultInjector and consumed by the
// platform's recovery machinery. The injector deals only in ids, so the sim
// layer stays below the platform; a command naming a dead/retired entity is
// ignored by the subscriber (the injection still counts, deterministically).

/// Crash the named instance now (all in-flight work on it is lost).
struct InstanceCrashRequested {
  InstanceId iid;
  SimTime at = 0;
};

/// Fail a MIG slice for `repair` of simulated time. If the slice is bound,
/// its occupant instance crashes with it (strong isolation: only that one
/// instance is affected).
struct SliceFailureRequested {
  SliceId slice;
  SimTime at = 0;
  SimDuration repair = 0;
};

/// Arm a cold-start failure: the next cold instance launch crashes when its
/// load completes (the load time is wasted).
struct ColdStartFailureArmed {
  SimTime at = 0;
};

/// Arm a slow-start straggler: the next instance launch loads factor× slower.
struct SlowStartArmed {
  double factor = 1.0;
  SimTime at = 0;
};

// Fault *observations*, published by the platform as recovery unfolds so
// metrics/tracing see the availability story without platform dependencies.

/// An instance failed (crash, slice loss, or doomed cold start).
struct InstanceFailed {
  InstanceId iid;
  FunctionId fn;
  FaultKind cause = FaultKind::kInstanceCrash;
  SimTime at = 0;
};

/// A slice became unallocatable; expected back at `at + repair`.
struct SliceFailed {
  SliceId slice;
  SimTime at = 0;
  SimDuration repair = 0;
};

struct SliceRepaired {
  SliceId slice;
  SimTime at = 0;
};

/// A request exceeded its enforcement timeout. Mid-queue expiry cancels the
/// request outright (it never completes); mid-execution expiry lets the pass
/// finish but the request no longer counts toward goodput.
struct RequestTimedOut {
  RequestId rid;
  FunctionId fn;
  bool mid_execution = false;
  SimTime at = 0;
};

/// A failed request is being retried (attempt = failures so far). `resume`
/// is true when the retry re-enters a pipeline at the failed stage instead
/// of replaying completed stages.
struct RequestRetried {
  RequestId rid;
  FunctionId fn;
  int attempt = 0;
  bool resume = false;
  SimTime at = 0;
};

/// The retry policy gave up on a request; it will never complete.
struct RequestAbandoned {
  RequestId rid;
  FunctionId fn;
  int attempts = 0;
  SimTime at = 0;
};

// --- QoS: admission control & queueing (DESIGN.md §9) ----------------------

/// Why the admission controller refused a request. kNone means admitted;
/// the other causes are terminal — a rejected request never completes.
enum class RejectCause {
  kNone,                // admitted
  kQueueFull,           // pending-queue depth cap exceeded
  kRateLimited,         // token bucket empty at submission
  kDeadlineInfeasible,  // could not meet its SLO even if dispatched now
};

constexpr const char* Name(RejectCause c) {
  switch (c) {
    case RejectCause::kNone:
      return "none";
    case RejectCause::kQueueFull:
      return "queue-full";
    case RejectCause::kRateLimited:
      return "rate-limited";
    case RejectCause::kDeadlineInfeasible:
      return "deadline-infeasible";
  }
  return "?";
}

/// Number of RejectCause values (for per-cause counter arrays).
inline constexpr int kNumRejectCauses =
    static_cast<int>(RejectCause::kDeadlineInfeasible) + 1;

/// The admission controller refused a request. `at_submit` distinguishes
/// submission-time rejection (rate limit, full queue) from dispatch-time
/// shedding of work that already blew its deadline budget.
struct RequestRejected {
  RequestId rid;
  FunctionId fn;
  RejectCause cause = RejectCause::kNone;
  bool at_submit = true;
  SimTime at = 0;
};

/// The platform's central pending-queue depth changed — the backpressure
/// signal autoscalers and observers consume. Published after every batch of
/// enqueues/dispatches, not per item.
struct PendingDepthChanged {
  std::size_t depth = 0;
  SimTime at = 0;
};

// --- placement transactions (DESIGN.md §8) ---------------------------------

/// Why a placement plan failed validation at commit time. The taxonomy is
/// exactly the set of ways live state can drift from the ClusterView a plan
/// was built on: slices retire (repartition), fail, or get taken by a
/// concurrent planner; eviction/drain victims vanish or pick up work.
enum class PlanAbortCause {
  kNone,          // committed
  kSliceRetired,  // a reserved slice id was retired by a repartition
  kSliceFailed,   // a reserved slice faulted between plan and commit
  kSliceConflict, // a reserved slice was bound by someone else meanwhile
  kVictimGone,    // an evict/drain victim already retired or failed
  kVictimBusy,    // an evict victim picked up work and is no longer idle
  kGpuNotIdle,    // a repartition target has bound slices
};

constexpr const char* Name(PlanAbortCause c) {
  switch (c) {
    case PlanAbortCause::kNone:
      return "none";
    case PlanAbortCause::kSliceRetired:
      return "slice-retired";
    case PlanAbortCause::kSliceFailed:
      return "slice-failed";
    case PlanAbortCause::kSliceConflict:
      return "slice-conflict";
    case PlanAbortCause::kVictimGone:
      return "victim-gone";
    case PlanAbortCause::kVictimBusy:
      return "victim-busy";
    case PlanAbortCause::kGpuNotIdle:
      return "gpu-not-idle";
  }
  return "?";
}

/// Number of PlanAbortCause values (for per-cause counter arrays).
inline constexpr int kNumPlanAbortCauses =
    static_cast<int>(PlanAbortCause::kGpuNotIdle) + 1;

/// A placement plan passed validation and was applied atomically.
struct PlacementCommitted {
  int actions = 0;  // total actions in the plan
  int spawns = 0;   // instances launched by the plan
  SimTime at = 0;
};

/// A placement plan failed validation; nothing was applied.
struct PlacementAborted {
  PlanAbortCause cause = PlanAbortCause::kNone;
  int actions = 0;
  SimTime at = 0;
};

// --- runtime repartitioning ------------------------------------------------

/// A GPU was repartitioned at runtime (Repartition baseline); `blackout`
/// is how long the fresh slices stay sentinel-bound.
struct PartitionReconfigured {
  GpuId gpu;
  SimTime at = 0;
  std::string partition;
  SimDuration blackout = 0;
};

}  // namespace fluidfaas::sim
