#include "sim/fault_injector.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/logging.h"
#include "sim/events.h"

namespace fluidfaas::sim {

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(plan), rng_(plan.seed) {
  FFS_CHECK_MSG(plan_.rate >= 0.0, "fault rate must be non-negative");
  FFS_CHECK_MSG(plan_.mttr > 0, "mttr must be positive");
}

FaultInjector::~FaultInjector() { Stop(); }

void FaultInjector::Start() {
  FFS_CHECK_MSG(!running_, "FaultInjector started twice");
  if (plan_.rate <= 0.0) return;  // strict no-op: no events, no subscriptions
  running_ = true;

  // Track the live-instance population through the same events every other
  // observer sees. SliceBound is the creation signal (every instance binds
  // at least one slice before serving); retirement/failure removes it.
  subs_.push_back(sim_.bus().SubscribeScoped<SliceBound>(
      [this](const SliceBound& e) { live_instances_.insert(e.iid.value); }));
  subs_.push_back(sim_.bus().SubscribeScoped<InstanceStateChanged>(
      [this](const InstanceStateChanged& e) {
        if (e.to == InstancePhase::kRetired || e.to == InstancePhase::kFailed) {
          live_instances_.erase(e.iid.value);
        }
      }));
  Arm();
}

void FaultInjector::Stop() {
  if (pending_ != 0) {
    sim_.Cancel(pending_);
    pending_ = 0;
  }
  subs_.clear();  // scoped handles unsubscribe on destruction
  live_instances_.clear();
  running_ = false;
}

void FaultInjector::Arm() {
  const double gap_s = rng_.Exponential(plan_.rate);
  const SimTime when =
      sim_.Now() + std::max<SimDuration>(1, Seconds(gap_s));
  if (plan_.horizon > 0 && when >= plan_.horizon) {
    running_ = false;
    pending_ = 0;
    return;
  }
  pending_ = sim_.At(when, [this] {
    pending_ = 0;
    Fire();
    if (running_) Arm();
  });
}

void FaultInjector::Fire() {
  const double wsum = plan_.weight_instance_crash + plan_.weight_slice_failure +
                      plan_.weight_cold_start_failure + plan_.weight_slow_start;
  FFS_CHECK_MSG(wsum > 0.0, "all fault-kind weights are zero");
  // Every branch below consumes the same RNG draws whether or not a victim
  // exists, so the disruption schedule is a pure function of the seed.
  const double pick = rng_.NextDouble() * wsum;
  const SimTime now = sim_.Now();
  ++injected_;
  if (pick < plan_.weight_instance_crash) {
    ++by_kind_[static_cast<std::size_t>(FaultKind::kInstanceCrash)];
    const std::uint64_t draw = rng_.Next();
    if (!live_instances_.empty()) {
      auto it = live_instances_.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           draw % live_instances_.size()));
      FFS_LOG_DEBUG("faults") << "inject instance-crash on instance " << *it;
      sim_.bus().Publish(InstanceCrashRequested{InstanceId(*it), now});
    }
    return;
  }
  if (pick < plan_.weight_instance_crash + plan_.weight_slice_failure) {
    ++by_kind_[static_cast<std::size_t>(FaultKind::kSliceFailure)];
    const std::uint64_t draw = rng_.Next();
    const double repair_s = rng_.Exponential(1.0 / ToSeconds(plan_.mttr));
    if (plan_.num_slices > 0) {
      const auto sid = static_cast<std::int32_t>(
          draw % static_cast<std::uint64_t>(plan_.num_slices));
      const SimDuration repair =
          std::max<SimDuration>(Millis(1), Seconds(repair_s));
      FFS_LOG_DEBUG("faults") << "inject slice-failure on slice " << sid
                              << " (repair " << ToSeconds(repair) << "s)";
      sim_.bus().Publish(SliceFailureRequested{SliceId(sid), now, repair});
    }
    return;
  }
  if (pick < plan_.weight_instance_crash + plan_.weight_slice_failure +
                 plan_.weight_cold_start_failure) {
    ++by_kind_[static_cast<std::size_t>(FaultKind::kColdStartFailure)];
    FFS_LOG_DEBUG("faults") << "inject cold-start-failure (armed)";
    sim_.bus().Publish(ColdStartFailureArmed{now});
    return;
  }
  ++by_kind_[static_cast<std::size_t>(FaultKind::kSlowStart)];
  FFS_LOG_DEBUG("faults") << "inject slow-start (factor "
                          << plan_.slow_start_factor << ")";
  sim_.bus().Publish(SlowStartArmed{plan_.slow_start_factor, now});
}

}  // namespace fluidfaas::sim
