// Deterministic fault injection for simulation runs.
//
// The injector draws fault arrival times from a Poisson process (its own
// Rng, seeded independently of the workload and the platform so the same
// `--fault-seed` replays the same disruption schedule against any
// scheduler) and publishes fault *commands* on the EventBus — instance
// crash, slice failure, cold-start failure, slow-start straggler (see
// sim/events.h). It never touches platform state directly: the platform's
// recovery machinery subscribes to the commands and applies them, so the
// sim layer stays below the platform in the dependency order.
//
// Victim selection is id-based and deterministic. Live instances and their
// ids are tracked through the same bus events every other observer sees
// (SliceBound / InstanceStateChanged); slice faults are drawn uniformly
// from the initial slice-id space given in the plan. A command that names
// an entity that has since died is dropped by the subscriber — the RNG
// consumption is identical either way, so runs stay reproducible.
//
// With rate == 0 the injector schedules nothing and subscribes to nothing:
// attaching it is a strict no-op, which is what lets `--fault-rate 0`
// reproduce fault-free runs bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/event_bus.h"
#include "sim/events.h"
#include "sim/simulator.h"

namespace fluidfaas::sim {

/// The disruption schedule: how often faults arrive, what mix, how long
/// repairs take. All stochastic choices flow through `seed`.
struct FaultPlan {
  /// Mean fault arrivals per simulated second across the whole cluster;
  /// 0 disables injection entirely.
  double rate = 0.0;

  /// RNG seed for the injector's private stream.
  std::uint64_t seed = 20260807;

  /// Mean time to repair a failed slice (exponentially distributed).
  SimDuration mttr = Seconds(30.0);

  /// No faults are injected at or after this simulated time (keep it at the
  /// trace end so the drain phase can actually drain).
  SimTime horizon = 0;

  /// Size of the initial slice-id space slice faults are drawn from
  /// (cluster.num_slices() at construction; slices minted later by runtime
  /// repartitions are not targeted directly).
  int num_slices = 0;

  /// Relative weights of the fault kinds (normalized internally).
  double weight_instance_crash = 0.45;
  double weight_slice_failure = 0.25;
  double weight_cold_start_failure = 0.15;
  double weight_slow_start = 0.15;

  /// Load-time multiplier for slow-start stragglers.
  double slow_start_factor = 4.0;
};

class FaultInjector {
 public:
  FaultInjector(Simulator& sim, FaultPlan plan);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Begin injecting (no-op when plan.rate == 0). Call before the run.
  void Start();

  /// Cancel any pending injection and detach every bus subscription; the
  /// injector can be destroyed or left idle afterwards.
  void Stop();

  bool running() const { return running_; }

  /// Commands published so far, by kind (index = FaultKind).
  std::size_t injected() const { return injected_; }
  std::size_t injected(FaultKind k) const {
    return by_kind_[static_cast<std::size_t>(k)];
  }

  /// Live instances currently visible to victim selection (tests).
  std::size_t tracked_instances() const { return live_instances_.size(); }

 private:
  void Arm();
  void Fire();

  Simulator& sim_;
  FaultPlan plan_;
  Rng rng_;
  bool running_ = false;
  EventId pending_ = 0;
  std::size_t injected_ = 0;
  std::array<std::size_t, 4> by_kind_{};

  // Live-instance population, fed purely by bus events. Ordered so that
  // index-based victim picks are deterministic.
  std::set<std::int32_t> live_instances_;
  std::vector<EventBus::Subscription> subs_;
};

}  // namespace fluidfaas::sim
