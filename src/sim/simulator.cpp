#include "sim/simulator.h"

#include <utility>

#include "common/error.h"

namespace fluidfaas::sim {

EventId Simulator::At(SimTime when, EventFn fn) {
  FFS_CHECK_MSG(when >= now_, "cannot schedule into the past");
  return queue_.Schedule(when, std::move(fn));
}

EventId Simulator::After(SimDuration delay, EventFn fn) {
  FFS_CHECK_MSG(delay >= 0, "negative delay");
  return queue_.Schedule(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) { return queue_.Cancel(id); }

bool Simulator::Step(SimTime horizon) {
  if (queue_.empty()) return false;
  if (queue_.PeekTime() > horizon) return false;
  auto fired = queue_.Pop();
  FFS_CHECK(fired.time >= now_);
  now_ = fired.time;
  ++executed_;
  fired.fn();
  return true;
}

std::uint64_t Simulator::RunUntil(SimTime horizon) {
  std::uint64_t n = 0;
  while (Step(horizon)) ++n;
  // Advance the clock to the horizon even if no event landed exactly there,
  // so samplers closing at RunUntil()'s return observe the full window —
  // but never move backwards and never to infinity.
  if (horizon != kTimeInfinity && horizon > now_) now_ = horizon;
  return n;
}

PeriodicTask::PeriodicTask(Simulator& sim, SimDuration period, EventFn fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  FFS_CHECK(period_ > 0);
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start(SimTime first_fire) {
  FFS_CHECK_MSG(!running_, "PeriodicTask already running");
  running_ = true;
  Arm(first_fire);
}

void PeriodicTask::Arm(SimTime when) {
  pending_ = sim_.At(when, [this] {
    if (!running_) return;
    fn_();
    if (running_) Arm(sim_.Now() + period_);
  });
}

void PeriodicTask::Stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    sim_.Cancel(pending_);
    pending_ = 0;
  }
}

}  // namespace fluidfaas::sim
