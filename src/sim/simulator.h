// The simulation executive: owns the clock and the event queue, and runs
// events in nondecreasing time order until a horizon or quiescence.
//
// All platform components (controllers, invokers, instances) hold a
// Simulator& and express behaviour as scheduled callbacks; no component ever
// advances time itself.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "sim/event_bus.h"
#include "sim/event_queue.h"

namespace fluidfaas::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  /// The run's typed publish/subscribe bus (see sim/events.h). Components
  /// publish structured state changes here; observers (metrics, tracing)
  /// subscribe instead of being threaded by reference through every layer.
  EventBus& bus() { return bus_; }
  const EventBus& bus() const { return bus_; }

  /// Schedule at an absolute time (must be >= Now()).
  EventId At(SimTime when, EventFn fn);

  /// Schedule after a relative delay (>= 0).
  EventId After(SimDuration delay, EventFn fn);

  /// Cancel a pending event; false if it already fired / was cancelled.
  bool Cancel(EventId id);

  /// Run until the queue drains or the clock would pass `horizon`
  /// (events at exactly `horizon` still fire). Returns the number of
  /// events executed.
  std::uint64_t RunUntil(SimTime horizon);

  /// Run until quiescence (empty queue).
  std::uint64_t Run() { return RunUntil(kTimeInfinity); }

  /// Execute at most one pending event; returns false if none remained or
  /// the next event lies beyond `horizon`.
  bool Step(SimTime horizon = kTimeInfinity);

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  EventBus bus_;
  std::uint64_t executed_ = 0;
};

/// Helper that re-arms itself every `period` until Stop(); used for
/// utilization sampling and controller scan loops.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimDuration period, EventFn fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start(SimTime first_fire);
  void Stop();
  bool running() const { return running_; }

 private:
  void Arm(SimTime when);

  Simulator& sim_;
  SimDuration period_;
  EventFn fn_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace fluidfaas::sim
