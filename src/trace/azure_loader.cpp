#include "trace/azure_loader.h"

#include <algorithm>
#include <istream>
#include <sstream>

#include "common/error.h"

namespace fluidfaas::trace {

std::vector<AzureDatasetRow> LoadAzureDataset(std::istream& in) {
  // Every parse failure raises ErrorCode::kMalformedTrace with the 1-based
  // line number, so callers (the CLI, tests) can dispatch on the code
  // instead of matching message strings.
  std::vector<AzureDatasetRow> rows;
  std::string line;
  bool header_seen = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (line.empty()) continue;
    if (!header_seen) {
      header_seen = true;
      if (line.rfind("HashOwner", 0) != 0) {
        RaiseError(ErrorCode::kMalformedTrace,
                   "not an Azure dataset file (missing HashOwner header)");
      }
      continue;
    }
    std::stringstream ss(line);
    AzureDatasetRow row;
    std::string tok;
    if (!(std::getline(ss, row.owner_hash, ',') &&
          std::getline(ss, row.app_hash, ',') &&
          std::getline(ss, row.function_hash, ',') &&
          std::getline(ss, row.trigger, ','))) {
      RaiseError(ErrorCode::kMalformedTrace,
                 "truncated Azure dataset row (need owner,app,function,"
                 "trigger) at line " +
                     std::to_string(lineno) + ": " + line);
    }
    while (std::getline(ss, tok, ',')) {
      if (tok.empty()) {
        row.per_minute.push_back(0);
        continue;
      }
      std::size_t pos = 0;
      int count = -1;
      try {
        count = std::stoi(tok, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos != tok.size() || count < 0) {
        RaiseError(ErrorCode::kMalformedTrace,
                   "bad invocation count '" + tok + "' at line " +
                       std::to_string(lineno));
      }
      row.per_minute.push_back(count);
      row.total += static_cast<std::uint64_t>(count);
    }
    if (row.per_minute.size() > 1440) {
      RaiseError(ErrorCode::kMalformedTrace,
                 "more than 1440 minute buckets (" +
                     std::to_string(row.per_minute.size()) + ") at line " +
                     std::to_string(lineno));
    }
    rows.push_back(std::move(row));
  }
  if (!header_seen) {
    RaiseError(ErrorCode::kMalformedTrace,
               "empty Azure dataset (no header line)");
  }
  return rows;
}

Trace ExpandAzureDataset(const std::vector<AzureDatasetRow>& rows,
                         const AzureExpandOptions& options) {
  FFS_CHECK(options.num_functions >= 1);
  FFS_CHECK(options.minutes >= 1);
  FFS_CHECK(options.count_scale > 0.0);

  // Rank by total volume; rank order becomes FunctionId order, matching the
  // heavy-tailed popularity the synthesizer models.
  std::vector<const AzureDatasetRow*> ranked;
  ranked.reserve(rows.size());
  for (const auto& r : rows) ranked.push_back(&r);
  std::sort(ranked.begin(), ranked.end(),
            [](const AzureDatasetRow* a, const AzureDatasetRow* b) {
              if (a->total != b->total) return a->total > b->total;
              return a->function_hash < b->function_hash;
            });
  const int n = std::min<int>(options.num_functions,
                              static_cast<int>(ranked.size()));
  FFS_CHECK_MSG(n >= 1, "dataset has no rows");

  Rng rng(options.seed);
  Trace trace;
  for (int f = 0; f < n; ++f) {
    Rng frng = rng.Fork();
    const AzureDatasetRow& row = *ranked[static_cast<std::size_t>(f)];
    const int minutes = std::min<int>(
        options.minutes, static_cast<int>(row.per_minute.size()));
    for (int m = 0; m < minutes; ++m) {
      const double scaled =
          row.per_minute[static_cast<std::size_t>(m)] * options.count_scale;
      int count = static_cast<int>(scaled);
      if (frng.Chance(scaled - count)) ++count;  // stochastic rounding
      for (int k = 0; k < count; ++k) {
        const SimTime at =
            Seconds(60.0 * m) + frng.UniformInt(0, Seconds(60.0) - 1);
        trace.push_back(Invocation{at, FunctionId(f)});
      }
    }
  }
  SortTrace(trace);
  return trace;
}

}  // namespace fluidfaas::trace
