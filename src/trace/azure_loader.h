// Loader for the real Azure Functions 2019 dataset (Shahrad et al.,
// ATC '20) — the trace source the paper uses. The dataset's
// `invocations_per_function_md.anon.dNN.csv` files carry one row per
// function:
//
//   HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440
//
// where columns 1..1440 are invocation counts per minute of the day. This
// loader parses that schema, ranks functions by volume, and expands minute
// buckets into microsecond arrival times (uniformly within each minute, the
// finest statement the data supports), producing the same Trace the
// synthesizer emits — so the harness runs identically on real data when the
// dataset is available.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/trace.h"

namespace fluidfaas::trace {

struct AzureDatasetRow {
  std::string owner_hash;
  std::string app_hash;
  std::string function_hash;
  std::string trigger;
  std::vector<int> per_minute;  // up to 1440 buckets
  std::uint64_t total = 0;
};

/// Parse the dataset CSV (header required). Rows with non-numeric buckets
/// are rejected; missing trailing buckets are treated as zero.
std::vector<AzureDatasetRow> LoadAzureDataset(std::istream& in);

struct AzureExpandOptions {
  /// Take the top-N rows by total volume and map them onto platform
  /// functions 0..N-1 (rank order = FunctionId order).
  int num_functions = 4;
  /// Use the first `minutes` of the day.
  int minutes = 5;
  /// Scale every bucket count by this factor (the dataset's absolute
  /// volumes need scaling to a simulated cluster's capacity).
  double count_scale = 1.0;
  std::uint64_t seed = 1234;
};

/// Expand dataset rows into an arrival trace over
/// [0, options.minutes * 60 s). Arrival times within each minute bucket are
/// i.i.d. uniform; scaled fractional counts round stochastically so the
/// expected volume matches count_scale exactly.
Trace ExpandAzureDataset(const std::vector<AzureDatasetRow>& rows,
                         const AzureExpandOptions& options);

}  // namespace fluidfaas::trace
