#include "trace/trace.h"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace fluidfaas::trace {

std::vector<double> PopularityShares(int num_functions, double alpha,
                                     std::uint64_t seed) {
  FFS_CHECK(num_functions > 0);
  Rng rng(seed);
  std::vector<double> draws;
  draws.reserve(static_cast<std::size_t>(num_functions));
  for (int i = 0; i < num_functions; ++i) {
    draws.push_back(rng.Pareto(1.0, alpha));
  }
  const double sum = std::accumulate(draws.begin(), draws.end(), 0.0);
  for (double& d : draws) d /= sum;
  return draws;
}

Trace AzureLikeTrace(int num_functions, const AzureLikeParams& p) {
  const std::vector<double> shares =
      PopularityShares(num_functions, p.popularity_alpha, p.seed);
  Rng master(p.seed);

  // Normalize so the long-run mean multiplier of the burst process is 1.
  const double mean_mult =
      (p.mean_normal_s * 1.0 + p.mean_burst_s * p.burst_multiplier) /
      (p.mean_normal_s + p.mean_burst_s);

  Trace trace;
  for (int f = 0; f < num_functions; ++f) {
    Rng rng = master.Fork();
    const double base_rate =
        p.total_rps * shares[static_cast<std::size_t>(f)] / mean_mult;

    // Pre-draw the on/off burst timeline for this function.
    struct Phase {
      double until_s;
      double mult;
    };
    std::vector<Phase> phases;
    double t = 0.0;
    bool burst = rng.Chance(0.2);  // some functions start bursting
    while (t < ToSeconds(p.duration)) {
      const double len = burst ? rng.Exponential(1.0 / p.mean_burst_s)
                               : rng.Exponential(1.0 / p.mean_normal_s);
      t += len;
      phases.push_back({t, burst ? p.burst_multiplier : 1.0});
      burst = !burst;
    }
    auto rate_at = [&](double ts) {
      for (const Phase& ph : phases) {
        if (ts < ph.until_s) return base_rate * ph.mult;
      }
      return base_rate;
    };

    auto arrivals = PoissonArrivals(rate_at, base_rate * p.burst_multiplier,
                                    p.duration, rng);
    for (SimTime at : arrivals) {
      trace.push_back(Invocation{at, FunctionId(f)});
    }
  }
  SortTrace(trace);
  return trace;
}

void SortTrace(Trace& trace) {
  std::sort(trace.begin(), trace.end(),
            [](const Invocation& a, const Invocation& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.fn < b.fn;
            });
}

Trace LoadCsv(std::istream& in) {
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Skip a header line.
    if (!line.empty() && !std::isdigit(static_cast<unsigned char>(line[0]))) {
      continue;
    }
    std::stringstream ss(line);
    std::string time_tok, fn_tok;
    FFS_CHECK_MSG(std::getline(ss, time_tok, ',') &&
                      std::getline(ss, fn_tok, ','),
                  "malformed trace line: " + line);
    trace.push_back(Invocation{static_cast<SimTime>(std::stoll(time_tok)),
                               FunctionId(std::stoi(fn_tok))});
  }
  SortTrace(trace);
  return trace;
}

void SaveCsv(const Trace& trace, std::ostream& out) {
  out << "time_us,function_id\n";
  for (const Invocation& inv : trace) {
    out << inv.time << "," << inv.fn.value << "\n";
  }
}

double MeanRps(const Trace& trace, SimDuration duration) {
  if (duration <= 0) return 0.0;
  return static_cast<double>(trace.size()) / ToSeconds(duration);
}

}  // namespace fluidfaas::trace
