// Invocation traces.
//
// The paper drives its evaluation with invocation frequencies/intervals from
// the Azure Functions production traces (Shahrad et al., ATC '20). Those
// traces are not redistributable here, so AzureLikeTrace synthesizes
// arrivals with the published characteristics the schedulers are sensitive
// to: heavy-tailed per-function popularity, bursty on/off rate modulation,
// and Poisson micro-structure. A CSV loader accepts the real thing when
// available ("time_us,function_id" rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace fluidfaas::trace {

struct Invocation {
  SimTime time;
  FunctionId fn;
  bool operator==(const Invocation&) const = default;
};

using Trace = std::vector<Invocation>;

/// Non-homogeneous Poisson arrivals for one function via thinning:
/// `rate_fn(t)` gives the instantaneous rate (req/s) and must never exceed
/// `rate_cap`.
template <typename RateFn>
std::vector<SimTime> PoissonArrivals(RateFn&& rate_fn, double rate_cap,
                                     SimDuration duration, Rng& rng) {
  std::vector<SimTime> out;
  if (rate_cap <= 0.0) return out;
  double t = 0.0;
  const double end = ToSeconds(duration);
  while (true) {
    t += rng.Exponential(rate_cap);
    if (t >= end) break;
    if (rng.NextDouble() < rate_fn(t) / rate_cap) {
      out.push_back(Seconds(t));
    }
  }
  return out;
}

struct AzureLikeParams {
  /// Aggregate mean arrival rate across all functions (req/s).
  double total_rps = 10.0;
  SimDuration duration = Seconds(300);
  /// Pareto shape for per-function popularity (smaller = heavier tail).
  double popularity_alpha = 1.2;
  /// Burst modulation: functions alternate normal/burst periods.
  double burst_multiplier = 2.0;
  double mean_normal_s = 30.0;
  double mean_burst_s = 8.0;
  std::uint64_t seed = 1234;
};

/// Synthesize a trace over `num_functions` functions. The realized mean
/// aggregate rate converges to total_rps; burst structure rides on top.
Trace AzureLikeTrace(int num_functions, const AzureLikeParams& params);

/// Per-function share of the aggregate rate used by AzureLikeTrace with
/// the same seed (normalized Pareto draws) — exposed for tests and for
/// capacity planning in the workload builder.
std::vector<double> PopularityShares(int num_functions, double alpha,
                                     std::uint64_t seed);

/// CSV round-trip: "time_us,function_id" per line, header optional.
Trace LoadCsv(std::istream& in);
void SaveCsv(const Trace& trace, std::ostream& out);

/// Sort by (time, fn) — generators emit sorted traces; the loader sorts.
void SortTrace(Trace& trace);

/// Mean request rate of the trace over [0, duration].
double MeanRps(const Trace& trace, SimDuration duration);

}  // namespace fluidfaas::trace
