#include "trace/workload.h"

#include <numeric>

#include "common/error.h"
#include "model/zoo.h"

namespace fluidfaas::trace {

const char* Name(WorkloadTier tier) {
  switch (tier) {
    case WorkloadTier::kLight:
      return "light";
    case WorkloadTier::kMedium:
      return "medium";
    case WorkloadTier::kHeavy:
      return "heavy";
  }
  return "?";
}

model::Variant VariantOf(WorkloadTier tier) {
  switch (tier) {
    case WorkloadTier::kLight:
      return model::Variant::kSmall;
    case WorkloadTier::kMedium:
      return model::Variant::kMedium;
    case WorkloadTier::kHeavy:
      return model::Variant::kLarge;
  }
  return model::Variant::kSmall;
}

double DefaultLoadFactor(WorkloadTier tier) {
  switch (tier) {
    case WorkloadTier::kLight:
      return 0.25;
    case WorkloadTier::kMedium:
      return 0.52;
    case WorkloadTier::kHeavy:
      return 0.52;
  }
  return 0.35;
}

Workload MakeWorkload(WorkloadTier tier, const gpu::Cluster& cluster,
                      const WorkloadParams& params) {
  Workload w;
  w.tier = tier;
  const model::Variant variant = VariantOf(tier);

  int next_id = 0;
  for (int a = 0; a < model::kNumApps; ++a) {
    if (!model::IncludedInStudy(a, variant)) continue;
    w.functions.push_back(platform::MakeFunctionSpec(
        FunctionId(next_id++), a, variant, model::BuildApp(a, variant),
        params.slo_scale, params.max_stages));
  }
  FFS_CHECK(!w.functions.empty());

  // Ideal work-conserving throughput for this mix: total GPCs over the
  // popularity-weighted mean single-GPC demand (seconds of 1-GPC work).
  const int n = static_cast<int>(w.functions.size());
  const std::vector<double> shares = PopularityShares(n, 1.2, params.seed);
  double mean_demand_s = 0.0;
  for (int i = 0; i < n; ++i) {
    mean_demand_s += shares[static_cast<std::size_t>(i)] *
                     ToSeconds(w.functions[static_cast<std::size_t>(i)]
                                   .dag.TotalLatencyOnGpcs(1));
  }
  w.ideal_rps = static_cast<double>(cluster.TotalGpcs()) / mean_demand_s;

  const double factor =
      params.load_factor > 0 ? params.load_factor : DefaultLoadFactor(tier);
  w.offered_rps = factor * w.ideal_rps;

  AzureLikeParams tp;
  tp.total_rps = w.offered_rps;
  tp.duration = params.duration;
  tp.seed = params.seed;
  w.trace = AzureLikeTrace(n, tp);
  return w;
}

}  // namespace fluidfaas::trace
