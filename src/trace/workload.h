// Workload tiers (paper §6): light / medium / heavy run every application at
// its small / medium / large variant respectively, with aggregate arrival
// rates calibrated against the cluster's ideal compute capacity.
//
// "Ideal capacity" is the work-conserving bound: total GPCs divided by the
// mean single-GPC service demand of the tier's request mix. Tier load
// factors are chosen so that light leaves ample headroom everywhere,
// medium exceeds what a monolithic scheduler can deploy once 1g slices go
// unusable, and heavy exceeds it once only 4g slices remain usable —
// reproducing the regimes of §7.2.
#pragma once

#include <string>
#include <vector>

#include "gpu/cluster.h"
#include "model/app.h"
#include "platform/function.h"
#include "trace/trace.h"

namespace fluidfaas::trace {

enum class WorkloadTier { kLight = 0, kMedium = 1, kHeavy = 2 };

const char* Name(WorkloadTier tier);
model::Variant VariantOf(WorkloadTier tier);

/// Fraction of ideal cluster capacity offered by each tier.
double DefaultLoadFactor(WorkloadTier tier);

struct Workload {
  WorkloadTier tier;
  std::vector<platform::FunctionSpec> functions;
  Trace trace;
  double offered_rps = 0.0;
  double ideal_rps = 0.0;  // work-conserving cluster bound for this mix
};

struct WorkloadParams {
  double slo_scale = 1.5;
  SimDuration duration = Seconds(300);
  /// Overrides DefaultLoadFactor when > 0.
  double load_factor = 0.0;
  std::uint64_t seed = 1234;
  int max_stages = 4;
};

/// Build the tier's function set (the study apps at the tier's variant) and
/// a synthesized trace sized to the cluster.
Workload MakeWorkload(WorkloadTier tier, const gpu::Cluster& cluster,
                      const WorkloadParams& params);

}  // namespace fluidfaas::trace
