#include "baselines/esg_platform.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace fluidfaas::baselines {
namespace {

using platform::FunctionSpec;
using platform::InstanceState;
using platform::MakeFunctionSpec;
using platform::PlatformConfig;

std::vector<FunctionSpec> Functions(model::Variant v) {
  std::vector<FunctionSpec> fns;
  int id = 0;
  for (int a = 0; a < model::kNumApps; ++a) {
    if (!model::IncludedInStudy(a, v)) continue;
    fns.push_back(
        MakeFunctionSpec(FunctionId(id++), a, v, model::BuildApp(a, v), 1.5));
  }
  return fns;
}

template <typename PlatformT>
class BaselineFixture {
 public:
  BaselineFixture(model::Variant v, PlatformConfig config = {})
      : cluster_(gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition())),
        recorder_(cluster_),
        plat_(sim_, cluster_, recorder_, Functions(v), config) {
    plat_.Start();
  }

  sim::Simulator sim_;
  gpu::Cluster cluster_;
  metrics::Recorder recorder_;
  PlatformT plat_;
};

TEST(EsgPlatformTest, ServesAndCompletesRequests) {
  BaselineFixture<EsgPlatform> f(model::Variant::kSmall);
  for (int i = 0; i < 20; ++i) {
    f.sim_.At(Millis(100 * i), [&f] { f.plat_.Submit(FunctionId(0)); });
  }
  f.sim_.RunUntil(Seconds(60));
  EXPECT_EQ(f.recorder_.completed_requests(), 20u);
  EXPECT_GE(f.plat_.searches(), 1u);
}

TEST(EsgPlatformTest, InstancesAreAlwaysMonolithic) {
  BaselineFixture<EsgPlatform> f(model::Variant::kMedium);
  for (int i = 0; i < 50; ++i) {
    f.sim_.At(Millis(50 * i), [&f] { f.plat_.Submit(FunctionId(0)); });
  }
  f.sim_.RunUntil(Seconds(10));
  for (const auto& spec : f.plat_.functions()) {
    for (auto* inst : f.plat_.InstancesOf(spec.id)) {
      EXPECT_EQ(inst->plan().num_stages(), 1);
    }
  }
  f.sim_.RunUntil(Seconds(120));
}

TEST(EsgPlatformTest, MediumVariantsNeverLandOnOneGSlices) {
  // Medium functions need > 10 GB: 1g slices must stay unused — exactly
  // the fragmentation the paper describes (§7.2).
  BaselineFixture<EsgPlatform> f(model::Variant::kMedium);
  for (int i = 0; i < 200; ++i) {
    f.sim_.At(Millis(25 * i), [&f, i] {
      f.plat_.Submit(FunctionId(i % 4));
    });
  }
  f.sim_.RunUntil(Seconds(30));
  for (SliceId sid : f.cluster_.AllSlices()) {
    const auto& s = f.cluster_.slice(sid);
    if (s.profile() == gpu::MigProfile::k1g10gb) {
      EXPECT_TRUE(s.free()) << "1g slice bound in medium workload";
    }
  }
  f.sim_.RunUntil(Seconds(300));
}

TEST(EsgPlatformTest, ExclusiveKeepAliveHoldsSliceWhileIdle) {
  PlatformConfig config;
  config.exclusive_keepalive = Seconds(30);
  BaselineFixture<EsgPlatform> f(model::Variant::kSmall, config);
  f.plat_.Submit(FunctionId(0));
  f.sim_.RunUntil(Seconds(10));
  EXPECT_EQ(f.recorder_.completed_requests(), 1u);
  // Idle but within keep-alive: slice still bound.
  EXPECT_GT(f.cluster_.BoundGpcs(), 0);
  // After the keep-alive expires the slice is released.
  f.sim_.RunUntil(Seconds(60));
  EXPECT_EQ(f.cluster_.BoundGpcs(), 0);
}

TEST(EsgPlatformTest, ScaleUpAddsCapacityUnderLoad) {
  BaselineFixture<EsgPlatform> f(model::Variant::kSmall);
  // Sustained 40 rps on one function needs many instances.
  for (int i = 0; i < 400; ++i) {
    f.sim_.At(Millis(25 * i), [&f] { f.plat_.Submit(FunctionId(0)); });
  }
  f.sim_.RunUntil(Seconds(10));
  EXPECT_GE(f.plat_.InstancesOf(FunctionId(0)).size(), 3u);
  f.sim_.RunUntil(Seconds(300));
  EXPECT_EQ(f.recorder_.completed_requests(), 400u);
}

TEST(InflessPlatformTest, ServesAndCompletesRequests) {
  BaselineFixture<InflessPlatform> f(model::Variant::kSmall);
  for (int i = 0; i < 20; ++i) {
    f.sim_.At(Millis(100 * i), [&f, i] {
      f.plat_.Submit(FunctionId(i % 4));
    });
  }
  f.sim_.RunUntil(Seconds(120));
  EXPECT_EQ(f.recorder_.completed_requests(), 20u);
}

TEST(InflessPlatformTest, BestFitUsesSmallestFittingSlice) {
  BaselineFixture<InflessPlatform> f(model::Variant::kSmall);
  f.plat_.Submit(FunctionId(0));
  auto insts = f.plat_.InstancesOf(FunctionId(0));
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0]->plan().stages[0].profile, gpu::MigProfile::k1g10gb);
  f.sim_.RunUntil(Seconds(60));
}

TEST(InflessPlatformTest, MonolithicOnly) {
  BaselineFixture<InflessPlatform> f(model::Variant::kMedium);
  for (int i = 0; i < 100; ++i) {
    f.sim_.At(Millis(40 * i), [&f] { f.plat_.Submit(FunctionId(1)); });
  }
  f.sim_.RunUntil(Seconds(20));
  for (auto* inst : f.plat_.InstancesOf(FunctionId(1))) {
    EXPECT_EQ(inst->plan().num_stages(), 1);
  }
  f.sim_.RunUntil(Seconds(300));
}

TEST(BaselineComparisonTest, EsgRoutesWithSloAwareness) {
  // Both baselines complete the same workload; their instance placement
  // differs (ESG searches, INFless best-fits). This asserts both survive
  // a mixed run without starving anything.
  PlatformConfig config;
  for (auto variant : {model::Variant::kSmall, model::Variant::kMedium}) {
    BaselineFixture<EsgPlatform> esg(variant, config);
    BaselineFixture<InflessPlatform> inf(variant, config);
    for (int i = 0; i < 60; ++i) {
      esg.sim_.At(Millis(100 * i), [&esg, i] {
        esg.plat_.Submit(FunctionId(i % 3));
      });
      inf.sim_.At(Millis(100 * i), [&inf, i] {
        inf.plat_.Submit(FunctionId(i % 3));
      });
    }
    esg.sim_.RunUntil(Seconds(300));
    inf.sim_.RunUntil(Seconds(300));
    EXPECT_EQ(esg.recorder_.completed_requests(), 60u);
    EXPECT_EQ(inf.recorder_.completed_requests(), 60u);
  }
}

}  // namespace
}  // namespace fluidfaas::baselines
