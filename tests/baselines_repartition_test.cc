#include "baselines/repartition_platform.h"

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "model/zoo.h"

namespace fluidfaas::baselines {
namespace {

using platform::FunctionSpec;
using platform::MakeFunctionSpec;
using platform::PlatformConfig;

TEST(ClusterRepartitionTest, RetiresOldIdsAndMintsNewOnes) {
  auto cluster = gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition());
  const auto before = cluster.AllSlices();
  ASSERT_EQ(before.size(), 6u);
  const int old_gpcs = cluster.TotalGpcs();

  auto fresh = cluster.RepartitionGpu(
      GpuId(0), gpu::MigPartition::Parse("3g.40gb+3g.40gb"));
  ASSERT_EQ(fresh.size(), 2u);
  // Old ids 0..2 are dead; new ids appended.
  EXPECT_TRUE(cluster.IsDead(SliceId(0)));
  EXPECT_TRUE(cluster.IsDead(SliceId(2)));
  EXPECT_FALSE(cluster.IsDead(SliceId(3)));
  EXPECT_THROW(cluster.slice(SliceId(0)), FfsError);
  EXPECT_EQ(cluster.AllSlices().size(), 5u);  // 2 new + 3 on GPU 1
  EXPECT_EQ(cluster.TotalGpcs(), old_gpcs - 7 + 6);  // 3g+3g = 6 GPCs
  for (SliceId sid : fresh) {
    EXPECT_EQ(cluster.slice(sid).profile(), gpu::MigProfile::k3g40gb);
    EXPECT_TRUE(cluster.slice(sid).free());
  }
}

TEST(ClusterRepartitionTest, RefusesWithBoundSlices) {
  auto cluster = gpu::Cluster::Uniform(1, 1, gpu::DefaultPartition());
  cluster.Bind(SliceId(1), InstanceId(5));
  EXPECT_THROW(
      cluster.RepartitionGpu(GpuId(0), gpu::MigPartition::Parse("7g.80gb")),
      FfsError);
}

TEST(ClusterRepartitionTest, RecorderSyncTracksNewSlices) {
  auto cluster = gpu::Cluster::Uniform(1, 1, gpu::DefaultPartition());
  metrics::Recorder rec(cluster);
  auto fresh =
      cluster.RepartitionGpu(GpuId(0), gpu::MigPartition::Parse("7g.80gb"));
  rec.SyncSlices(cluster);
  rec.SliceBound(fresh[0], Seconds(1));
  rec.SliceBusy(fresh[0], Seconds(1));
  rec.SliceIdle(fresh[0], Seconds(3));
  rec.SliceReleased(fresh[0], Seconds(3));
  rec.Close(Seconds(4));
  EXPECT_EQ(rec.MigTime(), Seconds(2));
  EXPECT_EQ(rec.total_gpcs(), 7);
}

TEST(BestPartitionTest, PicksMostFittingSlices) {
  // A 35 GB demand: 3g.40gb+4g.40gb offers two fitting slices.
  const auto p = RepartitionPlatform::BestPartitionFor(GiB(35));
  EXPECT_EQ(p.Profiles(),
            (std::vector<gpu::MigProfile>{gpu::MigProfile::k3g40gb,
                                          gpu::MigProfile::k4g40gb}));
  // A 50 GB demand: only 7g.80gb fits.
  const auto q = RepartitionPlatform::BestPartitionFor(GiB(50));
  EXPECT_EQ(q.Profiles(),
            (std::vector<gpu::MigProfile>{gpu::MigProfile::k7g80gb}));
  // A tiny demand: every slice fits; the 1g x7 layout maximizes count.
  const auto r = RepartitionPlatform::BestPartitionFor(GiB(2));
  EXPECT_EQ(r.slice_count(), 7u);
}

class RepartitionPlatformTest : public ::testing::Test {
 protected:
  void Build(model::Variant v, const std::string& partition_spec =
                                   "4g.40gb+2g.20gb+1g.10gb") {
    cluster_ = std::make_unique<gpu::Cluster>(gpu::Cluster::Uniform(
        1, 2, gpu::MigPartition::Parse(partition_spec)));
    recorder_ = std::make_unique<metrics::Recorder>(*cluster_);
    std::vector<FunctionSpec> fns;
    fns.push_back(MakeFunctionSpec(FunctionId(0), 0, v, model::BuildApp(0, v),
                                   1.5));
    plat_ = std::make_unique<RepartitionPlatform>(
        sim_, *cluster_, *recorder_, std::move(fns), PlatformConfig{});
    plat_->Start();
  }

  sim::Simulator sim_;
  std::unique_ptr<gpu::Cluster> cluster_;
  std::unique_ptr<metrics::Recorder> recorder_;
  std::unique_ptr<RepartitionPlatform> plat_;
};

TEST_F(RepartitionPlatformTest, ServesWithoutReconfigWhenSlicesFit) {
  Build(model::Variant::kSmall);
  for (int i = 0; i < 10; ++i) {
    sim_.At(Millis(200) * i, [this] { plat_->Submit(FunctionId(0)); });
  }
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(recorder_->completed_requests(), 10u);
  EXPECT_EQ(plat_->reconfigurations(), 0u);
}

TEST_F(RepartitionPlatformTest, ReconfiguresWhenFragmentedOutAndPaysMinutes) {
  // Large variant needs a 40 GB slice, but every GPU is partitioned into
  // 2g/1g fragments: GPU reconfiguration is the only way out — and it
  // costs minutes of blackout before the first request can run.
  Build(model::Variant::kLarge, "2g.20gb+2g.20gb+2g.20gb+1g.10gb");
  for (int i = 0; i < 30; ++i) {
    sim_.At(Millis(500) * i, [this] { plat_->Submit(FunctionId(0)); });
  }
  sim_.RunUntil(Seconds(60));
  EXPECT_GE(plat_->reconfigurations(), 1u);
  EXPECT_EQ(recorder_->completed_requests(), 0u);  // inside the blackout
  sim_.RunUntil(Minutes(12));
  EXPECT_GE(plat_->reconfiguration_blackout(), Minutes(3));
  // After the blackout the reconfigured GPU serves the whole backlog.
  EXPECT_EQ(recorder_->completed_requests(), 30u);
}

TEST(RepartitionHarnessTest, RunsThroughTheHarness) {
  harness::ExperimentConfig cfg;
  cfg.system = harness::SystemKind::kRepartition;
  cfg.tier = trace::WorkloadTier::kLight;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 2;
  cfg.duration = Seconds(30);
  cfg.load_factor = 0.2;
  auto res = harness::RunExperiment(cfg);
  EXPECT_EQ(res.system, "Repartition");
  EXPECT_EQ(res.recorder->completed_requests(),
            res.recorder->total_requests());
}

}  // namespace
}  // namespace fluidfaas::baselines
