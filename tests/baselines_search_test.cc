#include "baselines/esg_search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/zoo.h"

namespace fluidfaas::baselines {
namespace {

model::AppDag Dag(Bytes per_comp, SimDuration t1, int k = 3) {
  std::vector<model::ComponentSpec> cs;
  std::vector<model::DagEdge> es;
  for (int i = 0; i < k; ++i) {
    model::ComponentSpec c;
    c.id = ComponentId(i);
    c.name = "c" + std::to_string(i);
    c.cls = model::ComponentClass::kClassification;
    c.weights = per_comp / 2;
    c.activations = per_comp - per_comp / 2;
    c.latency_1gpc = t1;
    c.serial_fraction = 0.0;
    c.output = model::TensorSpec({MiB(10)}, 1);
    cs.push_back(c);
    es.push_back({i - 1, i});
  }
  return model::AppDag("dag", std::move(cs), std::move(es));
}

std::vector<int> Free(int g1, int g2, int g3, int g4, int g7) {
  return {g1, g2, g3, g4, g7};
}

TEST(SliceOptionsTest, MemoryFitFiltersSmallProfiles) {
  // 3 x 5 GB = 15 GB total: 1g (10 GB) is OOM, 2g+ feasible.
  auto dag = Dag(GiB(5), Millis(100));
  auto opts = MakeSliceOptions(dag, Free(7, 3, 2, 1, 1), Seconds(10));
  for (const auto& o : opts) {
    EXPECT_NE(o.profile, gpu::MigProfile::k1g10gb);
    EXPECT_GE(gpu::MemBytes(o.profile), dag.TotalMemory());
  }
  EXPECT_EQ(opts.size(), 4u);
}

TEST(SliceOptionsTest, LatencyBladeFiltersSlowProfiles) {
  // t(g) = 600/g ms with zero serial fraction. SLO 250 ms: 1g (600) and
  // 2g (300) are pruned; 3g (200), 4g (150), 7g (~86) survive.
  auto dag = Dag(GiB(1), Millis(200));
  auto opts = MakeSliceOptions(dag, Free(7, 3, 2, 1, 1), Millis(250));
  ASSERT_EQ(opts.size(), 3u);
  EXPECT_EQ(opts[0].profile, gpu::MigProfile::k3g40gb);
}

TEST(SliceOptionsTest, UnavailableProfilesAreSkipped) {
  auto dag = Dag(GiB(1), Millis(100));
  auto opts = MakeSliceOptions(dag, Free(0, 0, 0, 1, 0), Seconds(10));
  ASSERT_EQ(opts.size(), 1u);
  EXPECT_EQ(opts[0].profile, gpu::MigProfile::k4g40gb);
  EXPECT_EQ(opts[0].available, 1);
}

TEST(EsgSearchTest, CoversDemandAtMinimumGpcCost) {
  // Each 1g instance serves 1/0.6 = 1.67 rps; 2g serves 3.33 at 2 GPCs —
  // identical rps/GPC, so the optimum for 5 rps costs exactly 3 GPCs.
  auto dag = Dag(GiB(2), Millis(200));
  auto res = EsgSearch(dag, Free(7, 3, 2, 1, 1), Seconds(10), 5.0);
  ASSERT_TRUE(res.has_value());
  EXPECT_GE(res->capacity_rps, 5.0);
  EXPECT_EQ(res->total_gpcs, 3);
}

TEST(EsgSearchTest, OptimalityAgainstBruteForce) {
  // Exhaustive check on small instances: A* returns a minimum-GPC feasible
  // configuration for random demands.
  Rng rng(11);
  auto dag = Dag(GiB(2), Millis(350));
  const auto free = Free(3, 2, 1, 1, 0);
  auto opts = MakeSliceOptions(dag, free, Seconds(10));
  ASSERT_FALSE(opts.empty());
  for (int trial = 0; trial < 25; ++trial) {
    const double demand = rng.Uniform(0.5, 12.0);
    auto res = EsgSearch(dag, free, Seconds(10), demand);

    // Brute force over counts.
    int best = 1 << 20;
    for (int a = 0; a <= opts[0].available; ++a) {
      for (int b = 0; b <= opts[1].available; ++b) {
        for (int c = 0; c <= opts[2].available; ++c) {
          for (int d = 0; d <= opts[3].available; ++d) {
            const double cap = a * opts[0].capacity_rps() +
                               b * opts[1].capacity_rps() +
                               c * opts[2].capacity_rps() +
                               d * opts[3].capacity_rps();
            if (cap < demand) continue;
            const int gpcs = a * gpu::Gpcs(opts[0].profile) +
                             b * gpu::Gpcs(opts[1].profile) +
                             c * gpu::Gpcs(opts[2].profile) +
                             d * gpu::Gpcs(opts[3].profile);
            best = std::min(best, gpcs);
          }
        }
      }
    }
    if (best == (1 << 20)) {
      EXPECT_FALSE(res.has_value()) << "demand " << demand;
    } else {
      ASSERT_TRUE(res.has_value()) << "demand " << demand;
      EXPECT_EQ(res->total_gpcs, best) << "demand " << demand;
      EXPECT_GE(res->capacity_rps, demand);
    }
  }
}

TEST(EsgSearchTest, InfeasibleDemandReturnsNullopt) {
  auto dag = Dag(GiB(2), Millis(500));
  // Tiny inventory cannot reach 100 rps.
  EXPECT_FALSE(EsgSearch(dag, Free(1, 0, 0, 0, 0), Seconds(10), 100.0)
                   .has_value());
}

TEST(EsgSearchTest, NoUsableProfileReturnsNullopt) {
  // 90 GB total memory: nothing fits.
  auto dag = Dag(GiB(30), Millis(100));
  EXPECT_FALSE(EsgSearch(dag, Free(7, 3, 2, 1, 1), Seconds(10), 1.0)
                   .has_value());
}

TEST(EsgSearchTest, ZeroDemandPicksCheapestSingleInstance) {
  auto dag = Dag(GiB(2), Millis(100));
  auto res = EsgSearch(dag, Free(7, 3, 2, 1, 1), Seconds(10), 0.0);
  ASSERT_TRUE(res.has_value());
  ASSERT_EQ(res->chosen.size(), 1u);
  EXPECT_EQ(res->chosen[0], gpu::MigProfile::k1g10gb);
}

TEST(EsgSearchTest, LatencyBladeCountsPrunedTypes) {
  // SLO 250 ms prunes 1g and 2g (see above).
  auto dag = Dag(GiB(1), Millis(200));
  auto res = EsgSearch(dag, Free(7, 3, 2, 1, 1), Millis(250), 1.0);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->pruned_latency, 2u);
  for (gpu::MigProfile p : res->chosen) {
    EXPECT_GE(gpu::Gpcs(p), 3);
  }
}

TEST(EsgSearchTest, DominancePruningFires) {
  // A demand needing several instances explores enough states for the
  // dominance blade to trigger.
  auto dag = Dag(GiB(2), Millis(400));
  auto res = EsgSearch(dag, Free(7, 3, 2, 1, 1), Seconds(10), 15.0);
  ASSERT_TRUE(res.has_value());
  EXPECT_GT(res->expanded, 0u);
  EXPECT_GT(res->pruned_dominance, 0u);
}

TEST(EsgSearchTest, RespectsAvailability) {
  auto dag = Dag(GiB(2), Millis(200));
  auto res = EsgSearch(dag, Free(2, 0, 0, 0, 0), Seconds(10), 3.0);
  ASSERT_TRUE(res.has_value());
  EXPECT_LE(res->chosen.size(), 2u);
}

}  // namespace
}  // namespace fluidfaas::baselines
