#include "common/json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "harness/json_report.h"

namespace fluidfaas {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("fluidfaas");
  w.Key("rps").Value(12.5);
  w.Key("count").Value(std::int64_t{42});
  w.Key("ok").Value(true);
  w.EndObject();
  EXPECT_EQ(w.Take(),
            R"({"name":"fluidfaas","rps":12.5,"count":42,"ok":true})");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.BeginObject();
  w.Key("xs").BeginArray();
  w.Value(std::int64_t{1});
  w.Value(std::int64_t{2});
  w.BeginObject();
  w.Key("y").Value("z");
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.Take(), R"({"xs":[1,2,{"y":"z"}]})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").Value("a\"b\\c\nd\te");
  w.EndObject();
  EXPECT_EQ(w.Take(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::nan(""));
  w.Value(1e309);
  w.EndArray();
  EXPECT_EQ(w.Take(), "[null,null]");
}

TEST(JsonWriterTest, StructuralMisuseThrows) {
  {
    JsonWriter w;
    w.BeginObject();
    EXPECT_THROW(w.EndArray(), FfsError);
  }
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("a");
    EXPECT_THROW(w.Key("b"), FfsError);
  }
  {
    JsonWriter w;
    w.BeginObject();
    EXPECT_THROW(w.Value(1), FfsError);  // member without a key
  }
  {
    JsonWriter w;
    w.BeginArray();
    EXPECT_THROW(w.Take(), FfsError);  // unterminated
  }
}

TEST(JsonReportTest, SerializesAnExperimentResult) {
  harness::ExperimentConfig cfg;
  cfg.system = harness::SystemKind::kFluidFaas;
  cfg.tier = trace::WorkloadTier::kLight;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 2;
  cfg.duration = Seconds(20);
  cfg.load_factor = 0.2;
  auto res = harness::RunExperiment(cfg);
  const std::string json = harness::ResultToJson(res);
  EXPECT_NE(json.find("\"system\":\"FluidFaaS\""), std::string::npos);
  EXPECT_NE(json.find("\"tier\":\"light\""), std::string::npos);
  EXPECT_NE(json.find("\"per_function\":["), std::string::npos);
  EXPECT_NE(json.find("\"pipelines_launched\""), std::string::npos);
  // Balanced braces (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(JsonReportTest, ArrayOfResults) {
  harness::ExperimentConfig cfg;
  cfg.tier = trace::WorkloadTier::kLight;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 1;
  cfg.duration = Seconds(10);
  cfg.load_factor = 0.1;
  auto results = harness::RunComparison(cfg);
  const std::string json = harness::ResultsToJson(results);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("INFless"), std::string::npos);
  EXPECT_NE(json.find("ESG"), std::string::npos);
}

TEST(CustomTraceTest, HarnessReplaysProvidedTrace) {
  harness::ExperimentConfig cfg;
  cfg.system = harness::SystemKind::kFluidFaas;
  cfg.tier = trace::WorkloadTier::kLight;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 2;
  cfg.duration = Seconds(30);
  for (int i = 0; i < 12; ++i) {
    cfg.custom_trace.push_back(
        {Seconds(i), FunctionId(i % 4)});
  }
  // One invocation beyond the horizon must be dropped.
  cfg.custom_trace.push_back({Seconds(40), FunctionId(0)});
  auto res = harness::RunExperiment(cfg);
  EXPECT_EQ(res.recorder->total_requests(), 12u);
  EXPECT_EQ(res.recorder->completed_requests(), 12u);
  EXPECT_NEAR(res.offered_rps, 12.0 / 30.0, 1e-9);
}

TEST(CustomTraceTest, UnknownFunctionIdThrows) {
  harness::ExperimentConfig cfg;
  cfg.tier = trace::WorkloadTier::kLight;
  cfg.custom_trace.push_back({0, FunctionId(99)});
  EXPECT_THROW(harness::RunExperiment(cfg), FfsError);
}

}  // namespace
}  // namespace fluidfaas
