#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/stats.h"

namespace fluidfaas {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
}

TEST(SplitMix64Test, AdvancesState) {
  std::uint64_t s = 42;
  const std::uint64_t a = SplitMix64(s);
  const std::uint64_t b = SplitMix64(s);
  EXPECT_NE(a, b);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent(99);
  Rng child = parent.Fork();
  // The child stream must not simply replay the parent stream.
  Rng parent2(99);
  (void)parent2.Fork();
  std::vector<std::uint64_t> child_seq, parent_seq;
  for (int i = 0; i < 50; ++i) {
    child_seq.push_back(child.Next());
    parent_seq.push_back(parent.Next());
  }
  EXPECT_NE(child_seq, parent_seq);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.UniformInt(3, 2), FfsError);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.Add(rng.Exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.005);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) ASSERT_GT(rng.Exponential(0.5), 0.0);
}

TEST(RngTest, ExponentialRejectsNonPositiveRate) {
  Rng rng(8);
  EXPECT_THROW(rng.Exponential(0.0), FfsError);
  EXPECT_THROW(rng.Exponential(-1.0), FfsError);
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, LogNormalIsPositiveWithExpectedMedian) {
  Rng rng(10);
  std::vector<double> xs;
  for (int i = 0; i < 100001; ++i) {
    const double x = rng.LogNormal(1.0, 0.5);
    ASSERT_GT(x, 0.0);
    xs.push_back(x);
  }
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(Percentile(xs, 0.5), std::exp(1.0), 0.05);
}

TEST(RngTest, ParetoRespectsScaleAndTail) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.Pareto(2.0, 3.0);
    ASSERT_GE(x, 2.0);
    s.Add(x);
  }
  // Mean of Pareto(xm, alpha) = alpha*xm/(alpha-1) = 3.
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
}

TEST(RngTest, ParetoRejectsBadParameters) {
  Rng rng(12);
  EXPECT_THROW(rng.Pareto(0.0, 1.0), FfsError);
  EXPECT_THROW(rng.Pareto(1.0, 0.0), FfsError);
}

TEST(RngTest, ChanceFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  Rng rng(14);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace fluidfaas
