#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace fluidfaas {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 4.0, 2.5, -3.0, 7.5};
  double sum = 0;
  for (double x : xs) {
    s.Add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(CvTest, PaperEquationOneExample) {
  // CV = std / mean (population), Eq. 1.
  const std::vector<double> ts = {100.0, 100.0, 100.0};
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(ts), 0.0);
  const std::vector<double> ts2 = {50.0, 150.0};
  // mean 100, population std 50 -> CV 0.5.
  EXPECT_NEAR(CoefficientOfVariation(ts2), 0.5, 1e-12);
}

TEST(PercentileTest, ExactRanksAndInterpolation) {
  std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.125), 15.0);  // interpolated
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.95), 7.0);
}

TEST(PercentileTest, RejectsEmptyAndBadQ) {
  EXPECT_THROW(Percentile({}, 0.5), FfsError);
  EXPECT_THROW(Percentile({1.0}, -0.1), FfsError);
  EXPECT_THROW(Percentile({1.0}, 1.1), FfsError);
}

TEST(PercentilesTest, MatchesSingleCalls) {
  std::vector<double> xs = {5, 1, 9, 3, 7, 2, 8};
  auto many = Percentiles(xs, {0.1, 0.5, 0.9});
  EXPECT_DOUBLE_EQ(many[0], Percentile(xs, 0.1));
  EXPECT_DOUBLE_EQ(many[1], Percentile(xs, 0.5));
  EXPECT_DOUBLE_EQ(many[2], Percentile(xs, 0.9));
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);    // bin 0
  h.Add(9.99);   // bin 9
  h.Add(-5.0);   // clamps to bin 0
  h.Add(50.0);   // clamps to bin 9
  h.Add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[5], 1u);
  EXPECT_EQ(h.counts()[9], 2u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 12.0);
}

TEST(HistogramTest, CdfIsMonotoneAndEndsAtOne) {
  Histogram h(0.0, 1.0, 4);
  for (double x : {0.1, 0.3, 0.6, 0.9, 0.95}) h.Add(x);
  auto cdf = h.Cdf();
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(HistogramTest, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), FfsError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), FfsError);
}

TEST(TimeWeightedSignalTest, MeanOfPiecewiseConstant) {
  TimeWeightedSignal s;
  s.Record(0, 1.0);
  s.Record(Seconds(10), 3.0);
  s.Close(Seconds(20));
  // 10 s at 1.0 then 10 s at 3.0 -> mean 2.0.
  EXPECT_NEAR(s.MeanOver(0, Seconds(20)), 2.0, 1e-9);
  // Sub-windows.
  EXPECT_NEAR(s.MeanOver(0, Seconds(10)), 1.0, 1e-9);
  EXPECT_NEAR(s.MeanOver(Seconds(10), Seconds(20)), 3.0, 1e-9);
  EXPECT_NEAR(s.MeanOver(Seconds(5), Seconds(15)), 2.0, 1e-9);
}

TEST(TimeWeightedSignalTest, ValueAt) {
  TimeWeightedSignal s;
  s.Record(Seconds(1), 5.0);
  s.Record(Seconds(2), 7.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(0), 0.0);  // before first record
  EXPECT_DOUBLE_EQ(s.ValueAt(Seconds(1)), 5.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(Seconds(1) + 1), 5.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(Seconds(3)), 7.0);
}

TEST(TimeWeightedSignalTest, FractionAtOrBelow) {
  TimeWeightedSignal s;
  s.Record(0, 0.0);
  s.Record(Seconds(4), 10.0);
  s.Close(Seconds(10));
  // 4 s at 0, 6 s at 10.
  EXPECT_NEAR(s.FractionAtOrBelow(5.0, 0, Seconds(10)), 0.4, 1e-9);
  EXPECT_NEAR(s.FractionAtOrBelow(10.0, 0, Seconds(10)), 1.0, 1e-9);
}

TEST(TimeWeightedSignalTest, SameInstantLastWriteWins) {
  TimeWeightedSignal s;
  s.Record(Seconds(1), 2.0);
  s.Record(Seconds(1), 5.0);
  EXPECT_DOUBLE_EQ(s.ValueAt(Seconds(1)), 5.0);
}

TEST(TimeWeightedSignalTest, RejectsOutOfOrderRecords) {
  TimeWeightedSignal s;
  s.Record(Seconds(2), 1.0);
  EXPECT_THROW(s.Record(Seconds(1), 2.0), FfsError);
}

TEST(TimeWeightedSignalTest, SampleSeries) {
  TimeWeightedSignal s;
  s.Record(0, 1.0);
  s.Record(Seconds(5), 2.0);
  s.Close(Seconds(10));
  auto samples = s.Sample(0, Seconds(10), Seconds(5));
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].second, 1.0);
  EXPECT_DOUBLE_EQ(samples[1].second, 2.0);
  EXPECT_DOUBLE_EQ(samples[2].second, 2.0);
}

}  // namespace
}  // namespace fluidfaas
