#include "core/ffs_distributed.h"

#include <gtest/gtest.h>

#include <numeric>

#include "harness/experiment.h"
#include "model/zoo.h"

namespace fluidfaas::core {
namespace {

using platform::FunctionSpec;
using platform::MakeFunctionSpec;
using platform::PlatformConfig;

std::vector<FunctionSpec> Functions(model::Variant v) {
  std::vector<FunctionSpec> fns;
  int id = 0;
  for (int a = 0; a < model::kNumApps; ++a) {
    if (!model::IncludedInStudy(a, v)) continue;
    fns.push_back(
        MakeFunctionSpec(FunctionId(id++), a, v, model::BuildApp(a, v), 1.5));
  }
  return fns;
}

class DistributedTest : public ::testing::Test {
 protected:
  void Build(int nodes, int gpus, model::Variant v = model::Variant::kSmall) {
    cluster_ = std::make_unique<gpu::Cluster>(
        gpu::Cluster::Uniform(nodes, gpus, gpu::DefaultPartition()));
    recorder_ = std::make_unique<metrics::Recorder>(*cluster_);
    plat_ = std::make_unique<DistributedFluidFaas>(
        sim_, *cluster_, *recorder_, Functions(v), PlatformConfig{});
    plat_->Start();
  }

  sim::Simulator sim_;
  std::unique_ptr<gpu::Cluster> cluster_;
  std::unique_ptr<metrics::Recorder> recorder_;
  std::unique_ptr<DistributedFluidFaas> plat_;
};

TEST_F(DistributedTest, OneInvokerPerNode) {
  Build(3, 1);
  EXPECT_EQ(plat_->num_invokers(), 3);
}

TEST_F(DistributedTest, ServesAndCompletes) {
  Build(2, 2);
  for (int i = 0; i < 60; ++i) {
    sim_.At(Millis(100) * i, [this, i] {
      plat_->Submit(FunctionId(i % 4));
    });
  }
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(recorder_->completed_requests(), 60u);
}

TEST_F(DistributedTest, LoadSpreadsAcrossInvokersUnderPressure) {
  Build(2, 2);
  // One hot function at a rate beyond a single node's comfort.
  for (int i = 0; i < 800; ++i) {
    sim_.At(Millis(25) * i, [this] { plat_->Submit(FunctionId(0)); });
  }
  sim_.RunUntil(Seconds(120));
  auto routed = plat_->RoutedPerInvoker();
  ASSERT_EQ(routed.size(), 2u);
  const std::size_t total =
      std::accumulate(routed.begin(), routed.end(), std::size_t{0});
  EXPECT_EQ(total, 800u);
  // Both invokers carried a real share.
  EXPECT_GT(routed[0], 800u / 10);
  EXPECT_GT(routed[1], 800u / 10);
}

TEST_F(DistributedTest, PipelinesStayNodeLocal) {
  Build(2, 2, model::Variant::kMedium);
  // Block every slice bigger than 1g so only pipelines can serve.
  for (SliceId sid : cluster_->AllSlices()) {
    if (cluster_->slice(sid).profile() != gpu::MigProfile::k1g10gb) {
      cluster_->Bind(sid, InstanceId(999));
    }
  }
  for (int i = 0; i < 150; ++i) {
    sim_.At(Millis(80) * i, [this] { plat_->Submit(FunctionId(0)); });
  }
  sim_.RunUntil(Seconds(60));
  EXPECT_GE(plat_->pipelines_launched(), 1u);
  // Every live instance's slices share one node.
  for (const auto& spec : plat_->functions()) {
    for (auto* inst : plat_->InstancesOf(spec.id)) {
      NodeId node = cluster_->slice(inst->plan().stages[0].slice).node;
      for (const auto& s : inst->plan().stages) {
        EXPECT_EQ(cluster_->slice(s.slice).node, node);
      }
    }
  }
  sim_.RunUntil(Seconds(400));
  EXPECT_EQ(recorder_->completed_requests(), 150u);
}

TEST_F(DistributedTest, EvictionHappensPerInvoker) {
  Build(1, 1);  // one node, three slices, four functions
  SimTime t = 0;
  for (const auto& f : plat_->functions()) {
    sim_.At(t, [this, id = f.id] { plat_->Submit(id); });
    t += Seconds(3);
  }
  sim_.RunUntil(Seconds(120));
  EXPECT_GE(plat_->evictions(), 1u);
  EXPECT_EQ(recorder_->completed_requests(), 4u);
}

TEST(DistributedHarnessTest, ComparableToCentralizedOnBalancedCluster) {
  harness::ExperimentConfig cfg;
  cfg.tier = trace::WorkloadTier::kMedium;
  cfg.num_nodes = 2;
  cfg.gpus_per_node = 4;
  cfg.duration = Seconds(90);
  cfg.seed = 77;
  cfg.system = harness::SystemKind::kFluidFaas;
  auto central = harness::RunExperiment(cfg);
  cfg.system = harness::SystemKind::kFluidFaasDistributed;
  auto dist = harness::RunExperiment(cfg);
  EXPECT_EQ(dist.system, "FluidFaaS-dist");
  // Same arrivals; the decentralized form should be in the same ballpark
  // (within 25% throughput) on a balanced cluster.
  EXPECT_NEAR(dist.throughput_rps, central.throughput_rps,
              0.25 * central.throughput_rps);
  EXPECT_GT(dist.pipelines_launched, 0u);
}

}  // namespace
}  // namespace fluidfaas::core
