// Scenario tests of the FluidFaaS scheduling system: the Fig. 8 state
// machine, LRU eviction, pipeline construction on fragmented slices, and
// pipeline migration.
#include "core/ffs_platform.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/zoo.h"
#include "platform/function.h"

namespace fluidfaas::core {
namespace {

using platform::FunctionSpec;
using platform::InstanceState;
using platform::MakeFunctionSpec;
using platform::PlatformConfig;

std::vector<FunctionSpec> Functions(model::Variant v, int copies = 1) {
  std::vector<FunctionSpec> fns;
  int id = 0;
  for (int c = 0; c < copies; ++c) {
    for (int a = 0; a < model::kNumApps; ++a) {
      if (!model::IncludedInStudy(a, v)) continue;
      fns.push_back(
          MakeFunctionSpec(FunctionId(id++), a, v, model::BuildApp(a, v),
                           1.5));
    }
  }
  return fns;
}

class FfsPlatformTest : public ::testing::Test {
 protected:
  void Build(model::Variant v, int nodes = 1, int gpus = 2,
             PlatformConfig config = {}) {
    cluster_ = std::make_unique<gpu::Cluster>(
        gpu::Cluster::Uniform(nodes, gpus, gpu::DefaultPartition()));
    recorder_ = std::make_unique<metrics::Recorder>(*cluster_);
    config.seed = 7;
    plat_ = std::make_unique<FluidFaasPlatform>(sim_, *cluster_, *recorder_,
                                                Functions(v), config);
    plat_->Start();
  }

  /// Submit `n` requests for `fn` spaced `gap` apart starting now.
  void Burst(FunctionId fn, int n, SimDuration gap) {
    for (int i = 0; i < n; ++i) {
      sim_.At(sim_.Now() + i * gap, [this, fn] { plat_->Submit(fn); });
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<gpu::Cluster> cluster_;
  std::unique_ptr<metrics::Recorder> recorder_;
  std::unique_ptr<FluidFaasPlatform> plat_;
};

TEST_F(FfsPlatformTest, FirstRequestCreatesTimeSharingInstance) {
  Build(model::Variant::kSmall);
  plat_->Submit(FunctionId(0));
  // Fig. 8 ①: the first request yields a time-sharing instance.
  EXPECT_TRUE(plat_->HasTimeSharingInstance(FunctionId(0)));
  EXPECT_TRUE(plat_->TimeSharingResident(FunctionId(0)));
  EXPECT_EQ(plat_->NumExclusiveHot(FunctionId(0)), 0);
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(recorder_->completed_requests(), 1u);
}

TEST_F(FfsPlatformTest, SustainedLoadPromotesToExclusiveHot) {
  Build(model::Variant::kSmall);
  Burst(FunctionId(0), 300, Millis(100));  // 10 rps for 30 s, util >> 30%
  sim_.RunUntil(Seconds(25));
  // Fig. 8 ②: the hot function now owns exclusive instances.
  EXPECT_GE(plat_->promotions(), 1u);
  EXPECT_GE(plat_->NumExclusiveHot(FunctionId(0)), 1);
  sim_.RunUntil(Seconds(180));
}

TEST_F(FfsPlatformTest, IdlenessDemotesBackToTimeSharing) {
  Build(model::Variant::kSmall);
  Burst(FunctionId(0), 200, Millis(100));
  sim_.RunUntil(Seconds(25));
  ASSERT_GE(plat_->NumExclusiveHot(FunctionId(0)), 1);
  // Fig. 8 ③: traffic stops; the function ends holding only a
  // time-sharing entry — every exclusive instance is gone.
  sim_.RunUntil(Seconds(90));
  EXPECT_TRUE(plat_->HasTimeSharingInstance(FunctionId(0)));
  EXPECT_EQ(plat_->NumExclusiveHot(FunctionId(0)), 0);
}

TEST_F(FfsPlatformTest, ColdAfterWarmTimeout) {
  PlatformConfig config;
  config.warm_timeout = Seconds(30);  // shorten the 10-minute rule for test
  Build(model::Variant::kSmall, 1, 2, config);
  plat_->Submit(FunctionId(0));
  sim_.RunUntil(Seconds(10));
  EXPECT_TRUE(plat_->HasTimeSharingInstance(FunctionId(0)));
  // Fig. 8 ⑤: no demand for the warm window -> cold (entry removed).
  sim_.RunUntil(Seconds(60));
  EXPECT_FALSE(plat_->HasTimeSharingInstance(FunctionId(0)));
}

TEST_F(FfsPlatformTest, LruEvictionWhenSlicesAreScarce) {
  // One GPU = 3 slices. Four small functions in time-sharing state compete;
  // touching them in order forces eviction of the least-recently-used.
  Build(model::Variant::kSmall, 1, 1);
  const auto fns = plat_->functions();
  ASSERT_EQ(fns.size(), 4u);
  SimTime t = 0;
  for (const auto& f : fns) {
    sim_.At(t, [this, id = f.id] { plat_->Submit(id); });
    t += Seconds(2);
  }
  sim_.RunUntil(Seconds(30));
  // Three slices, four resident candidates: at least one eviction (④).
  EXPECT_GE(plat_->evictions(), 1u);
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(recorder_->completed_requests(), 4u);
}

TEST_F(FfsPlatformTest, EvictedFunctionReloadsWarm) {
  Build(model::Variant::kSmall, 1, 1);
  // fn0 resident, then three others push it out, then fn0 returns.
  plat_->Submit(FunctionId(0));
  sim_.RunUntil(Seconds(5));
  for (int i = 1; i < 4; ++i) {
    sim_.At(Seconds(5 + i), [this, i] { plat_->Submit(FunctionId(i)); });
  }
  sim_.RunUntil(Seconds(20));
  sim_.At(Seconds(20), [this] { plat_->Submit(FunctionId(0)); });
  sim_.RunUntil(Seconds(120));
  EXPECT_EQ(recorder_->completed_requests(), 5u);
  // The reload exists; its load time is warm-scale (sub-second per GiB),
  // visible as load_time on the last request if it reloaded.
  EXPECT_GE(plat_->evictions(), 1u);
}

TEST_F(FfsPlatformTest, FragmentationTriggersPipelineLaunch) {
  // Medium variants need 2g monolithically. Keep only 1g slices free:
  // FluidFaaS must construct pipelines to serve load (the Fig. 1 story).
  Build(model::Variant::kMedium, 1, 2);
  // Occupy both 4g and both 2g slices with foreign bindings.
  for (SliceId sid : cluster_->AllSlices()) {
    const auto& s = cluster_->slice(sid);
    if (s.profile() != gpu::MigProfile::k1g10gb) {
      cluster_->Bind(sid, InstanceId(999));
    }
  }
  Burst(FunctionId(0), 150, Millis(100));
  sim_.RunUntil(Seconds(20));
  EXPECT_GE(plat_->pipelines_launched(), 1u);
  sim_.RunUntil(Seconds(240));
  EXPECT_EQ(recorder_->completed_requests(), 150u);
}

TEST_F(FfsPlatformTest, PipelinesDisabledAblationCannotUseFragments) {
  PlatformConfig config;
  config.enable_pipelines = false;
  Build(model::Variant::kMedium, 1, 2, config);
  for (SliceId sid : cluster_->AllSlices()) {
    const auto& s = cluster_->slice(sid);
    if (s.profile() != gpu::MigProfile::k1g10gb) {
      cluster_->Bind(sid, InstanceId(999));
    }
  }
  Burst(FunctionId(0), 50, Millis(100));
  sim_.RunUntil(Seconds(30));
  EXPECT_EQ(plat_->pipelines_launched(), 0u);
  // Nothing can be placed: no instance exists, requests pend.
  EXPECT_EQ(recorder_->completed_requests(), 0u);
  EXPECT_GT(plat_->PendingCount(), 0u);
}

TEST_F(FfsPlatformTest, MigrationReplacesPipelineWhenBigSliceFrees) {
  Build(model::Variant::kMedium, 1, 2);
  // Occupy the large slices so the first instances are pipelines...
  std::vector<SliceId> blocked;
  for (SliceId sid : cluster_->AllSlices()) {
    const auto& s = cluster_->slice(sid);
    if (s.profile() != gpu::MigProfile::k1g10gb) {
      cluster_->Bind(sid, InstanceId(999));
      blocked.push_back(sid);
    }
  }
  Burst(FunctionId(0), 150, Millis(50));  // burst ends before the release
  sim_.RunUntil(Seconds(10));
  ASSERT_GE(plat_->pipelines_launched(), 1u);
  // ...then free them: migration should kick in (§5.3).
  sim_.At(sim_.Now(), [this, blocked] {
    for (SliceId sid : blocked) cluster_->Release(sid, InstanceId(999));
  });
  sim_.RunUntil(Seconds(40));
  EXPECT_GE(plat_->migrations(), 1u);
  sim_.RunUntil(Seconds(400));
  EXPECT_EQ(recorder_->completed_requests(), 150u);
}

TEST_F(FfsPlatformTest, MigrationDisabledAblation) {
  PlatformConfig config;
  config.enable_migration = false;
  Build(model::Variant::kMedium, 1, 2, config);
  std::vector<SliceId> blocked;
  for (SliceId sid : cluster_->AllSlices()) {
    const auto& s = cluster_->slice(sid);
    if (s.profile() != gpu::MigProfile::k1g10gb) {
      cluster_->Bind(sid, InstanceId(999));
      blocked.push_back(sid);
    }
  }
  Burst(FunctionId(0), 200, Millis(50));
  sim_.RunUntil(Seconds(10));
  sim_.At(sim_.Now(), [this, blocked] {
    for (SliceId sid : blocked) cluster_->Release(sid, InstanceId(999));
  });
  sim_.RunUntil(Seconds(40));
  EXPECT_EQ(plat_->migrations(), 0u);
  sim_.RunUntil(Seconds(300));
}

TEST_F(FfsPlatformTest, StrongIsolationHoldsThroughoutARun) {
  // The cluster itself enforces one-instance-per-slice; a full chaotic run
  // across all functions must never trip that check.
  Build(model::Variant::kSmall, 1, 2);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto fn = FunctionId(static_cast<std::int32_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(
                              plat_->functions().size()) - 1)));
    sim_.At(rng.UniformInt(0, Seconds(60)), [this, fn] { plat_->Submit(fn); });
  }
  EXPECT_NO_THROW(sim_.RunUntil(Seconds(300)));
  EXPECT_EQ(recorder_->completed_requests(), 500u);
}

TEST_F(FfsPlatformTest, TimeSharingDisabledUsesExclusiveOnly) {
  PlatformConfig config;
  config.enable_time_sharing = false;
  Build(model::Variant::kSmall, 1, 2, config);
  plat_->Submit(FunctionId(0));
  EXPECT_FALSE(plat_->HasTimeSharingInstance(FunctionId(0)));
  EXPECT_EQ(plat_->NumExclusiveHot(FunctionId(0)), 1);
  sim_.RunUntil(Seconds(60));
  EXPECT_EQ(recorder_->completed_requests(), 1u);
}

}  // namespace
}  // namespace fluidfaas::core
