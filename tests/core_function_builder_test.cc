#include "core/ffs_function.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"

namespace fluidfaas::core {
namespace {

model::ComponentSpec Spec(const char* name) {
  model::ComponentSpec c;
  c.name = name;
  c.cls = model::ComponentClass::kClassification;
  c.weights = GiB(1);
  c.activations = GiB(1);
  c.latency_1gpc = Millis(100);
  c.serial_fraction = 0.1;
  c.output = model::TensorSpec({MiB(10)}, 1);
  return c;
}

TEST(FfsFunctionBuilderTest, ChainRegistration) {
  // The Fig. 7 pattern: models registered in dataflow order.
  FfsModule m1(Spec("m1")), m2(Spec("m2")), m3(Spec("m3"));
  FfsFunctionBuilder b("chain");
  auto x1 = m1.reg(b, {FfsFunctionBuilder::kInput});
  auto x2 = m2.reg(b, {x1});
  m3.reg(b, {x2});
  EXPECT_EQ(b.num_registered(), 3);

  model::AppDag dag = std::move(b).Build();
  EXPECT_EQ(dag.size(), 3);
  EXPECT_EQ(dag.name(), "chain");
  EXPECT_EQ(dag.Successors(0), (std::vector<int>{1}));
  EXPECT_EQ(dag.Successors(1), (std::vector<int>{2}));
}

TEST(FfsFunctionBuilderTest, FanInLikeFigure7) {
  // Fig. 7's defDAG: x3 = model3.reg(x1, x2) — a join node.
  FfsModule m1(Spec("m1")), m2(Spec("m2")), m3(Spec("m3"));
  FfsFunctionBuilder b("fanin");
  auto x1 = m1.reg(b, {FfsFunctionBuilder::kInput});
  auto x2 = m2.reg(b, {FfsFunctionBuilder::kInput});
  m3.reg(b, {x1, x2});
  model::AppDag dag = std::move(b).Build();
  EXPECT_EQ(dag.Predecessors(2), (std::vector<int>{0, 1}));
}

TEST(FfsFunctionBuilderTest, ConditionalArmGetsProbability) {
  FfsModule m1(Spec("m1")), cond(Spec("cond"));
  FfsFunctionBuilder b("branch");
  auto x1 = m1.reg(b, {FfsFunctionBuilder::kInput});
  cond.reg(b, {x1}, /*exec_probability=*/0.25);
  model::AppDag dag = std::move(b).Build();
  EXPECT_DOUBLE_EQ(dag.component(1).exec_probability, 0.25);
  // The module object itself is untouched (reg copies the spec).
  EXPECT_DOUBLE_EQ(cond.spec().exec_probability, 1.0);
}

TEST(FfsFunctionBuilderTest, ComponentIdsFollowRegistrationOrder) {
  FfsModule m(Spec("m"));
  FfsFunctionBuilder b("ids");
  auto x1 = m.reg(b, {FfsFunctionBuilder::kInput});
  auto x2 = m.reg(b, {x1});
  EXPECT_EQ(x1.node, 0);
  EXPECT_EQ(x2.node, 1);
  model::AppDag dag = std::move(b).Build();
  EXPECT_EQ(dag.component(0).id, ComponentId(0));
  EXPECT_EQ(dag.component(1).id, ComponentId(1));
}

TEST(FfsFunctionBuilderTest, RejectsEmptyInputs) {
  FfsModule m(Spec("m"));
  FfsFunctionBuilder b("bad");
  EXPECT_THROW(m.reg(b, {}), FfsError);
}

TEST(FfsFunctionBuilderTest, RejectsForwardReferences) {
  FfsFunctionBuilder b("bad");
  FfsModule m(Spec("m"));
  FfsValue future{3};  // refers to a not-yet-registered node
  EXPECT_THROW(m.reg(b, {future}), FfsError);
}

TEST(FfsFunctionBuilderTest, BuiltDagValidates) {
  // The builder's output always passes AppDag's own validation; building
  // the paper's App 3 via the builder API matches the zoo's construction.
  using model::ComponentClass;
  const auto scale = model::ScaleFor(3, model::Variant::kSmall);
  FfsModule deblur(model::MakeComponent(ComponentClass::kDeblur, scale, 0));
  FfsModule sr(
      model::MakeComponent(ComponentClass::kSuperResolution, scale, 1));
  FfsModule bg(
      model::MakeComponent(ComponentClass::kBackgroundRemoval, scale, 2));
  FfsModule seg(
      model::MakeComponent(ComponentClass::kSegmentation, scale, 3));
  FfsModule cls(
      model::MakeComponent(ComponentClass::kClassification, scale, 4));

  FfsFunctionBuilder b("expanded_image_classification/small");
  auto x0 = deblur.reg(b, {FfsFunctionBuilder::kInput});
  auto x1 = sr.reg(b, {x0}, 0.5);
  auto x2 = bg.reg(b, {x1, x0});
  auto x3 = seg.reg(b, {x2});
  cls.reg(b, {x3});
  model::AppDag mine = std::move(b).Build();

  const model::AppDag zoo = model::BuildApp(3, model::Variant::kSmall);
  EXPECT_EQ(mine.size(), zoo.size());
  EXPECT_EQ(mine.TotalMemory(), zoo.TotalMemory());
  EXPECT_EQ(mine.TotalLatencyOnGpcs(1), zoo.TotalLatencyOnGpcs(1));
}

}  // namespace
}  // namespace fluidfaas::core
