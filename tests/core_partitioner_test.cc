#include "core/partitioner.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "model/zoo.h"

namespace fluidfaas::core {
namespace {

model::ComponentSpec Comp(int idx, Bytes mem, SimDuration t) {
  model::ComponentSpec c;
  c.id = ComponentId(idx);
  c.name = "c" + std::to_string(idx);
  c.cls = model::ComponentClass::kClassification;
  c.weights = mem / 2;
  c.activations = mem - mem / 2;
  c.latency_1gpc = t;
  c.serial_fraction = 0.0;  // linear scaling keeps test arithmetic exact
  c.output = model::TensorSpec({MiB(10)}, 1);
  return c;
}

model::AppDag Chain(std::vector<std::pair<Bytes, SimDuration>> comps) {
  std::vector<model::ComponentSpec> cs;
  std::vector<model::DagEdge> es;
  for (std::size_t i = 0; i < comps.size(); ++i) {
    cs.push_back(Comp(static_cast<int>(i), comps[i].first, comps[i].second));
    es.push_back({static_cast<int>(i) - 1, static_cast<int>(i)});
  }
  return model::AppDag("chain", std::move(cs), std::move(es));
}

TEST(StagePlanTest, AggregatesMemoryAndTime) {
  auto dag = Chain({{GiB(2), Millis(100)}, {GiB(3), Millis(200)}});
  auto stage = MakeStagePlan(dag, 0, 2);
  ASSERT_TRUE(stage.has_value());
  EXPECT_EQ(stage->memory, GiB(5));
  EXPECT_EQ(stage->min_profile, gpu::MigProfile::k1g10gb);
  EXPECT_EQ(stage->time_on_min_profile, Millis(300));
}

TEST(StagePlanTest, InfeasibleStageReturnsNullopt) {
  auto dag = Chain({{GiB(90), Millis(100)}});
  EXPECT_FALSE(MakeStagePlan(dag, 0, 1).has_value());
}

TEST(EnumerateTest, CountsAllConsecutivePartitions) {
  // k components -> 2^(k-1) candidates when everything is feasible.
  for (int k = 1; k <= 5; ++k) {
    std::vector<std::pair<Bytes, SimDuration>> comps(
        static_cast<std::size_t>(k), {GiB(1), Millis(100)});
    auto dag = Chain(comps);
    auto cands = EnumerateRankedPipelines(dag, /*max_stages=*/k);
    EXPECT_EQ(cands.size(), 1u << (k - 1)) << "k=" << k;
  }
}

TEST(EnumerateTest, MaxStagesLimitsDepth) {
  auto dag = Chain({{GiB(1), Millis(100)},
                    {GiB(1), Millis(100)},
                    {GiB(1), Millis(100)}});
  auto cands = EnumerateRankedPipelines(dag, 2);
  for (const auto& c : cands) EXPECT_LE(c.num_stages(), 2);
  // 1 one-stage + 2 two-stage = 3 of the 4 partitions.
  EXPECT_EQ(cands.size(), 3u);
}

TEST(EnumerateTest, MonolithicRanksFirstUnderCv) {
  auto dag = Chain({{GiB(2), Millis(100)},
                    {GiB(2), Millis(100)},
                    {GiB(2), Millis(100)}});
  auto cands = EnumerateRankedPipelines(dag, 3);
  ASSERT_FALSE(cands.empty());
  // Single stage has CV exactly 0 and fewest stages: always ranked first.
  EXPECT_TRUE(cands.front().IsMonolithic());
  EXPECT_DOUBLE_EQ(cands.front().cv, 0.0);
}

TEST(EnumerateTest, RankingIsAscendingCv) {
  auto dag = Chain({{GiB(2), Millis(130)},
                    {GiB(3), Millis(70)},
                    {GiB(1), Millis(260)},
                    {GiB(2), Millis(40)}});
  auto cands = EnumerateRankedPipelines(dag, 4);
  for (std::size_t i = 1; i < cands.size(); ++i) {
    EXPECT_LE(cands[i - 1].cv, cands[i].cv);
  }
}

TEST(EnumerateTest, CvMatchesEquationOne) {
  // Stages of 100 ms and 300 ms: mean 200, std 100 -> CV 0.5.
  auto dag = Chain({{GiB(1), Millis(100)}, {GiB(1), Millis(300)}});
  auto cands = EnumerateRankedPipelines(dag, 2);
  const PipelineCandidate* two_stage = nullptr;
  for (const auto& c : cands) {
    if (c.num_stages() == 2) two_stage = &c;
  }
  ASSERT_NE(two_stage, nullptr);
  EXPECT_NEAR(two_stage->cv, 0.5, 1e-9);
}

TEST(EnumerateTest, InfeasibleStagesAreDropped) {
  // Middle component alone exceeds every profile: any partition putting it
  // in any stage is infeasible because the stage memory >= 90 GB.
  auto dag = Chain({{GiB(1), Millis(100)},
                    {GiB(90), Millis(100)},
                    {GiB(1), Millis(100)}});
  EXPECT_TRUE(EnumerateRankedPipelines(dag, 3).empty());
}

TEST(EnumerateTest, StagesPartitionTheDag) {
  auto dag = Chain({{GiB(2), Millis(10)},
                    {GiB(2), Millis(20)},
                    {GiB(2), Millis(30)},
                    {GiB(2), Millis(40)}});
  for (const auto& cand : EnumerateRankedPipelines(dag, 4)) {
    int cursor = 0;
    for (const StagePlan& s : cand.stages) {
      EXPECT_EQ(s.begin, cursor);
      EXPECT_GT(s.end, s.begin);
      cursor = s.end;
    }
    EXPECT_EQ(cursor, dag.size());
  }
}

TEST(EnumerateTest, PoliciesProduceDifferentLeadingCandidates) {
  // Unbalanced chain where a deep split hurts latency but helps CV.
  auto dag = Chain({{GiB(12), Millis(400)},
                    {GiB(12), Millis(400)},
                    {GiB(2), Millis(100)}});
  auto cv = EnumerateRankedPipelines(dag, 3, RankPolicy::kCv);
  auto fewest = EnumerateRankedPipelines(dag, 3, RankPolicy::kFewestStages);
  auto greedy = EnumerateRankedPipelines(dag, 3, RankPolicy::kGreedyLatency);
  ASSERT_FALSE(cv.empty());
  EXPECT_EQ(cv.size(), fewest.size());
  EXPECT_EQ(cv.size(), greedy.size());
  // Fewest-stages leads with the monolithic candidate...
  EXPECT_TRUE(fewest.front().IsMonolithic());
  // ...and greedy-latency leads with the lowest summed latency.
  SimDuration best = kTimeInfinity;
  for (const auto& c : greedy) {
    SimDuration t = 0;
    for (const auto& s : c.stages) t += s.time_on_min_profile;
    best = std::min(best, t);
  }
  SimDuration lead = 0;
  for (const auto& s : greedy.front().stages) lead += s.time_on_min_profile;
  EXPECT_EQ(lead, best);
}

TEST(MinProfileTest, MonolithicAndPipelined) {
  // Total 24 GB (needs 3g.40gb mono), max component 8 GB (1g pipelined).
  auto dag = Chain({{GiB(8), Millis(100)},
                    {GiB(8), Millis(100)},
                    {GiB(8), Millis(100)}});
  EXPECT_EQ(MinMonolithicProfile(dag), gpu::MigProfile::k3g40gb);
  EXPECT_EQ(MinPipelinedProfile(dag, 3), gpu::MigProfile::k1g10gb);
  // With pipelining capped at 1 stage, the pipelined min equals mono.
  EXPECT_EQ(MinPipelinedProfile(dag, 1), gpu::MigProfile::k3g40gb);
}

TEST(MinProfileTest, NothingFits) {
  auto dag = Chain({{GiB(90), Millis(100)}});
  EXPECT_FALSE(MinMonolithicProfile(dag).has_value());
  EXPECT_FALSE(MinPipelinedProfile(dag, 4).has_value());
}

TEST(PartitionerPropertyTest, RandomChainsInvariants) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = static_cast<int>(rng.UniformInt(1, 6));
    std::vector<std::pair<Bytes, SimDuration>> comps;
    for (int i = 0; i < k; ++i) {
      comps.push_back({GiB(rng.UniformInt(1, 12)),
                       Millis(rng.UniformInt(20, 500))});
    }
    auto dag = Chain(comps);
    auto cands = EnumerateRankedPipelines(dag, k);
    std::set<std::vector<int>> seen;
    for (const auto& c : cands) {
      // CV non-negative, ascending order, unique cut patterns.
      EXPECT_GE(c.cv, 0.0);
      std::vector<int> cuts;
      for (const auto& s : c.stages) cuts.push_back(s.begin);
      EXPECT_TRUE(seen.insert(cuts).second);
      // Stage memory sums to the DAG total.
      Bytes total = 0;
      for (const auto& s : c.stages) total += s.memory;
      EXPECT_EQ(total, dag.TotalMemory());
    }
    for (std::size_t i = 1; i < cands.size(); ++i) {
      EXPECT_LE(cands[i - 1].cv, cands[i].cv);
    }
  }
}

TEST(PartitionerTest, ToStringIsInformative) {
  auto dag = Chain({{GiB(2), Millis(100)}, {GiB(2), Millis(100)}});
  auto cands = EnumerateRankedPipelines(dag, 2);
  const std::string s = ToString(cands.front());
  EXPECT_NE(s.find("cv="), std::string::npos);
  EXPECT_NE(s.find("1g.10gb"), std::string::npos);
}

}  // namespace
}  // namespace fluidfaas::core
