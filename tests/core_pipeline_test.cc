#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <set>

#include "core/partitioner.h"
#include "model/zoo.h"

namespace fluidfaas::core {
namespace {

model::ComponentSpec Comp(int idx, Bytes mem, SimDuration t, Bytes out) {
  model::ComponentSpec c;
  c.id = ComponentId(idx);
  c.name = "c" + std::to_string(idx);
  c.cls = model::ComponentClass::kClassification;
  c.weights = mem / 2;
  c.activations = mem - mem / 2;
  c.latency_1gpc = t;
  c.serial_fraction = 0.0;
  c.output = model::TensorSpec({out}, 1);
  return c;
}

model::AppDag Chain3(Bytes m0, Bytes m1, Bytes m2) {
  return model::AppDag("chain",
                       {Comp(0, m0, Millis(100), MiB(40)),
                        Comp(1, m1, Millis(100), MiB(40)),
                        Comp(2, m2, Millis(100), MiB(40))},
                       {{-1, 0}, {0, 1}, {1, 2}});
}

PipelineCandidate TwoStageCandidate(const model::AppDag& dag, int cut) {
  PipelineCandidate c;
  c.stages = {*MakeStagePlan(dag, 0, cut), *MakeStagePlan(dag, cut, 3)};
  return c;
}

TEST(MonolithicPlanTest, FitsAndBindsMetrics) {
  auto cluster = gpu::Cluster::Uniform(1, 1, gpu::DefaultPartition());
  auto dag = Chain3(GiB(4), GiB(4), GiB(4));  // 12 GB total
  // Fits the 2g (20 GB) and 4g, not the 1g.
  for (SliceId sid : cluster.AllSlices()) {
    auto plan = MonolithicPlanOnSlice(dag, cluster, sid);
    if (cluster.slice(sid).memory() >= GiB(12)) {
      ASSERT_TRUE(plan.has_value());
      EXPECT_EQ(plan->num_stages(), 1);
      EXPECT_EQ(plan->stages[0].hop_out, 0);
      EXPECT_EQ(plan->EndToEndLatency(), plan->BottleneckTime());
      // 0 serial fraction: time = 300 ms / gpcs.
      EXPECT_EQ(plan->stages[0].exec_time,
                Millis(300) / cluster.slice(sid).gpcs());
    } else {
      EXPECT_FALSE(plan.has_value());
    }
  }
}

TEST(TryPlanTest, PrefersFewestGpcs) {
  auto cluster = gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition());
  auto dag = Chain3(GiB(6), GiB(6), GiB(6));
  model::TransferCostModel transfer;
  // A 2-stage split [0,1) + [1,3): memories 6 GB and 12 GB -> 1g + 2g.
  auto cand = TwoStageCandidate(dag, 1);
  auto plan = TryPlanOnNode(dag, cand, cluster, NodeId(0), transfer);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->TotalGpcs(), 3);  // 1g + 2g, not 4g
  EXPECT_EQ(plan->num_stages(), 2);
  // Distinct slices.
  EXPECT_NE(plan->stages[0].slice, plan->stages[1].slice);
}

TEST(TryPlanTest, UsesDistinctSlicesEvenWhenOneWouldFitBoth) {
  auto cluster = gpu::Cluster::Uniform(1, 1, gpu::DefaultPartition());
  auto dag = Chain3(GiB(2), GiB(2), GiB(2));
  auto cand = TwoStageCandidate(dag, 1);
  auto plan =
      TryPlanOnNode(dag, cand, cluster, NodeId(0), model::TransferCostModel{});
  ASSERT_TRUE(plan.has_value());
  std::set<SliceId> used;
  for (const auto& s : plan->stages) used.insert(s.slice);
  EXPECT_EQ(used.size(), 2u);
}

TEST(TryPlanTest, FailsWhenMemoryDoesNotFitAnywhere) {
  auto cluster = gpu::Cluster::Uniform(1, 1, gpu::DefaultPartition());
  auto dag = Chain3(GiB(45), GiB(2), GiB(2));  // stage 0 exceeds 40 GB
  auto cand = TwoStageCandidate(dag, 1);
  EXPECT_FALSE(
      TryPlanOnNode(dag, cand, cluster, NodeId(0), model::TransferCostModel{})
          .has_value());
}

TEST(TryPlanTest, FailsWhenSlicesAreBusy) {
  auto cluster = gpu::Cluster::Uniform(1, 1, gpu::DefaultPartition());
  for (SliceId sid : cluster.AllSlices()) cluster.Bind(sid, InstanceId(1));
  auto dag = Chain3(GiB(2), GiB(2), GiB(2));
  auto cand = TwoStageCandidate(dag, 1);
  EXPECT_FALSE(
      TryPlanOnNode(dag, cand, cluster, NodeId(0), model::TransferCostModel{})
          .has_value());
}

TEST(TryPlanTest, StaysOnOneNode) {
  // One free slice per node: a 2-stage pipeline cannot span nodes.
  auto cluster = gpu::Cluster::Uniform(2, 1, gpu::DefaultPartition());
  auto dag = Chain3(GiB(2), GiB(2), GiB(2));
  for (SliceId sid : cluster.AllSlices()) {
    const auto& s = cluster.slice(sid);
    if (s.profile() != gpu::MigProfile::k1g10gb) {
      cluster.Bind(sid, InstanceId(1));
    }
  }
  auto cand = TwoStageCandidate(dag, 1);
  for (int n = 0; n < 2; ++n) {
    EXPECT_FALSE(TryPlanOnNode(dag, cand, cluster, NodeId(n),
                               model::TransferCostModel{})
                     .has_value());
  }
}

TEST(TryPlanTest, HopCostsComeFromCutTensors) {
  auto cluster = gpu::Cluster::Uniform(1, 1, gpu::DefaultPartition());
  auto dag = Chain3(GiB(2), GiB(2), GiB(2));
  model::TransferCostModel transfer;
  auto cand = TwoStageCandidate(dag, 2);
  auto plan = TryPlanOnNode(dag, cand, cluster, NodeId(0), transfer);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->stages[0].hop_out, transfer.HopCost(dag.CutBytes(2)));
  EXPECT_EQ(plan->stages[1].hop_out, 0);
}

TEST(PipelinePlanTest, BottleneckAndLatency) {
  PipelinePlan plan;
  plan.node = NodeId(0);
  StageBinding a, b;
  a.exec_time = Millis(100);
  a.hop_out = Millis(20);
  b.exec_time = Millis(90);
  b.hop_out = 0;
  a.plan.weights = GiB(1);
  b.plan.weights = GiB(2);
  a.profile = gpu::MigProfile::k1g10gb;
  b.profile = gpu::MigProfile::k2g20gb;
  plan.stages = {a, b};
  EXPECT_EQ(plan.BottleneckTime(), Millis(120));
  EXPECT_EQ(plan.EndToEndLatency(), Millis(210));
  EXPECT_EQ(plan.TotalWeights(), GiB(3));
  EXPECT_EQ(plan.TotalGpcs(), 3);
  EXPECT_FALSE(plan.IsMonolithic());
}

TEST(PlanFirstFeasibleTest, WalksRankedOrderThenNodes) {
  auto cluster = gpu::Cluster::Uniform(2, 1, gpu::DefaultPartition());
  auto dag = Chain3(GiB(8), GiB(8), GiB(8));  // 24 GB total: mono needs 3g+
  auto ranked = EnumerateRankedPipelines(dag, 3);
  model::TransferCostModel transfer;

  // All slices free: the monolithic candidate (rank 0) deploys on node 0.
  auto plan = PlanFirstFeasible(dag, ranked, cluster, transfer);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->IsMonolithic());
  EXPECT_EQ(plan->node, NodeId(0));

  // Occupy node 0 entirely: the same candidate lands on node 1.
  for (SliceId sid : cluster.AllSlices()) {
    if (cluster.slice(sid).node == NodeId(0)) cluster.Bind(sid, InstanceId(1));
  }
  plan = PlanFirstFeasible(dag, ranked, cluster, transfer);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->node, NodeId(1));

  // Leave only the two smaller slices on node 1: a pipeline is required.
  for (SliceId sid : cluster.AllSlices()) {
    const auto& s = cluster.slice(sid);
    if (s.node == NodeId(1) && s.profile() == gpu::MigProfile::k4g40gb) {
      cluster.Bind(sid, InstanceId(2));
    }
  }
  plan = PlanFirstFeasible(dag, ranked, cluster, transfer);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GT(plan->num_stages(), 1);

  // Nothing at all.
  for (SliceId sid : cluster.FreeSlices()) cluster.Bind(sid, InstanceId(3));
  EXPECT_FALSE(PlanFirstFeasible(dag, ranked, cluster, transfer).has_value());
}

TEST(PlanTest, PaperFigure4Scenario) {
  // Fig. 4: a function needing a 4g.40gb deploys as a 3g+1g or 2g+2g
  // pipeline on fragmented slices. Model: 34 GB total, split 17+17.
  std::vector<std::vector<gpu::MigPartition>> parts = {
      {gpu::MigPartition::Parse("3g.40gb+2g.20gb+2g.20gb")}};
  gpu::Cluster cluster(std::move(parts));
  auto dag = Chain3(GiB(9), GiB(9), GiB(16));  // 34 GB; splits 18|16
  ASSERT_EQ(MinMonolithicProfile(dag), gpu::MigProfile::k3g40gb);
  // Occupy the 3g: only the two 2g fragments remain.
  for (SliceId sid : cluster.AllSlices()) {
    if (cluster.slice(sid).profile() == gpu::MigProfile::k3g40gb) {
      cluster.Bind(sid, InstanceId(1));
    }
  }
  auto ranked = EnumerateRankedPipelines(dag, 3);
  auto plan =
      PlanFirstFeasible(dag, ranked, cluster, model::TransferCostModel{});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->num_stages(), 2);  // the Fig. 4(d) outcome: 2g + 2g
  for (const auto& s : plan->stages) {
    EXPECT_EQ(s.profile, gpu::MigProfile::k2g20gb);
  }
}

}  // namespace
}  // namespace fluidfaas::core
