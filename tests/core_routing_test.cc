// Focused tests of the heterogeneity-aware request routing (§5.3): hot
// instances lowest-latency-first, spill to the time-sharing instance, and
// the bounded fallback.
#include <gtest/gtest.h>

#include "core/ffs_platform.h"
#include "core/pipeline.h"
#include "model/zoo.h"

namespace fluidfaas::core {
namespace {

using platform::FunctionSpec;
using platform::Instance;
using platform::InstanceState;
using platform::MakeFunctionSpec;
using platform::PlatformConfig;

class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest()
      : cluster_(gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition())),
        recorder_(cluster_) {
    std::vector<FunctionSpec> fns;
    fns.push_back(MakeFunctionSpec(FunctionId(0), 0, model::Variant::kMedium,
                                   model::BuildApp(0, model::Variant::kMedium),
                                   1.5));
    PlatformConfig config;
    config.service_jitter_cv = 0.0;  // exact arithmetic
    plat_ = std::make_unique<FluidFaasPlatform>(sim_, cluster_, recorder_,
                                                std::move(fns), config);
    plat_->Start();
  }

  /// Heat the function until it owns exclusive instances, then go idle.
  void WarmUp() {
    for (int i = 0; i < 250; ++i) {
      sim_.At(Millis(80) * i, [this] { plat_->Submit(FunctionId(0)); });
    }
    sim_.RunUntil(Seconds(30));
  }

  sim::Simulator sim_;
  gpu::Cluster cluster_;
  metrics::Recorder recorder_;
  std::unique_ptr<FluidFaasPlatform> plat_;
};

TEST_F(RoutingTest, HotInstancesServeBeforeTimeSharing) {
  WarmUp();
  ASSERT_GE(plat_->NumExclusiveHot(FunctionId(0)), 1);
  // Quiesce, then a single request: it must land on a hot instance (some
  // instance gains outstanding work while TS is absent or idle).
  sim_.RunUntil(Seconds(32));
  const std::size_t before = recorder_.completed_requests();
  plat_->Submit(FunctionId(0));
  bool hot_took_it = false;
  for (Instance* inst : plat_->InstancesOf(FunctionId(0))) {
    if (inst->outstanding() > 0 && inst->state() != InstanceState::kRetired) {
      hot_took_it = true;
    }
  }
  EXPECT_TRUE(hot_took_it);
  sim_.RunUntil(Seconds(200));
  EXPECT_GT(recorder_.completed_requests(), before);
}

TEST_F(RoutingTest, LowestServiceLatencyInstancePreferred) {
  WarmUp();
  auto insts = plat_->InstancesOf(FunctionId(0));
  // Find the fastest admitting instance.
  Instance* fastest = nullptr;
  for (Instance* inst : insts) {
    if (!inst->CanAdmit()) continue;
    if (fastest == nullptr ||
        inst->ServiceLatency() < fastest->ServiceLatency()) {
      fastest = inst;
    }
  }
  ASSERT_NE(fastest, nullptr);
  ASSERT_TRUE(fastest->Idle());
  plat_->Submit(FunctionId(0));
  EXPECT_GT(fastest->outstanding(), 0)
      << "request should go to the lowest-latency idle instance";
  sim_.RunUntil(Seconds(300));
}

TEST_F(RoutingTest, OverflowBeyondDeadlineUsesPendingSet) {
  WarmUp();
  sim_.RunUntil(Seconds(35));
  // Dump a large instantaneous burst: admission bounds cap per-instance
  // queues, the rest must sit in the EDF pending set (not FIFO queues).
  for (int i = 0; i < 200; ++i) plat_->Submit(FunctionId(0));
  std::size_t queued = 0;
  for (Instance* inst : plat_->InstancesOf(FunctionId(0))) {
    queued += static_cast<std::size_t>(inst->outstanding());
  }
  EXPECT_GT(plat_->PendingCount(), 0u);
  EXPECT_LT(queued, 200u);
  sim_.RunUntil(Seconds(400));
  EXPECT_EQ(recorder_.completed_requests(), recorder_.total_requests());
}

TEST_F(RoutingTest, EvictionCostShowsUpAsLoadTime) {
  // Two functions on one GPU (3 slices): after the first function's TS
  // instance is evicted for others, its next request pays a visible reload.
  sim::Simulator sim;
  auto cluster = gpu::Cluster::Uniform(1, 1, gpu::DefaultPartition());
  metrics::Recorder recorder(cluster);
  std::vector<FunctionSpec> fns;
  for (int a = 0; a < 4; ++a) {
    fns.push_back(MakeFunctionSpec(FunctionId(a), a, model::Variant::kSmall,
                                   model::BuildApp(a, model::Variant::kSmall),
                                   1.5));
  }
  PlatformConfig config;
  FluidFaasPlatform plat(sim, cluster, recorder, std::move(fns), config);
  plat.Start();
  // Touch fn0 first, then the other three (forcing fn0's eviction), then
  // fn0 again.
  sim.At(0, [&] { plat.Submit(FunctionId(0)); });
  for (int a = 1; a < 4; ++a) {
    sim.At(Seconds(10 * a), [&plat, a] { plat.Submit(FunctionId(a)); });
  }
  RequestId reload_rid;
  sim.At(Seconds(60), [&] { reload_rid = plat.Submit(FunctionId(0)); });
  sim.RunUntil(Seconds(200));
  ASSERT_GE(plat.evictions(), 1u);
  ASSERT_TRUE(recorder.record(reload_rid).done());
  // The reload is a warm load: hundreds of ms, not a cold multi-second
  // fetch and not zero.
  EXPECT_GT(recorder.record(reload_rid).load_time, Millis(100));
  EXPECT_LT(recorder.record(reload_rid).load_time, Seconds(4));
}

}  // namespace
}  // namespace fluidfaas::core
