// Randomized scenario tests: hammer the platforms with random traffic,
// random cluster shapes, and random mid-run perturbations, asserting the
// system-wide invariants that must survive anything:
//   * strong isolation (one instance per slice — checked inside Cluster),
//   * conservation (every submitted request completes exactly once),
//   * accounting sanity (busy time <= bound time <= wall time per slice),
//   * per-request timing adds up.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/esg_platform.h"
#include "baselines/repartition_platform.h"
#include "common/rng.h"
#include "core/ffs_distributed.h"
#include "core/ffs_platform.h"
#include "model/zoo.h"

namespace fluidfaas {
namespace {

using platform::FunctionSpec;
using platform::MakeFunctionSpec;
using platform::PlatformConfig;

gpu::MigPartition RandomPartition(Rng& rng) {
  const auto all = gpu::EnumerateMaximalPartitions();
  return all[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(all.size()) - 1))];
}

/// Random functions that the *monolithic* platforms can host at all on the
/// chosen partition (a function bigger than the partition's largest slice
/// would, correctly, never complete there — that case is covered by the
/// targeted fragmentation tests instead).
std::vector<FunctionSpec> RandomFunctions(Rng& rng,
                                          const gpu::MigPartition& part) {
  Bytes largest = 0;
  for (const auto& pl : part.placements()) {
    largest = std::max(largest, gpu::MemBytes(pl.profile));
  }
  std::vector<FunctionSpec> fns;
  const int n = static_cast<int>(rng.UniformInt(2, 6));
  int id = 0;
  int guard = 0;
  while (id < n && guard++ < 100) {
    const int app = static_cast<int>(rng.UniformInt(0, 3));
    auto variant = static_cast<model::Variant>(rng.UniformInt(0, 1));
    auto dag = model::BuildApp(app, variant);
    if (dag.TotalMemory() > largest) continue;
    fns.push_back(MakeFunctionSpec(FunctionId(id++), app, variant,
                                   std::move(dag), rng.Uniform(1.2, 3.0)));
  }
  if (fns.empty()) {
    fns.push_back(MakeFunctionSpec(FunctionId(0), 0, model::Variant::kSmall,
                                   model::BuildApp(0, model::Variant::kSmall),
                                   1.5));
  }
  return fns;
}

template <typename PlatformT>
void RunScenario(std::uint64_t seed) {
  Rng rng(seed);
  sim::Simulator sim;
  const gpu::MigPartition part = RandomPartition(rng);
  auto cluster = gpu::Cluster::Uniform(
      static_cast<int>(rng.UniformInt(1, 2)),
      static_cast<int>(rng.UniformInt(1, 4)), part);
  metrics::Recorder recorder(cluster);
  auto fns = RandomFunctions(rng, part);
  PlatformConfig config;
  config.seed = seed;
  PlatformT plat(sim, cluster, recorder, fns, config);
  plat.Start();

  const int requests = static_cast<int>(rng.UniformInt(50, 400));
  const SimTime span = Seconds(rng.Uniform(20, 90));
  for (int i = 0; i < requests; ++i) {
    const auto fn = FunctionId(static_cast<std::int32_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(fns.size()) - 1)));
    sim.At(rng.UniformInt(0, span), [&plat, fn] { plat.Submit(fn); });
  }
  // Run long enough for keep-alive expiries to unblock any starved
  // function on scarce clusters.
  ASSERT_NO_THROW(sim.RunUntil(span + Minutes(12)));
  plat.Stop();
  recorder.Close(sim.Now());

  // Conservation: everything submitted completed exactly once.
  EXPECT_EQ(recorder.completed_requests(),
            static_cast<std::size_t>(requests))
      << "seed " << seed;

  // Accounting: per-slice busy <= bound <= wall.
  for (const auto& s : recorder.PerSliceTotals()) {
    EXPECT_LE(s.busy, s.bound);
    EXPECT_LE(s.bound, recorder.end_time());
  }

  // Timing: for completed requests, components sum to at most the latency
  // (pipeline stages overlap transfers, so equality is not required), and
  // every piece is non-negative.
  for (const auto& rec : recorder.records()) {
    ASSERT_TRUE(rec.done());
    EXPECT_GE(rec.queue_time, 0);
    EXPECT_GE(rec.load_time, 0);
    EXPECT_GE(rec.exec_time, 0);
    EXPECT_GE(rec.transfer_time, 0);
    EXPECT_GT(rec.exec_time, 0);  // something actually ran
    EXPECT_LE(rec.queue_time + rec.load_time + rec.exec_time +
                  rec.transfer_time,
              rec.Latency() + Millis(1));
  }
}

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, FluidFaasSurvives) {
  RunScenario<core::FluidFaasPlatform>(GetParam());
}

TEST_P(FuzzSeedTest, EsgSurvives) {
  RunScenario<baselines::EsgPlatform>(GetParam() + 1000);
}

TEST_P(FuzzSeedTest, InflessSurvives) {
  RunScenario<baselines::InflessPlatform>(GetParam() + 2000);
}

TEST_P(FuzzSeedTest, RepartitionSurvives) {
  RunScenario<baselines::RepartitionPlatform>(GetParam() + 3000);
}

TEST_P(FuzzSeedTest, DistributedFluidFaasSurvives) {
  RunScenario<core::DistributedFluidFaas>(GetParam() + 4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace fluidfaas
