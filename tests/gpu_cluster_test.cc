#include "gpu/cluster.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace fluidfaas::gpu {
namespace {

Cluster MakeTestCluster() {
  // 2 nodes x 2 GPUs, default partition (4g+2g+1g) each: 12 slices total.
  return Cluster::Uniform(2, 2, DefaultPartition());
}

TEST(ClusterTest, TopologyCounts) {
  Cluster c = MakeTestCluster();
  EXPECT_EQ(c.num_nodes(), 2);
  EXPECT_EQ(c.num_gpus(), 4);
  EXPECT_EQ(c.num_slices(), 12u);
  EXPECT_EQ(c.TotalGpcs(), 28);
  EXPECT_EQ(c.BoundGpcs(), 0);
}

TEST(ClusterTest, SliceIdsAreDenseAndOrdered) {
  Cluster c = MakeTestCluster();
  auto all = c.AllSlices();
  ASSERT_EQ(all.size(), 12u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].value, static_cast<std::int32_t>(i));
    EXPECT_EQ(c.slice(all[i]).id, all[i]);
  }
}

TEST(ClusterTest, SlicesKnowTheirGpuAndNode) {
  Cluster c = MakeTestCluster();
  for (SliceId sid : c.AllSlices()) {
    const MigSlice& s = c.slice(sid);
    const Gpu& g = c.gpu(s.gpu);
    EXPECT_EQ(g.node(), s.node);
    bool found = false;
    for (const MigSlice& gs : g.slices()) {
      if (gs.id == sid) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(ClusterTest, BindReleaseLifecycle) {
  Cluster c = MakeTestCluster();
  const SliceId sid(0);
  const InstanceId inst(7);
  EXPECT_TRUE(c.slice(sid).free());
  c.Bind(sid, inst);
  EXPECT_FALSE(c.slice(sid).free());
  EXPECT_EQ(c.slice(sid).occupant, inst);
  EXPECT_EQ(c.BoundGpcs(), c.slice(sid).gpcs());
  c.Release(sid, inst);
  EXPECT_TRUE(c.slice(sid).free());
  EXPECT_EQ(c.BoundGpcs(), 0);
}

TEST(ClusterTest, StrongIsolationDoubleBindThrows) {
  Cluster c = MakeTestCluster();
  c.Bind(SliceId(0), InstanceId(1));
  EXPECT_THROW(c.Bind(SliceId(0), InstanceId(2)), FfsError);
  // Same instance re-binding the same slice is also a violation.
  EXPECT_THROW(c.Bind(SliceId(0), InstanceId(1)), FfsError);
}

TEST(ClusterTest, ReleaseByNonOccupantThrows) {
  Cluster c = MakeTestCluster();
  c.Bind(SliceId(0), InstanceId(1));
  EXPECT_THROW(c.Release(SliceId(0), InstanceId(2)), FfsError);
  EXPECT_THROW(c.Release(SliceId(1), InstanceId(1)), FfsError);
}

TEST(ClusterTest, BindInvalidInstanceThrows) {
  Cluster c = MakeTestCluster();
  EXPECT_THROW(c.Bind(SliceId(0), InstanceId()), FfsError);
}

TEST(ClusterTest, FreeSliceQueries) {
  Cluster c = MakeTestCluster();
  EXPECT_EQ(c.FreeSlices().size(), 12u);
  EXPECT_EQ(c.FreeSlices(MigProfile::k4g40gb).size(), 4u);
  EXPECT_EQ(c.FreeSlicesOnNode(NodeId(0)).size(), 6u);

  // Bind one 4g on node 0.
  for (SliceId sid : c.FreeSlices(MigProfile::k4g40gb)) {
    if (c.slice(sid).node == NodeId(0)) {
      c.Bind(sid, InstanceId(1));
      break;
    }
  }
  EXPECT_EQ(c.FreeSlices().size(), 11u);
  EXPECT_EQ(c.FreeSlices(MigProfile::k4g40gb).size(), 3u);
  EXPECT_EQ(c.FreeSlicesOnNode(NodeId(0)).size(), 5u);
  EXPECT_EQ(c.FreeSlicesOnNode(NodeId(1)).size(), 6u);
}

TEST(ClusterTest, SmallestFreeSliceWithMemoryPrefersFewestGpcs) {
  Cluster c = MakeTestCluster();
  // 8 GB fits everywhere; the 1g slice must win.
  auto sid = c.SmallestFreeSliceWithMemory(GiB(8));
  ASSERT_TRUE(sid.has_value());
  EXPECT_EQ(c.slice(*sid).profile(), MigProfile::k1g10gb);
  // 15 GB needs at least 2g.
  sid = c.SmallestFreeSliceWithMemory(GiB(15));
  ASSERT_TRUE(sid.has_value());
  EXPECT_EQ(c.slice(*sid).profile(), MigProfile::k2g20gb);
  // 35 GB needs the 4g.
  sid = c.SmallestFreeSliceWithMemory(GiB(35));
  ASSERT_TRUE(sid.has_value());
  EXPECT_EQ(c.slice(*sid).profile(), MigProfile::k4g40gb);
  // 45 GB fits nowhere on this partition.
  EXPECT_FALSE(c.SmallestFreeSliceWithMemory(GiB(45)).has_value());
}

TEST(ClusterTest, SmallestFreeSliceSkipsBoundSlices) {
  Cluster c = MakeTestCluster();
  for (SliceId sid : c.FreeSlices(MigProfile::k1g10gb)) {
    c.Bind(sid, InstanceId(1));
  }
  auto sid = c.SmallestFreeSliceWithMemory(GiB(8));
  ASSERT_TRUE(sid.has_value());
  EXPECT_EQ(c.slice(*sid).profile(), MigProfile::k2g20gb);
}

TEST(ClusterTest, GpuHasBoundSlice) {
  Cluster c = MakeTestCluster();
  EXPECT_FALSE(c.GpuHasBoundSlice(GpuId(0)));
  c.Bind(SliceId(0), InstanceId(1));
  const GpuId g = c.slice(SliceId(0)).gpu;
  EXPECT_TRUE(c.GpuHasBoundSlice(g));
}

TEST(ClusterTest, HeterogeneousPartitionsPerGpu) {
  std::vector<std::vector<MigPartition>> parts = {
      {MigPartition::Parse("7g.80gb"),
       MigPartition::Parse("3g.40gb+3g.40gb")}};
  Cluster c(std::move(parts));
  EXPECT_EQ(c.num_gpus(), 2);
  EXPECT_EQ(c.num_slices(), 3u);
  EXPECT_EQ(c.TotalGpcs(), 13);
}

TEST(ClusterTest, HybridSchemeBuilds) {
  Cluster c(std::vector<std::vector<MigPartition>>{PartitionSchemeHybrid()});
  EXPECT_EQ(c.num_gpus(), 8);
  EXPECT_EQ(c.FreeSlices(MigProfile::k1g10gb).size(), 7u + 2u + 1u);
}

TEST(GpuTest, RepartitionRequiresAllFree) {
  Cluster c = MakeTestCluster();
  c.Bind(SliceId(0), InstanceId(1));
  // Repartition of that GPU must fail while a slice is bound. (Occupancy can
  // only be set through Cluster::Bind — the mutable slice accessors are gone
  // — so the whole-cluster API is the only way to stage this.)
  const GpuId g = c.slice(SliceId(0)).gpu;
  EXPECT_THROW(c.RepartitionGpu(g, MigPartition::Parse("7g.80gb")), FfsError);
}

TEST(ReconfigCostTest, MinutesScaleCost) {
  ReconfigCostModel m;
  // Bare reconfiguration is already minutes (paper §2.2).
  EXPECT_GE(m.Cost(0), Minutes(3.0));
  // Checkpointing state adds to it.
  EXPECT_GT(m.Cost(GiB(40)), m.Cost(0));
}

// --- slice failure & repair -------------------------------------------------

TEST(ClusterFaultTest, FailedSliceLeavesEveryAllocationSurface) {
  Cluster c = MakeTestCluster();
  const SliceId sid = *c.SmallestFreeSliceWithMemory(GiB(1));
  const MigProfile profile = c.slice(sid).profile();
  c.MarkFailed(sid);

  EXPECT_TRUE(c.IsFailed(sid));
  EXPECT_FALSE(c.slice(sid).allocatable());
  EXPECT_EQ(c.FailedSlices(), std::vector<SliceId>{sid});
  for (SliceId s : c.FreeSlices(profile)) EXPECT_NE(s, sid);
  for (SliceId s : c.FreeSlicesOnNode(c.slice(sid).node)) EXPECT_NE(s, sid);
  auto pick = c.SmallestFreeSliceWithMemory(GiB(1));
  ASSERT_TRUE(pick.has_value());
  EXPECT_NE(*pick, sid);
}

TEST(ClusterFaultTest, FailureIsContainedToOneSlice) {
  Cluster c = MakeTestCluster();
  const SliceId sid = SliceId(0);
  const GpuId gpu = c.slice(sid).gpu;
  c.MarkFailed(sid);
  // Strong isolation: sibling slices of the same GPU keep serving.
  for (SliceId s : c.AllSlices()) {
    if (s == sid) continue;
    EXPECT_TRUE(c.slice(s).allocatable()) << s.value;
    if (c.slice(s).gpu == gpu) {
      c.Bind(s, InstanceId(1));
      c.Release(s, InstanceId(1));
    }
  }
}

TEST(ClusterFaultTest, RepairRestoresAllocatability) {
  Cluster c = MakeTestCluster();
  const SliceId sid = SliceId(2);
  c.MarkFailed(sid);
  c.Repair(sid);
  EXPECT_FALSE(c.IsFailed(sid));
  EXPECT_TRUE(c.slice(sid).allocatable());
  EXPECT_TRUE(c.FailedSlices().empty());
  c.Bind(sid, InstanceId(7));  // usable again
  EXPECT_EQ(c.slice(sid).occupant, InstanceId(7));
}

TEST(ClusterFaultTest, GuardsRejectInvalidTransitions) {
  Cluster c = MakeTestCluster();
  c.Bind(SliceId(0), InstanceId(1));
  // A bound slice cannot fail directly: the platform crashes and releases
  // the occupant first.
  EXPECT_THROW(c.MarkFailed(SliceId(0)), FfsError);
  c.Release(SliceId(0), InstanceId(1));
  c.MarkFailed(SliceId(0));
  EXPECT_THROW(c.MarkFailed(SliceId(0)), FfsError);  // double failure
  EXPECT_THROW(c.Bind(SliceId(0), InstanceId(2)), FfsError);
  EXPECT_THROW(c.Repair(SliceId(1)), FfsError);  // healthy slice
}

// --- typed error codes ------------------------------------------------------
//
// Callers (PlatformCore::Commit validation, recovery paths, these tests)
// dispatch on FfsError::code() instead of parsing message strings.

TEST(ClusterErrorCodeTest, BindOccupiedRaisesSliceOccupied) {
  Cluster c = MakeTestCluster();
  c.Bind(SliceId(0), InstanceId(1));
  try {
    c.Bind(SliceId(0), InstanceId(2));
    FAIL() << "double bind must throw";
  } catch (const FfsError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSliceOccupied);
  }
}

TEST(ClusterErrorCodeTest, BindFailedRaisesSliceFailed) {
  Cluster c = MakeTestCluster();
  c.MarkFailed(SliceId(0));
  try {
    c.Bind(SliceId(0), InstanceId(1));
    FAIL() << "bind on failed slice must throw";
  } catch (const FfsError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSliceFailed);
  }
}

TEST(ClusterErrorCodeTest, ReleaseByNonOccupantRaisesNotOccupant) {
  Cluster c = MakeTestCluster();
  c.Bind(SliceId(0), InstanceId(1));
  try {
    c.Release(SliceId(0), InstanceId(2));
    FAIL() << "release by non-occupant must throw";
  } catch (const FfsError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotOccupant);
  }
  try {
    c.Release(SliceId(1), InstanceId(1));  // free slice, no occupant at all
    FAIL() << "release of a free slice must throw";
  } catch (const FfsError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotOccupant);
  }
}

TEST(ClusterErrorCodeTest, RetiredSliceAccessRaisesSliceRetired) {
  Cluster c = MakeTestCluster();
  const GpuId gpu = c.slice(SliceId(0)).gpu;
  c.RepartitionGpu(gpu, MigPartition::Parse("7g.80gb"));
  ASSERT_TRUE(c.IsDead(SliceId(0)));
  try {
    (void)c.slice(SliceId(0));
    FAIL() << "retired slice access must throw";
  } catch (const FfsError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSliceRetired);
  }
}

TEST(ClusterFaultTest, RepairAfterRepartitionIsANoOp) {
  Cluster c = MakeTestCluster();
  const SliceId sid = SliceId(0);
  const GpuId gpu = c.slice(sid).gpu;
  c.MarkFailed(sid);
  // Repartitioning replaces the broken slice with fresh ids; the repair
  // scheduled for the old id must land harmlessly.
  const auto fresh = c.RepartitionGpu(gpu, MigPartition::Parse("7g.80gb"));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_TRUE(c.IsDead(sid));
  EXPECT_FALSE(c.IsFailed(sid));
  c.Repair(sid);  // no throw
  EXPECT_TRUE(c.slice(fresh[0]).allocatable());
}

TEST(ClusterTest, InvalidIdsThrow) {
  Cluster c = MakeTestCluster();
  EXPECT_THROW(c.slice(SliceId()), FfsError);
  EXPECT_THROW(c.slice(SliceId(999)), FfsError);
  EXPECT_THROW(c.gpu(GpuId(99)), FfsError);
}

TEST(ClusterTest, DescribeMentionsEveryGpu) {
  Cluster c = MakeTestCluster();
  const std::string d = c.Describe();
  EXPECT_NE(d.find("gpu 0"), std::string::npos);
  EXPECT_NE(d.find("gpu 3"), std::string::npos);
  EXPECT_NE(d.find("4g.40gb"), std::string::npos);
}

}  // namespace
}  // namespace fluidfaas::gpu
