#include "gpu/mig_partition.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace fluidfaas::gpu {
namespace {

TEST(PartitionTest, PaperDefaultPartitionIsValid) {
  MigPartition p = DefaultPartition();
  EXPECT_EQ(p.slice_count(), 3u);
  EXPECT_EQ(p.total_gpcs(), 7);
  EXPECT_EQ(p.total_memory(), GiB(70));
  EXPECT_EQ(p.Profiles(),
            (std::vector<MigProfile>{MigProfile::k1g10gb, MigProfile::k2g20gb,
                                     MigProfile::k4g40gb}));
}

// Valid partition specs from the paper (§2.2 and Table 7).
class ValidSpecTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ValidSpecTest, Parses) {
  const MigPartition p = MigPartition::Parse(GetParam());
  EXPECT_LE(p.total_gpcs(), kGpcsPerGpu);
  EXPECT_FALSE(p.placements().empty());
}

INSTANTIATE_TEST_SUITE_P(
    PaperPartitions, ValidSpecTest,
    ::testing::Values("4g.40gb+2g.20gb+1g.10gb",      // default / P1
                      "3g.40gb+2g.20gb+2g.20gb",      // P2
                      "4g.40gb+3g.40gb",              // §2.2 example
                      "3g.40gb+4g.40gb",              // hybrid row
                      "2g.20gb+2g.20gb+2g.20gb+1g.10gb",
                      "1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb",
                      "7g.80gb", "3g.40gb+3g.40gb"));

// Profile multisets that violate the placement rules or Table 2 limits.
class InvalidSpecTest : public ::testing::TestWithParam<const char*> {};

TEST_P(InvalidSpecTest, Rejected) {
  EXPECT_THROW(MigPartition::Parse(GetParam()), FfsError);
}

INSTANTIATE_TEST_SUITE_P(
    Invalid, InvalidSpecTest,
    ::testing::Values("4g.40gb+4g.40gb",            // max count 1
                      "7g.80gb+1g.10gb",            // GPC overflow
                      "3g.40gb+3g.40gb+1g.10gb",    // no memory slot left
                      "4g.40gb+3g.40gb+1g.10gb",    // GPC overflow (8)
                      "2g.20gb+2g.20gb+2g.20gb+2g.20gb",  // max count 3
                      "1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb+"
                      "1g.10gb+1g.10gb"));          // max count 7

TEST(PartitionTest, ExplicitPlacementValidation) {
  // 2g at slot 1 is illegal (allowed: 0, 2, 4).
  EXPECT_TRUE(ValidatePlacements({{MigProfile::k2g20gb, 1}}).has_value());
  // Overlap: 3g at 0-3 and 2g at 2-3.
  EXPECT_TRUE(ValidatePlacements(
                  {{MigProfile::k3g40gb, 0}, {MigProfile::k2g20gb, 2}})
                  .has_value());
  // Legal: 3g at 4-7 with 2g at 0-1 and 2g at 2-3 (the P2 layout).
  EXPECT_FALSE(ValidatePlacements({{MigProfile::k3g40gb, 4},
                                   {MigProfile::k2g20gb, 0},
                                   {MigProfile::k2g20gb, 2}})
                   .has_value());
}

TEST(PartitionTest, FromProfilesFindsPlacementNeedingBacktracking) {
  // 3g must take the upper half so the two 2g instances fit below.
  auto p = MigPartition::FromProfiles(
      {MigProfile::k2g20gb, MigProfile::k2g20gb, MigProfile::k3g40gb});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->total_gpcs(), 7);
}

TEST(PartitionTest, FromProfilesReturnsNulloptWhenUnplaceable) {
  EXPECT_FALSE(MigPartition::FromProfiles(
                   {MigProfile::k4g40gb, MigProfile::k4g40gb})
                   .has_value());
  EXPECT_FALSE(MigPartition::FromProfiles({MigProfile::k3g40gb,
                                           MigProfile::k3g40gb,
                                           MigProfile::k1g10gb})
                   .has_value());
}

TEST(PartitionTest, EnumerationInvariants) {
  const auto parts = EnumerateMaximalPartitions();
  ASSERT_FALSE(parts.empty());
  std::set<std::vector<Placement>> unique;
  for (const MigPartition& p : parts) {
    EXPECT_LE(p.total_gpcs(), kGpcsPerGpu);
    EXPECT_FALSE(ValidatePlacements(p.placements()).has_value());
    EXPECT_TRUE(p.IsMaximal()) << p.ToString();
    unique.insert(p.placements());
  }
  EXPECT_EQ(unique.size(), parts.size());  // no duplicates
}

TEST(PartitionTest, EnumerationCountsAreCharacterized) {
  // With the paper's five profiles (Table 2) and A100 placement rules, the
  // enumerator finds 19 placement-distinct maximal configurations over 14
  // distinct profile multisets. (NVIDIA's "18 configurations" figure counts
  // a slightly different universe that includes the 1g.20gb profile the
  // paper's table omits.) These counts are pinned so an accidental rule
  // change fails loudly.
  EXPECT_EQ(EnumerateMaximalPartitions().size(), 19u);
  EXPECT_EQ(EnumerateMaximalShapes().size(), 14u);
}

TEST(PartitionTest, EnumerationContainsPaperConfigs) {
  const auto shapes = EnumerateMaximalShapes();
  auto contains = [&](const std::string& spec) {
    const auto want = MigPartition::Parse(spec).Profiles();
    for (const auto& s : shapes) {
      if (s == want) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("4g.40gb+2g.20gb+1g.10gb"));
  EXPECT_TRUE(contains("3g.40gb+2g.20gb+2g.20gb"));
  EXPECT_TRUE(contains("4g.40gb+3g.40gb"));
  EXPECT_TRUE(contains("7g.80gb"));
  EXPECT_TRUE(contains(
      "1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb+1g.10gb"));
}

TEST(PartitionTest, IsMaximalDetectsNonMaximal) {
  // A lone 4g leaves the upper half free for a 3g (or 2g+1g...).
  MigPartition p({{MigProfile::k4g40gb, 0}});
  EXPECT_FALSE(p.IsMaximal());
  // 3g@0 + 2g@4 + 1g@6 fills every reachable slot (slot 7 unreachable).
  MigPartition full({{MigProfile::k3g40gb, 0},
                     {MigProfile::k2g20gb, 4},
                     {MigProfile::k1g10gb, 6}});
  EXPECT_TRUE(full.IsMaximal());
}

TEST(PartitionTest, SchemesOfTable7) {
  const auto p1 = PartitionSchemeP1(8);
  ASSERT_EQ(p1.size(), 8u);
  for (const auto& p : p1) EXPECT_EQ(p.ToString(), DefaultPartition().ToString());

  const auto p2 = PartitionSchemeP2(8);
  ASSERT_EQ(p2.size(), 8u);
  for (const auto& p : p2) {
    EXPECT_EQ(p.Profiles(),
              (std::vector<MigProfile>{MigProfile::k2g20gb,
                                       MigProfile::k2g20gb,
                                       MigProfile::k3g40gb}));
  }

  const auto hybrid = PartitionSchemeHybrid();
  ASSERT_EQ(hybrid.size(), 8u);
  // Row 1: one GPU of seven 1g slices.
  EXPECT_EQ(hybrid[0].slice_count(), 7u);
  // Rows 2-3: 2g x3 + 1g.
  EXPECT_EQ(hybrid[1].total_gpcs(), 7);
  EXPECT_EQ(hybrid[2].Profiles(), hybrid[1].Profiles());
  // Rows 4-7: 3g + 4g.
  for (int i = 3; i < 7; ++i) {
    EXPECT_EQ(hybrid[static_cast<std::size_t>(i)].slice_count(), 2u);
  }
  // Row 8: the default partition.
  EXPECT_EQ(hybrid[7].Profiles(), DefaultPartition().Profiles());
}

TEST(PartitionTest, ToStringAndParseRoundTrip) {
  const MigPartition p = MigPartition::Parse("3g.40gb+2g.20gb+2g.20gb");
  const MigPartition q = MigPartition::Parse(p.ToString());
  EXPECT_EQ(p.Profiles(), q.Profiles());
}

TEST(PartitionTest, ParseToleratesSpaces) {
  const MigPartition p = MigPartition::Parse(" 4g.40gb + 3g.40gb ");
  EXPECT_EQ(p.slice_count(), 2u);
}

TEST(PartitionTest, EmptyPartitionDescribes) {
  MigPartition p;
  EXPECT_EQ(p.ToString(), "(empty)");
  EXPECT_EQ(p.total_gpcs(), 0);
}

}  // namespace
}  // namespace fluidfaas::gpu
