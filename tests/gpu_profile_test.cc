#include "gpu/mig_profile.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace fluidfaas::gpu {
namespace {

// Table 2 of the paper: the complete MIG profile list of an A100.
struct Table2Row {
  MigProfile profile;
  int gpcs;
  int mem_gb;
  int max_count;
  const char* name;
};

class ProfileTableTest : public ::testing::TestWithParam<Table2Row> {};

TEST_P(ProfileTableTest, MatchesPaperTable2) {
  const Table2Row& row = GetParam();
  const ProfileInfo& info = Info(row.profile);
  EXPECT_EQ(info.gpcs, row.gpcs);
  EXPECT_EQ(info.mem_slots * 10, row.mem_gb);
  EXPECT_EQ(info.max_count, row.max_count);
  EXPECT_STREQ(info.name, row.name);
  EXPECT_EQ(MemBytes(row.profile), static_cast<Bytes>(row.mem_gb) * kGiB);
  EXPECT_EQ(Gpcs(row.profile), row.gpcs);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, ProfileTableTest,
    ::testing::Values(
        Table2Row{MigProfile::k1g10gb, 1, 10, 7, "1g.10gb"},
        Table2Row{MigProfile::k2g20gb, 2, 20, 3, "2g.20gb"},
        Table2Row{MigProfile::k3g40gb, 3, 40, 2, "3g.40gb"},
        Table2Row{MigProfile::k4g40gb, 4, 40, 1, "4g.40gb"},
        Table2Row{MigProfile::k7g80gb, 7, 80, 1, "7g.80gb"}));

TEST(ProfileTest, ParseRoundTrips) {
  for (MigProfile p : kAllProfiles) {
    EXPECT_EQ(ProfileFromName(Name(p)), p);
  }
}

TEST(ProfileTest, ParseRejectsUnknown) {
  EXPECT_THROW(ProfileFromName("5g.50gb"), FfsError);
  EXPECT_THROW(ProfileFromName(""), FfsError);
  EXPECT_THROW(ProfileFromName("1G.10GB"), FfsError);
}

TEST(ProfileTest, SmallestProfileForMemory) {
  MigProfile p;
  ASSERT_TRUE(SmallestProfileForMemory(GiB(1), p));
  EXPECT_EQ(p, MigProfile::k1g10gb);
  ASSERT_TRUE(SmallestProfileForMemory(GiB(10), p));
  EXPECT_EQ(p, MigProfile::k1g10gb);
  ASSERT_TRUE(SmallestProfileForMemory(GiB(10) + 1, p));
  EXPECT_EQ(p, MigProfile::k2g20gb);
  ASSERT_TRUE(SmallestProfileForMemory(GiB(25), p));
  EXPECT_EQ(p, MigProfile::k3g40gb);  // 3g has 40 GB and fewer GPCs than 4g
  ASSERT_TRUE(SmallestProfileForMemory(GiB(41), p));
  EXPECT_EQ(p, MigProfile::k7g80gb);
  EXPECT_FALSE(SmallestProfileForMemory(GiB(81), p));
}

TEST(ProfileTest, AscendingOrderByGpcs) {
  auto ps = ProfilesAscending();
  ASSERT_EQ(ps.size(), kAllProfiles.size());
  for (std::size_t i = 1; i < ps.size(); ++i) {
    EXPECT_LE(Gpcs(ps[i - 1]), Gpcs(ps[i]));
  }
  EXPECT_EQ(ps.front(), MigProfile::k1g10gb);
  EXPECT_EQ(ps.back(), MigProfile::k7g80gb);
}

TEST(ProfileTest, PlacementRulesMatchHardware) {
  EXPECT_EQ(AllowedStartSlots(MigProfile::k1g10gb),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(AllowedStartSlots(MigProfile::k2g20gb),
            (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(AllowedStartSlots(MigProfile::k3g40gb), (std::vector<int>{0, 4}));
  EXPECT_EQ(AllowedStartSlots(MigProfile::k4g40gb), (std::vector<int>{0}));
  EXPECT_EQ(AllowedStartSlots(MigProfile::k7g80gb), (std::vector<int>{0}));
}

TEST(ProfileTest, GpuConstantsMatchA100) {
  EXPECT_EQ(kGpcsPerGpu, 7);
  EXPECT_EQ(kMemSlotsPerGpu, 8);
  EXPECT_EQ(kMemPerSlot, 10ll * kGiB);
}

}  // namespace
}  // namespace fluidfaas::gpu
