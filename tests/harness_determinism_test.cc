// Attaching observers must never change the simulation: the same seed with
// and without the Chrome-trace exporter yields bit-identical metrics.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.h"

namespace fluidfaas::harness {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.system = SystemKind::kFluidFaas;
  cfg.tier = trace::WorkloadTier::kLight;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 4;
  cfg.duration = Seconds(60);
  cfg.seed = 4242;
  return cfg;
}

TEST(HarnessDeterminismTest, TraceExporterDoesNotPerturbTheRun) {
  ExperimentConfig plain = SmallConfig();
  ExperimentConfig traced = SmallConfig();
  const std::string path = ::testing::TempDir() + "ffs_determinism_trace.json";
  traced.trace_out = path;

  const ExperimentResult a = RunExperiment(plain);
  const ExperimentResult b = RunExperiment(traced);

  // Bit-identical headline metrics...
  EXPECT_EQ(a.slo_hit_rate, b.slo_hit_rate);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.recorder->total_requests(), b.recorder->total_requests());
  EXPECT_EQ(a.recorder->completed_requests(),
            b.recorder->completed_requests());
  EXPECT_EQ(a.recorder->MigTime(), b.recorder->MigTime());
  EXPECT_EQ(a.recorder->GpuTime(), b.recorder->GpuTime());
  // ...down to every per-request latency.
  EXPECT_EQ(a.recorder->LatenciesSeconds(), b.recorder->LatenciesSeconds());
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.pipelines_launched, b.pipelines_launched);

  // And the trace file is a non-empty Chrome-trace JSON.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string trace = ss.str();
  EXPECT_FALSE(trace.empty());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\""), std::string::npos);
}

TEST(HarnessDeterminismTest, SameSeedSameResultAcrossSystems) {
  for (SystemKind kind :
       {SystemKind::kEsg, SystemKind::kInfless, SystemKind::kRepartition,
        SystemKind::kFluidFaasDistributed}) {
    ExperimentConfig cfg = SmallConfig();
    cfg.system = kind;
    cfg.duration = Seconds(30);
    const ExperimentResult a = RunExperiment(cfg);
    const ExperimentResult b = RunExperiment(cfg);
    EXPECT_EQ(a.slo_hit_rate, b.slo_hit_rate) << Name(kind);
    EXPECT_EQ(a.recorder->LatenciesSeconds(),
              b.recorder->LatenciesSeconds())
        << Name(kind);
  }
}

}  // namespace
}  // namespace fluidfaas::harness
