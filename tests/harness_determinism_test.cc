// Attaching observers must never change the simulation: the same seed with
// and without the Chrome-trace exporter yields bit-identical metrics.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "harness/sweep.h"

namespace fluidfaas::harness {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.system = SystemKind::kFluidFaas;
  cfg.tier = trace::WorkloadTier::kLight;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 4;
  cfg.duration = Seconds(60);
  cfg.seed = 4242;
  return cfg;
}

TEST(HarnessDeterminismTest, TraceExporterDoesNotPerturbTheRun) {
  ExperimentConfig plain = SmallConfig();
  ExperimentConfig traced = SmallConfig();
  const std::string path = ::testing::TempDir() + "ffs_determinism_trace.json";
  traced.trace_out = path;

  const ExperimentResult a = RunExperiment(plain);
  const ExperimentResult b = RunExperiment(traced);

  // Bit-identical headline metrics...
  EXPECT_EQ(a.slo_hit_rate, b.slo_hit_rate);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.recorder->total_requests(), b.recorder->total_requests());
  EXPECT_EQ(a.recorder->completed_requests(),
            b.recorder->completed_requests());
  EXPECT_EQ(a.recorder->MigTime(), b.recorder->MigTime());
  EXPECT_EQ(a.recorder->GpuTime(), b.recorder->GpuTime());
  // ...down to every per-request latency.
  EXPECT_EQ(a.recorder->LatenciesSeconds(), b.recorder->LatenciesSeconds());
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.pipelines_launched, b.pipelines_launched);

  // And the trace file is a non-empty Chrome-trace JSON.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string trace = ss.str();
  EXPECT_FALSE(trace.empty());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\""), std::string::npos);
}

TEST(HarnessDeterminismTest, SameSeedSameResultAcrossSystems) {
  for (SystemKind kind :
       {SystemKind::kEsg, SystemKind::kInfless, SystemKind::kRepartition,
        SystemKind::kFluidFaasDistributed}) {
    ExperimentConfig cfg = SmallConfig();
    cfg.system = kind;
    cfg.duration = Seconds(30);
    const ExperimentResult a = RunExperiment(cfg);
    const ExperimentResult b = RunExperiment(cfg);
    EXPECT_EQ(a.slo_hit_rate, b.slo_hit_rate) << Name(kind);
    EXPECT_EQ(a.recorder->LatenciesSeconds(),
              b.recorder->LatenciesSeconds())
        << Name(kind);
  }
}

// --- fault injection --------------------------------------------------------

TEST(HarnessDeterminismTest, FaultRateZeroIsCompletelyInert) {
  // Every other fault knob must be ignored at rate 0: the injector is never
  // constructed and no timeout timers are armed, so the run is the same
  // event-for-event as one that never heard of fault injection.
  ExperimentConfig plain = SmallConfig();
  ExperimentConfig zeroed = SmallConfig();
  zeroed.faults.rate = 0.0;
  zeroed.faults.seed = 999;
  zeroed.faults.mttr = Seconds(1);

  const ExperimentResult a = RunExperiment(plain);
  const ExperimentResult b = RunExperiment(zeroed);
  EXPECT_EQ(a.slo_hit_rate, b.slo_hit_rate);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.recorder->LatenciesSeconds(), b.recorder->LatenciesSeconds());
  EXPECT_EQ(a.goodput_rps, b.goodput_rps);
  EXPECT_EQ(b.timeouts, 0u);
  EXPECT_EQ(b.retries, 0u);
  EXPECT_EQ(b.instances_failed, 0u);
  // Without timeouts/abandonment, goodput degenerates to SLO-hit throughput
  // and every request finishes by completing.
  EXPECT_EQ(b.recorder->finished_requests(),
            b.recorder->completed_requests());
}

ExperimentConfig FaultyConfig(std::uint64_t fault_seed) {
  ExperimentConfig cfg = SmallConfig();
  cfg.duration = Seconds(30);
  cfg.faults.rate = 0.2;  // ~6 faults over the run
  cfg.faults.seed = fault_seed;
  cfg.faults.mttr = Seconds(10);
  cfg.faults.timeout_scale = 3.0;
  return cfg;
}

TEST(HarnessDeterminismTest, SameFaultSeedReplaysTheSameDisruption) {
  const ExperimentConfig cfg = FaultyConfig(77);
  const ExperimentResult a = RunExperiment(cfg);
  const ExperimentResult b = RunExperiment(cfg);
  EXPECT_EQ(a.slo_hit_rate, b.slo_hit_rate);
  EXPECT_EQ(a.goodput_rps, b.goodput_rps);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.instances_failed, b.instances_failed);
  EXPECT_EQ(a.slices_failed, b.slices_failed);
  EXPECT_EQ(a.recorder->LatenciesSeconds(), b.recorder->LatenciesSeconds());
}

TEST(HarnessDeterminismTest, DifferentFaultSeedsDisagree) {
  const ExperimentResult a = RunExperiment(FaultyConfig(77));
  const ExperimentResult c = RunExperiment(FaultyConfig(78));
  const bool identical =
      a.recorder->LatenciesSeconds() == c.recorder->LatenciesSeconds() &&
      a.timeouts == c.timeouts && a.retries == c.retries &&
      a.instances_failed == c.instances_failed &&
      a.slices_failed == c.slices_failed;
  EXPECT_FALSE(identical);
}

// --- parallel sweeps --------------------------------------------------------

SweepSpec SmallSweep() {
  SweepSpec spec;
  spec.base = SmallConfig();
  spec.base.duration = Seconds(30);
  spec.systems = {SystemKind::kInfless, SystemKind::kEsg,
                  SystemKind::kFluidFaas};
  spec.seeds = {1, 2};
  return spec;
}

std::string SweepJson(const SweepOutcome& outcome) {
  std::ostringstream os;
  WriteSweepJson(outcome, os, /*include_timing=*/false);
  return os.str();
}

// The acceptance guarantee of the sweep engine: the deterministic payload of
// BENCH_sweep.json is byte-identical no matter how many workers ran the
// grid, because results land by grid index, never by completion order.
TEST(HarnessDeterminismTest, SweepJsonIsByteIdenticalAcrossJobCounts) {
  const SweepOutcome serial = RunSweep(SmallSweep(), 1);
  const std::string reference = SweepJson(serial);
  ASSERT_FALSE(reference.empty());
  EXPECT_NE(reference.find("\"fluidfaas.sweep.v1\""), std::string::npos);

  for (int jobs : {4, 8}) {
    const SweepOutcome parallel = RunSweep(SmallSweep(), jobs);
    EXPECT_EQ(SweepJson(parallel), reference) << "jobs=" << jobs;

    // Beyond the serialized document: the full recorder state of every cell
    // matches the serial run, down to each per-request latency.
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      const SweepCell& a = serial.cells[i];
      const SweepCell& b = parallel.cells[i];
      EXPECT_EQ(a.point.index, b.point.index);
      EXPECT_EQ(a.point.system, b.point.system);
      EXPECT_EQ(a.point.seed, b.point.seed);
      EXPECT_EQ(a.result.slo_hit_rate, b.result.slo_hit_rate) << i;
      EXPECT_EQ(a.result.throughput_rps, b.result.throughput_rps) << i;
      EXPECT_EQ(a.result.makespan, b.result.makespan) << i;
      EXPECT_EQ(a.result.recorder->LatenciesSeconds(),
                b.result.recorder->LatenciesSeconds())
          << i;
    }
  }
}

// The timing block is the only nondeterministic part of the document, and
// only present when asked for.
TEST(HarnessDeterminismTest, SweepTimingBlockIsOptIn) {
  SweepSpec spec;
  spec.base = SmallConfig();
  spec.base.duration = Seconds(10);
  const SweepOutcome o = RunSweep(spec, 1);

  std::ostringstream with_timing;
  WriteSweepJson(o, with_timing, /*include_timing=*/true);
  EXPECT_NE(with_timing.str().find("\"timing\""), std::string::npos);
  EXPECT_NE(with_timing.str().find("\"speedup\""), std::string::npos);
  EXPECT_EQ(SweepJson(o).find("\"timing\""), std::string::npos);
}

TEST(HarnessDeterminismTest, FaultyRunsStillDrainAndAccountEveryRequest) {
  const ExperimentResult r = RunExperiment(FaultyConfig(5));
  // Injection happened and the availability story is consistent: every
  // submitted request reached a terminal state, and goodput can only lose
  // against raw throughput.
  EXPECT_GT(r.instances_failed + r.slices_failed + r.timeouts, 0u);
  EXPECT_EQ(r.recorder->finished_requests(), r.recorder->total_requests());
  EXPECT_LE(r.goodput_rps, r.throughput_rps);
}

}  // namespace
}  // namespace fluidfaas::harness
