// Sweep engine mechanics: grid expansion order, per-cell config synthesis,
// result placement by input order, the FFS_JOBS knob's strict parsing, and
// the artifact path override. Determinism across job counts is pinned in
// harness_determinism_test.cc.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/error.h"
#include "harness/sweep.h"

namespace fluidfaas::harness {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig cfg;
  cfg.system = SystemKind::kFluidFaas;
  cfg.tier = trace::WorkloadTier::kLight;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 4;
  cfg.duration = Seconds(20);
  cfg.seed = 7;
  return cfg;
}

// RAII env var for the FFS_JOBS / FFS_SWEEP_OUT tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) saved_ = prev;
    had_ = prev != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(SweepSpecTest, EmptyAxesExpandToOneBaseCell) {
  SweepSpec spec;
  spec.base = TinyConfig();
  EXPECT_EQ(spec.size(), 1u);
  const auto points = spec.Points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].index, 0u);
  EXPECT_EQ(points[0].system, spec.base.system);
  EXPECT_EQ(points[0].tier, spec.base.tier);
  EXPECT_EQ(points[0].seed, spec.base.seed);
  EXPECT_EQ(points[0].load_factor, spec.base.load_factor);
  EXPECT_EQ(points[0].fault_rate, spec.base.faults.rate);
}

TEST(SweepSpecTest, GridExpandsRowMajorWithSystemInnermost) {
  SweepSpec spec;
  spec.base = TinyConfig();
  spec.tiers = {trace::WorkloadTier::kLight, trace::WorkloadTier::kMedium};
  spec.seeds = {10, 20, 30};
  spec.systems = {SystemKind::kEsg, SystemKind::kFluidFaas};
  ASSERT_EQ(spec.size(), 12u);
  const auto points = spec.Points();
  ASSERT_EQ(points.size(), 12u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }
  // Nesting (outer -> inner): tier, load, fault rate, seed, system.
  EXPECT_EQ(points[0].tier, trace::WorkloadTier::kLight);
  EXPECT_EQ(points[0].seed, 10u);
  EXPECT_EQ(points[0].system, SystemKind::kEsg);
  EXPECT_EQ(points[1].system, SystemKind::kFluidFaas);  // system flips first
  EXPECT_EQ(points[2].seed, 20u);                       // then seed
  EXPECT_EQ(points[2].system, SystemKind::kEsg);
  EXPECT_EQ(points[6].tier, trace::WorkloadTier::kMedium);  // tier last
  EXPECT_EQ(points[6].seed, 10u);
  EXPECT_EQ(points[11].tier, trace::WorkloadTier::kMedium);
  EXPECT_EQ(points[11].seed, 30u);
  EXPECT_EQ(points[11].system, SystemKind::kFluidFaas);
}

TEST(SweepSpecTest, MakeConfigAppliesAxesThenTweakHook) {
  SweepSpec spec;
  spec.base = TinyConfig();
  spec.base.load_factor = 0.5;
  spec.systems = {SystemKind::kEsg};
  spec.fault_rates = {0.25};
  spec.tweak = [](ExperimentConfig& cfg, const SweepPoint& point) {
    // The hook sees axis values already applied and may refine anything.
    EXPECT_EQ(cfg.faults.rate, 0.25);
    cfg.gpus_per_node = static_cast<int>(point.index) + 2;
  };
  const auto points = spec.Points();
  ASSERT_EQ(points.size(), 1u);
  const ExperimentConfig cfg = spec.MakeConfig(points[0]);
  EXPECT_EQ(cfg.system, SystemKind::kEsg);
  EXPECT_EQ(cfg.faults.rate, 0.25);
  EXPECT_EQ(cfg.load_factor, 0.5);  // untouched base value survives
  EXPECT_EQ(cfg.gpus_per_node, 2);  // tweak ran last
}

TEST(SweepRunTest, ResultsLandByGridIndexNotCompletionOrder) {
  SweepSpec spec;
  spec.base = TinyConfig();
  // Mixed-duration cells: the short ones finish first on a pool, yet the
  // outcome must still be ordered by grid index.
  spec.systems = {SystemKind::kInfless, SystemKind::kEsg,
                  SystemKind::kFluidFaas};
  spec.tweak = [](ExperimentConfig& cfg, const SweepPoint& point) {
    cfg.duration = Seconds(10.0 * static_cast<double>(3 - point.index));
  };
  const SweepOutcome o = RunSweep(spec, 3);
  ASSERT_EQ(o.cells.size(), 3u);
  EXPECT_EQ(o.cells[0].result.system, "INFless");
  EXPECT_EQ(o.cells[1].result.system, "ESG");
  EXPECT_EQ(o.cells[2].result.system, "FluidFaaS");
  EXPECT_EQ(o.jobs, 3);
  EXPECT_GT(o.wall_seconds, 0.0);
  EXPECT_GT(o.cell_seconds_total, 0.0);
  EXPECT_GT(o.Speedup(), 0.0);
}

TEST(SweepRunTest, RunConfigsPreservesInputOrder) {
  std::vector<ExperimentConfig> cells;
  for (SystemKind kind : {SystemKind::kFluidFaas, SystemKind::kInfless,
                          SystemKind::kEsg, SystemKind::kFluidFaas}) {
    ExperimentConfig cfg = TinyConfig();
    cfg.system = kind;
    cfg.duration = Seconds(10);
    cells.push_back(cfg);
  }
  const auto results = RunConfigs(cells, 4);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].system, "FluidFaaS");
  EXPECT_EQ(results[1].system, "INFless");
  EXPECT_EQ(results[2].system, "ESG");
  EXPECT_EQ(results[3].system, "FluidFaaS");
}

TEST(SweepRunTest, CellExceptionsPropagateAfterJoin) {
  SweepSpec spec;
  spec.base = TinyConfig();
  spec.seeds = {1, 2, 3, 4};
  spec.tweak = [](ExperimentConfig& cfg, const SweepPoint& point) {
    // One poisoned cell: a custom trace naming a function the workload does
    // not have, which the run-context build rejects.
    if (point.index == 2) {
      cfg.custom_trace.push_back({Seconds(1), FunctionId(999999)});
    }
  };
  EXPECT_THROW(RunSweep(spec, 4), FfsError);
}

TEST(SweepJobsTest, FfsJobsEnvIsStrictlyParsed) {
  {
    ScopedEnv env("FFS_JOBS", "3");
    EXPECT_EQ(DefaultJobs(), 3);
  }
  {
    ScopedEnv env("FFS_JOBS", nullptr);
    EXPECT_GE(DefaultJobs(), 1);  // hardware default
  }
  for (const char* bad : {"", "abc", "2x", "0", "-4", "1.5", "99999"}) {
    ScopedEnv env("FFS_JOBS", bad);
    EXPECT_THROW(DefaultJobs(), FfsError) << "FFS_JOBS=\"" << bad << "\"";
  }
}

TEST(SweepJobsTest, SweepOutPathHonorsEnvOverride) {
  {
    ScopedEnv env("FFS_SWEEP_OUT", "custom_sweep.json");
    EXPECT_EQ(SweepOutPath(), "custom_sweep.json");
  }
  {
    ScopedEnv env("FFS_SWEEP_OUT", nullptr);
    EXPECT_EQ(SweepOutPath(), "BENCH_sweep.json");
    EXPECT_EQ(SweepOutPath("other.json"), "other.json");
  }
  {
    ScopedEnv env("FFS_SWEEP_OUT", "");  // empty = unset
    EXPECT_EQ(SweepOutPath(), "BENCH_sweep.json");
  }
}

}  // namespace
}  // namespace fluidfaas::harness
