#include "harness/experiment.h"

#include <gtest/gtest.h>

namespace fluidfaas::harness {
namespace {

ExperimentConfig SmallConfig(SystemKind kind, trace::WorkloadTier tier) {
  ExperimentConfig cfg;
  cfg.system = kind;
  cfg.tier = tier;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 2;
  cfg.duration = Seconds(30);
  cfg.load_factor = 0.2;  // gentle: everything completes quickly
  cfg.seed = 11;
  return cfg;
}

class AllSystemsTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(AllSystemsTest, CompletesEveryRequest) {
  auto res = RunExperiment(SmallConfig(GetParam(),
                                       trace::WorkloadTier::kLight));
  ASSERT_NE(res.recorder, nullptr);
  EXPECT_GT(res.recorder->total_requests(), 0u);
  EXPECT_EQ(res.recorder->completed_requests(),
            res.recorder->total_requests());
  EXPECT_GT(res.throughput_rps, 0.0);
  EXPECT_GT(res.slo_hit_rate, 0.5);
  EXPECT_GT(res.mig_time, 0);
  EXPECT_GE(res.gpu_time, 0);
  EXPECT_EQ(res.total_gpcs, 14);
}

INSTANTIATE_TEST_SUITE_P(Systems, AllSystemsTest,
                         ::testing::Values(SystemKind::kFluidFaas,
                                           SystemKind::kEsg,
                                           SystemKind::kInfless));

TEST(HarnessTest, DeterministicAcrossRuns) {
  const auto cfg = SmallConfig(SystemKind::kFluidFaas,
                               trace::WorkloadTier::kMedium);
  auto a = RunExperiment(cfg);
  auto b = RunExperiment(cfg);
  EXPECT_EQ(a.recorder->total_requests(), b.recorder->total_requests());
  EXPECT_EQ(a.recorder->completed_requests(),
            b.recorder->completed_requests());
  EXPECT_DOUBLE_EQ(a.slo_hit_rate, b.slo_hit_rate);
  EXPECT_EQ(a.mig_time, b.mig_time);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(HarnessTest, SameTraceAcrossSystems) {
  ExperimentConfig cfg = SmallConfig(SystemKind::kFluidFaas,
                                     trace::WorkloadTier::kLight);
  auto results = RunComparison(cfg);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].system, "INFless");
  EXPECT_EQ(results[1].system, "ESG");
  EXPECT_EQ(results[2].system, "FluidFaaS");
  // Identical arrivals for every system.
  EXPECT_EQ(results[0].recorder->total_requests(),
            results[1].recorder->total_requests());
  EXPECT_EQ(results[1].recorder->total_requests(),
            results[2].recorder->total_requests());
  EXPECT_DOUBLE_EQ(results[0].offered_rps, results[2].offered_rps);
}

TEST(HarnessTest, CustomPartitionsAreUsed) {
  ExperimentConfig cfg = SmallConfig(SystemKind::kFluidFaas,
                                     trace::WorkloadTier::kLight);
  cfg.partitions = {
      {gpu::MigPartition::Parse("7g.80gb"),
       gpu::MigPartition::Parse("7g.80gb")}};
  auto res = RunExperiment(cfg);
  EXPECT_EQ(res.total_gpcs, 14);
  EXPECT_EQ(res.recorder->completed_requests(),
            res.recorder->total_requests());
}

TEST(HarnessTest, FluidCollectsSchedulerCounters) {
  ExperimentConfig cfg = SmallConfig(SystemKind::kFluidFaas,
                                     trace::WorkloadTier::kLight);
  cfg.duration = Seconds(60);
  cfg.load_factor = 0.5;
  auto res = RunExperiment(cfg);
  // The light run at least promotes something.
  EXPECT_GT(res.promotions + res.demotions + res.evictions +
                res.pipelines_launched,
            0u);
  // Baselines report zeros.
  cfg.system = SystemKind::kEsg;
  auto esg = RunExperiment(cfg);
  EXPECT_EQ(esg.promotions, 0u);
  EXPECT_EQ(esg.evictions, 0u);
}

TEST(HarnessTest, NamesAreStable) {
  EXPECT_STREQ(Name(SystemKind::kFluidFaas), "FluidFaaS");
  EXPECT_STREQ(Name(SystemKind::kEsg), "ESG");
  EXPECT_STREQ(Name(SystemKind::kInfless), "INFless");
}

}  // namespace
}  // namespace fluidfaas::harness
