// Cross-module integration tests: the paper's headline claims as
// executable assertions, on scaled-down clusters so they run in seconds.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "harness/experiment.h"

namespace fluidfaas::harness {
namespace {

ExperimentConfig Base(trace::WorkloadTier tier, double load_factor,
                      SimDuration duration = Seconds(120)) {
  ExperimentConfig cfg;
  cfg.tier = tier;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 4;
  cfg.duration = duration;
  cfg.load_factor = load_factor;
  cfg.seed = 2025;
  return cfg;
}

TEST(EndToEndTest, LightWorkloadAllSystemsComparable) {
  auto results = RunComparison(Base(trace::WorkloadTier::kLight, 0.25));
  const auto& inf = results[0];
  const auto& esg = results[1];
  const auto& fluid = results[2];
  // §7.1: similar SLO hit rates and throughput in light workloads.
  EXPECT_NEAR(fluid.throughput_rps, esg.throughput_rps,
              0.1 * esg.throughput_rps);
  EXPECT_NEAR(fluid.throughput_rps, inf.throughput_rps,
              0.1 * inf.throughput_rps);
  EXPECT_GT(fluid.slo_hit_rate, 0.7);
  EXPECT_GT(esg.slo_hit_rate, 0.7);
}

TEST(EndToEndTest, MediumWorkloadFluidWins) {
  auto results = RunComparison(Base(trace::WorkloadTier::kMedium, 0.55));
  const auto& esg = results[1];
  const auto& fluid = results[2];
  // §7.1-7.2: FluidFaaS sustains higher throughput and SLO compliance once
  // 1g slices become unusable for the monolithic baselines.
  EXPECT_GT(fluid.throughput_rps, esg.throughput_rps);
  EXPECT_GT(fluid.slo_hit_rate, esg.slo_hit_rate);
  EXPECT_GT(fluid.pipelines_launched, 0u);
}

TEST(EndToEndTest, HeavyWorkloadFluidWinsBig) {
  auto results = RunComparison(Base(trace::WorkloadTier::kHeavy, 0.55));
  const auto& esg = results[1];
  const auto& fluid = results[2];
  EXPECT_GT(fluid.throughput_rps, 1.1 * esg.throughput_rps);
  EXPECT_GT(fluid.slo_hit_rate, esg.slo_hit_rate);
}

TEST(EndToEndTest, BaselinesLeaveSmallSlicesIdleInHeavy) {
  // §7.2: "ESG can only use the 4g.40gb slices" in heavy workloads.
  ExperimentConfig cfg = Base(trace::WorkloadTier::kHeavy, 0.5);
  cfg.system = SystemKind::kEsg;
  auto esg = RunExperiment(cfg);
  for (const auto& s : esg.recorder->PerSliceTotals()) {
    if (s.gpcs <= 2) {
      EXPECT_EQ(s.busy, 0) << "small slice busy under monolithic ESG";
    }
  }
  cfg.system = SystemKind::kFluidFaas;
  auto fluid = RunExperiment(cfg);
  SimDuration small_busy = 0;
  for (const auto& s : fluid.recorder->PerSliceTotals()) {
    if (s.gpcs == 2) small_busy += s.busy;
  }
  EXPECT_GT(small_busy, 0) << "FluidFaaS should pipeline onto 2g slices";
}

TEST(EndToEndTest, FluidUsesOneGSlicesInMedium) {
  // §7.2: medium workloads leave 1g idle for ESG; FluidFaaS uses them.
  ExperimentConfig cfg = Base(trace::WorkloadTier::kMedium, 0.55);
  cfg.system = SystemKind::kEsg;
  auto esg = RunExperiment(cfg);
  for (const auto& s : esg.recorder->PerSliceTotals()) {
    if (s.gpcs == 1) EXPECT_EQ(s.busy, 0);
  }
  cfg.system = SystemKind::kFluidFaas;
  auto fluid = RunExperiment(cfg);
  SimDuration oneg_busy = 0;
  for (const auto& s : fluid.recorder->PerSliceTotals()) {
    if (s.gpcs == 1) oneg_busy += s.busy;
  }
  EXPECT_GT(oneg_busy, 0);
}

TEST(EndToEndTest, AblationPipelinesOffHurtsHeavyThroughput) {
  ExperimentConfig cfg = Base(trace::WorkloadTier::kHeavy, 0.55);
  cfg.system = SystemKind::kFluidFaas;
  auto with = RunExperiment(cfg);
  cfg.platform.enable_pipelines = false;
  auto without = RunExperiment(cfg);
  EXPECT_GT(with.throughput_rps, without.throughput_rps);
  EXPECT_EQ(without.pipelines_launched, 0u);
}

TEST(EndToEndTest, AblationTimeSharingEnablesScarceSliceSharing) {
  // On a slice-starved cluster, eviction-based time sharing lets the four
  // light functions rotate through three slices within seconds; without it
  // the overflow function waits out another's exclusive keep-alive.
  ExperimentConfig cfg = Base(trace::WorkloadTier::kLight, 0.0, Seconds(90));
  cfg.gpus_per_node = 1;      // one GPU: three slices, four functions
  cfg.load_factor = 0.02;     // sparse traffic — hotness stays low
  cfg.system = SystemKind::kFluidFaas;
  auto with = RunExperiment(cfg);
  cfg.platform.enable_time_sharing = false;
  auto without = RunExperiment(cfg);
  EXPECT_GT(with.evictions, 0u);
  EXPECT_EQ(without.evictions, 0u);
  // With time sharing, a request for a non-resident function waits only an
  // eviction + warm reload (seconds); without it, the overflow function is
  // stuck behind another's exclusive keep-alive and its requests complete
  // only in the post-trace drain — a tail one order of magnitude worse.
  auto p100 = [](const ExperimentResult& r) {
    return Percentile(r.recorder->LatenciesSeconds(), 1.0);
  };
  EXPECT_LT(p100(with), 30.0);
  EXPECT_GT(p100(without), 60.0);
}

TEST(EndToEndTest, SloScaleSensitivity) {
  // At moderate load, looser SLOs raise hit rates on the same trace.
  ExperimentConfig cfg = Base(trace::WorkloadTier::kMedium, 0.35);
  cfg.system = SystemKind::kFluidFaas;
  cfg.platform.slo_scale = 1.5;
  auto tight = RunExperiment(cfg);
  cfg.platform.slo_scale = 4.0;
  auto loose = RunExperiment(cfg);
  EXPECT_GE(loose.slo_hit_rate, tight.slo_hit_rate - 0.02);
}

TEST(EndToEndTest, PartitionSensitivityFluidBeatsEsgOnAllSchemes) {
  // §7.4 / Fig. 15 on a quarter-size cluster: FluidFaaS wins on P1, P2 and
  // the hybrid partitioning.
  std::vector<std::vector<std::vector<gpu::MigPartition>>> schemes = {
      {gpu::PartitionSchemeP1(4)},
      {gpu::PartitionSchemeP2(4)},
  };
  for (auto& scheme : schemes) {
    ExperimentConfig cfg = Base(trace::WorkloadTier::kHeavy, 0.55);
    cfg.partitions = scheme;
    auto results = RunComparison(cfg);
    EXPECT_GE(results[2].throughput_rps, results[1].throughput_rps)
        << "scheme with " << results[2].total_gpcs << " gpcs";
  }
}

}  // namespace
}  // namespace fluidfaas::harness
