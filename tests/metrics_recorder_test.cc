#include "metrics/recorder.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "gpu/mig_partition.h"

namespace fluidfaas::metrics {
namespace {

class RecorderTest : public ::testing::Test {
 protected:
  RecorderTest()
      : cluster_(gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition())),
        rec_(cluster_) {}

  // Slice ids: GPU 0 holds {0, 1, 2}, GPU 1 holds {3, 4, 5}.
  gpu::Cluster cluster_;
  Recorder rec_;
};

TEST_F(RecorderTest, RequestLifecycle) {
  const RequestId r = rec_.NewRequest(FunctionId(0), Seconds(1), Seconds(2));
  EXPECT_FALSE(rec_.record(r).done());
  rec_.record(r).exec_time = Millis(300);
  rec_.Complete(r, Seconds(1) + Millis(800));
  const auto& rr = rec_.record(r);
  EXPECT_TRUE(rr.done());
  EXPECT_TRUE(rr.SloHit());
  EXPECT_EQ(rr.Latency(), Millis(800));
  EXPECT_EQ(rec_.completed_requests(), 1u);
}

TEST_F(RecorderTest, DoubleCompleteThrows) {
  const RequestId r = rec_.NewRequest(FunctionId(0), 0, Seconds(1));
  rec_.Complete(r, 1);
  EXPECT_THROW(rec_.Complete(r, 2), FfsError);
}

TEST_F(RecorderTest, SloHitRateCountsOutstandingAsMisses) {
  const RequestId hit = rec_.NewRequest(FunctionId(0), 0, Seconds(1));
  const RequestId miss = rec_.NewRequest(FunctionId(0), 0, Seconds(1));
  const RequestId open = rec_.NewRequest(FunctionId(1), 0, Seconds(1));
  (void)open;
  rec_.Complete(hit, Millis(500));
  rec_.Complete(miss, Seconds(2));
  EXPECT_NEAR(rec_.SloHitRate(true), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(rec_.SloHitRate(false), 0.5, 1e-12);
  // Per-function.
  EXPECT_NEAR(rec_.SloHitRate(FunctionId(0), true), 0.5, 1e-12);
  EXPECT_NEAR(rec_.SloHitRate(FunctionId(1), true), 0.0, 1e-12);
}

TEST_F(RecorderTest, MigAndGpuTimeAccounting) {
  // Slice 0 (4g on GPU 0) busy [0, 10 s); slice 1 (2g on GPU 0) busy
  // [5 s, 15 s); slice 3 (4g on GPU 1) busy [0, 4 s).
  for (SliceId s : {SliceId(0), SliceId(1), SliceId(3)}) {
    rec_.SliceBound(s, 0);
  }
  rec_.SliceBusy(SliceId(0), 0);
  rec_.SliceBusy(SliceId(3), 0);
  rec_.SliceIdle(SliceId(3), Seconds(4));
  rec_.SliceBusy(SliceId(1), Seconds(5));
  rec_.SliceIdle(SliceId(0), Seconds(10));
  rec_.SliceIdle(SliceId(1), Seconds(15));
  rec_.SliceReleased(SliceId(3), Seconds(16));
  rec_.Close(Seconds(20));

  // MIG time = 10 + 10 + 4 = 24 s of busy slice time.
  EXPECT_EQ(rec_.MigTime(), Seconds(24));
  // GPU 0 has >=1 busy slice over [0, 15); GPU 1 over [0, 4): 19 s.
  EXPECT_EQ(rec_.GpuTime(), Seconds(19));
  // Occupied: slices 0/1 bound to close (20+20), slice 3 for 16 s.
  EXPECT_EQ(rec_.OccupiedMigTime(), Seconds(56));
}

TEST_F(RecorderTest, BusyGpcSignalTracksWeights) {
  rec_.SliceBound(SliceId(0), 0);  // 4g
  rec_.SliceBound(SliceId(1), 0);  // 2g
  rec_.SliceBusy(SliceId(0), 0);
  rec_.SliceBusy(SliceId(1), Seconds(5));
  rec_.SliceIdle(SliceId(0), Seconds(10));
  rec_.SliceIdle(SliceId(1), Seconds(10));
  rec_.Close(Seconds(10));
  // [0,5): 4 GPCs busy; [5,10): 6 -> mean 5.
  EXPECT_NEAR(rec_.busy_gpcs().MeanOver(0, Seconds(10)), 5.0, 1e-9);
  EXPECT_NEAR(rec_.busy_gpus().MeanOver(0, Seconds(10)), 1.0, 1e-9);
}

TEST_F(RecorderTest, PerGpuOccupancyWeightsByGpcs) {
  // Bind 4g on GPU 0 the whole 10 s, busy half of it.
  rec_.SliceBound(SliceId(0), 0);
  rec_.SliceBusy(SliceId(0), 0);
  rec_.SliceIdle(SliceId(0), Seconds(5));
  rec_.Close(Seconds(10));
  auto occ = rec_.PerGpuOccupancy();
  ASSERT_EQ(occ.size(), 2u);
  EXPECT_NEAR(occ[0].occupied, 4.0 / 7.0, 1e-9);
  EXPECT_NEAR(occ[0].active, 0.5 * 4.0 / 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(occ[1].occupied, 0.0);
}

TEST_F(RecorderTest, InvariantViolationsThrow) {
  EXPECT_THROW(rec_.SliceBusy(SliceId(0), 0), FfsError);  // busy unbound
  rec_.SliceBound(SliceId(0), 0);
  EXPECT_THROW(rec_.SliceBound(SliceId(0), 1), FfsError);  // double bind
  rec_.SliceBusy(SliceId(0), 1);
  EXPECT_THROW(rec_.SliceBusy(SliceId(0), 2), FfsError);   // double busy
  EXPECT_THROW(rec_.SliceReleased(SliceId(0), 2), FfsError);  // busy release
  rec_.SliceIdle(SliceId(0), 3);
  EXPECT_THROW(rec_.SliceIdle(SliceId(0), 4), FfsError);   // double idle
}

TEST_F(RecorderTest, CloseIsTerminalAndIdempotencyGuarded) {
  rec_.Close(Seconds(1));
  EXPECT_THROW(rec_.Close(Seconds(2)), FfsError);
}

TEST_F(RecorderTest, ThroughputVariants) {
  for (int i = 0; i < 10; ++i) {
    const RequestId r = rec_.NewRequest(FunctionId(0), 0, Seconds(100));
    rec_.Complete(r, Seconds(i + 1));
  }
  rec_.Close(Seconds(20));
  EXPECT_NEAR(rec_.Throughput(), 0.5, 1e-12);          // 10 / 20 s
  EXPECT_NEAR(rec_.ThroughputOver(Seconds(10)), 1.0, 1e-12);
  EXPECT_EQ(rec_.CompletedBy(Seconds(5)), 5u);
  EXPECT_NEAR(rec_.WindowedThroughput(Seconds(5)), 1.0, 1e-12);
}

TEST_F(RecorderTest, BreakdownAveragesCompletedOnly) {
  const RequestId a = rec_.NewRequest(FunctionId(0), 0, Seconds(1));
  rec_.record(a).queue_time = Millis(100);
  rec_.record(a).exec_time = Millis(200);
  rec_.Complete(a, Millis(300));
  const RequestId b = rec_.NewRequest(FunctionId(0), 0, Seconds(1));
  rec_.record(b).queue_time = Millis(300);
  rec_.record(b).exec_time = Millis(400);
  rec_.record(b).transfer_time = Millis(50);
  rec_.Complete(b, Millis(750));
  const RequestId open = rec_.NewRequest(FunctionId(0), 0, Seconds(1));
  rec_.record(open).queue_time = Seconds(10);  // must not count

  auto bd = rec_.MeanBreakdown();
  EXPECT_NEAR(bd.queue, ToMillis(Millis(200)) * 1000, 1e-6);
  EXPECT_NEAR(bd.exec, 300e3, 1e-6);
  EXPECT_NEAR(bd.transfer, 25e3, 1e-6);
}

TEST_F(RecorderTest, LatenciesFilterByFunction) {
  const RequestId a = rec_.NewRequest(FunctionId(0), 0, Seconds(1));
  rec_.Complete(a, Millis(100));
  const RequestId b = rec_.NewRequest(FunctionId(1), 0, Seconds(1));
  rec_.Complete(b, Millis(200));
  EXPECT_EQ(rec_.LatenciesSeconds().size(), 2u);
  auto only0 = rec_.LatenciesSeconds(FunctionId(0));
  ASSERT_EQ(only0.size(), 1u);
  EXPECT_NEAR(only0[0], 0.1, 1e-9);
}

TEST_F(RecorderTest, PerSliceTotals) {
  rec_.SliceBound(SliceId(2), 0);  // 1g on GPU 0
  rec_.SliceBusy(SliceId(2), 0);
  rec_.SliceIdle(SliceId(2), Seconds(3));
  rec_.SliceReleased(SliceId(2), Seconds(5));
  rec_.Close(Seconds(10));
  auto totals = rec_.PerSliceTotals();
  ASSERT_EQ(totals.size(), 6u);
  EXPECT_EQ(totals[2].busy, Seconds(3));
  EXPECT_EQ(totals[2].bound, Seconds(5));
  EXPECT_EQ(totals[2].gpcs, 1);
  EXPECT_EQ(totals[0].busy, 0);
}

TEST_F(RecorderTest, CloseSettlesOpenIntervals) {
  rec_.SliceBound(SliceId(0), 0);
  rec_.SliceBusy(SliceId(0), Seconds(2));
  rec_.Close(Seconds(10));
  EXPECT_EQ(rec_.MigTime(), Seconds(8));
  EXPECT_EQ(rec_.OccupiedMigTime(), Seconds(10));
  EXPECT_EQ(rec_.GpuTime(), Seconds(8));
}

}  // namespace
}  // namespace fluidfaas::metrics
