#include "metrics/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace fluidfaas::metrics {
namespace {

TEST(TableTest, AlignsColumnsToWidestCell) {
  Table t({"name", "value"});
  t.AddRow({"throughput", "42.5"});
  t.AddRow({"x", "123456789"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| throughput | 42.5      |"), std::string::npos);
  EXPECT_NE(out.find("| x          | 123456789 |"), std::string::npos);
  // Three rules: top, under header, bottom.
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos = out.find('\n', pos);
  }
  EXPECT_EQ(rules, 3u);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only one"}), FfsError);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"x", "y"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\nx,y\n");
}

TEST(FmtTest, Decimals) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.0, 0), "3");
  EXPECT_EQ(Fmt(-1.5, 1), "-1.5");
}

TEST(FmtTest, Percent) {
  EXPECT_EQ(FmtPercent(0.753, 1), "75.3%");
  EXPECT_EQ(FmtPercent(1.0, 0), "100%");
}

TEST(FmtTest, Millis) {
  EXPECT_EQ(FmtMillis(1500.0, 1), "1.5ms");
  EXPECT_EQ(FmtMillis(2.5e6, 0), "2500ms");
}

}  // namespace
}  // namespace fluidfaas::metrics
