#include "model/app.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"

namespace fluidfaas::model {
namespace {

ComponentSpec Comp(int idx, Bytes mem, SimDuration t, Bytes out = MiB(10)) {
  ComponentSpec c;
  c.id = ComponentId(idx);
  c.name = "c" + std::to_string(idx);
  c.cls = ComponentClass::kClassification;
  c.weights = mem / 2;
  c.activations = mem - mem / 2;
  c.latency_1gpc = t;
  c.serial_fraction = 0.1;
  c.output = TensorSpec({out}, 1);
  return c;
}

TEST(TensorSpecTest, BytesAndToString) {
  TensorSpec t({4, 3, 224, 224}, 4);
  EXPECT_EQ(t.bytes(), 4ll * 3 * 224 * 224 * 4);
  EXPECT_EQ(t.ToString(), "[4x3x224x224]x4B");
  EXPECT_EQ(TensorSpec{}.bytes(), 0);
}

TEST(AppDagTest, ChainStructure) {
  AppDag dag("chain",
             {Comp(0, GiB(2), Millis(100)), Comp(1, GiB(3), Millis(200)),
              Comp(2, GiB(1), Millis(50))},
             {{-1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(dag.size(), 3);
  EXPECT_EQ(dag.TotalMemory(), GiB(6));
  EXPECT_EQ(dag.TotalLatencyOnGpcs(1), Millis(350));
  EXPECT_EQ(dag.Successors(0), (std::vector<int>{1}));
  EXPECT_EQ(dag.Predecessors(1), (std::vector<int>{0}));
  EXPECT_EQ(dag.Predecessors(0), (std::vector<int>{-1}));
}

TEST(AppDagTest, CutBytesCountsCrossingEdges) {
  // 0 -> 1 -> 2 with a skip edge 0 -> 2.
  AppDag dag("skip",
             {Comp(0, GiB(1), Millis(10), MiB(100)),
              Comp(1, GiB(1), Millis(10), MiB(30)),
              Comp(2, GiB(1), Millis(10), MiB(1))},
             {{-1, 0}, {0, 1}, {1, 2}, {0, 2}});
  // Cut between 0 and 1: edges 0->1 and 0->2 cross: 2 x 100 MB.
  EXPECT_EQ(dag.CutBytes(1), 2 * MiB(100));
  // Cut between 1 and 2: edges 1->2 (30 MB) and 0->2 (100 MB).
  EXPECT_EQ(dag.CutBytes(2), MiB(30) + MiB(100));
}

TEST(AppDagTest, CutBytesBoundsChecked) {
  AppDag dag("one", {Comp(0, GiB(1), Millis(10))}, {{-1, 0}});
  EXPECT_THROW(dag.CutBytes(0), FfsError);
  EXPECT_THROW(dag.CutBytes(1), FfsError);
}

TEST(AppDagTest, RejectsNonTopologicalOrder) {
  EXPECT_THROW(AppDag("bad",
                      {Comp(0, GiB(1), Millis(10)), Comp(1, GiB(1),
                                                         Millis(10))},
                      {{1, 0}}),
               FfsError);
  // Self loop.
  EXPECT_THROW(AppDag("self", {Comp(0, GiB(1), Millis(10))}, {{0, 0}}),
               FfsError);
}

TEST(AppDagTest, RejectsOutOfRangeEdges) {
  EXPECT_THROW(
      AppDag("oob", {Comp(0, GiB(1), Millis(10))}, {{-1, 5}}), FfsError);
  EXPECT_THROW(
      AppDag("oob2", {Comp(0, GiB(1), Millis(10))}, {{-2, 0}}), FfsError);
}

TEST(AppDagTest, RejectsEmptyAndDegenerateComponents) {
  EXPECT_THROW(AppDag("empty", {}, {}), FfsError);
  ComponentSpec zero_mem = Comp(0, GiB(1), Millis(10));
  zero_mem.weights = 0;
  zero_mem.activations = 0;
  EXPECT_THROW(AppDag("nomem", {zero_mem}, {{-1, 0}}), FfsError);
  ComponentSpec zero_lat = Comp(0, GiB(1), Millis(10));
  zero_lat.latency_1gpc = 0;
  EXPECT_THROW(AppDag("nolat", {zero_lat}, {{-1, 0}}), FfsError);
  ComponentSpec bad_prob = Comp(0, GiB(1), Millis(10));
  bad_prob.exec_probability = 0.0;
  EXPECT_THROW(AppDag("noprob", {bad_prob}, {{-1, 0}}), FfsError);
}

TEST(AppDagTest, ExpectedLatencyUsesBranchProbability) {
  ComponentSpec cond = Comp(1, GiB(1), Millis(100));
  cond.exec_probability = 0.5;
  AppDag dag("branch",
             {Comp(0, GiB(1), Millis(100)), cond,
              Comp(2, GiB(1), Millis(100))},
             {{-1, 0}, {0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(dag.TotalLatencyOnGpcs(1), Millis(250));
}

TEST(VariantTest, Names) {
  EXPECT_STREQ(Name(Variant::kSmall), "small");
  EXPECT_STREQ(Name(Variant::kMedium), "medium");
  EXPECT_STREQ(Name(Variant::kLarge), "large");
}

}  // namespace
}  // namespace fluidfaas::model
