#include "model/component.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"

namespace fluidfaas::model {
namespace {

ComponentSpec MakeSpec(double serial_fraction) {
  ComponentSpec c;
  c.id = ComponentId(0);
  c.name = "test";
  c.cls = ComponentClass::kClassification;
  c.weights = GiB(1);
  c.activations = GiB(1);
  c.latency_1gpc = Millis(700);
  c.serial_fraction = serial_fraction;
  return c;
}

TEST(ComponentTest, LatencyDecreasesWithGpcs) {
  ComponentSpec c = MakeSpec(0.1);
  SimDuration prev = c.LatencyOnGpcs(1);
  for (int g = 2; g <= 7; ++g) {
    const SimDuration t = c.LatencyOnGpcs(g);
    EXPECT_LT(t, prev) << "at " << g << " GPCs";
    prev = t;
  }
}

TEST(ComponentTest, AmdahlFormulaExact) {
  ComponentSpec c = MakeSpec(0.2);
  // t(g) = t1 * (0.2 + 0.8/g)
  EXPECT_EQ(c.LatencyOnGpcs(1), Millis(700));
  EXPECT_EQ(c.LatencyOnGpcs(2), Millis(700 * 0.6));
  EXPECT_EQ(c.LatencyOnGpcs(4), Millis(700 * 0.4));
}

TEST(ComponentTest, FullySerialDoesNotScale) {
  ComponentSpec c = MakeSpec(1.0);
  EXPECT_EQ(c.LatencyOnGpcs(1), c.LatencyOnGpcs(7));
}

TEST(ComponentTest, FullyParallelScalesLinearly) {
  ComponentSpec c = MakeSpec(0.0);
  EXPECT_EQ(c.LatencyOnGpcs(7), Millis(100));
}

TEST(ComponentTest, SpeedupBoundedByGpcCount) {
  ComponentSpec c = MakeSpec(0.05);
  for (int g = 1; g <= 7; ++g) {
    const double speedup = static_cast<double>(c.LatencyOnGpcs(1)) /
                           static_cast<double>(c.LatencyOnGpcs(g));
    EXPECT_LE(speedup, g + 1e-9);
    EXPECT_GE(speedup, 1.0);
  }
}

TEST(ComponentTest, ExpectedLatencyWeightsByProbability) {
  ComponentSpec c = MakeSpec(0.1);
  c.exec_probability = 0.5;
  EXPECT_EQ(c.ExpectedLatencyOnGpcs(1), c.LatencyOnGpcs(1) / 2);
}

TEST(ComponentTest, MemoryRequiredSumsWeightsAndActivations) {
  ComponentSpec c = MakeSpec(0.1);
  EXPECT_EQ(c.MemoryRequired(), GiB(2));
}

TEST(ComponentTest, InvalidGpcCountThrows) {
  ComponentSpec c = MakeSpec(0.1);
  EXPECT_THROW(c.LatencyOnGpcs(0), FfsError);
  EXPECT_THROW(c.LatencyOnGpcs(-1), FfsError);
}

TEST(ComponentTest, ClassNamesAreStable) {
  EXPECT_STREQ(Name(ComponentClass::kSuperResolution), "super_resolution");
  EXPECT_STREQ(Name(ComponentClass::kSegmentation), "segmentation");
  EXPECT_STREQ(Name(ComponentClass::kClassification), "classification");
  EXPECT_STREQ(Name(ComponentClass::kDeblur), "deblur");
  EXPECT_STREQ(Name(ComponentClass::kDepthEstimation), "depth_estimation");
  EXPECT_STREQ(Name(ComponentClass::kBackgroundRemoval),
               "background_removal");
}

class AllClassesTest : public ::testing::TestWithParam<ComponentClass> {};

TEST_P(AllClassesTest, BaseProfilesArePlausible) {
  const ComponentBase& base = BaseProfile(GetParam());
  EXPECT_GT(base.weights, 0);
  EXPECT_GT(base.activations, 0);
  EXPECT_GT(base.latency_1gpc, Millis(10));
  EXPECT_LT(base.latency_1gpc, Seconds(1));
  EXPECT_GT(base.serial_fraction, 0.0);
  EXPECT_LT(base.serial_fraction, 0.5);
  EXPECT_GT(base.output_bytes, 0);
  // Small-variant components fit a 1g.10gb slice (Table 5).
  EXPECT_LE(base.weights + base.activations, GiB(10));
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, AllClassesTest,
    ::testing::Values(ComponentClass::kSuperResolution,
                      ComponentClass::kSegmentation,
                      ComponentClass::kClassification,
                      ComponentClass::kDeblur,
                      ComponentClass::kDepthEstimation,
                      ComponentClass::kBackgroundRemoval));

}  // namespace
}  // namespace fluidfaas::model
