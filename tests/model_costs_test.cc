#include "model/costs.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace fluidfaas::model {
namespace {

TEST(TransferCostTest, MonotoneInBytes) {
  TransferCostModel m;
  SimDuration prev = m.HopCost(0);
  for (Bytes b : {MiB(1), MiB(10), MiB(100), GiB(1)}) {
    const SimDuration t = m.HopCost(b);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(TransferCostTest, ZeroBytesStillPaysFixedOverhead) {
  TransferCostModel m;
  EXPECT_EQ(m.HopCost(0), m.fixed);
}

TEST(TransferCostTest, TensorCrossesBusTwice) {
  TransferCostModel m;
  m.fixed = 0;
  // 1 GB at 20 GB/s each way = 2 * 50 ms.
  EXPECT_NEAR(ToMillis(m.HopCost(static_cast<Bytes>(1e9))), 100.0, 1.0);
}

TEST(TransferCostTest, StudyTensorsLandInPaperBand) {
  // §7.3: pipeline hop overhead is 10-40 ms across the evaluated apps.
  TransferCostModel m;
  for (int a = 0; a < kNumApps; ++a) {
    for (Variant v : kAllVariants) {
      if (!IncludedInStudy(a, v)) continue;
      const AppDag dag = BuildApp(a, v);
      for (int k = 1; k < dag.size(); ++k) {
        const SimDuration hop = m.HopCost(dag.CutBytes(k));
        EXPECT_GE(hop, Millis(5)) << dag.name() << " cut " << k;
        EXPECT_LE(hop, Millis(45)) << dag.name() << " cut " << k;
      }
    }
  }
}

TEST(TransferCostTest, IntraStageIsFree) {
  EXPECT_EQ(TransferCostModel{}.IntraStageCost(), 0);
}

TEST(LoadCostTest, WarmBeatsColdAlways) {
  LoadCostModel m;
  for (Bytes w : {MiB(100), GiB(1), GiB(10)}) {
    EXPECT_LT(m.WarmLoad(w), m.ColdLoad(w));
  }
}

TEST(LoadCostTest, ColdIncludesContainerStart) {
  LoadCostModel m;
  EXPECT_GE(m.ColdLoad(0), m.container_start);
}

TEST(LoadCostTest, WarmLoadScalesWithWeights) {
  LoadCostModel m;
  m.runtime_init = 0;
  // 16 GB at 16 GB/s = 1 s.
  EXPECT_NEAR(ToSeconds(m.WarmLoad(static_cast<Bytes>(16e9))), 1.0, 0.01);
}

TEST(LoadCostTest, EvictIsDeviceToHostCopy) {
  LoadCostModel m;
  EXPECT_EQ(m.Evict(0), 0);
  EXPECT_GT(m.Evict(GiB(4)), 0);
  EXPECT_LT(m.Evict(GiB(4)), m.WarmLoad(GiB(4)));  // no runtime re-init
}

TEST(LoadCostTest, PaperScaleColdStartsAreSeconds) {
  // Cold-starting a multi-GB model must be seconds, not milliseconds —
  // that is what makes the warm/cold distinction of §5.3 matter.
  LoadCostModel m;
  const SimDuration cold = m.ColdLoad(GiB(3));
  EXPECT_GT(cold, Seconds(4));
  EXPECT_LT(cold, Seconds(30));
}

}  // namespace
}  // namespace fluidfaas::model
