#include "model/llm.h"

#include <gtest/gtest.h>

#include "core/partitioner.h"
#include "core/pipeline.h"
#include "gpu/cluster.h"
#include "model/zoo.h"

namespace fluidfaas::model {
namespace {

class LlmSizeTest : public ::testing::TestWithParam<LlmSize> {};

TEST_P(LlmSizeTest, DagIsAValidChain) {
  const AppDag dag = BuildLlmApp(GetParam());
  const LlmSpec& spec = SpecFor(GetParam());
  EXPECT_EQ(dag.size(), 2 + spec.layer_groups);
  // tokenizer first, detokenizer last, transformer groups in between.
  EXPECT_EQ(dag.component(0).cls, ComponentClass::kTokenizer);
  EXPECT_EQ(dag.component(dag.size() - 1).cls,
            ComponentClass::kDetokenizer);
  for (int i = 1; i < dag.size() - 1; ++i) {
    EXPECT_EQ(dag.component(i).cls, ComponentClass::kTransformerLayers);
  }
  dag.Validate();
}

TEST_P(LlmSizeTest, EveryStageFitsSomeProfile) {
  const AppDag dag = BuildLlmApp(GetParam());
  for (int i = 0; i < dag.size(); ++i) {
    gpu::MigProfile p;
    EXPECT_TRUE(gpu::SmallestProfileForMemory(
        dag.component(i).MemoryRequired(), p));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LlmSizeTest,
                         ::testing::Values(LlmSize::k7B, LlmSize::k13B,
                                           LlmSize::k34B));

TEST(LlmTest, MonolithicVsPipelinedMinimums) {
  // 7B fits a 2g monolithically and 1g pipelined.
  const auto b7 = BuildLlmApp(LlmSize::k7B);
  EXPECT_EQ(core::MinMonolithicProfile(b7), gpu::MigProfile::k2g20gb);
  EXPECT_EQ(core::MinPipelinedProfile(b7, 4), gpu::MigProfile::k1g10gb);

  // 13B needs a 40 GB profile monolithically, 2g pipelined.
  const auto b13 = BuildLlmApp(LlmSize::k13B);
  EXPECT_EQ(core::MinMonolithicProfile(b13), gpu::MigProfile::k3g40gb);
  EXPECT_EQ(core::MinPipelinedProfile(b13, 4), gpu::MigProfile::k2g20gb);

  // 34B exceeds every profile monolithically — FluidFaaS's pipelined
  // minimum is still a 2g fragment.
  const auto b34 = BuildLlmApp(LlmSize::k34B);
  EXPECT_FALSE(core::MinMonolithicProfile(b34).has_value());
  EXPECT_EQ(core::MinPipelinedProfile(b34, 6), gpu::MigProfile::k2g20gb);
}

TEST(LlmTest, SizesScaleMonotonically) {
  const auto b7 = BuildLlmApp(LlmSize::k7B);
  const auto b13 = BuildLlmApp(LlmSize::k13B);
  const auto b34 = BuildLlmApp(LlmSize::k34B);
  EXPECT_LT(b7.TotalMemory(), b13.TotalMemory());
  EXPECT_LT(b13.TotalMemory(), b34.TotalMemory());
  EXPECT_LT(b7.TotalLatencyOnGpcs(1), b13.TotalLatencyOnGpcs(1));
}

TEST(LlmTest, ThirtyFourBDeploysOnDefaultPartitionFragments) {
  // The headline: per-group 2g stages on a default-partitioned node.
  auto cluster = gpu::Cluster::Uniform(1, 4, gpu::DefaultPartition());
  const auto dag = BuildLlmApp(LlmSize::k34B);
  auto ranked = core::EnumerateRankedPipelines(dag, 6);
  ASSERT_FALSE(ranked.empty());
  auto plan = core::PlanFirstFeasible(dag, ranked, cluster,
                                      model::TransferCostModel{});
  ASSERT_TRUE(plan.has_value());
  EXPECT_GT(plan->num_stages(), 1);
  for (const auto& s : plan->stages) {
    EXPECT_LE(s.plan.memory, cluster.slice(s.slice).memory());
  }
}

TEST(LlmTest, NamesAreStable) {
  EXPECT_STREQ(Name(LlmSize::k7B), "llm_7b");
  EXPECT_STREQ(Name(LlmSize::k34B), "llm_34b");
  EXPECT_STREQ(Name(ComponentClass::kTokenizer), "tokenizer");
  EXPECT_STREQ(Name(ComponentClass::kTransformerLayers),
               "transformer_layers");
  EXPECT_STREQ(Name(ComponentClass::kDetokenizer), "detokenizer");
}

TEST(LlmTest, HiddenStateHopsAreCheap) {
  // Inter-group tensors must stay in the shared-memory budget.
  model::TransferCostModel m;
  const auto dag = BuildLlmApp(LlmSize::k34B);
  for (int k = 1; k < dag.size(); ++k) {
    EXPECT_LE(m.HopCost(dag.CutBytes(k)), Millis(40));
  }
}

}  // namespace
}  // namespace fluidfaas::model
