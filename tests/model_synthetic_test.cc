#include "model/synthetic.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/partitioner.h"

namespace fluidfaas::model {
namespace {

TEST(SyntheticAppTest, DeterministicForSeed) {
  SyntheticAppParams p;
  Rng a(5), b(5);
  const AppDag da = SyntheticApp(p, a);
  const AppDag db = SyntheticApp(p, b);
  ASSERT_EQ(da.size(), db.size());
  EXPECT_EQ(da.TotalMemory(), db.TotalMemory());
  EXPECT_EQ(da.TotalLatencyOnGpcs(1), db.TotalLatencyOnGpcs(1));
  EXPECT_EQ(da.edges().size(), db.edges().size());
}

TEST(SyntheticAppTest, RespectsRanges) {
  SyntheticAppParams p;
  p.components = 10;
  p.min_memory = GiB(2);
  p.max_memory = GiB(4);
  p.min_latency = Millis(50);
  p.max_latency = Millis(100);
  Rng rng(9);
  const AppDag dag = SyntheticApp(p, rng);
  ASSERT_EQ(dag.size(), 10);
  for (int i = 0; i < dag.size(); ++i) {
    EXPECT_GE(dag.component(i).MemoryRequired(), GiB(2));
    EXPECT_LE(dag.component(i).MemoryRequired(), GiB(4));
    EXPECT_GE(dag.component(i).latency_1gpc, Millis(50));
    EXPECT_LE(dag.component(i).latency_1gpc, Millis(100));
  }
}

TEST(SyntheticAppTest, AlwaysTopological) {
  SyntheticAppParams p;
  p.components = 12;
  p.skip_edge_probability = 0.4;
  p.branch_probability = 0.3;
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const AppDag dag = SyntheticApp(p, rng);
    EXPECT_NO_THROW(dag.Validate());
    for (const DagEdge& e : dag.edges()) {
      EXPECT_LT(e.from, e.to);
    }
  }
}

TEST(SyntheticAppTest, PartitionerHandlesLargerDags) {
  // The paper's apps top out at 5 components; synthetic DAGs push the
  // enumerator to its documented k <= 20 bound territory.
  SyntheticAppParams p;
  p.components = 12;
  p.min_memory = GiB(1);
  p.max_memory = GiB(6);
  Rng rng(21);
  const AppDag dag = SyntheticApp(p, rng);
  auto cands = core::EnumerateRankedPipelines(dag, 12);
  EXPECT_EQ(cands.size(), 1u << 11);  // all partitions feasible at 80 GB cap
  for (std::size_t i = 1; i < cands.size(); ++i) {
    EXPECT_LE(cands[i - 1].cv, cands[i].cv);
  }
}

TEST(SyntheticAppTest, RejectsDegenerateParams) {
  Rng rng(1);
  SyntheticAppParams p;
  p.components = 0;
  EXPECT_THROW(SyntheticApp(p, rng), FfsError);
  p = SyntheticAppParams{};
  p.min_memory = GiB(5);
  p.max_memory = GiB(1);
  EXPECT_THROW(SyntheticApp(p, rng), FfsError);
}

}  // namespace
}  // namespace fluidfaas::model
