// The calibration contract: the model zoo must reproduce Table 5's
// feasibility matrix exactly (which application variant needs which minimum
// MIG slice, monolithically and pipelined). These tests pin that matrix.
#include "model/zoo.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/partitioner.h"

namespace fluidfaas::model {
namespace {

using gpu::MigProfile;

struct Table5Row {
  int app;
  Variant variant;
  // Minimum profile for the monolithic (baseline) deployment; nullopt = NULL
  // in the paper's table (no profile can host it).
  std::optional<MigProfile> baseline_min;
  // Minimum slice class with pipelining (the FluidFaaS column); nullopt for
  // the excluded cell.
  std::optional<MigProfile> fluid_min;
};

class Table5Test : public ::testing::TestWithParam<Table5Row> {};

TEST_P(Table5Test, FeasibilityMatrixMatchesPaper) {
  const Table5Row& row = GetParam();
  const AppDag dag = BuildApp(row.app, row.variant);
  EXPECT_EQ(core::MinMonolithicProfile(dag), row.baseline_min)
      << dag.name() << " total=" << dag.TotalMemory();
  if (IncludedInStudy(row.app, row.variant)) {
    EXPECT_EQ(core::MinPipelinedProfile(dag, 4), row.fluid_min)
        << dag.name();
  }
}

// Note on two cells relative to the paper's Table 5 (see EXPERIMENTS.md):
//  * App 3 / medium: the paper prints ">= 4g.40gb"; by pure memory-fit the
//    3g.40gb profile (same 40 GB) already suffices, so this model reports
//    3g.40gb. The 4g.40gb row is what the paper's default partition offers.
//  * App 3 / large is excluded from the study (the paper prints NULL); its
//    monolithic demand exceeds even 7g.80gb here so the baseline column is
//    genuinely NULL.
INSTANTIATE_TEST_SUITE_P(
    Table5, Table5Test,
    ::testing::Values(
        Table5Row{0, Variant::kSmall, MigProfile::k1g10gb,
                  MigProfile::k1g10gb},
        Table5Row{0, Variant::kMedium, MigProfile::k2g20gb,
                  MigProfile::k1g10gb},
        Table5Row{0, Variant::kLarge, MigProfile::k3g40gb,
                  MigProfile::k2g20gb},
        Table5Row{1, Variant::kSmall, MigProfile::k1g10gb,
                  MigProfile::k1g10gb},
        Table5Row{1, Variant::kMedium, MigProfile::k2g20gb,
                  MigProfile::k1g10gb},
        Table5Row{1, Variant::kLarge, MigProfile::k3g40gb,
                  MigProfile::k2g20gb},
        Table5Row{2, Variant::kSmall, MigProfile::k1g10gb,
                  MigProfile::k1g10gb},
        Table5Row{2, Variant::kMedium, MigProfile::k2g20gb,
                  MigProfile::k1g10gb},
        Table5Row{2, Variant::kLarge, MigProfile::k3g40gb,
                  MigProfile::k2g20gb},
        Table5Row{3, Variant::kSmall, MigProfile::k2g20gb,
                  MigProfile::k1g10gb},
        Table5Row{3, Variant::kMedium, MigProfile::k3g40gb,
                  MigProfile::k1g10gb},
        Table5Row{3, Variant::kLarge, std::nullopt, std::nullopt}));

TEST(ZooTest, AppCompositionsMatchTable4) {
  // App 0: SR -> Seg -> Cls.
  AppDag a0 = BuildApp(0, Variant::kSmall);
  ASSERT_EQ(a0.size(), 3);
  EXPECT_EQ(a0.component(0).cls, ComponentClass::kSuperResolution);
  EXPECT_EQ(a0.component(1).cls, ComponentClass::kSegmentation);
  EXPECT_EQ(a0.component(2).cls, ComponentClass::kClassification);

  // App 1: Deblur -> SR -> Depth.
  AppDag a1 = BuildApp(1, Variant::kSmall);
  ASSERT_EQ(a1.size(), 3);
  EXPECT_EQ(a1.component(0).cls, ComponentClass::kDeblur);
  EXPECT_EQ(a1.component(2).cls, ComponentClass::kDepthEstimation);

  // App 2: SR -> Deblur -> BGRemoval.
  AppDag a2 = BuildApp(2, Variant::kSmall);
  EXPECT_EQ(a2.component(2).cls, ComponentClass::kBackgroundRemoval);

  // App 3: Deblur -> (SR | pass) -> BGRemoval -> Seg -> Cls, 5 nodes with a
  // conditional arm.
  AppDag a3 = BuildApp(3, Variant::kSmall);
  ASSERT_EQ(a3.size(), 5);
  EXPECT_EQ(a3.component(1).cls, ComponentClass::kSuperResolution);
  EXPECT_DOUBLE_EQ(a3.component(1).exec_probability, 0.5);
  // The bypass edge 0 -> 2 exists.
  bool bypass = false;
  for (const DagEdge& e : a3.edges()) {
    if (e.from == 0 && e.to == 2) bypass = true;
  }
  EXPECT_TRUE(bypass);
}

TEST(ZooTest, AppNames) {
  EXPECT_STREQ(AppName(0), "image_classification");
  EXPECT_STREQ(AppName(1), "depth_recognition");
  EXPECT_STREQ(AppName(2), "background_elimination");
  EXPECT_STREQ(AppName(3), "expanded_image_classification");
  EXPECT_THROW(AppName(4), FfsError);
  EXPECT_THROW(BuildApp(-1, Variant::kSmall), FfsError);
}

TEST(ZooTest, VariantsScaleMonotonically) {
  for (int a = 0; a < kNumApps; ++a) {
    const AppDag small = BuildApp(a, Variant::kSmall);
    const AppDag medium = BuildApp(a, Variant::kMedium);
    const AppDag large = BuildApp(a, Variant::kLarge);
    EXPECT_LT(small.TotalMemory(), medium.TotalMemory());
    EXPECT_LT(medium.TotalMemory(), large.TotalMemory());
    EXPECT_LT(small.TotalLatencyOnGpcs(1), medium.TotalLatencyOnGpcs(1));
    EXPECT_LT(medium.TotalLatencyOnGpcs(1), large.TotalLatencyOnGpcs(1));
  }
}

TEST(ZooTest, ExclusionOnlyApp3Large) {
  for (int a = 0; a < kNumApps; ++a) {
    for (Variant v : kAllVariants) {
      EXPECT_EQ(IncludedInStudy(a, v),
                !(a == 3 && v == Variant::kLarge));
    }
  }
}

TEST(ZooTest, BuildStudyAppsSkipsExcluded) {
  EXPECT_EQ(BuildStudyApps(Variant::kSmall).size(), 4u);
  EXPECT_EQ(BuildStudyApps(Variant::kMedium).size(), 4u);
  EXPECT_EQ(BuildStudyApps(Variant::kLarge).size(), 3u);
}

TEST(ZooTest, SameInputsGiveIdenticalDags) {
  const AppDag a = BuildApp(2, Variant::kMedium);
  const AppDag b = BuildApp(2, Variant::kMedium);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.component(i).MemoryRequired(), b.component(i).MemoryRequired());
    EXPECT_EQ(a.component(i).latency_1gpc, b.component(i).latency_1gpc);
  }
}

TEST(ZooTest, MediumComponentsEachFitOneGSlice) {
  // FluidFaaS's Table 5 claim for medium variants: every stage can sit on a
  // 1g.10gb slice, i.e. every single component fits 10 GB.
  for (int a = 0; a < kNumApps; ++a) {
    const AppDag dag = BuildApp(a, Variant::kMedium);
    for (int i = 0; i < dag.size(); ++i) {
      EXPECT_LE(dag.component(i).MemoryRequired(), GiB(10))
          << dag.name() << " component " << i;
    }
  }
}

TEST(ZooTest, LargeComponentsOfStudyAppsFitTwoGSlice) {
  // Heavy tier: per-stage memory stays within 2g.20gb for apps 0-2.
  for (int a = 0; a < 3; ++a) {
    const AppDag dag = BuildApp(a, Variant::kLarge);
    for (int i = 0; i < dag.size(); ++i) {
      EXPECT_LE(dag.component(i).MemoryRequired(), GiB(20))
          << dag.name() << " component " << i;
      EXPECT_GT(dag.TotalMemory(), GiB(20));
    }
  }
}

}  // namespace
}  // namespace fluidfaas::model
