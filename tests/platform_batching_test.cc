// Batched-serving semantics: stage passes pull up to max_batch requests,
// the pass costs the marginal-batched time, and all members complete
// together.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/pipeline.h"
#include "gpu/cluster.h"
#include "harness/experiment.h"
#include "metrics/recorder.h"
#include "platform/instance.h"
#include "sim/simulator.h"

namespace fluidfaas::platform {
namespace {

model::ComponentSpec Comp(SimDuration t) {
  model::ComponentSpec c;
  c.id = ComponentId(0);
  c.name = "c";
  c.cls = model::ComponentClass::kClassification;
  c.weights = GiB(1);
  c.activations = GiB(1);
  c.latency_1gpc = t;
  c.serial_fraction = 0.0;
  c.output = model::TensorSpec({MiB(10)}, 1);
  return c;
}

class BatchingTest : public ::testing::Test {
 protected:
  BatchingTest()
      : cluster_(gpu::Cluster::Uniform(1, 1,
                                       gpu::MigPartition::Parse(
                                           "1g.10gb+1g.10gb"))),
        recorder_(cluster_),
        dag_("app", {Comp(Millis(100))}, {{-1, 0}}) {
    recorder_.SubscribeTo(sim_.bus());
  }

  std::unique_ptr<Instance> Make(int max_batch, double marginal) {
    auto plan = *core::MonolithicPlanOnSlice(dag_, cluster_, SliceId(0));
    cluster_.Bind(SliceId(0), InstanceId(1));
    recorder_.SliceBound(SliceId(0), 0);
    auto inst = std::make_unique<Instance>(
        InstanceId(1), FunctionId(0), dag_, std::move(plan), sim_,
        [this](RequestId rid) { completions_.push_back({rid, sim_.Now()}); });
    inst->SetBatching(max_batch, marginal);
    inst->Launch(0);
    return inst;
  }

  RequestId NewRequest() {
    return recorder_.NewRequest(FunctionId(0), sim_.Now(),
                                sim_.Now() + Seconds(10));
  }

  sim::Simulator sim_;
  gpu::Cluster cluster_;
  metrics::Recorder recorder_;
  model::AppDag dag_;
  std::vector<std::pair<RequestId, SimTime>> completions_;
};

TEST_F(BatchingTest, BatchOfTwoCompletesTogetherAtMarginalCost) {
  auto inst = Make(/*max_batch=*/4, /*marginal=*/0.5);
  const RequestId r1 = NewRequest();
  const RequestId r2 = NewRequest();
  inst->Enqueue(r1, 1.0);
  inst->Enqueue(r2, 1.0);
  sim_.Run();
  // One pass of 100 ms x (1 + 0.5) = 150 ms serves both.
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].second, Millis(150));
  EXPECT_EQ(completions_[1].second, Millis(150));
  // Exec attributed as each request's share of the pass.
  EXPECT_EQ(recorder_.record(r1).exec_time, Millis(75));
  EXPECT_EQ(recorder_.record(r2).exec_time, Millis(75));
}

TEST_F(BatchingTest, MaxBatchCapsThePass) {
  auto inst = Make(/*max_batch=*/2, /*marginal=*/0.0);
  for (int i = 0; i < 5; ++i) inst->Enqueue(NewRequest(), 1.0);
  sim_.Run();
  ASSERT_EQ(completions_.size(), 5u);
  // Free batching (marginal 0): passes of {2,2,1} x 100 ms.
  EXPECT_EQ(completions_[1].second, Millis(100));
  EXPECT_EQ(completions_[3].second, Millis(200));
  EXPECT_EQ(completions_[4].second, Millis(300));
}

TEST_F(BatchingTest, NoBatchingByDefaultMatchesSerial) {
  auto inst = Make(/*max_batch=*/1, /*marginal=*/0.5);
  inst->Enqueue(NewRequest(), 1.0);
  inst->Enqueue(NewRequest(), 1.0);
  sim_.Run();
  EXPECT_EQ(completions_[0].second, Millis(100));
  EXPECT_EQ(completions_[1].second, Millis(200));
}

TEST_F(BatchingTest, LateArrivalJoinsNextPassNotCurrent) {
  auto inst = Make(/*max_batch=*/4, /*marginal=*/0.0);
  inst->Enqueue(NewRequest(), 1.0);
  // Arrives while the first pass is in flight.
  sim_.At(Millis(50), [&] { inst->Enqueue(NewRequest(), 1.0); });
  sim_.Run();
  EXPECT_EQ(completions_[0].second, Millis(100));
  EXPECT_EQ(completions_[1].second, Millis(200));
}

TEST_F(BatchingTest, RejectsBadParameters) {
  auto inst = Make(1, 0.5);
  EXPECT_THROW(inst->SetBatching(0, 0.5), FfsError);
  EXPECT_THROW(inst->SetBatching(2, -0.1), FfsError);
  EXPECT_THROW(inst->SetBatching(2, 1.5), FfsError);
}

TEST(BatchingEndToEndTest, BatchingRaisesBaselineThroughputUnderOverload) {
  // INFless with batching sustains more of the medium overload than
  // without — the capability exists even though the paper's evaluation
  // runs everything unbatched.
  harness::ExperimentConfig cfg;
  cfg.system = harness::SystemKind::kInfless;
  cfg.tier = trace::WorkloadTier::kMedium;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 4;
  cfg.duration = Seconds(90);
  cfg.load_factor = 0.8;
  auto plain = harness::RunExperiment(cfg);
  cfg.platform.max_batch = 4;
  auto batched = harness::RunExperiment(cfg);
  EXPECT_GT(batched.throughput_rps, plain.throughput_rps);
}

}  // namespace
}  // namespace fluidfaas::platform
