#include "platform/function.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"

namespace fluidfaas::platform {
namespace {

TEST(FunctionSpecTest, FieldsDeriveFromDag) {
  const auto dag = model::BuildApp(0, model::Variant::kSmall);
  FunctionSpec f = MakeFunctionSpec(FunctionId(0), 0, model::Variant::kSmall,
                                    dag, /*slo_scale=*/1.5);
  EXPECT_EQ(f.id, FunctionId(0));
  EXPECT_EQ(f.app_index, 0);
  EXPECT_EQ(f.total_memory, dag.TotalMemory());
  EXPECT_EQ(f.min_monolithic, gpu::MigProfile::k1g10gb);
  EXPECT_FALSE(f.ranked_pipelines.empty());
  EXPECT_EQ(f.name, dag.name());
}

TEST(FunctionSpecTest, SloIsScaleTimesBase) {
  const auto dag = model::BuildApp(0, model::Variant::kSmall);
  FunctionSpec f15 = MakeFunctionSpec(FunctionId(0), 0,
                                      model::Variant::kSmall, dag, 1.5);
  FunctionSpec f30 = MakeFunctionSpec(FunctionId(0), 0,
                                      model::Variant::kSmall, dag, 3.0);
  EXPECT_EQ(f15.base_latency, f30.base_latency);
  EXPECT_EQ(f15.slo, f15.base_latency + f15.base_latency / 2);
  EXPECT_EQ(f30.slo, 2 * f15.slo);
}

TEST(FunctionSpecTest, BaseLatencyUsesTable5MinimumSliceClass) {
  // Medium variants: the Table 5 minimum (pipelined) is 1g, so t is the
  // end-to-end latency with every component on one GPC.
  const auto dag = model::BuildApp(0, model::Variant::kMedium);
  FunctionSpec f = MakeFunctionSpec(FunctionId(0), 0,
                                    model::Variant::kMedium, dag, 1.5);
  EXPECT_EQ(f.base_latency, dag.TotalLatencyOnGpcs(1));
  // Large variants: the minimum slice class is 2g.
  const auto large = model::BuildApp(0, model::Variant::kLarge);
  FunctionSpec fl = MakeFunctionSpec(FunctionId(1), 0,
                                     model::Variant::kLarge, large, 1.5);
  EXPECT_EQ(fl.base_latency, large.TotalLatencyOnGpcs(2));
}

TEST(FunctionSpecTest, RankedPipelinesLeadWithMonolithic) {
  const auto dag = model::BuildApp(1, model::Variant::kMedium);
  FunctionSpec f = MakeFunctionSpec(FunctionId(0), 1,
                                    model::Variant::kMedium, dag, 1.5);
  EXPECT_TRUE(f.ranked_pipelines.front().IsMonolithic());
}

TEST(FunctionSpecTest, MaxStagesIsRespected) {
  const auto dag = model::BuildApp(3, model::Variant::kSmall);  // 5 nodes
  FunctionSpec f = MakeFunctionSpec(FunctionId(0), 3,
                                    model::Variant::kSmall, dag, 1.5,
                                    /*max_stages=*/2);
  for (const auto& c : f.ranked_pipelines) {
    EXPECT_LE(c.num_stages(), 2);
  }
}

TEST(FunctionSpecTest, RejectsSubUnitSloScale) {
  const auto dag = model::BuildApp(0, model::Variant::kSmall);
  EXPECT_THROW(MakeFunctionSpec(FunctionId(0), 0, model::Variant::kSmall,
                                dag, 0.5),
               FfsError);
}

TEST(FunctionSpecTest, AllStudyCellsProduceSpecs) {
  int id = 0;
  for (int a = 0; a < model::kNumApps; ++a) {
    for (model::Variant v : model::kAllVariants) {
      if (!model::IncludedInStudy(a, v)) continue;
      FunctionSpec f = MakeFunctionSpec(FunctionId(id++), a, v,
                                        model::BuildApp(a, v), 1.5);
      EXPECT_GT(f.slo, f.base_latency);
      EXPECT_FALSE(f.ranked_pipelines.empty()) << f.name;
    }
  }
}

}  // namespace
}  // namespace fluidfaas::platform
