#include "platform/instance.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/partitioner.h"
#include "core/pipeline.h"
#include "gpu/cluster.h"
#include "metrics/recorder.h"
#include "sim/simulator.h"

namespace fluidfaas::platform {
namespace {

model::ComponentSpec Comp(int idx, SimDuration t) {
  model::ComponentSpec c;
  c.id = ComponentId(idx);
  c.name = "c" + std::to_string(idx);
  c.cls = model::ComponentClass::kClassification;
  c.weights = GiB(1);
  c.activations = GiB(1);
  c.latency_1gpc = t;
  c.serial_fraction = 0.0;
  c.output = model::TensorSpec({MiB(20)}, 1);
  return c;
}

// Fixture wiring a simulator, cluster, recorder, a 2-component DAG and a
// hand-built plan (1 or 2 stages on 1g slices).
class InstanceTest : public ::testing::Test {
 protected:
  InstanceTest()
      : cluster_(gpu::Cluster::Uniform(1, 1,
                                       gpu::MigPartition::Parse(
                                           "1g.10gb+1g.10gb+1g.10gb"))),
        recorder_(cluster_),
        dag_("app",
             {Comp(0, Millis(100)), Comp(1, Millis(100))},
             {{-1, 0}, {0, 1}}) {
    recorder_.SubscribeTo(sim_.bus());
  }

  core::PipelinePlan OneStagePlan() {
    return *core::MonolithicPlanOnSlice(dag_, cluster_, SliceId(0));
  }

  core::PipelinePlan TwoStagePlan(SimDuration hop = Millis(10)) {
    core::PipelinePlan plan;
    plan.node = NodeId(0);
    for (int i = 0; i < 2; ++i) {
      core::StageBinding b;
      b.plan = *core::MakeStagePlan(dag_, i, i + 1);
      b.slice = SliceId(i);
      b.profile = gpu::MigProfile::k1g10gb;
      b.exec_time = Millis(100);
      b.hop_out = (i == 0) ? hop : 0;
      plan.stages.push_back(b);
    }
    return plan;
  }

  std::unique_ptr<Instance> Make(core::PipelinePlan plan,
                                 SimDuration load = 0) {
    for (const auto& s : plan.stages) {
      cluster_.Bind(s.slice, InstanceId(1));
      recorder_.SliceBound(s.slice, sim_.Now());
    }
    auto inst = std::make_unique<Instance>(
        InstanceId(1), FunctionId(0), dag_, std::move(plan), sim_,
        [this](RequestId rid) { completions_.push_back({rid, sim_.Now()}); });
    inst->Launch(load);
    return inst;
  }

  RequestId NewRequest() {
    return recorder_.NewRequest(FunctionId(0), sim_.Now(),
                                sim_.Now() + Seconds(10));
  }

  sim::Simulator sim_;
  gpu::Cluster cluster_;
  metrics::Recorder recorder_;
  model::AppDag dag_;
  std::vector<std::pair<RequestId, SimTime>> completions_;
};

TEST_F(InstanceTest, MonolithicServesSequentially) {
  auto inst = Make(OneStagePlan());
  EXPECT_EQ(inst->state(), InstanceState::kReady);
  const RequestId r1 = NewRequest();
  const RequestId r2 = NewRequest();
  inst->Enqueue(r1, 1.0);
  inst->Enqueue(r2, 1.0);
  EXPECT_EQ(inst->outstanding(), 2);
  sim_.Run();
  ASSERT_EQ(completions_.size(), 2u);
  // 200 ms service each (both components on one 1g slice), back to back.
  EXPECT_EQ(completions_[0], std::make_pair(r1, Millis(200)));
  EXPECT_EQ(completions_[1], std::make_pair(r2, Millis(400)));
  EXPECT_TRUE(inst->Idle());
}

TEST_F(InstanceTest, PipelineOverlapsStages) {
  auto inst = Make(TwoStagePlan(/*hop=*/0));
  const RequestId r1 = NewRequest();
  const RequestId r2 = NewRequest();
  inst->Enqueue(r1, 1.0);
  inst->Enqueue(r2, 1.0);
  sim_.Run();
  ASSERT_EQ(completions_.size(), 2u);
  // r1: 100 + 100 = 200 ms; r2 overlaps stage 0 while r1 is in stage 1,
  // completing at 300 ms — not the 400 ms a serial instance would need.
  EXPECT_EQ(completions_[0].second, Millis(200));
  EXPECT_EQ(completions_[1].second, Millis(300));
}

TEST_F(InstanceTest, HopDelaysArriveInTransferTime) {
  auto inst = Make(TwoStagePlan(/*hop=*/Millis(30)));
  const RequestId r1 = NewRequest();
  inst->Enqueue(r1, 1.0);
  sim_.Run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].second, Millis(230));
  const auto& rec = recorder_.record(r1);
  EXPECT_EQ(rec.transfer_time, Millis(30));
  EXPECT_EQ(rec.exec_time, Millis(200));
  EXPECT_EQ(rec.queue_time, 0);
  EXPECT_EQ(rec.load_time, 0);
}

TEST_F(InstanceTest, LoadingDelaysFirstRequestAsLoadTime) {
  auto inst = Make(OneStagePlan(), /*load=*/Millis(500));
  EXPECT_EQ(inst->state(), InstanceState::kLoading);
  const RequestId r1 = NewRequest();
  inst->Enqueue(r1, 1.0);  // admitted while loading
  sim_.Run();
  EXPECT_EQ(inst->state(), InstanceState::kReady);
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].second, Millis(700));
  EXPECT_EQ(recorder_.record(r1).load_time, Millis(500));
  EXPECT_EQ(recorder_.record(r1).queue_time, 0);
}

TEST_F(InstanceTest, QueueTimeAttributedToWaiters) {
  auto inst = Make(OneStagePlan());
  const RequestId r1 = NewRequest();
  const RequestId r2 = NewRequest();
  inst->Enqueue(r1, 1.0);
  inst->Enqueue(r2, 1.0);
  sim_.Run();
  EXPECT_EQ(recorder_.record(r1).queue_time, 0);
  EXPECT_EQ(recorder_.record(r2).queue_time, Millis(200));
}

TEST_F(InstanceTest, JitterScalesServiceTime) {
  auto inst = Make(OneStagePlan());
  const RequestId r1 = NewRequest();
  inst->Enqueue(r1, 1.5);
  sim_.Run();
  EXPECT_EQ(completions_[0].second, Millis(300));
  EXPECT_EQ(recorder_.record(r1).exec_time, Millis(300));
}

TEST_F(InstanceTest, CapacityAndEstimates) {
  auto inst = Make(TwoStagePlan(/*hop=*/0));
  // Bottleneck 100 ms -> 10 rps.
  EXPECT_NEAR(inst->CapacityRps(), 10.0, 1e-9);
  EXPECT_EQ(inst->ServiceLatency(), Millis(200));
  EXPECT_EQ(inst->EstimateCompletion(0), Millis(200));
  const RequestId r1 = NewRequest();
  inst->Enqueue(r1, 1.0);
  EXPECT_EQ(inst->EstimateCompletion(0), Millis(300));
  sim_.Run();
}

TEST_F(InstanceTest, AdmitWithinBoundAllowsPipelineConcurrency) {
  auto inst = Make(TwoStagePlan(/*hop=*/0));
  // slo shorter than e2e: the 2x service-latency floor still admits one
  // in-flight plus one queued.
  // Bound = deadline (150 ms) + max(slo, 2 x 200 ms e2e) = 550 ms.
  // Estimates with k queued are 200 + 100k ms: k = 0..3 admit, k = 4 does
  // not — so the pipeline holds several requests in flight despite the SLO
  // slack being below its bottleneck time.
  const SimDuration slo = Millis(150);
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(inst->AdmitWithinBound(0, Millis(150), slo)) << k;
    inst->Enqueue(NewRequest(), 1.0);
  }
  EXPECT_FALSE(inst->AdmitWithinBound(0, Millis(150), slo));
  sim_.Run();
}

TEST_F(InstanceTest, DrainStopsAdmissionButFinishesWork) {
  auto inst = Make(OneStagePlan());
  const RequestId r1 = NewRequest();
  inst->Enqueue(r1, 1.0);
  inst->BeginDrain();
  EXPECT_EQ(inst->state(), InstanceState::kDraining);
  EXPECT_FALSE(inst->CanAdmit());
  sim_.Run();
  EXPECT_EQ(completions_.size(), 1u);
  EXPECT_TRUE(inst->Idle());
  inst->MarkRetired();
  EXPECT_EQ(inst->state(), InstanceState::kRetired);
}

TEST_F(InstanceTest, DrainWhileLoadingStillServesAdmitted) {
  auto inst = Make(OneStagePlan(), /*load=*/Millis(300));
  const RequestId r1 = NewRequest();
  inst->Enqueue(r1, 1.0);
  inst->BeginDrain();
  sim_.Run();
  EXPECT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].second, Millis(500));
}

TEST_F(InstanceTest, RetireWithWorkThrows) {
  auto inst = Make(OneStagePlan());
  inst->Enqueue(NewRequest(), 1.0);
  EXPECT_THROW(inst->MarkRetired(), FfsError);
  sim_.Run();
}

TEST_F(InstanceTest, EnqueueOnRetiredThrows) {
  auto inst = Make(OneStagePlan());
  inst->BeginDrain();
  inst->MarkRetired();
  EXPECT_THROW(inst->Enqueue(NewRequest(), 1.0), FfsError);
}

TEST_F(InstanceTest, ActiveTotalIntegratesBusyPeriods) {
  auto inst = Make(OneStagePlan());
  const RequestId r1 = NewRequest();
  inst->Enqueue(r1, 1.0);
  sim_.Run();  // busy [0, 200 ms]
  EXPECT_EQ(inst->ActiveTotal(sim_.Now()), Millis(200));
  // Idle gap then another request.
  sim_.At(Millis(500), [&] { inst->Enqueue(NewRequest(), 1.0); });
  sim_.Run();
  EXPECT_EQ(inst->ActiveTotal(sim_.Now()), Millis(400));
  EXPECT_EQ(inst->last_used(), Millis(700));
}

TEST_F(InstanceTest, BusyAccountingReachesRecorder) {
  auto inst = Make(TwoStagePlan(/*hop=*/0));
  inst->Enqueue(NewRequest(), 1.0);
  sim_.Run();
  recorder_.Close(sim_.Now());
  // Each stage busy 100 ms on its own slice.
  EXPECT_EQ(recorder_.MigTime(), Millis(200));
}

}  // namespace
}  // namespace fluidfaas::platform
