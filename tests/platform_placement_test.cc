// Placement transactions (DESIGN.md §8): plans built against a ClusterView
// snapshot must commit atomically against live state — and abort with a
// typed cause, applying nothing, when live state drifted after planning.
#include "platform/placement.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.h"
#include "gpu/cluster_view.h"
#include "metrics/recorder.h"
#include "model/zoo.h"
#include "platform/platform.h"
#include "platform/policy.h"

namespace fluidfaas::platform {
namespace {

std::vector<FunctionSpec> StudyFunctions() {
  std::vector<FunctionSpec> fns;
  int id = 0;
  for (auto& dag : model::BuildStudyApps(model::Variant::kSmall)) {
    const int app = id;
    fns.push_back(MakeFunctionSpec(FunctionId(id++), app,
                                   model::Variant::kSmall, dag, 1.5));
  }
  return fns;
}

class RejectRouting final : public RoutingPolicy {
 public:
  bool Route(PlatformCore&, RequestId, FunctionId) override { return false; }
};

class NoScaling final : public ScalingPolicy {
 public:
  void Tick(PlatformCore&) override {}
};

PolicyBundle InertBundle() {
  PolicyBundle b;
  b.name = "placement-test";
  b.routing = std::make_unique<RejectRouting>();
  b.scaling = std::make_unique<NoScaling>();
  return b;
}

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest()
      : cluster_(gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition())),
        recorder_(cluster_),
        plat_(sim_, cluster_, StudyFunctions(), PlatformConfig{},
              InertBundle()) {
    recorder_.SubscribeTo(sim_.bus());
  }

  const FunctionSpec& spec(int fn) const {
    return plat_.function(FunctionId(fn));
  }

  /// Single-spawn plan for `fn` on the view's smallest feasible slice.
  PlacementPlan PlanSpawn(gpu::ClusterView& view, int fn) {
    auto plan = core::MonolithicPlanOnSmallestSlice(spec(fn).dag, view);
    EXPECT_TRUE(plan.has_value());
    PlacementPlan txn;
    AddSpawn(txn, view, FunctionId(fn), std::move(*plan), false);
    return txn;
  }

  static SliceId SpawnSlice(const PlacementPlan& txn, std::size_t action) {
    return std::get<SpawnAction>(txn.actions[action])
        .pipeline.stages.front()
        .slice;
  }

  sim::Simulator sim_;
  gpu::Cluster cluster_;
  metrics::Recorder recorder_;
  PlatformCore plat_;
};

TEST_F(PlacementTest, CommitSpawnsAndPublishesCounters) {
  gpu::ClusterView view(cluster_);
  const PlacementPlan txn = PlanSpawn(view, 0);
  const SliceId sid = SpawnSlice(txn, 0);
  const CommitResult result = plat_.Commit(txn);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.spawned.size(), 1u);
  EXPECT_EQ(cluster_.slice(sid).occupant, result.spawned.front()->id());
  EXPECT_EQ(recorder_.plans_committed(), 1u);
  EXPECT_EQ(recorder_.spawns_committed(), 1u);
  EXPECT_EQ(recorder_.plans_aborted(), 0u);
  EXPECT_EQ(recorder_.PlanConflictRate(), 0.0);
}

TEST_F(PlacementTest, AbortWhenReservedSliceFailsAfterPlanning) {
  gpu::ClusterView view(cluster_);
  const PlacementPlan txn = PlanSpawn(view, 0);
  const SliceId sid = SpawnSlice(txn, 0);
  // Live state drifts between plan and commit: the slice faults.
  cluster_.MarkFailed(sid);
  const CommitResult result = plat_.Commit(txn);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.cause, sim::PlanAbortCause::kSliceFailed);
  EXPECT_TRUE(result.spawned.empty());
  EXPECT_TRUE(plat_.AllInstances().empty());
  EXPECT_EQ(recorder_.plans_aborted(), 1u);
  EXPECT_EQ(recorder_.plans_aborted_by(sim::PlanAbortCause::kSliceFailed), 1u);
}

TEST_F(PlacementTest, AbortWhenRepartitionRetiresReservedSlice) {
  gpu::ClusterView view(cluster_);
  const PlacementPlan txn = PlanSpawn(view, 0);
  const SliceId sid = SpawnSlice(txn, 0);
  // The reserved slice's GPU is repartitioned away; the id is now dead.
  cluster_.RepartitionGpu(cluster_.slice(sid).gpu,
                          gpu::MigPartition::Parse("7g.80gb"));
  const CommitResult result = plat_.Commit(txn);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.cause, sim::PlanAbortCause::kSliceRetired);
  EXPECT_TRUE(plat_.AllInstances().empty());
}

TEST_F(PlacementTest, SecondOfTwoRacingPlansAborts) {
  // Two planners snapshot the same state and pick the same smallest slice —
  // the optimistic-concurrency race FluidFaaS-dist resolves by re-planning.
  gpu::ClusterView view_a(cluster_);
  gpu::ClusterView view_b(cluster_);
  const PlacementPlan plan_a = PlanSpawn(view_a, 0);
  const PlacementPlan plan_b = PlanSpawn(view_b, 1);
  ASSERT_EQ(SpawnSlice(plan_a, 0), SpawnSlice(plan_b, 0));

  ASSERT_TRUE(plat_.Commit(plan_a).ok());
  const CommitResult result = plat_.Commit(plan_b);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.cause, sim::PlanAbortCause::kSliceConflict);
  EXPECT_EQ(plat_.AllInstances().size(), 1u);
  EXPECT_EQ(recorder_.plans_committed(), 1u);
  EXPECT_EQ(recorder_.plans_aborted(), 1u);
  EXPECT_DOUBLE_EQ(recorder_.PlanConflictRate(), 0.5);
}

TEST_F(PlacementTest, AbortAppliesNothingFromMultiActionPlan) {
  // Plan two spawns; fail the second one's slice before commit. Atomicity
  // means the first spawn must NOT have happened either.
  gpu::ClusterView view(cluster_);
  PlacementPlan txn;
  auto first = core::MonolithicPlanOnSmallestSlice(spec(0).dag, view);
  ASSERT_TRUE(first.has_value());
  const SliceId first_sid = first->stages.front().slice;
  AddSpawn(txn, view, FunctionId(0), std::move(*first), false);
  auto second = core::MonolithicPlanOnSmallestSlice(spec(1).dag, view);
  ASSERT_TRUE(second.has_value());
  const SliceId second_sid = second->stages.front().slice;
  ASSERT_NE(first_sid, second_sid);  // the view reserved the first pick
  AddSpawn(txn, view, FunctionId(1), std::move(*second), false);

  cluster_.MarkFailed(second_sid);
  const CommitResult result = plat_.Commit(txn);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.cause, sim::PlanAbortCause::kSliceFailed);
  EXPECT_TRUE(plat_.AllInstances().empty());
  EXPECT_TRUE(cluster_.slice(first_sid).free());  // nothing half-bound
}

TEST_F(PlacementTest, EvictThenSpawnReusesVictimSlice) {
  // Occupy every slice big enough for fn 0, then plan evict+spawn.
  gpu::ClusterView setup(cluster_);
  const PlacementPlan seed = PlanSpawn(setup, 0);
  const SliceId sid = SpawnSlice(seed, 0);
  const CommitResult seeded = plat_.Commit(seed);
  ASSERT_TRUE(seeded.ok());
  Instance* victim = seeded.spawned.front();
  sim_.Run();  // finish loading so the victim is idle

  gpu::ClusterView view(cluster_);
  PlacementPlan txn;
  AddEvict(txn, view, victim->id(), victim->plan());
  // The victim's slice is planned-free in the view: plan the spawn on it.
  auto plan = core::MonolithicPlanOnSlice(spec(1).dag, view, sid);
  ASSERT_TRUE(plan.has_value());
  AddSpawn(txn, view, FunctionId(1), std::move(*plan), false);

  const CommitResult result = plat_.Commit(txn);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(cluster_.slice(sid).occupant, result.spawned.front()->id());
  EXPECT_EQ(victim->state(), InstanceState::kRetired);
}

TEST_F(PlacementTest, AbortWhenEvictVictimAlreadyRetired) {
  gpu::ClusterView setup(cluster_);
  const CommitResult seeded = plat_.Commit(PlanSpawn(setup, 0));
  ASSERT_TRUE(seeded.ok());
  Instance* victim = seeded.spawned.front();
  sim_.Run();

  gpu::ClusterView view(cluster_);
  PlacementPlan txn;
  AddEvict(txn, view, victim->id(), victim->plan());
  plat_.RetireInstance(victim);  // someone else got there first
  const CommitResult result = plat_.Commit(txn);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.cause, sim::PlanAbortCause::kVictimGone);
}

TEST_F(PlacementTest, ViewOverlayHidesReservationsFromQueries) {
  gpu::ClusterView view(cluster_);
  const auto before = view.FreeSlices().size();
  const auto sid = view.SmallestFreeSliceWithMemory(GiB(1));
  ASSERT_TRUE(sid.has_value());
  view.Reserve(*sid);
  EXPECT_EQ(view.FreeSlices().size(), before - 1);
  EXPECT_TRUE(view.IsReserved(*sid));
  const auto next = view.SmallestFreeSliceWithMemory(GiB(1));
  ASSERT_TRUE(next.has_value());
  EXPECT_NE(*next, *sid);
  // The live cluster is untouched by view reservations.
  EXPECT_TRUE(cluster_.slice(*sid).free());
}

}  // namespace
}  // namespace fluidfaas::platform
