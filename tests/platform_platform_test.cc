#include "platform/platform.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "model/zoo.h"

namespace fluidfaas::platform {
namespace {

std::vector<FunctionSpec> StudyFunctions(model::Variant v) {
  std::vector<FunctionSpec> fns;
  int id = 0;
  for (auto& dag : model::BuildStudyApps(v)) {
    const int app = id;  // app order == id order for included variants
    fns.push_back(MakeFunctionSpec(FunctionId(id++), app, v, dag, 1.5));
  }
  return fns;
}

/// Minimal concrete platform: routes every request to a single monolithic
/// instance per function, created on demand. Exposes the protected helpers
/// under test.
class TestPlatform : public Platform {
 public:
  using Platform::ArrivalRate;
  using Platform::DrainOrRetire;
  using Platform::IsWarm;
  using Platform::LaunchInstance;
  using Platform::LoadTime;
  using Platform::RetireInstance;
  using Platform::TickUtilization;
  using Platform::TouchWarm;

  TestPlatform(sim::Simulator& sim, gpu::Cluster& cluster,
               metrics::Recorder& recorder, std::vector<FunctionSpec> fns,
               PlatformConfig config)
      : Platform(sim, cluster, recorder, std::move(fns), config) {}

  std::string name() const override { return "test"; }

  int route_calls = 0;
  bool accept = true;

 protected:
  bool Route(RequestId rid, FunctionId fn) override {
    ++route_calls;
    if (!accept) return false;
    auto insts = InstancesOf(fn);
    Instance* inst = nullptr;
    for (Instance* i : insts) {
      if (i->CanAdmit()) inst = i;
    }
    if (inst == nullptr) {
      const FunctionSpec& spec = function(fn);
      auto sid = cluster().SmallestFreeSliceWithMemory(spec.total_memory);
      if (!sid) return false;
      inst = LaunchInstance(spec,
                            *core::MonolithicPlanOnSlice(spec.dag, cluster(),
                                                         *sid),
                            IsWarm(fn));
    }
    inst->Enqueue(rid, JitterOf(rid));
    return true;
  }
  void AutoscaleTick() override {}
};

class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest()
      : cluster_(gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition())),
        recorder_(cluster_),
        plat_(sim_, cluster_, recorder_,
              StudyFunctions(model::Variant::kSmall), PlatformConfig{}) {}

  sim::Simulator sim_;
  gpu::Cluster cluster_;
  metrics::Recorder recorder_;
  TestPlatform plat_;
};

TEST_F(PlatformTest, SubmitCreatesRecordWithSloDeadline) {
  const RequestId rid = plat_.Submit(FunctionId(0));
  const auto& rec = recorder_.record(rid);
  EXPECT_EQ(rec.fn, FunctionId(0));
  EXPECT_EQ(rec.arrival, 0);
  EXPECT_EQ(rec.deadline, plat_.function(FunctionId(0)).slo);
  EXPECT_EQ(plat_.route_calls, 1);
}

TEST_F(PlatformTest, LaunchBindsSlicesAndRetireReleases) {
  const FunctionSpec& spec = plat_.function(FunctionId(0));
  auto plan = core::MonolithicPlanOnSlice(
      spec.dag, cluster_, *cluster_.SmallestFreeSliceWithMemory(
                              spec.total_memory));
  const SliceId used = plan->stages[0].slice;
  Instance* inst = plat_.LaunchInstance(spec, *plan, /*warm=*/false);
  EXPECT_FALSE(cluster_.slice(used).free());
  EXPECT_EQ(cluster_.slice(used).occupant, inst->id());
  sim_.Run();  // finish loading
  plat_.RetireInstance(inst);
  EXPECT_TRUE(cluster_.slice(used).free());
  EXPECT_EQ(inst->state(), InstanceState::kRetired);
  // Retiring marks the function warm.
  EXPECT_TRUE(plat_.IsWarm(FunctionId(0)));
}

TEST_F(PlatformTest, ColdThenWarmLoadTimes) {
  EXPECT_FALSE(plat_.IsWarm(FunctionId(0)));
  const SimDuration cold = plat_.LoadTime(FunctionId(0), GiB(2));
  plat_.TouchWarm(FunctionId(0));
  const SimDuration warm = plat_.LoadTime(FunctionId(0), GiB(2));
  EXPECT_LT(warm, cold);
}

TEST_F(PlatformTest, WarmExpiresAfterTimeout) {
  plat_.TouchWarm(FunctionId(0));
  EXPECT_TRUE(plat_.IsWarm(FunctionId(0)));
  sim_.RunUntil(plat_.config().warm_timeout + Seconds(1));
  EXPECT_FALSE(plat_.IsWarm(FunctionId(0)));
}

TEST_F(PlatformTest, PendingRequestsRetryOnCompletion) {
  plat_.accept = false;
  plat_.Submit(FunctionId(0));
  EXPECT_EQ(plat_.PendingCount(), 1u);
  plat_.accept = true;
  // A completion of some other request triggers DispatchPending; simplest
  // trigger here: submit one that is accepted and let it finish.
  plat_.Submit(FunctionId(0));
  sim_.Run();
  EXPECT_EQ(plat_.PendingCount(), 0u);
  EXPECT_EQ(recorder_.completed_requests(), 2u);
}

TEST_F(PlatformTest, StartRunsAutoscaleAndDispatchesPending) {
  plat_.Start();
  plat_.accept = false;
  plat_.Submit(FunctionId(1));
  EXPECT_EQ(plat_.PendingCount(), 1u);
  plat_.accept = true;
  sim_.RunUntil(Seconds(2));  // a few autoscale ticks
  EXPECT_EQ(plat_.PendingCount(), 0u);
  plat_.Stop();
}

TEST_F(PlatformTest, ArrivalRateTracksSubmissions) {
  plat_.Start();
  // 20 requests per second for 5 seconds.
  for (int t = 0; t < 5000; t += 50) {
    sim_.At(Millis(t), [this] { plat_.Submit(FunctionId(0)); });
  }
  sim_.RunUntil(Seconds(5));
  EXPECT_NEAR(plat_.ArrivalRate(FunctionId(0)), 20.0, 4.0);
  plat_.Stop();
}

TEST_F(PlatformTest, TickUtilizationReflectsBusyFraction) {
  plat_.Start();
  const RequestId rid = plat_.Submit(FunctionId(0));
  (void)rid;
  auto insts = plat_.InstancesOf(FunctionId(0));
  ASSERT_EQ(insts.size(), 1u);
  sim_.RunUntil(Seconds(30));
  // Prime the snapshot, wait an idle second, utilization ~0.
  plat_.TickUtilization(insts[0]);
  sim_.RunUntil(Seconds(31));
  EXPECT_NEAR(plat_.TickUtilization(insts[0]), 0.0, 1e-9);
  plat_.Stop();
}

TEST_F(PlatformTest, DrainOrRetireImmediateWhenIdle) {
  plat_.Submit(FunctionId(0));
  sim_.Run();
  auto insts = plat_.InstancesOf(FunctionId(0));
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_TRUE(plat_.DrainOrRetire(insts[0]));
  EXPECT_EQ(insts[0]->state(), InstanceState::kRetired);
}

TEST_F(PlatformTest, DrainOrRetireDefersWhenBusy) {
  plat_.Submit(FunctionId(0));
  auto insts = plat_.InstancesOf(FunctionId(0));
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_FALSE(plat_.DrainOrRetire(insts[0]));
  EXPECT_EQ(insts[0]->state(), InstanceState::kDraining);
  sim_.Run();
}

TEST_F(PlatformTest, JitterIsNearUnit) {
  // With the default 5% CV, sampled jitter stays within a sane band.
  for (int i = 0; i < 100; ++i) {
    const RequestId rid = plat_.Submit(FunctionId(0));
    (void)rid;
  }
  sim_.Run();
  for (const auto& rec : recorder_.records()) {
    EXPECT_GT(rec.exec_time, 0);
  }
}

}  // namespace
}  // namespace fluidfaas::platform
