#include "platform/platform.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.h"
#include "metrics/recorder.h"
#include "model/zoo.h"
#include "platform/policy.h"

namespace fluidfaas::platform {
namespace {

std::vector<FunctionSpec> StudyFunctions(model::Variant v) {
  std::vector<FunctionSpec> fns;
  int id = 0;
  for (auto& dag : model::BuildStudyApps(v)) {
    const int app = id;  // app order == id order for included variants
    fns.push_back(MakeFunctionSpec(FunctionId(id++), app, v, dag, 1.5));
  }
  return fns;
}

/// Minimal routing policy: one monolithic instance per function, created on
/// demand. The shared knobs let tests toggle acceptance and count calls.
struct TestKnobs {
  int route_calls = 0;
  bool accept = true;
};

class TestRouting final : public RoutingPolicy {
 public:
  explicit TestRouting(std::shared_ptr<TestKnobs> knobs)
      : knobs_(std::move(knobs)) {}

  bool Route(PlatformCore& core, RequestId rid, FunctionId fn) override {
    ++knobs_->route_calls;
    if (!knobs_->accept) return false;
    Instance* inst = nullptr;
    for (Instance* i : core.InstancesOf(fn)) {
      if (i->CanAdmit()) inst = i;
    }
    if (inst == nullptr) {
      const FunctionSpec& spec = core.function(fn);
      auto plan = core::MonolithicPlanOnSmallestSlice(spec.dag, core.cluster());
      if (!plan) return false;
      const CommitResult result =
          core.Commit(SpawnPlan(fn, std::move(*plan), core.IsWarm(fn)));
      if (!result.ok()) return false;
      inst = result.spawned.front();
    }
    inst->Enqueue(rid, core.JitterOf(rid));
    return true;
  }

 private:
  std::shared_ptr<TestKnobs> knobs_;
};

class NoScaling final : public ScalingPolicy {
 public:
  void Tick(PlatformCore&) override {}
};

PolicyBundle TestBundle(std::shared_ptr<TestKnobs> knobs) {
  PolicyBundle b;
  b.name = "test";
  b.routing = std::make_unique<TestRouting>(std::move(knobs));
  b.scaling = std::make_unique<NoScaling>();
  return b;
}

class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest()
      : cluster_(gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition())),
        recorder_(cluster_),
        knobs_(std::make_shared<TestKnobs>()),
        plat_(sim_, cluster_, StudyFunctions(model::Variant::kSmall),
              PlatformConfig{}, TestBundle(knobs_)) {
    recorder_.SubscribeTo(sim_.bus());
  }

  sim::Simulator sim_;
  gpu::Cluster cluster_;
  metrics::Recorder recorder_;
  std::shared_ptr<TestKnobs> knobs_;
  PlatformCore plat_;
};

TEST_F(PlatformTest, SubmitCreatesRecordWithSloDeadline) {
  const RequestId rid = plat_.Submit(FunctionId(0));
  const auto& rec = recorder_.record(rid);
  EXPECT_EQ(rec.fn, FunctionId(0));
  EXPECT_EQ(rec.arrival, 0);
  EXPECT_EQ(rec.deadline, plat_.function(FunctionId(0)).slo);
  EXPECT_EQ(plat_.DeadlineOf(rid), rec.deadline);
  EXPECT_EQ(knobs_->route_calls, 1);
}

TEST_F(PlatformTest, NameComesFromBundle) { EXPECT_EQ(plat_.name(), "test"); }

TEST_F(PlatformTest, LaunchBindsSlicesAndRetireReleases) {
  const FunctionSpec& spec = plat_.function(FunctionId(0));
  auto plan = core::MonolithicPlanOnSmallestSlice(spec.dag, cluster_);
  const SliceId used = plan->stages[0].slice;
  const CommitResult result =
      plat_.Commit(SpawnPlan(spec.id, *plan, /*warm=*/false));
  ASSERT_TRUE(result.ok());
  Instance* inst = result.spawned.front();
  EXPECT_FALSE(cluster_.slice(used).free());
  EXPECT_EQ(cluster_.slice(used).occupant, inst->id());
  sim_.Run();  // finish loading
  plat_.RetireInstance(inst);
  EXPECT_TRUE(cluster_.slice(used).free());
  EXPECT_EQ(inst->state(), InstanceState::kRetired);
  // Retiring marks the function warm.
  EXPECT_TRUE(plat_.IsWarm(FunctionId(0)));
}

TEST_F(PlatformTest, ColdThenWarmLoadTimes) {
  EXPECT_FALSE(plat_.IsWarm(FunctionId(0)));
  const SimDuration cold = plat_.LoadTime(FunctionId(0), GiB(2));
  plat_.TouchWarm(FunctionId(0));
  const SimDuration warm = plat_.LoadTime(FunctionId(0), GiB(2));
  EXPECT_LT(warm, cold);
}

TEST_F(PlatformTest, WarmExpiresAfterTimeout) {
  plat_.TouchWarm(FunctionId(0));
  EXPECT_TRUE(plat_.IsWarm(FunctionId(0)));
  sim_.RunUntil(plat_.config().warm_timeout + Seconds(1));
  EXPECT_FALSE(plat_.IsWarm(FunctionId(0)));
}

TEST_F(PlatformTest, PendingRequestsRetryOnCompletion) {
  knobs_->accept = false;
  plat_.Submit(FunctionId(0));
  EXPECT_EQ(plat_.PendingCount(), 1u);
  knobs_->accept = true;
  // A completion of some other request triggers DispatchPending; simplest
  // trigger here: submit one that is accepted and let it finish.
  plat_.Submit(FunctionId(0));
  sim_.Run();
  EXPECT_EQ(plat_.PendingCount(), 0u);
  EXPECT_EQ(recorder_.completed_requests(), 2u);
}

TEST_F(PlatformTest, StartRunsAutoscaleAndDispatchesPending) {
  plat_.Start();
  knobs_->accept = false;
  plat_.Submit(FunctionId(1));
  EXPECT_EQ(plat_.PendingCount(), 1u);
  knobs_->accept = true;
  sim_.RunUntil(Seconds(2));  // a few autoscale ticks
  EXPECT_EQ(plat_.PendingCount(), 0u);
  plat_.Stop();
}

TEST_F(PlatformTest, ArrivalRateTracksSubmissions) {
  plat_.Start();
  // 20 requests per second for 5 seconds.
  for (int t = 0; t < 5000; t += 50) {
    sim_.At(Millis(t), [this] { plat_.Submit(FunctionId(0)); });
  }
  sim_.RunUntil(Seconds(5));
  EXPECT_NEAR(plat_.ArrivalRate(FunctionId(0)), 20.0, 4.0);
  plat_.Stop();
}

TEST_F(PlatformTest, TickUtilizationReflectsBusyFraction) {
  plat_.Start();
  const RequestId rid = plat_.Submit(FunctionId(0));
  (void)rid;
  auto insts = plat_.InstancesOf(FunctionId(0));
  ASSERT_EQ(insts.size(), 1u);
  sim_.RunUntil(Seconds(30));
  // Prime the snapshot, wait an idle second, utilization ~0.
  plat_.TickUtilization(insts[0]);
  sim_.RunUntil(Seconds(31));
  EXPECT_NEAR(plat_.TickUtilization(insts[0]), 0.0, 1e-9);
  plat_.Stop();
}

TEST_F(PlatformTest, DrainOrRetireImmediateWhenIdle) {
  plat_.Submit(FunctionId(0));
  sim_.Run();
  auto insts = plat_.InstancesOf(FunctionId(0));
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_TRUE(plat_.DrainOrRetire(insts[0]));
  EXPECT_EQ(insts[0]->state(), InstanceState::kRetired);
}

TEST_F(PlatformTest, DrainOrRetireDefersWhenBusy) {
  plat_.Submit(FunctionId(0));
  auto insts = plat_.InstancesOf(FunctionId(0));
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_FALSE(plat_.DrainOrRetire(insts[0]));
  EXPECT_EQ(insts[0]->state(), InstanceState::kDraining);
  sim_.Run();
}

TEST_F(PlatformTest, JitterIsNearUnit) {
  // With the default 5% CV, sampled jitter stays within a sane band.
  for (int i = 0; i < 100; ++i) {
    const RequestId rid = plat_.Submit(FunctionId(0));
    (void)rid;
  }
  sim_.Run();
  for (const auto& rec : recorder_.records()) {
    EXPECT_GT(rec.exec_time, 0);
  }
}

}  // namespace
}  // namespace fluidfaas::platform
