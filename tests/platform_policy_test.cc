// The point of the mechanism/policy split: policies compose. A custom
// RoutingPolicy runs against the stock FluidFaaS ScalingPolicy on one
// PlatformCore, and scheduler bundles round-trip through the registry.
#include "platform/policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "core/ffs_platform.h"
#include "core/pipeline.h"
#include "gpu/cluster.h"
#include "metrics/recorder.h"
#include "model/zoo.h"
#include "platform/platform.h"
#include "platform/registry.h"
#include "sim/simulator.h"

namespace fluidfaas::platform {
namespace {

std::vector<FunctionSpec> StudyFunctions() {
  std::vector<FunctionSpec> fns;
  int id = 0;
  for (auto& dag : model::BuildStudyApps(model::Variant::kSmall)) {
    const int app = id;
    fns.push_back(MakeFunctionSpec(FunctionId(id++), app,
                                   model::Variant::kSmall, dag, 1.5));
  }
  return fns;
}

/// A custom router wrapping the stock FluidFaaS one: counts calls, then
/// delegates. Composing an observer (or an override) around an existing
/// policy is the intended extension pattern.
class CountingRouting final : public RoutingPolicy {
 public:
  CountingRouting(std::unique_ptr<RoutingPolicy> inner, int* calls)
      : inner_(std::move(inner)), calls_(calls) {}

  void Attach(PlatformCore& core) override { inner_->Attach(core); }
  bool Route(PlatformCore& core, RequestId rid, FunctionId fn) override {
    ++*calls_;
    return inner_->Route(core, rid, fn);
  }

 private:
  std::unique_ptr<RoutingPolicy> inner_;
  int* calls_;
};

TEST(PolicyCompositionTest, CustomRoutingWithStockFfsScaling) {
  sim::Simulator sim;
  auto cluster = gpu::Cluster::Uniform(1, 4, gpu::DefaultPartition());
  metrics::Recorder recorder(cluster);
  recorder.SubscribeTo(sim.bus());

  // Stock FluidFaaS bundle, but with its routing wrapped by ours. Routing
  // and scaling keep sharing the same FfsState.
  auto state = std::make_shared<core::FfsState>();
  PolicyBundle bundle = core::MakeFluidFaasBundle(state);
  int route_calls = 0;
  bundle.routing = std::make_unique<CountingRouting>(
      std::make_unique<core::FfsRouting>(state), &route_calls);
  bundle.name = "FluidFaaS+counter";

  PlatformCore plat(sim, cluster, StudyFunctions(), PlatformConfig{},
                    std::move(bundle));
  EXPECT_EQ(plat.name(), "FluidFaaS+counter");

  plat.Start();
  for (int t = 0; t < 20; ++t) {
    sim.At(Millis(250 * t), [&plat] { plat.Submit(FunctionId(0)); });
  }
  sim.RunUntil(Seconds(30));
  plat.Stop();
  recorder.Close(sim.Now());

  // Every submission routes at least once (pending retries add more).
  EXPECT_GE(route_calls, 20);
  EXPECT_EQ(recorder.completed_requests(), 20u);
  // The stock scaling policy did its Fig. 8 work underneath our router.
  EXPECT_GE(plat.scheduler_counters().promotions, 0u);
}

TEST(RegistryTest, RegisterResolveRoundtrip) {
  RegisterScheduler("test-roundtrip", [] {
    PolicyBundle b;
    b.routing = std::make_unique<core::FfsRouting>(
        std::make_shared<core::FfsState>());
    b.scaling = std::make_unique<core::FfsScaling>(
        std::make_shared<core::FfsState>());
    return b;
  });
  EXPECT_TRUE(HasScheduler("test-roundtrip"));
  PolicyBundle b = MakeSchedulerBundle("test-roundtrip");
  // The registry defaults the bundle name to the registered name.
  EXPECT_EQ(b.name, "test-roundtrip");
  EXPECT_NE(b.routing, nullptr);
  EXPECT_NE(b.scaling, nullptr);

  const auto names = RegisteredSchedulers();
  EXPECT_TRUE(std::count(names.begin(), names.end(), "test-roundtrip"));
}

TEST(RegistryTest, UnknownSchedulerThrows) {
  EXPECT_FALSE(HasScheduler("no-such-scheduler"));
  EXPECT_THROW(MakeSchedulerBundle("no-such-scheduler"), FfsError);
}

TEST(RegistryTest, BuiltinsAreRegistered) {
  core::RegisterFluidFaasSchedulers();
  for (const char* name : {"FluidFaaS", "FluidFaaS-dist"}) {
    EXPECT_TRUE(HasScheduler(name)) << name;
  }
}

}  // namespace
}  // namespace fluidfaas::platform
