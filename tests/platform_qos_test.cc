// The QoS subsystem wired through the platform (DESIGN.md §9): the default
// fifo/none policy is provably inert (event-for-event identical to a config
// that never mentions QoS), non-default disciplines install cleanly,
// admission rejections carry typed causes all the way into terminal
// accounting / the JSON report, and the backpressure signal tracks the
// pending set.
#include <gtest/gtest.h>

#include "gpu/cluster.h"
#include "harness/experiment.h"
#include "harness/json_report.h"
#include "harness/run_context.h"
#include "metrics/recorder.h"
#include "model/zoo.h"
#include "platform/platform.h"
#include "platform/registry.h"
#include "sim/simulator.h"

namespace fluidfaas::harness {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.system = SystemKind::kFluidFaas;
  cfg.tier = trace::WorkloadTier::kLight;
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 4;
  cfg.duration = Seconds(30);
  cfg.seed = 4242;
  return cfg;
}

// The acceptance pin of the whole refactor: a config that spells out
// "fifo"/"none" and one that never touches QoS run the same simulation,
// down to each per-request latency, for every scheduler.
TEST(PlatformQosTest, DefaultQueuePolicyIsInertForEverySystem) {
  for (SystemKind kind :
       {SystemKind::kFluidFaas, SystemKind::kInfless, SystemKind::kEsg,
        SystemKind::kRepartition, SystemKind::kFluidFaasDistributed}) {
    ExperimentConfig plain = SmallConfig();
    plain.system = kind;
    ExperimentConfig spelled = plain;
    spelled.platform.qos.queue = "fifo";
    spelled.platform.qos.admission = "none";

    const ExperimentResult a = RunExperiment(plain);
    const ExperimentResult b = RunExperiment(spelled);
    EXPECT_EQ(a.slo_hit_rate, b.slo_hit_rate) << Name(kind);
    EXPECT_EQ(a.makespan, b.makespan) << Name(kind);
    EXPECT_EQ(a.recorder->LatenciesSeconds(),
              b.recorder->LatenciesSeconds())
        << Name(kind);
    EXPECT_EQ(a.rejected, 0u) << Name(kind);
    EXPECT_EQ(b.rejected, 0u) << Name(kind);
  }
}

TEST(PlatformQosTest, FairAndEdfInstallAndCompleteTheWorkload) {
  for (const char* queue : {"fair", "edf"}) {
    ExperimentConfig cfg = SmallConfig();
    cfg.platform.qos.queue = queue;
    const ExperimentResult r = RunExperiment(cfg);
    EXPECT_EQ(r.recorder->finished_requests(),
              r.recorder->total_requests())
        << queue;
    EXPECT_GT(r.recorder->completed_requests(), 0u) << queue;
    EXPECT_GT(r.jain_fairness, 0.0) << queue;
    EXPECT_LE(r.jain_fairness, 1.0) << queue;
  }
}

TEST(PlatformQosTest, UnknownQueueOrAdmissionNameThrows) {
  ExperimentConfig cfg = SmallConfig();
  cfg.duration = Seconds(1);
  cfg.platform.qos.queue = "lifo";
  EXPECT_THROW(RunExperiment(cfg), FfsError);
  cfg.platform.qos.queue = "fifo";
  cfg.platform.qos.admission = "lottery";
  EXPECT_THROW(RunExperiment(cfg), FfsError);
}

TEST(PlatformQosTest, RateLimitRejectsWithTypedCauseAndStillDrains) {
  ExperimentConfig cfg = SmallConfig();
  cfg.platform.qos.admission = "shed";
  cfg.platform.qos.rate_rps = 0.5;  // well under the offered load
  cfg.platform.qos.burst = 2.0;
  cfg.platform.qos.shed_infeasible = false;  // isolate the bucket
  const ExperimentResult r = RunExperiment(cfg);

  EXPECT_GT(r.rejected, 0u);
  EXPECT_EQ(r.rejected,
            r.rejects_by_cause[static_cast<std::size_t>(
                sim::RejectCause::kRateLimited)]);
  // Rejected requests are terminal: the drain loop must not wait on them,
  // and accounting still covers every submission.
  EXPECT_EQ(r.recorder->finished_requests(), r.recorder->total_requests());
  // Rejections count into the aborted (terminal, never-completes) bucket.
  EXPECT_GE(r.recorder->aborted_requests(), r.rejected);

  // Every rejection surfaces in the per-request records with its cause.
  std::size_t flagged = 0;
  for (const auto& rec : r.recorder->records()) {
    if (rec.rejected) {
      ++flagged;
      EXPECT_EQ(rec.reject_cause, sim::RejectCause::kRateLimited);
      EXPECT_FALSE(rec.done());
    }
  }
  EXPECT_EQ(flagged, r.rejected);

  // And in the JSON report's qos object.
  const std::string json = ResultToJson(r);
  EXPECT_NE(json.find("\"qos\""), std::string::npos);
  EXPECT_NE(json.find("\"rate-limited\""), std::string::npos);
  EXPECT_NE(json.find("\"jain_fairness\""), std::string::npos);
}

TEST(PlatformQosTest, DepthCapRejectsWithQueueFull) {
  ExperimentConfig cfg = SmallConfig();
  cfg.load_factor = 1.2;  // overload so the pending set actually backs up
  cfg.platform.qos.admission = "shed";
  cfg.platform.qos.max_queue_depth = 2;
  cfg.platform.qos.shed_infeasible = false;
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_GT(r.rejects_by_cause[static_cast<std::size_t>(
                sim::RejectCause::kQueueFull)],
            0u);
  EXPECT_EQ(r.recorder->finished_requests(), r.recorder->total_requests());
}

TEST(PlatformQosTest, InfeasibleSheddingFiresUnderOverload) {
  ExperimentConfig cfg = SmallConfig();
  cfg.load_factor = 1.5;
  cfg.platform.qos.admission = "shed";
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_GT(r.rejects_by_cause[static_cast<std::size_t>(
                sim::RejectCause::kDeadlineInfeasible)],
            0u);
  EXPECT_EQ(r.recorder->finished_requests(), r.recorder->total_requests());
}

TEST(PlatformQosTest, BackpressureTracksPendingAndRejections) {
  sim::Simulator sim;
  auto cluster = gpu::Cluster::Uniform(1, 1, gpu::DefaultPartition());
  EnsureBuiltinSchedulersRegistered();

  std::vector<platform::FunctionSpec> fns;
  int id = 0;
  for (auto& dag : model::BuildStudyApps(model::Variant::kSmall)) {
    const int app = id;
    fns.push_back(platform::MakeFunctionSpec(
        FunctionId(id++), app, model::Variant::kSmall, dag, 1.5));
  }

  platform::PlatformConfig pcfg;
  pcfg.qos.admission = "shed";
  pcfg.qos.rate_rps = 1.0;  // bucket of 1: a burst can only land one
  pcfg.qos.burst = 1.0;
  pcfg.qos.shed_infeasible = false;
  platform::PlatformCore plat(sim, cluster, fns, pcfg,
                              platform::MakeSchedulerBundle("FluidFaaS"));
  EXPECT_STREQ(plat.queue().name(), "fifo");

  plat.Start();
  // An 8-wide burst at t=0 against a 1 rps bucket: exactly one admission,
  // seven typed rejections, all visible in the backpressure signal.
  sim.At(0, [&plat] {
    for (int i = 0; i < 8; ++i) plat.Submit(FunctionId(0));
  });
  sim.RunUntil(Millis(1));

  const platform::PlatformCore::Backpressure bp = plat.CurrentBackpressure();
  EXPECT_EQ(bp.rejected, 7u);
  EXPECT_TRUE(bp.shedding);
  EXPECT_EQ(bp.pending, plat.PendingCount());
  EXPECT_EQ(plat.PendingCountOf(FunctionId(0)), bp.pending);
  EXPECT_EQ(plat.PendingCountOf(FunctionId(1)), 0u);

  sim.RunUntil(Seconds(60));
  plat.Stop();
}

}  // namespace
}  // namespace fluidfaas::harness
