// Failure recovery in PlatformCore: crash harvesting, bounded retries with
// exponential backoff, pipeline resume-at-stage, respawn, armed cold-start /
// slow-start faults, slice failure + repair, and the two flavours of
// enforcement-timeout expiry (see DESIGN.md "Failure model").
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.h"
#include "core/partitioner.h"
#include "core/pipeline.h"
#include "gpu/cluster.h"
#include "metrics/recorder.h"
#include "model/app.h"
#include "platform/platform.h"
#include "platform/policy.h"
#include "sim/events.h"
#include "sim/simulator.h"

namespace fluidfaas::platform {
namespace {

model::ComponentSpec Comp(int idx, SimDuration t) {
  model::ComponentSpec c;
  c.id = ComponentId(idx);
  c.name = "c" + std::to_string(idx);
  c.cls = model::ComponentClass::kClassification;
  c.weights = GiB(1);
  c.activations = GiB(1);
  c.latency_1gpc = t;
  c.serial_fraction = 0.0;
  c.output = model::TensorSpec({MiB(20)}, 1);
  return c;
}

/// One 2-component chain (100 ms + 100 ms on a 1g slice).
FunctionSpec TwoCompSpec() {
  model::AppDag dag("app", {Comp(0, Millis(100)), Comp(1, Millis(100))},
                    {{-1, 0}, {0, 1}});
  return MakeFunctionSpec(FunctionId(0), 0, model::Variant::kSmall,
                          std::move(dag), 1.5);
}

struct RouteKnobs {
  bool accept = true;      // false: leave everything in the pending set
  bool pipelined = false;  // launch 2-stage pipelines instead of monoliths
};

/// Hand-built 2-stage plan on the first two free slices of node 0 (all
/// slices in these tests are 1g.10gb).
std::optional<core::PipelinePlan> TwoStagePlan(PlatformCore& core,
                                               const FunctionSpec& spec) {
  const std::vector<SliceId> free =
      core.cluster().FreeSlicesOnNode(NodeId(0));
  if (free.size() < 2) return std::nullopt;
  core::PipelinePlan plan;
  plan.node = NodeId(0);
  for (int i = 0; i < 2; ++i) {
    core::StageBinding b;
    b.plan = *core::MakeStagePlan(spec.dag, i, i + 1);
    b.slice = free[static_cast<std::size_t>(i)];
    b.profile = gpu::MigProfile::k1g10gb;
    b.exec_time = Millis(100);
    b.hop_out = (i == 0) ? Millis(10) : 0;
    plan.stages.push_back(b);
  }
  return plan;
}

class FlexRouting final : public RoutingPolicy {
 public:
  explicit FlexRouting(std::shared_ptr<RouteKnobs> knobs)
      : knobs_(std::move(knobs)) {}

  bool Route(PlatformCore& core, RequestId rid, FunctionId fn) override {
    if (!knobs_->accept) return false;
    Instance* target = nullptr;
    for (Instance* i : core.InstancesOf(fn)) {
      if (i->CanAdmit()) target = i;
    }
    if (target == nullptr) {
      const FunctionSpec& spec = core.function(fn);
      std::optional<core::PipelinePlan> plan;
      if (knobs_->pipelined) {
        plan = TwoStagePlan(core, spec);
      } else {
        auto sid =
            core.cluster().SmallestFreeSliceWithMemory(spec.total_memory);
        if (sid) {
          plan = core::MonolithicPlanOnSlice(spec.dag, core.cluster(), *sid);
        }
      }
      if (!plan) return false;
      const CommitResult result =
          core.Commit(SpawnPlan(fn, std::move(*plan), core.IsWarm(fn)));
      if (!result.ok()) return false;
      target = result.spawned.front();
    }
    target->Enqueue(rid, core.JitterOf(rid));
    return true;
  }

 private:
  std::shared_ptr<RouteKnobs> knobs_;
};

class NoScaling final : public ScalingPolicy {
 public:
  void Tick(PlatformCore&) override {}
};

/// A simulator + 6-slice cluster + recorder + platform, rebuilt per
/// scenario so each test picks its own PlatformConfig / retry policy.
struct World {
  sim::Simulator sim;
  gpu::Cluster cluster;
  metrics::Recorder recorder;
  std::shared_ptr<RouteKnobs> knobs;
  std::unique_ptr<PlatformCore> plat;

  explicit World(PlatformConfig cfg = JitterFree(),
                 std::unique_ptr<RetryPolicy> retry = nullptr)
      : cluster(gpu::Cluster::Uniform(
            1, 2, gpu::MigPartition::Parse("1g.10gb+1g.10gb+1g.10gb"))),
        recorder(cluster),
        knobs(std::make_shared<RouteKnobs>()) {
    recorder.SubscribeTo(sim.bus());
    PolicyBundle bundle;
    bundle.name = "recovery-test";
    bundle.routing = std::make_unique<FlexRouting>(knobs);
    bundle.scaling = std::make_unique<NoScaling>();
    bundle.retry = std::move(retry);
    plat = std::make_unique<PlatformCore>(sim, cluster,
                                          std::vector<FunctionSpec>{
                                              TwoCompSpec()},
                                          cfg, std::move(bundle));
  }

  static PlatformConfig JitterFree() {
    PlatformConfig cfg;
    cfg.service_jitter_cv = 0.0;  // exact, repeatable request timings
    return cfg;
  }

  Instance* only_instance() const {
    auto live = plat->InstancesOf(FunctionId(0));
    EXPECT_EQ(live.size(), 1u);
    return live.empty() ? nullptr : live.front();
  }
};

// --- retry policy ----------------------------------------------------------

TEST(RetryPolicyTest, BoundedBackoffIsExponential) {
  World w;
  BoundedRetryPolicy policy(3, Millis(10), 3.0);
  const RequestId rid(0);
  const FunctionId fn(0);
  for (int attempt = 1; attempt <= 3; ++attempt) {
    const auto d = policy.OnFailure(*w.plat, rid, fn, attempt);
    EXPECT_TRUE(d.retry) << attempt;
    EXPECT_EQ(d.backoff, Millis(10 * std::pow(3.0, attempt - 1))) << attempt;
  }
  EXPECT_FALSE(policy.OnFailure(*w.plat, rid, fn, 4).retry);
}

TEST(RetryPolicyTest, PlatformDefaultMatchesConfig) {
  // The core installs BoundedRetryPolicy(2, 50ms, 2.0) from PlatformConfig
  // when the bundle supplies none; spot-check that schedule directly.
  World w;
  BoundedRetryPolicy policy(PlatformConfig{}.retry.max_retries,
                            PlatformConfig{}.retry.base_backoff,
                            PlatformConfig{}.retry.backoff_multiplier);
  EXPECT_EQ(policy.OnFailure(*w.plat, RequestId(0), FunctionId(0), 1).backoff,
            Millis(50));
  EXPECT_EQ(policy.OnFailure(*w.plat, RequestId(0), FunctionId(0), 2).backoff,
            Millis(100));
  EXPECT_FALSE(policy.OnFailure(*w.plat, RequestId(0), FunctionId(0), 3)
                   .retry);
}

// --- crash, retry, respawn --------------------------------------------------

TEST(RecoveryTest, CrashedRequestIsRetriedAndRecovers) {
  World w;
  const RequestId rid = w.plat->Submit(FunctionId(0));
  Instance* first = w.only_instance();
  w.sim.At(Millis(5), [&] {
    w.plat->FailInstance(first, sim::FaultKind::kInstanceCrash);
  });
  w.sim.Run();

  EXPECT_EQ(w.recorder.completed_requests(), 1u);
  EXPECT_EQ(w.recorder.instances_failed(), 1u);
  EXPECT_EQ(w.recorder.retries_total(), 1u);
  EXPECT_EQ(w.recorder.record(rid).retries, 1);
  EXPECT_EQ(w.recorder.RecoveredRequests(), 1u);
  EXPECT_EQ(w.recorder.abandoned_requests(), 0u);
  EXPECT_TRUE(w.recorder.record(rid).done());
}

TEST(RecoveryTest, RespawnReplacesTheCrashedInstance) {
  World w;
  w.plat->Submit(FunctionId(0));
  Instance* first = w.only_instance();
  w.plat->FailInstance(first, sim::FaultKind::kInstanceCrash);
  EXPECT_EQ(first->state(), InstanceState::kFailed);
  // A replacement with the same shape exists immediately (same node, same
  // profiles), and the crashed one no longer counts as live.
  Instance* second = w.only_instance();
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second->id(), first->id());
  EXPECT_EQ(second->plan().num_stages(), first->plan().num_stages());
}

TEST(RecoveryTest, RespawnCanBeDisabled) {
  PlatformConfig cfg = World::JitterFree();
  cfg.respawn_on_failure = false;
  World w(cfg);
  w.plat->Submit(FunctionId(0));
  w.plat->FailInstance(w.only_instance(), sim::FaultKind::kInstanceCrash);
  EXPECT_TRUE(w.plat->InstancesOf(FunctionId(0)).empty());
  // The retried request still completes: routing launches a fresh instance.
  w.sim.Run();
  EXPECT_EQ(w.recorder.completed_requests(), 1u);
}

TEST(RecoveryTest, RetryBudgetExhaustionAbandons) {
  PlatformConfig cfg = World::JitterFree();
  cfg.retry.max_retries = 1;
  cfg.retry.base_backoff = Millis(10);
  World w(cfg);
  const RequestId rid = w.plat->Submit(FunctionId(0));
  // Crash whatever serves the request: once just after submission, once
  // after the first retry has been re-admitted (backoff 10 ms).
  w.sim.At(Millis(5), [&] {
    w.plat->FailInstance(w.plat->InstancesOf(FunctionId(0)).front(),
                         sim::FaultKind::kInstanceCrash);
  });
  w.sim.At(Millis(30), [&] {
    w.plat->FailInstance(w.plat->InstancesOf(FunctionId(0)).front(),
                         sim::FaultKind::kInstanceCrash);
  });
  int abandoned_attempts = 0;
  w.sim.bus().Subscribe<sim::RequestAbandoned>(
      [&](const sim::RequestAbandoned& e) {
        EXPECT_EQ(e.rid, rid);
        abandoned_attempts = e.attempts;
      });
  w.sim.Run();

  EXPECT_EQ(w.recorder.completed_requests(), 0u);
  EXPECT_EQ(w.recorder.abandoned_requests(), 1u);
  EXPECT_EQ(w.recorder.aborted_requests(), 1u);
  EXPECT_EQ(abandoned_attempts, 2);
  EXPECT_EQ(w.recorder.retries_total(), 1u);  // one retry, then give-up
  EXPECT_EQ(w.recorder.instances_failed(), 2u);
  // Terminal either way: the drain condition counts it as finished.
  EXPECT_EQ(w.recorder.finished_requests(), 1u);
}

TEST(RecoveryTest, NoRetryPolicyFailsFast) {
  World w(World::JitterFree(), std::make_unique<NoRetryPolicy>());
  w.plat->Submit(FunctionId(0));
  w.plat->FailInstance(w.only_instance(), sim::FaultKind::kInstanceCrash);
  w.sim.Run();
  EXPECT_EQ(w.recorder.completed_requests(), 0u);
  EXPECT_EQ(w.recorder.abandoned_requests(), 1u);
  EXPECT_EQ(w.recorder.retries_total(), 0u);
}

// --- pipeline resume --------------------------------------------------------

TEST(RecoveryTest, PipelineRetryResumesAtTheFailedStage) {
  World w;
  w.knobs->pipelined = true;
  const RequestId rid = w.plat->Submit(FunctionId(0));
  Instance* first = w.only_instance();
  ASSERT_EQ(first->plan().num_stages(), 2);
  const SliceId stage1 = first->plan().stages[1].slice;

  // Crash mid-way through stage 1 (the 100 ms second stage): stage 0 work
  // is complete, so the retry must not replay it.
  bool armed = false;
  w.sim.bus().Subscribe<sim::SliceBusyBegin>(
      [&](const sim::SliceBusyBegin& e) {
        if (e.slice != stage1 || armed) return;
        armed = true;
        w.sim.After(Millis(50), [&] {
          w.plat->FailInstance(first, sim::FaultKind::kInstanceCrash);
        });
      });
  std::vector<bool> resumes;
  w.sim.bus().Subscribe<sim::RequestRetried>(
      [&](const sim::RequestRetried& e) { resumes.push_back(e.resume); });
  w.sim.Run();

  ASSERT_TRUE(armed);
  ASSERT_EQ(resumes.size(), 1u);
  // The respawned same-shape pipeline admitted the request directly at
  // stage 1 instead of replaying the whole pipeline.
  EXPECT_TRUE(resumes.front());
  EXPECT_EQ(w.recorder.completed_requests(), 1u);
  EXPECT_EQ(w.recorder.record(rid).retries, 1);
  EXPECT_EQ(w.recorder.RecoveredRequests(), 1u);
}

// --- armed faults -----------------------------------------------------------

TEST(RecoveryTest, ArmedColdStartFailureDoomsTheNextLaunch) {
  World w;
  w.sim.bus().Publish(sim::ColdStartFailureArmed{w.sim.Now()});
  const RequestId rid = w.plat->Submit(FunctionId(0));
  sim::FaultKind cause = sim::FaultKind::kInstanceCrash;
  std::size_t failures = 0;
  w.sim.bus().Subscribe<sim::InstanceFailed>(
      [&](const sim::InstanceFailed& e) {
        cause = e.cause;
        ++failures;
      });
  w.sim.Run();

  EXPECT_EQ(failures, 1u);
  EXPECT_EQ(cause, sim::FaultKind::kColdStartFailure);
  // No respawn for a doomed cold start (the replacement would just be
  // another cold start) — the retry path relaunches through routing and
  // the request still completes.
  EXPECT_EQ(w.recorder.completed_requests(), 1u);
  EXPECT_EQ(w.recorder.record(rid).retries, 1);
}

TEST(RecoveryTest, ArmedSlowStartStretchesTheNextLoad) {
  // Baseline: untouched cold start.
  World base;
  const RequestId r0 = base.plat->Submit(FunctionId(0));
  base.sim.Run();
  const SimDuration plain_load = base.recorder.record(r0).load_time;
  ASSERT_GT(plain_load, 0);

  World w;
  w.sim.bus().Publish(sim::SlowStartArmed{4.0, w.sim.Now()});
  const RequestId r1 = w.plat->Submit(FunctionId(0));
  w.sim.Run();
  EXPECT_EQ(w.recorder.record(r1).load_time, 4 * plain_load);
  EXPECT_EQ(w.recorder.record(r1).completion,
            base.recorder.record(r0).completion + 3 * plain_load);
  // The straggler multiplier is one-shot: a second launch is nominal.
  const RequestId r2 = w.plat->Submit(FunctionId(0));
  w.sim.Run();
  EXPECT_EQ(w.recorder.record(r2).load_time, 0);  // reused warm instance
}

// --- slice failure ----------------------------------------------------------

TEST(RecoveryTest, SliceFailureCrashesTheOccupantAndRepairs) {
  World w;
  const RequestId rid = w.plat->Submit(FunctionId(0));
  Instance* first = w.only_instance();
  const SliceId sid = first->plan().stages[0].slice;
  w.sim.At(Millis(5), [&] {
    w.sim.bus().Publish(
        sim::SliceFailureRequested{sid, w.sim.Now(), Seconds(5)});
  });
  SimTime repaired_at = -1;
  w.sim.bus().Subscribe<sim::SliceRepaired>(
      [&](const sim::SliceRepaired& e) { repaired_at = e.at; });
  w.sim.At(Millis(10), [&] {
    // Strong isolation: only the failed slice is quarantined...
    EXPECT_TRUE(w.cluster.IsFailed(sid));
    EXPECT_EQ(w.cluster.FailedSlices(), std::vector<SliceId>{sid});
    // ...and only its occupant crashed.
    EXPECT_EQ(first->state(), InstanceState::kFailed);
  });
  w.sim.Run();

  EXPECT_EQ(repaired_at, Millis(5) + Seconds(5));
  EXPECT_FALSE(w.cluster.IsFailed(sid));
  EXPECT_EQ(w.recorder.slices_failed(), 1u);
  EXPECT_EQ(w.recorder.slices_repaired(), 1u);
  EXPECT_EQ(w.recorder.instances_failed(), 1u);
  // The victim rode the retry path to completion on another slice.
  EXPECT_EQ(w.recorder.completed_requests(), 1u);
  EXPECT_EQ(w.recorder.record(rid).retries, 1);
}

TEST(RecoveryTest, FreeSliceFailureQuarantinesWithoutCasualties) {
  World w;
  w.sim.bus().Publish(
      sim::SliceFailureRequested{SliceId(3), w.sim.Now(), Seconds(2)});
  EXPECT_TRUE(w.cluster.IsFailed(SliceId(3)));
  w.sim.Run();
  EXPECT_FALSE(w.cluster.IsFailed(SliceId(3)));
  EXPECT_EQ(w.recorder.slices_failed(), 1u);
  EXPECT_EQ(w.recorder.slices_repaired(), 1u);
  EXPECT_EQ(w.recorder.instances_failed(), 0u);
}

TEST(RecoveryTest, CommandsNamingDeadEntitiesAreDropped) {
  World w;
  // Unknown / sentinel instance ids and already-failed instances must all
  // be ignored (the injector's RNG has already been consumed either way).
  w.sim.bus().Publish(sim::InstanceCrashRequested{InstanceId(999), 0});
  w.sim.bus().Publish(sim::InstanceCrashRequested{InstanceId(), 0});
  EXPECT_EQ(w.recorder.instances_failed(), 0u);

  w.plat->Submit(FunctionId(0));
  Instance* first = w.only_instance();
  w.plat->FailInstance(first, sim::FaultKind::kInstanceCrash);
  EXPECT_EQ(w.recorder.instances_failed(), 1u);
  w.sim.bus().Publish(sim::InstanceCrashRequested{first->id(), 0});
  EXPECT_EQ(w.recorder.instances_failed(), 1u);  // double-kill dropped
  // A slice failure aimed at an already-failed slice is dropped too.
  w.sim.bus().Publish(
      sim::SliceFailureRequested{SliceId(0), w.sim.Now(), Seconds(1)});
  w.sim.bus().Publish(
      sim::SliceFailureRequested{SliceId(0), w.sim.Now(), Seconds(1)});
  EXPECT_EQ(w.recorder.slices_failed(), 1u);
  w.sim.Run();
}

// --- enforcement timeouts ---------------------------------------------------

TEST(TimeoutTest, MidPendingExpiryCancelsOutright) {
  PlatformConfig cfg = World::JitterFree();
  cfg.request_timeout_scale = 1.0;
  World w(cfg);
  w.knobs->accept = false;  // park the request in the pending set
  const RequestId rid = w.plat->Submit(FunctionId(0));
  EXPECT_EQ(w.plat->PendingCount(), 1u);

  bool mid_execution = true;
  w.sim.bus().Subscribe<sim::RequestTimedOut>(
      [&](const sim::RequestTimedOut& e) { mid_execution = e.mid_execution; });
  w.sim.Run();

  EXPECT_FALSE(mid_execution);
  EXPECT_EQ(w.plat->PendingCount(), 0u);
  EXPECT_EQ(w.recorder.completed_requests(), 0u);
  EXPECT_EQ(w.recorder.timeouts(), 1u);
  EXPECT_EQ(w.recorder.aborted_requests(), 1u);
  EXPECT_EQ(w.recorder.finished_requests(), 1u);
  EXPECT_TRUE(w.recorder.record(rid).timed_out);
  EXPECT_TRUE(w.recorder.record(rid).aborted);
}

TEST(TimeoutTest, MidQueueAbortsButMidExecutionRunsToCompletion) {
  // Calibrate: where does an uncontended request start executing and
  // finish? (Jitter is off, so the timings replay exactly.)
  World base;
  const RequestId probe = base.plat->Submit(FunctionId(0));
  base.sim.Run();
  const auto& rec = base.recorder.record(probe);
  const SimTime completion = rec.completion;
  const SimDuration exec = rec.exec_time;
  ASSERT_GT(exec, 0);

  // Aim both expiry timers inside the first request's execution window:
  // request A is mid-execution (finishes, loses goodput), request B is
  // still queued behind it on the instance (aborted on the spot).
  const SimTime expire = completion - exec / 2;
  PlatformConfig cfg = World::JitterFree();
  const SimDuration slo = base.plat->function(FunctionId(0)).slo;
  cfg.request_timeout_scale =
      static_cast<double>(expire) / static_cast<double>(slo);
  World w(cfg);
  const RequestId ra = w.plat->Submit(FunctionId(0));
  const RequestId rb = w.plat->Submit(FunctionId(0));
  std::vector<std::pair<RequestId, bool>> seen;
  w.sim.bus().Subscribe<sim::RequestTimedOut>(
      [&](const sim::RequestTimedOut& e) {
        seen.push_back({e.rid, e.mid_execution});
      });
  w.sim.Run();

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(ra, true));   // executing: flagged only
  EXPECT_EQ(seen[1], std::make_pair(rb, false));  // queued: cancelled
  EXPECT_EQ(w.recorder.completed_requests(), 1u);
  EXPECT_EQ(w.recorder.timeouts(), 2u);
  EXPECT_EQ(w.recorder.aborted_requests(), 1u);
  EXPECT_EQ(w.recorder.finished_requests(), 2u);
  // The mid-execution one completed — on time by the SLO's reckoning even —
  // but a timed-out request can never count as goodput.
  EXPECT_TRUE(w.recorder.record(ra).done());
  EXPECT_TRUE(w.recorder.record(ra).timed_out);
  EXPECT_FALSE(w.recorder.record(ra).Goodput());
  EXPECT_FALSE(w.recorder.record(rb).done());
}

TEST(TimeoutTest, TimedOutVictimIsNotRetried) {
  // A request whose enforcement timeout already fired is abandoned, not
  // retried, when its instance later crashes.
  World base;
  const RequestId probe = base.plat->Submit(FunctionId(0));
  base.sim.Run();
  const auto& rec = base.recorder.record(probe);
  const SimTime expire = rec.completion - rec.exec_time / 2;

  PlatformConfig cfg = World::JitterFree();
  const SimDuration slo = base.plat->function(FunctionId(0)).slo;
  cfg.request_timeout_scale =
      static_cast<double>(expire) / static_cast<double>(slo);
  World w(cfg);
  w.plat->Submit(FunctionId(0));
  Instance* first = w.only_instance();
  // Crash after the timeout flagged the request mid-execution.
  w.sim.At(expire + Millis(1), [&] {
    w.plat->FailInstance(first, sim::FaultKind::kInstanceCrash);
  });
  w.sim.Run();

  EXPECT_EQ(w.recorder.completed_requests(), 0u);
  EXPECT_EQ(w.recorder.retries_total(), 0u);
  EXPECT_EQ(w.recorder.abandoned_requests(), 1u);
  EXPECT_EQ(w.recorder.timeouts(), 1u);
}

}  // namespace
}  // namespace fluidfaas::platform
