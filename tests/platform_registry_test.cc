// The scheduler registry is shared by every parallel sweep worker; these
// tests pin its behavior under concurrent resolution and registration.
// (Run under tools/check.sh tsan for the data-race proof; here we assert
// functional correctness: no lost registrations, no torn bundles.)
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "harness/run_context.h"
#include "platform/registry.h"

namespace fluidfaas::platform {
namespace {

TEST(PlatformRegistryTest, UnknownSchedulerThrows) {
  EXPECT_THROW(MakeSchedulerBundle("no-such-scheduler"), FfsError);
  EXPECT_FALSE(HasScheduler("no-such-scheduler"));
}

TEST(PlatformRegistryTest, RegisterRejectsEmptyNameAndNullFactory) {
  EXPECT_THROW(RegisterScheduler("", [] { return PolicyBundle{}; }),
               FfsError);
  EXPECT_THROW(RegisterScheduler("null-factory", nullptr), FfsError);
}

TEST(PlatformRegistryTest, BuiltinSchedulersResolveAfterEnsure) {
  harness::EnsureBuiltinSchedulersRegistered();
  for (const char* name :
       {"FluidFaaS", "ESG", "INFless", "Repartition", "FluidFaaS-dist"}) {
    EXPECT_TRUE(HasScheduler(name)) << name;
    PolicyBundle bundle = MakeSchedulerBundle(name);
    EXPECT_NE(bundle.routing, nullptr) << name;
    EXPECT_NE(bundle.scaling, nullptr) << name;
  }
}

// Regression test for the pre-refactor unsynchronized std::map: many threads
// resolving, probing, listing, and registering at once. Every resolve must
// return a complete bundle and every registration must land.
TEST(PlatformRegistryTest, ConcurrentResolveAndRegisterIsSafe) {
  harness::EnsureBuiltinSchedulersRegistered();
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> resolved{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &resolved, &failed] {
      for (int i = 0; i < kIters; ++i) {
        switch ((t + i) % 4) {
          case 0: {
            PolicyBundle b = MakeSchedulerBundle("FluidFaaS");
            if (b.routing == nullptr || b.scaling == nullptr) {
              failed = true;
            }
            resolved.fetch_add(1);
            break;
          }
          case 1:
            if (!HasScheduler("ESG")) failed = true;
            break;
          case 2:
            if (RegisteredSchedulers().empty()) failed = true;
            break;
          case 3:
            // Same-name re-registration from several threads: last writer
            // wins, never a torn factory.
            RegisterScheduler(
                "test-contender-" + std::to_string(t % 2), [] {
                  PolicyBundle b = MakeSchedulerBundle("FluidFaaS");
                  b.name = "test-contender";
                  return b;
                });
            break;
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(resolved.load(), 0);
  EXPECT_TRUE(HasScheduler("test-contender-0"));
  EXPECT_TRUE(HasScheduler("test-contender-1"));
  PolicyBundle b = MakeSchedulerBundle("test-contender-0");
  EXPECT_EQ(b.name, "test-contender");
}

}  // namespace
}  // namespace fluidfaas::platform
