// Property tests pitting library components against brute-force reference
// implementations on randomized inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "core/pipeline.h"
#include "gpu/cluster.h"
#include "gpu/cluster_view.h"
#include "metrics/recorder.h"
#include "model/zoo.h"
#include "platform/placement.h"
#include "platform/platform.h"
#include "platform/policy.h"

namespace fluidfaas {
namespace {

// --- TimeWeightedSignal vs brute-force integration -------------------------

TEST(TimeWeightedSignalProperty, MeanMatchesBruteForceIntegration) {
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    TimeWeightedSignal sig;
    std::vector<std::pair<SimTime, double>> points;
    SimTime t = 0;
    for (int i = 0; i < 30; ++i) {
      t += rng.UniformInt(1, Seconds(5.0));
      const double v = rng.Uniform(0.0, 100.0);
      sig.Record(t, v);
      points.emplace_back(t, v);
    }
    const SimTime end = t + rng.UniformInt(1, Seconds(5.0));
    sig.Close(end);

    // Random query windows, compared to a straightforward scan.
    for (int q = 0; q < 10; ++q) {
      // The brute force is O(window x points); keep windows small.
      SimTime b = rng.UniformInt(0, end - 1);
      SimTime e = b + rng.UniformInt(1, std::min<SimTime>(end - b,
                                                          Seconds(0.02)));
      double integral = 0.0;
      for (SimTime step = b; step < e; ++step) {
        double v = 0.0;
        for (const auto& [pt, pv] : points) {
          if (pt <= step) v = pv;
        }
        integral += v;
      }
      EXPECT_NEAR(sig.MeanOver(b, e),
                  integral / static_cast<double>(e - b), 1e-6)
          << "trial " << trial;
    }
  }
}

TEST(TimeWeightedSignalProperty, FractionAtOrBelowComplement) {
  Rng rng(405);
  for (int trial = 0; trial < 20; ++trial) {
    TimeWeightedSignal sig;
    SimTime t = 0;
    for (int i = 0; i < 20; ++i) {
      t += rng.UniformInt(1, Seconds(2.0));
      sig.Record(t, rng.Uniform(0.0, 10.0));
    }
    const SimTime end = t + Seconds(1.0);
    sig.Close(end);
    const double thr = rng.Uniform(0.0, 10.0);
    const double below = sig.FractionAtOrBelow(thr, 0, end);
    EXPECT_GE(below, 0.0);
    EXPECT_LE(below, 1.0);
    // Monotone in the threshold.
    EXPECT_LE(below, sig.FractionAtOrBelow(thr + 1.0, 0, end) + 1e-12);
  }
}

// --- Cluster bind/release vs a reference occupancy map ---------------------

TEST(ClusterProperty, RandomBindReleaseMatchesReferenceModel) {
  Rng rng(406);
  for (int trial = 0; trial < 15; ++trial) {
    auto part = gpu::EnumerateMaximalPartitions()[static_cast<std::size_t>(
        rng.UniformInt(0, 18))];
    gpu::Cluster cluster = gpu::Cluster::Uniform(1, 3, part);
    std::map<std::int32_t, std::int32_t> reference;  // slice -> instance

    for (int step = 0; step < 300; ++step) {
      const auto all = cluster.AllSlices();
      const SliceId sid = all[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(all.size()) - 1))];
      if (reference.count(sid.value)) {
        if (rng.Chance(0.7)) {
          cluster.Release(sid, InstanceId(reference[sid.value]));
          reference.erase(sid.value);
        } else {
          // Double bind must throw and change nothing.
          EXPECT_THROW(cluster.Bind(sid, InstanceId(9999)), FfsError);
        }
      } else {
        const auto inst = static_cast<std::int32_t>(step + 1);
        cluster.Bind(sid, InstanceId(inst));
        reference[sid.value] = inst;
      }
      // Invariants after every step.
      int bound_gpcs = 0;
      for (SliceId s : cluster.AllSlices()) {
        const auto& slice = cluster.slice(s);
        if (reference.count(s.value)) {
          EXPECT_EQ(slice.occupant.value, reference[s.value]);
          bound_gpcs += slice.gpcs();
        } else {
          EXPECT_TRUE(slice.free());
        }
      }
      EXPECT_EQ(cluster.BoundGpcs(), bound_gpcs);
      EXPECT_EQ(cluster.FreeSlices().size(),
                cluster.num_slices() - reference.size());
    }
  }
}

TEST(ClusterProperty, RepartitionPreservesOtherGpus) {
  Rng rng(407);
  gpu::Cluster cluster = gpu::Cluster::Uniform(1, 3, gpu::DefaultPartition());
  // Bind something on GPU 1 and 2.
  std::vector<std::pair<SliceId, InstanceId>> kept;
  for (SliceId sid : cluster.AllSlices()) {
    const auto& s = cluster.slice(sid);
    if (s.gpu.value > 0 && rng.Chance(0.5)) {
      const InstanceId inst(sid.value + 100);
      cluster.Bind(sid, inst);
      kept.emplace_back(sid, inst);
    }
  }
  const auto parts = gpu::EnumerateMaximalPartitions();
  for (int round = 0; round < 5; ++round) {
    const auto& target = parts[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(parts.size()) - 1))];
    cluster.RepartitionGpu(GpuId(0), target);
    // GPU 0 swapped; everything bound elsewhere is untouched.
    for (const auto& [sid, inst] : kept) {
      EXPECT_EQ(cluster.slice(sid).occupant, inst);
    }
    EXPECT_EQ(cluster.gpu(GpuId(0)).partition().Profiles(),
              target.Profiles());
  }
}

// --- ClusterView overlay vs a brute-force reference -------------------------

TEST(ClusterViewProperty, OverlayQueriesMatchReferenceModel) {
  Rng rng(409);
  for (int trial = 0; trial < 10; ++trial) {
    gpu::Cluster cluster =
        gpu::Cluster::Uniform(2, 2, gpu::DefaultPartition());
    // Random live state: some slices bound, some failed.
    std::int32_t next_inst = 1;
    for (SliceId sid : cluster.AllSlices()) {
      if (rng.Chance(0.4)) {
        cluster.Bind(sid, InstanceId(next_inst++));
      } else if (rng.Chance(0.2)) {
        cluster.MarkFailed(sid);
      }
    }
    gpu::ClusterView view(cluster);
    std::set<std::int32_t> reserved, planned;
    const auto all = cluster.AllSlices();
    std::map<std::int32_t, std::int32_t> live_before;  // slice -> occupant
    for (SliceId s : all) live_before[s.value] = cluster.slice(s).occupant.value;
    for (int step = 0; step < 60; ++step) {
      const SliceId sid = all[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(all.size()) - 1))];
      if (view.Allocatable(sid) && rng.Chance(0.5)) {
        view.Reserve(sid);
        reserved.insert(sid.value);
      } else if (!cluster.slice(sid).free() && rng.Chance(0.5)) {
        view.MarkPlannedFree(sid);
        planned.insert(sid.value);
      }
      // Reference allocatable: reservation wins, then the planned-free
      // overlay (failure still masks it), then live state.
      const auto ref_alloc = [&](SliceId s) {
        if (reserved.count(s.value)) return false;
        if (planned.count(s.value)) return !cluster.IsFailed(s);
        return cluster.slice(s).allocatable();
      };
      std::vector<SliceId> expect;
      for (SliceId s : all) {
        if (ref_alloc(s)) expect.push_back(s);
      }
      EXPECT_EQ(view.FreeSlices(), expect) << "trial " << trial;
      for (gpu::MigProfile p : gpu::kAllProfiles) {
        std::vector<SliceId> expect_p;
        for (SliceId s : expect) {
          if (cluster.slice(s).profile() == p) expect_p.push_back(s);
        }
        EXPECT_EQ(view.FreeSlices(p), expect_p);
      }
      for (int n = 0; n < cluster.num_nodes(); ++n) {
        std::vector<SliceId> expect_n;
        for (SliceId s : expect) {
          if (cluster.slice(s).node == NodeId(n)) expect_n.push_back(s);
        }
        EXPECT_EQ(view.FreeSlicesOnNode(NodeId(n)), expect_n);
      }
      const Bytes need = GiB(rng.UniformInt(1, 80));
      std::optional<SliceId> smallest;
      for (SliceId s : expect) {
        if (cluster.slice(s).memory() < need) continue;
        if (!smallest ||
            cluster.slice(s).gpcs() < cluster.slice(*smallest).gpcs()) {
          smallest = s;  // expect is id-ordered: ties keep the lowest id
        }
      }
      EXPECT_EQ(view.SmallestFreeSliceWithMemory(need), smallest);
    }
    // The overlay never leaked into live state: occupancy is untouched.
    for (SliceId s : all) {
      EXPECT_EQ(cluster.slice(s).occupant.value, live_before[s.value]);
    }
  }
}

// --- Placement plan/commit fuzz ---------------------------------------------

std::vector<platform::FunctionSpec> FuzzFunctions() {
  std::vector<platform::FunctionSpec> fns;
  int id = 0;
  for (auto& dag : model::BuildStudyApps(model::Variant::kSmall)) {
    const int app = id;
    fns.push_back(platform::MakeFunctionSpec(FunctionId(id++), app,
                                             model::Variant::kSmall, dag,
                                             1.5));
  }
  return fns;
}

class FuzzRouting final : public platform::RoutingPolicy {
 public:
  bool Route(platform::PlatformCore&, RequestId, FunctionId) override {
    return false;
  }
};

class FuzzScaling final : public platform::ScalingPolicy {
 public:
  void Tick(platform::PlatformCore&) override {}
};

platform::PolicyBundle FuzzBundle() {
  platform::PolicyBundle b;
  b.name = "plan-fuzz";
  b.routing = std::make_unique<FuzzRouting>();
  b.scaling = std::make_unique<FuzzScaling>();
  return b;
}

// Randomized racing plans with injected drift (slice failures/repairs
// between plan and commit): every Commit either applies fully — spawned
// instances bound to exactly their planned slices — or aborts with a typed
// cause leaving occupancy byte-identical.
TEST(PlanCommitProperty, RacingPlansCommitAtomicallyUnderDrift) {
  Rng rng(410);
  for (int trial = 0; trial < 6; ++trial) {
    sim::Simulator sim;
    gpu::Cluster cluster =
        gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition());
    metrics::Recorder recorder(cluster);
    recorder.SubscribeTo(sim.bus());
    platform::PlatformCore plat(sim, cluster, FuzzFunctions(),
                                platform::PlatformConfig{}, FuzzBundle());
    const auto num_fns = static_cast<std::int64_t>(plat.functions().size());
    std::size_t attempts = 0;
    std::size_t committed_total = 0;

    for (int round = 0; round < 30; ++round) {
      // 1–3 racers plan off independent snapshots of the same state, so
      // overlapping picks surface as kSliceConflict at commit time.
      std::vector<platform::PlacementPlan> plans;
      const std::int64_t racers = rng.UniformInt(1, 3);
      for (std::int64_t r = 0; r < racers; ++r) {
        gpu::ClusterView view(cluster);
        const FunctionId fn(
            static_cast<std::int32_t>(rng.UniformInt(0, num_fns - 1)));
        auto pipeline =
            core::MonolithicPlanOnSmallestSlice(plat.function(fn).dag, view);
        if (!pipeline) continue;
        plans.push_back(
            platform::SpawnPlan(fn, std::move(*pipeline), false));
      }
      // Drift between plan and commit.
      if (rng.Chance(0.35)) {
        const auto free = cluster.FreeSlices();
        if (!free.empty()) {
          cluster.MarkFailed(free[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(free.size()) - 1))]);
        }
      }
      if (rng.Chance(0.35)) {
        for (SliceId s : cluster.AllSlices()) {
          if (cluster.IsFailed(s)) {
            cluster.Repair(s);
            break;
          }
        }
      }

      const std::size_t before_insts = plat.AllInstances().size();
      std::size_t committed = 0;
      for (const auto& p : plans) {
        ++attempts;
        const auto snapshot = cluster.FreeSlices();
        const platform::CommitResult result = plat.Commit(p);
        if (result.ok()) {
          ++committed;
          EXPECT_FALSE(result.spawned.empty());
        } else {
          EXPECT_NE(result.cause, sim::PlanAbortCause::kNone);
          EXPECT_TRUE(result.spawned.empty());
          EXPECT_EQ(cluster.FreeSlices(), snapshot)
              << "aborted commit mutated occupancy";
        }
      }
      committed_total += committed;
      EXPECT_EQ(plat.AllInstances().size(), before_insts + committed);
      // Strong isolation: every live instance holds exactly its planned
      // slices.
      for (platform::Instance* inst : plat.AllInstances()) {
        for (const auto& stage : inst->plan().stages) {
          EXPECT_EQ(cluster.slice(stage.slice).occupant, inst->id());
        }
      }
      sim.Run();  // drain loads so everything is idle
      for (platform::Instance* inst : plat.AllInstances()) {
        if (rng.Chance(0.5)) plat.RetireInstance(inst);
      }
    }
    EXPECT_EQ(recorder.plans_committed() + recorder.plans_aborted(),
              attempts);
    EXPECT_EQ(recorder.plans_committed(), committed_total);
  }
}

// --- RunningStats::Merge associativity --------------------------------------

TEST(RunningStatsProperty, MergeIsOrderInsensitive) {
  Rng rng(408);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 200; ++i) xs.push_back(rng.Normal(5.0, 3.0));
    RunningStats a, b, c, left, right;
    for (int i = 0; i < 200; ++i) {
      (i % 3 == 0 ? a : (i % 3 == 1 ? b : c)).Add(xs[static_cast<std::size_t>(i)]);
    }
    left = a;
    left.Merge(b);
    left.Merge(c);
    right = c;
    right.Merge(a);
    right.Merge(b);
    EXPECT_EQ(left.count(), right.count());
    EXPECT_NEAR(left.mean(), right.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), right.variance(), 1e-7);
  }
}

}  // namespace
}  // namespace fluidfaas
