// Property tests pitting library components against brute-force reference
// implementations on randomized inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "common/stats.h"
#include "gpu/cluster.h"

namespace fluidfaas {
namespace {

// --- TimeWeightedSignal vs brute-force integration -------------------------

TEST(TimeWeightedSignalProperty, MeanMatchesBruteForceIntegration) {
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    TimeWeightedSignal sig;
    std::vector<std::pair<SimTime, double>> points;
    SimTime t = 0;
    for (int i = 0; i < 30; ++i) {
      t += rng.UniformInt(1, Seconds(5.0));
      const double v = rng.Uniform(0.0, 100.0);
      sig.Record(t, v);
      points.emplace_back(t, v);
    }
    const SimTime end = t + rng.UniformInt(1, Seconds(5.0));
    sig.Close(end);

    // Random query windows, compared to a straightforward scan.
    for (int q = 0; q < 10; ++q) {
      // The brute force is O(window x points); keep windows small.
      SimTime b = rng.UniformInt(0, end - 1);
      SimTime e = b + rng.UniformInt(1, std::min<SimTime>(end - b,
                                                          Seconds(0.02)));
      double integral = 0.0;
      for (SimTime step = b; step < e; ++step) {
        double v = 0.0;
        for (const auto& [pt, pv] : points) {
          if (pt <= step) v = pv;
        }
        integral += v;
      }
      EXPECT_NEAR(sig.MeanOver(b, e),
                  integral / static_cast<double>(e - b), 1e-6)
          << "trial " << trial;
    }
  }
}

TEST(TimeWeightedSignalProperty, FractionAtOrBelowComplement) {
  Rng rng(405);
  for (int trial = 0; trial < 20; ++trial) {
    TimeWeightedSignal sig;
    SimTime t = 0;
    for (int i = 0; i < 20; ++i) {
      t += rng.UniformInt(1, Seconds(2.0));
      sig.Record(t, rng.Uniform(0.0, 10.0));
    }
    const SimTime end = t + Seconds(1.0);
    sig.Close(end);
    const double thr = rng.Uniform(0.0, 10.0);
    const double below = sig.FractionAtOrBelow(thr, 0, end);
    EXPECT_GE(below, 0.0);
    EXPECT_LE(below, 1.0);
    // Monotone in the threshold.
    EXPECT_LE(below, sig.FractionAtOrBelow(thr + 1.0, 0, end) + 1e-12);
  }
}

// --- Cluster bind/release vs a reference occupancy map ---------------------

TEST(ClusterProperty, RandomBindReleaseMatchesReferenceModel) {
  Rng rng(406);
  for (int trial = 0; trial < 15; ++trial) {
    auto part = gpu::EnumerateMaximalPartitions()[static_cast<std::size_t>(
        rng.UniformInt(0, 18))];
    gpu::Cluster cluster = gpu::Cluster::Uniform(1, 3, part);
    std::map<std::int32_t, std::int32_t> reference;  // slice -> instance

    for (int step = 0; step < 300; ++step) {
      const auto all = cluster.AllSlices();
      const SliceId sid = all[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(all.size()) - 1))];
      if (reference.count(sid.value)) {
        if (rng.Chance(0.7)) {
          cluster.Release(sid, InstanceId(reference[sid.value]));
          reference.erase(sid.value);
        } else {
          // Double bind must throw and change nothing.
          EXPECT_THROW(cluster.Bind(sid, InstanceId(9999)), FfsError);
        }
      } else {
        const auto inst = static_cast<std::int32_t>(step + 1);
        cluster.Bind(sid, InstanceId(inst));
        reference[sid.value] = inst;
      }
      // Invariants after every step.
      int bound_gpcs = 0;
      for (SliceId s : cluster.AllSlices()) {
        const auto& slice = cluster.slice(s);
        if (reference.count(s.value)) {
          EXPECT_EQ(slice.occupant.value, reference[s.value]);
          bound_gpcs += slice.gpcs();
        } else {
          EXPECT_TRUE(slice.free());
        }
      }
      EXPECT_EQ(cluster.BoundGpcs(), bound_gpcs);
      EXPECT_EQ(cluster.FreeSlices().size(),
                cluster.num_slices() - reference.size());
    }
  }
}

TEST(ClusterProperty, RepartitionPreservesOtherGpus) {
  Rng rng(407);
  gpu::Cluster cluster = gpu::Cluster::Uniform(1, 3, gpu::DefaultPartition());
  // Bind something on GPU 1 and 2.
  std::vector<std::pair<SliceId, InstanceId>> kept;
  for (SliceId sid : cluster.AllSlices()) {
    const auto& s = cluster.slice(sid);
    if (s.gpu.value > 0 && rng.Chance(0.5)) {
      const InstanceId inst(sid.value + 100);
      cluster.Bind(sid, inst);
      kept.emplace_back(sid, inst);
    }
  }
  const auto parts = gpu::EnumerateMaximalPartitions();
  for (int round = 0; round < 5; ++round) {
    const auto& target = parts[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(parts.size()) - 1))];
    cluster.RepartitionGpu(GpuId(0), target);
    // GPU 0 swapped; everything bound elsewhere is untouched.
    for (const auto& [sid, inst] : kept) {
      EXPECT_EQ(cluster.slice(sid).occupant, inst);
    }
    EXPECT_EQ(cluster.gpu(GpuId(0)).partition().Profiles(),
              target.Profiles());
  }
}

// --- RunningStats::Merge associativity --------------------------------------

TEST(RunningStatsProperty, MergeIsOrderInsensitive) {
  Rng rng(408);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 200; ++i) xs.push_back(rng.Normal(5.0, 3.0));
    RunningStats a, b, c, left, right;
    for (int i = 0; i < 200; ++i) {
      (i % 3 == 0 ? a : (i % 3 == 1 ? b : c)).Add(xs[static_cast<std::size_t>(i)]);
    }
    left = a;
    left.Merge(b);
    left.Merge(c);
    right = c;
    right.Merge(a);
    right.Merge(b);
    EXPECT_EQ(left.count(), right.count());
    EXPECT_NEAR(left.mean(), right.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), right.variance(), 1e-7);
  }
}

}  // namespace
}  // namespace fluidfaas
