// Admission-control semantics (DESIGN.md §9): the token bucket's burst and
// deterministic sim-time refill, the pending-depth cap, deadline-infeasible
// shedding at dispatch, and the typed RejectCause on every refusal.
#include "qos/admission.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace fluidfaas::qos {
namespace {

QueueItem Item(int rid, SimTime deadline, SimDuration est) {
  QueueItem item;
  item.rid = RequestId(rid);
  item.fn = FunctionId(0);
  item.deadline = deadline;
  item.priority = deadline;
  item.service_estimate = est;
  return item;
}

TEST(NullAdmissionTest, AdmitsEverything) {
  NullAdmission none;
  FifoQueue q;
  for (int i = 0; i < 1000; ++i) q.Enqueue(Item(i, 1, 1));
  EXPECT_EQ(none.AdmitAtSubmit(Item(0, 1, 1), 0, q),
            sim::RejectCause::kNone);
  // Hopelessly late work is still not shed by the null controller.
  EXPECT_EQ(none.ReviewAtDispatch(Item(0, 1, Seconds(100)), Seconds(50)),
            sim::RejectCause::kNone);
}

TEST(ShedAdmissionTest, DepthCapRejectsWithQueueFull) {
  QosConfig cfg;
  cfg.admission = "shed";
  cfg.max_queue_depth = 2;
  ShedAdmission shed(cfg);
  FifoQueue q;
  EXPECT_EQ(shed.AdmitAtSubmit(Item(0, 1, 1), 0, q),
            sim::RejectCause::kNone);
  q.Enqueue(Item(0, 1, 1));
  q.Enqueue(Item(1, 1, 1));
  EXPECT_EQ(shed.AdmitAtSubmit(Item(2, 1, 1), 0, q),
            sim::RejectCause::kQueueFull);
}

TEST(ShedAdmissionTest, TokenBucketSpendsBurstThenRateLimits) {
  QosConfig cfg;
  cfg.admission = "shed";
  cfg.rate_rps = 10.0;
  cfg.burst = 3.0;
  ShedAdmission shed(cfg);
  FifoQueue q;
  // The bucket starts full: the burst passes, the next is refused.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(shed.AdmitAtSubmit(Item(i, 1, 1), 0, q),
              sim::RejectCause::kNone)
        << i;
  }
  EXPECT_EQ(shed.AdmitAtSubmit(Item(3, 1, 1), 0, q),
            sim::RejectCause::kRateLimited);
  // 10 rps refill: 0.1 s buys exactly one token, and only one.
  const SimTime later = Seconds(0.1);
  EXPECT_EQ(shed.AdmitAtSubmit(Item(4, 1, 1), later, q),
            sim::RejectCause::kNone);
  EXPECT_EQ(shed.AdmitAtSubmit(Item(5, 1, 1), later, q),
            sim::RejectCause::kRateLimited);
  // A long idle stretch refills to the burst cap, not beyond it.
  const SimTime much_later = Seconds(100.0);
  for (int i = 6; i < 9; ++i) {
    EXPECT_EQ(shed.AdmitAtSubmit(Item(i, 1, 1), much_later, q),
              sim::RejectCause::kNone)
        << i;
  }
  EXPECT_EQ(shed.AdmitAtSubmit(Item(9, 1, 1), much_later, q),
            sim::RejectCause::kRateLimited);
}

TEST(ShedAdmissionTest, RateZeroDisablesTheBucket) {
  QosConfig cfg;
  cfg.admission = "shed";
  ShedAdmission shed(cfg);
  FifoQueue q;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(shed.AdmitAtSubmit(Item(i, 1, 1), 0, q),
              sim::RejectCause::kNone);
  }
}

TEST(ShedAdmissionTest, ShedsDeadlineInfeasibleWorkAtDispatch) {
  QosConfig cfg;
  cfg.admission = "shed";
  ShedAdmission shed(cfg);
  // Needs 2 s, deadline 1 s away: doomed, shed with the typed cause.
  EXPECT_EQ(shed.ReviewAtDispatch(Item(0, Seconds(1.0), Seconds(2.0)), 0),
            sim::RejectCause::kDeadlineInfeasible);
  // Exactly feasible (now + estimate == deadline) stays admitted.
  EXPECT_EQ(shed.ReviewAtDispatch(Item(1, Seconds(2.0), Seconds(2.0)), 0),
            sim::RejectCause::kNone);
  // The same request becomes infeasible once it has waited too long.
  EXPECT_EQ(shed.ReviewAtDispatch(Item(2, Seconds(2.0), Seconds(2.0)),
                                  Seconds(0.5)),
            sim::RejectCause::kDeadlineInfeasible);
}

TEST(ShedAdmissionTest, InfeasibleSheddingCanBeDisabled) {
  QosConfig cfg;
  cfg.admission = "shed";
  cfg.shed_infeasible = false;
  ShedAdmission shed(cfg);
  EXPECT_EQ(shed.ReviewAtDispatch(Item(0, Seconds(1.0), Seconds(2.0)), 0),
            sim::RejectCause::kNone);
}

TEST(AdmissionFactoryTest, BuildsControllersAndRejectsUnknown) {
  QosConfig cfg;
  EXPECT_STREQ(MakeAdmissionController(cfg)->name(), "none");
  cfg.admission = "shed";
  EXPECT_STREQ(MakeAdmissionController(cfg)->name(), "shed");
  cfg.admission = "lottery";
  EXPECT_THROW(MakeAdmissionController(cfg), FfsError);

  cfg = QosConfig{};
  const QueuePolicy qp = MakeQueuePolicy(cfg);
  EXPECT_STREQ(qp.discipline->name(), "fifo");
  EXPECT_STREQ(qp.admission->name(), "none");
}

TEST(RejectCauseTest, NamesAreStableAndExhaustive) {
  EXPECT_STREQ(sim::Name(sim::RejectCause::kNone), "none");
  EXPECT_STREQ(sim::Name(sim::RejectCause::kQueueFull), "queue-full");
  EXPECT_STREQ(sim::Name(sim::RejectCause::kRateLimited), "rate-limited");
  EXPECT_STREQ(sim::Name(sim::RejectCause::kDeadlineInfeasible),
               "deadline-infeasible");
  EXPECT_EQ(sim::kNumRejectCauses, 4);
}

}  // namespace
}  // namespace fluidfaas::qos
