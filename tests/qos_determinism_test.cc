// QoS determinism (DESIGN.md §9): runs under the fair and edf disciplines
// (and shed admission) are byte-identical across parallel sweep job counts,
// exactly like the fifo default — disciplines break every tie by arrival
// sequence, never by pointer or hash order.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "harness/sweep.h"

namespace fluidfaas::harness {
namespace {

SweepSpec QosSweep(const std::string& queue, const std::string& admission) {
  SweepSpec spec;
  spec.base.system = SystemKind::kFluidFaas;
  spec.base.tier = trace::WorkloadTier::kLight;
  spec.base.num_nodes = 1;
  spec.base.gpus_per_node = 4;
  spec.base.duration = Seconds(30);
  spec.base.seed = 4242;
  // Push past the tier default so queues actually back up and the
  // discipline's ordering decisions matter.
  spec.base.load_factor = 0.6;
  spec.base.platform.qos.queue = queue;
  spec.base.platform.qos.admission = admission;
  spec.systems = {SystemKind::kInfless, SystemKind::kFluidFaas};
  spec.seeds = {1, 2};
  return spec;
}

std::string SweepJson(const SweepOutcome& outcome) {
  std::ostringstream os;
  WriteSweepJson(outcome, os, /*include_timing=*/false);
  return os.str();
}

TEST(QosDeterminismTest, FairQueueSweepIsByteIdenticalAcrossJobCounts) {
  const SweepOutcome serial = RunSweep(QosSweep("fair", "none"), 1);
  const std::string reference = SweepJson(serial);
  ASSERT_FALSE(reference.empty());
  for (int jobs : {4, 8}) {
    const SweepOutcome parallel = RunSweep(QosSweep("fair", "none"), jobs);
    EXPECT_EQ(SweepJson(parallel), reference) << "jobs=" << jobs;
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      // Dequeue decisions surface as per-request latencies; equality here
      // pins the discipline's order, not just aggregate counters.
      EXPECT_EQ(serial.cells[i].result.recorder->LatenciesSeconds(),
                parallel.cells[i].result.recorder->LatenciesSeconds())
          << "jobs=" << jobs << " cell=" << i;
    }
  }
}

TEST(QosDeterminismTest, EdfQueueSweepIsByteIdenticalAcrossJobCounts) {
  const SweepOutcome serial = RunSweep(QosSweep("edf", "none"), 1);
  const std::string reference = SweepJson(serial);
  ASSERT_FALSE(reference.empty());
  for (int jobs : {4, 8}) {
    const SweepOutcome parallel = RunSweep(QosSweep("edf", "none"), jobs);
    EXPECT_EQ(SweepJson(parallel), reference) << "jobs=" << jobs;
  }
}

TEST(QosDeterminismTest, ShedAdmissionSweepIsByteIdenticalAcrossJobCounts) {
  const SweepOutcome serial = RunSweep(QosSweep("fifo", "shed"), 1);
  const std::string reference = SweepJson(serial);
  ASSERT_FALSE(reference.empty());
  const SweepOutcome parallel = RunSweep(QosSweep("fifo", "shed"), 8);
  EXPECT_EQ(SweepJson(parallel), reference);
  // Rejection accounting is part of the deterministic payload.
  ASSERT_EQ(parallel.cells.size(), serial.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].result.rejected,
              parallel.cells[i].result.rejected)
        << i;
  }
}

TEST(QosDeterminismTest, RepeatedFairRunsAgreeEventForEvent) {
  ExperimentConfig cfg = QosSweep("fair", "none").base;
  const ExperimentResult a = RunExperiment(cfg);
  const ExperimentResult b = RunExperiment(cfg);
  EXPECT_EQ(a.slo_hit_rate, b.slo_hit_rate);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.worst_fn_p99_s, b.worst_fn_p99_s);
  EXPECT_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_EQ(a.recorder->LatenciesSeconds(), b.recorder->LatenciesSeconds());
}

}  // namespace
}  // namespace fluidfaas::harness
