// Queue-discipline semantics (DESIGN.md §9): dequeue order per discipline,
// deterministic seq tie-breaks, Remove, Snapshot-vs-Drain agreement, the
// fair queue's stickiness / blocking / drop rules, and the factory.
#include "qos/queue_discipline.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace fluidfaas::qos {
namespace {

QueueItem Item(int rid, int fn, SimTime deadline, SimTime priority,
               SimDuration est = 1000) {
  QueueItem item;
  item.rid = RequestId(rid);
  item.fn = FunctionId(fn);
  item.deadline = deadline;
  item.priority = priority;
  item.service_estimate = est;
  return item;
}

std::vector<int> DrainAll(QueueDiscipline& q) {
  std::vector<int> order;
  q.Drain([&order](const QueueItem& item) {
    order.push_back(static_cast<int>(item.rid.value));
    return DrainVerdict::kDispatch;
  });
  return order;
}

std::vector<int> SnapshotIds(const QueueDiscipline& q) {
  std::vector<int> order;
  for (const QueueItem& item : q.Snapshot()) {
    order.push_back(static_cast<int>(item.rid.value));
  }
  return order;
}

TEST(FifoQueueTest, OrdersByPriorityTheLegacyAdjustedDeadline) {
  FifoQueue q;
  q.Enqueue(Item(0, 0, 900, 500));
  q.Enqueue(Item(1, 1, 950, 100));
  q.Enqueue(Item(2, 2, 100, 300));
  EXPECT_EQ(DrainAll(q), (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(FifoQueueTest, EqualPrioritiesKeepInsertionOrder) {
  FifoQueue q;
  for (int i = 0; i < 5; ++i) q.Enqueue(Item(i, i, 1000, 42));
  EXPECT_EQ(DrainAll(q), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(FifoQueueTest, KeepLeavesItemsQueuedInOrder) {
  FifoQueue q;
  q.Enqueue(Item(0, 0, 900, 100));
  q.Enqueue(Item(1, 1, 900, 200));
  q.Enqueue(Item(2, 2, 900, 300));
  // Refuse the middle one; it must survive, still ahead of nothing.
  q.Drain([](const QueueItem& item) {
    return item.rid.value == 1 ? DrainVerdict::kKeep
                               : DrainVerdict::kDispatch;
  });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(DrainAll(q), (std::vector<int>{1}));
}

TEST(EdfQueueTest, OrdersByAbsoluteDeadlineWithSeqTies) {
  EdfQueue q;
  q.Enqueue(Item(0, 0, 500, 0));
  q.Enqueue(Item(1, 1, 100, 0));
  q.Enqueue(Item(2, 2, 100, 0));  // same deadline as rid 1: arrival order
  q.Enqueue(Item(3, 3, 300, 0));
  EXPECT_EQ(DrainAll(q), (std::vector<int>{1, 2, 3, 0}));
  EXPECT_EQ(q.stage_order(), StageOrder::kDeadline);
}

TEST(QueueDisciplineTest, RemoveDropsOneItemAndFixesDepth) {
  FifoQueue q;
  q.Enqueue(Item(0, 7, 900, 100));
  q.Enqueue(Item(1, 7, 900, 200));
  EXPECT_EQ(q.DepthOf(FunctionId(7)), 2u);
  EXPECT_TRUE(q.Remove(RequestId(0)));
  EXPECT_FALSE(q.Remove(RequestId(0)));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.DepthOf(FunctionId(7)), 1u);
  EXPECT_EQ(DrainAll(q), (std::vector<int>{1}));
}

TEST(QueueDisciplineTest, SnapshotMatchesDrainOrder) {
  FairQueue fair(2);
  EdfQueue edf;
  FifoQueue fifo;
  for (QueueDiscipline* q :
       std::vector<QueueDiscipline*>{&fair, &edf, &fifo}) {
    q->Enqueue(Item(0, 0, 400, 400, 10));
    q->Enqueue(Item(1, 1, 200, 200, 10));
    q->Enqueue(Item(2, 0, 300, 300, 10));
    q->Enqueue(Item(3, 2, 100, 100, 10));
    const auto snap = SnapshotIds(*q);
    EXPECT_EQ(snap, DrainAll(*q)) << q->name();
    EXPECT_EQ(snap.size(), 4u) << q->name();
  }
}

TEST(FairQueueTest, InterleavesFlowsInsteadOfDrainingTheBurst) {
  // Function 0 dumps a burst before function 1's two requests arrive; with
  // equal service estimates and sticky batch 1, fair queueing alternates
  // instead of finishing the whole burst first (which is what FIFO on
  // equal priorities would do).
  FairQueue q(1);
  for (int i = 0; i < 4; ++i) q.Enqueue(Item(i, 0, 1000, 0, 100));
  q.Enqueue(Item(4, 1, 1000, 0, 100));
  q.Enqueue(Item(5, 1, 1000, 0, 100));
  EXPECT_EQ(DrainAll(q), (std::vector<int>{0, 4, 1, 5, 2, 3}));
}

TEST(FairQueueTest, StickyBatchKeepsAFunctionsBacklogTogether) {
  FairQueue q(2);
  for (int i = 0; i < 4; ++i) q.Enqueue(Item(i, 0, 1000, 0, 100));
  q.Enqueue(Item(4, 1, 1000, 0, 100));
  q.Enqueue(Item(5, 1, 1000, 0, 100));
  // Two from flow 0 (sticky), then flow 1 catches up, then the tail.
  EXPECT_EQ(DrainAll(q), (std::vector<int>{0, 1, 4, 5, 2, 3}));
}

TEST(FairQueueTest, CheapFlowsDequeueMoreOften) {
  // Flow 0's items cost 4x flow 1's: virtual time advances 4x faster for
  // flow 0, so flow 1 gets roughly four dequeues per flow-0 dequeue.
  FairQueue q(1);
  for (int i = 0; i < 3; ++i) q.Enqueue(Item(i, 0, 1000, 0, 400));
  for (int i = 3; i < 11; ++i) q.Enqueue(Item(i, 1, 1000, 0, 100));
  const auto order = DrainAll(q);
  // First flow-0 item finishes at F=400; flow 1's first four finish at
  // 100..400. Ties (400) break toward the lower function id.
  EXPECT_EQ(order, (std::vector<int>{3, 4, 5, 0, 6, 7, 8, 9, 1, 10, 2}));
}

TEST(FairQueueTest, TiesBreakByFunctionIdThenSeq) {
  FairQueue q(1);
  q.Enqueue(Item(0, 3, 1000, 0, 100));
  q.Enqueue(Item(1, 1, 1000, 0, 100));
  q.Enqueue(Item(2, 2, 1000, 0, 100));
  // Identical finish tags everywhere: lowest FunctionId wins.
  EXPECT_EQ(DrainAll(q), (std::vector<int>{1, 2, 0}));
}

TEST(FairQueueTest, KeepBlocksTheWholeFlowForThePass) {
  FairQueue q(4);
  q.Enqueue(Item(0, 0, 1000, 0, 100));
  q.Enqueue(Item(1, 0, 1000, 0, 100));
  q.Enqueue(Item(2, 1, 1000, 0, 100));
  std::vector<int> order;
  q.Drain([&order](const QueueItem& item) {
    if (item.fn.value == 0) return DrainVerdict::kKeep;
    order.push_back(static_cast<int>(item.rid.value));
    return DrainVerdict::kDispatch;
  });
  // Flow 0's head was refused: rid 1 must NOT be offered (per-function
  // order is preserved), but flow 1 still drains.
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.DepthOf(FunctionId(0)), 2u);
}

TEST(FairQueueTest, DropDoesNotAdvanceVirtualTime) {
  FairQueue q(1);
  q.Enqueue(Item(0, 0, 1000, 0, 1'000'000));  // huge estimate, will be shed
  q.Enqueue(Item(1, 1, 1000, 0, 100));
  q.Drain([](const QueueItem& item) {
    return item.rid.value == 0 ? DrainVerdict::kDrop
                               : DrainVerdict::kDispatch;
  });
  // After the shed, a fresh flow-0 item competes from the (small) current
  // virtual time, not from behind the dropped item's million-unit finish.
  q.Enqueue(Item(2, 0, 1000, 0, 100));
  q.Enqueue(Item(3, 1, 1000, 0, 100));
  EXPECT_EQ(DrainAll(q), (std::vector<int>{2, 3}));
}

TEST(FairQueueTest, RemoveMidBacklogPreservesFlowOrder) {
  FairQueue q(1);
  q.Enqueue(Item(0, 0, 1000, 0, 100));
  q.Enqueue(Item(1, 0, 1000, 0, 100));
  q.Enqueue(Item(2, 0, 1000, 0, 100));
  EXPECT_TRUE(q.Remove(RequestId(1)));
  EXPECT_FALSE(q.Remove(RequestId(99)));
  EXPECT_EQ(DrainAll(q), (std::vector<int>{0, 2}));
}

TEST(QueueFactoryTest, BuildsEachDisciplineAndRejectsUnknown) {
  QosConfig cfg;
  EXPECT_STREQ(MakeQueueDiscipline(cfg)->name(), "fifo");
  cfg.queue = "fair";
  EXPECT_STREQ(MakeQueueDiscipline(cfg)->name(), "fair");
  cfg.queue = "edf";
  EXPECT_STREQ(MakeQueueDiscipline(cfg)->name(), "edf");
  cfg.queue = "lifo";
  EXPECT_THROW(MakeQueueDiscipline(cfg), FfsError);
}

}  // namespace
}  // namespace fluidfaas::qos
