#include "runtime/pipeline_runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>

#include "common/error.h"

namespace fluidfaas::runtime {
namespace {

std::vector<std::byte> Payload(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string AsString(const std::vector<std::byte>& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// A stage that appends its tag to the payload — makes stage order visible.
StageConfig Tagger(std::string tag) {
  StageConfig s;
  s.name = tag;
  s.run = [tag](std::uint64_t, std::span<const std::byte> in) {
    std::string v(reinterpret_cast<const char*>(in.data()), in.size());
    v += tag;
    return Payload(v);
  };
  return s;
}

TEST(PipelineRuntimeTest, SingleStagePassesThrough) {
  PipelineRuntime rt({Tagger("-a")});
  rt.Start();
  ASSERT_TRUE(rt.Submit(1, Payload("x")));
  auto out = rt.NextResult();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->request_id, 1u);
  EXPECT_EQ(AsString(out->payload), "x-a");
  rt.Shutdown();
  rt.Join();
  EXPECT_EQ(rt.processed(0), 1u);
}

TEST(PipelineRuntimeTest, StagesComposeInOrder) {
  PipelineRuntime rt({Tagger("-a"), Tagger("-b"), Tagger("-c")});
  rt.Start();
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(rt.Submit(i, Payload("r" + std::to_string(i))));
  }
  rt.Shutdown();
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto out = rt.NextResult();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->request_id, i);  // FIFO end to end
    EXPECT_EQ(AsString(out->payload), "r" + std::to_string(i) + "-a-b-c");
  }
  EXPECT_FALSE(rt.NextResult().has_value());
  rt.Join();
  for (std::size_t s = 0; s < rt.num_stages(); ++s) {
    EXPECT_EQ(rt.processed(s), 100u);
  }
}

TEST(PipelineRuntimeTest, StagesActuallyOverlap) {
  // Two stages that each record their active interval; with >= 2 requests
  // the stage-1 work of request N must overlap stage-0 work of request N+1.
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  auto busy_stage = [&](std::string name) {
    StageConfig s;
    s.name = std::move(name);
    s.run = [&](std::uint64_t, std::span<const std::byte> in) {
      const int now = concurrent.fetch_add(1) + 1;
      int prev = max_concurrent.load();
      while (prev < now && !max_concurrent.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      concurrent.fetch_sub(1);
      return std::vector<std::byte>(in.begin(), in.end());
    };
    return s;
  };
  PipelineRuntime rt({busy_stage("s0"), busy_stage("s1")});
  rt.Start();
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(rt.Submit(i, Payload("x")));
  }
  rt.Shutdown();
  int results = 0;
  while (rt.NextResult()) ++results;
  rt.Join();
  EXPECT_EQ(results, 20);
  EXPECT_GE(max_concurrent.load(), 2);  // pipeline parallelism observed
}

TEST(PipelineRuntimeTest, SyntheticModelIsDeterministic) {
  auto model = SyntheticModel(/*output_bytes=*/64, /*work_factor=*/3);
  const auto in = Payload("deterministic-input");
  const auto a = model(42, in);
  const auto b = model(42, in);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
  // Different request id or input -> different bytes.
  EXPECT_NE(model(43, in), a);
  EXPECT_NE(model(42, Payload("other")), a);
}

TEST(PipelineRuntimeTest, SyntheticModelWorkScalesRuntime) {
  // Not a timing assertion (flaky); just confirms the loop executes by
  // checking heavy work still yields correct-size output.
  auto heavy = SyntheticModel(16, 50);
  std::vector<std::byte> big(1 << 16);
  EXPECT_EQ(heavy(1, big).size(), 16u);
}

TEST(PipelineRuntimeTest, EvictionStopsTheStageAndRunsUnload) {
  std::atomic<bool> unloaded{false};
  StageConfig s = Tagger("-a");
  s.unload = [&] { unloaded = true; };
  PipelineRuntime rt({s});
  rt.Start();
  ASSERT_TRUE(rt.Submit(1, Payload("x")));
  auto out = rt.NextResult();
  ASSERT_TRUE(out.has_value());
  rt.RequestEviction(0);  // Listing 1: eviction flag -> model.cpu(); del
  rt.Join();
  EXPECT_TRUE(unloaded.load());
  EXPECT_TRUE(rt.EvictionRequested(0));
  EXPECT_FALSE(rt.NextResult().has_value());
}

TEST(PipelineRuntimeTest, EvictingDownstreamTearsDownPipeline) {
  std::atomic<bool> up_unloaded{false}, down_unloaded{false};
  StageConfig up = Tagger("-up");
  up.unload = [&] { up_unloaded = true; };
  StageConfig down = Tagger("-down");
  down.unload = [&] { down_unloaded = true; };
  PipelineRuntime rt({up, down});
  rt.Start();
  rt.RequestEviction(1);
  rt.Shutdown();
  rt.Join();
  EXPECT_TRUE(up_unloaded.load());
  EXPECT_TRUE(down_unloaded.load());
}

TEST(PipelineRuntimeTest, ShutdownDrainsInFlightWork) {
  PipelineRuntime rt({Tagger("-a"), Tagger("-b")});
  rt.Start();
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(rt.Submit(i, Payload("y")));
  }
  rt.Shutdown();  // no more inputs, but queued frames must complete
  int results = 0;
  while (rt.NextResult()) ++results;
  rt.Join();
  EXPECT_EQ(results, 50);
}

TEST(PipelineRuntimeTest, SubmitAfterShutdownFails) {
  PipelineRuntime rt({Tagger("-a")});
  rt.Start();
  rt.Shutdown();
  EXPECT_FALSE(rt.Submit(1, Payload("x")));
  rt.Join();
}

TEST(PipelineRuntimeTest, MisuseThrows) {
  EXPECT_THROW(PipelineRuntime({}), FfsError);
  PipelineRuntime rt({Tagger("-a")});
  EXPECT_THROW(rt.Submit(1, Payload("x")), FfsError);  // not started
  rt.Start();
  EXPECT_THROW(rt.Start(), FfsError);
  EXPECT_THROW(rt.RequestEviction(5), FfsError);
  rt.Shutdown();
  rt.Join();
}

TEST(PipelineRuntimeTest, DestructorCleansUpWithoutExplicitShutdown) {
  auto rt = std::make_unique<PipelineRuntime>(
      std::vector<StageConfig>{Tagger("-a"), Tagger("-b")});
  rt->Start();
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(rt->Submit(i, Payload("z")));
  }
  rt.reset();  // must not hang or crash
  SUCCEED();
}

}  // namespace
}  // namespace fluidfaas::runtime
