#include "runtime/plan_executor.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/partitioner.h"
#include "gpu/cluster.h"
#include "model/zoo.h"

namespace fluidfaas::runtime {
namespace {

core::PipelinePlan PlanFor(const model::AppDag& dag, int stages_wanted) {
  auto cluster = gpu::Cluster::Uniform(1, 8, gpu::DefaultPartition());
  auto ranked = core::EnumerateRankedPipelines(dag, 4);
  for (const auto& cand : ranked) {
    if (cand.num_stages() != stages_wanted) continue;
    auto plan = core::TryPlanOnNode(dag, cand, cluster, NodeId(0),
                                    model::TransferCostModel{});
    if (plan) return *plan;
  }
  throw FfsError("no plan with requested stage count");
}

TEST(CalibratedStageTest, ProducesRequestedOutputSize) {
  auto fn = CalibratedStage(10.0, 0.01, 4096);
  std::vector<std::byte> in(1 << 16);
  EXPECT_EQ(fn(1, in).size(), 4096u);
}

TEST(CalibratedStageTest, LongerTargetsBurnMoreCpu) {
  // Compare wall time of a 1 ms-target and a 50 ms-target stage at the same
  // scale; the latter must be measurably slower.
  std::vector<std::byte> in(1 << 16);
  auto cheap = CalibratedStage(1.0, 0.2, 64);
  auto pricey = CalibratedStage(50.0, 0.2, 64);
  using Clock = std::chrono::steady_clock;
  auto time_of = [&](StageFn& fn) {
    const auto t0 = Clock::now();
    for (int i = 0; i < 5; ++i) fn(static_cast<std::uint64_t>(i), in);
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  EXPECT_GT(time_of(pricey), 2.0 * time_of(cheap));
}

TEST(PlanExecutorTest, ExecutesMonolithicPlan) {
  const auto dag = model::BuildApp(0, model::Variant::kSmall);
  auto plan = PlanFor(dag, 1);
  PlanExecutorOptions opt;
  opt.time_scale = 0.01;
  PlanExecutor exec(dag, plan, opt);
  EXPECT_EQ(exec.predicted_e2e(), plan.EndToEndLatency());
  const double secs = exec.MeasureSeconds(20);
  EXPECT_GT(secs, 0.0);
}

TEST(PlanExecutorTest, PipelineBeatsMonolithicOnTheSameSliceClass) {
  // Measured against measured, so calibration error cancels: the 2-stage
  // pipeline (both stages on 1g slices, overlapping) must finish a batch
  // faster than the monolithic single-1g execution of the same DAG.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "stage overlap needs >= 2 CPU cores";
  }
  const auto dag = model::BuildApp(0, model::Variant::kMedium);
  // Force the monolithic plan onto a 1g-equivalent by building a plan whose
  // single stage runs at 1 GPC: craft it directly.
  core::PipelinePlan mono;
  mono.node = NodeId(0);
  core::StageBinding b;
  b.plan = *core::MakeStagePlan(dag, 0, dag.size());
  b.slice = SliceId(0);
  b.profile = gpu::MigProfile::k1g10gb;
  b.exec_time = core::StageLatencyOnGpcs(dag, 0, dag.size(), 1);
  mono.stages.push_back(b);

  auto pipe = PlanFor(dag, 2);
  // Both stages of the ranked 2-stage candidate sit on 1g slices here.
  PlanExecutorOptions opt;
  opt.time_scale = 0.02;
  constexpr int kRequests = 24;
  PlanExecutor mono_exec(dag, mono, opt);
  const double mono_secs = mono_exec.MeasureSeconds(kRequests);
  PlanExecutor pipe_exec(dag, pipe, opt);
  const double pipe_secs = pipe_exec.MeasureSeconds(kRequests);
  EXPECT_LT(pipe_secs, mono_secs);
}

TEST(PlanExecutorTest, ThroughputTracksPredictedBottleneck) {
  // Measured request rate should be within a loose factor of the planner's
  // 1/bottleneck prediction (scheduling noise and calibration error allow
  // generous slack; the point is the right order of magnitude and
  // direction).
  const auto dag = model::BuildApp(2, model::Variant::kMedium);
  auto plan = PlanFor(dag, 2);
  PlanExecutorOptions opt;
  opt.time_scale = 0.02;
  PlanExecutor exec(dag, plan, opt);
  constexpr int kRequests = 30;
  const double secs = exec.MeasureSeconds(kRequests);
  const double measured_rps = kRequests / secs;
  const double predicted_rps =
      1.0 / (ToSeconds(exec.predicted_bottleneck()) * opt.time_scale);
  EXPECT_GT(measured_rps, 0.3 * predicted_rps);
  EXPECT_LT(measured_rps, 3.0 * predicted_rps);
}

}  // namespace
}  // namespace fluidfaas::runtime
