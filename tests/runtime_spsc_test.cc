#include "runtime/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace fluidfaas::runtime {
namespace {

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(SpscRingTest, SingleThreadFifo) {
  SpscByteRing ring(1024);
  EXPECT_TRUE(ring.TryPush("hello", 5));
  EXPECT_TRUE(ring.TryPush("world!", 6));
  auto a = ring.TryPop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Bytes("hello"));
  auto b = ring.TryPop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, Bytes("world!"));
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, EmptyFramesAreLegal) {
  SpscByteRing ring(64);
  EXPECT_TRUE(ring.TryPush(nullptr, 0));
  auto f = ring.TryPop();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->empty());
}

TEST(SpscRingTest, TryPushFailsWhenFull) {
  SpscByteRing ring(64);
  int pushed = 0;
  while (ring.TryPush("0123456789", 10)) ++pushed;
  EXPECT_GT(pushed, 0);
  // Draining one frame admits another.
  ASSERT_TRUE(ring.TryPop().has_value());
  EXPECT_TRUE(ring.TryPush("0123456789", 10));
}

TEST(SpscRingTest, WrapsAroundTheBufferEdge) {
  SpscByteRing ring(64);
  // Alternate push/pop so indices march across the wrap point repeatedly.
  for (int i = 0; i < 100; ++i) {
    const std::string payload = "payload-" + std::to_string(i);
    ASSERT_TRUE(ring.TryPush(payload.data(),
                             static_cast<std::uint32_t>(payload.size())));
    auto f = ring.TryPop();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(*f, Bytes(payload));
  }
  EXPECT_EQ(ring.pushed(), 100u);
  EXPECT_EQ(ring.popped(), 100u);
}

TEST(SpscRingTest, OversizedFrameThrows) {
  SpscByteRing ring(64);
  std::vector<char> big(100);
  EXPECT_THROW(ring.TryPush(big.data(), 100), FfsError);
}

TEST(SpscRingTest, TooSmallCapacityThrows) {
  EXPECT_THROW(SpscByteRing(8), FfsError);
}

TEST(SpscRingTest, CloseDrainsThenSignalsEnd) {
  SpscByteRing ring(256);
  ring.TryPush("last", 4);
  ring.Close();
  EXPECT_TRUE(ring.closed());
  auto f = ring.Pop();  // still delivers the buffered frame
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, Bytes("last"));
  EXPECT_FALSE(ring.Pop().has_value());
  EXPECT_FALSE(ring.Push("x", 1));
}

TEST(SpscRingTest, BlockingHandOffAcrossThreads) {
  SpscByteRing ring(1 << 12);
  constexpr int kFrames = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(ring.Push(&i, sizeof(i)));
    }
    ring.Close();
  });
  int received = 0;
  while (auto f = ring.Pop()) {
    ASSERT_EQ(f->size(), sizeof(int));
    int v;
    std::memcpy(&v, f->data(), sizeof(v));
    ASSERT_EQ(v, received);  // strict FIFO
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kFrames);
}

TEST(SpscRingTest, VariableSizedFramesSurviveContention) {
  SpscByteRing ring(1 << 10);  // small ring forces frequent blocking
  Rng rng(77);
  std::vector<std::vector<std::byte>> sent;
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::byte> frame(
        static_cast<std::size_t>(rng.UniformInt(0, 200)));
    for (auto& b : frame) {
      b = static_cast<std::byte>(rng.UniformInt(0, 255));
    }
    sent.push_back(std::move(frame));
  }
  std::thread producer([&] {
    for (const auto& f : sent) {
      ASSERT_TRUE(ring.Push(f.data(), static_cast<std::uint32_t>(f.size())));
    }
    ring.Close();
  });
  std::size_t idx = 0;
  while (auto f = ring.Pop()) {
    ASSERT_LT(idx, sent.size());
    ASSERT_EQ(*f, sent[idx]);
    ++idx;
  }
  producer.join();
  EXPECT_EQ(idx, sent.size());
}

TEST(SpscRingTest, CloseUnblocksWaitingConsumer) {
  SpscByteRing ring(256);
  std::thread consumer([&] {
    auto f = ring.Pop();  // blocks until close
    EXPECT_FALSE(f.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.Close();
  consumer.join();
}

TEST(SpscRingTest, CloseUnblocksWaitingProducer) {
  SpscByteRing ring(64);
  while (ring.TryPush("0123456789", 10)) {
  }
  std::thread producer([&] {
    EXPECT_FALSE(ring.Push("0123456789", 10));  // blocked, then closed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.Close();
  producer.join();
}

}  // namespace
}  // namespace fluidfaas::runtime
