#include "sim/event_bus.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "gpu/cluster.h"
#include "metrics/recorder.h"
#include "model/zoo.h"
#include "platform/platform.h"
#include "platform/policy.h"
#include "sim/events.h"
#include "sim/simulator.h"

namespace fluidfaas::sim {
namespace {

struct Ping {
  int value = 0;
};
struct Pong {
  int value = 0;
};

TEST(EventBusTest, DispatchesByType) {
  EventBus bus;
  int pings = 0, pongs = 0;
  bus.Subscribe<Ping>([&](const Ping& p) { pings += p.value; });
  bus.Subscribe<Pong>([&](const Pong& p) { pongs += p.value; });
  bus.Publish(Ping{2});
  bus.Publish(Ping{3});
  bus.Publish(Pong{10});
  EXPECT_EQ(pings, 5);
  EXPECT_EQ(pongs, 10);
  EXPECT_EQ(bus.published(), 3u);
}

TEST(EventBusTest, PublishWithoutSubscribersIsFine) {
  EventBus bus;
  bus.Publish(Ping{1});
  EXPECT_EQ(bus.published(), 1u);
  EXPECT_EQ(bus.subscribers<Ping>(), 0u);
}

TEST(EventBusTest, SubscribersRunInSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  bus.Subscribe<Ping>([&](const Ping&) { order.push_back(1); });
  bus.Subscribe<Ping>([&](const Ping&) { order.push_back(2); });
  bus.Subscribe<Ping>([&](const Ping&) { order.push_back(3); });
  bus.Publish(Ping{});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(bus.subscribers<Ping>(), 3u);
}

// --- unsubscription ---------------------------------------------------------

TEST(EventBusTest, UnsubscribeStopsDelivery) {
  EventBus bus;
  int pings = 0;
  const EventBus::SubscriptionId id =
      bus.Subscribe<Ping>([&](const Ping& p) { pings += p.value; });
  bus.Publish(Ping{1});
  EXPECT_TRUE(bus.Unsubscribe(id));
  bus.Publish(Ping{10});
  EXPECT_EQ(pings, 1);
  EXPECT_EQ(bus.subscribers<Ping>(), 0u);
  // A second removal of the same id reports failure, harmlessly.
  EXPECT_FALSE(bus.Unsubscribe(id));
  EXPECT_FALSE(bus.Unsubscribe(9999));
}

TEST(EventBusTest, ScopedSubscriptionDetachesOnDestruction) {
  EventBus bus;
  int pings = 0;
  {
    EventBus::Subscription sub =
        bus.SubscribeScoped<Ping>([&](const Ping&) { ++pings; });
    EXPECT_TRUE(sub.active());
    bus.Publish(Ping{});
    EXPECT_EQ(bus.subscribers<Ping>(), 1u);
  }
  bus.Publish(Ping{});
  EXPECT_EQ(pings, 1);
  EXPECT_EQ(bus.subscribers<Ping>(), 0u);
}

TEST(EventBusTest, ScopedSubscriptionMoveTransfersOwnership) {
  EventBus bus;
  int pings = 0;
  EventBus::Subscription outer;
  {
    EventBus::Subscription inner =
        bus.SubscribeScoped<Ping>([&](const Ping&) { ++pings; });
    outer = std::move(inner);
    EXPECT_FALSE(inner.active());  // NOLINT(bugprone-use-after-move)
  }
  bus.Publish(Ping{});  // inner's destruction must not have detached
  EXPECT_EQ(pings, 1);
  outer.Release();
  bus.Publish(Ping{});
  EXPECT_EQ(pings, 1);
}

TEST(EventBusTest, HandlerMayUnsubscribeItselfDuringDispatch) {
  EventBus bus;
  int first = 0, second = 0;
  EventBus::SubscriptionId id = 0;
  id = bus.Subscribe<Ping>([&](const Ping&) {
    ++first;
    bus.Unsubscribe(id);  // one-shot subscriber
  });
  bus.Subscribe<Ping>([&](const Ping&) { ++second; });
  bus.Publish(Ping{});
  bus.Publish(Ping{});
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);  // the later peer kept running, both times
}

TEST(EventBusTest, HandlerMayUnsubscribeALaterPeerDuringDispatch) {
  EventBus bus;
  int victim_runs = 0;
  EventBus::SubscriptionId victim = 0;
  bus.Subscribe<Ping>([&](const Ping&) { bus.Unsubscribe(victim); });
  victim = bus.Subscribe<Ping>([&](const Ping&) { ++victim_runs; });
  bus.Publish(Ping{});
  // Tombstoned mid-dispatch: the victim must not see the in-flight event.
  EXPECT_EQ(victim_runs, 0);
  EXPECT_EQ(bus.subscribers<Ping>(), 1u);
}

TEST(EventBusTest, SubscribeDuringDispatchMissesTheInFlightEvent) {
  EventBus bus;
  int late_runs = 0;
  bus.Subscribe<Ping>([&](const Ping&) {
    if (bus.subscribers<Ping>() == 1u) {
      bus.Subscribe<Ping>([&](const Ping&) { ++late_runs; });
    }
  });
  bus.Publish(Ping{});
  EXPECT_EQ(late_runs, 0);  // snapshot taken at Publish time
  bus.Publish(Ping{});
  EXPECT_EQ(late_runs, 1);
}

// --- lifecycle ordering through a real platform ----------------------------

std::vector<platform::FunctionSpec> StudyFunctions() {
  std::vector<platform::FunctionSpec> fns;
  int id = 0;
  for (auto& dag : model::BuildStudyApps(model::Variant::kSmall)) {
    const int app = id;
    fns.push_back(
        platform::MakeFunctionSpec(FunctionId(id++), app,
                                   model::Variant::kSmall, dag, 1.5));
  }
  return fns;
}

/// Greedy router used to drive real request traffic through the bus.
class GreedyRouting final : public platform::RoutingPolicy {
 public:
  bool Route(platform::PlatformCore& core, RequestId rid,
             FunctionId fn) override {
    platform::Instance* inst = nullptr;
    for (platform::Instance* i : core.InstancesOf(fn)) {
      if (i->CanAdmit()) inst = i;
    }
    if (inst == nullptr) {
      const platform::FunctionSpec& spec = core.function(fn);
      auto plan = core::MonolithicPlanOnSmallestSlice(spec.dag, core.cluster());
      if (!plan) return false;
      const platform::CommitResult result = core.Commit(
          platform::SpawnPlan(fn, std::move(*plan), core.IsWarm(fn)));
      if (!result.ok()) return false;
      inst = result.spawned.front();
    }
    inst->Enqueue(rid, core.JitterOf(rid));
    return true;
  }
};

class NoScaling final : public platform::ScalingPolicy {
 public:
  void Tick(platform::PlatformCore&) override {}
};

TEST(EventBusLifecycleTest, RequestEventsArriveInSimTimeOrder) {
  Simulator sim;
  auto cluster = gpu::Cluster::Uniform(1, 2, gpu::DefaultPartition());
  metrics::Recorder recorder(cluster);
  recorder.SubscribeTo(sim.bus());

  struct Seen {
    std::string what;
    RequestId rid;
    SimTime at = 0;
  };
  std::vector<Seen> seen;
  sim.bus().Subscribe<RequestSubmitted>([&](const RequestSubmitted& e) {
    seen.push_back({"submit", e.rid, e.at});
  });
  sim.bus().Subscribe<RequestCompleted>([&](const RequestCompleted& e) {
    seen.push_back({"complete", e.rid, e.at});
  });

  platform::PolicyBundle bundle;
  bundle.name = "greedy";
  bundle.routing = std::make_unique<GreedyRouting>();
  bundle.scaling = std::make_unique<NoScaling>();
  platform::PlatformCore plat(sim, cluster, StudyFunctions(),
                              platform::PlatformConfig{}, std::move(bundle));

  for (int t = 0; t < 10; ++t) {
    sim.At(Millis(100 * t), [&plat] { plat.Submit(FunctionId(0)); });
  }
  sim.Run();

  ASSERT_EQ(seen.size(), 20u);  // 10 submits + 10 completes
  // Simulated time never goes backwards across the event stream.
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GE(seen[i].at, seen[i - 1].at) << "event " << i;
  }
  // Every request's submit precedes its complete.
  for (const Seen& s : seen) {
    if (s.what != "complete") continue;
    bool submitted_before = false;
    for (const Seen& t : seen) {
      if (t.what == "submit" && t.rid == s.rid) {
        submitted_before = true;
        EXPECT_LE(t.at, s.at);
      }
      if (&t == &s) break;
    }
    EXPECT_TRUE(submitted_before) << "rid " << s.rid.value;
  }
  // The recorder, fed only by its subscription, saw the same traffic.
  EXPECT_EQ(recorder.total_requests(), 10u);
  EXPECT_EQ(recorder.completed_requests(), 10u);
}

}  // namespace
}  // namespace fluidfaas::sim
