#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace fluidfaas::sim {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.PeekTime(), kTimeInfinity);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.Schedule(5, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.PeekTime(), kTimeInfinity);
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  const EventId id = q.Schedule(5, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(0));
  EXPECT_FALSE(q.Cancel(12345));
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(1, [&] { order.push_back(1); });
  const EventId id = q.Schedule(2, [&] { order.push_back(2); });
  q.Schedule(3, [&] { order.push_back(3); });
  q.Cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, PeekSkipsCancelledHead) {
  EventQueue q;
  const EventId id = q.Schedule(1, [] {});
  q.Schedule(2, [] {});
  q.Cancel(id);
  EXPECT_EQ(q.PeekTime(), 2);
}

TEST(EventQueueTest, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW(q.Schedule(-1, [] {}), FfsError);
}

TEST(EventQueueTest, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.Pop(), FfsError);
}

TEST(EventQueueTest, StressRandomOrderIsSorted) {
  EventQueue q;
  Rng rng(1234);
  for (int i = 0; i < 5000; ++i) {
    q.Schedule(rng.UniformInt(0, 1000), [] {});
  }
  SimTime prev = -1;
  while (!q.empty()) {
    auto fired = q.Pop();
    ASSERT_GE(fired.time, prev);
    prev = fired.time;
  }
}

TEST(EventQueueTest, StressWithRandomCancellation) {
  EventQueue q;
  Rng rng(99);
  std::vector<EventId> ids;
  int executed = 0;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(q.Schedule(rng.UniformInt(0, 500),
                             [&executed] { ++executed; }));
  }
  int cancelled = 0;
  for (EventId id : ids) {
    if (rng.Chance(0.5) && q.Cancel(id)) ++cancelled;
  }
  EXPECT_EQ(q.size(), 2000u - cancelled);
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(executed, 2000 - cancelled);
}

}  // namespace
}  // namespace fluidfaas::sim
